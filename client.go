package dynamoth

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/localplan"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/transport"
)

// Message is a publication delivered to a subscriber.
type Message struct {
	// Channel the publication was made on.
	Channel string
	// Payload is the application data. The slice is owned by the receiver.
	Payload []byte
	// Publisher is the numeric node ID of the publishing client (0 if
	// unknown).
	Publisher uint32
}

// Config configures a client.
type Config struct {
	// Addrs maps bootstrap pub/sub server IDs to TCP addresses. Used by
	// Connect; ignored when a custom dialer is supplied.
	Addrs map[string]string
	// NodeID identifies this client; 0 picks a random ID. IDs must be
	// unique across the deployment (they key message deduplication).
	NodeID uint32
	// EntryTimeout is the local plan entry timer of §IV-A5: entries unused
	// for this long (and not subscribed) revert to consistent hashing.
	// Default 30 s.
	EntryTimeout time.Duration
	// SubscribeBuffer is the per-subscription delivery buffer; when full,
	// new messages are dropped (slow application). Default 256.
	SubscribeBuffer int
	// Clock provides time (default real). Accelerated tests inject a
	// scaled clock.
	Clock clock.Clock
	// Seed seeds the replica-picking RNG (0 = nondeterministic).
	Seed int64
}

func (c *Config) fillDefaults() error {
	if c.EntryTimeout <= 0 {
		c.EntryTimeout = 30 * time.Second
	}
	if c.SubscribeBuffer <= 0 {
		c.SubscribeBuffer = 256
	}
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.NodeID == 0 {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return fmt.Errorf("dynamoth: generating node ID: %w", err)
		}
		c.NodeID = binary.LittleEndian.Uint32(b[:]) | 1 // never zero
	}
	if c.Seed == 0 {
		c.Seed = int64(c.NodeID)
	}
	return nil
}

// Client errors.
var (
	ErrClosed        = errors.New("dynamoth: client closed")
	ErrNotSubscribed = errors.New("dynamoth: not subscribed")
	ErrNoServers     = errors.New("dynamoth: no bootstrap servers")
)

// Stats are client-side counters.
type Stats struct {
	Published  uint64 // publications sent (per target server)
	Received   uint64 // data messages delivered to the application
	Duplicates uint64 // messages suppressed by deduplication
	Dropped    uint64 // messages dropped on full subscription buffers
	Redirects  uint64 // wrong-server/switch notifications processed
}

// Client is a Dynamoth pub/sub client: a standard publish/subscribe API
// backed by a lazily maintained partial plan (§II-C).
type Client struct {
	cfg    Config
	dialer transport.Dialer
	gen    *message.Generator
	dedup  *message.Deduper

	rngMu sync.Mutex
	rng   *mrand.Rand

	mu     sync.Mutex
	local  *localplan.Store
	conns  map[plan.ServerID]*clientConn
	subs   map[string]*subscription
	closed bool

	published  atomic.Uint64
	received   atomic.Uint64
	duplicates atomic.Uint64
	dropped    atomic.Uint64
	redirects  atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

type subscription struct {
	out     chan Message
	servers []plan.ServerID
	broken  bool // needs repair after a disconnect
}

type clientConn struct {
	conn   transport.Conn
	server plan.ServerID
}

// Connect dials a Dynamoth deployment over TCP using the bootstrap servers
// in cfg.Addrs.
func Connect(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, ErrNoServers
	}
	addrs := make(map[plan.ServerID]string, len(cfg.Addrs))
	servers := make([]string, 0, len(cfg.Addrs))
	for id, addr := range cfg.Addrs {
		addrs[id] = addr
		servers = append(servers, id)
	}
	return ConnectWithDialer(transport.NewTCPDialer(addrs), servers, cfg)
}

// ConnectWithDialer creates a client over an arbitrary transport. servers is
// the bootstrap server set (the consistent-hash ring of "plan 0"). Most
// callers use Connect or cluster.Cluster.NewClient instead.
func ConnectWithDialer(dialer transport.Dialer, servers []string, cfg Config) (*Client, error) {
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	c := &Client{
		cfg:    cfg,
		dialer: dialer,
		gen:    message.NewGenerator(cfg.NodeID),
		dedup:  message.NewDeduper(0),
		rng:    mrand.New(mrand.NewSource(cfg.Seed)),
		local:  localplan.New(servers, cfg.EntryTimeout),
		conns:  make(map[plan.ServerID]*clientConn),
		subs:   make(map[string]*subscription),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	// Subscribe to this client's inbox so servers can redirect us
	// (§IV "Publishing on old server").
	inbox := plan.InboxChannel(cfg.NodeID)
	home := c.local.Base().Home(inbox)
	conn, err := c.connLocked(home)
	if err != nil {
		return nil, fmt.Errorf("dynamoth: connecting to bootstrap server %s: %w", home, err)
	}
	if err := conn.conn.Subscribe(inbox); err != nil {
		return nil, fmt.Errorf("dynamoth: subscribing inbox: %w", err)
	}
	go c.maintain()
	return c, nil
}

// NodeID returns the client's node identity.
func (c *Client) NodeID() uint32 { return c.cfg.NodeID }

// Stats returns a snapshot of client counters.
func (c *Client) Stats() Stats {
	return Stats{
		Published:  c.published.Load(),
		Received:   c.received.Load(),
		Duplicates: c.duplicates.Load(),
		Dropped:    c.dropped.Load(),
		Redirects:  c.redirects.Load(),
	}
}

// Publish sends payload on channel, routed by the client's current plan
// knowledge (explicit entry, else consistent hashing).
func (c *Client) Publish(channel string, payload []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	entry, version := c.lookupVersionLocked(channel)
	env := &message.Envelope{
		Type:    message.TypeData,
		ID:      c.gen.Next(),
		Channel: channel,
		Payload: payload,
		// Publications carry the plan version the routing decision was
		// based on, so dispatchers can detect stale clients lazily.
		PlanVersion: version,
	}
	data := env.Marshal()
	targets := plan.PublishTargets(entry, c.pick)
	conns := make([]*clientConn, 0, len(targets))
	var dialErr error
	for _, s := range targets {
		conn, err := c.resolveConnLocked(channel, s)
		if err != nil {
			dialErr = err
			continue
		}
		conns = append(conns, conn)
	}
	c.mu.Unlock()

	if len(conns) == 0 {
		if dialErr != nil {
			return fmt.Errorf("dynamoth: publish %q: %w", channel, dialErr)
		}
		return fmt.Errorf("dynamoth: publish %q: no target servers", channel)
	}
	var firstErr error
	for _, conn := range conns {
		if err := conn.conn.Publish(channel, data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			c.handleDisconnectedConn(conn)
			continue
		}
		c.published.Add(1)
	}
	return firstErr
}

// Subscribe registers interest in channel and returns the delivery stream.
// Subscribing twice to the same channel returns the same stream.
func (c *Client) Subscribe(channel string) (<-chan Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if sub, ok := c.subs[channel]; ok {
		return sub.out, nil
	}
	entry := c.lookupLocked(channel)
	targets := plan.SubscribeTargets(entry, channel, c.clientKey())
	sub := &subscription{
		out:     make(chan Message, c.cfg.SubscribeBuffer),
		servers: append([]plan.ServerID(nil), targets...),
	}
	c.subs[channel] = sub
	if err := c.subscribeOnLocked(channel, targets); err != nil {
		delete(c.subs, channel)
		return nil, err
	}
	return sub.out, nil
}

// Unsubscribe drops interest in channel and closes its stream.
func (c *Client) Unsubscribe(channel string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	sub, ok := c.subs[channel]
	if !ok {
		return ErrNotSubscribed
	}
	delete(c.subs, channel)
	for _, s := range sub.servers {
		if conn, ok := c.conns[s]; ok {
			_ = conn.conn.Unsubscribe(channel) // best effort; conn may be dying
		}
	}
	close(sub.out)
	return nil
}

// Close shuts the client down, closing all connections and streams.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*clientConn, 0, len(c.conns))
	for _, conn := range c.conns {
		conns = append(conns, conn)
	}
	c.conns = make(map[plan.ServerID]*clientConn)
	for ch, sub := range c.subs {
		close(sub.out)
		delete(c.subs, ch)
	}
	c.mu.Unlock()

	close(c.stop)
	for _, conn := range conns {
		_ = conn.conn.Close() // teardown
	}
	<-c.done
	return nil
}

// ---------------------------------------------------------------------------
// internals

func (c *Client) clientKey() string {
	return plan.InboxChannel(c.cfg.NodeID) // unique, stable per client
}

func (c *Client) pick(n int) int {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Intn(n)
}

// lookupLocked resolves a channel against the local plan, falling back to
// consistent hashing, and touches the entry timer.
func (c *Client) lookupLocked(channel string) plan.Entry {
	e, _ := c.lookupVersionLocked(channel)
	return e
}

// lookupVersionLocked additionally reports the plan version the entry was
// learned at (0 for the consistent-hashing fallback).
func (c *Client) lookupVersionLocked(channel string) (plan.Entry, uint64) {
	return c.local.Lookup(channel, c.cfg.Clock.Now())
}

// resolveConnLocked returns a connection to target, substituting the next
// reachable ring candidate when target is gone (e.g. a released server still
// named by a stale mapping). The substitute's dispatcher will redirect us.
func (c *Client) resolveConnLocked(channel string, target plan.ServerID) (*clientConn, error) {
	conn, err := c.connLocked(target)
	if err == nil {
		return conn, nil
	}
	for _, cand := range c.local.Base().Ring().LookupN(channel, 16) {
		if cand == target {
			continue
		}
		if conn, cerr := c.connLocked(cand); cerr == nil {
			return conn, nil
		}
	}
	return nil, err
}

// connLocked returns (dialing if needed) the connection to a server.
func (c *Client) connLocked(server plan.ServerID) (*clientConn, error) {
	if conn, ok := c.conns[server]; ok {
		return conn, nil
	}
	cc := &clientConn{server: server}
	conn, err := c.dialer.Dial(server, &connHandler{c: c, cc: cc})
	if err != nil {
		return nil, err
	}
	cc.conn = conn
	c.conns[server] = cc
	return cc, nil
}

func (c *Client) subscribeOnLocked(channel string, targets []plan.ServerID) error {
	var firstErr error
	okCount := 0
	for _, s := range targets {
		conn, err := c.resolveConnLocked(channel, s)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := conn.conn.Subscribe(channel); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		okCount++
	}
	if okCount == 0 && firstErr != nil {
		return fmt.Errorf("dynamoth: subscribe %q: %w", channel, firstErr)
	}
	return nil
}

// handleMessage processes every inbound payload from any connection.
func (c *Client) handleMessage(channel string, payload []byte) {
	env, err := message.Unmarshal(payload)
	if err != nil {
		return // not Dynamoth traffic
	}
	switch env.Type {
	case message.TypeData, message.TypeForwarded:
		if c.dedup.Observe(env.ID) {
			c.duplicates.Add(1)
			return
		}
		c.touch(channel)
		c.deliver(channel, env)
	case message.TypeSwitch:
		c.redirects.Add(1)
		c.updateRing(env)
		c.applyEntryUpdate(env.Channel, env, true)
	case message.TypeWrongServer:
		c.redirects.Add(1)
		c.updateRing(env)
		c.applyEntryUpdate(env.Channel, env, false)
	default:
		// Plans, load reports and drain notifications are for the
		// infrastructure, not clients.
	}
}

func (c *Client) deliver(channel string, env *message.Envelope) {
	msg := Message{
		Channel:   channel,
		Payload:   append([]byte(nil), env.Payload...),
		Publisher: env.ID.Node,
	}
	// The non-blocking send happens under the mutex so it cannot race the
	// close(sub.out) in Unsubscribe/Close (which hold the same mutex).
	c.mu.Lock()
	defer c.mu.Unlock()
	sub := c.subs[channel]
	if sub == nil {
		return // already unsubscribed; late delivery
	}
	select {
	case sub.out <- msg:
		c.received.Add(1)
	default:
		c.dropped.Add(1)
	}
}

// touch resets the plan-entry timer for a channel (§IV-A5: "the timer is
// reset whenever the client sends or receives a publication").
func (c *Client) touch(channel string) {
	c.mu.Lock()
	c.local.Touch(channel, c.cfg.Clock.Now())
	c.mu.Unlock()
}

// applyEntryUpdate installs the mapping carried by a switch or wrong-server
// notification and, for switches on subscribed channels, moves the
// subscription (subscribe to the new servers first, then unsubscribe from
// the abandoned ones; deduplication absorbs the overlap window).
func (c *Client) applyEntryUpdate(channel string, env *message.Envelope, resubscribe bool) {
	strategy := plan.Strategy(env.Strategy)
	if !strategy.Valid() || len(env.Servers) == 0 || channel == "" {
		return
	}
	newEntry := plan.Entry{Strategy: strategy, Servers: append([]plan.ServerID(nil), env.Servers...)}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if !c.local.Update(channel, newEntry, env.PlanVersion, c.cfg.Clock.Now()) {
		c.mu.Unlock()
		return // stale notification
	}
	sub := c.subs[channel]
	if sub == nil || !resubscribe {
		c.mu.Unlock()
		return
	}
	oldServers := sub.servers
	newTargets := plan.SubscribeTargets(newEntry, channel, c.clientKey())
	sub.servers = append([]plan.ServerID(nil), newTargets...)
	// Subscribe on the new servers while still holding the lock (conn
	// operations don't re-enter the client mutex).
	_ = c.subscribeOnLocked(channel, added(oldServers, newTargets))
	for _, s := range removed(oldServers, newTargets) {
		if conn, ok := c.conns[s]; ok {
			_ = conn.conn.Unsubscribe(channel) // best effort
		}
	}
	c.mu.Unlock()
}

// handleDisconnectedConn drops a dead connection and marks affected
// subscriptions for repair.
func (c *Client) handleDisconnectedConn(cc *clientConn) {
	c.mu.Lock()
	if current, ok := c.conns[cc.server]; ok && current == cc {
		delete(c.conns, cc.server)
	}
	for _, sub := range c.subs {
		for _, s := range sub.servers {
			if s == cc.server {
				sub.broken = true
				break
			}
		}
	}
	inboxHome := c.local.Base().Home(plan.InboxChannel(c.cfg.NodeID))
	needInbox := inboxHome == cc.server
	c.mu.Unlock()
	_ = cc.conn.Close()
	if needInbox {
		c.repairInbox()
	}
}

// updateRing folds ring membership carried by control envelopes into the
// client's fallback ring (§II-C: clients hash over the active server set),
// re-homing the redirect inbox if its hash home moved.
func (c *Client) updateRing(env *message.Envelope) {
	if len(env.RingServers) == 0 {
		return
	}
	inbox := plan.InboxChannel(c.cfg.NodeID)
	c.mu.Lock()
	oldHome := c.local.Base().Home(inbox)
	changed := c.local.UpdateRing(env.RingServers, env.PlanVersion)
	var newHome plan.ServerID
	if changed {
		newHome = c.local.Base().Home(inbox)
		if newHome != oldHome {
			if conn, err := c.connLocked(newHome); err == nil {
				_ = conn.conn.Subscribe(inbox)
			}
			if conn, ok := c.conns[oldHome]; ok {
				_ = conn.conn.Unsubscribe(inbox)
			}
		}
	}
	c.mu.Unlock()
}

func (c *Client) repairInbox() {
	inbox := plan.InboxChannel(c.cfg.NodeID)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	home := c.local.Base().Home(inbox)
	if conn, err := c.connLocked(home); err == nil {
		_ = conn.conn.Subscribe(inbox)
	}
}

// maintain runs the entry-timer sweep (§IV-A5) and subscription repair.
func (c *Client) maintain() {
	defer close(c.done)
	interval := c.cfg.EntryTimeout / 4
	if interval < time.Second {
		interval = time.Second
	}
	ticker := c.cfg.Clock.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C():
			c.sweep()
		case <-c.stop:
			return
		}
	}
}

func (c *Client) sweep() {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	var repairs []string
	c.local.Sweep(now, func(ch string) bool {
		_, subscribed := c.subs[ch]
		return subscribed
	})
	for ch, sub := range c.subs {
		if sub.broken {
			sub.broken = false
			repairs = append(repairs, ch)
		}
	}
	for _, ch := range repairs {
		sub := c.subs[ch]
		entry := c.lookupLocked(ch)
		targets := plan.SubscribeTargets(entry, ch, c.clientKey())
		sub.servers = append([]plan.ServerID(nil), targets...)
		if err := c.subscribeOnLocked(ch, targets); err != nil {
			sub.broken = true // retry next sweep
		}
	}
	c.mu.Unlock()
}

// connHandler routes transport events back into the client.
type connHandler struct {
	c  *Client
	cc *clientConn
}

func (h *connHandler) OnMessage(channel string, payload []byte) {
	h.c.handleMessage(channel, payload)
}

func (h *connHandler) OnDisconnect(error) {
	h.c.handleDisconnectedConn(h.cc)
}

// added returns the servers in next that are not in prev.
func added(prev, next []plan.ServerID) []plan.ServerID {
	var out []plan.ServerID
	for _, s := range next {
		if !containsServer(prev, s) {
			out = append(out, s)
		}
	}
	return out
}

// removed returns the servers in prev that are not in next.
func removed(prev, next []plan.ServerID) []plan.ServerID {
	var out []plan.ServerID
	for _, s := range prev {
		if !containsServer(next, s) {
			out = append(out, s)
		}
	}
	return out
}

func containsServer(list []plan.ServerID, s plan.ServerID) bool {
	for _, have := range list {
		if have == s {
			return true
		}
	}
	return false
}
