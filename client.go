package dynamoth

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/hotstate"
	"github.com/dynamoth/dynamoth/internal/localplan"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/metrics"
	"github.com/dynamoth/dynamoth/internal/obs"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/trace"
	"github.com/dynamoth/dynamoth/internal/transport"
)

// Message is a publication delivered to a subscriber.
type Message struct {
	// Channel the publication was made on.
	Channel string
	// Payload is the application data. The slice is owned by the receiver.
	Payload []byte
	// Publisher is the numeric node ID of the publishing client (0 if
	// unknown).
	Publisher uint32
	// ChannelEpoch and ChannelSeq are the broker-assigned replay position of
	// this publication: the ring incarnation it was retained under and its
	// dense per-channel sequence within it. Both are 0 when the delivering
	// broker has replay disabled.
	ChannelEpoch uint64
	ChannelSeq   uint64
}

// Config configures a client.
type Config struct {
	// Addrs maps bootstrap pub/sub server IDs to TCP addresses. Used by
	// Connect; ignored when a custom dialer is supplied.
	Addrs map[string]string
	// NodeID identifies this client; 0 picks a random ID. IDs must be
	// unique across the deployment (they key message deduplication).
	NodeID uint32
	// EntryTimeout is the local plan entry timer of §IV-A5: entries unused
	// for this long (and not subscribed) revert to consistent hashing.
	// Default 30 s.
	EntryTimeout time.Duration
	// LocalPlanCap bounds the learned-route cache: beyond it, cold entries
	// are evicted and fall back to consistent hashing (subscribed channels
	// are pinned and never evicted). 0 means localplan.DefaultCap; negative
	// means unbounded.
	LocalPlanCap int
	// DedupWindowCap bounds concurrently open dedup windows. An evicted
	// window is flushed — its suppressed count is recorded to the flight
	// recorder — so exactly-once accounting survives eviction. 0 means
	// DefaultDedupWindowCap; negative means unbounded.
	DedupWindowCap int
	// SubscribeBuffer is the per-subscription delivery buffer; when full,
	// new messages are dropped (slow application). Default 256.
	SubscribeBuffer int
	// Clock provides time (default real). Accelerated tests inject a
	// scaled clock.
	Clock clock.Clock
	// Seed seeds the replica-picking RNG (0 = nondeterministic).
	Seed int64
	// DialTimeout bounds TCP connection establishment for Connect's dialer
	// (default 5 s). Ignored when a custom dialer is supplied to
	// ConnectWithDialer.
	DialTimeout time.Duration
	// RedialMin and RedialMax bound the jittered exponential backoff
	// between reconnection attempts to a failed server (defaults 100 ms
	// and 5 s). While a server is backing off, publishes and subscription
	// repairs fail over to its ring successor instead of redialing it.
	RedialMin time.Duration
	RedialMax time.Duration
	// Recorder receives the client's reconfiguration events (switch
	// receipts, migrations, dedup windows, redials, substitutions). Nil
	// records nothing; the publish and delivery hot paths are untouched
	// either way.
	Recorder *trace.Recorder
	// OnReplayGap is invoked when a re-homed subscription's resume cursor
	// asked for frames the broker's replay ring had already overwritten — a
	// definite, unrecoverable delivery gap of missed frames on channel. Nil
	// means the gap is only counted (Stats.ReplayGapFrames and the
	// dynamoth_client_replay_gap_unrecoverable_total metric). Called from the
	// client's control plane; implementations must not call back into the
	// client synchronously.
	OnReplayGap func(channel string, missed uint64)
	// Region declares the subscriber region this client runs in (e.g.
	// "eu-west"). It is announced to every server the client connects to,
	// letting brokers attribute delivery latency per region in their LLA
	// reports — the signal latency-aware placement consumes. Empty declares
	// nothing and costs nothing.
	Region string
	// Logger receives structured client logs. Nil discards.
	Logger *slog.Logger
}

// DefaultDedupWindowCap bounds concurrently open dedup windows when
// Config.DedupWindowCap is 0. Windows exist only during migration overlap,
// so the cap is generous; eviction flushes the window's accounting.
const DefaultDedupWindowCap = 4096

func (c *Config) fillDefaults() error {
	if c.EntryTimeout <= 0 {
		c.EntryTimeout = 30 * time.Second
	}
	if c.LocalPlanCap == 0 {
		c.LocalPlanCap = localplan.DefaultCap
	} else if c.LocalPlanCap < 0 {
		c.LocalPlanCap = 0 // unbounded
	}
	if c.DedupWindowCap == 0 {
		c.DedupWindowCap = DefaultDedupWindowCap
	} else if c.DedupWindowCap < 0 {
		c.DedupWindowCap = 0 // unbounded
	}
	if c.SubscribeBuffer <= 0 {
		c.SubscribeBuffer = 256
	}
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.NodeID == 0 {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return fmt.Errorf("dynamoth: generating node ID: %w", err)
		}
		c.NodeID = binary.LittleEndian.Uint32(b[:]) | 1 // never zero
	}
	if c.Seed == 0 {
		c.Seed = int64(c.NodeID)
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RedialMin <= 0 {
		c.RedialMin = 100 * time.Millisecond
	}
	if c.RedialMax <= 0 {
		c.RedialMax = 5 * time.Second
	}
	return nil
}

// Client errors.
var (
	ErrClosed        = errors.New("dynamoth: client closed")
	ErrNotSubscribed = errors.New("dynamoth: not subscribed")
	ErrNoServers     = errors.New("dynamoth: no bootstrap servers")
)

// Stats are client-side counters.
type Stats struct {
	Published  uint64 // publications sent (per target server)
	Received   uint64 // data messages delivered to the application
	Duplicates uint64 // messages suppressed by deduplication
	// DuplicatesSuppressed counts duplicates absorbed inside an open dedup
	// window (a migration's overlap period) — the subset of Duplicates that
	// the reconfiguration machinery predicted and accounted to a rebalance.
	DuplicatesSuppressed uint64
	Dropped              uint64 // messages dropped on full subscription buffers
	Redirects            uint64 // wrong-server/switch notifications processed
	DialFailures         uint64 // failed dial attempts (each arms redial backoff)
	Redials              uint64 // successful reconnections after a failure or disconnect
	// ReplayRequests counts cursor-based resubscribes issued when a
	// subscription was re-homed; ReplayedFrames is how many retained frames
	// brokers replayed to fill the resulting gaps. ReplayGapFrames counts
	// frames declared unrecoverable (the ring had already overwritten them) —
	// the only delivery loss the replay machinery cannot close.
	ReplayRequests  uint64
	ReplayedFrames  uint64
	ReplayGapFrames uint64
}

// Client is a Dynamoth pub/sub client: a standard publish/subscribe API
// backed by a lazily maintained partial plan (§II-C).
//
// The steady-state hot paths — Publish and message delivery — run against an
// immutable routing snapshot behind an atomic pointer and take no
// client-wide lock; c.mu serializes only control-plane mutations (plan
// updates, subscription changes, dialing, repair), each of which republishes
// the snapshot.
type Client struct {
	cfg    Config
	dialer transport.Dialer
	gen    *message.Generator
	dedup  *message.Deduper

	// rngState is the xorshift64 state behind pick (replica selection for
	// replicated channels) — lock-free, seeded from cfg.Seed.
	rngState atomic.Uint64

	// route is the copy-on-write snapshot read by Publish/deliver/touch.
	route atomic.Pointer[routeTable]

	// backoff computes redial delays; dials (under c.mu) holds the sticky
	// per-server failure state that gates connLocked.
	backoff transport.Backoff

	mu    sync.Mutex
	local *localplan.Store
	conns map[plan.ServerID]*clientConn
	dials map[plan.ServerID]*dialBackoff
	subs  map[string]*subscription
	// windows holds open dedup windows by channel, capacity-bounded; its
	// eviction callback flushes the evicted window's suppressed count to the
	// recorder so exactly-once accounting survives eviction. All mutations
	// happen under c.mu.
	windows *hotstate.Cache[string, *dedupWindow]
	closed  bool

	published    atomic.Uint64
	received     atomic.Uint64
	duplicates   atomic.Uint64
	suppressed   atomic.Uint64 // duplicates absorbed inside a dedup window
	dropped      atomic.Uint64
	redirects    atomic.Uint64
	dialFailures atomic.Uint64
	redials      atomic.Uint64

	replayRequests atomic.Uint64 // cursor resubscribes issued
	replayedFrames atomic.Uint64 // frames brokers replayed for us
	replayGaps     atomic.Uint64 // frames declared unrecoverable

	rec *trace.Recorder
	log *slog.Logger

	// e2e observes publish→deliver latency: publications are stamped in
	// sendToConns and the stamp is read back on every data delivery. This is
	// the full-path measurement behind the paper's latency CDFs (Fig. 8).
	e2e *metrics.Histogram
	// The client-side stage waterfall, decomposing e2e per delivery using
	// the broker's in-place stage marks: ingress (publisher send → broker
	// Publish entry), fanout (entry → fan-out enqueue), deliver (fan-out
	// enqueue → this client). The three legs sum to e2e exactly — all four
	// durations derive from one clock read against the same frame.
	stageIngress *metrics.Histogram
	stageFanout  *metrics.Histogram
	stageDeliver *metrics.Histogram
	// skewClamped counts deliveries whose e2e latency came out negative
	// (cross-machine clock skew) and was clamped by Observe — exported so
	// skew is visible instead of silently swallowed.
	skewClamped atomic.Uint64

	// repairKick wakes maintain for an immediate repair sweep after a
	// disconnect (capacity 1; losing a duplicate kick is fine).
	repairKick chan struct{}

	stop chan struct{}
	done chan struct{}
}

// dedupWindow tracks one channel's duplicate-suppression window: opened when
// a migration creates delivery overlap (a switch-driven resubscribe or a
// failover repair), closed by the sweep once the overlap has aged out. The
// counters feed the per-rebalance timeline, matching the total suppressed
// duplicates against the client's counter. Guarded by Client.mu; duplicates
// are rare, so the lock never sits on the steady-state delivery path.
type dedupWindow struct {
	openedAt   time.Time
	plan       uint64 // plan version that triggered the window (0 = failover)
	suppressed int64
}

// dialBackoff is the sticky "server dead" state for one server: while
// Clock.Now() < nextTry every dial to it fails fast with lastErr, so
// publish and repair paths substitute a ring successor instead of
// hot-spinning against a dead endpoint. The state is dropped on the first
// successful dial.
type dialBackoff struct {
	attempts int
	nextTry  time.Time
	lastErr  error
}

// routeTable is an immutable snapshot of everything the lock-free paths
// need: learned plan entries (whose timers stay touchable through the shared
// *Learned values), the fallback ring, the dialed connection table, and the
// live subscriptions. Rebuilt under c.mu on every control-plane change.
type routeTable struct {
	base    *plan.Plan
	entries map[string]*localplan.Learned
	conns   map[plan.ServerID]*clientConn
	subs    map[string]*subscription
	closed  bool
}

type subscription struct {
	// outMu guards out against the send-vs-close race between lock-free
	// delivery and Unsubscribe/Close; it is per-subscription, so deliveries
	// on different channels never contend.
	outMu  sync.Mutex
	closed bool
	out    chan Message

	// servers and broken are guarded by Client.mu (control plane only).
	servers []plan.ServerID
	broken  bool // needs repair after a disconnect

	// track is the channel's delivery-continuity state: it turns the
	// (epoch, seq) stamps on arriving frames into the resume cursor a
	// re-homing presents to the new broker. It has its own lock and is never
	// replaced for the life of the subscription.
	track *seqTracker
}

// closeOut closes the delivery stream exactly once.
func (s *subscription) closeOut() {
	s.outMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.out)
	}
	s.outMu.Unlock()
}

type clientConn struct {
	conn   transport.Conn
	server plan.ServerID
	// noRetain records that conn.Publish consumes the payload before
	// returning, so publications may be encoded into pooled buffers.
	noRetain bool
}

// Connect dials a Dynamoth deployment over TCP using the bootstrap servers
// in cfg.Addrs.
func Connect(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, ErrNoServers
	}
	addrs := make(map[plan.ServerID]string, len(cfg.Addrs))
	servers := make([]string, 0, len(cfg.Addrs))
	for id, addr := range cfg.Addrs {
		addrs[id] = addr
		servers = append(servers, id)
	}
	d := transport.NewTCPDialer(addrs)
	if cfg.DialTimeout > 0 {
		d.DialTimeout = cfg.DialTimeout
	}
	return ConnectWithDialer(d, servers, cfg)
}

// ConnectWithDialer creates a client over an arbitrary transport. servers is
// the bootstrap server set (the consistent-hash ring of "plan 0"). Most
// callers use Connect or cluster.Cluster.NewClient instead.
func ConnectWithDialer(dialer transport.Dialer, servers []string, cfg Config) (*Client, error) {
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	c := &Client{
		cfg:    cfg,
		dialer: dialer,
		gen:    message.NewGenerator(cfg.NodeID),
		dedup:  message.NewDeduper(0),
		local:  localplan.NewWithCap(servers, cfg.EntryTimeout, cfg.LocalPlanCap),
		conns:  make(map[plan.ServerID]*clientConn),
		dials:  make(map[plan.ServerID]*dialBackoff),
		subs:   make(map[string]*subscription),
		rec:    cfg.Recorder,
		log:    trace.Component(cfg.Logger, "client"),
		e2e:    metrics.NewHistogram(100*time.Microsecond, 30*time.Second, 160),
		// Stage legs can be single-digit microseconds, so their floor sits
		// well below the e2e histogram's (see the node's stage histograms).
		stageIngress: metrics.NewHistogram(time.Microsecond, 30*time.Second, 200),
		stageFanout:  metrics.NewHistogram(time.Microsecond, 30*time.Second, 200),
		stageDeliver: metrics.NewHistogram(time.Microsecond, 30*time.Second, 200),
		repairKick:   make(chan struct{}, 1),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	// A window evicted under cap pressure flushes like a close: its
	// suppressed count reaches the recorder, keeping timeline sums equal to
	// the suppressed counter. The callback runs outside the cache's shard
	// locks (and takes no client lock, so it is safe under c.mu).
	c.windows = hotstate.New[string, *dedupWindow](hotstate.Config[string, *dedupWindow]{
		Capacity: cfg.DedupWindowCap,
		OnEvict: func(ch string, w *dedupWindow) {
			now := cfg.Clock.Now()
			c.rec.Record(trace.KindDedupClose, w.plan, ch, "evicted", w.suppressed, now.Sub(w.openedAt).Nanoseconds())
		},
	})
	// Backoff jitter uses its own per-client seeded source (no global rand
	// lock); Delay is only called under c.mu, so the unlocked source is safe.
	c.backoff = transport.Backoff{Min: cfg.RedialMin, Max: cfg.RedialMax, Rand: transport.NewJitter(cfg.Seed)}
	seed := uint64(cfg.Seed)
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	c.rngState.Store(seed)
	// Subscribe to this client's inbox so servers can redirect us
	// (§IV "Publishing on old server").
	inbox := plan.InboxChannel(cfg.NodeID)
	c.mu.Lock()
	home := c.local.Base().Home(inbox)
	conn, err := c.connLocked(home)
	if err != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("dynamoth: connecting to bootstrap server %s: %w", home, err)
	}
	if err := conn.conn.Subscribe(inbox); err != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("dynamoth: subscribing inbox: %w", err)
	}
	c.rebuildRouteLocked()
	c.mu.Unlock()
	go c.maintain()
	return c, nil
}

// NodeID returns the client's node identity.
func (c *Client) NodeID() uint32 { return c.cfg.NodeID }

// Stats returns a snapshot of client counters.
func (c *Client) Stats() Stats {
	return Stats{
		Published:            c.published.Load(),
		Received:             c.received.Load(),
		Duplicates:           c.duplicates.Load(),
		DuplicatesSuppressed: c.suppressed.Load(),
		Dropped:              c.dropped.Load(),
		Redirects:            c.redirects.Load(),
		DialFailures:         c.dialFailures.Load(),
		Redials:              c.redials.Load(),
		ReplayRequests:       c.replayRequests.Load(),
		ReplayedFrames:       c.replayedFrames.Load(),
		ReplayGapFrames:      c.replayGaps.Load(),
	}
}

// E2ELatency returns the client's publish→deliver latency histogram:
// publications are stamped on send, and the stamp is read back when a data
// message arrives on any subscription.
func (c *Client) E2ELatency() *metrics.Histogram { return c.e2e }

// StageLatencies returns the client-side waterfall legs: ingress (publisher
// send → broker Publish entry), fanout (entry → fan-out enqueue) and deliver
// (fan-out enqueue → this client). Per delivery the three legs sum exactly
// to the e2e observation.
func (c *Client) StageLatencies() (ingress, fanout, deliver *metrics.Histogram) {
	return c.stageIngress, c.stageFanout, c.stageDeliver
}

// SkewClamped reports how many deliveries arrived with a negative e2e
// latency (cross-machine clock skew) that Observe clamped to zero.
func (c *Client) SkewClamped() uint64 { return c.skewClamped.Load() }

// RegisterMetrics exports the client's counters and end-to-end latency
// histogram on r under the dynamoth_client_* namespace. All reads happen at
// scrape time; registration adds nothing to the publish or delivery paths.
func (c *Client) RegisterMetrics(r *obs.Registry) {
	r.Counter("dynamoth_client_published_total",
		"Publications sent (counted per target server).",
		c.published.Load)
	r.Counter("dynamoth_client_received_total",
		"Data messages delivered to the application.",
		c.received.Load)
	r.Counter("dynamoth_client_duplicates_total",
		"Messages suppressed by deduplication.",
		c.duplicates.Load)
	r.Counter("dynamoth_client_duplicates_suppressed_total",
		"Duplicates absorbed inside an open dedup window (a migration's overlap period).",
		c.suppressed.Load)
	r.Counter("dynamoth_client_dropped_total",
		"Messages dropped on full subscription buffers.",
		c.dropped.Load)
	r.Counter("dynamoth_client_redirects_total",
		"Wrong-server and switch notifications processed.",
		c.redirects.Load)
	r.Counter("dynamoth_client_dial_failures_total",
		"Failed dial attempts (each arms redial backoff).",
		c.dialFailures.Load)
	r.Counter("dynamoth_client_redials_total",
		"Successful reconnections after a failure or disconnect.",
		c.redials.Load)
	r.Counter("dynamoth_client_replay_requests_total",
		"Cursor-based resubscribes issued when a subscription was re-homed.",
		c.replayRequests.Load)
	r.Counter("dynamoth_client_replayed_total",
		"Frames brokers replayed to fill re-homing gaps.",
		c.replayedFrames.Load)
	r.Counter("dynamoth_client_replay_gap_unrecoverable_total",
		"Frames declared unrecoverable: the broker ring had already overwritten them.",
		c.replayGaps.Load)
	r.Counter("dynamoth_client_e2e_skew_clamped_total",
		"Deliveries whose e2e latency was negative (clock skew) and clamped to zero.",
		c.skewClamped.Load)
	r.Histogram("dynamoth_client_e2e_latency_seconds",
		"Publish-to-deliver latency observed by this client.",
		c.e2e, 0.5, 0.99, 0.999)
	r.Histogram("dynamoth_stage_latency_ingress_seconds",
		"Waterfall stage: publisher send to broker Publish entry.",
		c.stageIngress, 0.5, 0.99)
	r.Histogram("dynamoth_stage_latency_fanout_seconds",
		"Waterfall stage: broker Publish entry to fan-out enqueue.",
		c.stageFanout, 0.5, 0.99)
	r.Histogram("dynamoth_stage_latency_deliver_seconds",
		"Waterfall stage: broker fan-out enqueue to client delivery.",
		c.stageDeliver, 0.5, 0.99)
	r.RegisterCaches("dynamoth_client",
		hotstate.NamedStats{Name: "local_plan", Stats: c.local.CacheStats},
		hotstate.NamedStats{Name: "dedup_windows", Stats: c.windows.Stats},
	)
}

// Flush blocks until every publish the client has issued so far is on the
// wire and acknowledged by its server, or timeout elapses. Publishing is
// pipelined (writes are acked asynchronously), so "Publish returned" does not
// mean "the broker has the message" — callers that need that barrier (a CLI
// about to exit, a harness about to tear the broker down) previously guessed
// with a sleep. Transports that do not report outstanding writes are treated
// as already flushed.
func (c *Client) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		pending := int64(0)
		for _, cc := range c.conns {
			if o, ok := cc.conn.(interface{ Outstanding() int64 }); ok {
				pending += o.Outstanding()
			}
		}
		c.mu.Unlock()
		if pending == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dynamoth: flush timed out with %d publishes unacknowledged", pending)
		}
		time.Sleep(time.Millisecond)
	}
}

// Publish sends payload on channel, routed by the client's current plan
// knowledge (explicit entry, else consistent hashing).
//
// The steady-state path reads the routing snapshot and touches no
// client-wide lock; it falls back to the locked slow path only when a target
// server has no dialed connection yet.
func (c *Client) Publish(channel string, payload []byte) error {
	rt := c.route.Load()
	if rt == nil {
		return c.publishSlow(channel, payload)
	}
	if rt.closed {
		return ErrClosed
	}
	var version uint64
	var targetArr [1]plan.ServerID
	var targets []plan.ServerID
	if le, ok := rt.entries[channel]; ok {
		le.Touch(c.cfg.Clock.Now())
		version = le.Version()
		targets = plan.PublishTargets(le.Entry(), c.pick)
	} else {
		// Consistent-hash fallback: one target, no Entry allocation.
		targetArr[0] = rt.base.Home(channel)
		targets = targetArr[:]
	}
	var connArr [4]*clientConn
	conns := connArr[:0]
	for _, s := range targets {
		cc, ok := rt.conns[s]
		if !ok {
			return c.publishSlow(channel, payload) // needs a dial (or substitution)
		}
		conns = append(conns, cc)
	}
	return c.sendToConns(channel, payload, version, conns)
}

// publishSlow is the locked publish path: it resolves (dialing or
// substituting) connections for the channel's targets and republishes the
// routing snapshot so the next Publish takes the fast path.
func (c *Client) publishSlow(channel string, payload []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	entry, version := c.lookupVersionLocked(channel)
	targets := plan.PublishTargets(entry, c.pick)
	conns := make([]*clientConn, 0, len(targets))
	var dialErr error
	for _, s := range targets {
		conn, err := c.resolveConnLocked(channel, s)
		if err != nil {
			dialErr = err
			continue
		}
		conns = append(conns, conn)
	}
	c.rebuildRouteLocked()
	c.mu.Unlock()

	if len(conns) == 0 {
		if dialErr != nil {
			return fmt.Errorf("dynamoth: publish %q: %w", channel, dialErr)
		}
		return fmt.Errorf("dynamoth: publish %q: no target servers", channel)
	}
	return c.sendToConns(channel, payload, version, conns)
}

// sendToConns encodes the publication once and sends it to every target.
// When every target connection consumes the payload before Publish returns
// (transport.NonRetaining), the envelope is encoded into a pooled buffer.
func (c *Client) sendToConns(channel string, payload []byte, version uint64, conns []*clientConn) error {
	env := message.Envelope{
		Type:    message.TypeData,
		ID:      c.gen.Next(),
		Channel: channel,
		Payload: payload,
		// Publications carry the plan version the routing decision was
		// based on, so dispatchers can detect stale clients lazily.
		PlanVersion: version,
		// The publish stamp lets every hop (broker fan-out, subscriber
		// delivery) observe end-to-end latency.
		Stamp: c.cfg.Clock.Now().UnixNano(),
	}
	pooled := true
	for _, cc := range conns {
		if !cc.noRetain {
			pooled = false
			break
		}
	}
	var data []byte
	var buf *[]byte
	if pooled {
		buf = message.GetBuffer()
		data = env.AppendMarshal((*buf)[:0])
	} else {
		data = env.Marshal()
	}
	var firstErr error
	for _, cc := range conns {
		if err := cc.conn.Publish(channel, data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			c.handleDisconnectedConn(cc, err)
			continue
		}
		c.published.Add(1)
	}
	if buf != nil {
		*buf = data[:0]
		message.PutBuffer(buf)
	}
	return firstErr
}

// Subscribe registers interest in channel and returns the delivery stream.
// Subscribing twice to the same channel returns the same stream.
func (c *Client) Subscribe(channel string) (<-chan Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if sub, ok := c.subs[channel]; ok {
		return sub.out, nil
	}
	entry := c.lookupLocked(channel)
	targets := plan.SubscribeTargets(entry, channel, c.clientKey())
	sub := &subscription{
		out:     make(chan Message, c.cfg.SubscribeBuffer),
		servers: append([]plan.ServerID(nil), targets...),
		track:   &seqTracker{},
	}
	c.subs[channel] = sub
	if err := c.subscribeOnLocked(channel, targets); err != nil {
		delete(c.subs, channel)
		c.rebuildRouteLocked() // subscribeOnLocked may have dialed
		return nil, err
	}
	// Pin the channel's learned route (if any): §IV-A5 keeps subscribed
	// channels, so they must survive capacity eviction too.
	c.local.Pin(channel, true)
	c.rebuildRouteLocked()
	return sub.out, nil
}

// Unsubscribe drops interest in channel and closes its stream.
func (c *Client) Unsubscribe(channel string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	sub, ok := c.subs[channel]
	if !ok {
		return ErrNotSubscribed
	}
	delete(c.subs, channel)
	for _, s := range sub.servers {
		if conn, ok := c.conns[s]; ok {
			_ = conn.conn.Unsubscribe(channel) // best effort; conn may be dying
		}
	}
	c.local.Pin(channel, false) // route ages out normally from here
	c.rebuildRouteLocked()
	sub.closeOut()
	return nil
}

// Close shuts the client down, closing all connections and streams.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*clientConn, 0, len(c.conns))
	for _, conn := range c.conns {
		conns = append(conns, conn)
	}
	c.conns = make(map[plan.ServerID]*clientConn)
	for ch, sub := range c.subs {
		sub.closeOut()
		delete(c.subs, ch)
	}
	// Flush open dedup windows so their suppressed counts reach the flight
	// recorder (timeline sums stay equal to the suppressed counter).
	now := c.cfg.Clock.Now()
	for _, ch := range c.windows.AppendKeys(nil) {
		if w, ok := c.windows.Peek(ch); ok {
			c.closeWindowLocked(ch, w, now)
		}
	}
	c.rebuildRouteLocked()
	c.mu.Unlock()

	close(c.stop)
	for _, conn := range conns {
		_ = conn.conn.Close() // teardown
	}
	<-c.done
	return nil
}

// ---------------------------------------------------------------------------
// internals

func (c *Client) clientKey() string {
	return plan.InboxChannel(c.cfg.NodeID) // unique, stable per client
}

// pick selects a replica index via a lock-free xorshift64 step (replacing a
// mutex-guarded math/rand: pick sits on the publish fast path).
func (c *Client) pick(n int) int {
	for {
		old := c.rngState.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if c.rngState.CompareAndSwap(old, x) {
			return int(x % uint64(n))
		}
	}
}

// rebuildRouteLocked republishes the routing snapshot read by the lock-free
// paths. Must be called under c.mu at the end of every control-plane
// mutation (plan/ring updates, subscription changes, dialing, teardown).
func (c *Client) rebuildRouteLocked() {
	rt := &routeTable{
		base:    c.local.Base(),
		entries: make(map[string]*localplan.Learned, c.local.Len()),
		conns:   make(map[plan.ServerID]*clientConn, len(c.conns)),
		subs:    make(map[string]*subscription, len(c.subs)),
		closed:  c.closed,
	}
	c.local.Each(func(ch string, l *localplan.Learned) { rt.entries[ch] = l })
	for id, cc := range c.conns {
		rt.conns[id] = cc
	}
	for ch, sub := range c.subs {
		rt.subs[ch] = sub
	}
	c.route.Store(rt)
}

// lookupLocked resolves a channel against the local plan, falling back to
// consistent hashing, and touches the entry timer.
func (c *Client) lookupLocked(channel string) plan.Entry {
	e, _ := c.lookupVersionLocked(channel)
	return e
}

// lookupVersionLocked additionally reports the plan version the entry was
// learned at (0 for the consistent-hashing fallback).
func (c *Client) lookupVersionLocked(channel string) (plan.Entry, uint64) {
	return c.local.Lookup(channel, c.cfg.Clock.Now())
}

// resolveConnLocked returns a connection to target, substituting the next
// reachable ring candidate when target is gone (e.g. a released server still
// named by a stale mapping). The substitute's dispatcher will redirect us.
func (c *Client) resolveConnLocked(channel string, target plan.ServerID) (*clientConn, error) {
	conn, err := c.connLocked(target)
	if err == nil {
		return conn, nil
	}
	for _, cand := range c.local.Base().Ring().LookupN(channel, 16) {
		if cand == target {
			continue
		}
		if conn, cerr := c.connLocked(cand); cerr == nil {
			c.rec.Record(trace.KindSubstitute, 0, cand, channel, 0, 0)
			c.log.Info("substituted ring successor",
				slog.String("channel", channel),
				slog.String("for", target),
				slog.String("server", cand))
			return conn, nil
		}
	}
	return nil, err
}

// connLocked returns (dialing if needed) the connection to a server. A
// server inside its redial-backoff window fails fast without touching the
// network, so callers substitute a ring successor immediately; each failed
// dial extends the window exponentially (jittered, capped).
func (c *Client) connLocked(server plan.ServerID) (*clientConn, error) {
	if conn, ok := c.conns[server]; ok {
		return conn, nil
	}
	now := c.cfg.Clock.Now()
	ds := c.dials[server]
	if ds != nil && now.Before(ds.nextTry) {
		return nil, fmt.Errorf("dynamoth: server %s in redial backoff: %w", server, ds.lastErr)
	}
	cc := &clientConn{server: server}
	conn, err := c.dialer.Dial(server, &connHandler{c: c, cc: cc})
	if err != nil {
		c.dialFailures.Add(1)
		c.armBackoffLocked(server, err)
		// The detail stays static so the recorder's intern table cannot grow
		// with error text; the log twin carries the specific error.
		c.rec.Record(trace.KindDialFail, 0, server, "dial", 0, 0)
		c.log.Warn("dial failed", slog.String("server", server), slog.Any("err", err))
		return nil, err
	}
	if ds != nil {
		delete(c.dials, server)
		c.redials.Add(1)
		c.rec.Record(trace.KindRedial, 0, server, "", int64(ds.attempts), 0)
		c.log.Info("reconnected", slog.String("server", server), slog.Int("attempts", ds.attempts))
	}
	cc.conn = conn
	if nr, ok := conn.(transport.NonRetaining); ok && nr.PublishNonRetaining() {
		cc.noRetain = true
	}
	if c.cfg.Region != "" {
		if rd, ok := conn.(transport.RegionDeclarer); ok {
			if err := rd.DeclareRegion(c.cfg.Region); err != nil {
				// Attribution is best-effort: a server that cannot take the
				// declaration still serves traffic, just without region tags.
				c.log.Warn("region declaration failed",
					slog.String("server", server), slog.Any("err", err))
			}
		}
	}
	c.conns[server] = cc
	return cc, nil
}

// armBackoffLocked records a dial failure or disconnect for server and
// schedules the earliest next dial attempt.
func (c *Client) armBackoffLocked(server plan.ServerID, cause error) {
	ds := c.dials[server]
	if ds == nil {
		ds = &dialBackoff{}
		c.dials[server] = ds
	}
	ds.lastErr = cause
	ds.nextTry = c.cfg.Clock.Now().Add(c.backoff.Delay(ds.attempts))
	ds.attempts++
}

func (c *Client) subscribeOnLocked(channel string, targets []plan.ServerID) error {
	var firstErr error
	okCount := 0
	for _, s := range targets {
		conn, err := c.resolveConnLocked(channel, s)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := conn.conn.Subscribe(channel); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		okCount++
	}
	if okCount == 0 && firstErr != nil {
		return fmt.Errorf("dynamoth: subscribe %q: %w", channel, firstErr)
	}
	return nil
}

// replayOutcome summarizes one re-homing's cursor resubscribes so the caller
// can record traces and fire the gap callback after releasing c.mu.
type replayOutcome struct {
	attempted bool   // at least one cursor subscribe was issued
	replayed  int    // frames brokers queued to fill our gaps
	missed    uint64 // frames declared unrecoverable
}

// resubscribeOnLocked re-homes channel's subscription onto targets with the
// subscription's resume cursor: each target that supports cursor subscribes
// replays the frames we are owed before live flow; anything else (or a
// subscription with nothing to resume) degrades to a plain Subscribe. When a
// broker reports part of the cursor's range already overwritten, the gap is
// forgiven in the tracker — asking again can never succeed — and surfaced in
// the outcome.
func (c *Client) resubscribeOnLocked(channel string, targets []plan.ServerID, sub *subscription) (replayOutcome, error) {
	var out replayOutcome
	if sub == nil || sub.track == nil {
		return out, c.subscribeOnLocked(channel, targets)
	}
	cur, sent, ok := sub.track.cursor()
	if !ok {
		return out, c.subscribeOnLocked(channel, targets)
	}
	var firstErr error
	okCount := 0
	for _, s := range targets {
		conn, err := c.resolveConnLocked(channel, s)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		cs, can := conn.conn.(transport.CursorSubscriber)
		if !can {
			if err := conn.conn.Subscribe(channel); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			okCount++
			continue
		}
		res, err := cs.SubscribeCursor(channel, cur)
		if err != nil {
			// The cursor was rejected or the ack lost; a plain subscribe on
			// the same connection keeps live flow alive (the gap, if any,
			// stays open in the tracker for the next re-home to claim).
			if err2 := conn.conn.Subscribe(channel); err2 != nil {
				if firstErr == nil {
					firstErr = err2
				}
				continue
			}
			okCount++
			continue
		}
		okCount++
		out.attempted = true
		out.replayed += res.Replayed
		c.replayRequests.Add(1)
		c.replayedFrames.Add(uint64(res.Replayed))
		if res.Missed > 0 {
			// Missed is relative to the contiguous sequence we claimed for
			// the matched epoch: everything up to sent+missed is gone.
			sub.track.forgive(res.Epoch, sent[res.Epoch]+res.Missed)
			out.missed += res.Missed
			c.replayGaps.Add(res.Missed)
		}
	}
	if okCount == 0 && firstErr != nil {
		return out, fmt.Errorf("dynamoth: subscribe %q: %w", channel, firstErr)
	}
	return out, nil
}

// recordReplay emits the trace/log/callback side of a re-homing's replay,
// outside c.mu (OnReplayGap is user code).
func (c *Client) recordReplay(channel, detail string, planVersion uint64, out replayOutcome) {
	if !out.attempted {
		return
	}
	c.rec.Record(trace.KindReplay, planVersion, channel, detail, int64(out.replayed), int64(out.missed))
	if out.missed == 0 {
		return
	}
	c.rec.Record(trace.KindReplayGap, planVersion, channel, detail, int64(out.missed), 0)
	c.log.Warn("unrecoverable replay gap",
		slog.String("channel", channel),
		slog.String("reason", detail),
		slog.Uint64("missed", out.missed))
	if c.cfg.OnReplayGap != nil {
		c.cfg.OnReplayGap(channel, out.missed)
	}
}

// observeSeq consumes an arriving frame's (epoch, seq) for gap accounting
// without delivering it (the dedup-suppressed path).
func (c *Client) observeSeq(channel string, env *message.Envelope) {
	rt := c.route.Load()
	if rt == nil {
		return
	}
	if sub := rt.subs[channel]; sub != nil && sub.track != nil {
		sub.track.observe(env.Epoch, env.ChannelSeq, env.Stamp)
	}
}

// ReplayGaps reports the subscriptions' current open sequence holes: frames
// the replay machinery still expects a broker to replay or declare lost. At
// quiescence it is zero; the chaos suite asserts that.
func (c *Client) ReplayGaps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, sub := range c.subs {
		if sub.track != nil {
			n += sub.track.openGaps()
		}
	}
	return n
}

// handleMessage processes every inbound payload from any connection.
func (c *Client) handleMessage(channel string, payload []byte) {
	env, err := message.Unmarshal(payload)
	if err != nil {
		return // not Dynamoth traffic
	}
	switch env.Type {
	case message.TypeData, message.TypeForwarded:
		if c.dedup.Observe(env.ID) {
			c.duplicates.Add(1)
			// The suppressed copy still consumes its broker's (epoch, seq):
			// a forwarded frame re-stamped by another broker would otherwise
			// leave a phantom hole in that broker's sequence.
			c.observeSeq(channel, env)
			c.noteDuplicate(channel)
			return
		}
		if env.Stamp != 0 {
			now := c.cfg.Clock.Now().UnixNano()
			age := now - env.Stamp
			if age < 0 {
				// Observe clamps negative durations (cross-machine clock
				// skew); count the clamp so skew is visible, not swallowed.
				c.skewClamped.Add(1)
			}
			c.e2e.Observe(time.Duration(age))
			if env.StageIngressUs != 0 {
				c.stageIngress.Observe(time.Duration(env.StageIngressUs) * time.Microsecond)
				if env.StageFanoutUs >= env.StageIngressUs {
					c.stageFanout.Observe(time.Duration(env.StageFanoutUs-env.StageIngressUs) * time.Microsecond)
					// The deliver leg closes the waterfall: everything after
					// the broker's fan-out enqueue, measured against the same
					// clock read as e2e so the three legs sum to it exactly.
					c.stageDeliver.Observe(time.Duration(now - (env.Stamp + int64(env.StageFanoutUs)*1000)))
				}
			}
		}
		c.touch(channel)
		c.deliver(channel, env)
	case message.TypeSwitch:
		c.redirects.Add(1)
		c.rec.Record(trace.KindSwitchRecv, env.PlanVersion, env.Channel, "", 0, int64(len(env.Servers)))
		c.updateRing(env)
		c.applyEntryUpdate(env.Channel, env, true)
	case message.TypeWrongServer:
		c.redirects.Add(1)
		c.updateRing(env)
		c.applyEntryUpdate(env.Channel, env, false)
	default:
		// Plans, load reports and drain notifications are for the
		// infrastructure, not clients.
	}
}

func (c *Client) deliver(channel string, env *message.Envelope) {
	rt := c.route.Load()
	if rt == nil {
		return // bootstrap window; nothing subscribed yet
	}
	sub := rt.subs[channel]
	if sub == nil {
		return // already unsubscribed; late delivery
	}
	if sub.track != nil {
		sub.track.observe(env.Epoch, env.ChannelSeq, env.Stamp)
	}
	msg := Message{
		Channel: channel,
		// The transport transferred payload ownership to us (Handler docs)
		// and env.Payload aliases it, so it goes to the application without
		// another copy.
		Payload:      env.Payload,
		Publisher:    env.ID.Node,
		ChannelEpoch: env.Epoch,
		ChannelSeq:   env.ChannelSeq,
	}
	// The non-blocking send happens under the subscription's own mutex so it
	// cannot race closeOut in Unsubscribe/Close; deliveries on different
	// channels do not contend.
	sub.outMu.Lock()
	if sub.closed {
		sub.outMu.Unlock()
		return
	}
	select {
	case sub.out <- msg:
		sub.outMu.Unlock()
		c.received.Add(1)
	default:
		sub.outMu.Unlock()
		c.dropped.Add(1)
	}
}

// touch resets the plan-entry timer for a channel (§IV-A5: "the timer is
// reset whenever the client sends or receives a publication"). Entry timers
// are atomic, so the snapshot suffices — no lock.
func (c *Client) touch(channel string) {
	rt := c.route.Load()
	if rt == nil {
		return
	}
	if le, ok := rt.entries[channel]; ok {
		le.Touch(c.cfg.Clock.Now())
	}
}

// applyEntryUpdate installs the mapping carried by a switch or wrong-server
// notification and, for switches on subscribed channels, moves the
// subscription (subscribe to the new servers first, then unsubscribe from
// the abandoned ones; deduplication absorbs the overlap window).
func (c *Client) applyEntryUpdate(channel string, env *message.Envelope, resubscribe bool) {
	strategy := plan.Strategy(env.Strategy)
	if !strategy.Valid() || len(env.Servers) == 0 || channel == "" {
		return
	}
	newEntry := plan.Entry{Strategy: strategy, Servers: append([]plan.ServerID(nil), env.Servers...)}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if !c.local.Update(channel, newEntry, env.PlanVersion, c.cfg.Clock.Now()) {
		c.mu.Unlock()
		return // stale notification
	}
	sub := c.subs[channel]
	if sub != nil {
		// A fresh entry for a subscribed channel starts unpinned; re-pin so
		// the learned route survives eviction as long as the subscription.
		c.local.Pin(channel, true)
	}
	if sub == nil || !resubscribe {
		c.rebuildRouteLocked()
		c.mu.Unlock()
		return
	}
	oldServers := sub.servers
	newTargets := plan.SubscribeTargets(newEntry, channel, c.clientKey())
	sub.servers = append([]plan.ServerID(nil), newTargets...)
	// Subscribe on the new servers while still holding the lock (conn
	// operations don't re-enter the client mutex), presenting the resume
	// cursor so the new home replays anything the drain window would lose.
	replay, _ := c.resubscribeOnLocked(channel, added(oldServers, newTargets), sub)
	for _, s := range removed(oldServers, newTargets) {
		if conn, ok := c.conns[s]; ok {
			_ = conn.conn.Unsubscribe(channel) // best effort
		}
	}
	// The overlap between the old and new subscriptions can deliver the same
	// message twice; the dedup window accounts those suppressions to this
	// migration until the sweep closes it.
	c.openWindowLocked(channel, env.PlanVersion, "switch")
	c.rebuildRouteLocked()
	c.mu.Unlock()
	c.recordReplay(channel, "switch", env.PlanVersion, replay)
	c.rec.Record(trace.KindMigrate, env.PlanVersion, channel, "switch", 1, int64(len(newTargets)))
	c.log.Info("subscription migrated",
		slog.String("channel", channel),
		slog.Uint64("plan", env.PlanVersion),
		slog.Int("targets", len(newTargets)))
}

// noteDuplicate attributes one suppressed duplicate to the channel's open
// dedup window. Duplicates only occur during migration overlap, so taking
// the client lock here never touches the steady-state delivery path.
func (c *Client) noteDuplicate(channel string) {
	c.mu.Lock()
	// Get (not Peek) marks the window recently used, so a window actively
	// absorbing duplicates is the last candidate for capacity eviction.
	if w, ok := c.windows.Get(channel); ok {
		w.suppressed++
		c.suppressed.Add(1)
	}
	c.mu.Unlock()
	c.rec.Record(trace.KindDuplicate, 0, channel, "", 1, 0)
}

// openWindowLocked opens (or rolls over) the channel's dedup window. A
// window already tracking the same plan version keeps accumulating; a new
// plan version closes the previous window first so each rebalance gets its
// own suppressed count.
func (c *Client) openWindowLocked(channel string, planVersion uint64, detail string) {
	now := c.cfg.Clock.Now()
	if w, ok := c.windows.Get(channel); ok {
		if w.plan == planVersion {
			return
		}
		c.closeWindowLocked(channel, w, now)
	}
	// Put may evict a cold window at capacity; the cache's OnEvict flushes
	// it to the recorder, so no suppressed count is ever silently dropped.
	c.windows.Put(channel, &dedupWindow{openedAt: now, plan: planVersion})
	c.rec.Record(trace.KindDedupOpen, planVersion, channel, detail, 0, 0)
}

// closeWindowLocked closes a dedup window, recording how many duplicates it
// absorbed (Value) and how long it was open (Aux, nanoseconds). Delete does
// not fire OnEvict, so the window is recorded exactly once.
func (c *Client) closeWindowLocked(channel string, w *dedupWindow, now time.Time) {
	c.windows.Delete(channel)
	c.rec.Record(trace.KindDedupClose, w.plan, channel, "", w.suppressed, now.Sub(w.openedAt).Nanoseconds())
}

// errConnLost is the backoff cause when a connection died without a more
// specific error.
var errConnLost = errors.New("dynamoth: connection lost")

// handleDisconnectedConn drops a dead connection, arms redial backoff for
// its server (stopping hot-spin reconnects), marks affected subscriptions
// for repair, and wakes the maintenance loop to repair them immediately.
func (c *Client) handleDisconnectedConn(cc *clientConn, cause error) {
	if cause == nil {
		cause = errConnLost
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = cc.conn.Close()
		return
	}
	if current, ok := c.conns[cc.server]; ok && current == cc {
		delete(c.conns, cc.server)
	}
	c.armBackoffLocked(cc.server, cause)
	broken := false
	for _, sub := range c.subs {
		for _, s := range sub.servers {
			if s == cc.server {
				sub.broken = true
				broken = true
				break
			}
		}
	}
	inboxHome := c.local.Base().Home(plan.InboxChannel(c.cfg.NodeID))
	needInbox := inboxHome == cc.server
	c.rebuildRouteLocked()
	c.mu.Unlock()
	_ = cc.conn.Close()
	if needInbox {
		c.repairInbox()
	}
	if broken {
		// Stranded subscriptions move to surviving replicas now, not at the
		// next timer sweep.
		select {
		case c.repairKick <- struct{}{}:
		default:
		}
	}
}

// updateRing folds ring membership carried by control envelopes into the
// client's fallback ring (§II-C: clients hash over the active server set),
// re-homing the redirect inbox if its hash home moved.
func (c *Client) updateRing(env *message.Envelope) {
	if len(env.RingServers) == 0 {
		return
	}
	inbox := plan.InboxChannel(c.cfg.NodeID)
	c.mu.Lock()
	oldHome := c.local.Base().Home(inbox)
	changed := c.local.UpdateRing(env.RingServers, env.PlanVersion)
	var newHome plan.ServerID
	if changed {
		newHome = c.local.Base().Home(inbox)
		if newHome != oldHome {
			if conn, err := c.connLocked(newHome); err == nil {
				_ = conn.conn.Subscribe(inbox)
			}
			if conn, ok := c.conns[oldHome]; ok {
				_ = conn.conn.Unsubscribe(inbox)
			}
		}
		c.rebuildRouteLocked()
	}
	c.mu.Unlock()
}

func (c *Client) repairInbox() {
	inbox := plan.InboxChannel(c.cfg.NodeID)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	home := c.local.Base().Home(inbox)
	// Substitute the home's ring successor when it is unreachable: the
	// dispatchers' redirect hashing walks the same ring once the repaired
	// plan lands, so redirects find us there.
	if conn, err := c.resolveConnLocked(inbox, home); err == nil {
		_ = conn.conn.Subscribe(inbox)
	}
	c.rebuildRouteLocked()
}

// sweepInterval is the maintenance cadence: entry-timer sweeps, repair, and
// dedup-window expiry all run on it. It also bounds how long a dedup window
// stays open past its migration.
func (c *Client) sweepInterval() time.Duration {
	interval := c.cfg.EntryTimeout / 4
	if interval < time.Second {
		interval = time.Second
	}
	return interval
}

// maintain runs the entry-timer sweep (§IV-A5) and subscription repair.
func (c *Client) maintain() {
	defer close(c.done)
	ticker := c.cfg.Clock.NewTicker(c.sweepInterval())
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C():
			c.sweep()
		case <-c.repairKick:
			c.sweep()
		case <-c.stop:
			return
		}
	}
}

func (c *Client) sweep() {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	var repairs []string
	swept := c.local.Sweep(now, func(ch string) bool {
		_, subscribed := c.subs[ch]
		return subscribed
	})
	for ch, sub := range c.subs {
		if sub.broken {
			sub.broken = false
			repairs = append(repairs, ch)
		}
	}
	type repairedReplay struct {
		ch  string
		out replayOutcome
	}
	var replays []repairedReplay
	for _, ch := range repairs {
		sub := c.subs[ch]
		entry := c.lookupLocked(ch)
		targets := plan.SubscribeTargets(entry, ch, c.clientKey())
		sub.servers = append([]plan.ServerID(nil), targets...)
		// The resume cursor turns the failover from "hope the overlap covered
		// it" into an explicit replay of the crash window from the successor's
		// ring (or, after a redial, from the same broker's ring).
		replay, err := c.resubscribeOnLocked(ch, targets, sub)
		if err != nil {
			sub.broken = true // retry next sweep
			continue
		}
		replays = append(replays, repairedReplay{ch, replay})
		// Failover re-homing can overlap with the old server's tail or the
		// repaired plan's forwarding: open a dedup window for the transition
		// (plan 0 — the timeline attributes it to the enclosing repair).
		c.openWindowLocked(ch, 0, "failover")
		c.rec.Record(trace.KindMigrate, 0, ch, "failover", 1, int64(len(targets)))
		c.log.Info("subscription repaired",
			slog.String("channel", ch),
			slog.Int("targets", len(targets)))
	}
	// Expire dedup windows whose migration overlap has aged out. Expired
	// windows are collected first (Range must not re-enter the cache), then
	// closed so each flush is recorded.
	windowTTL := c.sweepInterval()
	type expired struct {
		ch string
		w  *dedupWindow
	}
	var expiredWindows []expired
	c.windows.Range(func(ch string, w *dedupWindow) bool {
		if now.Sub(w.openedAt) >= windowTTL {
			expiredWindows = append(expiredWindows, expired{ch, w})
		}
		return true
	})
	for _, e := range expiredWindows {
		c.closeWindowLocked(e.ch, e.w, now)
	}
	if swept > 0 || len(repairs) > 0 {
		c.rebuildRouteLocked()
	}
	c.mu.Unlock()
	for _, r := range replays {
		c.recordReplay(r.ch, "failover", 0, r.out)
	}
}

// connHandler routes transport events back into the client.
type connHandler struct {
	c  *Client
	cc *clientConn
}

func (h *connHandler) OnMessage(channel string, payload []byte) {
	h.c.handleMessage(channel, payload)
}

func (h *connHandler) OnDisconnect(err error) {
	h.c.handleDisconnectedConn(h.cc, err)
}

// added returns the servers in next that are not in prev.
func added(prev, next []plan.ServerID) []plan.ServerID {
	var out []plan.ServerID
	for _, s := range next {
		if !containsServer(prev, s) {
			out = append(out, s)
		}
	}
	return out
}

// removed returns the servers in prev that are not in next.
func removed(prev, next []plan.ServerID) []plan.ServerID {
	var out []plan.ServerID
	for _, s := range prev {
		if !containsServer(next, s) {
			out = append(out, s)
		}
	}
	return out
}

func containsServer(list []plan.ServerID, s plan.ServerID) bool {
	for _, have := range list {
		if have == s {
			return true
		}
	}
	return false
}
