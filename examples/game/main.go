// Game: a miniature RGame (the paper's evaluation workload, §V-A) running
// against an embedded Dynamoth cluster over the public API. AI players walk
// a tiled world, subscribe to the tile they are in and publish position
// updates on it; everyone in a tile sees everyone else. Live stats show the
// publish→notify round trip the paper measures.
//
//	go run ./examples/game
package main

import (
	"encoding/binary"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"sync"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/cluster"
	"github.com/dynamoth/dynamoth/internal/workload"
)

const (
	players  = 24
	duration = 6 * time.Second
	rate     = 3 // state updates per second, as in the paper
)

func main() {
	// The cluster's structured logs (component-tagged reconfiguration events)
	// share this logger; warnings and errors surface on stderr while the
	// demo's own narration stays on stdout.
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))

	c, err := cluster.Start(cluster.Options{InitialServers: 2, Logger: logger})
	if err != nil {
		logger.Error("cluster start failed", slog.Any("err", err))
		os.Exit(1)
	}
	defer c.Stop()

	world := workload.Config{TilesX: 4, TilesY: 4, Speed: 120}.FillDefaults()

	var (
		mu       sync.Mutex
		rttSum   time.Duration
		rttCount int
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for i := 0; i < players; i++ {
		client, err := c.NewClient(dynamoth.Config{NodeID: uint32(1000 + i)})
		if err != nil {
			logger.Error("client connect failed", slog.Any("err", err))
			os.Exit(1)
		}
		defer client.Close()

		rng := rand.New(rand.NewSource(int64(i + 1)))
		avatar := workload.NewPlayer(uint32(1000+i), world, rng)

		wg.Add(1)
		go func(client *dynamoth.Client, avatar *workload.Player, rng *rand.Rand) {
			defer wg.Done()
			msgs, err := client.Subscribe(avatar.Tile())
			if err != nil {
				logger.Warn("subscribe failed",
					slog.String("tile", avatar.Tile()), slog.Any("err", err))
				return
			}
			// Reader: time our own updates coming back (publish→notify).
			go func() {
				for m := range msgs {
					if m.Publisher == client.NodeID() && len(m.Payload) >= 8 {
						sent := time.Unix(0, int64(binary.LittleEndian.Uint64(m.Payload)))
						mu.Lock()
						rttSum += time.Since(sent)
						rttCount++
						mu.Unlock()
					}
				}
			}()

			ticker := time.NewTicker(time.Second / rate)
			defer ticker.Stop()
			start := time.Now()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				if changed, oldTile := avatar.Advance(time.Since(start), time.Second/rate, rng); changed {
					if newMsgs, err := client.Subscribe(avatar.Tile()); err == nil {
						msgs = newMsgs
					}
					_ = client.Unsubscribe(oldTile)
				}
				payload := make([]byte, 32)
				binary.LittleEndian.PutUint64(payload, uint64(time.Now().UnixNano()))
				copy(payload[8:], avatar.Update(nil)[:24])
				_ = client.Publish(avatar.Tile(), payload)
			}
		}(client, avatar, rng)
	}

	fmt.Printf("%d players walking a %dx%d tile world on %d servers...\n",
		players, world.TilesX, world.TilesY, c.ActiveServers())
	time.Sleep(duration)
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if rttCount == 0 {
		logger.Error("no round trips measured")
		os.Exit(1)
	}
	fmt.Printf("measured %d publish→notify round trips, mean %v\n",
		rttCount, (rttSum / time.Duration(rttCount)).Round(time.Microsecond))
	fmt.Printf("plan version %d after %d rebalances\n", c.PlanVersion(), c.Rebalances())
}
