// Elastic: watch the Dynamoth load balancer add and release servers as a
// load wave passes through — the behavior of the paper's Experiment 3, live.
// An accelerated clock compresses minutes of cluster time into seconds.
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/cluster"
	"github.com/dynamoth/dynamoth/internal/clock"
)

func main() {
	// 10× accelerated virtual time; tiny per-server capacity so a handful
	// of clients is enough to overload one server.
	clk := clock.NewScaled(time.Now(), 10)
	c, err := cluster.Start(cluster.Options{
		InitialServers: 1,
		MaxServers:     4,
		Clock:          clk,
		MaxOutgoingBps: 5_000,
		TWait:          3 * time.Second,
		BootDelay:      2 * time.Second,
		ReportEvery:    2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	const channels = 6
	var clients []*dynamoth.Client
	for i := 0; i < channels; i++ {
		cl, err := c.NewClient(dynamoth.Config{NodeID: uint32(100 + i), Clock: clk})
		if err != nil {
			log.Fatal(err)
		}
		clients = append(clients, cl)
		for j := 0; j < 2; j++ {
			if _, err := cl.Subscribe(fmt.Sprintf("room-%d", (i+j)%channels)); err != nil {
				log.Fatal(err)
			}
		}
	}
	pub, err := c.NewClient(dynamoth.Config{NodeID: 99, Clock: clk})
	if err != nil {
		log.Fatal(err)
	}
	clients = append(clients, pub)
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()

	fmt.Println("phase 1: load wave — publishing hard for ~6s real (1min virtual)")
	stop := make(chan struct{})
	go func() {
		payload := make([]byte, 120)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = pub.Publish(fmt.Sprintf("room-%d", i%channels), payload)
			i++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(20 * time.Second)
	last := 0
	for time.Now().Before(deadline) {
		if n := c.ActiveServers(); n != last {
			fmt.Printf("  servers: %d → %d (rebalances so far: %d)\n", last, n, c.Rebalances())
			last = n
		}
		if last >= 2 {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	close(stop)
	if last < 2 {
		log.Fatal("balancer never scaled up")
	}

	fmt.Println("phase 2: load gone — waiting for the balancer to release servers")
	deadline = time.Now().Add(40 * time.Second)
	for time.Now().Before(deadline) {
		if n := c.ActiveServers(); n != last {
			fmt.Printf("  servers: %d → %d\n", last, n)
			last = n
		}
		if last == 1 {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	fmt.Printf("final: %d server(s), %d rebalances, %.4f instance-hours of elastic capacity used\n",
		c.ActiveServers(), c.Rebalances(), c.InstanceHours())
}
