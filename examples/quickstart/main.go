// Quickstart: boot an embedded Dynamoth cluster, subscribe, publish, done.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/cluster"
)

func main() {
	// A complete deployment in one process: two pub/sub server nodes (each
	// with a local load analyzer and dispatcher) plus the load balancer.
	c, err := cluster.Start(cluster.Options{InitialServers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	sub, err := c.NewClient(dynamoth.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	pub, err := c.NewClient(dynamoth.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer pub.Close()

	msgs, err := sub.Subscribe("greetings")
	if err != nil {
		log.Fatal(err)
	}

	for i := 1; i <= 3; i++ {
		if err := pub.Publish("greetings", []byte(fmt.Sprintf("hello #%d", i))); err != nil {
			log.Fatal(err)
		}
	}

	for i := 0; i < 3; i++ {
		select {
		case m := <-msgs:
			fmt.Printf("received on %q: %s\n", m.Channel, m.Payload)
		case <-time.After(2 * time.Second):
			log.Fatal("timed out waiting for delivery")
		}
	}
	fmt.Println("quickstart complete — messages routed by the plan, 2 hops each.")
}
