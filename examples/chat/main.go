// Chat: a multi-room chat system over the Dynamoth public API — the classic
// channel-based pub/sub application. Four users join three rooms; each room
// is one Dynamoth channel spread over the server pool by the plan.
//
//	go run ./examples/chat
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/cluster"
)

type user struct {
	name   string
	client *dynamoth.Client
	rooms  []string
}

func main() {
	c, err := cluster.Start(cluster.Options{InitialServers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	users := []*user{
		{name: "ada", rooms: []string{"room.go", "room.distsys"}},
		{name: "bob", rooms: []string{"room.go"}},
		{name: "cyd", rooms: []string{"room.distsys", "room.random"}},
		{name: "dot", rooms: []string{"room.go", "room.random"}},
	}

	var wg sync.WaitGroup
	var mu sync.Mutex // serializes console output
	for _, u := range users {
		client, err := c.NewClient(dynamoth.Config{})
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		u.client = client
		for _, room := range u.rooms {
			msgs, err := client.Subscribe(room)
			if err != nil {
				log.Fatal(err)
			}
			wg.Add(1)
			go func(name, room string, msgs <-chan dynamoth.Message) {
				defer wg.Done()
				for m := range msgs {
					mu.Lock()
					fmt.Printf("%-4s saw %-13s | %s\n", name, m.Channel, m.Payload)
					mu.Unlock()
				}
			}(u.name, room, msgs)
		}
	}

	say := func(u *user, room, text string) {
		if err := u.client.Publish(room, []byte(u.name+": "+text)); err != nil {
			log.Fatal(err)
		}
	}
	say(users[0], "room.go", "channels or mutexes?")
	say(users[1], "room.go", "channels, obviously")
	say(users[2], "room.distsys", "anyone benchmarked the rebalancer?")
	say(users[0], "room.distsys", "60% more clients than consistent hashing")
	say(users[3], "room.random", "lunch?")

	time.Sleep(500 * time.Millisecond) // let deliveries land

	for _, u := range users {
		for _, room := range u.rooms {
			if err := u.client.Unsubscribe(room); err != nil {
				log.Fatal(err)
			}
		}
	}
	wg.Wait()
	fmt.Println("chat complete.")
}
