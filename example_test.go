package dynamoth_test

import (
	"fmt"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/cluster"
)

// Example runs a complete embedded deployment: two pub/sub server nodes
// (each with its local load analyzer and dispatcher) plus the load balancer,
// then publishes and receives one message.
func Example() {
	c, err := cluster.Start(cluster.Options{InitialServers: 2})
	if err != nil {
		fmt.Println("start:", err)
		return
	}
	defer c.Stop()

	sub, err := c.NewClient(dynamoth.Config{})
	if err != nil {
		fmt.Println("client:", err)
		return
	}
	defer sub.Close()
	pub, err := c.NewClient(dynamoth.Config{})
	if err != nil {
		fmt.Println("client:", err)
		return
	}
	defer pub.Close()

	msgs, err := sub.Subscribe("room.lobby")
	if err != nil {
		fmt.Println("subscribe:", err)
		return
	}
	if err := pub.Publish("room.lobby", []byte("hello")); err != nil {
		fmt.Println("publish:", err)
		return
	}
	select {
	case m := <-msgs:
		fmt.Printf("%s: %s\n", m.Channel, m.Payload)
	case <-time.After(5 * time.Second):
		fmt.Println("timeout")
	}
	// Output: room.lobby: hello
}

// ExampleClient_Subscribe shows the channel-based delivery stream and that a
// publisher subscribed to its own channel receives its own publications (the
// paper's response-time probe relies on this).
func ExampleClient_Subscribe() {
	c, err := cluster.Start(cluster.Options{InitialServers: 1})
	if err != nil {
		fmt.Println("start:", err)
		return
	}
	defer c.Stop()

	client, err := c.NewClient(dynamoth.Config{NodeID: 7})
	if err != nil {
		fmt.Println("client:", err)
		return
	}
	defer client.Close()

	msgs, err := client.Subscribe("tile-3-4")
	if err != nil {
		fmt.Println("subscribe:", err)
		return
	}
	if err := client.Publish("tile-3-4", []byte("pos=12,9")); err != nil {
		fmt.Println("publish:", err)
		return
	}
	select {
	case m := <-msgs:
		fmt.Printf("from node %d: %s\n", m.Publisher, m.Payload)
	case <-time.After(5 * time.Second):
		fmt.Println("timeout")
	}
	// Output: from node 7: pos=12,9
}
