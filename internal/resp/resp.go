// Package resp implements the Redis serialization protocol (RESP2).
//
// Dynamoth runs on top of unmodified, Redis-like pub/sub servers (paper
// §II-A); this package provides the wire format those servers and the client
// library speak over TCP: simple strings, errors, integers, bulk strings,
// arrays (including null bulk strings and null arrays), plus the inline
// command form. It is a from-scratch implementation against the public
// protocol specification.
package resp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Kind identifies a RESP value type.
type Kind uint8

// RESP value kinds.
const (
	KindSimpleString Kind = iota + 1
	KindError
	KindInteger
	KindBulkString
	KindArray
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindSimpleString:
		return "simple-string"
	case KindError:
		return "error"
	case KindInteger:
		return "integer"
	case KindBulkString:
		return "bulk-string"
	case KindArray:
		return "array"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a decoded RESP value.
type Value struct {
	Kind  Kind
	Str   []byte  // simple string, error, or bulk string contents
	Int   int64   // integer contents
	Array []Value // array elements
	Null  bool    // null bulk string ($-1) or null array (*-1)
}

// Protocol errors.
var (
	ErrProtocol = errors.New("resp: protocol error")
	ErrTooLarge = errors.New("resp: element exceeds size limit")
)

// MaxBulkLen bounds bulk string and array sizes to keep a corrupt or
// malicious length prefix from exhausting memory (Redis uses 512 MB; pub/sub
// payloads here are small, so we are stricter).
const MaxBulkLen = 64 << 20

// maxArrayLen bounds array element counts.
const maxArrayLen = 1 << 20

// ---------------------------------------------------------------------------
// Reader

// Reader decodes RESP values from a stream.
type Reader struct {
	br *bufio.Reader
	// line is the reusable scratch buffer behind readLine, so length
	// prefixes and integer replies cost no allocation per frame. Slices of
	// it never escape a single read: ReadValue copies simple strings and
	// errors before returning them.
	line []byte
}

// NewReader wraps r in a RESP decoder.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 16<<10)}
}

// ReadValue reads one complete RESP value.
func (r *Reader) ReadValue() (Value, error) {
	t, err := r.br.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch t {
	case '+':
		line, err := r.readLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: KindSimpleString, Str: append([]byte(nil), line...)}, nil
	case '-':
		line, err := r.readLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: KindError, Str: append([]byte(nil), line...)}, nil
	case ':':
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: KindInteger, Int: n}, nil
	case '$':
		return r.readBulk()
	case '*':
		return r.readArray()
	default:
		return Value{}, fmt.Errorf("%w: unexpected type byte %q", ErrProtocol, t)
	}
}

// ReadCommand reads a client command: either an array of bulk strings or an
// inline command (space-separated words on one line). It returns the
// arguments with the command name first.
func (r *Reader) ReadCommand() ([][]byte, error) {
	t, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if t != '*' {
		// Inline command.
		if err := r.br.UnreadByte(); err != nil {
			return nil, err
		}
		line, err := r.readLine()
		if err != nil {
			return nil, err
		}
		// Copy before splitting: the scratch line is overwritten by the
		// next read, while command args may outlive it.
		fields := bytes.Fields(append([]byte(nil), line...))
		if len(fields) == 0 {
			return nil, fmt.Errorf("%w: empty inline command", ErrProtocol)
		}
		return fields, nil
	}
	n, err := r.readInt()
	if err != nil {
		return nil, err
	}
	if n <= 0 || n > maxArrayLen {
		return nil, fmt.Errorf("%w: command array length %d", ErrProtocol, n)
	}
	args := make([][]byte, n)
	for i := range args {
		v, err := r.ReadValue()
		if err != nil {
			return nil, err
		}
		if v.Kind != KindBulkString || v.Null {
			return nil, fmt.Errorf("%w: command element %d is %s, want bulk string", ErrProtocol, i, v.Kind)
		}
		args[i] = v.Str
	}
	return args, nil
}

// messagePushPrefix is the fixed wire prefix of a ["message", channel,
// payload] push frame: array of 3, first element the 7-byte bulk "message".
var messagePushPrefix = []byte("*3\r\n$7\r\nmessage\r\n")

// ReadMessagePush reads one frame from a subscriber-mode connection,
// decoding the dominant ["message", channel, payload] push without building
// a generic Value tree: the fixed prefix is matched with a single
// Peek/Discard and only the channel and payload themselves are allocated,
// both owned by the caller. Any other frame (subscription acks, pmessage
// pushes) is consumed through the generic path and reported with ok=false
// unless it is itself a message push.
//
// The fast path peeks len(messagePushPrefix) bytes, so it is only suitable
// for streams whose every frame is at least that long — true of subscriber
// sockets, where the shortest frames are subscription acks.
func (r *Reader) ReadMessagePush() (channel string, payload []byte, ok bool, err error) {
	frag, perr := r.br.Peek(len(messagePushPrefix))
	if perr == nil && bytes.Equal(frag, messagePushPrefix) {
		r.br.Discard(len(messagePushPrefix)) //nolint:errcheck // cannot fail after Peek
		ch, err := r.expectBulk()
		if err != nil {
			return "", nil, false, err
		}
		pay, err := r.expectBulk()
		if err != nil {
			return "", nil, false, err
		}
		return string(ch), pay, true, nil
	}
	// Slow path: a non-message frame, or fewer than len(prefix) bytes left
	// before EOF. ReadValue consumes whatever is there and surfaces the real
	// error position.
	v, err := r.ReadValue()
	if err != nil {
		return "", nil, false, err
	}
	if v.Kind == KindArray && !v.Null && len(v.Array) == 3 && string(v.Array[0].Str) == "message" {
		return string(v.Array[1].Str), v.Array[2].Str, true, nil
	}
	return "", nil, false, nil
}

// ReadPush is ReadMessagePush for subscriber streams that also carry
// non-message frames the caller needs to inspect (csubscribe replay acks):
// a ["message", channel, payload] push takes the same allocation-free fast
// path and returns ok=true; any other frame is decoded generically and
// returned in v with ok=false.
func (r *Reader) ReadPush() (channel string, payload []byte, ok bool, v Value, err error) {
	frag, perr := r.br.Peek(len(messagePushPrefix))
	if perr == nil && bytes.Equal(frag, messagePushPrefix) {
		r.br.Discard(len(messagePushPrefix)) //nolint:errcheck // cannot fail after Peek
		ch, err := r.expectBulk()
		if err != nil {
			return "", nil, false, Value{}, err
		}
		pay, err := r.expectBulk()
		if err != nil {
			return "", nil, false, Value{}, err
		}
		return string(ch), pay, true, Value{}, nil
	}
	v, err = r.ReadValue()
	if err != nil {
		return "", nil, false, Value{}, err
	}
	if v.Kind == KindArray && !v.Null && len(v.Array) == 3 && string(v.Array[0].Str) == "message" {
		return string(v.Array[1].Str), v.Array[2].Str, true, Value{}, nil
	}
	return "", nil, false, v, nil
}

// expectBulk reads a non-null bulk string including its type byte.
func (r *Reader) expectBulk() ([]byte, error) {
	t, err := r.br.ReadByte()
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if t != '$' {
		return nil, fmt.Errorf("%w: expected bulk string, got type byte %q", ErrProtocol, t)
	}
	v, err := r.readBulk()
	if err != nil {
		return nil, err
	}
	if v.Null {
		return nil, fmt.Errorf("%w: unexpected null bulk string", ErrProtocol)
	}
	return v.Str, nil
}

func (r *Reader) readBulk() (Value, error) {
	n, err := r.readInt()
	if err != nil {
		return Value{}, err
	}
	if n == -1 {
		return Value{Kind: KindBulkString, Null: true}, nil
	}
	if n < 0 || n > MaxBulkLen {
		return Value{}, fmt.Errorf("%w: bulk length %d", ErrTooLarge, n)
	}
	// The payload must be an independent allocation (deliveries outlive
	// the read), sized exactly n with no CRLF tail waste. Fast path: when
	// payload+CRLF fit the bufio window, validate and copy straight out of
	// it in one step.
	if int(n)+2 <= r.br.Size() {
		frag, err := r.br.Peek(int(n) + 2)
		if err != nil {
			return Value{}, unexpectedEOF(err)
		}
		if frag[n] != '\r' || frag[n+1] != '\n' {
			return Value{}, fmt.Errorf("%w: bulk string missing CRLF terminator", ErrProtocol)
		}
		buf := make([]byte, n)
		copy(buf, frag)
		r.br.Discard(int(n) + 2) //nolint:errcheck // cannot fail after Peek
		return Value{Kind: KindBulkString, Str: buf}, nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return Value{}, unexpectedEOF(err)
	}
	var crlf [2]byte
	if _, err := io.ReadFull(r.br, crlf[:]); err != nil {
		return Value{}, unexpectedEOF(err)
	}
	if crlf[0] != '\r' || crlf[1] != '\n' {
		return Value{}, fmt.Errorf("%w: bulk string missing CRLF terminator", ErrProtocol)
	}
	return Value{Kind: KindBulkString, Str: buf}, nil
}

func (r *Reader) readArray() (Value, error) {
	n, err := r.readInt()
	if err != nil {
		return Value{}, err
	}
	if n == -1 {
		return Value{Kind: KindArray, Null: true}, nil
	}
	if n < 0 || n > maxArrayLen {
		return Value{}, fmt.Errorf("%w: array length %d", ErrTooLarge, n)
	}
	v := Value{Kind: KindArray}
	if n > 0 {
		v.Array = make([]Value, n)
		for i := range v.Array {
			elem, err := r.ReadValue()
			if err != nil {
				return Value{}, err
			}
			v.Array[i] = elem
		}
	}
	return v, nil
}

// readLine reads up to CRLF and returns the line without the terminator.
// The returned slice aliases the reader's scratch buffer and is only valid
// until the next read; callers that retain it must copy.
func (r *Reader) readLine() ([]byte, error) {
	frag, err := r.br.ReadSlice('\n')
	if err == nil {
		// Common case: the whole line sits in the bufio window, which is
		// stable until the next read — no copy, no allocation.
		if len(frag) < 2 || frag[len(frag)-2] != '\r' {
			return nil, fmt.Errorf("%w: line not CRLF-terminated", ErrProtocol)
		}
		return frag[:len(frag)-2], nil
	}
	// Slow path: the line spans bufio refills; accumulate fragments into
	// the reusable scratch buffer (never aliasing the bufio window).
	r.line = append(r.line[:0], frag...)
	for errors.Is(err, bufio.ErrBufferFull) {
		if len(r.line) > MaxBulkLen {
			return nil, fmt.Errorf("%w: line length %d", ErrTooLarge, len(r.line))
		}
		frag, err = r.br.ReadSlice('\n')
		r.line = append(r.line, frag...)
	}
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	line := r.line
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: line not CRLF-terminated", ErrProtocol)
	}
	return line[:len(line)-2], nil
}

func (r *Reader) readInt() (int64, error) {
	line, err := r.readLine()
	if err != nil {
		return 0, err
	}
	n, ok := parseInt(line)
	if !ok {
		return 0, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
	}
	return n, nil
}

// parseInt decodes a decimal integer without the string conversion (and its
// allocation) that strconv.ParseInt would cost on every length prefix.
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
		if i == len(b) {
			return 0, false
		}
	}
	var n int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
		if n < 0 {
			return 0, false // overflow
		}
	}
	if neg {
		n = -n
	}
	return n, true
}

func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ---------------------------------------------------------------------------
// Writer

// Writer encodes RESP values onto a stream. Callers must Flush to push
// buffered data out.
type Writer struct {
	bw *bufio.Writer
	// num is scratch for integer encoding, so length prefixes and integer
	// replies never allocate (strconv.AppendInt(nil, …) would).
	num [24]byte
}

// NewWriter wraps w in a RESP encoder.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 16<<10)}
}

// Flush writes any buffered data to the underlying stream.
func (w *Writer) Flush() error { return w.bw.Flush() }

// WriteSimpleString writes "+s\r\n".
func (w *Writer) WriteSimpleString(s string) error {
	w.bw.WriteByte('+') //nolint:errcheck // bufio sticky error checked at Flush
	w.bw.WriteString(s) //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteError writes "-msg\r\n".
func (w *Writer) WriteError(msg string) error {
	w.bw.WriteByte('-')   //nolint:errcheck
	w.bw.WriteString(msg) //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// writeHeader writes one type byte, a decimal integer, and CRLF — the shape
// of every RESP prefix — without allocating.
func (w *Writer) writeHeader(t byte, n int64) error {
	w.bw.WriteByte(t)                               //nolint:errcheck // sticky error checked below
	w.bw.Write(strconv.AppendInt(w.num[:0], n, 10)) //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteInteger writes ":n\r\n".
func (w *Writer) WriteInteger(n int64) error { return w.writeHeader(':', n) }

// WriteBulk writes a bulk string "$len\r\nbytes\r\n".
func (w *Writer) WriteBulk(b []byte) error {
	w.writeHeader('$', int64(len(b))) //nolint:errcheck
	w.bw.Write(b)                     //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteBulkString writes a string as a bulk string. The string's bytes are
// written directly to the buffer — no []byte(s) copy.
func (w *Writer) WriteBulkString(s string) error {
	w.writeHeader('$', int64(len(s))) //nolint:errcheck
	w.bw.WriteString(s)               //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteNullBulk writes the null bulk string "$-1\r\n".
func (w *Writer) WriteNullBulk() error {
	_, err := w.bw.WriteString("$-1\r\n")
	return err
}

// WriteArrayHeader writes "*n\r\n"; the caller then writes n elements.
func (w *Writer) WriteArrayHeader(n int) error { return w.writeHeader('*', int64(n)) }

// WriteMessage writes the Redis ["message", channel, payload] push frame in
// one allocation-free shot — the broker delivery hot path.
func (w *Writer) WriteMessage(channel string, payload []byte) error {
	w.bw.WriteString("*3\r\n$7\r\nmessage\r\n") //nolint:errcheck
	w.WriteBulkString(channel)                  //nolint:errcheck
	return w.WriteBulk(payload)
}

// WritePMessage writes the ["pmessage", pattern, channel, payload] frame for
// pattern-subscription deliveries.
func (w *Writer) WritePMessage(pattern, channel string, payload []byte) error {
	w.bw.WriteString("*4\r\n$8\r\npmessage\r\n") //nolint:errcheck
	w.WriteBulkString(pattern)                   //nolint:errcheck
	w.WriteBulkString(channel)                   //nolint:errcheck
	return w.WriteBulk(payload)
}

// WritePublish writes the ["PUBLISH", channel, payload] command frame in one
// allocation-free shot — the pipelined client publish hot path, mirroring
// WriteMessage on the delivery side.
func (w *Writer) WritePublish(channel string, payload []byte) error {
	w.bw.WriteString("*3\r\n$7\r\nPUBLISH\r\n") //nolint:errcheck // sticky error checked below
	w.WriteBulkString(channel)                  //nolint:errcheck
	return w.WriteBulk(payload)
}

// WriteCommandStrings writes a command whose name and arguments are strings,
// straight from the string bytes — no [][]byte conversion or per-argument
// allocation (the subscribe-path analogue of WritePublish).
func (w *Writer) WriteCommandStrings(cmd string, args ...string) error {
	if err := w.WriteArrayHeader(len(args) + 1); err != nil {
		return err
	}
	if err := w.WriteBulkString(cmd); err != nil {
		return err
	}
	for _, a := range args {
		if err := w.WriteBulkString(a); err != nil {
			return err
		}
	}
	return nil
}

// WriteCommand writes a command as an array of bulk strings.
func (w *Writer) WriteCommand(args ...[]byte) error {
	if err := w.WriteArrayHeader(len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if err := w.WriteBulk(a); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Append-style encoding
//
// These build frames into a caller-provided buffer (append semantics, like
// strconv.AppendInt), so a sink that owns a reusable scratch buffer can
// encode a burst of push frames and hand the kernel one contiguous write.

// AppendBulk appends "$len\r\nbytes\r\n" to dst.
func AppendBulk(dst, b []byte) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(b)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, b...)
	return append(dst, '\r', '\n')
}

// AppendBulkString appends a string as a bulk string to dst.
func AppendBulkString(dst []byte, s string) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// AppendMessage appends the ["message", channel, payload] push frame to dst.
func AppendMessage(dst []byte, channel string, payload []byte) []byte {
	dst = append(dst, "*3\r\n$7\r\nmessage\r\n"...)
	dst = AppendBulkString(dst, channel)
	return AppendBulk(dst, payload)
}

// AppendPMessage appends the ["pmessage", pattern, channel, payload] frame
// to dst.
func AppendPMessage(dst []byte, pattern, channel string, payload []byte) []byte {
	dst = append(dst, "*4\r\n$8\r\npmessage\r\n"...)
	dst = AppendBulkString(dst, pattern)
	dst = AppendBulkString(dst, channel)
	return AppendBulk(dst, payload)
}

// WriteValue writes an arbitrary decoded value back out (used by tests and
// proxies).
func (w *Writer) WriteValue(v Value) error {
	switch v.Kind {
	case KindSimpleString:
		return w.WriteSimpleString(string(v.Str))
	case KindError:
		return w.WriteError(string(v.Str))
	case KindInteger:
		return w.WriteInteger(v.Int)
	case KindBulkString:
		if v.Null {
			return w.WriteNullBulk()
		}
		return w.WriteBulk(v.Str)
	case KindArray:
		if v.Null {
			_, err := w.bw.WriteString("*-1\r\n")
			return err
		}
		if err := w.WriteArrayHeader(len(v.Array)); err != nil {
			return err
		}
		for _, e := range v.Array {
			if err := w.WriteValue(e); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: cannot encode kind %s", ErrProtocol, v.Kind)
	}
}
