// Package resp implements the Redis serialization protocol (RESP2).
//
// Dynamoth runs on top of unmodified, Redis-like pub/sub servers (paper
// §II-A); this package provides the wire format those servers and the client
// library speak over TCP: simple strings, errors, integers, bulk strings,
// arrays (including null bulk strings and null arrays), plus the inline
// command form. It is a from-scratch implementation against the public
// protocol specification.
package resp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Kind identifies a RESP value type.
type Kind uint8

// RESP value kinds.
const (
	KindSimpleString Kind = iota + 1
	KindError
	KindInteger
	KindBulkString
	KindArray
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindSimpleString:
		return "simple-string"
	case KindError:
		return "error"
	case KindInteger:
		return "integer"
	case KindBulkString:
		return "bulk-string"
	case KindArray:
		return "array"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a decoded RESP value.
type Value struct {
	Kind  Kind
	Str   []byte  // simple string, error, or bulk string contents
	Int   int64   // integer contents
	Array []Value // array elements
	Null  bool    // null bulk string ($-1) or null array (*-1)
}

// Protocol errors.
var (
	ErrProtocol = errors.New("resp: protocol error")
	ErrTooLarge = errors.New("resp: element exceeds size limit")
)

// MaxBulkLen bounds bulk string and array sizes to keep a corrupt or
// malicious length prefix from exhausting memory (Redis uses 512 MB; pub/sub
// payloads here are small, so we are stricter).
const MaxBulkLen = 64 << 20

// maxArrayLen bounds array element counts.
const maxArrayLen = 1 << 20

// ---------------------------------------------------------------------------
// Reader

// Reader decodes RESP values from a stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r in a RESP decoder.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 16<<10)}
}

// ReadValue reads one complete RESP value.
func (r *Reader) ReadValue() (Value, error) {
	t, err := r.br.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch t {
	case '+':
		line, err := r.readLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: KindSimpleString, Str: line}, nil
	case '-':
		line, err := r.readLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: KindError, Str: line}, nil
	case ':':
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: KindInteger, Int: n}, nil
	case '$':
		return r.readBulk()
	case '*':
		return r.readArray()
	default:
		return Value{}, fmt.Errorf("%w: unexpected type byte %q", ErrProtocol, t)
	}
}

// ReadCommand reads a client command: either an array of bulk strings or an
// inline command (space-separated words on one line). It returns the
// arguments with the command name first.
func (r *Reader) ReadCommand() ([][]byte, error) {
	t, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if t != '*' {
		// Inline command.
		if err := r.br.UnreadByte(); err != nil {
			return nil, err
		}
		line, err := r.readLine()
		if err != nil {
			return nil, err
		}
		fields := bytes.Fields(line)
		if len(fields) == 0 {
			return nil, fmt.Errorf("%w: empty inline command", ErrProtocol)
		}
		return fields, nil
	}
	n, err := r.readInt()
	if err != nil {
		return nil, err
	}
	if n <= 0 || n > maxArrayLen {
		return nil, fmt.Errorf("%w: command array length %d", ErrProtocol, n)
	}
	args := make([][]byte, n)
	for i := range args {
		v, err := r.ReadValue()
		if err != nil {
			return nil, err
		}
		if v.Kind != KindBulkString || v.Null {
			return nil, fmt.Errorf("%w: command element %d is %s, want bulk string", ErrProtocol, i, v.Kind)
		}
		args[i] = v.Str
	}
	return args, nil
}

func (r *Reader) readBulk() (Value, error) {
	n, err := r.readInt()
	if err != nil {
		return Value{}, err
	}
	if n == -1 {
		return Value{Kind: KindBulkString, Null: true}, nil
	}
	if n < 0 || n > MaxBulkLen {
		return Value{}, fmt.Errorf("%w: bulk length %d", ErrTooLarge, n)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return Value{}, unexpectedEOF(err)
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return Value{}, fmt.Errorf("%w: bulk string missing CRLF terminator", ErrProtocol)
	}
	return Value{Kind: KindBulkString, Str: buf[:n]}, nil
}

func (r *Reader) readArray() (Value, error) {
	n, err := r.readInt()
	if err != nil {
		return Value{}, err
	}
	if n == -1 {
		return Value{Kind: KindArray, Null: true}, nil
	}
	if n < 0 || n > maxArrayLen {
		return Value{}, fmt.Errorf("%w: array length %d", ErrTooLarge, n)
	}
	v := Value{Kind: KindArray}
	if n > 0 {
		v.Array = make([]Value, n)
		for i := range v.Array {
			elem, err := r.ReadValue()
			if err != nil {
				return Value{}, err
			}
			v.Array[i] = elem
		}
	}
	return v, nil
}

// readLine reads up to CRLF and returns the line without the terminator.
// The returned slice is an independent copy.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadBytes('\n')
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: line not CRLF-terminated", ErrProtocol)
	}
	out := make([]byte, len(line)-2)
	copy(out, line[:len(line)-2])
	return out, nil
}

func (r *Reader) readInt() (int64, error) {
	line, err := r.readLine()
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(string(line), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
	}
	return n, nil
}

func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ---------------------------------------------------------------------------
// Writer

// Writer encodes RESP values onto a stream. Callers must Flush to push
// buffered data out.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w in a RESP encoder.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 16<<10)}
}

// Flush writes any buffered data to the underlying stream.
func (w *Writer) Flush() error { return w.bw.Flush() }

// WriteSimpleString writes "+s\r\n".
func (w *Writer) WriteSimpleString(s string) error {
	w.bw.WriteByte('+') //nolint:errcheck // bufio sticky error checked at Flush
	w.bw.WriteString(s) //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteError writes "-msg\r\n".
func (w *Writer) WriteError(msg string) error {
	w.bw.WriteByte('-')   //nolint:errcheck
	w.bw.WriteString(msg) //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteInteger writes ":n\r\n".
func (w *Writer) WriteInteger(n int64) error {
	w.bw.WriteByte(':')                       //nolint:errcheck
	w.bw.Write(strconv.AppendInt(nil, n, 10)) //nolint:errcheck
	if _, err := w.bw.WriteString("\r\n"); err != nil {
		return err
	}
	return nil
}

// WriteBulk writes a bulk string "$len\r\nbytes\r\n".
func (w *Writer) WriteBulk(b []byte) error {
	w.bw.WriteByte('$')                                   //nolint:errcheck
	w.bw.Write(strconv.AppendInt(nil, int64(len(b)), 10)) //nolint:errcheck
	w.bw.WriteString("\r\n")                              //nolint:errcheck
	w.bw.Write(b)                                         //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteBulkString writes a string as a bulk string.
func (w *Writer) WriteBulkString(s string) error { return w.WriteBulk([]byte(s)) }

// WriteNullBulk writes the null bulk string "$-1\r\n".
func (w *Writer) WriteNullBulk() error {
	_, err := w.bw.WriteString("$-1\r\n")
	return err
}

// WriteArrayHeader writes "*n\r\n"; the caller then writes n elements.
func (w *Writer) WriteArrayHeader(n int) error {
	w.bw.WriteByte('*')                              //nolint:errcheck
	w.bw.Write(strconv.AppendInt(nil, int64(n), 10)) //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteCommand writes a command as an array of bulk strings.
func (w *Writer) WriteCommand(args ...[]byte) error {
	if err := w.WriteArrayHeader(len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if err := w.WriteBulk(a); err != nil {
			return err
		}
	}
	return nil
}

// WriteValue writes an arbitrary decoded value back out (used by tests and
// proxies).
func (w *Writer) WriteValue(v Value) error {
	switch v.Kind {
	case KindSimpleString:
		return w.WriteSimpleString(string(v.Str))
	case KindError:
		return w.WriteError(string(v.Str))
	case KindInteger:
		return w.WriteInteger(v.Int)
	case KindBulkString:
		if v.Null {
			return w.WriteNullBulk()
		}
		return w.WriteBulk(v.Str)
	case KindArray:
		if v.Null {
			_, err := w.bw.WriteString("*-1\r\n")
			return err
		}
		if err := w.WriteArrayHeader(len(v.Array)); err != nil {
			return err
		}
		for _, e := range v.Array {
			if err := w.WriteValue(e); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: cannot encode kind %s", ErrProtocol, v.Kind)
	}
}
