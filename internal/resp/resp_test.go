package resp

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteValue(v); err != nil {
		t.Fatalf("WriteValue: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := NewReader(&buf).ReadValue()
	if err != nil {
		t.Fatalf("ReadValue: %v", err)
	}
	return got
}

func TestRoundTripScalars(t *testing.T) {
	tests := []struct {
		name string
		v    Value
	}{
		{"simple", Value{Kind: KindSimpleString, Str: []byte("OK")}},
		{"error", Value{Kind: KindError, Str: []byte("ERR wrong server")}},
		{"integer", Value{Kind: KindInteger, Int: -42}},
		{"zero int", Value{Kind: KindInteger}},
		{"bulk", Value{Kind: KindBulkString, Str: []byte("hello\r\nworld\x00")}},
		{"empty bulk", Value{Kind: KindBulkString, Str: []byte{}}},
		{"null bulk", Value{Kind: KindBulkString, Null: true}},
		{"null array", Value{Kind: KindArray, Null: true}},
		{"empty array", Value{Kind: KindArray}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := roundTrip(t, tt.v)
			if got.Kind != tt.v.Kind || got.Int != tt.v.Int || got.Null != tt.v.Null {
				t.Fatalf("got %+v want %+v", got, tt.v)
			}
			if string(got.Str) != string(tt.v.Str) {
				t.Fatalf("Str=%q want %q", got.Str, tt.v.Str)
			}
		})
	}
}

func TestRoundTripNestedArray(t *testing.T) {
	v := Value{Kind: KindArray, Array: []Value{
		{Kind: KindBulkString, Str: []byte("message")},
		{Kind: KindBulkString, Str: []byte("chan")},
		{Kind: KindArray, Array: []Value{
			{Kind: KindInteger, Int: 7},
			{Kind: KindSimpleString, Str: []byte("nested")},
		}},
	}}
	got := roundTrip(t, v)
	if len(got.Array) != 3 {
		t.Fatalf("outer len=%d", len(got.Array))
	}
	inner := got.Array[2]
	if len(inner.Array) != 2 || inner.Array[0].Int != 7 || string(inner.Array[1].Str) != "nested" {
		t.Fatalf("nested array mangled: %+v", inner)
	}
}

func TestReadCommandArrayForm(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteCommand([]byte("PUBLISH"), []byte("ch"), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	args, err := NewReader(&buf).ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("PUBLISH"), []byte("ch"), []byte("payload")}
	if !reflect.DeepEqual(args, want) {
		t.Fatalf("args=%q want %q", args, want)
	}
}

func TestReadCommandInlineForm(t *testing.T) {
	r := NewReader(strings.NewReader("PING\r\nSUBSCRIBE  a   b\r\n"))
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 1 || string(args[0]) != "PING" {
		t.Fatalf("args=%q", args)
	}
	args, err = r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 3 || string(args[1]) != "a" || string(args[2]) != "b" {
		t.Fatalf("args=%q", args)
	}
}

func TestReadCommandPipelined(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 50; i++ {
		if err := w.WriteCommand([]byte("PING")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i := 0; i < 50; i++ {
		if _, err := r.ReadCommand(); err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
	}
	if _, err := r.ReadCommand(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after stream end, got %v", err)
	}
}

func TestProtocolErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"unknown type byte", "?x\r\n"},
		{"bare LF line", "+OK\n"},
		{"bad integer", ":abc\r\n"},
		{"negative bulk", "$-5\r\nxx\r\n"},
		{"bulk missing terminator", "$3\r\nabcXY"},
		{"array negative", "*-7\r\n"},
		{"command with non-bulk element", "*1\r\n:5\r\n"},
		{"empty inline", "\r\n"},
		{"zero-length command", "*0\r\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(tt.input))
			var err error
			if strings.HasPrefix(tt.name, "command") || strings.Contains(tt.name, "inline") || strings.HasPrefix(tt.input, "*0") {
				_, err = r.ReadCommand()
			} else {
				_, err = r.ReadValue()
			}
			if err == nil {
				t.Fatalf("input %q decoded without error", tt.input)
			}
			if errors.Is(err, io.EOF) {
				t.Fatalf("plain EOF for malformed input %q", tt.input)
			}
		})
	}
}

func TestTruncatedInputGivesUnexpectedEOF(t *testing.T) {
	full := "$10\r\n0123456789\r\n"
	for i := 1; i < len(full); i++ {
		r := NewReader(strings.NewReader(full[:i]))
		if _, err := r.ReadValue(); err == nil {
			t.Fatalf("truncated at %d decoded without error", i)
		}
	}
}

func TestOversizeRejected(t *testing.T) {
	r := NewReader(strings.NewReader("$99999999999\r\n"))
	if _, err := r.ReadValue(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	r = NewReader(strings.NewReader("*99999999\r\n"))
	if _, err := r.ReadValue(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestBulkRoundTripQuick(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteBulk(payload); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		v, err := NewReader(&buf).ReadValue()
		if err != nil {
			return false
		}
		return v.Kind == KindBulkString && bytes.Equal(v.Str, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCommandRoundTripQuick(t *testing.T) {
	f := func(name string, a, b []byte) bool {
		if name == "" {
			name = "X"
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteCommand([]byte(name), a, b); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		args, err := NewReader(&buf).ReadCommand()
		if err != nil {
			return false
		}
		return len(args) == 3 && string(args[0]) == name &&
			bytes.Equal(args[1], a) && bytes.Equal(args[2], b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindSimpleString: "simple-string",
		KindError:        "error",
		KindInteger:      "integer",
		KindBulkString:   "bulk-string",
		KindArray:        "array",
		Kind(99):         "kind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String()=%q want %q", k, got, want)
		}
	}
}
