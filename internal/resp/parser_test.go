package resp

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// buildStream encodes commands as RESP arrays of bulk strings.
func buildStream(cmds [][]string) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, cmd := range cmds {
		bs := make([][]byte, 0, len(cmd))
		for _, a := range cmd {
			bs = append(bs, []byte(a))
		}
		if err := w.WriteCommand(bs...); err != nil {
			panic(err)
		}
	}
	w.Flush() //nolint:errcheck
	return buf.Bytes()
}

// readAll decodes the whole stream with the buffered Reader — the reference
// the incremental parser must match.
func readAllBuffered(t *testing.T, stream []byte) [][][]byte {
	t.Helper()
	r := NewReader(bytes.NewReader(stream))
	var out [][][]byte
	for {
		args, err := r.ReadCommand()
		if err != nil {
			return out
		}
		cp := make([][]byte, len(args))
		for i, a := range args {
			cp[i] = append([]byte(nil), a...)
		}
		out = append(out, cp)
	}
}

// drain pulls every complete command currently buffered in p.
func drain(t *testing.T, p *CommandParser) [][][]byte {
	t.Helper()
	var out [][][]byte
	for {
		args, err := p.Next()
		if err != nil {
			t.Fatalf("parser error: %v", err)
		}
		if args == nil {
			return out
		}
		cp := make([][]byte, len(args))
		for i, a := range args {
			cp[i] = append([]byte(nil), a...)
		}
		out = append(out, cp)
	}
}

func equalCmds(a, b [][][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !bytes.Equal(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

var parserCmds = [][]string{
	{"SUBSCRIBE", "alpha", "beta"},
	{"PUBLISH", "alpha", strings.Repeat("x", 3000)},
	{"PING"},
	{"PUBLISH", "beta", ""},
	{"PSUBSCRIBE", "news.*"},
	{"PUBLISH", "alpha", "payload with \r\n embedded CRLF and \x00 nul"},
	{"UNSUBSCRIBE"},
	{"QUIT"},
}

// TestCommandParserSplitEveryBoundary feeds the stream split at every single
// byte offset and asserts the incremental parse matches the buffered Reader.
func TestCommandParserSplitEveryBoundary(t *testing.T) {
	stream := buildStream(parserCmds)
	want := readAllBuffered(t, stream)
	for cut := 0; cut <= len(stream); cut++ {
		var p CommandParser
		var got [][][]byte
		p.Feed(stream[:cut])
		got = append(got, drain(t, &p)...)
		p.Feed(stream[cut:])
		got = append(got, drain(t, &p)...)
		if !equalCmds(got, want) {
			t.Fatalf("cut at %d: got %d cmds, want %d", cut, len(got), len(want))
		}
		if p.Buffered() != 0 {
			t.Fatalf("cut at %d: %d bytes left unconsumed", cut, p.Buffered())
		}
	}
}

// TestCommandParserByteAtATime trickles the stream in one byte at a time.
func TestCommandParserByteAtATime(t *testing.T) {
	stream := buildStream(parserCmds)
	want := readAllBuffered(t, stream)
	var p CommandParser
	var got [][][]byte
	for i := 0; i < len(stream); i++ {
		p.Feed(stream[i : i+1])
		got = append(got, drain(t, &p)...)
	}
	if !equalCmds(got, want) {
		t.Fatalf("got %d cmds, want %d", len(got), len(want))
	}
}

// TestCommandParserRandomFragments quick-checks random command streams under
// random fragmentation against the buffered path.
func TestCommandParserRandomFragments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		ncmd := 1 + rng.Intn(6)
		cmds := make([][]string, ncmd)
		for i := range cmds {
			nargs := 1 + rng.Intn(4)
			args := make([]string, nargs)
			for j := range args {
				n := rng.Intn(64)
				b := make([]byte, n)
				rng.Read(b)
				args[j] = string(b)
			}
			cmds[i] = args
		}
		stream := buildStream(cmds)
		want := readAllBuffered(t, stream)
		var p CommandParser
		var got [][][]byte
		for off := 0; off < len(stream); {
			n := 1 + rng.Intn(17)
			if off+n > len(stream) {
				n = len(stream) - off
			}
			p.Feed(stream[off : off+n])
			off += n
			got = append(got, drain(t, &p)...)
		}
		if !equalCmds(got, want) {
			t.Fatalf("iter %d: got %d cmds, want %d", iter, len(got), len(want))
		}
	}
}

// TestCommandParserInline covers the inline command form, split mid-line.
func TestCommandParserInline(t *testing.T) {
	var p CommandParser
	p.Feed([]byte("PING ar"))
	if args, err := p.Next(); err != nil || args != nil {
		t.Fatalf("mid-line: got %v, %v", args, err)
	}
	p.Feed([]byte("g1 arg2\r\n"))
	args, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"PING", "arg1", "arg2"}
	if len(args) != len(want) {
		t.Fatalf("got %d args, want %d", len(args), len(want))
	}
	for i, w := range want {
		if string(args[i]) != w {
			t.Fatalf("arg %d: got %q want %q", i, args[i], w)
		}
	}
}

// TestCommandParserIntegerElements parses frames with integer elements — the
// shape of subscription acks the load harness consumes.
func TestCommandParserIntegerElements(t *testing.T) {
	var p CommandParser
	p.Feed([]byte("*3\r\n$9\r\nsubscribe\r\n$5\r\nalpha\r\n:42\r\n"))
	args, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 3 || string(args[0]) != "subscribe" || string(args[2]) != "42" {
		t.Fatalf("got %q", args)
	}
}

// TestCommandParserErrors asserts protocol violations surface as errors, not
// hangs or silent drops.
func TestCommandParserErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"null bulk element", "*1\r\n$-1\r\n"},
		{"bad element type", "*1\r\n+OK\r\n"},
		{"bad array length", "*abc\r\n"},
		{"zero array", "*0\r\n"},
		{"missing bulk CRLF", "*1\r\n$3\r\nabcXY"},
		{"LF-only line", "*1\n"},
		{"empty inline", "\r\n"},
		{"oversize header", "*" + strings.Repeat("9", 100) + "\r\n"},
	}
	for _, tc := range cases {
		var p CommandParser
		p.Feed([]byte(tc.input))
		if _, err := p.Next(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestCommandParserCompaction exercises the buffer-compaction path: many
// commands with a stuck partial tail keep memory bounded.
func TestCommandParserCompaction(t *testing.T) {
	var p CommandParser
	one := buildStream([][]string{{"PUBLISH", "ch", strings.Repeat("y", 512)}})
	for i := 0; i < 1000; i++ {
		// Feed a complete command plus the first half of the next one.
		p.Feed(one)
		p.Feed(one[:len(one)/2])
		if args, err := p.Next(); err != nil || len(args) != 3 {
			t.Fatalf("iter %d: %v %v", i, args, err)
		}
		if args, err := p.Next(); err != nil || args != nil {
			t.Fatalf("iter %d partial: %v %v", i, args, err)
		}
		p.Feed(one[len(one)/2:])
		if args, err := p.Next(); err != nil || len(args) != 3 {
			t.Fatalf("iter %d second: %v %v", i, args, err)
		}
		if cap(p.buf) > 8*len(one) {
			t.Fatalf("buffer grew without bound: cap %d", cap(p.buf))
		}
	}
}

// TestAppendCommandStrings round-trips through the parser.
func TestAppendCommandStrings(t *testing.T) {
	frame := AppendCommandStrings(nil, "SUBSCRIBE", "a", "b")
	var p CommandParser
	p.Feed(frame)
	args, err := p.Next()
	if err != nil || len(args) != 3 {
		t.Fatalf("got %v, %v", args, err)
	}
	if string(args[0]) != "SUBSCRIBE" || string(args[1]) != "a" || string(args[2]) != "b" {
		t.Fatalf("got %q", args)
	}
	if fmt.Sprintf("%s", frame) != "*3\r\n$9\r\nSUBSCRIBE\r\n$1\r\na\r\n$1\r\nb\r\n" {
		t.Fatalf("wire form %q", frame)
	}
}
