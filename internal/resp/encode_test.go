package resp

import (
	"bytes"
	"strings"
	"testing"
)

// decodeFrame reads one value back out of raw bytes.
func decodeFrame(t *testing.T, raw []byte) Value {
	t.Helper()
	v, err := NewReader(bytes.NewReader(raw)).ReadValue()
	if err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	return v
}

func TestWriteMessageFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteMessage("news", []byte("breaking")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "*3\r\n$7\r\nmessage\r\n$4\r\nnews\r\n$8\r\nbreaking\r\n"
	if got := buf.String(); got != want {
		t.Fatalf("WriteMessage wire=%q want %q", got, want)
	}
	v := decodeFrame(t, buf.Bytes())
	if v.Kind != KindArray || len(v.Array) != 3 || string(v.Array[0].Str) != "message" {
		t.Fatalf("decoded %+v", v)
	}
}

func TestWritePMessageFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePMessage("n.*", "n.s", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "*4\r\n$8\r\npmessage\r\n$3\r\nn.*\r\n$3\r\nn.s\r\n$1\r\nx\r\n"
	if got := buf.String(); got != want {
		t.Fatalf("WritePMessage wire=%q want %q", got, want)
	}
}

// TestAppendPathMatchesWriter: the append-style encoders must produce
// byte-identical frames to the Writer methods, for any payload including
// binary and embedded CRLF.
func TestAppendPathMatchesWriter(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("hello"), {0, 1, 2, 255, '\r', '\n'}, bytes.Repeat([]byte("z"), 4096)}
	for _, p := range payloads {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteMessage("chan-1", p); err != nil {
			t.Fatal(err)
		}
		if err := w.WritePMessage("c*", "chan-1", p); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		appended := AppendMessage(nil, "chan-1", p)
		appended = AppendPMessage(appended, "c*", "chan-1", p)
		if !bytes.Equal(appended, buf.Bytes()) {
			t.Fatalf("append path diverged for payload len %d:\nappend: %q\nwriter: %q", len(p), appended, buf.Bytes())
		}
	}
}

func TestAppendBulkVariants(t *testing.T) {
	if got := string(AppendBulk(nil, []byte("ab"))); got != "$2\r\nab\r\n" {
		t.Fatalf("AppendBulk=%q", got)
	}
	if got := string(AppendBulkString([]byte("x"), "ab")); got != "x$2\r\nab\r\n" {
		t.Fatalf("AppendBulkString with prefix=%q", got)
	}
}

// TestSimpleStringsSurviveSubsequentReads pins the reader scratch-buffer
// contract: values returned by ReadValue must stay intact after further
// reads overwrite the scratch.
func TestSimpleStringsSurviveSubsequentReads(t *testing.T) {
	r := NewReader(strings.NewReader("+first\r\n+second-much-longer\r\n-ERR boom\r\n:42\r\n"))
	v1, err := r.ReadValue()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r.ReadValue()
	if err != nil {
		t.Fatal(err)
	}
	v3, err := r.ReadValue()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadValue(); err != nil {
		t.Fatal(err)
	}
	if string(v1.Str) != "first" {
		t.Fatalf("first value corrupted by later reads: %q", v1.Str)
	}
	if string(v2.Str) != "second-much-longer" {
		t.Fatalf("second value corrupted: %q", v2.Str)
	}
	if string(v3.Str) != "ERR boom" {
		t.Fatalf("error value corrupted: %q", v3.Str)
	}
}

// TestBulkPayloadsIndependent: bulk strings are handed to asynchronous
// delivery paths, so each must be an independent allocation, not a window
// into the reader's buffer.
func TestBulkPayloadsIndependent(t *testing.T) {
	r := NewReader(strings.NewReader("$3\r\nabc\r\n$3\r\nxyz\r\n"))
	v1, err := r.ReadValue()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r.ReadValue()
	if err != nil {
		t.Fatal(err)
	}
	if string(v1.Str) != "abc" || string(v2.Str) != "xyz" {
		t.Fatalf("payloads %q %q", v1.Str, v2.Str)
	}
	v2.Str[0] = 'Z'
	if string(v1.Str) != "abc" {
		t.Fatalf("bulk payloads alias each other: %q", v1.Str)
	}
}

func TestParseInt(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"42", 42, true},
		{"-1", -1, true},
		{"+7", 7, true},
		{"1234567890123", 1234567890123, true},
		{"", 0, false},
		{"-", 0, false},
		{"+", 0, false},
		{"12a", 0, false},
		{" 1", 0, false},
		{"99999999999999999999", 0, false}, // overflow
	}
	for _, c := range cases {
		got, ok := parseInt([]byte(c.in))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseInt(%q) = %d,%v want %d,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestLongLineSpansBufferRefills drives readLine's slow path: a simple
// string longer than the 16 KB bufio window.
func TestLongLineSpansBufferRefills(t *testing.T) {
	long := strings.Repeat("a", 40<<10)
	r := NewReader(strings.NewReader("+" + long + "\r\n+ok\r\n"))
	v, err := r.ReadValue()
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Str) != long {
		t.Fatalf("long line mangled: len=%d", len(v.Str))
	}
	v2, err := r.ReadValue()
	if err != nil {
		t.Fatal(err)
	}
	if string(v2.Str) != "ok" {
		t.Fatalf("follow-up read=%q", v2.Str)
	}
}

// BenchmarkWriteMessage measures the per-frame encode cost on the delivery
// hot path (target: 0 allocs/op).
func BenchmarkWriteMessage(b *testing.B) {
	var buf bytes.Buffer
	buf.Grow(1 << 20)
	w := NewWriter(&buf)
	payload := make([]byte, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			buf.Reset()
		}
		if err := w.WriteMessage("tile-3-4", payload); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendMessage measures the append-style encode path.
func BenchmarkAppendMessage(b *testing.B) {
	payload := make([]byte, 200)
	var scratch []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scratch = AppendMessage(scratch[:0], "tile-3-4", payload)
	}
	_ = scratch
}
