package resp

import (
	"bytes"
	"fmt"
)

// CommandParser incrementally decodes RESP client commands from a byte
// stream delivered in arbitrary fragments — the zero-copy decode path of the
// event-loop connection core, where reads land in a shared per-shard buffer
// instead of a per-connection bufio.Reader. Feed appends a fragment; Next
// returns the next complete command or (nil, nil) when the buffered bytes end
// mid-frame (partial-frame carry-over).
//
// The same grammar as Reader.ReadCommand is accepted (arrays of bulk strings
// and inline commands), plus integer elements inside arrays — which lets the
// load harness parse subscription acks ["subscribe", name, :count] with the
// same machinery.
//
// Returned argument slices alias the parser's internal buffer and are valid
// only until the next Feed or Next call; callers that retain them must copy
// (the broker's dispatch already does, exactly as it does for Reader args).
type CommandParser struct {
	buf  []byte
	r    int // consumed offset into buf
	args [][]byte
}

// maxHeaderLine bounds a length-prefix or integer line that has not seen its
// CRLF yet; real prefixes are ≤ ~20 bytes, so anything longer is garbage and
// must not make the parser buffer it forever.
const maxHeaderLine = 64

// Feed appends a fragment of the stream. The fragment is copied; the caller
// may reuse data immediately (the reactor feeds from a shared read buffer).
func (p *CommandParser) Feed(data []byte) {
	if p.r == len(p.buf) {
		p.buf = p.buf[:0]
		p.r = 0
	} else if p.r > 0 && len(p.buf)+len(data) > cap(p.buf) {
		// Compact consumed prefix away before growing the buffer.
		n := copy(p.buf, p.buf[p.r:])
		p.buf = p.buf[:n]
		p.r = 0
	}
	p.buf = append(p.buf, data...)
}

// Buffered reports how many unconsumed bytes the parser is holding.
func (p *CommandParser) Buffered() int { return len(p.buf) - p.r }

// Next returns the next complete command, or (nil, nil) when the buffered
// stream ends mid-frame. Protocol violations return an error wrapping
// ErrProtocol or ErrTooLarge; the connection should be closed, matching
// Reader.ReadCommand behavior.
func (p *CommandParser) Next() ([][]byte, error) {
	b := p.buf[p.r:]
	if len(b) == 0 {
		return nil, nil
	}
	if b[0] != '*' {
		return p.nextInline(b)
	}
	n, pos, ok, err := parseIntLine(b, 1)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	if n <= 0 || n > maxArrayLen {
		return nil, fmt.Errorf("%w: command array length %d", ErrProtocol, n)
	}
	p.args = p.args[:0]
	for i := int64(0); i < n; i++ {
		if pos >= len(b) {
			return nil, nil
		}
		switch b[pos] {
		case '$':
			ln, np, ok, err := parseIntLine(b, pos+1)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, nil
			}
			if ln < 0 {
				return nil, fmt.Errorf("%w: command element %d is a null bulk string", ErrProtocol, i)
			}
			if ln > MaxBulkLen {
				return nil, fmt.Errorf("%w: bulk length %d", ErrTooLarge, ln)
			}
			end := np + int(ln)
			if end+2 > len(b) {
				return nil, nil
			}
			if b[end] != '\r' || b[end+1] != '\n' {
				return nil, fmt.Errorf("%w: bulk string missing CRLF terminator", ErrProtocol)
			}
			p.args = append(p.args, b[np:end])
			pos = end + 2
		case ':':
			line, np, ok, err := parseHeaderLine(b, pos+1)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, nil
			}
			if _, good := parseInt(line); !good {
				return nil, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
			}
			p.args = append(p.args, line)
			pos = np
		default:
			return nil, fmt.Errorf("%w: command element %d is type %q, want bulk string", ErrProtocol, i, b[pos])
		}
	}
	p.r += pos
	return p.args, nil
}

// nextInline parses a one-line inline command (space-separated words).
func (p *CommandParser) nextInline(b []byte) ([][]byte, error) {
	i := bytes.IndexByte(b, '\n')
	if i < 0 {
		if len(b) > MaxBulkLen {
			return nil, fmt.Errorf("%w: line length %d", ErrTooLarge, len(b))
		}
		return nil, nil
	}
	if i == 0 || b[i-1] != '\r' {
		return nil, fmt.Errorf("%w: line not CRLF-terminated", ErrProtocol)
	}
	line := b[:i-1]
	fields := bytes.Fields(line)
	if len(fields) == 0 {
		return nil, fmt.Errorf("%w: empty inline command", ErrProtocol)
	}
	p.r += i + 1
	p.args = append(p.args[:0], fields...)
	return p.args, nil
}

// parseHeaderLine scans a short CRLF-terminated line starting at pos (after
// the type byte). ok=false means the line is still incomplete.
func parseHeaderLine(b []byte, pos int) (line []byte, next int, ok bool, err error) {
	rest := b[pos:]
	limit := len(rest)
	if limit > maxHeaderLine {
		limit = maxHeaderLine
	}
	i := bytes.IndexByte(rest[:limit], '\n')
	if i < 0 {
		if len(rest) > maxHeaderLine {
			return nil, 0, false, fmt.Errorf("%w: header line exceeds %d bytes", ErrProtocol, maxHeaderLine)
		}
		return nil, 0, false, nil
	}
	if i == 0 || rest[i-1] != '\r' {
		return nil, 0, false, fmt.Errorf("%w: line not CRLF-terminated", ErrProtocol)
	}
	return rest[:i-1], pos + i + 1, true, nil
}

// parseIntLine reads a decimal integer line starting at pos (after the type
// byte). ok=false means more bytes are needed.
func parseIntLine(b []byte, pos int) (n int64, next int, ok bool, err error) {
	line, next, ok, err := parseHeaderLine(b, pos)
	if err != nil || !ok {
		return 0, 0, ok, err
	}
	n, good := parseInt(line)
	if !good {
		return 0, 0, false, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
	}
	return n, next, true, nil
}

// AppendCommandStrings appends a command encoded as an array of bulk strings
// to dst — the append-style twin of Writer.WriteCommandStrings, used by the
// connection harness to batch commands into one write.
func AppendCommandStrings(dst []byte, cmd string, args ...string) []byte {
	dst = append(dst, '*')
	dst = appendInt(dst, int64(len(args)+1))
	dst = AppendBulkString(dst, cmd)
	for _, a := range args {
		dst = AppendBulkString(dst, a)
	}
	return dst
}

func appendInt(dst []byte, n int64) []byte {
	dst = appendDecimal(dst, n)
	return append(dst, '\r', '\n')
}

// appendDecimal is strconv.AppendInt without pulling strconv into this file's
// hot helpers (it is tiny for the small values RESP headers carry).
func appendDecimal(dst []byte, n int64) []byte {
	if n < 0 {
		dst = append(dst, '-')
		n = -n
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(dst, tmp[i:]...)
}
