package plan

import "strings"

// ControlPrefix marks Dynamoth's internal control channels. The paper routes
// all inter-component communication (plans, load reports, drain
// notifications, client redirects) over the pub/sub substrate itself; these
// channels are pinned — the load balancer never migrates or replicates them.
const ControlPrefix = "__dynamoth."

// Control channel names.
const (
	// PlanChannel carries new global plans from the load balancer to the
	// dispatchers. The LB publishes the plan on every server's broker so
	// delivery does not depend on the plan being up to date.
	PlanChannel = ControlPrefix + "plan"
	// ReportChannel carries LLA aggregate updates to the load balancer.
	ReportChannel = ControlPrefix + "reports"
)

// IsControlChannel reports whether ch is a Dynamoth control channel.
func IsControlChannel(ch string) bool { return strings.HasPrefix(ch, ControlPrefix) }

// DispatchChannel is the control channel on which a server's dispatcher
// receives dispatcher-to-dispatcher notifications (e.g. "channel drained").
func DispatchChannel(server ServerID) string { return ControlPrefix + "dispatch." + server }

// InboxChannel is the per-client control channel for server-to-client
// notifications (wrong-server redirects). Clients subscribe to their inbox
// at its consistent-hash home server.
func InboxChannel(node uint32) string {
	return ControlPrefix + "inbox." + uitoa(node)
}

func uitoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
