// Package plan implements Dynamoth's "plan" concept (paper §II-A): a
// versioned lookup table mapping channels to the pub/sub server(s) in charge
// of them, together with the per-channel replication strategy (§II-B).
//
// A plan answers two questions for every channel:
//
//   - where does a publisher send a publication, and
//   - where does a subscriber place its subscription.
//
// For channels the plan does not mention, the mapping falls back to
// consistent hashing over the plan's server set (§II-C "plan 0"). Plans are
// value-like: balancers build a new plan by cloning and mutating, then
// publish it; consumers treat a received plan as immutable.
package plan

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/dynamoth/dynamoth/internal/hashring"
)

// ServerID identifies one pub/sub server node.
type ServerID = string

// Strategy is the channel replication scheme (§II-B, Figure 2).
type Strategy uint8

const (
	// StrategySingle maps the channel to exactly one server (Figure 2a).
	StrategySingle Strategy = iota + 1
	// StrategyAllSubscribers replicates for publication-heavy channels
	// (Figure 2b): every subscriber subscribes on all replica servers,
	// each publisher publishes to one (random) replica.
	StrategyAllSubscribers
	// StrategyAllPublishers replicates for subscriber-heavy channels
	// (Figure 2c): each publisher publishes to all replica servers, every
	// subscriber subscribes on one replica.
	StrategyAllPublishers
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategySingle:
		return "single"
	case StrategyAllSubscribers:
		return "all-subscribers"
	case StrategyAllPublishers:
		return "all-publishers"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// Valid reports whether s is a defined strategy.
func (s Strategy) Valid() bool {
	return s >= StrategySingle && s <= StrategyAllPublishers
}

// Entry is one channel's mapping.
type Entry struct {
	Strategy Strategy   `json:"strategy"`
	Servers  []ServerID `json:"servers"`
}

// clone returns a deep copy of the entry.
func (e Entry) clone() Entry {
	return Entry{Strategy: e.Strategy, Servers: append([]ServerID(nil), e.Servers...)}
}

// Plan is a versioned channel→servers mapping with consistent-hash fallback.
//
// Servers is the active server set; RingServers are the members of the
// consistent-hash fallback ring. Under Dynamoth the ring stays pinned to the
// bootstrap servers — new servers receive load exclusively through explicit
// migrations, so spawning a server never remaps unmentioned channels. The
// consistent-hashing baseline instead grows the ring itself on every spawn
// (shedding 1/N of every server's identifiers), which is exactly the
// load-oblivious behavior Experiment 2 compares against.
type Plan struct {
	Version     uint64           `json:"version"`
	Servers     []ServerID       `json:"servers"`
	RingServers []ServerID       `json:"ringServers"`
	Channels    map[string]Entry `json:"channels,omitempty"`

	ringOnce sync.Once
	ring     *hashring.Ring
}

// Errors returned by plan operations.
var (
	ErrNoServers     = errors.New("plan: no servers")
	ErrUnknownServer = errors.New("plan: server not in plan")
)

// New creates plan 0: the given server set (which also seeds the fallback
// ring), no channel mappings.
func New(servers ...ServerID) *Plan {
	return &Plan{
		Servers:     append([]ServerID(nil), servers...),
		RingServers: append([]ServerID(nil), servers...),
		Channels:    make(map[string]Entry),
	}
}

// Ring returns the consistent-hash fallback ring, built lazily and cached
// (plans are immutable once shared).
func (p *Plan) Ring() *hashring.Ring {
	p.ringOnce.Do(func() {
		members := p.RingServers
		if len(members) == 0 {
			members = p.Servers // legacy plans without a pinned ring
		}
		p.ring = hashring.New(0, members...)
	})
	return p.ring
}

// Lookup returns the channel's entry. Unmapped channels fall back to the
// single server chosen by consistent hashing; ok reports whether the entry
// came from an explicit mapping.
func (p *Plan) Lookup(channel string) (Entry, bool) {
	if e, ok := p.Channels[channel]; ok {
		return e.clone(), true
	}
	home := p.Ring().Lookup(channel)
	if home == "" {
		return Entry{}, false
	}
	return Entry{Strategy: StrategySingle, Servers: []ServerID{home}}, false
}

// Home returns the channel's consistent-hash home server — the server whose
// dispatcher stays subscribed to the channel forever to catch misrouted
// traffic (§IV-A5). It is independent of any explicit mapping.
func (p *Plan) Home(channel string) ServerID {
	return p.Ring().Lookup(channel)
}

// PublishTargets returns the servers a publication for channel must be sent
// to. pick chooses an index in [0,n) for strategies that publish to a single
// replica; pass a seeded RNG's Intn. The returned slice must not be mutated.
func (p *Plan) PublishTargets(channel string, pick func(n int) int) []ServerID {
	e, _ := p.Lookup(channel)
	return PublishTargets(e, pick)
}

// SubscribeTargets returns the servers a subscriber of channel must
// subscribe on. clientKey makes the single-replica choice of the
// all-publishers scheme sticky per client.
func (p *Plan) SubscribeTargets(channel string, clientKey string) []ServerID {
	e, _ := p.Lookup(channel)
	return SubscribeTargets(e, channel, clientKey)
}

// PublishTargets resolves an entry to publication target servers.
func PublishTargets(e Entry, pick func(n int) int) []ServerID {
	switch {
	case len(e.Servers) == 0:
		return nil
	case len(e.Servers) == 1:
		return e.Servers[:1]
	case e.Strategy == StrategyAllPublishers:
		return e.Servers // publish to every replica
	default:
		// Single (defensively) and all-subscribers: one random replica.
		if pick == nil {
			return e.Servers[:1]
		}
		i := pick(len(e.Servers))
		return e.Servers[i : i+1]
	}
}

// SubscribeTargets resolves an entry to subscription target servers for a
// given client.
func SubscribeTargets(e Entry, channel, clientKey string) []ServerID {
	switch {
	case len(e.Servers) == 0:
		return nil
	case len(e.Servers) == 1:
		return e.Servers[:1]
	case e.Strategy == StrategyAllSubscribers:
		return e.Servers // subscribe everywhere
	default:
		// All-publishers (and defensive single): one sticky replica.
		i := stickyIndex(channel, clientKey, len(e.Servers))
		return e.Servers[i : i+1]
	}
}

// stickyIndex hashes (channel, clientKey) onto [0,n) so a client always picks
// the same replica while the entry is unchanged.
func stickyIndex(channel, clientKey string, n int) int {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(channel); i++ {
		h = (h ^ uint64(channel[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(clientKey); i++ {
		h = (h ^ uint64(clientKey[i])) * prime64
	}
	return int(h % uint64(n))
}

// Set installs an explicit mapping for a channel.
func (p *Plan) Set(channel string, e Entry) {
	if p.Channels == nil {
		p.Channels = make(map[string]Entry)
	}
	p.Channels[channel] = e.clone()
}

// Unset removes an explicit mapping (the channel reverts to hash fallback).
func (p *Plan) Unset(channel string) {
	delete(p.Channels, channel)
}

// Migrate reassigns a channel from one server to another (Algorithm 2 line
// 12). For unmapped channels an explicit single-server entry is first
// materialized from the fallback. For replicated channels, the `from`
// replica is replaced by `to`.
func (p *Plan) Migrate(channel string, from, to ServerID) error {
	e, explicit := p.Lookup(channel)
	if !explicit && len(e.Servers) == 0 {
		return ErrNoServers
	}
	found := false
	for i, s := range e.Servers {
		if s == from {
			e.Servers[i] = to
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: channel %q not on server %q", ErrUnknownServer, channel, from)
	}
	p.Set(channel, e)
	return nil
}

// AddServer adds a server to the plan's active set (idempotent). The
// fallback ring is NOT touched: under Dynamoth a new server only receives
// load through explicit migrations.
func (p *Plan) AddServer(s ServerID) {
	for _, have := range p.Servers {
		if have == s {
			return
		}
	}
	p.Servers = append(p.Servers, s)
}

// AddRingServer adds a server to both the active set and the fallback ring —
// the consistent-hashing baseline's spawn operation, which remaps 1/N of
// every channel.
func (p *Plan) AddRingServer(s ServerID) {
	p.AddServer(s)
	for _, have := range p.RingServers {
		if have == s {
			return
		}
	}
	p.RingServers = append(p.RingServers, s)
	p.invalidateRing()
}

// RemoveServer removes a server from the active set (and the ring, if it was
// a ring member). It is the caller's responsibility to migrate that server's
// channels away first.
func (p *Plan) RemoveServer(s ServerID) {
	kept := p.Servers[:0]
	for _, have := range p.Servers {
		if have != s {
			kept = append(kept, have)
		}
	}
	p.Servers = kept
	keptRing := p.RingServers[:0]
	changed := false
	for _, have := range p.RingServers {
		if have != s {
			keptRing = append(keptRing, have)
		} else {
			changed = true
		}
	}
	p.RingServers = keptRing
	if changed {
		p.invalidateRing()
	}
}

func (p *Plan) invalidateRing() {
	p.ringOnce = sync.Once{}
	p.ring = nil
}

// HasServer reports whether s is in the active server set.
func (p *Plan) HasServer(s ServerID) bool {
	for _, have := range p.Servers {
		if have == s {
			return true
		}
	}
	return false
}

// Clone returns a deep copy with the same version (the balancer bumps the
// version when publishing).
func (p *Plan) Clone() *Plan {
	c := &Plan{
		Version:     p.Version,
		Servers:     append([]ServerID(nil), p.Servers...),
		RingServers: append([]ServerID(nil), p.RingServers...),
		Channels:    make(map[string]Entry, len(p.Channels)),
	}
	for ch, e := range p.Channels {
		c.Channels[ch] = e.clone()
	}
	return c
}

// Change describes one channel whose server set differs between two plans.
type Change struct {
	Channel string
	Old     Entry
	New     Entry
}

// Diff returns the channels whose effective mapping changed from old to p,
// sorted by channel name. Channels only present in one plan's explicit map
// are compared against the other plan's fallback mapping, so a channel
// reverting to its hash home is not reported if nothing effectively moved.
func (p *Plan) Diff(old *Plan) []Change {
	names := make(map[string]struct{}, len(p.Channels)+len(old.Channels))
	for ch := range p.Channels {
		names[ch] = struct{}{}
	}
	for ch := range old.Channels {
		names[ch] = struct{}{}
	}
	var out []Change
	for ch := range names {
		oe, _ := old.Lookup(ch)
		ne, _ := p.Lookup(ch)
		if !entriesEqual(oe, ne) {
			out = append(out, Change{Channel: ch, Old: oe, New: ne})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Channel < out[j].Channel })
	return out
}

func entriesEqual(a, b Entry) bool {
	if a.Strategy != b.Strategy || len(a.Servers) != len(b.Servers) {
		return false
	}
	as := append([]ServerID(nil), a.Servers...)
	bs := append([]ServerID(nil), b.Servers...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Marshal encodes the plan as JSON for the control plane.
func (p *Plan) Marshal() ([]byte, error) {
	return json.Marshal(p)
}

// Unmarshal decodes a plan from JSON.
func Unmarshal(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("plan: decode: %w", err)
	}
	if p.Channels == nil {
		p.Channels = make(map[string]Entry)
	}
	for ch, e := range p.Channels {
		if !e.Strategy.Valid() || len(e.Servers) == 0 {
			return nil, fmt.Errorf("plan: invalid entry for channel %q", ch)
		}
	}
	return &p, nil
}

// ServersFor is a convenience for the union of all servers an entry names.
func (e Entry) ServersFor() []ServerID { return append([]ServerID(nil), e.Servers...) }

// String renders a short plan summary.
func (p *Plan) String() string {
	return fmt.Sprintf("plan{v%d servers=%d channels=%d}", p.Version, len(p.Servers), len(p.Channels))
}
