package plan

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLookupFallbackMatchesRing(t *testing.T) {
	p := New("s1", "s2", "s3")
	for _, ch := range []string{"a", "b", "tile-1-1", "tile-9-9", "world"} {
		e, explicit := p.Lookup(ch)
		if explicit {
			t.Fatalf("channel %q unexpectedly explicit", ch)
		}
		if e.Strategy != StrategySingle || len(e.Servers) != 1 {
			t.Fatalf("fallback entry %+v", e)
		}
		if want := p.Ring().Lookup(ch); e.Servers[0] != want {
			t.Fatalf("fallback server %q, ring says %q", e.Servers[0], want)
		}
		if p.Home(ch) != e.Servers[0] {
			t.Fatalf("Home != fallback for %q", ch)
		}
	}
}

func TestLookupEmptyPlan(t *testing.T) {
	p := New()
	if e, ok := p.Lookup("x"); ok || len(e.Servers) != 0 {
		t.Fatalf("empty plan Lookup=%+v,%t", e, ok)
	}
}

func TestSetUnsetLookup(t *testing.T) {
	p := New("s1", "s2")
	p.Set("hot", Entry{Strategy: StrategyAllSubscribers, Servers: []ServerID{"s1", "s2"}})
	e, explicit := p.Lookup("hot")
	if !explicit || e.Strategy != StrategyAllSubscribers || len(e.Servers) != 2 {
		t.Fatalf("explicit lookup %+v,%t", e, explicit)
	}
	p.Unset("hot")
	if _, explicit := p.Lookup("hot"); explicit {
		t.Fatal("Unset did not remove mapping")
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	p := New("s1", "s2")
	p.Set("c", Entry{Strategy: StrategySingle, Servers: []ServerID{"s1"}})
	e, _ := p.Lookup("c")
	e.Servers[0] = "mutated"
	e2, _ := p.Lookup("c")
	if e2.Servers[0] != "s1" {
		t.Fatal("Lookup exposed internal entry state")
	}
}

func TestPublishSubscribeTargetsSingle(t *testing.T) {
	e := Entry{Strategy: StrategySingle, Servers: []ServerID{"s1"}}
	if got := PublishTargets(e, rand.Intn); len(got) != 1 || got[0] != "s1" {
		t.Fatalf("PublishTargets=%v", got)
	}
	if got := SubscribeTargets(e, "c", "client"); len(got) != 1 || got[0] != "s1" {
		t.Fatalf("SubscribeTargets=%v", got)
	}
}

func TestAllSubscribersSemantics(t *testing.T) {
	// Figure 2b: publishers pick one random replica, subscribers take all.
	e := Entry{Strategy: StrategyAllSubscribers, Servers: []ServerID{"h1", "h2", "h3"}}
	if got := SubscribeTargets(e, "c", "any"); len(got) != 3 {
		t.Fatalf("subscriber must subscribe on all replicas, got %v", got)
	}
	rng := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		got := PublishTargets(e, rng.Intn)
		if len(got) != 1 {
			t.Fatalf("publisher must publish to exactly one replica, got %v", got)
		}
		seen[got[0]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("publications never spread over all replicas: %v", seen)
	}
}

func TestAllPublishersSemantics(t *testing.T) {
	// Figure 2c: publishers publish to all replicas, subscribers pick one,
	// sticky per client.
	e := Entry{Strategy: StrategyAllPublishers, Servers: []ServerID{"h1", "h2", "h3"}}
	if got := PublishTargets(e, rand.Intn); len(got) != 3 {
		t.Fatalf("publisher must publish to all replicas, got %v", got)
	}
	first := SubscribeTargets(e, "c", "client-42")
	if len(first) != 1 {
		t.Fatalf("subscriber must subscribe on exactly one replica, got %v", first)
	}
	for i := 0; i < 10; i++ {
		if got := SubscribeTargets(e, "c", "client-42"); got[0] != first[0] {
			t.Fatal("replica choice not sticky for same client")
		}
	}
	// Different clients spread across replicas.
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		got := SubscribeTargets(e, "c", "client-"+string(rune('a'+i%26))+string(rune('0'+i/26)))
		seen[got[0]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("subscribers never spread over all replicas: %v", seen)
	}
}

func TestPublishTargetsNilPick(t *testing.T) {
	e := Entry{Strategy: StrategyAllSubscribers, Servers: []ServerID{"h1", "h2"}}
	if got := PublishTargets(e, nil); len(got) != 1 {
		t.Fatalf("nil pick must degrade to first replica, got %v", got)
	}
}

func TestMigrate(t *testing.T) {
	p := New("s1", "s2", "s3")
	ch := "channel-x"
	home := p.Home(ch)
	var dest ServerID
	for _, s := range p.Servers {
		if s != home {
			dest = s
			break
		}
	}
	if err := p.Migrate(ch, home, dest); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	e, explicit := p.Lookup(ch)
	if !explicit || e.Servers[0] != dest {
		t.Fatalf("after migrate: %+v explicit=%t", e, explicit)
	}
	// Migrating from a server that doesn't hold the channel fails.
	if err := p.Migrate(ch, home, dest); err == nil {
		t.Fatal("Migrate from non-holder succeeded")
	}
}

func TestMigrateReplicated(t *testing.T) {
	p := New("s1", "s2", "s3", "s4")
	p.Set("hot", Entry{Strategy: StrategyAllSubscribers, Servers: []ServerID{"s1", "s2"}})
	if err := p.Migrate("hot", "s2", "s4"); err != nil {
		t.Fatal(err)
	}
	e, _ := p.Lookup("hot")
	if !reflect.DeepEqual(e.Servers, []ServerID{"s1", "s4"}) {
		t.Fatalf("replica set after migrate: %v", e.Servers)
	}
	if e.Strategy != StrategyAllSubscribers {
		t.Fatal("strategy lost in migration")
	}
}

func TestMigrateOnEmptyPlan(t *testing.T) {
	p := New()
	if err := p.Migrate("c", "a", "b"); err == nil {
		t.Fatal("Migrate on empty plan succeeded")
	}
}

func TestAddServerDoesNotTouchRing(t *testing.T) {
	// Dynamoth spawn: a new server must not remap any fallback channel.
	p := New("s1")
	p.AddServer("s2")
	p.AddServer("s2") // idempotent
	if len(p.Servers) != 2 {
		t.Fatalf("Servers=%v", p.Servers)
	}
	if !p.HasServer("s2") || p.HasServer("s9") {
		t.Fatal("HasServer wrong")
	}
	for i := 0; i < 200; i++ {
		if p.Home(probeChannel(i)) != "s1" {
			t.Fatal("AddServer changed the fallback ring")
		}
	}
	p.RemoveServer("s2")
	if p.HasServer("s2") {
		t.Fatal("RemoveServer failed")
	}
}

func TestAddRingServerGrowsRing(t *testing.T) {
	// Consistent-hashing baseline spawn: the ring itself grows.
	p := New("s1")
	p.AddRingServer("s2")
	p.AddRingServer("s2") // idempotent
	if len(p.RingServers) != 2 {
		t.Fatalf("RingServers=%v", p.RingServers)
	}
	foundS2 := false
	for i := 0; i < 200; i++ {
		if p.Home(probeChannel(i)) == "s2" {
			foundS2 = true
			break
		}
	}
	if !foundS2 {
		t.Fatal("ring not rebuilt after AddRingServer")
	}
	p.RemoveServer("s2")
	for i := 0; i < 200; i++ {
		if p.Home(probeChannel(i)) == "s2" {
			t.Fatal("removed server still in ring")
		}
	}
}

func probeChannel(i int) string {
	return "probe-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func TestCloneIndependence(t *testing.T) {
	p := New("s1", "s2")
	p.Set("c", Entry{Strategy: StrategySingle, Servers: []ServerID{"s1"}})
	c := p.Clone()
	c.Set("c", Entry{Strategy: StrategySingle, Servers: []ServerID{"s2"}})
	c.AddServer("s3")
	if e, _ := p.Lookup("c"); e.Servers[0] != "s1" {
		t.Fatal("clone mutation leaked into original")
	}
	if p.HasServer("s3") {
		t.Fatal("clone server add leaked into original")
	}
}

func TestDiff(t *testing.T) {
	old := New("s1", "s2")
	old.Set("a", Entry{Strategy: StrategySingle, Servers: []ServerID{"s1"}})
	old.Set("b", Entry{Strategy: StrategySingle, Servers: []ServerID{"s1"}})

	next := old.Clone()
	next.Set("a", Entry{Strategy: StrategySingle, Servers: []ServerID{"s2"}})
	next.Set("c", Entry{Strategy: StrategyAllPublishers, Servers: []ServerID{"s1", "s2"}})

	changes := next.Diff(old)
	if len(changes) != 2 {
		t.Fatalf("Diff=%+v, want 2 changes", changes)
	}
	if changes[0].Channel != "a" || changes[1].Channel != "c" {
		t.Fatalf("Diff channels: %v %v", changes[0].Channel, changes[1].Channel)
	}
	if changes[0].New.Servers[0] != "s2" {
		t.Fatalf("change a: %+v", changes[0])
	}
}

func TestDiffNoFalsePositiveOnFallbackMaterialization(t *testing.T) {
	old := New("s1", "s2")
	next := old.Clone()
	ch := "some-channel"
	home := next.Home(ch)
	// Materialize the existing fallback mapping explicitly: nothing moved.
	next.Set(ch, Entry{Strategy: StrategySingle, Servers: []ServerID{home}})
	if changes := next.Diff(old); len(changes) != 0 {
		t.Fatalf("materializing fallback reported a change: %+v", changes)
	}
}

func TestDiffServerSetOrderInsensitive(t *testing.T) {
	old := New("s1", "s2")
	old.Set("r", Entry{Strategy: StrategyAllSubscribers, Servers: []ServerID{"s1", "s2"}})
	next := old.Clone()
	next.Set("r", Entry{Strategy: StrategyAllSubscribers, Servers: []ServerID{"s2", "s1"}})
	if changes := next.Diff(old); len(changes) != 0 {
		t.Fatalf("replica order reported as change: %+v", changes)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := New("s1", "s2")
	p.Version = 7
	p.Set("hot", Entry{Strategy: StrategyAllPublishers, Servers: []ServerID{"s1", "s2"}})
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 || len(got.Servers) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	e, explicit := got.Lookup("hot")
	if !explicit || e.Strategy != StrategyAllPublishers || len(e.Servers) != 2 {
		t.Fatalf("decoded entry %+v", e)
	}
	// Ring still works after decode (ringOnce not serialized).
	if got.Home("anything") == "" {
		t.Fatal("decoded plan ring broken")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	tests := []string{
		`{"version":1,"servers":["s1"],"channels":{"c":{"strategy":0,"servers":["s1"]}}}`,
		`{"version":1,"servers":["s1"],"channels":{"c":{"strategy":1,"servers":[]}}}`,
		`not json`,
	}
	for _, data := range tests {
		if _, err := Unmarshal([]byte(data)); err == nil {
			t.Fatalf("invalid plan %q decoded without error", data)
		}
	}
}

func TestStickyIndexUniform(t *testing.T) {
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[stickyIndex("channel", "client-"+string(rune(i)), 4)]++
	}
	for i, c := range counts {
		if c < 600 || c > 1400 {
			t.Fatalf("sticky index skewed: replica %d got %d of 4000", i, c)
		}
	}
}

func TestStrategyStringAndValid(t *testing.T) {
	if StrategySingle.String() != "single" ||
		StrategyAllSubscribers.String() != "all-subscribers" ||
		StrategyAllPublishers.String() != "all-publishers" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(0).Valid() || Strategy(9).Valid() {
		t.Fatal("invalid strategies reported valid")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy has empty name")
	}
}

func TestLookupQuickFallbackAlwaysActiveServer(t *testing.T) {
	p := New("s1", "s2", "s3", "s4")
	f := func(ch string) bool {
		e, _ := p.Lookup(ch)
		return len(e.Servers) == 1 && p.HasServer(e.Servers[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanString(t *testing.T) {
	p := New("s1")
	p.Version = 3
	if got := p.String(); got != "plan{v3 servers=1 channels=0}" {
		t.Fatalf("String=%q", got)
	}
}
