// Package trace is Dynamoth's control-plane flight recorder: a fixed-capacity
// lock-free ring buffer of reconfiguration events (plan triggers, pushes,
// switches, migrations, dedup windows, failure detection and repair) with a
// span API for timed phases, derived dynamoth_reconfig_* metrics, and a
// per-rebalance timeline view served on the admin endpoints.
//
// The design constraints mirror the data plane's: appending an event costs
// zero heap allocations and takes no lock. Every slot is a cache line of
// atomic words guarded by a seqlock marker; strings (server IDs, channel
// names, static details) are interned into a copy-on-write table so the hot
// path only stores integer handles. Readers validate the marker before and
// after copying a slot and simply skip slots a writer is overwriting — a
// flight recorder tolerates losing an event under pathological contention,
// but never blocks the control plane and never tears a read.
package trace

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/metrics"
	"github.com/dynamoth/dynamoth/internal/obs"
)

// Kind identifies the type of a recorded event.
type Kind uint8

// Event kinds, covering the full reconfiguration lifecycle (§IV of the
// paper) and the failure path.
const (
	KindUnknown Kind = iota
	// KindTrigger marks a balancer planning round that decided to act;
	// Detail carries the planner's reason and thresholds, Value the maximum
	// load ratio observed (in millionths).
	KindTrigger
	// KindLoad is one LLA reading the trigger decision saw: Subject the
	// server, Value its load ratio (millionths), Aux its measured bytes/sec.
	KindLoad
	// KindPlanCompute is the planner invocation span (Value = duration ns).
	KindPlanCompute
	// KindPlanPush is one plan delivery to one server (Subject), a span.
	KindPlanPush
	// KindTWait records the time elapsed since the previous plan when a new
	// one is published (the T_wait throttle window, Value = duration ns).
	KindTWait
	// KindPlanApply marks a dispatcher installing a new plan; Subject is the
	// node, Aux the number of open transitions after the apply.
	KindPlanApply
	// KindSwitchSend is a dispatcher emitting a SWITCH notification for a
	// channel (Subject).
	KindSwitchSend
	// KindSwitchRecv is a client processing a SWITCH for a channel (Subject).
	KindSwitchRecv
	// KindMigrate is a client moving a subscription to the channel's new
	// holders (Subject = channel; Detail "switch" or "failover").
	KindMigrate
	// KindDrained marks a channel transition completing on a dispatcher
	// (old-holder forwarding can stop).
	KindDrained
	// KindDedupOpen marks a client opening a duplicate-suppression window
	// for a channel after a migration.
	KindDedupOpen
	// KindDedupClose closes a dedup window; Value is the number of
	// duplicates suppressed inside it, Aux the window duration (ns).
	KindDedupClose
	// KindDetect is a failure-detector verdict: Subject the dead server,
	// Detail the evidence (probe misses, report staleness).
	KindDetect
	// KindRepair is the plan-repair span after a failure: Subject the dead
	// server, Value the repair duration (ns), Aux the evacuated channel count.
	KindRepair
	// KindSpawn is a server boot span (Subject = new server).
	KindSpawn
	// KindRelease marks a server released back to the cloud.
	KindRelease
	// KindDialFail is a client dial failure (Subject = server).
	KindDialFail
	// KindRedial is a successful client reconnection (Subject = server).
	KindRedial
	// KindSubstitute marks a client failing over to a ring successor
	// (Subject = substitute server, Detail = channel).
	KindSubstitute
	// KindDuplicate marks one duplicate suppressed by a client's deduper
	// (Subject = channel).
	KindDuplicate
	// KindConnAccept marks one accepted broker connection (Subject =
	// remote address). Connection-layer kinds carry no plan ID and are
	// excluded from rebalance timeline attribution.
	KindConnAccept
	// KindConnClose marks one closed broker connection (Subject = remote
	// address, Detail = close reason, "" for an ordinary disconnect).
	KindConnClose
	// KindBackpressure marks a session disconnected for output-buffer
	// overflow (Subject = remote address, Value = buffered bytes, -1 when
	// the core tracks messages rather than bytes).
	KindBackpressure
	// KindReplay marks a client cursor resubscribe served from a broker
	// replay ring (Subject = channel, Detail the reason — "switch",
	// "failover", "redial" — Value = frames replayed, Aux = frames missed).
	KindReplay
	// KindReplayGap marks a definite, unrecoverable delivery gap: the ring
	// had already overwritten frames the client's cursor was owed (Subject =
	// channel, Value = frames lost).
	KindReplayGap

	kindCount // sentinel
)

// kindInfo is per-kind metadata: the JSON name, the emitting component, the
// log level of the slog twin, whether Value is a span duration, and the
// derived metric (if any).
type kindInfo struct {
	name      string
	component string
	level     slog.Level
	span      bool   // Value holds a duration; export a histogram
	metric    string // base metric name ("" = no derived metric)
	sum       bool   // counter exports the Value sum, not the event count
}

var kinds = [kindCount]kindInfo{
	KindUnknown:      {name: "unknown", component: "unknown", level: slog.LevelDebug},
	KindTrigger:      {name: "trigger", component: "balancer", level: slog.LevelInfo, metric: "dynamoth_reconfig_triggers"},
	KindLoad:         {name: "load", component: "balancer", level: slog.LevelDebug},
	KindPlanCompute:  {name: "plan_compute", component: "balancer", level: slog.LevelInfo, span: true, metric: "dynamoth_reconfig_plan_compute"},
	KindPlanPush:     {name: "plan_push", component: "balancer", level: slog.LevelInfo, span: true, metric: "dynamoth_reconfig_plan_push"},
	KindTWait:        {name: "t_wait", component: "balancer", level: slog.LevelInfo, span: true, metric: "dynamoth_reconfig_t_wait"},
	KindPlanApply:    {name: "plan_apply", component: "dispatcher", level: slog.LevelInfo, metric: "dynamoth_reconfig_plan_applies"},
	KindSwitchSend:   {name: "switch_send", component: "dispatcher", level: slog.LevelDebug, metric: "dynamoth_reconfig_switch_sent"},
	KindSwitchRecv:   {name: "switch_recv", component: "client", level: slog.LevelDebug, metric: "dynamoth_reconfig_switch_received"},
	KindMigrate:      {name: "migrate", component: "client", level: slog.LevelInfo, metric: "dynamoth_reconfig_migrations"},
	KindDrained:      {name: "drained", component: "dispatcher", level: slog.LevelDebug, metric: "dynamoth_reconfig_drains"},
	KindDedupOpen:    {name: "dedup_open", component: "client", level: slog.LevelDebug, metric: "dynamoth_reconfig_dedup_windows"},
	KindDedupClose:   {name: "dedup_close", component: "client", level: slog.LevelInfo, metric: "dynamoth_reconfig_dedup_suppressed", sum: true},
	KindDetect:       {name: "detect", component: "balancer", level: slog.LevelWarn, metric: "dynamoth_reconfig_failures_detected"},
	KindRepair:       {name: "repair", component: "balancer", level: slog.LevelWarn, span: true, metric: "dynamoth_reconfig_repair"},
	KindSpawn:        {name: "spawn", component: "balancer", level: slog.LevelInfo, span: true, metric: "dynamoth_reconfig_spawn"},
	KindRelease:      {name: "release", component: "balancer", level: slog.LevelInfo, metric: "dynamoth_reconfig_releases"},
	KindDialFail:     {name: "dial_fail", component: "client", level: slog.LevelWarn},
	KindRedial:       {name: "redial", component: "client", level: slog.LevelInfo},
	KindSubstitute:   {name: "substitute", component: "client", level: slog.LevelInfo},
	KindDuplicate:    {name: "duplicate", component: "client", level: slog.LevelDebug},
	KindConnAccept:   {name: "conn_accept", component: "broker", level: slog.LevelDebug, metric: "dynamoth_conn_accepts"},
	KindConnClose:    {name: "conn_close", component: "broker", level: slog.LevelDebug, metric: "dynamoth_conn_closes"},
	KindBackpressure: {name: "backpressure", component: "broker", level: slog.LevelWarn, metric: "dynamoth_conn_backpressure"},
	KindReplay:       {name: "replay", component: "client", level: slog.LevelInfo, metric: "dynamoth_replay_served", sum: true},
	KindReplayGap:    {name: "replay_gap", component: "client", level: slog.LevelWarn, metric: "dynamoth_replay_gap_frames", sum: true},
}

// String returns the kind's JSON name.
func (k Kind) String() string {
	if k >= kindCount {
		return "unknown"
	}
	return kinds[k].name
}

// Component returns the component that emits this kind.
func (k Kind) Component() string {
	if k >= kindCount {
		return "unknown"
	}
	return kinds[k].component
}

// KindByName resolves a JSON kind name (KindUnknown if not known).
func KindByName(name string) Kind {
	for k := Kind(1); k < kindCount; k++ {
		if kinds[k].name == name {
			return k
		}
	}
	return KindUnknown
}

// Event is one decoded flight-recorder entry.
type Event struct {
	// Seq is the global append sequence number (1-based, monotone).
	Seq uint64
	// Time is the event timestamp in unix nanoseconds (recorder clock).
	Time int64
	// Kind is the event type.
	Kind Kind
	// Plan is the plan version the event belongs to (0 = unattributed;
	// timelines attach such events to the enclosing rebalance by time).
	Plan uint64
	// Subject is the server or channel the event is about.
	Subject string
	// Detail is a short static annotation (reason, evidence, mode).
	Detail string
	// Value is the kind-specific primary value: a duration in nanoseconds
	// for span kinds, a count otherwise.
	Value int64
	// Aux is a secondary kind-specific value.
	Aux int64
}

// slot is one ring entry: a seqlock marker plus the event as atomic words, so
// concurrent writers and readers never race (all accesses are atomic) and a
// torn slot is detected by the marker changing mid-copy.
type slot struct {
	marker  atomic.Uint64 // published seq; 0 while a writer owns the slot
	time    atomic.Int64
	kind    atomic.Uint64
	plan    atomic.Uint64
	subject atomic.Uint64 // interned string handle
	detail  atomic.Uint64 // interned string handle
	value   atomic.Int64
	aux     atomic.Int64
}

// DefaultCapacity is the ring size when NewRecorder is given a non-positive
// capacity: at one event per control-plane action, 4096 entries hold hours of
// steady-state operation (~256 KiB of slots).
const DefaultCapacity = 4096

// maxInterned caps the string table; pathological inputs (unbounded distinct
// details) degrade to an ellipsis handle instead of growing without bound.
const maxInterned = 8192

// Recorder is the flight recorder. Appends are lock-free and allocation-free;
// reads (Events, the HTTP handlers) are concurrent-safe snapshots. The zero
// value is not usable — use NewRecorder. All methods are nil-safe: a nil
// *Recorder records nothing, so instrumented components need no guards.
type Recorder struct {
	mask  uint64
	slots []slot
	next  atomic.Uint64 // last claimed sequence number

	// interning: forward map and reverse table, both copy-on-write behind
	// atomic pointers so the hot path takes no lock on a hit.
	internMu  sync.Mutex
	internMap atomic.Pointer[map[string]uint64]
	internTab atomic.Pointer[[]string]

	// derived metrics, updated on every Record: per-kind event counts and
	// Value sums, plus span-duration histograms for span kinds.
	counts [kindCount]atomic.Uint64
	sums   [kindCount]atomic.Int64
	hists  [kindCount]*metrics.Histogram

	logger atomic.Pointer[slog.Logger]
	nowFn  atomic.Pointer[func() time.Time]
}

// Span-duration histogram range: 1 µs (in-process plan compute) to 60 s
// (cloud boot), 144 log buckets ≈ 13% resolution.
const (
	spanHistMin     = time.Microsecond
	spanHistMax     = 60 * time.Second
	spanHistBuckets = 144
)

// NewRecorder creates a flight recorder with the given capacity (rounded up
// to a power of two; <= 0 selects DefaultCapacity). The recorder stamps
// events with time.Now until SetNow installs another time source.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	r := &Recorder{
		mask:  uint64(size - 1),
		slots: make([]slot, size),
	}
	m := make(map[string]uint64)
	tab := []string{"", "…"}
	m[""] = 0
	m["…"] = 1
	r.internMap.Store(&m)
	r.internTab.Store(&tab)
	for k := Kind(1); k < kindCount; k++ {
		if kinds[k].span {
			r.hists[k] = metrics.NewHistogram(spanHistMin, spanHistMax, spanHistBuckets)
		}
	}
	return r
}

// Capacity returns the ring size.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// SetNow installs the recorder's time source (e.g. a cluster's virtual
// clock) so event timestamps stay monotone under accelerated time.
func (r *Recorder) SetNow(now func() time.Time) {
	if r == nil || now == nil {
		return
	}
	r.nowFn.Store(&now)
}

// SetLogger installs the structured-log twin: every recorded event is also
// emitted on logger (component-tagged, at the kind's level). Nil disables.
func (r *Recorder) SetLogger(logger *slog.Logger) {
	if r == nil {
		return
	}
	if logger == nil {
		r.logger.Store(nil)
		return
	}
	r.logger.Store(logger)
}

func (r *Recorder) now() time.Time {
	if fn := r.nowFn.Load(); fn != nil {
		return (*fn)()
	}
	return time.Now()
}

// intern maps s to a stable handle. Hits are lock-free map reads; misses take
// the intern mutex once per distinct string and republish a copied table.
func (r *Recorder) intern(s string) uint64 {
	if s == "" {
		return 0
	}
	if id, ok := (*r.internMap.Load())[s]; ok {
		return id
	}
	r.internMu.Lock()
	defer r.internMu.Unlock()
	old := *r.internMap.Load()
	if id, ok := old[s]; ok {
		return id
	}
	if len(old) >= maxInterned {
		return 1 // the shared "…" handle; the slog twin keeps the full string
	}
	next := make(map[string]uint64, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	tab := append(append([]string(nil), *r.internTab.Load()...), s)
	id := uint64(len(tab) - 1)
	next[s] = id
	r.internTab.Store(&tab)
	r.internMap.Store(&next)
	return id
}

func (r *Recorder) lookup(tab []string, id uint64) string {
	if id < uint64(len(tab)) {
		return tab[id]
	}
	return ""
}

// Record appends one event. It is safe for concurrent use, takes no lock on
// the steady-state path, and performs zero heap allocations (subjects and
// details should be stable strings — server IDs, channel names, static
// reasons — so interning hits its fast path). It returns the event's
// sequence number (0 on a nil recorder).
func (r *Recorder) Record(k Kind, planVersion uint64, subject, detail string, value, aux int64) uint64 {
	if r == nil {
		return 0
	}
	if k >= kindCount {
		k = KindUnknown
	}
	r.counts[k].Add(1)
	r.sums[k].Add(value)
	if h := r.hists[k]; h != nil {
		h.Observe(time.Duration(value))
	}
	ts := r.now().UnixNano()
	subID := r.intern(subject)
	detID := r.intern(detail)
	seq := r.next.Add(1)
	s := &r.slots[seq&r.mask]
	s.marker.Store(0) // take the slot; readers skip it until republished
	s.time.Store(ts)
	s.kind.Store(uint64(k))
	s.plan.Store(planVersion)
	s.subject.Store(subID)
	s.detail.Store(detID)
	s.value.Store(value)
	s.aux.Store(aux)
	s.marker.Store(seq)
	if lg := r.logger.Load(); lg != nil {
		info := kinds[k]
		if lg.Enabled(context.Background(), info.level) {
			lg.LogAttrs(context.Background(), info.level, "reconfig."+info.name,
				slog.String("component", info.component),
				slog.Uint64("plan", planVersion),
				slog.String("subject", subject),
				slog.String("detail", detail),
				slog.Int64("value", value),
				slog.Int64("aux", aux),
				slog.Uint64("seq", seq),
			)
		}
	}
	return seq
}

// Span is an in-flight timed control-plane operation.
type Span struct {
	r       *Recorder
	k       Kind
	plan    uint64
	subject string
	start   time.Time
}

// StartSpan begins a timed operation; End records it with Value = elapsed
// nanoseconds. Usable on a nil recorder (End is then a no-op).
func (r *Recorder) StartSpan(k Kind, planVersion uint64, subject string) Span {
	sp := Span{r: r, k: k, plan: planVersion, subject: subject}
	if r != nil {
		sp.start = r.now()
	}
	return sp
}

// SetSubject updates the span's subject with a value learned during the
// operation (e.g. the ID of a freshly spawned server).
func (sp *Span) SetSubject(subject string) { sp.subject = subject }

// End completes the span. detail and aux annotate the recorded event.
func (sp Span) End(detail string, aux int64) uint64 {
	if sp.r == nil {
		return 0
	}
	return sp.r.Record(sp.k, sp.plan, sp.subject, detail, sp.r.now().Sub(sp.start).Nanoseconds(), aux)
}

// EndAt completes the span with an explicit plan version learned during the
// operation (e.g. the version of the plan that was computed).
func (sp Span) EndAt(planVersion uint64, detail string, aux int64) uint64 {
	if sp.r == nil {
		return 0
	}
	return sp.r.Record(sp.k, planVersion, sp.subject, detail, sp.r.now().Sub(sp.start).Nanoseconds(), aux)
}

// Seq returns the sequence number of the most recent append (the cursor for
// Events).
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Count returns how many events of kind k were recorded over the recorder's
// lifetime (including events the ring has since overwritten).
func (r *Recorder) Count(k Kind) uint64 {
	if r == nil || k >= kindCount {
		return 0
	}
	return r.counts[k].Load()
}

// Sum returns the lifetime Value sum for kind k (e.g. total duplicates
// suppressed across all dedup windows for KindDedupClose).
func (r *Recorder) Sum(k Kind) int64 {
	if r == nil || k >= kindCount {
		return 0
	}
	return r.sums[k].Load()
}

// Events returns the recorded events with Seq > since that are still in the
// ring, oldest first. Events overwritten by wraparound are gone; the caller
// can detect the gap by comparing the first returned Seq against since+1.
func (r *Recorder) Events(since uint64) []Event {
	if r == nil {
		return nil
	}
	latest := r.next.Load()
	if latest == 0 {
		return nil
	}
	oldest := uint64(1)
	if cap := uint64(len(r.slots)); latest > cap {
		oldest = latest - cap + 1
	}
	if since+1 > oldest {
		oldest = since + 1
	}
	if oldest > latest {
		return nil
	}
	tab := *r.internTab.Load()
	out := make([]Event, 0, latest-oldest+1)
	for seq := oldest; seq <= latest; seq++ {
		s := &r.slots[seq&r.mask]
		if s.marker.Load() != seq {
			continue // overwritten or mid-write
		}
		ev := Event{
			Seq:     seq,
			Time:    s.time.Load(),
			Kind:    Kind(s.kind.Load()),
			Plan:    s.plan.Load(),
			Subject: r.lookup(tab, s.subject.Load()),
			Detail:  r.lookup(tab, s.detail.Load()),
			Value:   s.value.Load(),
			Aux:     s.aux.Load(),
		}
		if s.marker.Load() != seq {
			continue // a writer lapped us mid-copy; drop the torn read
		}
		if ev.Kind >= kindCount {
			ev.Kind = KindUnknown
		}
		out = append(out, ev)
	}
	return out
}

// RegisterMetrics exports the recorder's derived reconfiguration metrics on
// reg: per-kind counters (dynamoth_reconfig_*_total) and span-duration
// histograms (dynamoth_reconfig_*_seconds). Reads happen on scrape only.
func (r *Recorder) RegisterMetrics(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	for k := Kind(1); k < kindCount; k++ {
		info := kinds[k]
		if info.metric == "" {
			continue
		}
		k := k
		if info.sum {
			reg.Counter(info.metric+"_total",
				"Lifetime value sum of "+info.name+" flight-recorder events.",
				func() uint64 {
					if v := r.sums[k].Load(); v > 0 {
						return uint64(v)
					}
					return 0
				})
		} else {
			reg.Counter(info.metric+"_total",
				"Flight-recorder "+info.name+" events observed by the "+info.component+".",
				func() uint64 { return r.counts[k].Load() })
		}
		if info.span {
			reg.Histogram(info.metric+"_seconds",
				"Duration of "+info.name+" reconfiguration phases.",
				r.hists[k], 0.5, 0.99)
		}
	}
}
