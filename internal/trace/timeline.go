package trace

import (
	"sort"
	"time"
)

// Phase is one named step of a rebalance timeline, aggregated over the
// events that make it up (e.g. one plan_push phase summarises every
// per-server push of that plan).
type Phase struct {
	// Name is the event kind name ("trigger", "plan_compute", ...).
	Name string `json:"name"`
	// Start and End bound the phase in unix nanoseconds. For span events the
	// recorded timestamp is the end and Value the duration, so Start is
	// derived backwards.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Count is the number of events aggregated into this phase.
	Count int `json:"count"`
	// Value sums the events' kind-specific values (duration ns for spans,
	// suppressed duplicates for dedup_close, load ratio for triggers).
	Value int64 `json:"value"`
	// Subjects lists the distinct servers/channels the events touched,
	// capped at phaseSubjectCap.
	Subjects []string `json:"subjects,omitempty"`
}

// phaseSubjectCap bounds per-phase subject lists so a thousand-channel
// migration doesn't balloon the /debug/rebalances document.
const phaseSubjectCap = 32

// Rebalance is a reconstructed reconfiguration timeline: every recorded
// phase of one plan generation, from trigger (or failure detection) through
// migration and dedup-window close.
type Rebalance struct {
	// Plan is the plan version this rebalance installed.
	Plan uint64 `json:"plan"`
	// Kind classifies the rebalance: "rebalance" (load-driven), "repair"
	// (failure-driven), or "spawn" (scale-up boot).
	Kind string `json:"kind"`
	// Start and End bound the whole timeline (unix nanoseconds).
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Phases are ordered by start time.
	Phases []Phase `json:"phases"`
	// Suppressed is the total duplicates suppressed by client dedup windows
	// attributed to this rebalance.
	Suppressed int64 `json:"suppressed"`
}

// Duration returns End-Start.
func (rb Rebalance) Duration() time.Duration { return time.Duration(rb.End - rb.Start) }

// Phase returns the named phase, or nil if the timeline lacks it.
func (rb Rebalance) Phase(name string) *Phase {
	for i := range rb.Phases {
		if rb.Phases[i].Name == name {
			return &rb.Phases[i]
		}
	}
	return nil
}

// eventBounds returns the [start,end] interval an event covers: span events
// end at their timestamp and start Value nanoseconds earlier; point events
// are instants.
func eventBounds(ev Event) (int64, int64) {
	if ev.Kind < kindCount && kinds[ev.Kind].span && ev.Value > 0 && ev.Value < ev.Time {
		return ev.Time - ev.Value, ev.Time
	}
	return ev.Time, ev.Time
}

// failurePath reports whether a version-less event belongs to the client
// failure path. Switch-driven migrations and dedup windows always carry the
// plan version of the SWITCH that caused them, so a version-less event of
// these kinds was born from a broken connection — part of a failure incident,
// not of whatever rebalance happened to precede it.
func failurePath(k Kind) bool {
	switch k {
	case KindDialFail, KindRedial, KindSubstitute, KindMigrate, KindDedupOpen, KindDedupClose,
		KindReplay, KindReplayGap:
		return true
	}
	return false
}

// connLayer reports whether a kind belongs to the broker connection layer
// rather than the reconfiguration control loop.
func connLayer(k Kind) bool {
	switch k {
	case KindConnAccept, KindConnClose, KindBackpressure:
		return true
	}
	return false
}

// BuildTimelines reconstructs per-rebalance timelines from a recorder event
// stream. Events carrying a plan version are grouped by it; version-less
// client events (migrations, dedup windows, redials, substitutions) are
// attributed to the most recent rebalance that started before them — except
// failure-path events, which attach forward to the next repair when one
// follows: clients fail over the moment a connection breaks, while the
// balancer's verdict lags a detection window behind, and the incident
// timeline must span both. Results are ordered by plan version.
func BuildTimelines(events []Event) []Rebalance {
	if len(events) == 0 {
		return nil
	}
	byPlan := make(map[uint64][]Event)
	var planStarts []struct {
		plan  uint64
		start int64
	}
	for _, ev := range events {
		if ev.Plan == 0 {
			continue
		}
		if _, seen := byPlan[ev.Plan]; !seen {
			start, _ := eventBounds(ev)
			planStarts = append(planStarts, struct {
				plan  uint64
				start int64
			}{ev.Plan, start})
		}
		byPlan[ev.Plan] = append(byPlan[ev.Plan], ev)
	}
	if len(byPlan) == 0 {
		return nil
	}
	sort.Slice(planStarts, func(i, j int) bool { return planStarts[i].start < planStarts[j].start })

	// Plans whose recorded events include a failure verdict or repair span.
	repairs := make(map[uint64]bool)
	for plan, evs := range byPlan {
		for _, ev := range evs {
			if ev.Kind == KindDetect || ev.Kind == KindRepair {
				repairs[plan] = true
				break
			}
		}
	}

	// Attribute plan-less events to the most recent rebalance started at or
	// before their own start time.
	attribute := func(t int64) uint64 {
		var plan uint64
		for _, ps := range planStarts {
			if ps.start <= t {
				plan = ps.plan
			} else {
				break
			}
		}
		if plan == 0 {
			plan = planStarts[0].plan // before the first trigger: fold into it
		}
		return plan
	}
	// nextRepair finds the earliest repair starting at or after t (0 = none).
	nextRepair := func(t int64) uint64 {
		for _, ps := range planStarts {
			if ps.start >= t && repairs[ps.plan] {
				return ps.plan
			}
		}
		return 0
	}
	for _, ev := range events {
		if ev.Plan != 0 || connLayer(ev.Kind) {
			// Connection-layer events (accepts, closes, backpressure) are
			// steady-state traffic, not reconfiguration steps; attributing
			// them to whatever rebalance happened to precede them would
			// pollute every timeline on a busy broker.
			continue
		}
		start, _ := eventBounds(ev)
		var plan uint64
		if failurePath(ev.Kind) {
			plan = nextRepair(start)
		}
		if plan == 0 {
			plan = attribute(start)
		}
		byPlan[plan] = append(byPlan[plan], ev)
	}

	out := make([]Rebalance, 0, len(byPlan))
	for plan, evs := range byPlan {
		out = append(out, buildOne(plan, evs))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Plan < out[j].Plan })
	return out
}

func buildOne(plan uint64, evs []Event) Rebalance {
	rb := Rebalance{Plan: plan, Kind: "rebalance"}
	phases := make(map[Kind]*Phase)
	var order []Kind
	for _, ev := range evs {
		switch ev.Kind {
		case KindDetect, KindRepair:
			rb.Kind = "repair"
		case KindSpawn:
			if rb.Kind == "rebalance" {
				rb.Kind = "spawn"
			}
		case KindDedupClose:
			rb.Suppressed += ev.Value
		}
		start, end := eventBounds(ev)
		if rb.Start == 0 || start < rb.Start {
			rb.Start = start
		}
		if end > rb.End {
			rb.End = end
		}
		ph, ok := phases[ev.Kind]
		if !ok {
			ph = &Phase{Name: ev.Kind.String(), Start: start, End: end}
			phases[ev.Kind] = ph
			order = append(order, ev.Kind)
		}
		if start < ph.Start {
			ph.Start = start
		}
		if end > ph.End {
			ph.End = end
		}
		ph.Count++
		ph.Value += ev.Value
		if ev.Subject != "" && len(ph.Subjects) < phaseSubjectCap && !contains(ph.Subjects, ev.Subject) {
			ph.Subjects = append(ph.Subjects, ev.Subject)
		}
	}
	rb.Phases = make([]Phase, 0, len(order))
	for _, k := range order {
		rb.Phases = append(rb.Phases, *phases[k])
	}
	sort.SliceStable(rb.Phases, func(i, j int) bool { return rb.Phases[i].Start < rb.Phases[j].Start })
	return rb
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Timelines is a convenience wrapper building timelines straight from the
// recorder's current ring contents.
func (r *Recorder) Timelines() []Rebalance {
	return BuildTimelines(r.Events(0))
}
