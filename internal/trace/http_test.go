package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestEventsHandlerJSONL(t *testing.T) {
	r := NewRecorder(32)
	r.SetNow(testNow())
	r.Record(KindTrigger, 2, "", "spawn:1", 0, 0)
	r.Record(KindPlanPush, 2, "pub1", "", int64(time.Millisecond), 0)

	srv := httptest.NewServer(r.EventsHandler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/jsonl") {
		t.Fatalf("content type %q", ct)
	}
	if hdr := res.Header.Get("X-Trace-Seq"); hdr != "2" {
		t.Fatalf("X-Trace-Seq = %q, want 2", hdr)
	}
	n, err := ValidateJSONL(res.Body)
	if err != nil {
		t.Fatalf("ValidateJSONL: %v", err)
	}
	if n != 2 {
		t.Fatalf("validated %d events, want 2", n)
	}
}

func TestEventsHandlerSinceCursor(t *testing.T) {
	r := NewRecorder(32)
	r.SetNow(testNow())
	for i := 0; i < 5; i++ {
		r.Record(KindSwitchSend, 1, "game", "", 0, 0)
	}
	srv := httptest.NewServer(r.EventsHandler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "?since=3")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var seqs []uint64
	dec := json.NewDecoder(res.Body)
	for dec.More() {
		var ev wireEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, ev.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 4 || seqs[1] != 5 {
		t.Fatalf("since=3 returned seqs %v, want [4 5]", seqs)
	}

	bad, err := srv.Client().Get(srv.URL + "?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 400 {
		t.Fatalf("bad cursor gave status %d, want 400", bad.StatusCode)
	}
}

func TestRebalancesHandler(t *testing.T) {
	r := NewRecorder(64)
	r.SetNow(testNow())
	sp := r.StartSpan(KindPlanCompute, 0, "")
	sp.EndAt(2, "high-load:1 moves", 1)
	r.Record(KindPlanPush, 2, "pub1", "", int64(time.Millisecond), 0)
	r.Record(KindDedupClose, 2, "game", "", 5, 0)

	srv := httptest.NewServer(r.RebalancesHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var timelines []Rebalance
	if err := json.NewDecoder(res.Body).Decode(&timelines); err != nil {
		t.Fatal(err)
	}
	if len(timelines) != 1 || timelines[0].Plan != 2 {
		t.Fatalf("timelines = %+v", timelines)
	}
	if timelines[0].Suppressed != 5 {
		t.Fatalf("suppressed = %d, want 5", timelines[0].Suppressed)
	}
}

func TestRebalancesHandlerEmpty(t *testing.T) {
	r := NewRecorder(8)
	srv := httptest.NewServer(r.RebalancesHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var timelines []Rebalance
	if err := json.NewDecoder(res.Body).Decode(&timelines); err != nil {
		t.Fatal(err)
	}
	if timelines == nil || len(timelines) != 0 {
		t.Fatalf("empty recorder should serve [], got %v", timelines)
	}
}

func TestValidateJSONLRejectsBadStreams(t *testing.T) {
	cases := map[string]string{
		"not json":       "hello\n",
		"missing seq":    `{"ts":1,"kind":"trigger"}` + "\n",
		"bad kind":       `{"seq":1,"ts":1,"kind":"party"}` + "\n",
		"zero ts":        `{"seq":1,"ts":0,"kind":"trigger"}` + "\n",
		"seq regression": `{"seq":2,"ts":1,"kind":"trigger"}` + "\n" + `{"seq":1,"ts":2,"kind":"trigger"}` + "\n",
		"seq duplicated": `{"seq":2,"ts":1,"kind":"trigger"}` + "\n" + `{"seq":2,"ts":2,"kind":"trigger"}` + "\n",
	}
	for name, payload := range cases {
		if _, err := ValidateJSONL(strings.NewReader(payload)); err == nil {
			t.Fatalf("%s: ValidateJSONL accepted %q", name, payload)
		}
	}
	good := ""
	for i := 1; i <= 3; i++ {
		good += `{"seq":` + strconv.Itoa(i) + `,"ts":` + strconv.Itoa(i*1000) + `,"kind":"migrate","component":"client","plan":2,"subject":"game","value":1}` + "\n"
	}
	n, err := ValidateJSONL(strings.NewReader(good + "\n\n"))
	if err != nil || n != 3 {
		t.Fatalf("good stream rejected: n=%d err=%v", n, err)
	}
}
