package trace

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/obs"
)

func testNow() func() time.Time {
	base := time.Unix(1_700_000_000, 0)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestTraceRecordAndRead(t *testing.T) {
	r := NewRecorder(16)
	r.SetNow(testNow())
	r.Record(KindTrigger, 2, "", "high-load:3 moves", 1_500_000, 0)
	r.Record(KindPlanPush, 2, "pub1", "", int64(3*time.Millisecond), 0)
	r.Record(KindDedupClose, 2, "game", "", 4, int64(time.Second))

	evs := r.Events(0)
	if len(evs) != 3 {
		t.Fatalf("Events(0) = %d events, want 3", len(evs))
	}
	if evs[0].Kind != KindTrigger || evs[0].Detail != "high-load:3 moves" || evs[0].Plan != 2 {
		t.Fatalf("first event mismatch: %+v", evs[0])
	}
	if evs[1].Subject != "pub1" {
		t.Fatalf("subject not interned round-trip: %+v", evs[1])
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("timestamps not monotone: %d then %d", evs[i-1].Time, evs[i].Time)
		}
	}
	if got := r.Sum(KindDedupClose); got != 4 {
		t.Fatalf("Sum(KindDedupClose) = %d, want 4", got)
	}
	if got := r.Count(KindPlanPush); got != 1 {
		t.Fatalf("Count(KindPlanPush) = %d, want 1", got)
	}
}

func TestTraceRingWraparound(t *testing.T) {
	r := NewRecorder(8)
	r.SetNow(testNow())
	const total = 20
	for i := 0; i < total; i++ {
		r.Record(KindMigrate, uint64(i+1), "ch", "switch", 1, 0)
	}
	evs := r.Events(0)
	if len(evs) != 8 {
		t.Fatalf("after wraparound got %d events, want capacity 8", len(evs))
	}
	// Only the newest capacity events survive: seqs 13..20.
	if evs[0].Seq != total-8+1 || evs[len(evs)-1].Seq != total {
		t.Fatalf("wraparound kept seqs [%d..%d], want [13..20]", evs[0].Seq, evs[len(evs)-1].Seq)
	}
	if r.Count(KindMigrate) != total {
		t.Fatalf("lifetime count %d, want %d (overwritten events still counted)", r.Count(KindMigrate), total)
	}
}

func TestTraceSinceCursorPagination(t *testing.T) {
	r := NewRecorder(64)
	r.SetNow(testNow())
	for i := 0; i < 10; i++ {
		r.Record(KindSwitchSend, 3, "game", "", 0, 0)
	}
	var got []Event
	var cursor uint64
	pages := 0
	for {
		page := r.Events(cursor)
		if len(page) == 0 {
			break
		}
		pages++
		got = append(got, page...)
		cursor = page[len(page)-1].Seq
		if pages > 20 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(got) != 10 {
		t.Fatalf("paginated read returned %d events, want 10", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if extra := r.Events(got[len(got)-1].Seq); len(extra) != 0 {
		t.Fatalf("Events past the tail returned %d events, want 0", len(extra))
	}
}

func TestTraceConcurrentWriters(t *testing.T) {
	r := NewRecorder(256)
	const writers = 8
	const perWriter = 500
	subjects := []string{"pub1", "pub2", "pub3", "game", "chat"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent reader exercising the seqlock validation path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, ev := range r.Events(0) {
					if ev.Kind >= kindCount {
						t.Errorf("torn read escaped validation: kind %d", ev.Kind)
						return
					}
				}
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(KindMigrate, uint64(w+1), subjects[i%len(subjects)], "switch", 1, 0)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()
	if got := r.Count(KindMigrate); got != writers*perWriter {
		t.Fatalf("lifetime count %d, want %d", got, writers*perWriter)
	}
	if got := r.Seq(); got != writers*perWriter {
		t.Fatalf("final seq %d, want %d", got, writers*perWriter)
	}
	evs := r.Events(0)
	if len(evs) == 0 || len(evs) > 256 {
		t.Fatalf("ring holds %d events, want (0,256]", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seqs not increasing after concurrent writes: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestTraceRecordZeroAllocs(t *testing.T) {
	r := NewRecorder(1024)
	// Warm the intern table so the steady-state path is measured.
	r.Record(KindSwitchSend, 1, "pub1", "reason", 1, 2)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(KindSwitchSend, 1, "pub1", "reason", 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestTraceNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if seq := r.Record(KindTrigger, 1, "x", "y", 0, 0); seq != 0 {
		t.Fatalf("nil Record returned seq %d", seq)
	}
	sp := r.StartSpan(KindRepair, 1, "pub1")
	if seq := sp.End("done", 0); seq != 0 {
		t.Fatalf("nil span End returned seq %d", seq)
	}
	if evs := r.Events(0); evs != nil {
		t.Fatalf("nil Events returned %v", evs)
	}
	if tl := r.Timelines(); tl != nil {
		t.Fatalf("nil Timelines returned %v", tl)
	}
	r.SetNow(time.Now)
	r.SetLogger(slog.Default())
	r.RegisterMetrics(obs.NewRegistry())
}

func TestTraceSpan(t *testing.T) {
	r := NewRecorder(16)
	now := time.Unix(1_700_000_000, 0)
	r.SetNow(func() time.Time { return now })
	sp := r.StartSpan(KindPlanCompute, 0, "")
	now = now.Add(7 * time.Millisecond)
	sp.EndAt(5, "high-load:2 moves", 3)
	evs := r.Events(0)
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != KindPlanCompute || ev.Plan != 5 || ev.Aux != 3 {
		t.Fatalf("span event mismatch: %+v", ev)
	}
	if ev.Value != int64(7*time.Millisecond) {
		t.Fatalf("span duration %v, want 7ms", time.Duration(ev.Value))
	}
}

func TestTraceInternOverflow(t *testing.T) {
	r := NewRecorder(16)
	r.SetNow(testNow())
	big := make([]byte, 8)
	for i := 0; i < maxInterned+10; i++ {
		for j := range big {
			big[j] = byte('a' + (i>>uint(j*4))&0xf)
		}
		r.Record(KindLoad, 1, string(big), "", 0, 0)
	}
	// Recorder stays functional; overflowed subjects degrade to the ellipsis.
	evs := r.Events(0)
	if len(evs) == 0 {
		t.Fatal("no events after intern overflow")
	}
	last := evs[len(evs)-1]
	if last.Subject != "…" {
		t.Fatalf("overflowed subject = %q, want ellipsis", last.Subject)
	}
}

func TestTraceLoggerTwin(t *testing.T) {
	r := NewRecorder(16)
	r.SetNow(testNow())
	var buf bytes.Buffer
	r.SetLogger(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug})))
	r.Record(KindDetect, 4, "pub2", "probe-misses:3", 0, 0)
	out := buf.String()
	for _, want := range []string{"reconfig.detect", "component=balancer", "subject=pub2", "probe-misses:3", "plan=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log twin missing %q in %q", want, out)
		}
	}
	// Below-level events are skipped without formatting cost.
	buf.Reset()
	r.SetLogger(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelError})))
	r.Record(KindSwitchSend, 4, "game", "", 0, 0)
	if buf.Len() != 0 {
		t.Fatalf("debug event leaked through error-level logger: %q", buf.String())
	}
}

func TestTraceRegisterMetrics(t *testing.T) {
	r := NewRecorder(32)
	r.SetNow(testNow())
	r.Record(KindTrigger, 2, "", "spawn:1", 0, 0)
	r.Record(KindDedupClose, 2, "game", "", 7, 0)
	sp := r.StartSpan(KindRepair, 3, "pub1")
	sp.End("evacuate", 5)
	reg := obs.NewRegistry()
	r.RegisterMetrics(reg)
	text := reg.String()
	checks := map[string]string{
		"dynamoth_reconfig_triggers_total":         "dynamoth_reconfig_triggers_total 1",
		"dynamoth_reconfig_dedup_suppressed_total": "dynamoth_reconfig_dedup_suppressed_total 7",
		"dynamoth_reconfig_repair_seconds":         "dynamoth_reconfig_repair_seconds_count 1",
	}
	for name, want := range checks {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q for %s:\n%s", want, name, text)
		}
	}
	if _, err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestTraceKindNames(t *testing.T) {
	for k := Kind(1); k < kindCount; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if KindByName(name) != k {
			t.Fatalf("KindByName(%q) = %v, want %v", name, KindByName(name), k)
		}
		if k.Component() == "" || k.Component() == "unknown" {
			t.Fatalf("kind %s has no component", name)
		}
	}
}

func TestTraceComponentLogger(t *testing.T) {
	if Component(nil, "server") != DiscardLogger() {
		t.Fatal("nil base should return the discard logger")
	}
	var buf bytes.Buffer
	lg := Component(slog.New(slog.NewTextHandler(&buf, nil)), "balancer")
	lg.Info("hello")
	if !strings.Contains(buf.String(), "component=balancer") {
		t.Fatalf("component tag missing: %q", buf.String())
	}
	if DiscardLogger().Enabled(context.Background(), slog.LevelError) {
		t.Fatal("discard logger should be disabled at every level")
	}
}

func TestTraceParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel should reject unknown levels")
	}
}

func BenchmarkTraceRecord(b *testing.B) {
	r := NewRecorder(4096)
	r.Record(KindSwitchSend, 1, "pub1", "", 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(KindSwitchSend, 1, "pub1", "", int64(i), 0)
	}
}

func BenchmarkTraceRecordParallel(b *testing.B) {
	r := NewRecorder(4096)
	r.Record(KindMigrate, 1, "game", "switch", 0, 0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record(KindMigrate, 1, "game", "switch", 1, 0)
		}
	})
}
