package trace

import (
	"testing"
	"time"
)

func mkEvent(seq uint64, at time.Duration, k Kind, plan uint64, subject string, value, aux int64) Event {
	base := int64(1_700_000_000_000_000_000)
	return Event{
		Seq: seq, Time: base + int64(at), Kind: k,
		Plan: plan, Subject: subject, Value: value, Aux: aux,
	}
}

func TestTimelineSingleRebalance(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	events := []Event{
		mkEvent(1, ms(0), KindTrigger, 2, "", 1_800_000, 0),
		mkEvent(2, ms(1), KindLoad, 2, "pub1", 1_800_000, 900_000),
		mkEvent(3, ms(5), KindPlanCompute, 2, "", int64(ms(4)), 0),
		mkEvent(4, ms(8), KindPlanPush, 2, "pub1", int64(ms(2)), 0),
		mkEvent(5, ms(9), KindPlanPush, 2, "pub2", int64(ms(2)), 0),
		mkEvent(6, ms(10), KindSwitchSend, 2, "game", 0, 0),
		// Plan-less client events attributed by time window.
		mkEvent(7, ms(12), KindSwitchRecv, 0, "game", 0, 0),
		mkEvent(8, ms(13), KindMigrate, 0, "game", 1, 0),
		mkEvent(9, ms(14), KindDedupOpen, 0, "game", 0, 0),
		mkEvent(10, ms(40), KindDedupClose, 0, "game", 3, int64(ms(26))),
	}
	timelines := BuildTimelines(events)
	if len(timelines) != 1 {
		t.Fatalf("got %d timelines, want 1", len(timelines))
	}
	rb := timelines[0]
	if rb.Plan != 2 || rb.Kind != "rebalance" {
		t.Fatalf("timeline header mismatch: %+v", rb)
	}
	if rb.Suppressed != 3 {
		t.Fatalf("suppressed = %d, want 3", rb.Suppressed)
	}
	for _, phase := range []string{"trigger", "load", "plan_compute", "plan_push", "switch_send", "switch_recv", "migrate", "dedup_open", "dedup_close"} {
		if rb.Phase(phase) == nil {
			t.Fatalf("missing phase %q in %+v", phase, rb.Phases)
		}
	}
	if push := rb.Phase("plan_push"); push.Count != 2 || len(push.Subjects) != 2 {
		t.Fatalf("plan_push phase should aggregate both servers: %+v", push)
	}
	// Phases ordered by start; timeline bounds cover all events.
	for i := 1; i < len(rb.Phases); i++ {
		if rb.Phases[i].Start < rb.Phases[i-1].Start {
			t.Fatalf("phases out of order: %+v", rb.Phases)
		}
	}
	if rb.Start > rb.Phases[0].Start || rb.End < rb.Phases[len(rb.Phases)-1].End {
		t.Fatalf("timeline bounds [%d,%d] don't cover phases", rb.Start, rb.End)
	}
	// plan_compute is a span: its start is derived backwards from the duration.
	pc := rb.Phase("plan_compute")
	if pc.End-pc.Start != int64(ms(4)) {
		t.Fatalf("span phase width %v, want 4ms", time.Duration(pc.End-pc.Start))
	}
}

func TestTimelineRepairClassification(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	events := []Event{
		mkEvent(1, ms(0), KindDetect, 3, "pub2", 0, 0),
		mkEvent(2, ms(2), KindRepair, 3, "pub2", int64(ms(1)), 12),
		mkEvent(3, ms(3), KindPlanPush, 3, "pub1", int64(ms(1)), 0),
		mkEvent(4, ms(10), KindSubstitute, 0, "pub3", 0, 0),
		mkEvent(5, ms(11), KindRedial, 0, "pub3", 0, 0),
	}
	timelines := BuildTimelines(events)
	if len(timelines) != 1 {
		t.Fatalf("got %d timelines, want 1", len(timelines))
	}
	rb := timelines[0]
	if rb.Kind != "repair" {
		t.Fatalf("kind = %q, want repair", rb.Kind)
	}
	if rb.Phase("substitute") == nil || rb.Phase("redial") == nil {
		t.Fatalf("client failover events not attributed: %+v", rb.Phases)
	}
	if rep := rb.Phase("repair"); rep.Value != int64(ms(1)) {
		t.Fatalf("repair phase value %d, want duration", rep.Value)
	}
}

func TestTimelineMultiplePlansAttribution(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	events := []Event{
		mkEvent(1, ms(0), KindTrigger, 2, "", 0, 0),
		mkEvent(2, ms(5), KindMigrate, 0, "a", 1, 0), // belongs to plan 2
		mkEvent(3, ms(100), KindTrigger, 3, "", 0, 0),
		mkEvent(4, ms(105), KindMigrate, 0, "b", 1, 0), // belongs to plan 3
	}
	timelines := BuildTimelines(events)
	if len(timelines) != 2 {
		t.Fatalf("got %d timelines, want 2", len(timelines))
	}
	if m := timelines[0].Phase("migrate"); m == nil || m.Subjects[0] != "a" {
		t.Fatalf("plan 2 should own migration 'a': %+v", timelines[0].Phases)
	}
	if m := timelines[1].Phase("migrate"); m == nil || m.Subjects[0] != "b" {
		t.Fatalf("plan 3 should own migration 'b': %+v", timelines[1].Phases)
	}
}

// TestTimelineFailoverForwardAttribution covers the detection-lag window: a
// client fails over the instant its connection breaks, but the balancer's
// verdict (and the repair plan version) only exists a detection window later.
// Failure-path events recorded in that gap must attach forward to the repair,
// not backward to whatever rebalance happened to precede the crash.
func TestTimelineFailoverForwardAttribution(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	events := []Event{
		mkEvent(1, ms(0), KindTrigger, 2, "", 0, 0),
		// Ordinary plan-less client event: attributed backward as usual.
		mkEvent(2, ms(40), KindSwitchRecv, 0, "game", 0, 0),
		// The crash: failover precedes the verdict by the detection window.
		mkEvent(3, ms(50), KindDialFail, 0, "pub3", 0, 0),
		mkEvent(4, ms(51), KindSubstitute, 0, "pub2", 0, 0),
		mkEvent(5, ms(52), KindMigrate, 0, "game", 1, 0),
		mkEvent(6, ms(53), KindDedupClose, 0, "game", 2, 0),
		mkEvent(7, ms(2050), KindDetect, 3, "pub3", 3, 0),
		mkEvent(8, ms(2052), KindRepair, 3, "pub3", int64(ms(1)), 1),
	}
	timelines := BuildTimelines(events)
	if len(timelines) != 2 {
		t.Fatalf("got %d timelines, want 2", len(timelines))
	}
	rebalance, repair := timelines[0], timelines[1]
	if repair.Kind != "repair" {
		t.Fatalf("plan 3 kind = %q, want repair", repair.Kind)
	}
	for _, phase := range []string{"dial_fail", "substitute", "migrate", "dedup_close"} {
		if repair.Phase(phase) == nil {
			t.Errorf("repair missing forward-attributed %q phase: %+v", phase, repair.Phases)
		}
		if rebalance.Phase(phase) != nil {
			t.Errorf("plan 2 wrongly owns failure-path %q phase", phase)
		}
	}
	if rebalance.Phase("switch_recv") == nil {
		t.Errorf("non-failure plan-less event left plan 2: %+v", rebalance.Phases)
	}
	if repair.Suppressed != 2 {
		t.Errorf("repair suppressed = %d, want 2 (failover window's count)", repair.Suppressed)
	}
	// The incident starts at the first failover, so detection lag is visible
	// as the gap between the timeline start and the detect phase.
	if repair.Start != events[2].Time {
		t.Errorf("repair start = %d, want first failover event %d", repair.Start, events[2].Time)
	}
}

func TestTimelineEmptyAndPlanless(t *testing.T) {
	if tl := BuildTimelines(nil); tl != nil {
		t.Fatalf("nil events gave %v", tl)
	}
	// Only plan-less events: nothing to anchor on, no timelines.
	evs := []Event{mkEvent(1, 0, KindRedial, 0, "pub1", 0, 0)}
	if tl := BuildTimelines(evs); tl != nil {
		t.Fatalf("anchor-less events gave %v", tl)
	}
}

func TestTimelineExcludesConnLayer(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	events := []Event{
		mkEvent(1, ms(0), KindTrigger, 2, "", 0, 0),
		mkEvent(2, ms(5), KindPlanCompute, 2, "", int64(ms(4)), 0),
		// Steady-state connection churn after the rebalance started: must
		// not show up as rebalance phases.
		mkEvent(3, ms(6), KindConnAccept, 0, "10.0.0.1:5000", 0, 0),
		mkEvent(4, ms(7), KindBackpressure, 0, "10.0.0.1:5000", 1<<20, 0),
		mkEvent(5, ms(8), KindConnClose, 0, "10.0.0.1:5000", 0, 0),
	}
	timelines := BuildTimelines(events)
	if len(timelines) != 1 {
		t.Fatalf("got %d timelines, want 1", len(timelines))
	}
	for _, name := range []string{"conn_accept", "conn_close", "backpressure"} {
		if timelines[0].Phase(name) != nil {
			t.Fatalf("connection-layer phase %q leaked into timeline: %+v", name, timelines[0].Phases)
		}
	}
}
