package trace

import (
	"context"
	"log/slog"
	"os"
)

// nopHandler is a slog handler that drops everything. (slog.DiscardHandler
// arrived in Go 1.24; this module targets 1.22.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var discard = slog.New(nopHandler{})

// DiscardLogger returns a logger that drops all records. Components use it
// as the default so instrumentation never needs nil checks.
func DiscardLogger() *slog.Logger { return discard }

// Component tags a logger with its emitting component. A nil base returns
// the discard logger, so callers can pass options through unchecked.
func Component(base *slog.Logger, name string) *slog.Logger {
	if base == nil {
		return discard
	}
	return base.With(slog.String("component", name))
}

// ParseLevel parses a -log-level flag value ("debug", "info", "warn",
// "error", or slog's LEVEL±offset forms).
func ParseLevel(s string) (slog.Level, error) {
	var lvl slog.Level
	err := lvl.UnmarshalText([]byte(s))
	return lvl, err
}

// NewStderrLogger builds the binaries' standard logger: text-formatted
// slog on stderr at the given level.
func NewStderrLogger(level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
}
