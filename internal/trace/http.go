package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// wireEvent is the JSONL schema served by /debug/events. Kind is the
// symbolic name; component is derived from it so consumers need no table.
type wireEvent struct {
	Seq       uint64 `json:"seq"`
	TS        int64  `json:"ts"`
	Kind      string `json:"kind"`
	Component string `json:"component"`
	Plan      uint64 `json:"plan"`
	Subject   string `json:"subject,omitempty"`
	Detail    string `json:"detail,omitempty"`
	Value     int64  `json:"value"`
	Aux       int64  `json:"aux,omitempty"`
}

func toWire(ev Event) wireEvent {
	return wireEvent{
		Seq:       ev.Seq,
		TS:        ev.Time,
		Kind:      ev.Kind.String(),
		Component: ev.Kind.Component(),
		Plan:      ev.Plan,
		Subject:   ev.Subject,
		Detail:    ev.Detail,
		Value:     ev.Value,
		Aux:       ev.Aux,
	}
}

// WriteJSONL encodes events as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(toWire(ev)); err != nil {
			return err
		}
	}
	return nil
}

// EventsHandler serves the recorder as JSONL on /debug/events. The optional
// ?since=N query returns only events with Seq > N, enabling cursor-based
// tailing; the X-Trace-Seq response header carries the latest sequence so a
// tail client can resume from it.
func (r *Recorder) EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var since uint64
		if s := req.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since cursor: "+err.Error(), http.StatusBadRequest)
				return
			}
			since = v
		}
		events := r.Events(since)
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		w.Header().Set("X-Trace-Seq", strconv.FormatUint(r.Seq(), 10))
		_ = WriteJSONL(w, events)
	})
}

// RebalancesHandler serves reconstructed per-rebalance timelines as a JSON
// array on /debug/rebalances.
func (r *Recorder) RebalancesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		timelines := r.Timelines()
		if timelines == nil {
			timelines = []Rebalance{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(timelines)
	})
}

// ValidateJSONL checks a /debug/events payload: every line must be a JSON
// object matching the wire schema, with known kind names, positive
// timestamps, and strictly increasing sequence numbers. It returns the
// number of valid events. Used by tests and the CI schema check.
func ValidateJSONL(rd io.Reader) (int, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	var lastSeq uint64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev wireEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return n, fmt.Errorf("line %d: invalid JSON: %w", n+1, err)
		}
		if ev.Seq == 0 {
			return n, fmt.Errorf("line %d: missing seq", n+1)
		}
		if ev.Seq <= lastSeq {
			return n, fmt.Errorf("line %d: seq %d not increasing (previous %d)", n+1, ev.Seq, lastSeq)
		}
		if ev.TS <= 0 {
			return n, fmt.Errorf("line %d: non-positive timestamp %d", n+1, ev.TS)
		}
		if KindByName(ev.Kind) == KindUnknown && ev.Kind != "unknown" {
			return n, fmt.Errorf("line %d: unknown kind %q", n+1, ev.Kind)
		}
		lastSeq = ev.Seq
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}
