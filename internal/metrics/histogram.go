// Package metrics provides the measurement primitives used by the Dynamoth
// load-monitoring pipeline and the experiment harness: latency histograms
// with quantiles, running summaries, windowed rates, and printable time
// series (the data behind every figure in the paper's evaluation).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram is a log-bucketed duration histogram, cheap enough to sit on the
// publish hot path. Buckets grow geometrically from Min to Max; values
// outside the range clamp to the edge buckets. The zero value is unusable;
// create with NewHistogram.
type Histogram struct {
	mu      sync.Mutex
	counts  []uint64
	min     float64 // seconds
	ratio   float64 // log bucket growth factor
	logMin  float64
	logStep float64
	total   uint64
	sum     float64 // seconds
	maxSeen float64
	minSeen float64
}

// NewHistogram creates a histogram covering [min, max] with the given number
// of geometric buckets. Typical latency use: NewHistogram(time.Millisecond,
// 10*time.Second, 200) gives ~4.7% bucket resolution.
func NewHistogram(min, max time.Duration, buckets int) *Histogram {
	if min <= 0 || max <= min || buckets < 2 {
		panic("metrics: invalid histogram bounds")
	}
	lo := min.Seconds()
	hi := max.Seconds()
	h := &Histogram{
		counts:  make([]uint64, buckets),
		min:     lo,
		logMin:  math.Log(lo),
		logStep: (math.Log(hi) - math.Log(lo)) / float64(buckets),
		minSeen: math.Inf(1),
	}
	h.ratio = math.Exp(h.logStep)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	if s < 0 {
		s = 0
	}
	i := 0
	if s > h.min {
		i = int((math.Log(s) - h.logMin) / h.logStep)
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
	}
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += s
	if s > h.maxSeen {
		h.maxSeen = s
	}
	if s < h.minSeen {
		h.minSeen = s
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the mean observed duration, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total) * float64(time.Second))
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.maxSeen * float64(time.Second))
}

// Min returns the smallest observed duration.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.minSeen * float64(time.Second))
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1), using the
// geometric midpoint of the bucket containing the rank, clamped to the
// observed [Min(), Max()] range. The edge buckets absorb out-of-range
// observations, so their midpoints can lie arbitrarily far from any real
// sample; they report the true observed extremes instead.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 || q <= 0 || q > 1 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			lo := math.Exp(h.logMin + float64(i)*h.logStep)
			est := lo * math.Sqrt(h.ratio)
			switch i {
			case 0:
				est = h.minSeen // holds everything clamped below min
			case len(h.counts) - 1:
				est = h.maxSeen // holds everything clamped above max
			}
			if est < h.minSeen {
				est = h.minSeen
			}
			if est > h.maxSeen {
				est = h.maxSeen
			}
			return time.Duration(est * float64(time.Second))
		}
	}
	return time.Duration(h.maxSeen * float64(time.Second))
}

// Buckets iterates the histogram's buckets in ascending order, calling fn
// with each bucket's inclusive upper bound in seconds (+Inf for the last,
// which absorbs over-range observations) and the cumulative observation
// count up to it — the Prometheus cumulative-bucket convention. It returns
// the total count and the sum of all observations in seconds. fn must not
// call back into the histogram.
func (h *Histogram) Buckets(fn func(upperSeconds float64, cumulative uint64)) (count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, c := range h.counts {
		cum += c
		le := math.Exp(h.logMin + float64(i+1)*h.logStep)
		if i == len(h.counts)-1 {
			le = math.Inf(1)
		}
		fn(le, cum)
	}
	return h.total, h.sum
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.maxSeen = 0, 0, 0
	h.minSeen = math.Inf(1)
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// String renders the snapshot on one line.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}

// Summary accumulates count/mean/min/max of a float series. The zero value
// is ready to use.
type Summary struct {
	mu    sync.Mutex
	n     uint64
	sum   float64
	min   float64
	max   float64
	first bool
}

// Add records one value.
func (s *Summary) Add(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.first {
		s.min, s.max, s.first = v, v, true
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	s.sum += v
}

// Count returns the number of recorded values.
func (s *Summary) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Mean returns the mean, or 0 with no values.
func (s *Summary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest value, or 0 with none.
func (s *Summary) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.min
}

// Max returns the largest value, or 0 with none.
func (s *Summary) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Percentile computes the p-quantile (0..1) of a raw sample slice, sorting a
// copy. Intended for offline experiment post-processing, not hot paths.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 1 {
		return cp[len(cp)-1]
	}
	idx := p * float64(len(cp)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return cp[lo]
	}
	frac := idx - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}
