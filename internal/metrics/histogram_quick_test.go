package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

// TestHistogramQuantilePropertyQuick checks, over random observation sets,
// the two estimator invariants the exposition layer depends on: Quantile is
// monotonically non-decreasing in q, and every estimate lies within the
// observed [Min(), Max()] range — including observations clamped into the
// edge buckets, whose geometric midpoints lie outside any real sample.
func TestHistogramQuantilePropertyQuick(t *testing.T) {
	property := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(time.Millisecond, time.Second, 30)
		for _, v := range raw {
			// Spread samples well beyond [min, max] to exercise clamping.
			h.Observe(time.Duration(v) * time.Microsecond)
		}
		qs := []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
		prev := time.Duration(0)
		for _, q := range qs {
			est := h.Quantile(q)
			if est < prev {
				t.Logf("Quantile(%v)=%v < previous %v", q, est, prev)
				return false
			}
			if est < h.Min() || est > h.Max() {
				t.Logf("Quantile(%v)=%v outside [%v, %v]", q, est, h.Min(), h.Max())
				return false
			}
			prev = est
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramQuantileEdgeBucketsReportExtremes pins the clamping fix: with
// every sample outside the configured range, the estimates must report the
// observed extremes, not bucket midpoints.
func TestHistogramQuantileEdgeBucketsReportExtremes(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 100*time.Millisecond, 10)
	h.Observe(time.Microsecond)  // below min → first bucket
	h.Observe(100 * time.Second) // above max → last bucket
	if got := h.Quantile(0.25); got != h.Min() {
		t.Fatalf("low quantile = %v, want %v (minSeen)", got, h.Min())
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Fatalf("high quantile = %v, want %v (maxSeen)", got, h.Max())
	}
}
