package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Series is a table of named columns sampled against a shared X axis
// (usually experiment seconds). It is what the experiment harness fills and
// what each paper figure is printed from.
type Series struct {
	mu    sync.Mutex
	xName string
	cols  []string
	colIx map[string]int
	rows  map[float64][]float64 // x -> column values (NaN = missing)
	marks map[float64][]string  // x -> event labels (reconfigurations etc.)
}

// NewSeries creates a series with the given X-axis name and column names.
func NewSeries(xName string, cols ...string) *Series {
	s := &Series{
		xName: xName,
		cols:  append([]string(nil), cols...),
		colIx: make(map[string]int, len(cols)),
		rows:  make(map[float64][]float64),
		marks: make(map[float64][]string),
	}
	for i, c := range cols {
		s.colIx[c] = i
	}
	return s
}

// Record sets column col at x to v, creating the row as needed.
func (s *Series) Record(x float64, col string, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.colIx[col]
	if !ok {
		panic(fmt.Sprintf("metrics: unknown series column %q", col))
	}
	row, ok := s.rows[x]
	if !ok {
		row = make([]float64, len(s.cols))
		for j := range row {
			row[j] = nan
		}
		s.rows[x] = row
	}
	row[i] = v
}

// Mark attaches an event label at x (rendered as an extra annotation column),
// e.g. the paper's reconfiguration diamonds.
func (s *Series) Mark(x float64, label string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.marks[x] = append(s.marks[x], label)
}

// Columns returns the column names.
func (s *Series) Columns() []string {
	return append([]string(nil), s.cols...)
}

// Xs returns the sorted X values present.
func (s *Series) Xs() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	xs := make([]float64, 0, len(s.rows))
	for x := range s.rows {
		xs = append(xs, x)
	}
	for x := range s.marks {
		if _, ok := s.rows[x]; !ok {
			xs = append(xs, x)
		}
	}
	sort.Float64s(xs)
	return xs
}

// Get returns the value of col at x and whether it was recorded.
func (s *Series) Get(x float64, col string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.colIx[col]
	if !ok {
		return 0, false
	}
	row, ok := s.rows[x]
	if !ok || row[i] != row[i] { // NaN check
		return 0, false
	}
	return row[i], true
}

// Column returns all recorded (x, value) pairs of one column in X order.
func (s *Series) Column(col string) (xs, vals []float64) {
	for _, x := range s.Xs() {
		if v, ok := s.Get(x, col); ok {
			xs = append(xs, x)
			vals = append(vals, v)
		}
	}
	return xs, vals
}

// Marks returns the labels recorded at x.
func (s *Series) Marks(x float64) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.marks[x]...)
}

// Table renders the series as an aligned text table; missing cells print
// as "-". Every paper figure is emitted in this form.
func (s *Series) Table() string {
	xs := s.Xs()
	s.mu.Lock()
	defer s.mu.Unlock()

	header := append([]string{s.xName}, s.cols...)
	header = append(header, "events")
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		cells := make([]string, 0, len(header))
		cells = append(cells, trimFloat(x))
		row, ok := s.rows[x]
		for i := range s.cols {
			if !ok || row[i] != row[i] {
				cells = append(cells, "-")
			} else {
				cells = append(cells, trimFloat(row[i]))
			}
		}
		cells = append(cells, strings.Join(s.marks[x], ","))
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
		rows = append(rows, cells)
	}

	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

var nan = math.NaN()
