package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Second, 200)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count=%d", got)
	}
	mean := h.Mean()
	if mean < 45*time.Millisecond || mean > 56*time.Millisecond {
		t.Fatalf("Mean=%v, want ~50.5ms", mean)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("Max=%v", got)
	}
	if got := h.Min(); got != time.Millisecond {
		t.Fatalf("Min=%v", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Fatalf("P50=%v, want ~50ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Millisecond || p99 > 110*time.Millisecond {
		t.Fatalf("P99=%v, want ~99ms", p99)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second, 50)
	h.Observe(-5 * time.Millisecond) // below zero clamps to 0
	h.Observe(time.Microsecond)      // below min
	h.Observe(time.Minute)           // above max
	if got := h.Count(); got != 3 {
		t.Fatalf("Count=%d", got)
	}
	if got := h.Quantile(1.0); got > time.Minute {
		t.Fatalf("Quantile(1.0)=%v exceeds max seen", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second, 10)
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram stats not all zero")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second, 10)
	h.Observe(time.Millisecond * 10)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Second, 100)
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(1+i%500) * time.Millisecond)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %f (%v) < quantile before it (%v)", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramInvalidBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid bounds")
		}
	}()
	NewHistogram(time.Second, time.Millisecond, 10)
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i%100+1) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("Count=%d, want 8000", got)
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second, 16)
	h.Observe(5 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("snapshot count=%d", s.Count)
	}
	if str := s.String(); !strings.Contains(str, "n=1") {
		t.Fatalf("snapshot string %q", str)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 {
		t.Fatal("empty summary mean not 0")
	}
	for _, v := range []float64{3, -1, 7, 5} {
		s.Add(v)
	}
	if s.Count() != 4 {
		t.Fatalf("Count=%d", s.Count())
	}
	if s.Mean() != 3.5 {
		t.Fatalf("Mean=%f", s.Mean())
	}
	if s.Min() != -1 || s.Max() != 7 {
		t.Fatalf("Min=%f Max=%f", s.Min(), s.Max())
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {0.5, 30}, {1, 50}, {0.25, 20}, {0.75, 40}, {-1, 10}, {2, 50},
	}
	for _, tt := range tests {
		if got := Percentile(samples, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Fatalf("Percentile(%f)=%f, want %f", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("Percentile(nil)=%f", got)
	}
	// Must not mutate input.
	in := []float64{3, 1, 2}
	Percentile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Percentile sorted its input in place")
	}
}

func TestPercentileWithinRangeQuick(t *testing.T) {
	f := func(vals []float64, p float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 1)
		got := Percentile(clean, p)
		lo, hi := clean[0], clean[0]
		for _, v := range clean {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesRecordAndTable(t *testing.T) {
	s := NewSeries("t", "players", "latency")
	s.Record(0, "players", 120)
	s.Record(0, "latency", 0.075)
	s.Record(10, "players", 240)
	s.Mark(10, "rebalance")

	if v, ok := s.Get(0, "players"); !ok || v != 120 {
		t.Fatalf("Get(0,players)=%f,%t", v, ok)
	}
	if _, ok := s.Get(10, "latency"); ok {
		t.Fatal("missing cell reported present")
	}
	if _, ok := s.Get(0, "nope"); ok {
		t.Fatal("unknown column reported present")
	}

	xs := s.Xs()
	if len(xs) != 2 || xs[0] != 0 || xs[1] != 10 {
		t.Fatalf("Xs=%v", xs)
	}

	table := s.Table()
	for _, want := range []string{"players", "latency", "120", "240", "0.07", "rebalance", "-"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestSeriesColumn(t *testing.T) {
	s := NewSeries("x", "y")
	for i := 0; i < 5; i++ {
		s.Record(float64(i), "y", float64(i*i))
	}
	xs, vals := s.Column("y")
	if len(xs) != 5 || len(vals) != 5 {
		t.Fatalf("Column lengths %d/%d", len(xs), len(vals))
	}
	for i := range xs {
		if xs[i] != float64(i) || vals[i] != float64(i*i) {
			t.Fatalf("Column[%d]=(%f,%f)", i, xs[i], vals[i])
		}
	}
}

func TestSeriesUnknownColumnPanics(t *testing.T) {
	s := NewSeries("x", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("Record on unknown column did not panic")
		}
	}()
	s.Record(0, "b", 1)
}

func TestSeriesMarkOnlyRow(t *testing.T) {
	s := NewSeries("x", "a")
	s.Mark(42, "event")
	xs := s.Xs()
	if len(xs) != 1 || xs[0] != 42 {
		t.Fatalf("Xs=%v", xs)
	}
	if marks := s.Marks(42); len(marks) != 1 || marks[0] != "event" {
		t.Fatalf("Marks=%v", marks)
	}
	if !strings.Contains(s.Table(), "event") {
		t.Fatal("table missing mark-only row")
	}
}

func TestSeriesConcurrent(t *testing.T) {
	s := NewSeries("x", "a", "b")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			col := "a"
			if w%2 == 1 {
				col = "b"
			}
			for i := 0; i < 500; i++ {
				s.Record(float64(i), col, float64(w))
				s.Mark(float64(i%10), "m")
			}
		}(w)
	}
	wg.Wait()
	if got := len(s.Xs()); got != 500 {
		t.Fatalf("rows=%d, want 500", got)
	}
}
