// Package obs is Dynamoth's zero-dependency runtime observability layer: a
// Prometheus-text-format metric registry (counters, gauges, and a
// cumulative-bucket bridge for metrics.Histogram), a sampled top-K hot
// channel tracker, and an admin HTTP mux serving /metrics, /healthz,
// /statusz and /debug/pprof.
//
// The design rule is that the hot path pays nothing beyond what it already
// does: metrics are read-only views over the atomics and histograms the
// components maintain anyway (registration takes closures, not values), and
// all rendering work — formatting, bucket accumulation, quantile estimation —
// happens on scrape, never on publish.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/dynamoth/dynamoth/internal/metrics"
)

// Sample is one labeled value of a metric family with a single label
// dimension (e.g. per-server gauges).
type Sample struct {
	// Label is the value of the family's label for this sample.
	Label string
	// Value is the sample value.
	Value float64
}

// family is one registered metric family. Exactly one of the read funcs is
// set, matching kind.
type family struct {
	name, help, kind string
	label            string // label name for vec families

	counter func() uint64
	gauge   func() float64
	vec     func() []Sample
	hist    *metrics.Histogram
	quants  []float64   // rendered quantiles for hist families
	info    [][2]string // static label pairs for info families
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration order is preserved in the output.
// A Registry is safe for concurrent registration and rendering.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	seen map[string]struct{}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]struct{})}
}

// validName matches the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) add(f *family) {
	if !validName(f.name) {
		panic("obs: invalid metric name " + strconv.Quote(f.name))
	}
	if f.label != "" && !validName(f.label) {
		panic("obs: invalid label name " + strconv.Quote(f.label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.seen[f.name]; dup {
		panic("obs: duplicate metric " + f.name)
	}
	r.seen[f.name] = struct{}{}
	r.fams = append(r.fams, f)
}

// Counter registers a monotonically increasing counter read from fn on every
// scrape (typically an atomic.Uint64 Load).
func (r *Registry) Counter(name, help string, fn func() uint64) {
	r.add(&family{name: name, help: help, kind: "counter", counter: fn})
}

// Gauge registers a point-in-time value read from fn on every scrape.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: "gauge", gauge: fn})
}

// GaugeVec registers a gauge family with one label dimension; fn returns the
// current samples on every scrape (the set may change between scrapes, e.g.
// per-server utilization as the pool grows and shrinks).
func (r *Registry) GaugeVec(name, help, label string, fn func() []Sample) {
	r.add(&family{name: name, help: help, kind: "gauge", label: label, vec: fn})
}

// CounterVec registers a counter family with one label dimension; fn returns
// the current samples on every scrape. Sample values must be monotonically
// non-decreasing per label (e.g. per-cache eviction totals).
func (r *Registry) CounterVec(name, help, label string, fn func() []Sample) {
	r.add(&family{name: name, help: help, kind: "counter", label: label, vec: fn})
}

// Info registers a constant gauge with value 1 whose labels carry the
// interesting data — the Prometheus "info metric" idiom (build version,
// runtime, and similar identity facts). labels are (name, value) pairs
// rendered in the given order; label names must be valid, values are
// escaped.
func (r *Registry) Info(name, help string, labels ...[2]string) {
	for _, l := range labels {
		if !validName(l[0]) {
			panic("obs: invalid info label name " + strconv.Quote(l[0]))
		}
	}
	if len(labels) == 0 {
		labels = [][2]string{} // non-nil so render picks the info branch
	}
	r.add(&family{name: name, help: help, kind: "gauge", info: labels})
}

// Histogram registers h as a Prometheus histogram family (cumulative
// _bucket/_sum/_count series) plus a companion "<name>_quantile" gauge
// family exporting the given quantiles (e.g. 0.5, 0.99, 0.999) estimated by
// h.Quantile. Rendering walks the buckets only on scrape.
func (r *Registry) Histogram(name, help string, h *metrics.Histogram, quantiles ...float64) {
	r.add(&family{name: name, help: help, kind: "histogram", hist: h, quants: quantiles})
}

// Render writes the registry in Prometheus text exposition format.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.render(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// String renders the registry to a string (the scrape helpers' form).
func (r *Registry) String() string {
	var b strings.Builder
	_ = r.Render(&b)
	return b.String()
}

func (f *family) render(b *strings.Builder) {
	writeHeader(b, f.name, f.help, f.kind)
	switch {
	case f.info != nil:
		b.WriteString(f.name)
		if len(f.info) > 0 {
			b.WriteByte('{')
			for i, l := range f.info {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(l[0])
				b.WriteString(`="`)
				b.WriteString(escapeLabel(l[1]))
				b.WriteByte('"')
			}
			b.WriteByte('}')
		}
		b.WriteString(" 1\n")
	case f.counter != nil:
		writeSample(b, f.name, "", "", strconv.FormatUint(f.counter(), 10))
	case f.gauge != nil:
		writeSample(b, f.name, "", "", formatFloat(f.gauge()))
	case f.vec != nil:
		samples := f.vec()
		sort.Slice(samples, func(i, j int) bool { return samples[i].Label < samples[j].Label })
		for _, s := range samples {
			writeSample(b, f.name, f.label, s.Label, formatFloat(s.Value))
		}
	case f.hist != nil:
		count, sum := f.hist.Buckets(func(le float64, cum uint64) {
			writeSample(b, f.name+"_bucket", "le", formatFloat(le), strconv.FormatUint(cum, 10))
		})
		writeSample(b, f.name+"_sum", "", "", formatFloat(sum))
		writeSample(b, f.name+"_count", "", "", strconv.FormatUint(count, 10))
		if len(f.quants) > 0 {
			qname := f.name + "_quantile"
			writeHeader(b, qname, "Estimated quantiles of "+f.name+".", "gauge")
			for _, q := range f.quants {
				writeSample(b, qname, "quantile", formatFloat(q), formatFloat(f.hist.Quantile(q).Seconds()))
			}
		}
	}
}

func writeHeader(b *strings.Builder, name, help, kind string) {
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(help))
	b.WriteString("\n# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(kind)
	b.WriteByte('\n')
}

func writeSample(b *strings.Builder, name, label, labelValue, value string) {
	b.WriteString(name)
	if label != "" {
		b.WriteByte('{')
		b.WriteString(label)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labelValue))
		b.WriteString(`"}`)
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// formatFloat renders a float the way Prometheus expects, including +Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// ---------------------------------------------------------------------------
// Exposition validation (used by the scrape helpers and the CI job)

// ValidateExposition parses a Prometheus text exposition and returns the
// metric families it declares (family name → type). It fails on malformed
// lines: samples without a preceding TYPE declaration, bad label syntax,
// or unparsable values — the checks the obs CI job gates on.
func ValidateExposition(text string) (map[string]string, error) {
	fams := make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !validName(name) {
				return nil, fmt.Errorf("obs: line %d: bad HELP name %q", ln+1, name)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", ln+1, line)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("obs: line %d: unknown metric type %q", ln+1, kind)
			}
			if _, dup := fams[name]; dup {
				return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %q", ln+1, name)
			}
			fams[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		name, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", ln+1, err)
		}
		if !familyDeclared(fams, name) {
			return nil, fmt.Errorf("obs: line %d: sample %q has no TYPE declaration", ln+1, name)
		}
	}
	return fams, nil
}

// familyDeclared resolves a sample name to its family, accepting the
// histogram/summary suffixes.
func familyDeclared(fams map[string]string, name string) bool {
	if _, ok := fams[name]; ok {
		return true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if kind, ok := fams[base]; ok && (kind == "histogram" || kind == "summary") {
				return true
			}
		}
	}
	return false
}

// parseSampleLine validates `name{label="v",...} value [timestamp]` and
// returns the metric name.
func parseSampleLine(line string) (string, error) {
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end <= 0 {
		return "", fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:end]
	if !validName(name) {
		return "", fmt.Errorf("bad metric name %q", name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return "", fmt.Errorf("unterminated label set in %q", line)
		}
		if err := validateLabels(rest[1:close]); err != nil {
			return "", fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("expected value [timestamp] in %q", line)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return "", fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, nil
}

func validateLabels(s string) error {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq <= 0 || !validName(s[:eq]) {
			return fmt.Errorf("bad label name")
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		// Find the closing quote, honoring escapes.
		i := 1
		for ; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated label value")
		}
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("bad label separator")
			}
			s = s[1:]
		}
	}
	return nil
}
