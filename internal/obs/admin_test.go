package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestAdminMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("admin_test_total", "x.", func() uint64 { return 7 })
	status := func() any { return map[string]int{"sessions": 2} }
	srv := httptest.NewServer(NewAdminMux(reg, status))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "admin_test_total 7\n") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}
	if _, err := ValidateExposition(body); err != nil {
		t.Errorf("/metrics invalid: %v", err)
	}

	code, body, _ = get(t, srv, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body, _ = get(t, srv, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status = %d", code)
	}
	var doc map[string]int
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if doc["sessions"] != 2 {
		t.Fatalf("/statusz doc = %v", doc)
	}

	code, body, _ = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestAdminMuxNilStatus(t *testing.T) {
	srv := httptest.NewServer(NewAdminMux(NewRegistry(), nil))
	defer srv.Close()
	code, body, _ := get(t, srv, "/statusz")
	if code != http.StatusOK || strings.TrimSpace(body) != "{}" {
		t.Fatalf("/statusz with nil status = %d %q", code, body)
	}
}

func TestServePicksFreePort(t *testing.T) {
	srv, ln, err := Serve("127.0.0.1:0", NewAdminMux(NewRegistry(), nil))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}
