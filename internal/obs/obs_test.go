package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/metrics"
)

func TestRegistryRenderCounterGauge(t *testing.T) {
	r := NewRegistry()
	var pubs atomic.Uint64
	pubs.Store(42)
	r.Counter("test_published_total", "Publications.", pubs.Load)
	r.Gauge("test_sessions", "Sessions.", func() float64 { return 3 })

	out := r.String()
	for _, want := range []string{
		"# HELP test_published_total Publications.\n",
		"# TYPE test_published_total counter\n",
		"test_published_total 42\n",
		"# TYPE test_sessions gauge\n",
		"test_sessions 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := ValidateExposition(out); err != nil {
		t.Fatalf("own exposition invalid: %v", err)
	}
}

func TestRegistryGaugeVecSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("test_util", "Utilization.", "server", func() []Sample {
		return []Sample{
			{Label: "pub2", Value: 0.5},
			{Label: `pub"1`, Value: 0.25}, // quote must be escaped
		}
	})
	out := r.String()
	i1 := strings.Index(out, `test_util{server="pub\"1"} 0.25`)
	i2 := strings.Index(out, `test_util{server="pub2"} 0.5`)
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Fatalf("vec samples missing or unsorted:\n%s", out)
	}
	if _, err := ValidateExposition(out); err != nil {
		t.Fatalf("own exposition invalid: %v", err)
	}
}

func TestRegistryHistogramBridge(t *testing.T) {
	h := metrics.NewHistogram(time.Millisecond, time.Second, 20)
	for _, d := range []time.Duration{5 * time.Millisecond, 50 * time.Millisecond, 500 * time.Millisecond} {
		h.Observe(d)
	}
	r := NewRegistry()
	r.Histogram("test_latency_seconds", "Latency.", h, 0.5, 0.99)

	out := r.String()
	if !strings.Contains(out, "# TYPE test_latency_seconds histogram\n") {
		t.Fatalf("missing histogram TYPE:\n%s", out)
	}
	if !strings.Contains(out, `test_latency_seconds_bucket{le="+Inf"} 3`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "test_latency_seconds_count 3\n") {
		t.Errorf("missing _count:\n%s", out)
	}
	if !strings.Contains(out, `test_latency_seconds_quantile{quantile="0.99"}`) {
		t.Errorf("missing quantile gauge:\n%s", out)
	}
	fams, err := ValidateExposition(out)
	if err != nil {
		t.Fatalf("own exposition invalid: %v", err)
	}
	if fams["test_latency_seconds"] != "histogram" {
		t.Fatalf("family types = %v", fams)
	}

	// Cumulative buckets must be non-decreasing and end at the count.
	var last uint64
	count, _ := h.Buckets(func(_ float64, cum uint64) {
		if cum < last {
			t.Fatalf("cumulative bucket decreased: %d -> %d", last, cum)
		}
		last = cum
	})
	if last != count {
		t.Fatalf("last cumulative %d != count %d", last, count)
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "x.", func() uint64 { return 0 })
	mustPanic("duplicate", func() { r.Counter("dup_total", "x.", func() uint64 { return 0 }) })
	mustPanic("bad name", func() { r.Gauge("bad-name", "x.", func() float64 { return 0 }) })
	mustPanic("bad label", func() { r.GaugeVec("ok_name", "x.", "bad-label", func() []Sample { return nil }) })
}

func TestRegistryConcurrentRender(t *testing.T) {
	r := NewRegistry()
	var n atomic.Uint64
	r.Counter("race_total", "x.", n.Load)
	h := metrics.NewHistogram(time.Millisecond, time.Second, 10)
	r.Histogram("race_seconds", "x.", h, 0.5)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				n.Add(1)
				h.Observe(time.Millisecond)
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := ValidateExposition(r.String()); err != nil {
					t.Errorf("scrape %d invalid: %v", j, err)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":  "no_type_metric 1\n",
		"unknown type":         "# TYPE m wat\nm 1\n",
		"bad value":            "# TYPE m gauge\nm xyzzy\n",
		"unquoted label":       "# TYPE m gauge\nm{l=v} 1\n",
		"unterminated label":   "# TYPE m gauge\nm{l=\"v} 1\n",
		"bad metric name":      "# TYPE m gauge\n1m 1\n",
		"duplicate TYPE":       "# TYPE m gauge\n# TYPE m counter\nm 1\n",
		"histogram w/o family": "# TYPE m gauge\nother_bucket{le=\"1\"} 1\n",
	}
	for name, text := range cases {
		if _, err := ValidateExposition(text); err == nil {
			t.Errorf("%s: expected error for %q", name, text)
		}
	}
	// Histogram suffixes resolve to their declared family.
	ok := "# TYPE m histogram\nm_bucket{le=\"+Inf\"} 1\nm_sum 0.5\nm_count 1\n"
	if _, err := ValidateExposition(ok); err != nil {
		t.Errorf("valid histogram rejected: %v", err)
	}
}
