package obs

import (
	"strings"
	"testing"

	"github.com/dynamoth/dynamoth/internal/hotstate"
)

func TestRegisterCachesExposesFamilies(t *testing.T) {
	c := hotstate.New[string, int](hotstate.Config[string, int]{Capacity: 2, Shards: 1})
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3) // evicts one
	c.Get("a")
	c.Get("nope")

	r := NewRegistry()
	r.RegisterCaches("dynamoth_test",
		hotstate.NamedStats{Name: "routes", Stats: c.Stats},
		hotstate.NamedStats{Name: "windows", Stats: func() hotstate.Stats {
			return hotstate.Stats{Size: 7, Capacity: 100, Hits: 40}
		}},
	)
	out := r.String()
	fams, err := ValidateExposition(out)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for name, kind := range map[string]string{
		"dynamoth_test_hotstate_size":              "gauge",
		"dynamoth_test_hotstate_capacity":          "gauge",
		"dynamoth_test_hotstate_pinned":            "gauge",
		"dynamoth_test_hotstate_hits_total":        "counter",
		"dynamoth_test_hotstate_misses_total":      "counter",
		"dynamoth_test_hotstate_evictions_total":   "counter",
		"dynamoth_test_hotstate_expirations_total": "counter",
	} {
		if fams[name] != kind {
			t.Errorf("family %s: kind=%q, want %q", name, fams[name], kind)
		}
	}
	for _, want := range []string{
		`dynamoth_test_hotstate_size{cache="routes"} 2`,
		`dynamoth_test_hotstate_capacity{cache="routes"} 2`,
		`dynamoth_test_hotstate_evictions_total{cache="routes"} 1`,
		`dynamoth_test_hotstate_size{cache="windows"} 7`,
		`dynamoth_test_hotstate_hits_total{cache="windows"} 40`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing sample %q in:\n%s", want, out)
		}
	}
}
