package obs

import "github.com/dynamoth/dynamoth/internal/hotstate"

// RegisterCaches registers the standard metric families for a set of bounded
// hot-state caches under one prefix (e.g. "dynamoth_broker"):
//
//	<prefix>_hotstate_size{cache="..."}               gauge
//	<prefix>_hotstate_capacity{cache="..."}           gauge
//	<prefix>_hotstate_pinned{cache="..."}             gauge
//	<prefix>_hotstate_hits_total{cache="..."}         counter
//	<prefix>_hotstate_misses_total{cache="..."}       counter
//	<prefix>_hotstate_evictions_total{cache="..."}    counter
//	<prefix>_hotstate_expirations_total{cache="..."}  counter
//
// Stats funcs are read on every scrape — hotstate.Cache.Stats, or any
// compatible snapshot (the LLA accumulator's striped counters use the same
// shape). hotstate cannot register itself without importing obs; this is the
// cycle-free bridge.
func (r *Registry) RegisterCaches(prefix string, caches ...hotstate.NamedStats) {
	caches = append([]hotstate.NamedStats(nil), caches...)
	vec := func(read func(hotstate.Stats) float64) func() []Sample {
		return func() []Sample {
			samples := make([]Sample, 0, len(caches))
			for _, c := range caches {
				samples = append(samples, Sample{Label: c.Name, Value: read(c.Stats())})
			}
			return samples
		}
	}
	r.GaugeVec(prefix+"_hotstate_size", "Entries currently held per bounded hot-state cache.", "cache",
		vec(func(s hotstate.Stats) float64 { return float64(s.Size) }))
	r.GaugeVec(prefix+"_hotstate_capacity", "Configured entry bound per cache (0 = unbounded).", "cache",
		vec(func(s hotstate.Stats) float64 { return float64(s.Capacity) }))
	r.GaugeVec(prefix+"_hotstate_pinned", "Entries exempt from eviction per cache.", "cache",
		vec(func(s hotstate.Stats) float64 { return float64(s.Pinned) }))
	r.CounterVec(prefix+"_hotstate_hits_total", "Cache hits per bounded hot-state cache.", "cache",
		vec(func(s hotstate.Stats) float64 { return float64(s.Hits) }))
	r.CounterVec(prefix+"_hotstate_misses_total", "Cache misses per bounded hot-state cache.", "cache",
		vec(func(s hotstate.Stats) float64 { return float64(s.Misses) }))
	r.CounterVec(prefix+"_hotstate_evictions_total", "Capacity evictions (or cap-overflow folds) per cache.", "cache",
		vec(func(s hotstate.Stats) float64 { return float64(s.Evictions) }))
	r.CounterVec(prefix+"_hotstate_expirations_total", "TTL/sweep drops per cache.", "cache",
		vec(func(s hotstate.Stats) float64 { return float64(s.Expirations) }))
}
