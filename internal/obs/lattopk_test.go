package obs

import (
	"strings"
	"testing"
	"time"
)

func TestLatencyTopKRanksByContribution(t *testing.T) {
	lt := NewLatencyTopKWithCap(0, 0, nil) // unsampled: every observation counts

	// "hot" is moderately slow but very busy; "glacial" is very slow but
	// near-idle; "fast" is busy but quick. Contribution (p99 × count) must
	// rank hot first.
	for i := 0; i < 1000; i++ {
		lt.Observe("hot", 20*time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		lt.Observe("glacial", 2*time.Second)
	}
	for i := 0; i < 1000; i++ {
		lt.Observe("fast", 200*time.Microsecond)
	}

	top := lt.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) returned %d channels", len(top))
	}
	if top[0].Channel != "hot" {
		t.Fatalf("top channel = %q, want hot (got %+v)", top[0].Channel, top)
	}
	if top[0].Count != 1000 {
		t.Fatalf("hot count = %d, want 1000", top[0].Count)
	}
	// 20ms lands in the (16.4ms, 32.8ms] power-of-two bucket.
	if top[0].P99 < 0.02 || top[0].P99 > 0.04 {
		t.Fatalf("hot p99 = %v, want ~32ms bucket bound", top[0].P99)
	}
	for _, c := range top {
		if c.Channel == "glacial" && (c.P99 < 2 || c.P99 > 4.2) {
			t.Fatalf("glacial p99 = %v, want in [2s, 4.2s]", c.P99)
		}
	}
}

func TestLatencyTopKWindowed(t *testing.T) {
	lt := NewLatencyTopKWithCap(0, 0, nil)
	lt.Observe("a", time.Millisecond)
	if top := lt.Top(10); len(top) != 1 || top[0].Channel != "a" {
		t.Fatalf("first window = %+v, want [a]", top)
	}
	// Nothing new: the second window is empty and the idle channel is
	// forgotten.
	if top := lt.Top(10); len(top) != 0 {
		t.Fatalf("idle window = %+v, want empty", top)
	}
	// Re-observation after idle-drop starts a fresh entry.
	lt.Observe("a", time.Millisecond)
	if top := lt.Top(10); len(top) != 1 || top[0].Count != 1 {
		t.Fatalf("post-idle window = %+v, want [a count=1]", top)
	}
}

func TestLatencyTopKSampling(t *testing.T) {
	lt := NewLatencyTopKWithCap(2, 0, nil) // every 4th observation
	for i := 0; i < 400; i++ {
		lt.Observe("ch", time.Millisecond)
	}
	top := lt.Top(1)
	if len(top) != 1 {
		t.Fatalf("Top = %+v", top)
	}
	// 100 sampled observations scaled back by 4.
	if top[0].Count != 400 {
		t.Fatalf("sample-scaled count = %d, want 400", top[0].Count)
	}
}

func TestLatencyTopKZeroAllocObserve(t *testing.T) {
	lt := NewLatencyTopKWithCap(0, 0, nil)
	lt.Observe("warm", time.Millisecond)
	allocs := testing.AllocsPerRun(100, func() {
		lt.Observe("warm", 2*time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v allocs/op on a warm channel, want 0", allocs)
	}
}

func TestLatBucketBounds(t *testing.T) {
	cases := []struct {
		d   time.Duration
		min float64
	}{
		{0, 0},                // clamps to bucket 0
		{time.Microsecond, 0}, // bucket 0: upper bound 2µs
		{time.Millisecond, 0.001},
		{time.Hour, 100}, // clamps to the last bucket
	}
	for _, c := range cases {
		b := latBucket(c.d)
		if b < 0 || b >= latTopKBuckets {
			t.Fatalf("latBucket(%v) = %d out of range", c.d, b)
		}
		up := latBucketUpperSeconds(b)
		if up < c.min {
			t.Fatalf("latBucket(%v) upper bound %v < %v", c.d, up, c.min)
		}
		if c.d.Seconds() > up && b != latTopKBuckets-1 {
			t.Fatalf("latBucket(%v): %v above upper bound %v", c.d, c.d.Seconds(), up)
		}
	}
}

func TestRegistryInfo(t *testing.T) {
	r := NewRegistry()
	r.Info("dynamoth_build_info",
		"Build identity; value is always 1.",
		[2]string{"version", "v1.2.3-test"},
		[2]string{"go_version", "go1.22"},
	)
	out := r.String()
	want := `dynamoth_build_info{version="v1.2.3-test",go_version="go1.22"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("rendered exposition missing %q:\n%s", want, out)
	}
	if _, err := ValidateExposition(out); err != nil {
		t.Fatalf("info family fails exposition validation: %v", err)
	}
}

func TestRegistryInfoBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Info accepted an invalid label name")
		}
	}()
	NewRegistry().Info("x_info", "h", [2]string{"bad-label", "v"})
}
