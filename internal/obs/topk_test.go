package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTopKRanksHotChannels(t *testing.T) {
	now := time.Unix(0, 0)
	tk := NewTopK(0, func() time.Time { return now }) // shift 0: count everything

	for i := 0; i < 1000; i++ {
		tk.Record("hot")
	}
	for i := 0; i < 100; i++ {
		tk.Record("warm")
	}
	tk.Record("cold")

	now = now.Add(time.Second)
	top := tk.Top(2)
	if len(top) != 2 {
		t.Fatalf("top = %+v, want 2 entries", top)
	}
	if top[0].Channel != "hot" || top[1].Channel != "warm" {
		t.Fatalf("order = %+v", top)
	}
	if top[0].Rate < 999 || top[0].Rate > 1001 {
		t.Fatalf("hot rate = %v, want ~1000/s", top[0].Rate)
	}
}

func TestTopKSamplingScalesRates(t *testing.T) {
	now := time.Unix(0, 0)
	tk := NewTopK(4, func() time.Time { return now }) // every 16th
	for i := 0; i < 1600; i++ {
		tk.Record("ch")
	}
	now = now.Add(time.Second)
	top := tk.Top(1)
	if len(top) != 1 {
		t.Fatalf("top = %+v", top)
	}
	// 1600 publishes sampled 1/16 → 100 counted → scaled back to 1600/s.
	if top[0].Rate != 1600 {
		t.Fatalf("rate = %v, want 1600", top[0].Rate)
	}
}

func TestTopKDropsIdleChannels(t *testing.T) {
	now := time.Unix(0, 0)
	tk := NewTopK(0, func() time.Time { return now })
	tk.Record("once")
	now = now.Add(time.Second)
	if top := tk.Top(10); len(top) != 1 {
		t.Fatalf("first window top = %+v", top)
	}
	// Idle for a full window: evicted, not reported at rate 0.
	now = now.Add(time.Second)
	if top := tk.Top(10); len(top) != 0 {
		t.Fatalf("idle channel still reported: %+v", top)
	}
}

func TestTopKConcurrent(t *testing.T) {
	tk := NewTopK(-1, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ch := fmt.Sprintf("ch%d", g%4)
			for i := 0; i < 10000; i++ {
				tk.Record(ch)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tk.Top(3)
		}
	}()
	wg.Wait()
	<-done
}
