package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTopKRanksHotChannels(t *testing.T) {
	now := time.Unix(0, 0)
	tk := NewTopK(0, func() time.Time { return now }) // shift 0: count everything

	for i := 0; i < 1000; i++ {
		tk.Record("hot")
	}
	for i := 0; i < 100; i++ {
		tk.Record("warm")
	}
	tk.Record("cold")

	now = now.Add(time.Second)
	top := tk.Top(2)
	if len(top) != 2 {
		t.Fatalf("top = %+v, want 2 entries", top)
	}
	if top[0].Channel != "hot" || top[1].Channel != "warm" {
		t.Fatalf("order = %+v", top)
	}
	if top[0].Rate < 999 || top[0].Rate > 1001 {
		t.Fatalf("hot rate = %v, want ~1000/s", top[0].Rate)
	}
}

func TestTopKSamplingScalesRates(t *testing.T) {
	now := time.Unix(0, 0)
	tk := NewTopK(4, func() time.Time { return now }) // every 16th
	for i := 0; i < 1600; i++ {
		tk.Record("ch")
	}
	now = now.Add(time.Second)
	top := tk.Top(1)
	if len(top) != 1 {
		t.Fatalf("top = %+v", top)
	}
	// 1600 publishes sampled 1/16 → 100 counted → scaled back to 1600/s.
	if top[0].Rate != 1600 {
		t.Fatalf("rate = %v, want 1600", top[0].Rate)
	}
}

func TestTopKDropsIdleChannels(t *testing.T) {
	now := time.Unix(0, 0)
	tk := NewTopK(0, func() time.Time { return now })
	tk.Record("once")
	now = now.Add(time.Second)
	if top := tk.Top(10); len(top) != 1 {
		t.Fatalf("first window top = %+v", top)
	}
	// Idle for a full window: evicted, not reported at rate 0.
	now = now.Add(time.Second)
	if top := tk.Top(10); len(top) != 0 {
		t.Fatalf("idle channel still reported: %+v", top)
	}
}

func TestTopKCapBoundsChannelSet(t *testing.T) {
	now := time.Unix(0, 0)
	tk := NewTopKWithCap(0, 64, func() time.Time { return now })
	for i := 0; i < 100_000; i++ {
		tk.Record(fmt.Sprintf("dev-%d", i))
	}
	st := tk.CacheStats()
	if st.Size > 64 {
		t.Fatalf("tracked channels=%d exceed cap 64", st.Size)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under cap pressure")
	}
	now = now.Add(time.Second)
	if top := tk.Top(1000); len(top) > 64 {
		t.Fatalf("top returned %d channels", len(top))
	}
}

func TestTopKHotChannelSurvivesColdFlood(t *testing.T) {
	now := time.Unix(0, 0)
	tk := NewTopKWithCap(0, 64, func() time.Time { return now })
	// Interleave a hot channel with a cold flood: CLOCK keeps the hot one.
	for i := 0; i < 10_000; i++ {
		tk.Record("hot")
		tk.Record(fmt.Sprintf("cold-%d", i))
	}
	now = now.Add(time.Second)
	top := tk.Top(1)
	if len(top) != 1 || top[0].Channel != "hot" {
		t.Fatalf("hot channel lost to cold flood: %+v", top)
	}
}

func TestTopKEvictedChannelDeltaUnderflowGuard(t *testing.T) {
	// A channel scraped at a high count, then evicted and re-created, has
	// cum < prev. The delta must clamp to the new cum, not wrap around.
	now := time.Unix(0, 0)
	tk := NewTopKWithCap(0, 16, func() time.Time { return now }) // 1 slot/shard
	for i := 0; i < 1000; i++ {
		tk.Record("victim")
	}
	now = now.Add(time.Second)
	tk.Top(100) // snapshot victim at 1000
	for i := 0; i < 1000; i++ {
		tk.Record(fmt.Sprintf("flood-%d", i)) // evict victim
	}
	tk.Record("victim") // re-created with count 1
	now = now.Add(time.Second)
	for _, cr := range tk.Top(1000) {
		if cr.Rate < 0 || cr.Rate > 1e12 {
			t.Fatalf("underflowed rate for %s: %v", cr.Channel, cr.Rate)
		}
	}
}

func TestTopKConcurrent(t *testing.T) {
	tk := NewTopK(-1, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ch := fmt.Sprintf("ch%d", g%4)
			for i := 0; i < 10000; i++ {
				tk.Record(ch)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tk.Top(3)
		}
	}()
	wg.Wait()
	<-done
}

// BenchmarkTopKScrape gates the satellite requirement: a steady-state scrape
// (stable channel set, reused destination slice) performs zero allocations —
// no fresh snapshot map per Top call.
func BenchmarkTopKScrape(b *testing.B) {
	now := time.Unix(0, 0)
	tk := NewTopK(0, func() time.Time { return now })
	channels := make([]string, 256)
	for i := range channels {
		channels[i] = fmt.Sprintf("ch-%d", i)
	}
	dst := make([]ChannelRate, 0, 256)
	record := func() {
		for _, ch := range channels {
			tk.Record(ch)
		}
	}
	record()
	now = now.Add(time.Second)
	dst = tk.TopInto(16, dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		record() // keep every channel active so none are dropped as idle
		now = now.Add(time.Second)
		dst = tk.TopInto(16, dst[:0])
	}
}

func BenchmarkTopKRecordHit(b *testing.B) {
	tk := NewTopK(0, nil)
	tk.Record("ch")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk.Record("ch")
	}
}
