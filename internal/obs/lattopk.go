package obs

import (
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/hotstate"
)

// latTopKBuckets is the per-channel histogram resolution: power-of-two
// microsecond buckets, bucket i covering (2^i, 2^(i+1)] µs. 28 buckets span
// 1µs to ~4.5min — coarse (factor-2) quantiles, but per-channel state stays
// at 28 counters, which is what lets the tracker hold thousands of channels.
const latTopKBuckets = 28

// DefaultLatencyTopKCap bounds the distinct channels the latency tracker
// holds. Smaller than DefaultTopKCap because each entry carries a full
// bucket array rather than one counter.
const DefaultLatencyTopKCap = 4096

// latHist is one channel's compact latency histogram. All counters are
// cumulative; the scrape computes per-window deltas.
type latHist struct {
	counts [latTopKBuckets]atomic.Uint64
}

// latBucket maps a latency to its power-of-two bucket index.
func latBucket(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= latTopKBuckets {
		b = latTopKBuckets - 1
	}
	return b
}

// latBucketUpperSeconds is bucket i's upper bound in seconds — the quantile
// estimate reported for observations landing in it.
func latBucketUpperSeconds(i int) float64 {
	return float64(uint64(1)<<uint(i+1)) / 1e6
}

// ChannelLatency is one channel's delivery-latency summary over the scrape
// window, ranked by Contribution.
type ChannelLatency struct {
	Channel string  `json:"channel"`
	Count   uint64  `json:"count"` // observations in the window (sample-scaled)
	P99     float64 `json:"p99Seconds"`
	// Contribution is P99 × Count: the tail-latency mass the channel adds to
	// the node, which ranks a moderately slow hot channel above a glacially
	// slow idle one.
	Contribution float64 `json:"contribution"`
}

// LatencyTopK tracks the slowest channels by p99 contribution with sampled,
// capacity-bounded per-channel histograms — the latency sibling of TopK.
// Observe is safe on the fan-out hot path: one atomic add plus, on the
// sampled subset, a sharded cache hit and one bucket increment.
type LatencyTopK struct {
	shift uint64
	n     atomic.Uint64
	hists *hotstate.Cache[string, *latHist]

	snapMu      sync.Mutex
	prev, cur   map[string][latTopKBuckets]uint64
	idleScratch []string
	lastTime    time.Time
	now         func() time.Time
}

// NewLatencyTopK creates a tracker sampling every 2^sampleShift-th
// observation (DefaultSampleShift when negative), holding at most
// DefaultLatencyTopKCap channels. now supplies time for rate windows
// (nil = wall clock).
func NewLatencyTopK(sampleShift int, now func() time.Time) *LatencyTopK {
	return NewLatencyTopKWithCap(sampleShift, DefaultLatencyTopKCap, now)
}

// NewLatencyTopKWithCap is NewLatencyTopK with an explicit channel bound
// (<=0 = unbounded).
func NewLatencyTopKWithCap(sampleShift, cap int, now func() time.Time) *LatencyTopK {
	if sampleShift < 0 {
		sampleShift = DefaultSampleShift
	}
	if now == nil {
		now = time.Now
	}
	t := &LatencyTopK{
		shift: uint64(sampleShift),
		now:   now,
		hists: hotstate.New[string, *latHist](hotstate.Config[string, *latHist]{
			Capacity: cap,
		}),
		prev: make(map[string][latTopKBuckets]uint64),
		cur:  make(map[string][latTopKBuckets]uint64),
	}
	t.lastTime = now()
	return t
}

// Observe notes one delivery latency on channel (sampled).
func (t *LatencyTopK) Observe(channel string, d time.Duration) {
	n := t.n.Add(1)
	if n&(1<<t.shift-1) != 0 {
		return
	}
	b := latBucket(d)
	if h, ok := t.hists.Get(channel); ok {
		h.counts[b].Add(1)
		return
	}
	h := new(latHist)
	t.hists.Upsert(channel, func(old *latHist, exists bool) (*latHist, bool) {
		if exists {
			h = old
			return old, false
		}
		return h, true
	})
	h.counts[b].Add(1)
}

// Top returns up to k channels ordered by p99 contribution since the
// previous scrape. See TopInto.
func (t *LatencyTopK) Top(k int) []ChannelLatency { return t.TopInto(k, nil) }

// TopInto is Top reusing dst's capacity for the result. Counts are measured
// since the previous Top/TopInto call and scaled back up by the sampling
// factor; channels idle for a full window are dropped from the tracker.
func (t *LatencyTopK) TopInto(k int, dst []ChannelLatency) []ChannelLatency {
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	scale := float64(uint64(1) << t.shift)
	out := dst[:0]
	clear(t.cur)
	idle := t.idleScratch[:0]
	t.hists.Range(func(ch string, h *latHist) bool {
		var cum [latTopKBuckets]uint64
		for i := range cum {
			cum[i] = h.counts[i].Load()
		}
		last, seen := t.prev[ch]
		var total uint64
		var delta [latTopKBuckets]uint64
		restarted := false
		for i := range cum {
			if cum[i] < last[i] {
				// Evicted and re-created since the last scrape: counters
				// restarted, the whole count is this window's.
				restarted = true
				break
			}
		}
		for i := range cum {
			d := cum[i]
			if !restarted {
				d -= last[i]
			}
			delta[i] = d
			total += d
		}
		if total == 0 && seen {
			idle = append(idle, ch)
			return true
		}
		t.cur[ch] = cum
		if total == 0 {
			return true
		}
		// p99 = upper bound of the bucket holding the 99th-percentile
		// observation of this window.
		target := (total*99 + 99) / 100
		var cumCount uint64
		p99 := latBucketUpperSeconds(latTopKBuckets - 1)
		for i, d := range delta {
			cumCount += d
			if cumCount >= target {
				p99 = latBucketUpperSeconds(i)
				break
			}
		}
		count := uint64(float64(total) * scale)
		out = append(out, ChannelLatency{
			Channel:      ch,
			Count:        count,
			P99:          p99,
			Contribution: p99 * float64(count),
		})
		return true
	})
	for _, ch := range idle {
		t.hists.Delete(ch)
	}
	t.idleScratch = idle[:0]
	t.prev, t.cur = t.cur, t.prev
	t.lastTime = t.now()
	slices.SortFunc(out, func(a, b ChannelLatency) int {
		switch {
		case a.Contribution > b.Contribution:
			return -1
		case a.Contribution < b.Contribution:
			return 1
		case a.Channel < b.Channel:
			return -1
		case a.Channel > b.Channel:
			return 1
		}
		return 0
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// CacheStats snapshots the channel-cache counters for metric export.
func (t *LatencyTopK) CacheStats() hotstate.Stats { return t.hists.Stats() }
