package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSampleShift makes the tracker count every 16th publication: a
// compromise between rate fidelity on hot channels (the ones top-K exists to
// surface) and per-publish cost on the fan-out path.
const DefaultSampleShift = 4

// TopK tracks the hottest channels by publish rate with sampled counting.
// Record is safe on the publish hot path: it is one atomic add plus, on the
// sampled subset, one lock-free sync.Map lookup and counter increment — no
// allocation once a channel has been seen, no locking ever.
//
// It implements the broker Observer shape (OnPublish/OnSubscribe/
// OnUnsubscribe) so it can be attached with broker.AddObserver without obs
// importing broker.
type TopK struct {
	shift uint64 // count every 2^shift-th publication
	n     atomic.Uint64
	// counts maps channel → *atomic.Uint64 sampled publication count.
	counts sync.Map

	// snapMu guards the previous snapshot used to turn cumulative counts
	// into rates between consecutive Top calls.
	snapMu   sync.Mutex
	lastSnap map[string]uint64
	lastTime time.Time
	now      func() time.Time
}

// NewTopK creates a tracker sampling every 2^sampleShift-th publication
// (DefaultSampleShift when negative). now supplies time for rate windows
// (nil = wall clock).
func NewTopK(sampleShift int, now func() time.Time) *TopK {
	if sampleShift < 0 {
		sampleShift = DefaultSampleShift
	}
	if now == nil {
		now = time.Now
	}
	t := &TopK{shift: uint64(sampleShift), now: now, lastSnap: make(map[string]uint64)}
	t.lastTime = now()
	return t
}

// Record notes one publication on channel (sampled).
func (t *TopK) Record(channel string) {
	n := t.n.Add(1)
	if n&(1<<t.shift-1) != 0 {
		return
	}
	if c, ok := t.counts.Load(channel); ok {
		c.(*atomic.Uint64).Add(1)
		return
	}
	c, _ := t.counts.LoadOrStore(channel, new(atomic.Uint64))
	c.(*atomic.Uint64).Add(1)
}

// OnPublish implements the broker observer hook.
func (t *TopK) OnPublish(channel string, _ []byte, _ int) { t.Record(channel) }

// OnSubscribe implements the broker observer hook (ignored).
func (t *TopK) OnSubscribe(string, string, int) {}

// OnUnsubscribe implements the broker observer hook (ignored).
func (t *TopK) OnUnsubscribe(string, string, int) {}

// ChannelRate is one channel's estimated publish rate.
type ChannelRate struct {
	Channel string  `json:"channel"`
	Rate    float64 `json:"publishesPerSec"` // estimated publications/second
}

// Top returns up to k channels ordered by publish rate since the previous
// Top call (rate since tracker start on the first call). Sampled counts are
// scaled back up by the sampling factor. Channels idle for a full window are
// dropped from the tracker so a long top-K scrape loop cannot grow without
// bound.
func (t *TopK) Top(k int) []ChannelRate {
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	now := t.now()
	elapsed := now.Sub(t.lastTime).Seconds()
	if elapsed <= 0 {
		elapsed = 1
	}
	scale := float64(uint64(1) << t.shift)
	next := make(map[string]uint64)
	var rates []ChannelRate
	t.counts.Range(func(key, val any) bool {
		ch := key.(string)
		cum := val.(*atomic.Uint64).Load()
		next[ch] = cum
		delta := cum - t.lastSnap[ch]
		if delta == 0 {
			// Idle for the whole window: forget the channel. A publication
			// racing this delete just re-creates the entry.
			t.counts.Delete(ch)
			delete(next, ch)
			return true
		}
		rates = append(rates, ChannelRate{Channel: ch, Rate: float64(delta) * scale / elapsed})
		return true
	})
	t.lastSnap = next
	t.lastTime = now
	sort.Slice(rates, func(i, j int) bool {
		if rates[i].Rate != rates[j].Rate {
			return rates[i].Rate > rates[j].Rate
		}
		return rates[i].Channel < rates[j].Channel
	})
	if len(rates) > k {
		rates = rates[:k]
	}
	return rates
}
