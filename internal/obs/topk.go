package obs

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/hotstate"
)

// DefaultSampleShift makes the tracker count every 16th publication: a
// compromise between rate fidelity on hot channels (the ones top-K exists to
// surface) and per-publish cost on the fan-out path.
const DefaultSampleShift = 4

// DefaultTopKCap bounds the distinct channels the tracker holds between
// scrapes. CLOCK eviction keeps the hot ones — exactly the set top-K exists
// to surface — so the cap costs accuracy only on channels too cold to rank.
const DefaultTopKCap = 16384

// TopK tracks the hottest channels by publish rate with sampled counting.
// Record is safe on the publish hot path: it is one atomic add plus, on the
// sampled subset (every 2^shift-th publication), one sharded cache hit and
// counter increment — no allocation once a channel has been seen.
//
// The channel set is capacity-bounded: at IoT-style channel cardinality cold
// channels are evicted (and idle channels dropped every scrape), so the
// tracker holds O(cap) state regardless of namespace size.
//
// It implements the broker Observer shape (OnPublish/OnSubscribe/
// OnUnsubscribe) so it can be attached with broker.AddObserver without obs
// importing broker.
type TopK struct {
	shift uint64 // count every 2^shift-th publication
	n     atomic.Uint64
	// counts maps channel → sampled cumulative publication count.
	counts *hotstate.Cache[string, *atomic.Uint64]

	// snapMu guards the snapshot state used to turn cumulative counts into
	// rates between consecutive Top calls. prev holds the previous scrape's
	// cumulative counts; cur is the scratch map the current scrape fills.
	// Both are reused (cleared, never reallocated) so a steady-state scrape
	// performs zero map allocations.
	snapMu      sync.Mutex
	prev, cur   map[string]uint64
	idleScratch []string
	lastTime    time.Time
	now         func() time.Time
}

// NewTopK creates a tracker sampling every 2^sampleShift-th publication
// (DefaultSampleShift when negative) holding at most DefaultTopKCap channels.
// now supplies time for rate windows (nil = wall clock).
func NewTopK(sampleShift int, now func() time.Time) *TopK {
	return NewTopKWithCap(sampleShift, DefaultTopKCap, now)
}

// NewTopKWithCap is NewTopK with an explicit channel bound (<=0 = unbounded).
func NewTopKWithCap(sampleShift, cap int, now func() time.Time) *TopK {
	if sampleShift < 0 {
		sampleShift = DefaultSampleShift
	}
	if now == nil {
		now = time.Now
	}
	t := &TopK{
		shift: uint64(sampleShift),
		now:   now,
		counts: hotstate.New[string, *atomic.Uint64](hotstate.Config[string, *atomic.Uint64]{
			Capacity: cap,
		}),
		prev: make(map[string]uint64),
		cur:  make(map[string]uint64),
	}
	t.lastTime = now()
	return t
}

// Record notes one publication on channel (sampled).
func (t *TopK) Record(channel string) {
	n := t.n.Add(1)
	if n&(1<<t.shift-1) != 0 {
		return
	}
	if c, ok := t.counts.Get(channel); ok {
		c.Add(1)
		return
	}
	c := new(atomic.Uint64)
	t.counts.Upsert(channel, func(old *atomic.Uint64, exists bool) (*atomic.Uint64, bool) {
		if exists {
			c = old
			return old, false
		}
		return c, true
	})
	c.Add(1)
}

// OnPublish implements the broker observer hook.
func (t *TopK) OnPublish(channel string, _ []byte, _ int) { t.Record(channel) }

// OnSubscribe implements the broker observer hook (ignored).
func (t *TopK) OnSubscribe(string, string, int) {}

// OnUnsubscribe implements the broker observer hook (ignored).
func (t *TopK) OnUnsubscribe(string, string, int) {}

// ChannelRate is one channel's estimated publish rate.
type ChannelRate struct {
	Channel string  `json:"channel"`
	Rate    float64 `json:"publishesPerSec"` // estimated publications/second
}

// Top returns up to k channels ordered by publish rate since the previous
// scrape. See TopInto.
func (t *TopK) Top(k int) []ChannelRate { return t.TopInto(k, nil) }

// TopInto is Top reusing dst's capacity for the result — the allocation-free
// form for periodic scrape loops. Rates are measured since the previous
// Top/TopInto call (since tracker start on the first). Sampled counts are
// scaled back up by the sampling factor. Channels idle for a full window are
// dropped from the tracker so a long scrape loop cannot grow it even toward
// the cap.
func (t *TopK) TopInto(k int, dst []ChannelRate) []ChannelRate {
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	now := t.now()
	elapsed := now.Sub(t.lastTime).Seconds()
	if elapsed <= 0 {
		elapsed = 1
	}
	scale := float64(uint64(1) << t.shift)
	rates := dst[:0]
	clear(t.cur)
	idle := t.idleScratch[:0]
	t.counts.Range(func(ch string, c *atomic.Uint64) bool {
		cum := c.Load()
		last, seen := t.prev[ch]
		if cum < last {
			// The channel was evicted and re-created since the last scrape:
			// its counter restarted, so the full count is this window's.
			last = 0
		}
		delta := cum - last
		if delta == 0 && seen {
			// Idle for the whole window: forget the channel. Deletion is
			// deferred — Range holds the shard lock. A publication racing
			// the delete just re-creates the entry.
			idle = append(idle, ch)
			return true
		}
		t.cur[ch] = cum
		if delta > 0 {
			rates = append(rates, ChannelRate{Channel: ch, Rate: float64(delta) * scale / elapsed})
		}
		return true
	})
	for _, ch := range idle {
		t.counts.Delete(ch)
	}
	t.idleScratch = idle[:0]
	t.prev, t.cur = t.cur, t.prev
	t.lastTime = now
	slices.SortFunc(rates, func(a, b ChannelRate) int {
		switch {
		case a.Rate > b.Rate:
			return -1
		case a.Rate < b.Rate:
			return 1
		case a.Channel < b.Channel:
			return -1
		case a.Channel > b.Channel:
			return 1
		}
		return 0
	})
	if len(rates) > k {
		rates = rates[:k]
	}
	return rates
}

// CacheStats snapshots the channel-cache counters for metric export.
func (t *TopK) CacheStats() hotstate.Stats { return t.counts.Stats() }
