package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Route is an extra admin endpoint mounted by NewAdminMux (e.g. the flight
// recorder's /debug/events and /debug/rebalances).
type Route struct {
	Pattern string
	Handler http.Handler
}

// NewAdminMux builds the node/balancer admin HTTP handler:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       "ok" (200) once the process serves traffic
//	/statusz       JSON from status (plan version, counts, hot channels, …)
//	/debug/pprof/  the standard Go profiling endpoints
//
// status may be nil (/statusz then serves {}). Extra routes are mounted
// verbatim after the built-ins. The handlers hold no state of their own;
// everything renders on request.
func NewAdminMux(reg *Registry, status func() any, extra ...Route) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Render(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var v any = struct{}{}
		if status != nil {
			v = status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// Explicit pprof routes: importing net/http/pprof only for its handler
	// funcs keeps the DefaultServeMux untouched.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}
	return mux
}

// JSONHandler serves the value fn returns as indented JSON on every request
// (the shape /statusz uses, for extra document-style admin routes like
// /debug/latency).
func JSONHandler(fn func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fn()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Serve listens on addr and serves the admin mux in a background goroutine.
// It returns the bound listener (addr ":0" picks a free port — read
// ln.Addr()) and the server for shutdown. Serving errors after Close are
// swallowed; the admin plane must never take the data plane down.
func Serve(addr string, mux *http.ServeMux) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln, nil
}
