package dispatcher

import (
	"sync"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/plan"
)

// twoNodeCluster wires two brokers with dispatchers that can forward to each
// other directly.
type twoNodeCluster struct {
	brokers     map[plan.ServerID]*broker.Broker
	dispatchers map[plan.ServerID]*Dispatcher
}

func newTwoNodeCluster(t *testing.T, initial *plan.Plan) *twoNodeCluster {
	t.Helper()
	c := &twoNodeCluster{
		brokers:     make(map[plan.ServerID]*broker.Broker),
		dispatchers: make(map[plan.ServerID]*Dispatcher),
	}
	for _, s := range []plan.ServerID{"s1", "s2"} {
		c.brokers[s] = broker.New(broker.Options{Name: s})
	}
	fwd := ForwarderFunc(func(server plan.ServerID, channel string, payload []byte) error {
		c.brokers[server].Publish(channel, payload)
		return nil
	})
	for i, s := range []plan.ServerID{"s1", "s2"} {
		d, err := New(Options{
			Self:      s,
			Node:      uint32(1000 + i),
			Initial:   initial.Clone(),
			Broker:    c.brokers[s],
			Forwarder: fwd,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.dispatchers[s] = d
	}
	t.Cleanup(func() {
		for _, d := range c.dispatchers {
			d.Close()
		}
		for _, b := range c.brokers {
			b.Close()
		}
	})
	return c
}

// testClient is a minimal envelope-aware subscriber.
type testClient struct {
	mu      sync.Mutex
	got     []*message.Envelope
	arrived chan struct{}
}

func newTestClient() *testClient {
	return &testClient{arrived: make(chan struct{}, 64)}
}

func (c *testClient) Deliver(channel string, payload []byte) {
	env, err := message.Unmarshal(payload)
	if err != nil {
		return
	}
	// Copy the payload since it may alias a shared buffer.
	env.Payload = append([]byte(nil), env.Payload...)
	c.mu.Lock()
	c.got = append(c.got, env)
	c.mu.Unlock()
	select {
	case c.arrived <- struct{}{}:
	default:
	}
}

func (c *testClient) Closed(error) {}

func (c *testClient) waitFor(t *testing.T, match func(*message.Envelope) bool) *message.Envelope {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		c.mu.Lock()
		for _, env := range c.got {
			if match(env) {
				c.mu.Unlock()
				return env
			}
		}
		c.mu.Unlock()
		select {
		case <-c.arrived:
		case <-deadline:
			t.Fatal("timed out waiting for matching envelope")
		}
	}
}

func TestLiveMigrationDeliversEverywhereAndSwitches(t *testing.T) {
	initial := plan.New("s1", "s2")
	initial.Version = 1
	initial.Set("c", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"s1"}})
	cluster := newTwoNodeCluster(t, initial)

	// A subscriber still on the old server s1.
	lagging := newTestClient()
	lagSess, err := cluster.brokers["s1"].Connect("lagging", lagging)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lagSess.Subscribe("c"); err != nil {
		t.Fatal(err)
	}

	// Move the channel to s2 on both dispatchers.
	next := initial.Clone()
	next.Version = 2
	next.Set("c", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"s2"}})
	for _, d := range cluster.dispatchers {
		d.ApplyPlan(next.Clone())
	}

	// An up-to-date subscriber on the new server s2.
	fresh := newTestClient()
	freshSess, err := cluster.brokers["s2"].Connect("fresh", fresh)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := freshSess.Subscribe("c"); err != nil {
		t.Fatal(err)
	}

	// Case 1 (Fig 3a): publish on the OLD server.
	env1 := &message.Envelope{Type: message.TypeData, ID: message.ID{Node: 7, Seq: 1}, Channel: "c", Payload: []byte("m1")}
	cluster.brokers["s1"].Publish("c", env1.Marshal())

	// The lagging subscriber gets the original and a switch notification.
	lagging.waitFor(t, func(e *message.Envelope) bool {
		return e.Type == message.TypeData && e.ID.Seq == 1
	})
	sw := lagging.waitFor(t, func(e *message.Envelope) bool { return e.Type == message.TypeSwitch })
	if len(sw.Servers) != 1 || sw.Servers[0] != "s2" {
		t.Fatalf("switch points at %v", sw.Servers)
	}
	// The fresh subscriber on s2 receives the forwarded copy.
	fresh.waitFor(t, func(e *message.Envelope) bool {
		return e.Type == message.TypeForwarded && e.ID == (message.ID{Node: 7, Seq: 1})
	})

	// Case 2 (Fig 3b): publish on the NEW server; lagging subscriber on s1
	// must still receive it via new→old forwarding.
	env2 := &message.Envelope{Type: message.TypeData, ID: message.ID{Node: 7, Seq: 2}, Channel: "c", Payload: []byte("m2")}
	cluster.brokers["s2"].Publish("c", env2.Marshal())
	fresh.waitFor(t, func(e *message.Envelope) bool {
		return e.Type == message.TypeData && e.ID.Seq == 2
	})
	lagging.waitFor(t, func(e *message.Envelope) bool {
		return e.Type == message.TypeForwarded && e.ID == (message.ID{Node: 7, Seq: 2})
	})

	// The lagging subscriber now moves (as its client library would).
	if _, err := lagSess.Unsubscribe("c"); err != nil {
		t.Fatal(err)
	}
	// After the drain notification propagates, publications on s2 are no
	// longer forwarded to s1 — verify via the s1 broker's publish counter
	// settling.
	deadline := time.Now().Add(2 * time.Second)
	for {
		before := cluster.brokers["s1"].Stats().Published
		env := &message.Envelope{Type: message.TypeData, ID: message.ID{Node: 7, Seq: 99}, Channel: "c", Payload: []byte("x")}
		cluster.brokers["s2"].Publish("c", env.Marshal())
		time.Sleep(20 * time.Millisecond)
		if cluster.brokers["s1"].Stats().Published == before {
			break // no forwarding happened
		}
		if time.Now().After(deadline) {
			t.Fatal("s2 kept forwarding to s1 after drain")
		}
	}
}

func TestLivePlanDistributionOverPubSub(t *testing.T) {
	initial := plan.New("s1", "s2")
	initial.Version = 1
	cluster := newTwoNodeCluster(t, initial)

	next := initial.Clone()
	next.Version = 7
	next.Set("c", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"s2"}})
	data, err := next.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env := &message.Envelope{Type: message.TypePlan, ID: message.ID{Node: 1, Seq: 1}, Payload: data}
	cluster.brokers["s1"].Publish(plan.PlanChannel, env.Marshal())

	deadline := time.Now().Add(2 * time.Second)
	for cluster.dispatchers["s1"].Plan().Version != 7 {
		if time.Now().After(deadline) {
			t.Fatal("plan not applied from pub/sub")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLiveWrongSubscribeTriggersSwitch(t *testing.T) {
	initial := plan.New("s1", "s2")
	initial.Version = 1
	initial.Set("c", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"s2"}})
	cluster := newTwoNodeCluster(t, initial)

	// Client subscribes on the wrong server.
	confused := newTestClient()
	sess, err := cluster.brokers["s1"].Connect("confused", confused)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Subscribe("c"); err != nil {
		t.Fatal(err)
	}
	sw := confused.waitFor(t, func(e *message.Envelope) bool { return e.Type == message.TypeSwitch })
	if sw.Servers[0] != "s2" {
		t.Fatalf("switch points at %v", sw.Servers)
	}
}
