package dispatcher

import (
	"log/slog"
	"sync"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/trace"
)

// Forwarder publishes a payload on a channel of a remote pub/sub server.
// The live cluster implements it with broker client connections; over TCP it
// is a RESP client pool.
type Forwarder interface {
	ForwardPublish(server plan.ServerID, channel string, payload []byte) error
}

// ForwarderFunc adapts a function to the Forwarder interface.
type ForwarderFunc func(server plan.ServerID, channel string, payload []byte) error

// ForwardPublish implements Forwarder.
func (f ForwarderFunc) ForwardPublish(server plan.ServerID, channel string, payload []byte) error {
	return f(server, channel, payload)
}

// Dispatcher is the live reconfiguration agent for one node: a broker
// observer that drives a Core and executes its actions against the local
// broker and the Forwarder. It also listens on its dispatch control channel
// for drain notifications and on the plan channel for new plans.
type Dispatcher struct {
	localBroker *broker.Broker
	fwd         Forwarder
	clk         clock.Clock
	self        plan.ServerID
	rec         *trace.Recorder
	log         *slog.Logger

	mu   sync.Mutex
	core *Core

	session *broker.Session
	ticker  clock.Ticker
	stop    chan struct{}
	done    chan struct{}
}

var _ broker.Observer = (*Dispatcher)(nil)

// Options configures a live Dispatcher.
type Options struct {
	// Self is this node's server ID.
	Self plan.ServerID
	// Node is this node's numeric ID for control envelopes.
	Node uint32
	// Initial is the bootstrap plan.
	Initial *plan.Plan
	// Broker is the local pub/sub server.
	Broker *broker.Broker
	// Forwarder reaches the other pub/sub servers.
	Forwarder Forwarder
	// Clock provides time (default real).
	Clock clock.Clock
	// DrainTimeout bounds transition lifetime (default 30s).
	DrainTimeout time.Duration
	// Recorder receives reconfiguration events (plan applies, SWITCH sends,
	// drains). Nil records nothing; the publish hot path is untouched either
	// way — only control actions are recorded.
	Recorder *trace.Recorder
	// Logger receives structured dispatcher logs. Nil discards.
	Logger *slog.Logger
}

// New creates and starts a dispatcher: it registers as a broker observer and
// subscribes to its control channels. Call Close to stop it.
func New(opts Options) (*Dispatcher, error) {
	if opts.Clock == nil {
		opts.Clock = clock.NewReal()
	}
	d := &Dispatcher{
		localBroker: opts.Broker,
		fwd:         opts.Forwarder,
		clk:         opts.Clock,
		self:        opts.Self,
		rec:         opts.Recorder,
		log:         trace.Component(opts.Logger, "dispatcher"),
		core:        NewCore(opts.Self, opts.Node, opts.Initial, opts.DrainTimeout),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		ticker:      opts.Clock.NewTicker(5 * time.Second),
	}
	session, err := opts.Broker.Connect("dispatcher:"+opts.Self, controlSink{d})
	if err != nil {
		return nil, err
	}
	d.session = session
	if _, err := session.Subscribe(plan.DispatchChannel(opts.Self), plan.PlanChannel); err != nil {
		session.Close()
		return nil, err
	}
	opts.Broker.AddObserver(d)
	go d.run()
	return d, nil
}

// Plan returns the dispatcher's current plan.
func (d *Dispatcher) Plan() *plan.Plan {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.core.Plan()
}

// ApplyPlan installs a new plan directly (used by in-process clusters where
// the load balancer hands plans over function calls; the pub/sub path via
// PlanChannel does the same for distributed deployments).
func (d *Dispatcher) ApplyPlan(p *plan.Plan) {
	d.mu.Lock()
	actions := d.core.OnPlan(p, d.clk.Now())
	d.mu.Unlock()
	d.rec.Record(trace.KindPlanApply, p.Version, d.self, "", 0, int64(len(actions)))
	d.log.Info("plan applied", slog.Uint64("plan", p.Version), slog.Int("actions", len(actions)))
	d.execute(actions)
}

// Close stops the dispatcher. The broker observer registration remains (the
// broker has no removal), but a closed dispatcher ignores events.
func (d *Dispatcher) Close() {
	select {
	case <-d.stop:
		return
	default:
		close(d.stop)
	}
	d.session.Close()
	<-d.done
}

func (d *Dispatcher) run() {
	defer close(d.done)
	defer d.ticker.Stop()
	for {
		select {
		case <-d.ticker.C():
			d.mu.Lock()
			d.core.OnTick(d.clk.Now())
			d.mu.Unlock()
		case <-d.stop:
			return
		}
	}
}

func (d *Dispatcher) closed() bool {
	select {
	case <-d.stop:
		return true
	default:
		return false
	}
}

// OnPublish implements broker.Observer.
func (d *Dispatcher) OnPublish(channel string, payload []byte, receivers int) {
	if d.closed() {
		return
	}
	env, err := message.Unmarshal(payload)
	if err != nil {
		return // not Dynamoth traffic (raw Redis client); nothing to manage
	}
	d.mu.Lock()
	actions := d.core.OnLocalPublish(channel, env, receivers, d.clk.Now())
	d.mu.Unlock()
	d.execute(actions)
}

// OnSubscribe implements broker.Observer.
func (d *Dispatcher) OnSubscribe(channel, session string, subscribers int) {
	if d.closed() || isOwnSession(session) {
		return
	}
	d.mu.Lock()
	actions := d.core.OnLocalSubscribe(channel, subscribers, d.clk.Now())
	d.mu.Unlock()
	d.execute(actions)
}

// OnUnsubscribe implements broker.Observer.
func (d *Dispatcher) OnUnsubscribe(channel, session string, subscribers int) {
	if d.closed() || isOwnSession(session) {
		return
	}
	d.mu.Lock()
	actions := d.core.OnLocalUnsubscribe(channel, subscribers)
	d.mu.Unlock()
	d.execute(actions)
}

// isOwnSession filters the dispatcher's own control subscriptions out of the
// event stream.
func isOwnSession(session string) bool {
	return len(session) >= 11 && session[:11] == "dispatcher:"
}

func (d *Dispatcher) execute(actions []Action) {
	for _, a := range actions {
		// Record the control-plane actions only: SWITCH notifications and
		// drain handoffs. Forwarded data publications stay untouched — they
		// are the hot path.
		switch a.Env.Type {
		case message.TypeSwitch:
			d.rec.Record(trace.KindSwitchSend, a.Env.PlanVersion, a.Channel, "", 0, int64(len(a.Env.Servers)))
		case message.TypeDrained:
			// Value carries the old holder's replay ring head at handoff:
			// the timeline can tell how much of the drained channel's tail
			// stayed replayable for cursors that resume against it.
			var head int64
			if _, h, ok := d.localBroker.ReplayHead(a.Channel); ok {
				head = int64(h)
			}
			d.rec.Record(trace.KindDrained, a.Env.PlanVersion, a.Channel, "", head, 0)
		}
		payload := a.Env.Marshal()
		switch a.Kind {
		case ActionPublishLocal:
			d.localBroker.Publish(a.Channel, payload)
		case ActionForward:
			if d.fwd != nil {
				// Forwarding failures are tolerated: the drain timeout and
				// client plan timers bound the inconsistency window, and
				// the next publication retries implicitly.
				_ = d.fwd.ForwardPublish(a.Server, a.Channel, payload)
			}
		}
	}
}

// controlSink receives the dispatcher's own control subscriptions
// (drain notifications and plan broadcasts).
type controlSink struct{ d *Dispatcher }

// Deliver implements broker.Sink.
func (s controlSink) Deliver(channel string, payload []byte) {
	d := s.d
	if d.closed() {
		return
	}
	env, err := message.Unmarshal(payload)
	if err != nil {
		return
	}
	switch {
	case channel == plan.PlanChannel && env.Type == message.TypePlan:
		p, err := plan.Unmarshal(env.Payload)
		if err != nil {
			return
		}
		d.ApplyPlan(p)
	case env.Type == message.TypeDrained && len(env.Servers) == 1:
		d.mu.Lock()
		d.core.OnDrained(env.Channel, env.Servers[0])
		d.mu.Unlock()
	}
}

// Closed implements broker.Sink.
func (controlSink) Closed(error) {}
