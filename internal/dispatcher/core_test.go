package dispatcher

import (
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/plan"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func dataEnv(node uint32, seq uint64, channel string) *message.Envelope {
	return &message.Envelope{
		Type:    message.TypeData,
		ID:      message.ID{Node: node, Seq: seq},
		Channel: channel,
		Payload: []byte("payload"),
	}
}

// planV2 builds a v2 plan moving channel from s1 to s2 on a two-server base.
func planV2(channel string) (*plan.Plan, *plan.Plan) {
	p1 := plan.New("s1", "s2")
	p1.Version = 1
	p1.Set(channel, plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"s1"}})
	p2 := p1.Clone()
	p2.Version = 2
	p2.Set(channel, plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"s2"}})
	return p1, p2
}

func find(actions []Action, kind ActionKind, envType message.Type) []Action {
	var out []Action
	for _, a := range actions {
		if a.Kind == kind && a.Env.Type == envType {
			out = append(out, a)
		}
	}
	return out
}

func TestCorrectServerNoActions(t *testing.T) {
	p1, _ := planV2("c")
	core := NewCore("s1", 100, p1, 0)
	env := dataEnv(7, 1, "c")
	env.PlanVersion = p1.Version // publisher is up to date
	actions := core.OnLocalPublish("c", env, 3, epoch)
	if len(actions) != 0 {
		t.Fatalf("actions on correct server: %+v", actions)
	}
	// A publisher with a stale entry for an explicitly mapped channel gets
	// the mapping re-announced exactly once (lazy propagation).
	staleActions := core.OnLocalPublish("c", dataEnv(7, 2, "c"), 3, epoch)
	if len(find(staleActions, ActionPublishLocal, message.TypeSwitch)) != 1 {
		t.Fatalf("stale publication not announced: %+v", staleActions)
	}
	again := core.OnLocalPublish("c", dataEnv(7, 3, "c"), 3, epoch)
	if len(again) != 0 {
		t.Fatalf("stale announcement repeated: %+v", again)
	}
}

func TestOldServerEmitsSwitchForwardsAndRedirects(t *testing.T) {
	// §IV-A2 Figure 3a: publication arrives at the old server s1 after the
	// channel moved to s2.
	p1, p2 := planV2("c")
	core := NewCore("s1", 100, p1, 0)
	core.OnPlan(p2, epoch)

	actions := core.OnLocalPublish("c", dataEnv(7, 1, "c"), 2, epoch)

	// 1. Switch notification to local subscribers.
	switches := find(actions, ActionPublishLocal, message.TypeSwitch)
	if len(switches) != 1 {
		t.Fatalf("switch actions: %+v", actions)
	}
	sw := switches[0]
	if sw.Channel != "c" || len(sw.Env.Servers) != 1 || sw.Env.Servers[0] != "s2" {
		t.Fatalf("switch content: %+v", sw.Env)
	}
	if sw.Env.PlanVersion != 2 {
		t.Fatalf("switch plan version=%d", sw.Env.PlanVersion)
	}

	// 2. The publication is forwarded to the new server.
	fwds := find(actions, ActionForward, message.TypeForwarded)
	if len(fwds) != 1 || fwds[0].Server != "s2" || fwds[0].Channel != "c" {
		t.Fatalf("forward actions: %+v", actions)
	}
	if fwds[0].Env.ID != (message.ID{Node: 7, Seq: 1}) {
		t.Fatalf("forwarded envelope lost original ID: %+v", fwds[0].Env)
	}

	// 3. The publisher is redirected.
	redirects := find(actions, ActionForward, message.TypeWrongServer)
	redirects = append(redirects, find(actions, ActionPublishLocal, message.TypeWrongServer)...)
	if len(redirects) != 1 {
		t.Fatalf("redirect actions: %+v", actions)
	}
	if redirects[0].Channel != plan.InboxChannel(7) {
		t.Fatalf("redirect channel=%q", redirects[0].Channel)
	}
}

func TestSwitchEmittedOncePerPlanVersion(t *testing.T) {
	p1, p2 := planV2("c")
	core := NewCore("s1", 100, p1, 0)
	core.OnPlan(p2, epoch)

	first := core.OnLocalPublish("c", dataEnv(7, 1, "c"), 2, epoch)
	second := core.OnLocalPublish("c", dataEnv(7, 2, "c"), 2, epoch)
	if len(find(first, ActionPublishLocal, message.TypeSwitch)) != 1 {
		t.Fatalf("first publish: %+v", first)
	}
	if len(find(second, ActionPublishLocal, message.TypeSwitch)) != 0 {
		t.Fatalf("second publish re-emitted switch: %+v", second)
	}
	// Forwarding continues for every publication.
	if len(find(second, ActionForward, message.TypeForwarded)) != 1 {
		t.Fatalf("second publish not forwarded: %+v", second)
	}
}

func TestNoSwitchWithoutLocalSubscribers(t *testing.T) {
	p1, p2 := planV2("c")
	core := NewCore("s1", 100, p1, 0)
	core.OnPlan(p2, epoch)
	actions := core.OnLocalPublish("c", dataEnv(7, 1, "c"), 0, epoch)
	if len(find(actions, ActionPublishLocal, message.TypeSwitch)) != 0 {
		t.Fatalf("switch without subscribers: %+v", actions)
	}
	// Forward and redirect still happen.
	if len(find(actions, ActionForward, message.TypeForwarded)) != 1 {
		t.Fatalf("missing forward: %+v", actions)
	}
}

func TestNewServerForwardsBackWhileOldDrains(t *testing.T) {
	// §IV-A3 Figure 3b: publication arrives at the new (correct) server s2;
	// it must be forwarded back to s1 until s1 drains.
	p1, p2 := planV2("c")
	core := NewCore("s2", 200, p1, 0)
	core.OnPlan(p2, epoch)

	actions := core.OnLocalPublish("c", dataEnv(7, 1, "c"), 1, epoch)
	fwds := find(actions, ActionForward, message.TypeForwarded)
	if len(fwds) != 1 || fwds[0].Server != "s1" {
		t.Fatalf("no forward-back to draining old server: %+v", actions)
	}

	// Drain notification stops the forwarding.
	core.OnDrained("c", "s1")
	actions = core.OnLocalPublish("c", dataEnv(7, 2, "c"), 1, epoch)
	if len(actions) != 0 {
		t.Fatalf("forwarding continued after drain: %+v", actions)
	}
	if core.TransitionCount() != 0 {
		t.Fatalf("transition not cleaned up: %d", core.TransitionCount())
	}
}

func TestForwardedMessagesNeverReforwarded(t *testing.T) {
	p1, p2 := planV2("c")
	core := NewCore("s2", 200, p1, 0)
	core.OnPlan(p2, epoch)
	fwd := &message.Envelope{Type: message.TypeForwarded, ID: message.ID{Node: 7, Seq: 1}, Channel: "c"}
	actions := core.OnLocalPublish("c", fwd, 1, epoch)
	if len(find(actions, ActionForward, message.TypeForwarded)) != 0 {
		t.Fatalf("forwarded message re-forwarded (loop!): %+v", actions)
	}
}

func TestOldServerDrainNotification(t *testing.T) {
	p1, p2 := planV2("c")
	core := NewCore("s1", 100, p1, 0)
	core.OnPlan(p2, epoch)

	// Subscribers remain: no drain.
	if actions := core.OnLocalUnsubscribe("c", 3); len(actions) != 0 {
		t.Fatalf("drain with remaining subscribers: %+v", actions)
	}
	// Last subscriber leaves: drained notification to s2's dispatcher.
	actions := core.OnLocalUnsubscribe("c", 0)
	drains := find(actions, ActionForward, message.TypeDrained)
	if len(drains) != 1 || drains[0].Server != "s2" {
		t.Fatalf("drain actions: %+v", actions)
	}
	if drains[0].Channel != plan.DispatchChannel("s2") {
		t.Fatalf("drain channel=%q", drains[0].Channel)
	}
	if drains[0].Env.Servers[0] != "s1" {
		t.Fatalf("drain origin=%v", drains[0].Env.Servers)
	}
	// Only once.
	if actions := core.OnLocalUnsubscribe("c", 0); len(actions) != 0 {
		t.Fatalf("second drain: %+v", actions)
	}
}

func TestWrongSubscribeGetsImmediateSwitch(t *testing.T) {
	p1, p2 := planV2("c")
	core := NewCore("s1", 100, p1, 0)
	core.OnPlan(p2, epoch)
	actions := core.OnLocalSubscribe("c", 1, epoch)
	if len(find(actions, ActionPublishLocal, message.TypeSwitch)) != 1 {
		t.Fatalf("wrong subscribe not redirected: %+v", actions)
	}
	// Subscribing to a channel we do hold: silence.
	p3 := core.Plan().Clone()
	p3.Version = 3
	p3.Set("mine", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"s1"}})
	core.OnPlan(p3, epoch)
	if actions := core.OnLocalSubscribe("mine", 1, epoch); len(actions) != 0 {
		t.Fatalf("switch for correctly-placed subscribe: %+v", actions)
	}
}

func TestMisrouteWithoutTransition(t *testing.T) {
	// A client publishes using a stale/bootstrap mapping to a server that
	// never held the channel ("Initialization" case of §IV).
	p := plan.New("s1", "s2")
	p.Version = 5
	p.Set("c", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"s2"}})
	core := NewCore("s1", 100, plan.New("s1", "s2"), 0)
	core.OnPlan(p, epoch)

	actions := core.OnLocalPublish("c", dataEnv(9, 1, "c"), 0, epoch)
	if len(find(actions, ActionForward, message.TypeForwarded)) != 1 {
		t.Fatalf("misroute not forwarded: %+v", actions)
	}
	wrongs := append(find(actions, ActionForward, message.TypeWrongServer),
		find(actions, ActionPublishLocal, message.TypeWrongServer)...)
	if len(wrongs) != 1 {
		t.Fatalf("misroute publisher not redirected: %+v", actions)
	}
}

func TestReplicatedChannelForwardTargets(t *testing.T) {
	// A wrongly-routed publication on an all-publishers channel must reach
	// every replica (each replica serves a disjoint subscriber set).
	base := plan.New("s1", "s2", "s3")
	p := base.Clone()
	p.Version = 2
	p.Set("hot", plan.Entry{Strategy: plan.StrategyAllPublishers, Servers: []plan.ServerID{"s2", "s3"}})
	core := NewCore("s1", 100, base, 0)
	core.OnPlan(p, epoch)

	actions := core.OnLocalPublish("hot", dataEnv(9, 1, "hot"), 0, epoch)
	fwds := find(actions, ActionForward, message.TypeForwarded)
	if len(fwds) != 2 {
		t.Fatalf("all-publishers forwards: %+v", actions)
	}
	targets := map[plan.ServerID]bool{}
	for _, f := range fwds {
		targets[f.Server] = true
	}
	if !targets["s2"] || !targets["s3"] {
		t.Fatalf("targets=%v", targets)
	}
}

func TestTransitionExpiryOnTick(t *testing.T) {
	p1, p2 := planV2("c")
	core := NewCore("s2", 200, p1, 10*time.Second)
	core.OnPlan(p2, epoch)
	if core.TransitionCount() != 1 {
		t.Fatalf("transitions=%d", core.TransitionCount())
	}
	core.OnTick(epoch.Add(5 * time.Second))
	if core.TransitionCount() != 1 {
		t.Fatal("transition expired early")
	}
	core.OnTick(epoch.Add(11 * time.Second))
	if core.TransitionCount() != 0 {
		t.Fatal("transition not expired")
	}
	// After expiry, no more forwarding back (a one-time switch
	// re-announcement for the stale publisher is still allowed).
	actions := core.OnLocalPublish("c", dataEnv(7, 1, "c"), 1, epoch.Add(12*time.Second))
	if len(find(actions, ActionForward, message.TypeForwarded)) != 0 {
		t.Fatalf("forwarding after expiry: %+v", actions)
	}
}

func TestStalePlanIgnored(t *testing.T) {
	p1, p2 := planV2("c")
	core := NewCore("s1", 100, p2, 0)
	core.OnPlan(p1, epoch) // older version
	if core.Plan().Version != 2 {
		t.Fatalf("stale plan applied: v%d", core.Plan().Version)
	}
}

func TestControlChannelsIgnored(t *testing.T) {
	p1, p2 := planV2("c")
	core := NewCore("s1", 100, p1, 0)
	core.OnPlan(p2, epoch)
	env := dataEnv(7, 1, plan.PlanChannel)
	if actions := core.OnLocalPublish(plan.PlanChannel, env, 5, epoch); len(actions) != 0 {
		t.Fatalf("control publish produced actions: %+v", actions)
	}
	if actions := core.OnLocalSubscribe(plan.DispatchChannel("s9"), 1, epoch); len(actions) != 0 {
		t.Fatalf("control subscribe produced actions: %+v", actions)
	}
}

func TestSwitchNotSentToOwnPublications(t *testing.T) {
	// Publications originated by this dispatcher (node ID matches) must not
	// trigger a self-redirect.
	p1, p2 := planV2("c")
	core := NewCore("s1", 100, p1, 0)
	core.OnPlan(p2, epoch)
	env := dataEnv(100, 1, "c") // node 100 == core's own node
	actions := core.OnLocalPublish("c", env, 0, epoch)
	redirects := append(find(actions, ActionForward, message.TypeWrongServer),
		find(actions, ActionPublishLocal, message.TypeWrongServer)...)
	if len(redirects) != 0 {
		t.Fatalf("self-redirect: %+v", actions)
	}
}

func TestReplicaMembershipChangeOpensTransition(t *testing.T) {
	// A replica set shrink: the removed member drains like a single-channel
	// old server (forward-back until its subscribers leave).
	base := plan.New("s1", "s2", "s3")
	p1 := base.Clone()
	p1.Version = 2
	p1.Set("hot", plan.Entry{Strategy: plan.StrategyAllPublishers, Servers: []plan.ServerID{"s1", "s2", "s3"}})
	p2 := p1.Clone()
	p2.Version = 3
	p2.Set("hot", plan.Entry{Strategy: plan.StrategyAllPublishers, Servers: []plan.ServerID{"s1", "s2"}})

	// The surviving member s1 forwards to the removed member s3 while it
	// drains.
	survivor := NewCore("s1", 100, p1.Clone(), 0)
	survivor.OnPlan(p2.Clone(), epoch)
	env := dataEnv(7, 1, "hot")
	env.PlanVersion = 3
	actions := survivor.OnLocalPublish("hot", env, 4, epoch)
	fwds := find(actions, ActionForward, message.TypeForwarded)
	if len(fwds) != 1 || fwds[0].Server != "s3" {
		t.Fatalf("survivor forwarding: %+v", actions)
	}

	// The removed member s3 owes a drain notification when its last local
	// subscriber leaves, addressed to the remaining replicas.
	removed := NewCore("s3", 300, p1.Clone(), 0)
	removed.OnPlan(p2.Clone(), epoch)
	drains := find(removed.OnLocalUnsubscribe("hot", 0), ActionForward, message.TypeDrained)
	if len(drains) != 2 {
		t.Fatalf("drain notifications: %+v", drains)
	}
	targets := map[plan.ServerID]bool{}
	for _, d := range drains {
		targets[d.Server] = true
	}
	if !targets["s1"] || !targets["s2"] {
		t.Fatalf("drain targets: %v", targets)
	}
}

func TestSwitchCarriesRingServers(t *testing.T) {
	p1, p2 := planV2("c")
	core := NewCore("s1", 100, p1, 0)
	core.OnPlan(p2, epoch)
	actions := core.OnLocalSubscribe("c", 1, epoch)
	sw := find(actions, ActionPublishLocal, message.TypeSwitch)
	if len(sw) != 1 {
		t.Fatalf("actions: %+v", actions)
	}
	if len(sw[0].Env.RingServers) != 2 {
		t.Fatalf("switch ring servers: %v", sw[0].Env.RingServers)
	}
}
