// Package dispatcher implements the reconfiguration engine of the paper
// (§IV): the per-node agent that makes plan changes invisible to clients by
// forwarding publications between the old and new servers of a migrated
// channel, emitting <switch> notifications to lagging subscribers, and
// redirecting publishers that used an outdated server.
//
// The decision logic lives in Core, a pure state machine fed with local
// broker events (publications, subscriptions, plan updates, drain
// notifications, ticks) that returns the actions to perform. The live
// Dispatcher in this package and the discrete-event simulator both drive a
// Core, so reconfiguration behaves identically in both modes.
package dispatcher

import (
	"sort"
	"time"

	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/plan"
)

// ActionKind discriminates dispatcher actions.
type ActionKind uint8

// Action kinds.
const (
	// ActionPublishLocal publishes Env on Channel on the local broker
	// (switch notifications to local subscribers).
	ActionPublishLocal ActionKind = iota + 1
	// ActionForward publishes Env on Channel on the remote Server
	// (publication forwarding during reconfiguration, drain and redirect
	// notifications).
	ActionForward
)

// Action is one side effect requested by the Core.
type Action struct {
	Kind    ActionKind
	Server  plan.ServerID // ActionForward: destination server
	Channel string
	Env     *message.Envelope
}

// DefaultDrainTimeout bounds how long a transition (and its forwarding) can
// live; it mirrors the client-side plan entry timeout of §IV-A5, after which
// no client can still hold the outdated mapping.
const DefaultDrainTimeout = 30 * time.Second

// transition tracks one channel that changed holders in a recent plan.
type transition struct {
	version uint64
	// draining maps each old server that may still have subscribers to
	// whether we're awaiting its drain notification.
	draining map[plan.ServerID]struct{}
	// selfOld marks that this node was a holder in the old plan but is not
	// in the new one (we owe the new holders a Drained notification).
	selfOld  bool
	deadline time.Time
}

// Core is the dispatcher decision engine for one node.
type Core struct {
	self         plan.ServerID
	node         uint32 // numeric node ID for envelope origins
	gen          *message.Generator
	plan         *plan.Plan
	transitions  map[string]*transition
	drainTimeout time.Duration
	// switchSent remembers, per channel, the highest plan version a switch
	// notification was already published locally for, and switchAt the last
	// emission time. Together they rate-limit re-announcements: the first
	// stale publication or misplaced subscription after a plan change
	// triggers a switch immediately (§IV-A2), later ones at most once per
	// SwitchReannounce — without this, N clients subscribing to a wrong or
	// replicated channel would broadcast N switches to up to N subscribers
	// each (an O(N²) flood).
	switchSent map[string]uint64
	switchAt   map[string]time.Time
}

// SwitchReannounce is the minimum interval between repeated switch
// notifications for one channel within one plan version.
const SwitchReannounce = time.Second

// NewCore creates a dispatcher core for server self with the given numeric
// node ID (used to stamp control envelopes) and initial plan.
func NewCore(self plan.ServerID, node uint32, initial *plan.Plan, drainTimeout time.Duration) *Core {
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	return &Core{
		self:         self,
		node:         node,
		gen:          message.NewGenerator(node),
		plan:         initial,
		transitions:  make(map[string]*transition),
		drainTimeout: drainTimeout,
		switchSent:   make(map[string]uint64),
		switchAt:     make(map[string]time.Time),
	}
}

// Plan returns the core's current plan.
func (c *Core) Plan() *plan.Plan { return c.plan }

// Self returns the server this core runs on.
func (c *Core) Self() plan.ServerID { return c.self }

// OnPlan installs a new plan and opens transitions for every channel whose
// holder set changed and involves this node (§IV-A1: the dispatchers of both
// the old and the new server subscribe to the channel — in this
// implementation, start intercepting it). now is used for drain deadlines.
// Stale plans (version <= current) are ignored.
func (c *Core) OnPlan(p *plan.Plan, now time.Time) []Action {
	if p.Version <= c.plan.Version {
		return nil
	}
	changes := p.Diff(c.plan)
	old := c.plan
	c.plan = p
	var actions []Action
	for _, ch := range changes {
		if plan.IsControlChannel(ch.Channel) {
			continue
		}
		oldSet := serverSet(ch.Old.Servers)
		newSet := serverSet(ch.New.Servers)
		_, selfWasOld := oldSet[c.self]
		_, selfIsNew := newSet[c.self]
		if !selfWasOld && !selfIsNew {
			continue
		}
		tr := &transition{
			version:  p.Version,
			draining: make(map[plan.ServerID]struct{}),
			deadline: now.Add(c.drainTimeout),
			selfOld:  selfWasOld && !selfIsNew,
		}
		for s := range oldSet {
			if _, stays := newSet[s]; !stays && s != c.self {
				tr.draining[s] = struct{}{}
			}
		}
		c.transitions[ch.Channel] = tr
	}
	_ = old
	return actions
}

// OnLocalPublish reacts to a publication observed on the local broker.
// localSubs is the channel's local subscriber count at delivery time.
func (c *Core) OnLocalPublish(channel string, env *message.Envelope, localSubs int, now time.Time) []Action {
	if plan.IsControlChannel(channel) {
		return nil
	}
	if env.Type != message.TypeData && env.Type != message.TypeForwarded {
		return nil // our own switch messages and other control traffic
	}
	entry, explicit := c.plan.Lookup(channel)
	selfIn := containsServer(entry.Servers, c.self)
	tr := c.transitions[channel]
	// A data publication carrying an older plan version than ours came
	// from a client that has not yet learned the channel's current
	// mapping (clients stamp publications with their entry's version).
	stale := env.Type == message.TypeData && explicit && env.PlanVersion < c.plan.Version

	var actions []Action

	if selfIn {
		if env.Type == message.TypeData && tr != nil && len(tr.draining) > 0 {
			// Correct server during a transition (§IV-A3, Fig 3b):
			// forward to old servers that still drain, so their lagging
			// subscribers miss nothing. Deterministic order for the
			// simulator's sake.
			fwd := forwardedCopy(env, channel)
			targets := make([]plan.ServerID, 0, len(tr.draining))
			for s := range tr.draining {
				targets = append(targets, s)
			}
			sort.Strings(targets)
			for _, s := range targets {
				actions = append(actions, Action{Kind: ActionForward, Server: s, Channel: channel, Env: fwd})
			}
		}
		if stale {
			// Lazy propagation to clients that still use an outdated
			// entry for a channel this server (still) holds — in
			// particular, replication coming into effect (§III-B1).
			if localSubs > 0 && c.switchAllowed(channel, now) {
				actions = append(actions, c.switchAction(channel, entry))
				c.markSwitch(channel, now)
			}
			if len(entry.Servers) > 1 {
				// The publisher does not know the replica set yet.
				if entry.Strategy == plan.StrategyAllPublishers {
					// Its publication must reach every replica (each one
					// serves a disjoint subscriber subset).
					fwd := forwardedCopy(env, channel)
					for _, s := range entry.Servers {
						if s != c.self {
							actions = append(actions, Action{Kind: ActionForward, Server: s, Channel: channel, Env: fwd})
						}
					}
				}
				if env.ID.Node != 0 && env.ID.Node != c.node {
					actions = append(actions, c.redirectAction(env.ID.Node, channel, entry))
				}
			}
		}
		return actions
	}

	// Wrong server: either we are the draining old holder (§IV-A2, Fig 3a)
	// or the publisher used a stale/bootstrap mapping ("Initialization").
	if localSubs > 0 && c.switchAllowed(channel, now) {
		actions = append(actions, c.switchAction(channel, entry))
		c.markSwitch(channel, now)
	}

	if env.Type == message.TypeData {
		// Forward the original to the correct server(s) so no subscriber
		// misses it. All-publishers channels receive on every replica, so
		// forward to all; otherwise the first (deterministic) target
		// suffices since every target reaches all subscribers.
		fwd := forwardedCopy(env, channel)
		for _, s := range plan.PublishTargets(entry, nil) {
			if s == c.self {
				continue
			}
			actions = append(actions, Action{Kind: ActionForward, Server: s, Channel: channel, Env: fwd})
		}
		// Redirect the publisher so its next message goes to the right
		// place (§IV "Publishing on old server").
		if env.ID.Node != 0 && env.ID.Node != c.node {
			actions = append(actions, c.redirectAction(env.ID.Node, channel, entry))
		}
	}
	return actions
}

// OnLocalSubscribe reacts to a subscription on the local broker: a client
// subscribing to a channel this server no longer (or never) holds gets a
// switch notification (§IV-A4). Subscriptions to replicated channels are
// also announced, because the subscriber may not know the full replica set
// (under all-subscribers it must subscribe on every replica). Announcements
// are rate-limited per channel (see switchAllowed).
func (c *Core) OnLocalSubscribe(channel string, _ int, now time.Time) []Action {
	if plan.IsControlChannel(channel) {
		return nil
	}
	entry, _ := c.plan.Lookup(channel)
	if containsServer(entry.Servers, c.self) && len(entry.Servers) == 1 {
		return nil
	}
	if !c.switchAllowed(channel, now) {
		return nil
	}
	c.markSwitch(channel, now)
	return []Action{c.switchAction(channel, entry)}
}

// switchAllowed reports whether a switch notification may be emitted for
// channel now: immediately on the first occasion per plan version, then at
// most every SwitchReannounce.
func (c *Core) switchAllowed(channel string, now time.Time) bool {
	if c.switchSent[channel] < c.plan.Version {
		return true
	}
	return now.Sub(c.switchAt[channel]) >= SwitchReannounce
}

func (c *Core) markSwitch(channel string, now time.Time) {
	c.switchSent[channel] = c.plan.Version
	c.switchAt[channel] = now
}

// OnLocalUnsubscribe reacts to an unsubscription: when the last local
// subscriber of a draining channel leaves, notify the new holders that
// forwarding to this node can stop (§IV-A5).
func (c *Core) OnLocalUnsubscribe(channel string, localSubs int) []Action {
	if localSubs > 0 || plan.IsControlChannel(channel) {
		return nil
	}
	tr := c.transitions[channel]
	if tr == nil || !tr.selfOld {
		return nil
	}
	tr.selfOld = false
	entry, _ := c.plan.Lookup(channel)
	env := &message.Envelope{
		Type:        message.TypeDrained,
		ID:          c.gen.Next(),
		Channel:     channel,
		Servers:     []plan.ServerID{c.self},
		PlanVersion: tr.version,
	}
	var actions []Action
	for _, s := range entry.Servers {
		if s == c.self {
			continue
		}
		actions = append(actions, Action{
			Kind:    ActionForward,
			Server:  s,
			Channel: plan.DispatchChannel(s),
			Env:     env,
		})
	}
	if len(tr.draining) == 0 {
		delete(c.transitions, channel)
	}
	return actions
}

// OnDrained handles a drain notification from another dispatcher: server
// from has no subscribers left on channel, so stop forwarding to it.
func (c *Core) OnDrained(channel string, from plan.ServerID) {
	tr := c.transitions[channel]
	if tr == nil {
		return
	}
	delete(tr.draining, from)
	if len(tr.draining) == 0 && !tr.selfOld {
		delete(c.transitions, channel)
	}
}

// OnTick expires transitions whose drain timeout passed — by then no client
// can still hold the outdated mapping (§IV-A5's timer argument) — and prunes
// switch-gate entries from superseded plan versions (a newer plan may
// announce each channel once more).
func (c *Core) OnTick(now time.Time) {
	for ch, tr := range c.transitions {
		if now.After(tr.deadline) {
			delete(c.transitions, ch)
		}
	}
	for ch, v := range c.switchSent {
		if v < c.plan.Version {
			delete(c.switchSent, ch)
			delete(c.switchAt, ch)
		}
	}
}

// TransitionCount reports the number of open transitions (for tests and
// introspection).
func (c *Core) TransitionCount() int { return len(c.transitions) }

func (c *Core) switchAction(channel string, entry plan.Entry) Action {
	return Action{
		Kind:    ActionPublishLocal,
		Channel: channel,
		Env: &message.Envelope{
			Type:        message.TypeSwitch,
			ID:          c.gen.Next(),
			Channel:     channel,
			Servers:     entry.Servers,
			RingServers: c.plan.RingServers,
			Strategy:    uint8(entry.Strategy),
			PlanVersion: c.plan.Version,
		},
	}
}

func (c *Core) redirectAction(node uint32, channel string, entry plan.Entry) Action {
	inbox := plan.InboxChannel(node)
	home := c.plan.Home(inbox)
	env := &message.Envelope{
		Type:        message.TypeWrongServer,
		ID:          c.gen.Next(),
		Channel:     channel,
		Servers:     entry.Servers,
		RingServers: c.plan.RingServers,
		Strategy:    uint8(entry.Strategy),
		PlanVersion: c.plan.Version,
	}
	if home == c.self || home == "" {
		return Action{Kind: ActionPublishLocal, Channel: inbox, Env: env}
	}
	return Action{Kind: ActionForward, Server: home, Channel: inbox, Env: env}
}

// forwardedCopy clones env as a TypeForwarded envelope preserving the
// original message ID (client dedup keys on it).
func forwardedCopy(env *message.Envelope, channel string) *message.Envelope {
	return &message.Envelope{
		Type:        message.TypeForwarded,
		ID:          env.ID,
		Channel:     channel,
		Payload:     env.Payload,
		PlanVersion: env.PlanVersion,
	}
}

func serverSet(list []plan.ServerID) map[plan.ServerID]struct{} {
	m := make(map[plan.ServerID]struct{}, len(list))
	for _, s := range list {
		m[s] = struct{}{}
	}
	return m
}

func containsServer(list []plan.ServerID, s plan.ServerID) bool {
	for _, have := range list {
		if have == s {
			return true
		}
	}
	return false
}
