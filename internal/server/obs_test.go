package server

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/obs"
)

type dropSink struct{}

func (dropSink) Deliver(string, []byte) {}
func (dropSink) Closed(error)           {}

// TestNodeMetricsScrapeUnderPublishStorm hammers the broker from several
// publishers while scraping /metrics concurrently: every exposition must be
// well-formed, and the registry reads must not race the hot path (the test
// is meaningful under -race).
func TestNodeMetricsScrapeUnderPublishStorm(t *testing.T) {
	n := newNode(t, clock.NewReal())

	sess, err := n.Broker.Connect("sub", dropSink{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Subscribe("storm"); err != nil {
		t.Fatal(err)
	}

	gen := message.NewGenerator(0x77)
	var wg sync.WaitGroup
	const perPublisher = 2000
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				env := message.Envelope{
					Type:    message.TypeData,
					ID:      gen.Next(),
					Channel: "storm",
					Payload: []byte("payload"),
					Stamp:   time.Now().UnixNano(),
				}
				n.Broker.Publish("storm", env.Marshal())
			}
		}()
	}

	// Scrape concurrently with the storm; every exposition must parse.
	for i := 0; i < 50; i++ {
		out := n.Registry().String()
		if _, err := obs.ValidateExposition(out); err != nil {
			t.Fatalf("scrape %d malformed: %v\n%s", i, err, out)
		}
		if _, ok := n.Status().(Status); !ok {
			t.Fatalf("Status() returned %T", n.Status())
		}
	}
	wg.Wait()

	// A final burst after the last in-loop Status call, so the hot-channel
	// window (rates since the previous Top call) has fresh activity.
	for i := 0; i < 100; i++ {
		env := message.Envelope{
			Type:    message.TypeData,
			ID:      gen.Next(),
			Channel: "storm",
			Payload: []byte("payload"),
			Stamp:   time.Now().UnixNano(),
		}
		n.Broker.Publish("storm", env.Marshal())
	}

	out := n.Registry().String()
	for _, fam := range []string{
		"dynamoth_broker_published_total",
		"dynamoth_broker_delivered_total",
		"dynamoth_broker_dropped_total",
		"dynamoth_broker_sessions",
		"dynamoth_broker_channels",
		"dynamoth_plan_version",
		"dynamoth_e2e_latency_seconds_bucket",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing %s:\n%s", fam, out)
		}
	}
	if n.E2ELatency().Count() == 0 {
		t.Error("stamped publications observed no end-to-end latency")
	}
	st := n.Status().(Status)
	if st.Published == 0 || st.Delivered == 0 {
		t.Errorf("status counters empty: %+v", st)
	}
	if len(st.HotChannels) == 0 || st.HotChannels[0].Channel != "storm" {
		t.Errorf("hot channels = %+v, want storm ranked", st.HotChannels)
	}
}

// TestLatencyObserverSkipsUnstampedAndControl checks the broker-side
// observer only measures stamped data traffic.
func TestLatencyObserverSkipsUnstampedAndControl(t *testing.T) {
	clk := clock.NewManual(epoch)
	n := newNode(t, clk)

	unstamped := message.Envelope{Type: message.TypeData, ID: message.ID{Node: 1, Seq: 1}, Channel: "c"}
	n.Broker.Publish("c", unstamped.Marshal())
	control := message.Envelope{Type: message.TypePlan, ID: message.ID{Node: 1, Seq: 2}, Channel: "c", Stamp: epoch.UnixNano()}
	n.Broker.Publish("c", control.Marshal())
	n.Broker.Publish("c", []byte("not an envelope"))
	if got := n.E2ELatency().Count(); got != 0 {
		t.Fatalf("observed %d latencies from unstamped/control traffic", got)
	}

	clk.Advance(50 * time.Millisecond)
	stamped := message.Envelope{Type: message.TypeData, ID: message.ID{Node: 1, Seq: 3}, Channel: "c", Stamp: epoch.UnixNano()}
	n.Broker.Publish("c", stamped.Marshal())
	if got := n.E2ELatency().Count(); got != 1 {
		t.Fatalf("observed %d latencies, want 1", got)
	}
	// 50 ms of manual-clock age, within one log bucket (~8%).
	p := n.E2ELatency().Quantile(0.5)
	if p < 45*time.Millisecond || p > 56*time.Millisecond {
		t.Fatalf("observed latency %v, want ~50ms", p)
	}
}
