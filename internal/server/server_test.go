package server

import (
	"net"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/dispatcher"
	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/resp"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newNode(t *testing.T, clk clock.Clock) *Node {
	t.Helper()
	initial := plan.New("pub1")
	initial.Version = 1
	n, err := New(Options{
		ID:             "pub1",
		NodeNum:        0xD001,
		Initial:        initial,
		Forwarder:      dispatcher.ForwarderFunc(func(plan.ServerID, string, []byte) error { return nil }),
		Clock:          clk,
		MaxOutgoingBps: 1000,
		Unit:           time.Second,
		ReportEvery:    2 * time.Second,
		PublishReports: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

type captureSink struct{ reports chan *lla.Report }

func (s captureSink) Deliver(_ string, payload []byte) {
	env, err := message.Unmarshal(payload)
	if err != nil || env.Type != message.TypeLoadReport {
		return
	}
	if r, err := lla.UnmarshalReport(env.Payload); err == nil {
		select {
		case s.reports <- r:
		default:
		}
	}
}
func (captureSink) Closed(error) {}

func TestNodeAssemblyAndReportPump(t *testing.T) {
	clk := clock.NewManual(epoch)
	n := newNode(t, clk)

	// Subscribe to the node's report channel like the load balancer does.
	sink := captureSink{reports: make(chan *lla.Report, 8)}
	sess, err := n.Broker.Connect("lb", sink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Subscribe(plan.ReportChannel); err != nil {
		t.Fatal(err)
	}

	// Generate some traffic so the report has content.
	n.Broker.Publish("game", []byte("x"))

	// Tick past a report interval.
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case r := <-sink.reports:
		if r.Server != "pub1" || r.MaxOutgoingBps != 1000 {
			t.Fatalf("report %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no report published on the control channel")
	}
}

func TestNodeServeTCP(t *testing.T) {
	n := newNode(t, clock.NewReal())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		n.ServeTCP(ln) //nolint:errcheck // ends on close
	}()
	t.Cleanup(func() {
		ln.Close()
		<-done
	})

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := resp.NewWriter(conn)
	if err := w.WriteCommand([]byte("PING")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	v, err := resp.NewReader(conn).ReadValue()
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Str) != "PONG" {
		t.Fatalf("PING => %+v", v)
	}
}

func TestNodeValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("node without ID created")
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	n := newNode(t, clock.NewReal())
	n.Close()
	n.Close()
}
