package server

import (
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/buildinfo"
	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/hotstate"
	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/metrics"
	"github.com/dynamoth/dynamoth/internal/obs"
	"github.com/dynamoth/dynamoth/internal/trace"
)

// E2E latency histogram range: 100 µs floor (loopback broker hop) to 30 s
// ceiling (anything slower is an outage, clamped to the edge bucket), 160
// log buckets ≈ 8% resolution — enough to place a p99 within one bucket of
// the paper's Figure 8 CDF axis.
const (
	e2eLatencyMin     = 100 * time.Microsecond
	e2eLatencyMax     = 30 * time.Second
	e2eLatencyBuckets = 160
)

func newE2EHistogram() *metrics.Histogram {
	return metrics.NewHistogram(e2eLatencyMin, e2eLatencyMax, e2eLatencyBuckets)
}

// Stage latency histogram range: stage legs are broker-internal and often
// single-digit microseconds on loopback, so the floor sits at 1 µs (not the
// e2e histogram's 100 µs) — otherwise every fast stage would clamp up to the
// floor bucket and the waterfall's sum-of-stages would overstate e2e.
const (
	stageLatencyMin     = 1 * time.Microsecond
	stageLatencyMax     = 30 * time.Second
	stageLatencyBuckets = 200
)

// stageHistograms is the node-side half of the latency waterfall: the legs
// the broker can observe locally. The deliver leg (fanout→client) lives on
// the client registry; see DESIGN.md §18.
type stageHistograms struct {
	ingress *metrics.Histogram // publisher send → broker Publish entry
	fanout  *metrics.Histogram // Publish entry → fan-out enqueue
	flush   *metrics.Histogram // fan-out enqueue → connection write buffer
}

func newStageHistograms() *stageHistograms {
	return &stageHistograms{
		ingress: metrics.NewHistogram(stageLatencyMin, stageLatencyMax, stageLatencyBuckets),
		fanout:  metrics.NewHistogram(stageLatencyMin, stageLatencyMax, stageLatencyBuckets),
		flush:   metrics.NewHistogram(stageLatencyMin, stageLatencyMax, stageLatencyBuckets),
	}
}

// latencyObserver measures publish→deliver latency at the broker: every
// stamped data envelope's age at the moment its fan-out was queued, plus the
// per-stage waterfall marks the broker stamped into the frame. It sits on
// the publish hot path, so it peeks only the envelope header — no decoding,
// no allocation.
type latencyObserver struct {
	clk     clock.Clock
	hist    *metrics.Histogram
	stages  *stageHistograms
	latTopk *obs.LatencyTopK
}

// OnPublish implements broker.Observer.
func (o *latencyObserver) OnPublish(ch string, payload []byte, _ int) {
	s, ok := message.PeekStageStamp(payload)
	if !ok || s.Stamp == 0 {
		return
	}
	if s.Type != message.TypeData && s.Type != message.TypeForwarded {
		return
	}
	// Observe clamps negative durations (clock skew across real machines).
	age := time.Duration(o.clk.Now().UnixNano() - s.Stamp)
	o.hist.Observe(age)
	o.latTopk.Observe(ch, age)
	if s.IngressUs != 0 {
		o.stages.ingress.Observe(time.Duration(s.IngressUs) * time.Microsecond)
		if s.FanoutUs >= s.IngressUs {
			o.stages.fanout.Observe(time.Duration(s.FanoutUs-s.IngressUs) * time.Microsecond)
		}
	}
}

// OnSubscribe implements broker.Observer (ignored).
func (o *latencyObserver) OnSubscribe(string, string, int) {}

// OnUnsubscribe implements broker.Observer (ignored).
func (o *latencyObserver) OnUnsubscribe(string, string, int) {}

// flushObserver measures the writer-flush leg: the age of a frame past its
// fanout-enqueue mark at the moment it leaves the broker's output queue for
// a connection write buffer. OnFlush runs once per delivery on the dispatch
// path, so it samples (every 2^shift-th delivery) and peeks only on the
// sampled subset.
type flushObserver struct {
	clk  clock.Clock
	hist *metrics.Histogram
	n    atomic.Uint64
}

// OnFlush implements broker.FlushObserver.
func (o *flushObserver) OnFlush(payload []byte) {
	if o.n.Add(1)&(1<<obs.DefaultSampleShift-1) != 0 {
		return
	}
	s, ok := message.PeekStageStamp(payload)
	if !ok || s.FanoutUs == 0 {
		return
	}
	at := s.FanoutAt()
	if at == 0 {
		return
	}
	o.hist.Observe(time.Duration(o.clk.Now().UnixNano() - at))
}

// OnPublish implements broker.Observer (ignored; flush frames arrive via
// OnFlush).
func (o *flushObserver) OnPublish(string, []byte, int) {}

// OnSubscribe implements broker.Observer (ignored).
func (o *flushObserver) OnSubscribe(string, string, int) {}

// OnUnsubscribe implements broker.Observer (ignored).
func (o *flushObserver) OnUnsubscribe(string, string, int) {}

// Registry returns the node's metric registry, served by the admin
// endpoint's /metrics and the cluster scrape helpers.
func (n *Node) Registry() *obs.Registry { return n.reg }

// Recorder returns the node's flight recorder (nil when the node runs
// without one), backing the admin /debug/events and /debug/rebalances
// endpoints.
func (n *Node) Recorder() *trace.Recorder { return n.rec }

// E2ELatency returns the node's publish→deliver latency histogram (stamped
// at client publish, observed at broker fan-out).
func (n *Node) E2ELatency() *metrics.Histogram { return n.e2e }

// Status is the node's /statusz document.
type Status struct {
	Server      string            `json:"server"`
	Version     string            `json:"version"`
	GoVersion   string            `json:"goVersion"`
	PlanVersion uint64            `json:"planVersion"`
	PlanServers []string          `json:"planServers"`
	Sessions    int               `json:"sessions"`
	Channels    int               `json:"channels"`
	ConnCore    string            `json:"connCore"`
	Conns       int64             `json:"conns"`
	Published   uint64            `json:"published"`
	Delivered   uint64            `json:"delivered"`
	Dropped     uint64            `json:"dropped"`
	HotChannels []obs.ChannelRate `json:"hotChannels"`
	E2ELatency  LatencySummary    `json:"e2eLatency"`
}

// LatencySummary is a JSON-friendly histogram digest (milliseconds).
type LatencySummary struct {
	Count  uint64  `json:"count"`
	P50ms  float64 `json:"p50Ms"`
	P99ms  float64 `json:"p99Ms"`
	P999ms float64 `json:"p999Ms"`
	MaxMs  float64 `json:"maxMs"`
}

func summarize(h *metrics.Histogram) LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		P50ms:  float64(h.Quantile(0.5)) / float64(time.Millisecond),
		P99ms:  float64(h.Quantile(0.99)) / float64(time.Millisecond),
		P999ms: float64(h.Quantile(0.999)) / float64(time.Millisecond),
		MaxMs:  float64(h.Max()) / float64(time.Millisecond),
	}
}

// Status snapshots the node for /statusz. The hot-channel rates are computed
// over the window since the previous Status call.
func (n *Node) Status() any {
	st := n.Broker.Stats()
	p := n.Dispatcher.Plan()
	servers := make([]string, 0, len(p.Servers))
	for _, s := range p.Servers {
		servers = append(servers, string(s))
	}
	return Status{
		Server:      string(n.ID),
		Version:     buildinfo.Version,
		GoVersion:   buildinfo.GoVersion(),
		PlanVersion: p.Version,
		PlanServers: servers,
		Sessions:    st.Sessions,
		Channels:    st.Channels,
		ConnCore:    n.connSrv.Core().String(),
		Conns:       n.connSrv.Stats().Conns,
		Published:   st.Published,
		Delivered:   st.Delivered,
		Dropped:     st.Dropped,
		HotChannels: n.topk.Top(10),
		E2ELatency:  summarize(n.e2e),
	}
}

// StageSummary is one waterfall stage's latency digest.
type StageSummary struct {
	Stage string `json:"stage"`
	LatencySummary
}

// Waterfall is the /debug/latency document: the node's end-to-end latency
// with its per-stage decomposition, the channels contributing the most tail
// latency, and the per-subscriber-region delivery latencies the LLA folds
// into its reports. All numbers are read-only digests; rendering touches
// nothing on the publish path.
type Waterfall struct {
	Server string `json:"server"`
	// E2E is publish→fan-out latency as observed broker-side (the node
	// cannot see client delivery; clients export the deliver leg on their
	// own registries).
	E2E LatencySummary `json:"e2e"`
	// Stages holds the broker-side legs in pipeline order: ingress
	// (publisher send → Publish entry), fanout (Publish entry → fan-out
	// enqueue), flush (fan-out enqueue → connection write buffer; sampled).
	// Ingress + fanout decompose E2E exactly; flush extends past it.
	Stages []StageSummary `json:"stages"`
	// SlowChannels ranks channels by p99 contribution (p99 × count) over
	// the window since the previous Waterfall call.
	SlowChannels []obs.ChannelLatency `json:"slowChannels"`
	// Regions is the cumulative per-subscriber-region delivery-latency
	// digest (empty when no session declared a region).
	Regions []lla.RegionStats `json:"regions"`
}

// Waterfall snapshots the node's latency waterfall for /debug/latency.
func (n *Node) Waterfall() Waterfall {
	return Waterfall{
		Server: string(n.ID),
		E2E:    summarize(n.e2e),
		Stages: []StageSummary{
			{Stage: "ingress", LatencySummary: summarize(n.stages.ingress)},
			{Stage: "fanout", LatencySummary: summarize(n.stages.fanout)},
			{Stage: "flush", LatencySummary: summarize(n.stages.flush)},
		},
		SlowChannels: n.latTopk.Top(10),
		Regions:      n.LLA.RegionSnapshot(),
	}
}

// buildRegistry registers the node's exported metric families. All reads
// happen on scrape; nothing here touches the publish path.
func (n *Node) buildRegistry() {
	r := obs.NewRegistry()
	r.Counter("dynamoth_broker_published_total",
		"Publications accepted by this broker.",
		func() uint64 { return n.Broker.Stats().Published })
	r.Counter("dynamoth_broker_delivered_total",
		"Per-subscriber deliveries queued by this broker.",
		func() uint64 { return n.Broker.Stats().Delivered })
	r.Counter("dynamoth_broker_dropped_total",
		"Sessions disconnected for slow consumption (output buffer overflow).",
		func() uint64 { return n.Broker.Stats().Dropped })
	r.Gauge("dynamoth_broker_sessions",
		"Live sessions connected to this broker.",
		func() float64 { return float64(n.Broker.Stats().Sessions) })
	r.Gauge("dynamoth_broker_channels",
		"Channels with at least one subscriber.",
		func() float64 { return float64(n.Broker.Stats().Channels) })
	r.Gauge("dynamoth_broker_conns",
		"TCP connections currently open on this broker.",
		func() float64 { return float64(n.connSrv.Stats().Conns) })
	r.Counter("dynamoth_broker_conn_accepts_total",
		"TCP connections accepted by this broker.",
		func() uint64 { return n.connSrv.Stats().Accepts })
	r.Counter("dynamoth_broker_conn_closes_total",
		"TCP connections closed on this broker.",
		func() uint64 { return n.connSrv.Stats().Closes })
	r.Counter("dynamoth_broker_conn_backpressure_total",
		"Sessions disconnected by the connection layer for output overflow.",
		func() uint64 { return n.connSrv.Stats().Backpressure })
	r.Counter("dynamoth_broker_bytes_in_total",
		"Wire bytes read from broker connections.",
		func() uint64 { return n.connSrv.Stats().BytesIn })
	r.Counter("dynamoth_broker_bytes_out_total",
		"Wire bytes written to broker connections.",
		func() uint64 { return n.connSrv.Stats().BytesOut })
	r.Counter("dynamoth_broker_epoll_wakeups_total",
		"epoll_wait returns across reactor shards (0 on the goroutine core).",
		func() uint64 { return n.connSrv.Stats().EpollWakeups })
	r.Counter("dynamoth_broker_epoll_events_total",
		"epoll events dispatched across reactor shards (0 on the goroutine core).",
		func() uint64 { return n.connSrv.Stats().EpollEvents })
	r.Counter("dynamoth_broker_epoll_writes_total",
		"Reactor flush write syscalls; deliveries per write is the coalescing factor.",
		func() uint64 { return n.connSrv.Stats().EpollWrites })
	if n.Broker.ReplayEnabled() {
		r.Gauge("dynamoth_broker_replay_rings",
			"Channels currently holding a replay ring.",
			func() float64 { return float64(n.Broker.Stats().ReplayRings) })
		r.Counter("dynamoth_broker_replay_retained_total",
			"Data frames appended to replay rings.",
			func() uint64 { return n.Broker.Stats().ReplayRetained })
		r.Counter("dynamoth_broker_replay_requests_total",
			"Cursor-based resubscribes served from replay rings.",
			func() uint64 { return n.Broker.Stats().ReplayRequests })
		r.Counter("dynamoth_broker_replay_frames_total",
			"Frames replayed to resuming subscribers.",
			func() uint64 { return n.Broker.Stats().ReplayedFrames })
		r.Counter("dynamoth_broker_replay_missed_total",
			"Requested frames already overwritten in their ring (unrecoverable gaps).",
			func() uint64 { return n.Broker.Stats().ReplayMissed })
	}
	r.Gauge("dynamoth_plan_version",
		"Plan version this node's dispatcher is executing.",
		func() float64 { return float64(n.Dispatcher.Plan().Version) })
	r.Histogram("dynamoth_e2e_latency_seconds",
		"Publish-to-deliver latency: stamped at client publish, observed at broker fan-out.",
		n.e2e, 0.5, 0.99, 0.999)
	r.Histogram("dynamoth_stage_latency_ingress_seconds",
		"Waterfall stage: publisher send to broker Publish entry.",
		n.stages.ingress, 0.5, 0.99)
	r.Histogram("dynamoth_stage_latency_fanout_seconds",
		"Waterfall stage: broker Publish entry to fan-out enqueue.",
		n.stages.fanout, 0.5, 0.99)
	r.Histogram("dynamoth_stage_latency_flush_seconds",
		"Waterfall stage: fan-out enqueue to connection write buffer (sampled).",
		n.stages.flush, 0.5, 0.99)
	buildinfo.Register(r)
	r.Counter("dynamoth_node_lla_reports_total",
		"LLA reports built since startup. Harnesses poll this to wait out a full LLA cycle instead of sleeping a guessed interval.",
		n.LLA.ReportsBuilt)
	// Bounded hot-state caches: every per-channel map on this node with its
	// size/capacity/eviction counters, scrapeable at /metrics.
	accum := n.LLA.Accumulator()
	caches := []hotstate.NamedStats{
		{Name: "lla_units", Stats: accum.UnitCacheStats},
		{Name: "lla_subscribers", Stats: accum.SubscriberCacheStats},
		{Name: "topk", Stats: n.topk.CacheStats},
		{Name: "latency_topk", Stats: n.latTopk.CacheStats},
	}
	if n.Broker.ReplayEnabled() {
		caches = append(caches, hotstate.NamedStats{Name: "replay_rings", Stats: n.Broker.ReplayCacheStats})
	}
	r.RegisterCaches("dynamoth_node", caches...)
	// Derived reconfiguration families from the node's flight recorder
	// (no-op when the node runs without one).
	n.rec.RegisterMetrics(r)
	n.reg = r
}
