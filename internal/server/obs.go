package server

import (
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/hotstate"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/metrics"
	"github.com/dynamoth/dynamoth/internal/obs"
	"github.com/dynamoth/dynamoth/internal/trace"
)

// E2E latency histogram range: 100 µs floor (loopback broker hop) to 30 s
// ceiling (anything slower is an outage, clamped to the edge bucket), 160
// log buckets ≈ 8% resolution — enough to place a p99 within one bucket of
// the paper's Figure 8 CDF axis.
const (
	e2eLatencyMin     = 100 * time.Microsecond
	e2eLatencyMax     = 30 * time.Second
	e2eLatencyBuckets = 160
)

func newE2EHistogram() *metrics.Histogram {
	return metrics.NewHistogram(e2eLatencyMin, e2eLatencyMax, e2eLatencyBuckets)
}

// latencyObserver measures publish→deliver latency at the broker: every
// stamped data envelope's age at the moment its fan-out was queued. It sits
// on the publish hot path, so it peeks only the envelope header — no
// decoding, no allocation.
type latencyObserver struct {
	clk  clock.Clock
	hist *metrics.Histogram
}

// OnPublish implements broker.Observer.
func (o *latencyObserver) OnPublish(_ string, payload []byte, _ int) {
	t, stamp, ok := message.PeekStamp(payload)
	if !ok || stamp == 0 {
		return
	}
	if t != message.TypeData && t != message.TypeForwarded {
		return
	}
	// Observe clamps negative durations (clock skew across real machines).
	o.hist.Observe(time.Duration(o.clk.Now().UnixNano() - stamp))
}

// OnSubscribe implements broker.Observer (ignored).
func (o *latencyObserver) OnSubscribe(string, string, int) {}

// OnUnsubscribe implements broker.Observer (ignored).
func (o *latencyObserver) OnUnsubscribe(string, string, int) {}

// Registry returns the node's metric registry, served by the admin
// endpoint's /metrics and the cluster scrape helpers.
func (n *Node) Registry() *obs.Registry { return n.reg }

// Recorder returns the node's flight recorder (nil when the node runs
// without one), backing the admin /debug/events and /debug/rebalances
// endpoints.
func (n *Node) Recorder() *trace.Recorder { return n.rec }

// E2ELatency returns the node's publish→deliver latency histogram (stamped
// at client publish, observed at broker fan-out).
func (n *Node) E2ELatency() *metrics.Histogram { return n.e2e }

// Status is the node's /statusz document.
type Status struct {
	Server      string            `json:"server"`
	PlanVersion uint64            `json:"planVersion"`
	PlanServers []string          `json:"planServers"`
	Sessions    int               `json:"sessions"`
	Channels    int               `json:"channels"`
	ConnCore    string            `json:"connCore"`
	Conns       int64             `json:"conns"`
	Published   uint64            `json:"published"`
	Delivered   uint64            `json:"delivered"`
	Dropped     uint64            `json:"dropped"`
	HotChannels []obs.ChannelRate `json:"hotChannels"`
	E2ELatency  LatencySummary    `json:"e2eLatency"`
}

// LatencySummary is a JSON-friendly histogram digest (milliseconds).
type LatencySummary struct {
	Count  uint64  `json:"count"`
	P50ms  float64 `json:"p50Ms"`
	P99ms  float64 `json:"p99Ms"`
	P999ms float64 `json:"p999Ms"`
	MaxMs  float64 `json:"maxMs"`
}

func summarize(h *metrics.Histogram) LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		P50ms:  float64(h.Quantile(0.5)) / float64(time.Millisecond),
		P99ms:  float64(h.Quantile(0.99)) / float64(time.Millisecond),
		P999ms: float64(h.Quantile(0.999)) / float64(time.Millisecond),
		MaxMs:  float64(h.Max()) / float64(time.Millisecond),
	}
}

// Status snapshots the node for /statusz. The hot-channel rates are computed
// over the window since the previous Status call.
func (n *Node) Status() any {
	st := n.Broker.Stats()
	p := n.Dispatcher.Plan()
	servers := make([]string, 0, len(p.Servers))
	for _, s := range p.Servers {
		servers = append(servers, string(s))
	}
	return Status{
		Server:      string(n.ID),
		PlanVersion: p.Version,
		PlanServers: servers,
		Sessions:    st.Sessions,
		Channels:    st.Channels,
		ConnCore:    n.connSrv.Core().String(),
		Conns:       n.connSrv.Stats().Conns,
		Published:   st.Published,
		Delivered:   st.Delivered,
		Dropped:     st.Dropped,
		HotChannels: n.topk.Top(10),
		E2ELatency:  summarize(n.e2e),
	}
}

// buildRegistry registers the node's exported metric families. All reads
// happen on scrape; nothing here touches the publish path.
func (n *Node) buildRegistry() {
	r := obs.NewRegistry()
	r.Counter("dynamoth_broker_published_total",
		"Publications accepted by this broker.",
		func() uint64 { return n.Broker.Stats().Published })
	r.Counter("dynamoth_broker_delivered_total",
		"Per-subscriber deliveries queued by this broker.",
		func() uint64 { return n.Broker.Stats().Delivered })
	r.Counter("dynamoth_broker_dropped_total",
		"Sessions disconnected for slow consumption (output buffer overflow).",
		func() uint64 { return n.Broker.Stats().Dropped })
	r.Gauge("dynamoth_broker_sessions",
		"Live sessions connected to this broker.",
		func() float64 { return float64(n.Broker.Stats().Sessions) })
	r.Gauge("dynamoth_broker_channels",
		"Channels with at least one subscriber.",
		func() float64 { return float64(n.Broker.Stats().Channels) })
	r.Gauge("dynamoth_broker_conns",
		"TCP connections currently open on this broker.",
		func() float64 { return float64(n.connSrv.Stats().Conns) })
	r.Counter("dynamoth_broker_conn_accepts_total",
		"TCP connections accepted by this broker.",
		func() uint64 { return n.connSrv.Stats().Accepts })
	r.Counter("dynamoth_broker_conn_closes_total",
		"TCP connections closed on this broker.",
		func() uint64 { return n.connSrv.Stats().Closes })
	r.Counter("dynamoth_broker_conn_backpressure_total",
		"Sessions disconnected by the connection layer for output overflow.",
		func() uint64 { return n.connSrv.Stats().Backpressure })
	r.Counter("dynamoth_broker_bytes_in_total",
		"Wire bytes read from broker connections.",
		func() uint64 { return n.connSrv.Stats().BytesIn })
	r.Counter("dynamoth_broker_bytes_out_total",
		"Wire bytes written to broker connections.",
		func() uint64 { return n.connSrv.Stats().BytesOut })
	r.Counter("dynamoth_broker_epoll_wakeups_total",
		"epoll_wait returns across reactor shards (0 on the goroutine core).",
		func() uint64 { return n.connSrv.Stats().EpollWakeups })
	r.Counter("dynamoth_broker_epoll_events_total",
		"epoll events dispatched across reactor shards (0 on the goroutine core).",
		func() uint64 { return n.connSrv.Stats().EpollEvents })
	r.Counter("dynamoth_broker_epoll_writes_total",
		"Reactor flush write syscalls; deliveries per write is the coalescing factor.",
		func() uint64 { return n.connSrv.Stats().EpollWrites })
	if n.Broker.ReplayEnabled() {
		r.Gauge("dynamoth_broker_replay_rings",
			"Channels currently holding a replay ring.",
			func() float64 { return float64(n.Broker.Stats().ReplayRings) })
		r.Counter("dynamoth_broker_replay_retained_total",
			"Data frames appended to replay rings.",
			func() uint64 { return n.Broker.Stats().ReplayRetained })
		r.Counter("dynamoth_broker_replay_requests_total",
			"Cursor-based resubscribes served from replay rings.",
			func() uint64 { return n.Broker.Stats().ReplayRequests })
		r.Counter("dynamoth_broker_replay_frames_total",
			"Frames replayed to resuming subscribers.",
			func() uint64 { return n.Broker.Stats().ReplayedFrames })
		r.Counter("dynamoth_broker_replay_missed_total",
			"Requested frames already overwritten in their ring (unrecoverable gaps).",
			func() uint64 { return n.Broker.Stats().ReplayMissed })
	}
	r.Gauge("dynamoth_plan_version",
		"Plan version this node's dispatcher is executing.",
		func() float64 { return float64(n.Dispatcher.Plan().Version) })
	r.Histogram("dynamoth_e2e_latency_seconds",
		"Publish-to-deliver latency: stamped at client publish, observed at broker fan-out.",
		n.e2e, 0.5, 0.99, 0.999)
	r.Counter("dynamoth_node_lla_reports_total",
		"LLA reports built since startup. Harnesses poll this to wait out a full LLA cycle instead of sleeping a guessed interval.",
		n.LLA.ReportsBuilt)
	// Bounded hot-state caches: every per-channel map on this node with its
	// size/capacity/eviction counters, scrapeable at /metrics.
	accum := n.LLA.Accumulator()
	caches := []hotstate.NamedStats{
		{Name: "lla_units", Stats: accum.UnitCacheStats},
		{Name: "lla_subscribers", Stats: accum.SubscriberCacheStats},
		{Name: "topk", Stats: n.topk.CacheStats},
	}
	if n.Broker.ReplayEnabled() {
		caches = append(caches, hotstate.NamedStats{Name: "replay_rings", Stats: n.Broker.ReplayCacheStats})
	}
	r.RegisterCaches("dynamoth_node", caches...)
	// Derived reconfiguration families from the node's flight recorder
	// (no-op when the node runs without one).
	n.rec.RegisterMetrics(r)
	n.reg = r
}
