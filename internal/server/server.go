// Package server assembles one Dynamoth node exactly as Figure 1 of the
// paper draws it: a standard pub/sub server (broker), a local load analyzer,
// and a dispatcher, collocated on one machine. The node publishes its LLA
// reports on the control plane so the load balancer can aggregate them.
package server

import (
	"fmt"
	"log/slog"
	"net"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/dispatcher"
	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/metrics"
	"github.com/dynamoth/dynamoth/internal/obs"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/trace"
)

// DefaultReplayDepth is the per-channel replay ring depth when
// Options.ReplayDepth is 0: deep enough to cover a crash-detection window or
// a T_wait drain at per-channel rates well beyond the paper's workloads
// (sizing math in DESIGN.md §16), shallow enough that a ring costs at most
// depth × frame-size bytes only on channels that actually see traffic.
const DefaultReplayDepth = 256

// Options configures a Node.
type Options struct {
	// ID is the server's identity in plans (e.g. "pub1").
	ID plan.ServerID
	// NodeNum is the numeric node ID used for control envelopes; must be
	// unique across the deployment.
	NodeNum uint32
	// Initial is the bootstrap plan.
	Initial *plan.Plan
	// Forwarder lets the dispatcher publish on other servers.
	Forwarder dispatcher.Forwarder
	// Clock provides time (default real).
	Clock clock.Clock
	// MaxOutgoingBps is the node's theoretical egress capacity T_i.
	MaxOutgoingBps float64
	// Unit and ReportEvery configure the LLA (defaults 1 s / 3 s).
	Unit, ReportEvery time.Duration
	// LLAChannelCap bounds the distinct channels the LLA tracks per time
	// unit (0 = lla.DefaultChannelCap, negative = unbounded); traffic beyond
	// the cap folds into the report's overflow bucket.
	LLAChannelCap int
	// TopKCap bounds the hot-channel tracker's channel set
	// (0 = obs.DefaultTopKCap, negative = unbounded).
	TopKCap int
	// RegionDelay optionally models the WAN delay to a subscriber region for
	// the LLA's per-region delivery-latency attribution (e.g. from netsim's
	// King-dataset model). Nil reports raw measured ages.
	RegionDelay func(region string) time.Duration
	// OutputBuffer is the broker's per-session output limit.
	OutputBuffer int
	// ReplayDepth is the broker's per-channel replay ring depth: the last
	// ReplayDepth data frames of each channel stay available for
	// cursor-based resumable subscription. 0 selects DefaultReplayDepth;
	// negative disables replay.
	ReplayDepth int
	// ReplayChannels bounds how many channels may hold a replay ring
	// (0 = broker.DefaultReplayChannels, negative = unbounded).
	ReplayChannels int
	// ConnCore selects the broker's connection-serving implementation for
	// ServeTCP (default broker.CoreAuto: the epoll reactor where
	// available, goroutine-per-connection elsewhere).
	ConnCore broker.ConnCore
	// ConnShards is the reactor's event-loop count (default GOMAXPROCS).
	ConnShards int
	// DrainTimeout bounds dispatcher transitions.
	DrainTimeout time.Duration
	// PublishReports, when true (the default for cluster nodes), pumps
	// LLA reports onto the local ReportChannel for the load balancer.
	PublishReports bool
	// Recorder receives the node's reconfiguration events (plan applies,
	// SWITCH sends, drains) and backs its /debug/events endpoint. Nil
	// records nothing.
	Recorder *trace.Recorder
	// Logger receives structured node logs (component-tagged per
	// subsystem). Nil discards.
	Logger *slog.Logger
}

// Node is one pub/sub server machine: broker + LLA + dispatcher, plus the
// observability surface (metric registry, hot-channel tracker, end-to-end
// latency histogram) the admin endpoint exposes.
type Node struct {
	ID         plan.ServerID
	Broker     *broker.Broker
	LLA        *lla.Analyzer
	Dispatcher *dispatcher.Dispatcher

	reg     *obs.Registry
	topk    *obs.TopK
	latTopk *obs.LatencyTopK
	e2e     *metrics.Histogram
	stages  *stageHistograms
	rec     *trace.Recorder
	log     *slog.Logger
	connSrv *broker.ConnServer

	gen  *message.Generator
	stop chan struct{}
	done chan struct{}
}

// New builds and starts a node.
func New(opts Options) (*Node, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("server: missing node ID")
	}
	if opts.Clock == nil {
		opts.Clock = clock.NewReal()
	}
	replayDepth := opts.ReplayDepth
	switch {
	case replayDepth == 0:
		replayDepth = DefaultReplayDepth
	case replayDepth < 0:
		replayDepth = 0 // disabled
	}
	clk := opts.Clock
	b := broker.New(broker.Options{
		Name:           opts.ID,
		OutputBuffer:   opts.OutputBuffer,
		ReplayDepth:    replayDepth,
		ReplayChannels: opts.ReplayChannels,
		// Stage stamping on: the broker marks ingress and fanout-enqueue on
		// every stamped data frame, in place and allocation-free.
		NowNanos: func() int64 { return clk.Now().UnixNano() },
	})
	analyzer := lla.NewAnalyzer(lla.Config{
		Server:         opts.ID,
		MaxOutgoingBps: opts.MaxOutgoingBps,
		Unit:           opts.Unit,
		ReportEvery:    opts.ReportEvery,
		ChannelCap:     opts.LLAChannelCap,
		RegionDelay:    opts.RegionDelay,
		Clock:          opts.Clock,
		Logger:         opts.Logger,
	})
	b.AddObserver(analyzer)
	analyzer.Start()

	disp, err := dispatcher.New(dispatcher.Options{
		Self:         opts.ID,
		Node:         opts.NodeNum,
		Initial:      opts.Initial,
		Broker:       b,
		Forwarder:    opts.Forwarder,
		Clock:        opts.Clock,
		DrainTimeout: opts.DrainTimeout,
		Recorder:     opts.Recorder,
		Logger:       opts.Logger,
	})
	if err != nil {
		analyzer.Stop()
		b.Close()
		return nil, fmt.Errorf("server: starting dispatcher: %w", err)
	}

	n := &Node{
		ID:         opts.ID,
		Broker:     b,
		LLA:        analyzer,
		Dispatcher: disp,
		topk:       obs.NewTopKWithCap(-1, topKCap(opts.TopKCap), opts.Clock.Now),
		latTopk:    obs.NewLatencyTopK(-1, opts.Clock.Now),
		e2e:        newE2EHistogram(),
		stages:     newStageHistograms(),
		rec:        opts.Recorder,
		log:        trace.Component(opts.Logger, "server"),
		gen:        message.NewGenerator(opts.NodeNum),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	n.connSrv = broker.NewConnServer(b, broker.ServeOptions{
		Core:     opts.ConnCore,
		Shards:   opts.ConnShards,
		Observer: &connTracer{rec: opts.Recorder},
	})
	// Observability observers: all are allocation-free in steady state (the
	// latency observer peeks the envelope header once; the top-K trackers and
	// the flush observer sample).
	b.AddObserver(n.topk)
	b.AddObserver(&latencyObserver{
		clk:     opts.Clock,
		hist:    n.e2e,
		stages:  n.stages,
		latTopk: n.latTopk,
	})
	b.AddObserver(&flushObserver{clk: opts.Clock, hist: n.stages.flush})
	n.buildRegistry()
	go n.pumpReports(opts.PublishReports)
	return n, nil
}

// topKCap maps the Options convention (0 = default, negative = unbounded) to
// the tracker's (positive = cap, <=0 = unbounded).
func topKCap(v int) int {
	switch {
	case v == 0:
		return obs.DefaultTopKCap
	case v < 0:
		return 0
	}
	return v
}

// pumpReports publishes LLA reports on the local control channel.
func (n *Node) pumpReports(publish bool) {
	defer close(n.done)
	for {
		select {
		case r, ok := <-n.LLA.Reports():
			if !ok {
				return
			}
			if !publish || r == nil {
				continue
			}
			data, err := r.Marshal()
			if err != nil {
				continue
			}
			env := &message.Envelope{
				Type:    message.TypeLoadReport,
				ID:      n.gen.Next(),
				Channel: plan.ReportChannel,
				Payload: data,
			}
			n.Broker.Publish(plan.ReportChannel, env.Marshal())
		case <-n.stop:
			return
		}
	}
}

// ServeTCP serves the node's broker over RESP on ln (blocking), using the
// connection core selected in Options.ConnCore.
func (n *Node) ServeTCP(ln net.Listener) error {
	return n.connSrv.Serve(ln)
}

// ConnCore returns the resolved connection core ServeTCP uses.
func (n *Node) ConnCore() broker.ConnCore { return n.connSrv.Core() }

// ConnStats snapshots the connection-layer counters.
func (n *Node) ConnStats() broker.ConnStats { return n.connSrv.Stats() }

// connTracer bridges connection lifecycle events into the flight recorder.
// All three callbacks are nil-recorder safe and allocation-free.
type connTracer struct {
	rec *trace.Recorder
}

func (t *connTracer) OnAccept(addr string) {
	t.rec.Record(trace.KindConnAccept, 0, addr, "", 0, 0)
}

func (t *connTracer) OnConnClose(addr string, reason error) {
	detail := ""
	if reason != nil {
		detail = reason.Error()
	}
	t.rec.Record(trace.KindConnClose, 0, addr, detail, 0, 0)
}

func (t *connTracer) OnBackpressure(addr string, buffered int) {
	t.rec.Record(trace.KindBackpressure, 0, addr, "", int64(buffered), 0)
}

// Close stops all node components.
func (n *Node) Close() {
	select {
	case <-n.stop:
		return
	default:
		close(n.stop)
	}
	n.Dispatcher.Close()
	n.LLA.Stop()
	n.Broker.Close()
	<-n.done
}
