// Package workload implements the application the paper evaluates Dynamoth
// with (§V-A): RGame, a sub-game of the Mammoth MOG research framework. The
// world is a grid of square tiles; each player is driven by a simple AI that
// repeatedly picks a random waypoint, walks towards it, and takes a short
// break. Players subscribe to the tile they are in and publish their state
// updates on it, so everyone in a tile sees everyone else — generating the
// churn of subscriptions and the publication load of the paper's
// Experiments 2 and 3.
//
// The package also provides the player-count schedules of those experiments
// (a slow ramp for scalability; a rise/drop/rise wave for elasticity).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Config describes the game world.
type Config struct {
	// TilesX and TilesY give the tile grid dimensions (default 8×8).
	TilesX, TilesY int
	// WorldSize is the world's extent per axis in world units (default 1000).
	WorldSize float64
	// Speed is player movement speed in world units/second (default 50).
	Speed float64
	// PauseMean is the mean break at a waypoint (default 2 s).
	PauseMean time.Duration
	// UpdatesPerSec is the state-update publication rate (default 3, §V-D).
	UpdatesPerSec float64
	// Hotspots places popular attractors in the world (towns, quest hubs):
	// with probability HotspotBias a player's next waypoint lands near one
	// of them instead of being uniform. Hot regions give tiles unequal
	// load — the situation the paper's load balancer exists for (and the
	// assumption consistent hashing cannot handle, §I). 0 disables.
	Hotspots int
	// HotspotBias is the probability a waypoint targets a hotspot
	// (default 0 — uniform waypoints).
	HotspotBias float64
	// PayloadBytes is the state-update payload size (default 200; with
	// envelope overhead this makes one server saturate at ~5000
	// deliveries/second, the calibration point of DESIGN.md §4).
	PayloadBytes int
}

// FillDefaults applies the defaults above in place and returns the config.
func (c Config) FillDefaults() Config {
	if c.TilesX <= 0 {
		c.TilesX = 8
	}
	if c.TilesY <= 0 {
		c.TilesY = 8
	}
	if c.WorldSize <= 0 {
		c.WorldSize = 1000
	}
	if c.Speed <= 0 {
		c.Speed = 50
	}
	if c.PauseMean <= 0 {
		c.PauseMean = 2 * time.Second
	}
	if c.UpdatesPerSec <= 0 {
		c.UpdatesPerSec = 3
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 200
	}
	return c
}

// TileName returns the channel name of the tile containing (x, y).
func (c Config) TileName(x, y float64) string {
	tx := int(x / c.WorldSize * float64(c.TilesX))
	ty := int(y / c.WorldSize * float64(c.TilesY))
	if tx < 0 {
		tx = 0
	}
	if tx >= c.TilesX {
		tx = c.TilesX - 1
	}
	if ty < 0 {
		ty = 0
	}
	if ty >= c.TilesY {
		ty = c.TilesY - 1
	}
	return fmt.Sprintf("tile-%d-%d", tx, ty)
}

// Player is one AI-driven avatar.
type Player struct {
	ID uint32

	cfg         Config
	x, y        float64
	tx, ty      float64       // waypoint
	pausedUntil time.Duration // elapsed-time instant the pause ends
	tile        string
}

// NewPlayer creates a player at a random position with a random waypoint.
func NewPlayer(id uint32, cfg Config, rng *rand.Rand) *Player {
	cfg = cfg.FillDefaults()
	p := &Player{
		ID:  id,
		cfg: cfg,
		x:   rng.Float64() * cfg.WorldSize,
		y:   rng.Float64() * cfg.WorldSize,
	}
	p.pickWaypoint(rng)
	p.tile = cfg.TileName(p.x, p.y)
	return p
}

// Tile returns the channel of the tile the player is currently in.
func (p *Player) Tile() string { return p.tile }

// Position returns the player's coordinates.
func (p *Player) Position() (x, y float64) { return p.x, p.y }

// hotspotCenters returns the fixed attractor positions (deterministic
// fractions of the world size, so every player agrees on where town is).
func (c Config) hotspotCenters() [][2]float64 {
	anchors := [][2]float64{
		{0.30, 0.30}, {0.70, 0.55}, {0.45, 0.80},
		{0.15, 0.65}, {0.85, 0.20}, {0.60, 0.10},
	}
	if c.Hotspots < len(anchors) {
		anchors = anchors[:c.Hotspots]
	}
	out := make([][2]float64, len(anchors))
	for i, a := range anchors {
		out[i] = [2]float64{a[0] * c.WorldSize, a[1] * c.WorldSize}
	}
	return out
}

func (p *Player) pickWaypoint(rng *rand.Rand) {
	if p.cfg.Hotspots > 0 && rng.Float64() < p.cfg.HotspotBias {
		centers := p.cfg.hotspotCenters()
		c := centers[rng.Intn(len(centers))]
		// Land within roughly one tile of the attractor.
		spread := p.cfg.WorldSize / float64(p.cfg.TilesX)
		p.tx = clamp(c[0]+(rng.Float64()-0.5)*spread, 0, p.cfg.WorldSize)
		p.ty = clamp(c[1]+(rng.Float64()-0.5)*spread, 0, p.cfg.WorldSize)
		return
	}
	p.tx = rng.Float64() * p.cfg.WorldSize
	p.ty = rng.Float64() * p.cfg.WorldSize
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Advance moves the player by dt of game time; elapsed is total game time so
// far (used for pause bookkeeping). It reports whether the player crossed
// into another tile, and the previous tile's name if so.
func (p *Player) Advance(elapsed, dt time.Duration, rng *rand.Rand) (tileChanged bool, oldTile string) {
	if elapsed < p.pausedUntil {
		return false, ""
	}
	dx := p.tx - p.x
	dy := p.ty - p.y
	dist := math.Hypot(dx, dy)
	step := p.cfg.Speed * dt.Seconds()
	if dist <= step {
		// Waypoint reached: take a break, then pick a new one.
		p.x, p.y = p.tx, p.ty
		pause := time.Duration((0.5 + rng.Float64()) * float64(p.cfg.PauseMean))
		p.pausedUntil = elapsed + pause
		p.pickWaypoint(rng)
	} else {
		p.x += dx / dist * step
		p.y += dy / dist * step
	}
	newTile := p.cfg.TileName(p.x, p.y)
	if newTile != p.tile {
		oldTile = p.tile
		p.tile = newTile
		return true, oldTile
	}
	return false, ""
}

// Update renders the player's state-update payload (fixed size, position
// encoded in the prefix so payloads are realistic, padding after).
func (p *Player) Update(buf []byte) []byte {
	if cap(buf) < p.cfg.PayloadBytes {
		buf = make([]byte, p.cfg.PayloadBytes)
	}
	buf = buf[:p.cfg.PayloadBytes]
	header := fmt.Sprintf("p=%d x=%.1f y=%.1f", p.ID, p.x, p.y)
	n := copy(buf, header)
	for i := n; i < len(buf); i++ {
		buf[i] = ' '
	}
	return buf
}

// ---------------------------------------------------------------------------
// Player-count schedules

// Phase is one segment of a player-count schedule: the target count ramps
// linearly from the previous phase's end to Target over Length.
type Phase struct {
	Length time.Duration
	Target int
}

// Schedule is a piecewise-linear player-count profile.
type Schedule struct {
	Initial int
	Phases  []Phase
}

// CountAt returns the scheduled player count at the given elapsed time.
// Beyond the last phase the final target holds.
func (s Schedule) CountAt(elapsed time.Duration) int {
	prev := float64(s.Initial)
	for _, ph := range s.Phases {
		if elapsed <= ph.Length {
			if ph.Length <= 0 {
				return ph.Target
			}
			f := float64(elapsed) / float64(ph.Length)
			return int(math.Round(prev + (float64(ph.Target)-prev)*f))
		}
		elapsed -= ph.Length
		prev = float64(ph.Target)
	}
	return int(prev)
}

// Duration returns the schedule's total length.
func (s Schedule) Duration() time.Duration {
	var total time.Duration
	for _, ph := range s.Phases {
		total += ph.Length
	}
	return total
}

// ScalabilitySchedule is Experiment 2's profile: ~120 players at start,
// joining steadily up to `peak` (1200 in the paper) over `ramp`.
func ScalabilitySchedule(peak int, ramp time.Duration) Schedule {
	initial := peak / 10
	return Schedule{
		Initial: initial,
		Phases:  []Phase{{Length: ramp, Target: peak}},
	}
}

// ElasticitySchedule is Experiment 3's profile: rise to `high` (800), drop
// to `low` (200), rise again to `mid` (~600).
func ElasticitySchedule(high, low, mid int, phase time.Duration) Schedule {
	return Schedule{
		Initial: 0,
		Phases: []Phase{
			{Length: phase, Target: high},
			{Length: phase / 4, Target: high}, // hold
			{Length: phase / 2, Target: low},
			{Length: phase / 4, Target: low}, // hold
			{Length: phase / 2, Target: mid},
			{Length: phase / 4, Target: mid}, // hold
		},
	}
}
