package workload

import (
	"net"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
)

// TestConnBenchSmall runs the multiplexed driver at toy scale against an
// in-process reactor broker: every connection must establish, subscribe, and
// see stamped deliveries under churn.
func TestConnBenchSmall(t *testing.T) {
	if !broker.ReactorAvailable() {
		t.Skip("reactor core unavailable")
	}
	b := broker.New(broker.Options{Name: "connbench"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cs := broker.NewConnServer(b, broker.ServeOptions{Core: broker.CoreReactor})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cs.Serve(ln) //nolint:errcheck
	}()
	defer func() {
		b.Close()
		ln.Close()
		<-done
	}()

	res, err := RunConnBench(ConnBenchOptions{
		Addr:        ln.Addr().String(),
		Conns:       200,
		Groups:      8,
		PublishRate: 200,
		Duration:    1500 * time.Millisecond,
		ChurnPerSec: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Achieved != 200 {
		t.Fatalf("achieved %d/200 connections (fd limit %d)", res.Achieved, res.FDLimit)
	}
	if res.Published == 0 || res.Delivered == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	if res.ChurnOps == 0 {
		t.Fatalf("no churn performed: %+v", res)
	}
	if res.DeliveryP99us <= 0 {
		t.Fatalf("no latency samples: %+v", res)
	}
	if res.ConnsPerSec <= 0 {
		t.Fatalf("bad connect rate: %+v", res)
	}
}

// TestConnBenchMultiSource exercises explicit source-IP binding
// (127.0.0.2/127.0.0.3 need no configuration on Linux loopback).
func TestConnBenchMultiSource(t *testing.T) {
	if !broker.ReactorAvailable() {
		t.Skip("reactor core unavailable")
	}
	b := broker.New(broker.Options{Name: "connbench"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cs := broker.NewConnServer(b, broker.ServeOptions{Core: broker.CoreReactor})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cs.Serve(ln) //nolint:errcheck
	}()
	defer func() {
		b.Close()
		ln.Close()
		<-done
	}()

	res, err := RunConnBench(ConnBenchOptions{
		Addr:        ln.Addr().String(),
		SourceIPs:   []string{"127.0.0.2", "127.0.0.3"},
		Conns:       50,
		Groups:      4,
		PublishRate: 100,
		Duration:    500 * time.Millisecond,
		ChurnPerSec: -1, // disabled
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Achieved != 50 {
		t.Fatalf("achieved %d/50", res.Achieved)
	}
	if res.ChurnOps != 0 {
		t.Fatalf("churn ran while disabled: %+v", res)
	}
}
