//go:build linux

package workload

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"syscall"
	"time"

	"github.com/dynamoth/dynamoth/internal/loadgen"
	"github.com/dynamoth/dynamoth/internal/resp"
	"github.com/dynamoth/dynamoth/internal/transport"
)

// fdHeadroom is the descriptor slack kept free for the driver's own files,
// epoll instance, and the publisher connection.
const fdHeadroom = 256

// benchConn is one multiplexed subscriber connection.
type benchConn struct {
	fd     int
	group  int
	parser resp.CommandParser
	out    []byte // pending outbound bytes (partial writes carry over)
	state  int    // 0 connecting, 1 established, 2 dead
}

const (
	stConnecting = 0
	stUp         = 1
	stDead       = 2
)

// RunConnBench drives a broker with opts.Conns multiplexed subscriber
// connections and measures connect throughput and delivery latency under
// churn. See ConnBenchOptions.
func RunConnBench(opts ConnBenchOptions) (*ConnBenchResult, error) {
	if opts.Groups <= 0 {
		opts.Groups = 64
	}
	if opts.PublishRate <= 0 {
		opts.PublishRate = 50
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.ChurnPerSec < 0 {
		opts.ChurnPerSec = 0
	} else if opts.ChurnPerSec == 0 {
		opts.ChurnPerSec = 100
	}
	if opts.ConnectBatch <= 0 {
		opts.ConnectBatch = 256
	}

	res := &ConnBenchResult{Target: opts.Conns}
	limit, _ := transport.RaiseFDLimit(uint64(opts.Conns) + fdHeadroom)
	res.FDLimit = limit
	conns := opts.Conns
	if budget := int(limit) - fdHeadroom; limit > 0 && conns > budget {
		conns = budget
	}
	if conns <= 0 {
		return nil, fmt.Errorf("workload: no fd budget for connections (limit %d)", limit)
	}

	dst, err := resolveTCP(opts.Addr)
	if err != nil {
		return nil, err
	}
	srcs, err := resolveSources(opts.SourceIPs)
	if err != nil {
		return nil, err
	}

	d := &connDriver{opts: opts, dst: dst, srcs: srcs, t0: time.Now()}
	if d.epfd, err = syscall.EpollCreate1(syscall.EPOLL_CLOEXEC); err != nil {
		return nil, fmt.Errorf("workload: epoll_create1: %w", err)
	}
	defer d.close()

	// Phase 1: ramp every connection up (non-blocking connects in bounded
	// batches, SUBSCRIBE pipelined the moment the connect completes).
	rampStart := time.Now()
	if err := d.ramp(conns); err != nil {
		return nil, err
	}
	res.Achieved = d.up
	res.ConnectSecs = time.Since(rampStart).Seconds()
	if res.ConnectSecs > 0 {
		res.ConnsPerSec = float64(res.Achieved) / res.ConnectSecs
	}
	if res.Achieved == 0 {
		return nil, fmt.Errorf("workload: no connections established")
	}
	if opts.OnEstablished != nil {
		opts.OnEstablished(res.Achieved)
	}

	// Phase 2: steady-state window — publisher ticks, subscribers receive,
	// churn cycles run — all inside the same event loop.
	if err := d.measure(opts.Duration); err != nil {
		return nil, err
	}
	res.Published = d.published
	res.Delivered = d.delivered
	res.ControlMsgs = d.controlMsgs
	res.ChurnOps = d.churnOps
	res.Samples = len(d.samples)
	res.StampErrors = d.stampErrs
	res.BehindSchedule = d.behind
	res.DeliveryP50us, res.DeliveryP99us, res.DeliveryMaxus = quantilesUs(d.samples)
	return res, nil
}

func resolveTCP(addr string) (*syscall.SockaddrInet4, error) {
	ta, err := net.ResolveTCPAddr("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("workload: resolving %s: %w", addr, err)
	}
	ip4 := ta.IP.To4()
	if ip4 == nil {
		return nil, fmt.Errorf("workload: %s is not IPv4", addr)
	}
	sa := &syscall.SockaddrInet4{Port: ta.Port}
	copy(sa.Addr[:], ip4)
	return sa, nil
}

func resolveSources(ips []string) ([]*syscall.SockaddrInet4, error) {
	out := make([]*syscall.SockaddrInet4, 0, len(ips))
	for _, s := range ips {
		ip := net.ParseIP(s)
		if ip == nil || ip.To4() == nil {
			return nil, fmt.Errorf("workload: bad source IP %q", s)
		}
		sa := &syscall.SockaddrInet4{}
		copy(sa.Addr[:], ip.To4())
		out = append(out, sa)
	}
	return out, nil
}

type connDriver struct {
	opts ConnBenchOptions
	dst  *syscall.SockaddrInet4
	srcs []*syscall.SockaddrInet4
	t0   time.Time

	epfd   int
	table  []*benchConn // fd-indexed
	events []syscall.EpollEvent
	rbuf   []byte

	up        int
	nextSrc   int
	pubFD     int // publisher connection, multiplexed like the rest
	pubConn   *benchConn
	pubGroup  int
	published   uint64
	delivered   uint64
	subAcks     uint64
	controlMsgs uint64
	churnOps    uint64
	stampErrs   uint64
	behind      uint64
	samples     []int64 // latency ns
}

func (d *connDriver) close() {
	for _, c := range d.table {
		if c != nil && c.state != stDead {
			syscall.Close(c.fd) //nolint:errcheck
		}
	}
	syscall.Close(d.epfd) //nolint:errcheck
}

func (d *connDriver) put(c *benchConn) {
	if c.fd >= len(d.table) {
		n := len(d.table)*2 + 1024
		if n <= c.fd {
			n = c.fd + 1
		}
		grown := make([]*benchConn, n)
		copy(grown, d.table)
		d.table = grown
	}
	d.table[c.fd] = c
}

// dial starts one non-blocking connect bound to the next source IP.
func (d *connDriver) dial(group int) (*benchConn, error) {
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM|syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		return nil, err
	}
	if len(d.srcs) > 0 {
		src := d.srcs[d.nextSrc%len(d.srcs)]
		d.nextSrc++
		if err := syscall.Bind(fd, src); err != nil {
			syscall.Close(fd) //nolint:errcheck
			return nil, fmt.Errorf("bind %v: %w", src.Addr, err)
		}
	}
	err = syscall.Connect(fd, d.dst)
	if err != nil && err != syscall.EINPROGRESS {
		syscall.Close(fd) //nolint:errcheck
		return nil, err
	}
	c := &benchConn{fd: fd, group: group, state: stConnecting}
	ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN | syscall.EPOLLOUT | syscall.EPOLLRDHUP), Fd: int32(fd)}
	if err := syscall.EpollCtl(d.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		syscall.Close(fd) //nolint:errcheck
		return nil, err
	}
	d.put(c)
	return c, nil
}

func (d *connDriver) kill(c *benchConn) {
	if c.state == stDead {
		return
	}
	if c.state == stUp {
		d.up--
	}
	c.state = stDead
	syscall.Close(c.fd) //nolint:errcheck
	if c.fd < len(d.table) {
		d.table[c.fd] = nil
	}
}

// flush pushes c.out; on a full kernel buffer the remainder stays queued and
// EPOLLOUT (level-triggered) retries it next pass.
func (d *connDriver) flush(c *benchConn) {
	for len(c.out) > 0 {
		n, err := syscall.Write(c.fd, c.out)
		if n > 0 {
			c.out = c.out[:copy(c.out, c.out[n:])]
		}
		if err == syscall.EAGAIN {
			return
		}
		if err != nil {
			d.kill(c)
			return
		}
	}
}

// ramp establishes total connections with at most opts.ConnectBatch
// connects in flight.
func (d *connDriver) ramp(total int) error {
	started, failed := 0, 0
	inflight := 0
	deadline := time.Now().Add(3 * time.Minute)
	if len(d.events) == 0 {
		d.events = make([]syscall.EpollEvent, 512)
		d.rbuf = make([]byte, 64<<10)
	}
	for d.up < total-failed {
		for inflight < d.opts.ConnectBatch && started < total {
			c, err := d.dial(started % d.opts.Groups)
			if err != nil {
				// Out of ports or fds: everything still in flight counts;
				// stop starting more.
				failed = total - started
				break
			}
			_ = c
			started++
			inflight++
		}
		n, err := syscall.EpollWait(d.epfd, d.events, 1000)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return fmt.Errorf("workload: epoll_wait: %w", err)
		}
		for i := 0; i < n; i++ {
			ev := &d.events[i]
			c := d.table[int(ev.Fd)]
			if c == nil {
				continue
			}
			wasConnecting := c.state == stConnecting
			d.handleEvent(c, ev.Events)
			if wasConnecting && c.state != stConnecting {
				inflight--
				if c.state == stDead {
					failed++
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("workload: ramp stalled at %d/%d connections", d.up, total)
		}
	}

	// Barrier: the kernel completes connects long before the broker has
	// accepted the session and processed its SUBSCRIBE — measuring before
	// every ack arrives would publish into channels with no server-side
	// subscribers yet. Wait until each established connection is
	// acknowledged.
	for d.subAcks < uint64(d.up) {
		n, err := syscall.EpollWait(d.epfd, d.events, 1000)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return fmt.Errorf("workload: epoll_wait: %w", err)
		}
		for i := 0; i < n; i++ {
			ev := &d.events[i]
			if c := d.table[int(ev.Fd)]; c != nil {
				d.handleEvent(c, ev.Events)
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("workload: subscribe acks stalled at %d/%d", d.subAcks, d.up)
		}
	}
	return nil
}

// handleEvent advances one connection's state machine.
func (d *connDriver) handleEvent(c *benchConn, events uint32) {
	if events&uint32(syscall.EPOLLHUP|syscall.EPOLLERR) != 0 {
		d.kill(c)
		return
	}
	if c.state == stConnecting && events&uint32(syscall.EPOLLOUT) != 0 {
		if soerr, err := syscall.GetsockoptInt(c.fd, syscall.SOL_SOCKET, syscall.SO_ERROR); err != nil || soerr != 0 {
			d.kill(c)
			return
		}
		c.state = stUp
		d.up++
		syscall.SetsockoptInt(c.fd, syscall.IPPROTO_TCP, syscall.TCP_NODELAY, 1) //nolint:errcheck
		c.out = resp.AppendCommandStrings(c.out, "SUBSCRIBE", groupChannel(c.group))
	}
	if len(c.out) > 0 {
		d.flush(c)
		if c.state == stDead {
			return
		}
	}
	if events&uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP) != 0 {
		d.read(c)
	}
}

// read drains the socket and consumes every complete server frame.
func (d *connDriver) read(c *benchConn) {
	for {
		n, err := syscall.Read(c.fd, d.rbuf)
		if n > 0 {
			c.parser.Feed(d.rbuf[:n])
			for {
				args, perr := c.parser.Next()
				if perr != nil {
					d.kill(c)
					return
				}
				if args == nil {
					break
				}
				d.consume(c, args)
			}
			if n < len(d.rbuf) {
				return
			}
			continue
		}
		switch err {
		case syscall.EAGAIN:
			return
		case syscall.EINTR:
			continue
		default: // nil (EOF) or a hard error
			d.kill(c)
			return
		}
	}
}

// consume handles one server frame: latency-stamped deliveries feed the
// sample buffer; acks and publish replies are counted or ignored. A live
// node also pushes control envelopes (SWITCH / plan announcements) on
// subscribed channels — those are binary, never digit-led, and are counted
// apart from data deliveries.
func (d *connDriver) consume(c *benchConn, args [][]byte) {
	if len(args) == 3 && string(args[0]) == "subscribe" {
		d.subAcks++
		return
	}
	if len(args) == 3 && string(args[0]) == "message" {
		p := args[2]
		if len(p) == 0 || p[0] < '0' || p[0] > '9' {
			d.controlMsgs++
			return
		}
		d.delivered++
		stamp, err := strconv.ParseInt(string(p), 10, 64)
		if err != nil {
			d.stampErrs++
			return
		}
		lat := time.Since(d.t0).Nanoseconds() - stamp
		if lat >= 0 && len(d.samples) < 1<<20 {
			d.samples = append(d.samples, lat)
		}
	}
	// Everything else: subscribe/unsubscribe acks, +OK, :N publish replies.
}

func groupChannel(g int) string { return "bench.g" + strconv.Itoa(g) }

// measure runs the steady-state window: the publisher stamps messages into
// round-robin groups at opts.PublishRate while churn cycles unsubscribe and
// resubscribe existing connections.
//
// Publishing is open-loop: the tick plan is fixed up front and each message
// is stamped with its *intended* send instant, so when the event loop (or
// the broker's backpressure) makes a send late, the lag lands in the
// delivery quantiles instead of vanishing. The previous version stamped at
// actual send time and re-based the next tick off "now" whenever it fell
// behind — the textbook coordinated-omission pattern.
func (d *connDriver) measure(window time.Duration) error {
	pub, err := d.dial(-1)
	if err != nil {
		return fmt.Errorf("workload: publisher dial: %w", err)
	}
	d.pubConn = pub

	measureStart := time.Now()
	end := measureStart.Add(window)
	pubEvery := time.Second / time.Duration(d.opts.PublishRate)
	sched := loadgen.NewSchedule(loadgen.ArrivalPeriodic, float64(d.opts.PublishRate), 0, 0)
	ticks := sched.Ticks()
	nextPub := measureStart.Add(ticks.Next())
	var nextChurn time.Time
	var churnEvery time.Duration
	if d.opts.ChurnPerSec > 0 {
		churnEvery = time.Second / time.Duration(d.opts.ChurnPerSec)
		nextChurn = time.Now()
	}
	churnCursor := 0

	for time.Now().Before(end) {
		now := time.Now()
		// Send every tick that has come due, bounded per pass so a long
		// stall drains as a short burst interleaved with epoll servicing
		// rather than one monster write. Ticks are never re-planned.
		for burst := 0; d.pubConn.state == stUp && now.After(nextPub) && burst < 64; burst++ {
			intended := nextPub
			if lag := now.Sub(intended); lag > pubEvery {
				d.behind++
			}
			stamp := strconv.FormatInt(intended.Sub(d.t0).Nanoseconds(), 10)
			d.pubConn.out = resp.AppendCommandStrings(d.pubConn.out, "PUBLISH", groupChannel(d.pubGroup%d.opts.Groups), stamp)
			d.pubGroup++
			d.published++
			d.flush(d.pubConn)
			if d.pubConn.state == stDead {
				return fmt.Errorf("workload: publisher connection died")
			}
			nextPub = measureStart.Add(ticks.Next())
		}
		if churnEvery > 0 && now.After(nextChurn) {
			if c := d.nextUp(&churnCursor); c != nil {
				ch := groupChannel(c.group)
				c.out = resp.AppendCommandStrings(c.out, "UNSUBSCRIBE", ch)
				c.out = resp.AppendCommandStrings(c.out, "SUBSCRIBE", ch)
				d.flush(c)
				d.churnOps++
			}
			nextChurn = nextChurn.Add(churnEvery)
			if nextChurn.Before(now) {
				nextChurn = now.Add(churnEvery)
			}
		}

		n, err := syscall.EpollWait(d.epfd, d.events, 1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return fmt.Errorf("workload: epoll_wait: %w", err)
		}
		for i := 0; i < n; i++ {
			ev := &d.events[i]
			c := d.table[int(ev.Fd)]
			if c == nil {
				continue
			}
			d.handleEvent(c, ev.Events)
		}
	}
	return nil
}

// nextUp scans for the next established connection after *cursor.
func (d *connDriver) nextUp(cursor *int) *benchConn {
	for scanned := 0; scanned < len(d.table); scanned++ {
		*cursor = (*cursor + 1) % len(d.table)
		if c := d.table[*cursor]; c != nil && c.state == stUp && c != d.pubConn {
			return c
		}
	}
	return nil
}

func quantilesUs(samples []int64) (p50, p99, max float64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(samples)-1))
		return float64(samples[i]) / 1e3
	}
	return at(0.5), at(0.99), float64(samples[len(samples)-1]) / 1e3
}
