//go:build !linux

package workload

import "errors"

// ErrConnBenchUnsupported is returned by RunConnBench off Linux: the driver
// multiplexes its connections on a raw epoll loop.
var ErrConnBenchUnsupported = errors.New("workload: connection bench requires linux (epoll)")

// RunConnBench is unavailable on this platform.
func RunConnBench(ConnBenchOptions) (*ConnBenchResult, error) {
	return nil, ErrConnBenchUnsupported
}
