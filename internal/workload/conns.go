package workload

import "time"

// ConnBenchOptions configures the C100k connection-scale driver: one process
// holding tens of thousands of subscriber connections against a broker, all
// multiplexed on the driver's own epoll loop (a goroutine-per-connection
// load generator would hit the same per-connection memory wall the reactor
// core exists to remove — the driver must be lighter than the server it
// measures).
type ConnBenchOptions struct {
	// Addr is the broker's RESP address.
	Addr string
	// SourceIPs are local addresses to bind client sockets to, round-robin.
	// One source IP caps out at the ~28k ephemeral ports of a single
	// (src,dst) pair; going past that needs more loopback IPs (127.0.0.2,
	// 127.0.0.3, … work unconfigured on Linux). Empty = kernel default.
	SourceIPs []string
	// Conns is the target connection count. The driver caps it to the
	// process fd budget (soft RLIMIT_NOFILE minus headroom) and reports
	// both numbers.
	Conns int
	// Groups is how many channels the subscribers spread over (default 64).
	Groups int
	// PublishRate is the publisher's messages/second across all groups
	// (default 50).
	PublishRate int
	// Duration is the steady-state measurement window after all
	// connections are up (default 5s).
	Duration time.Duration
	// ChurnPerSec is how many connections per second unsubscribe and
	// resubscribe during the window (default 100) — the harness must show
	// delivery latency holding under subscription churn, not just at rest.
	ChurnPerSec int
	// ConnectBatch bounds concurrent non-blocking connects (default 256).
	ConnectBatch int
	// OnEstablished, when non-nil, runs after the ramp completes and
	// before the measurement window, with every connection still held —
	// the orchestrator's chance to sample server-side memory.
	OnEstablished func(achieved int)
}

// ConnBenchResult is the driver-side outcome. Server-side figures (RSS,
// conn counters) are collected by the orchestrator that owns the broker
// process.
type ConnBenchResult struct {
	// Target is the requested connection count, Achieved what the driver
	// actually established, FDLimit the soft limit that capped it.
	Target   int    `json:"target"`
	Achieved int    `json:"achieved"`
	FDLimit  uint64 `json:"fdLimit"`
	// ConnectSecs is the wall time to establish (and subscribe) every
	// connection; ConnsPerSec the resulting accept throughput.
	ConnectSecs float64 `json:"connectSecs"`
	ConnsPerSec float64 `json:"connsPerSec"`
	// Published and Delivered count timestamped messages sent and
	// received during the window; ControlMsgs counts server control
	// envelopes (SWITCH / plan announcements) received on subscribed
	// channels; ChurnOps counts unsubscribe+resubscribe cycles performed.
	Published   uint64 `json:"published"`
	Delivered   uint64 `json:"delivered"`
	ControlMsgs uint64 `json:"controlMsgs"`
	ChurnOps    uint64 `json:"churnOps"`
	// Delivery latency quantiles over the window, microseconds
	// (publish-stamp to driver receipt, same process clock).
	DeliveryP50us float64 `json:"deliveryP50Us"`
	DeliveryP99us float64 `json:"deliveryP99Us"`
	DeliveryMaxus float64 `json:"deliveryMaxUs"`
	// Samples is how many deliveries carried a usable stamp; StampErrors
	// counts digit-led payloads that still failed to parse (a non-zero
	// value means cross-frame corruption — a driver or server bug).
	Samples     int    `json:"samples"`
	StampErrors uint64 `json:"stampErrors"`
	// BehindSchedule counts publisher ticks sent more than one period past
	// their intended instant. Stamps carry the intended time, so that lag
	// also lands in the latency quantiles instead of being forgiven — a
	// spike here with quiet quantiles would mean the driver, not the
	// broker, was the bottleneck.
	BehindSchedule uint64 `json:"behindSchedule"`
}
