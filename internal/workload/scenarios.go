package workload

import (
	"fmt"
	"time"

	"github.com/dynamoth/dynamoth/internal/loadgen"
)

// Scenario describes one entry of the benchmark scenario suite: a named
// traffic shape the open-loop harness (cmd/experiments -run scenarios) drives
// against a real dynamoth-node. The four stock shapes cover the quadrants the
// paper's workloads span — fan-in, fan-out, churn-heavy, and a blend — so a
// regression in any one delivery path shows up in its own BENCH json instead
// of averaging away.
type Scenario struct {
	Name        string
	Description string

	// Publishers each run an independent open-loop schedule of
	// RatePerPublisher msgs/s with the given arrival process.
	Publishers       int
	RatePerPublisher float64
	Arrival          loadgen.Arrival

	// Channels is how many distinct channels publishers spread over
	// (publisher p publishes to channel p mod Channels).
	Channels int

	// Subscribers each subscribe to SubsPerSubscriber of the channels
	// (subscriber s takes channels s, s+1, ... mod Channels).
	Subscribers       int
	SubsPerSubscriber int

	// PatternSubscribers, when non-zero, adds raw RESP subscribers using
	// PSUBSCRIBE on Pattern — the chat shape exercises the broker's glob
	// delivery path, which the high-level client does not wrap.
	PatternSubscribers int
	Pattern            string

	// ChurnPerSec, when non-zero, runs a side loop of subscribe/unsubscribe
	// pairs per second against rotating channels for presence-style load.
	ChurnPerSec float64

	Duration     time.Duration
	PayloadBytes int

	// Components, when non-empty, makes this a blend: each component runs
	// concurrently with its own recorder chained into a shared one. The
	// outer fields other than Name/Description/Duration are ignored.
	Components []Scenario
}

// ChannelName returns the i-th channel of the scenario's namespace.
func (s Scenario) ChannelName(i int) string {
	return fmt.Sprintf("scn.%s.%d", s.Name, i%s.Channels)
}

// OfferedPerSec is the scenario's aggregate publish rate.
func (s Scenario) OfferedPerSec() float64 {
	if len(s.Components) > 0 {
		var sum float64
		for _, c := range s.Components {
			sum += c.OfferedPerSec()
		}
		return sum
	}
	return float64(s.Publishers) * s.RatePerPublisher
}

// Scale shrinks (or grows) the scenario's load by factor f, keeping the
// shape: counts scale but never drop below the minimum that still exercises
// the shape (one publisher, one subscriber, one channel). CI runs the suite
// at 0.1 to keep wall time down; the numbers it asserts on are structural
// (drops, stamp errors, dominance), not absolute latency.
func (s Scenario) Scale(f float64) Scenario {
	if f == 1 || f <= 0 {
		return s
	}
	n := func(v int) int {
		if v == 0 {
			return 0
		}
		if scaled := int(float64(v) * f); scaled > 1 {
			return scaled
		}
		return 1
	}
	s.Publishers = n(s.Publishers)
	s.Channels = n(s.Channels)
	s.Subscribers = n(s.Subscribers)
	s.PatternSubscribers = n(s.PatternSubscribers)
	if s.SubsPerSubscriber > s.Channels {
		s.SubsPerSubscriber = s.Channels
	}
	if s.ChurnPerSec > 0 {
		s.ChurnPerSec = s.ChurnPerSec * f
		if s.ChurnPerSec < 1 {
			s.ChurnPerSec = 1
		}
	}
	if d := time.Duration(float64(s.Duration) * f); d >= 2*time.Second {
		s.Duration = d
	} else if s.Duration > 2*time.Second {
		s.Duration = 2 * time.Second
	}
	for i := range s.Components {
		s.Components[i] = s.Components[i].Scale(f)
	}
	return s
}

// Validate rejects shapes the harness cannot run.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario has no name")
	}
	if len(s.Components) > 0 {
		for _, c := range s.Components {
			if err := c.Validate(); err != nil {
				return fmt.Errorf("%s: %w", s.Name, err)
			}
		}
		return nil
	}
	if s.Publishers <= 0 || s.RatePerPublisher <= 0 || s.Channels <= 0 || s.Duration <= 0 {
		return fmt.Errorf("%s: publishers/rate/channels/duration must be positive", s.Name)
	}
	if s.Subscribers > 0 && (s.SubsPerSubscriber <= 0 || s.SubsPerSubscriber > s.Channels) {
		return fmt.Errorf("%s: subsPerSubscriber %d out of range 1..%d", s.Name, s.SubsPerSubscriber, s.Channels)
	}
	if s.PatternSubscribers > 0 && s.Pattern == "" {
		return fmt.Errorf("%s: pattern subscribers need a pattern", s.Name)
	}
	return nil
}

// Scenarios returns the stock suite at full scale.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "iot_fanin",
			Description: "Many paced sensors funnel into few aggregator subscriptions (fan-in; periodic arrivals).",
			Publishers:  200, RatePerPublisher: 5, Arrival: loadgen.ArrivalPeriodic,
			Channels: 20, Subscribers: 4, SubsPerSubscriber: 20,
			Duration: 20 * time.Second, PayloadBytes: 64,
		},
		{
			Name:        "market_fanout",
			Description: "Few hot feed channels replicated to many subscribers (fan-out; the per-delivery cost path).",
			Publishers:  4, RatePerPublisher: 50, Arrival: loadgen.ArrivalPeriodic,
			Channels: 4, Subscribers: 150, SubsPerSubscriber: 2,
			Duration: 20 * time.Second, PayloadBytes: 200,
		},
		{
			Name:        "chat_churn",
			Description: "Bursty rooms with presence churn and glob pattern subscriptions (PSUBSCRIBE delivery path).",
			Publishers:  50, RatePerPublisher: 4, Arrival: loadgen.ArrivalPoisson,
			Channels: 50, Subscribers: 30, SubsPerSubscriber: 3,
			PatternSubscribers: 4, Pattern: "scn.chat_churn.*",
			ChurnPerSec: 50,
			Duration:    20 * time.Second, PayloadBytes: 120,
		},
		{
			Name:        "mixed",
			Description: "Multi-tenant blend of the three shapes on one broker, with per-component and blended tails.",
			Duration:    20 * time.Second,
			Components: []Scenario{
				{
					Name: "mixed_iot", Publishers: 80, RatePerPublisher: 5, Arrival: loadgen.ArrivalPeriodic,
					Channels: 8, Subscribers: 2, SubsPerSubscriber: 8,
					Duration: 20 * time.Second, PayloadBytes: 64,
				},
				{
					Name: "mixed_market", Publishers: 2, RatePerPublisher: 50, Arrival: loadgen.ArrivalPeriodic,
					Channels: 2, Subscribers: 60, SubsPerSubscriber: 1,
					Duration: 20 * time.Second, PayloadBytes: 200,
				},
				{
					Name: "mixed_chat", Publishers: 20, RatePerPublisher: 4, Arrival: loadgen.ArrivalPoisson,
					Channels: 20, Subscribers: 12, SubsPerSubscriber: 2,
					ChurnPerSec: 20,
					Duration:    20 * time.Second, PayloadBytes: 120,
				},
			},
		},
	}
}
