package workload

import (
	"strings"
	"testing"
	"time"
)

func TestScenariosValid(t *testing.T) {
	suite := Scenarios()
	if len(suite) != 4 {
		t.Fatalf("stock suite has %d scenarios, want 4", len(suite))
	}
	seen := map[string]bool{}
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.OfferedPerSec() <= 0 {
			t.Errorf("%s: zero offered rate", s.Name)
		}
	}
	for _, want := range []string{"iot_fanin", "market_fanout", "chat_churn", "mixed"} {
		if !seen[want] {
			t.Errorf("suite missing %q", want)
		}
	}
}

func TestScenarioScale(t *testing.T) {
	for _, s := range Scenarios() {
		small := s.Scale(0.1)
		if err := small.Validate(); err != nil {
			t.Errorf("%s scaled 0.1: %v", s.Name, err)
		}
		if len(s.Components) == 0 {
			if small.Publishers <= 0 || small.Publishers > s.Publishers {
				t.Errorf("%s: publishers %d -> %d", s.Name, s.Publishers, small.Publishers)
			}
			if small.SubsPerSubscriber > small.Channels {
				t.Errorf("%s: subsPerSubscriber %d > channels %d after scale",
					s.Name, small.SubsPerSubscriber, small.Channels)
			}
		}
		if small.Duration < 2*time.Second {
			t.Errorf("%s: scaled duration %v too short to measure", s.Name, small.Duration)
		}
		if same := s.Scale(1); same.Publishers != s.Publishers || same.Duration != s.Duration {
			t.Errorf("%s: Scale(1) changed the scenario", s.Name)
		}
	}
}

func TestScenarioChannelName(t *testing.T) {
	s := Scenario{Name: "iot_fanin", Channels: 3}
	if got := s.ChannelName(4); got != "scn.iot_fanin.1" {
		t.Fatalf("ChannelName(4) = %q", got)
	}
	if !strings.HasPrefix(s.ChannelName(0), "scn.") {
		t.Fatal("channel names must live under the scn. namespace")
	}
}

func TestScenarioValidateRejects(t *testing.T) {
	bad := []Scenario{
		{},
		{Name: "x", Publishers: 1, RatePerPublisher: 1, Channels: 0, Duration: time.Second},
		{Name: "x", Publishers: 1, RatePerPublisher: 1, Channels: 2, Duration: time.Second,
			Subscribers: 1, SubsPerSubscriber: 3},
		{Name: "x", Publishers: 1, RatePerPublisher: 1, Channels: 1, Duration: time.Second,
			PatternSubscribers: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, s)
		}
	}
}
