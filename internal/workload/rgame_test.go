package workload

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.FillDefaults()
	if c.TilesX != 8 || c.TilesY != 8 || c.WorldSize != 1000 {
		t.Fatalf("defaults=%+v", c)
	}
	if c.UpdatesPerSec != 3 || c.PayloadBytes != 200 {
		t.Fatalf("defaults=%+v", c)
	}
}

func TestTileNameMapping(t *testing.T) {
	c := Config{TilesX: 4, TilesY: 4, WorldSize: 400}.FillDefaults()
	tests := []struct {
		x, y float64
		want string
	}{
		{0, 0, "tile-0-0"},
		{399, 399, "tile-3-3"},
		{150, 50, "tile-1-0"},
		{-10, 500, "tile-0-3"}, // clamped
	}
	for _, tt := range tests {
		if got := c.TileName(tt.x, tt.y); got != tt.want {
			t.Fatalf("TileName(%f,%f)=%q want %q", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestPlayerMovesTowardWaypoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPlayer(1, Config{Speed: 100}, rng)
	x0, y0 := p.Position()
	dist0 := dist(x0, y0, p.tx, p.ty)
	for i := 0; i < 10; i++ {
		p.Advance(time.Duration(i)*100*time.Millisecond, 100*time.Millisecond, rng)
	}
	x1, y1 := p.Position()
	dist1 := dist(x1, y1, p.tx, p.ty)
	if dist1 >= dist0 && dist0 > 100 {
		t.Fatalf("player not approaching waypoint: %f -> %f", dist0, dist1)
	}
}

func dist(x1, y1, x2, y2 float64) float64 {
	dx, dy := x2-x1, y2-y1
	return dx*dx + dy*dy
}

func TestPlayerPausesAtWaypoint(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPlayer(1, Config{Speed: 1e9}, rng) // reaches waypoint instantly
	p.Advance(0, time.Second, rng)
	if p.pausedUntil <= 0 {
		t.Fatal("no pause after reaching waypoint")
	}
	// During the pause the player stays put.
	x0, y0 := p.Position()
	p.Advance(time.Millisecond, time.Second, rng)
	if x1, y1 := p.Position(); x1 != x0 || y1 != y0 {
		t.Fatal("player moved during pause")
	}
}

func TestPlayerTileTransitions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{TilesX: 8, TilesY: 8, WorldSize: 1000, Speed: 200}.FillDefaults()
	p := NewPlayer(1, cfg, rng)
	changes := 0
	elapsed := time.Duration(0)
	for i := 0; i < 2000; i++ {
		dt := 100 * time.Millisecond
		if changed, old := p.Advance(elapsed, dt, rng); changed {
			changes++
			if old == p.Tile() {
				t.Fatal("old tile equals new tile on change")
			}
			if !strings.HasPrefix(old, "tile-") || !strings.HasPrefix(p.Tile(), "tile-") {
				t.Fatalf("bad tile names %q %q", old, p.Tile())
			}
		}
		elapsed += dt
	}
	// Over 200 game-seconds at speed 200 on 125-unit tiles, many
	// transitions must occur.
	if changes < 10 {
		t.Fatalf("only %d tile changes in 200s of movement", changes)
	}
}

func TestPlayerUpdatePayload(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewPlayer(42, Config{PayloadBytes: 64}, rng)
	buf := p.Update(nil)
	if len(buf) != 64 {
		t.Fatalf("payload size=%d", len(buf))
	}
	if !strings.HasPrefix(string(buf), "p=42 ") {
		t.Fatalf("payload=%q", buf)
	}
	// Reuse path keeps size.
	buf2 := p.Update(buf)
	if len(buf2) != 64 {
		t.Fatalf("reused payload size=%d", len(buf2))
	}
}

func TestScheduleCountAt(t *testing.T) {
	s := Schedule{
		Initial: 100,
		Phases: []Phase{
			{Length: 100 * time.Second, Target: 200},
			{Length: 50 * time.Second, Target: 50},
		},
	}
	tests := []struct {
		at   time.Duration
		want int
	}{
		{0, 100},
		{50 * time.Second, 150},
		{100 * time.Second, 200},
		{125 * time.Second, 125},
		{150 * time.Second, 50},
		{999 * time.Second, 50}, // beyond the end
	}
	for _, tt := range tests {
		if got := s.CountAt(tt.at); got != tt.want {
			t.Fatalf("CountAt(%v)=%d want %d", tt.at, got, tt.want)
		}
	}
	if got := s.Duration(); got != 150*time.Second {
		t.Fatalf("Duration=%v", got)
	}
}

func TestScalabilitySchedule(t *testing.T) {
	s := ScalabilitySchedule(1200, 1000*time.Second)
	if got := s.CountAt(0); got != 120 {
		t.Fatalf("initial=%d", got)
	}
	if got := s.CountAt(1000 * time.Second); got != 1200 {
		t.Fatalf("peak=%d", got)
	}
	mid := s.CountAt(500 * time.Second)
	if mid < 600 || mid > 720 {
		t.Fatalf("midpoint=%d", mid)
	}
}

func TestElasticitySchedule(t *testing.T) {
	s := ElasticitySchedule(800, 200, 600, 400*time.Second)
	if got := s.CountAt(400 * time.Second); got != 800 {
		t.Fatalf("high=%d", got)
	}
	if got := s.CountAt(700 * time.Second); got != 200 {
		t.Fatalf("low=%d", got)
	}
	if got := s.CountAt(s.Duration()); got != 600 {
		t.Fatalf("final=%d", got)
	}
	// Monotonic pieces: count during the drop decreases.
	c1 := s.CountAt(550 * time.Second)
	c2 := s.CountAt(650 * time.Second)
	if c1 <= c2 {
		t.Fatalf("drop not decreasing: %d then %d", c1, c2)
	}
}

func TestScheduleZeroLengthPhase(t *testing.T) {
	s := Schedule{Initial: 5, Phases: []Phase{{Length: 0, Target: 50}}}
	if got := s.CountAt(0); got != 50 {
		t.Fatalf("zero-length phase CountAt(0)=%d", got)
	}
}

func TestHotspotBiasSkewsTilePopulations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	uniform := Config{}.FillDefaults()
	skewed := Config{Hotspots: 3, HotspotBias: 0.5}.FillDefaults()

	occupancy := func(cfg Config) map[string]int {
		counts := make(map[string]int)
		for p := 0; p < 200; p++ {
			player := NewPlayer(uint32(p+1), cfg, rng)
			elapsed := time.Duration(0)
			for i := 0; i < 600; i++ {
				player.Advance(elapsed, 100*time.Millisecond, rng)
				elapsed += 100 * time.Millisecond
			}
			counts[player.Tile()]++
		}
		return counts
	}

	maxOf := func(counts map[string]int) int {
		m := 0
		for _, c := range counts {
			if c > m {
				m = c
			}
		}
		return m
	}
	uMax := maxOf(occupancy(uniform))
	sMax := maxOf(occupancy(skewed))
	if sMax <= uMax {
		t.Fatalf("hotspots did not skew occupancy: uniform max=%d skewed max=%d", uMax, sMax)
	}
}

func TestHotspotWaypointsNearAttractors(t *testing.T) {
	cfg := Config{Hotspots: 2, HotspotBias: 1.0}.FillDefaults() // every waypoint hot
	rng := rand.New(rand.NewSource(3))
	centers := cfg.hotspotCenters()
	if len(centers) != 2 {
		t.Fatalf("centers=%d", len(centers))
	}
	p := NewPlayer(1, cfg, rng)
	spread := cfg.WorldSize / float64(cfg.TilesX)
	for i := 0; i < 50; i++ {
		p.pickWaypoint(rng)
		near := false
		for _, c := range centers {
			dx, dy := p.tx-c[0], p.ty-c[1]
			if dx*dx+dy*dy <= spread*spread {
				near = true
				break
			}
		}
		if !near {
			t.Fatalf("waypoint (%f,%f) not near any attractor", p.tx, p.ty)
		}
	}
}
