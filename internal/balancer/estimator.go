package balancer

import "sort"

// estimator tracks the estimated per-server outgoing byte rate of a
// candidate plan while the rebalancer moves channels around (Algorithm 2's
// estimateLR). It starts from the measured loads and is adjusted on every
// tentative migration.
type estimator struct {
	maxBps  map[string]float64
	estBps  map[string]float64
	origBps map[string]float64            // measured bytes at snapshot time
	cpu     map[string]float64            // reported CPU utilization (UseCPU extension)
	perChan map[string]map[string]float64 // server -> channel -> bytes/s
	servers []string
	useCPU  bool
}

// newEstimator seeds an estimator from a load snapshot. Servers in active
// that never reported yet are included as idle with defaultMaxBps capacity
// (a freshly booted node).
func newEstimator(loads []ServerLoad, active []string, defaultMaxBps float64) *estimator {
	e := &estimator{
		maxBps:  make(map[string]float64, len(active)),
		estBps:  make(map[string]float64, len(active)),
		origBps: make(map[string]float64, len(active)),
		cpu:     make(map[string]float64, len(active)),
		perChan: make(map[string]map[string]float64, len(active)),
	}
	for _, s := range active {
		e.maxBps[s] = defaultMaxBps
		e.estBps[s] = 0
		e.perChan[s] = make(map[string]float64)
	}
	for _, l := range loads {
		if _, ok := e.maxBps[l.Server]; !ok {
			continue // stale report from a released server
		}
		if l.MaxBps > 0 {
			e.maxBps[l.Server] = l.MaxBps
		}
		e.estBps[l.Server] = l.MeasuredBps
		e.origBps[l.Server] = l.MeasuredBps
		e.cpu[l.Server] = l.CPUUtil
		for ch, cl := range l.Channels {
			e.perChan[l.Server][ch] = cl.BytesOut
		}
	}
	e.servers = append([]string(nil), active...)
	sort.Strings(e.servers)
	return e
}

// ratio returns the estimated load ratio of a server. With the CPU
// extension enabled it is max(bandwidth ratio, CPU estimate), where the CPU
// estimate scales proportionally with the byte estimate as channels migrate
// (deliveries — the CPU driver — track bytes).
func (e *estimator) ratio(server string) float64 {
	max := e.maxBps[server]
	if max <= 0 {
		return 0
	}
	r := e.estBps[server] / max
	if e.useCPU {
		cpu := e.cpu[server]
		if orig := e.origBps[server]; orig > 0 {
			cpu *= e.estBps[server] / orig
		}
		if cpu > r {
			return cpu
		}
	}
	return r
}

// maxRatio returns the server with the highest estimated load ratio.
func (e *estimator) maxRatio() (string, float64) {
	best, bestR := "", -1.0
	for _, s := range e.servers {
		if r := e.ratio(s); r > bestR {
			best, bestR = s, r
		}
	}
	return best, bestR
}

// minRatio returns the server with the lowest estimated load ratio,
// excluding the named server.
func (e *estimator) minRatio(exclude string) (string, float64) {
	best, bestR := "", -1.0
	for _, s := range e.servers {
		if s == exclude {
			continue
		}
		if r := e.ratio(s); bestR < 0 || r < bestR {
			best, bestR = s, r
		}
	}
	return best, bestR
}

// avgRatio returns the global average load ratio (§III-B4's trigger).
func (e *estimator) avgRatio() float64 {
	if len(e.servers) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range e.servers {
		sum += e.ratio(s)
	}
	return sum / float64(len(e.servers))
}

// channelOut returns channel ch's estimated outgoing byte rate on server.
func (e *estimator) channelOut(server, ch string) float64 {
	return e.perChan[server][ch]
}

// busiestChannelOn returns the channel with the highest byte rate currently
// attributed to server, skipping those for which skip returns true.
func (e *estimator) busiestChannelOn(server string, skip func(string) bool) (string, float64, bool) {
	best, bestOut := "", 0.0
	for ch, out := range e.perChan[server] {
		if skip != nil && skip(ch) {
			continue
		}
		if best == "" || out > bestOut {
			best, bestOut = ch, out
		}
	}
	return best, bestOut, best != ""
}

// migrate moves channel ch's whole contribution from one server to another.
func (e *estimator) migrate(ch, from, to string) {
	out := e.perChan[from][ch]
	delete(e.perChan[from], ch)
	e.estBps[from] -= out
	if e.estBps[from] < 0 {
		e.estBps[from] = 0
	}
	if e.perChan[to] == nil {
		e.perChan[to] = make(map[string]float64)
	}
	e.perChan[to][ch] += out
	e.estBps[to] += out
}

// moveChannel redistributes a channel's total byte rate from one replica set
// to another, splitting it evenly across the new members (used when
// Algorithm 1 changes a channel's replica set).
func (e *estimator) moveChannel(ch string, oldServers, newServers []string, totalOut float64) {
	for _, s := range oldServers {
		if per, ok := e.perChan[s]; ok {
			e.estBps[s] -= per[ch]
			if e.estBps[s] < 0 {
				e.estBps[s] = 0
			}
			delete(per, ch)
		}
	}
	if len(newServers) == 0 {
		return
	}
	share := totalOut / float64(len(newServers))
	for _, s := range newServers {
		if e.perChan[s] == nil {
			e.perChan[s] = make(map[string]float64)
		}
		e.perChan[s][ch] += share
		e.estBps[s] += share
	}
}

// leastLoadedOf returns the member with the lowest estimated ratio.
func (e *estimator) leastLoadedOf(members []string) string {
	best, bestR := "", -1.0
	for _, s := range members {
		if r := e.ratio(s); bestR < 0 || r < bestR {
			best, bestR = s, r
		}
	}
	return best
}

// leastLoadedExcluding returns up to n non-member servers, least loaded
// first.
func (e *estimator) leastLoadedExcluding(members []string, n int) []string {
	in := make(map[string]struct{}, len(members))
	for _, m := range members {
		in[m] = struct{}{}
	}
	candidates := make([]string, 0, len(e.servers))
	for _, s := range e.servers {
		if _, dup := in[s]; !dup {
			candidates = append(candidates, s)
		}
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		return e.ratio(candidates[i]) < e.ratio(candidates[j])
	})
	if n > len(candidates) {
		n = len(candidates)
	}
	return candidates[:n]
}

// dropBusiest removes the n busiest members (§III-B1: "the busiest servers
// will be freed first") and returns the remainder in original order.
func (e *estimator) dropBusiest(members []string, n int) []string {
	type ranked struct {
		server string
		ratio  float64
	}
	rs := make([]ranked, len(members))
	for i, s := range members {
		rs[i] = ranked{s, e.ratio(s)}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].ratio > rs[j].ratio })
	drop := make(map[string]struct{}, n)
	for i := 0; i < n && i < len(rs); i++ {
		drop[rs[i].server] = struct{}{}
	}
	kept := make([]string, 0, len(members)-n)
	for _, s := range members {
		if _, gone := drop[s]; !gone {
			kept = append(kept, s)
		}
	}
	return kept
}
