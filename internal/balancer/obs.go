package balancer

import (
	"sort"

	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/obs"
)

// Loads snapshots the balancer's per-server metric state (the aggregated LLA
// view the planner sees), sorted by server name for stable output.
func (o *Orchestrator) Loads() []ServerLoad {
	loads := o.state.Snapshot()
	sort.Slice(loads, func(i, j int) bool { return loads[i].Server < loads[j].Server })
	return loads
}

// DetectorStatus reports the failure detector's per-server view. It returns
// nil when detection is disabled.
func (o *Orchestrator) DetectorStatus() []lla.ServerStatus {
	if o.detector == nil {
		return nil
	}
	return o.detector.Status()
}

// BalancerStatus is the load balancer's /statusz document.
type BalancerStatus struct {
	PlanVersion uint64             `json:"planVersion"`
	PlanServers []string           `json:"planServers"`
	Rebalances  int                `json:"rebalances"`
	Failures    int                `json:"failures"`
	Loads       []ServerLoad       `json:"loads"`
	Detector    []lla.ServerStatus `json:"detector,omitempty"`
}

// Status snapshots the orchestrator for /statusz.
func (o *Orchestrator) Status() any {
	p := o.Plan()
	servers := make([]string, 0, len(p.Servers))
	for _, s := range p.Servers {
		servers = append(servers, string(s))
	}
	sort.Strings(servers)
	return BalancerStatus{
		PlanVersion: p.Version,
		PlanServers: servers,
		Rebalances:  o.Rebalances(),
		Failures:    o.Failures(),
		Loads:       o.Loads(),
		Detector:    o.DetectorStatus(),
	}
}

// RegisterMetrics exports the balancer's plan, rebalance, failure, and
// per-server utilization metrics on r. Everything renders on scrape from the
// orchestrator's existing snapshots; no new state is kept.
func (o *Orchestrator) RegisterMetrics(r *obs.Registry) {
	r.Gauge("dynamoth_plan_version",
		"Plan version currently published by the load balancer.",
		func() float64 { return float64(o.Plan().Version) })
	r.Gauge("dynamoth_plan_servers",
		"Servers in the current plan.",
		func() float64 { return float64(len(o.Plan().Servers)) })
	r.Counter("dynamoth_rebalances_total",
		"Plan changes published (rebalances, spawns, and failure repairs).",
		func() uint64 { return uint64(o.Rebalances()) })
	r.Counter("dynamoth_failures_total",
		"Servers declared dead by the detector and evacuated from the plan.",
		func() uint64 { return uint64(o.Failures()) })
	r.GaugeVec("dynamoth_server_utilization_ratio",
		"Per-server load ratio LR_i = M_i/T_i from aggregated LLA reports.",
		"server",
		func() []obs.Sample {
			loads := o.Loads()
			out := make([]obs.Sample, 0, len(loads))
			for _, l := range loads {
				out = append(out, obs.Sample{Label: l.Server, Value: l.Ratio()})
			}
			return out
		})
	r.GaugeVec("dynamoth_server_measured_bps",
		"Per-server measured outgoing bytes/sec M_i from LLA reports.",
		"server",
		func() []obs.Sample {
			loads := o.Loads()
			out := make([]obs.Sample, 0, len(loads))
			for _, l := range loads {
				out = append(out, obs.Sample{Label: l.Server, Value: l.MeasuredBps})
			}
			return out
		})
	r.GaugeVec("dynamoth_server_dead",
		"Failure detector verdict per tracked server (1 = declared dead).",
		"server",
		func() []obs.Sample {
			sts := o.DetectorStatus()
			out := make([]obs.Sample, 0, len(sts))
			for _, s := range sts {
				v := 0.0
				if s.Dead {
					v = 1
				}
				out = append(out, obs.Sample{Label: s.Server, Value: v})
			}
			return out
		})
	// The flight recorder's derived dynamoth_reconfig_* families ride on the
	// same registry (no-op when the orchestrator has no recorder).
	o.rec.RegisterMetrics(r)
}
