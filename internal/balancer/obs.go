package balancer

import (
	"sort"

	"github.com/dynamoth/dynamoth/internal/buildinfo"
	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/obs"
)

// Loads snapshots the balancer's per-server metric state (the aggregated LLA
// view the planner sees), sorted by server name for stable output.
func (o *Orchestrator) Loads() []ServerLoad {
	loads := o.state.Snapshot()
	sort.Slice(loads, func(i, j int) bool { return loads[i].Server < loads[j].Server })
	return loads
}

// RegionLatencies returns each server's accumulated per-region
// delivery-latency distributions from the LLA reports.
func (o *Orchestrator) RegionLatencies() map[string][]lla.RegionStats {
	return o.state.RegionLatencies()
}

// MergedRegionLatencies returns the deployment-wide per-region distributions
// (every server's view of a region merged bucket-wise), sorted by region.
func (o *Orchestrator) MergedRegionLatencies() []lla.RegionStats {
	return o.state.MergedRegionLatencies()
}

// DetectorStatus reports the failure detector's per-server view. It returns
// nil when detection is disabled.
func (o *Orchestrator) DetectorStatus() []lla.ServerStatus {
	if o.detector == nil {
		return nil
	}
	return o.detector.Status()
}

// BalancerStatus is the load balancer's /statusz document.
type BalancerStatus struct {
	PlanVersion uint64             `json:"planVersion"`
	PlanServers []string           `json:"planServers"`
	Rebalances  int                `json:"rebalances"`
	Failures    int                `json:"failures"`
	Loads       []ServerLoad       `json:"loads"`
	Regions     []lla.RegionStats  `json:"regions,omitempty"`
	Detector    []lla.ServerStatus `json:"detector,omitempty"`
	Version     string             `json:"version"`
	GoVersion   string             `json:"goVersion"`
}

// Status snapshots the orchestrator for /statusz.
func (o *Orchestrator) Status() any {
	p := o.Plan()
	servers := make([]string, 0, len(p.Servers))
	for _, s := range p.Servers {
		servers = append(servers, string(s))
	}
	sort.Strings(servers)
	return BalancerStatus{
		PlanVersion: p.Version,
		PlanServers: servers,
		Rebalances:  o.Rebalances(),
		Failures:    o.Failures(),
		Loads:       o.Loads(),
		Regions:     o.MergedRegionLatencies(),
		Detector:    o.DetectorStatus(),
		Version:     buildinfo.Version,
		GoVersion:   buildinfo.GoVersion(),
	}
}

// RegisterMetrics exports the balancer's plan, rebalance, failure, and
// per-server utilization metrics on r. Everything renders on scrape from the
// orchestrator's existing snapshots; no new state is kept.
func (o *Orchestrator) RegisterMetrics(r *obs.Registry) {
	r.Gauge("dynamoth_plan_version",
		"Plan version currently published by the load balancer.",
		func() float64 { return float64(o.Plan().Version) })
	r.Gauge("dynamoth_plan_servers",
		"Servers in the current plan.",
		func() float64 { return float64(len(o.Plan().Servers)) })
	r.Counter("dynamoth_rebalances_total",
		"Plan changes published (rebalances, spawns, and failure repairs).",
		func() uint64 { return uint64(o.Rebalances()) })
	r.Counter("dynamoth_failures_total",
		"Servers declared dead by the detector and evacuated from the plan.",
		func() uint64 { return uint64(o.Failures()) })
	r.GaugeVec("dynamoth_server_utilization_ratio",
		"Per-server load ratio LR_i = M_i/T_i from aggregated LLA reports.",
		"server",
		func() []obs.Sample {
			loads := o.Loads()
			out := make([]obs.Sample, 0, len(loads))
			for _, l := range loads {
				out = append(out, obs.Sample{Label: l.Server, Value: l.Ratio()})
			}
			return out
		})
	r.GaugeVec("dynamoth_server_measured_bps",
		"Per-server measured outgoing bytes/sec M_i from LLA reports.",
		"server",
		func() []obs.Sample {
			loads := o.Loads()
			out := make([]obs.Sample, 0, len(loads))
			for _, l := range loads {
				out = append(out, obs.Sample{Label: l.Server, Value: l.MeasuredBps})
			}
			return out
		})
	r.GaugeVec("dynamoth_server_dead",
		"Failure detector verdict per tracked server (1 = declared dead).",
		"server",
		func() []obs.Sample {
			sts := o.DetectorStatus()
			out := make([]obs.Sample, 0, len(sts))
			for _, s := range sts {
				v := 0.0
				if s.Dead {
					v = 1
				}
				out = append(out, obs.Sample{Label: s.Server, Value: v})
			}
			return out
		})
	r.GaugeVec("dynamoth_region_delivery_latency_p99_seconds",
		"Deployment-wide 99th-percentile delivery latency per subscriber region, merged across all servers' LLA reports.",
		"region",
		func() []obs.Sample {
			regions := o.MergedRegionLatencies()
			out := make([]obs.Sample, 0, len(regions))
			for _, rs := range regions {
				out = append(out, obs.Sample{Label: rs.Region, Value: rs.P99Ms / 1e3})
			}
			return out
		})
	buildinfo.Register(r)
	// The flight recorder's derived dynamoth_reconfig_* families ride on the
	// same registry (no-op when the orchestrator has no recorder).
	o.rec.RegisterMetrics(r)
}
