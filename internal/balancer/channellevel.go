package balancer

import (
	"math"
	"sort"

	"github.com/dynamoth/dynamoth/internal/plan"
)

// TrueChannelLoad aggregates a channel's load across servers, correcting for
// the double counting replication introduces: under all-subscribers every
// replica sees every subscriber (so the per-server sum overcounts
// subscribers), and under all-publishers every replica receives every
// publication (so the sum overcounts publications).
func TrueChannelLoad(loads []ServerLoad, channel string, e plan.Entry) ChannelLoad {
	total := TotalChannelLoad(loads, channel)
	replicas := float64(len(e.Servers))
	if replicas < 1 {
		replicas = 1
	}
	switch e.Strategy {
	case plan.StrategyAllSubscribers:
		total.Subscribers /= replicas
	case plan.StrategyAllPublishers:
		total.Publications /= replicas
		total.BytesIn /= replicas
		total.Publishers /= replicas
	}
	return total
}

// replicationDecision is Algorithm 1's verdict for one channel.
type replicationDecision struct {
	Strategy plan.Strategy
	Replicas int // desired replica count (1 for StrategySingle)
}

// decideReplication runs Algorithm 1 on one channel's true load.
//
// Beyond the paper's listing it also covers the corner case described in the
// surrounding text: when both publications and subscribers are very large,
// all-subscribers wins because all-publishers would multiply every
// publication across replicas.
func decideReplication(cfg Config, cl ChannelLoad) replicationDecision {
	pubs := cl.Publications // per second
	subs := cl.Subscribers

	pRatio := pubs
	if subs > 0 {
		pRatio = pubs / subs
	}
	sRatio := 0.0
	if pubs > 0 {
		sRatio = subs / pubs
	}

	allSubs := pRatio > cfg.AllSubsThreshold && pubs > cfg.PublicationThreshold
	allPubs := sRatio > cfg.AllPubsThreshold && subs > cfg.SubscriberThreshold

	switch {
	case allSubs && allPubs:
		// Corner case (§III-B1): both enormous — prefer all-subscribers,
		// since all-publishers would send every publication N times.
		allPubs = false
	case allSubs || allPubs:
	default:
		return replicationDecision{Strategy: plan.StrategySingle, Replicas: 1}
	}

	if allSubs {
		n := int(math.Ceil(pRatio / cfg.AllSubsThreshold))
		return replicationDecision{
			Strategy: plan.StrategyAllSubscribers,
			Replicas: clampReplicas(cfg, n),
		}
	}
	n := int(math.Ceil(sRatio / cfg.AllPubsThreshold))
	return replicationDecision{
		Strategy: plan.StrategyAllPublishers,
		Replicas: clampReplicas(cfg, n),
	}
}

func clampReplicas(cfg Config, n int) int {
	if n < 2 {
		n = 2 // a replicated channel needs at least two servers
	}
	if cfg.MaxReplicas > 0 && n > cfg.MaxReplicas {
		n = cfg.MaxReplicas
	}
	return n
}

// applyChannelLevel performs the channel-level rebalancing step (§III-B1) on
// p in place, using est to pick replica servers (least-loaded first when
// growing, busiest dropped first when shrinking). It returns the channels it
// changed.
func applyChannelLevel(cfg Config, p *plan.Plan, loads []ServerLoad, est *estimator, skip func(string) bool) []string {
	// Collect every channel observed anywhere.
	channelSet := make(map[string]struct{})
	for _, s := range loads {
		for ch := range s.Channels {
			if skip != nil && skip(ch) {
				continue
			}
			channelSet[ch] = struct{}{}
		}
	}
	channels := make([]string, 0, len(channelSet))
	for ch := range channelSet {
		channels = append(channels, ch)
	}
	sort.Strings(channels)

	var changed []string
	for _, ch := range channels {
		entry, _ := p.Lookup(ch)
		cl := TrueChannelLoad(loads, ch, entry)
		dec := decideReplication(cfg, cl)

		if dec.Strategy == plan.StrategySingle {
			if entry.Strategy == plan.StrategySingle {
				continue // nothing to do (replication stays off)
			}
			// Cancel replication: collapse onto the least-loaded current
			// replica.
			member := est.leastLoadedOf(entry.Servers)
			newEntry := plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{member}}
			est.moveChannel(ch, entry.Servers, newEntry.Servers, cl.BytesOut)
			p.Set(ch, newEntry)
			changed = append(changed, ch)
			continue
		}

		n := dec.Replicas
		if n > len(p.Servers) {
			n = len(p.Servers)
		}
		if n < 2 {
			continue // not enough servers to replicate at all
		}
		members := append([]plan.ServerID(nil), entry.Servers...)
		if entry.Strategy != dec.Strategy {
			// Scheme change: rebuild membership from scratch, keeping the
			// current servers only as a starting point.
			if len(members) > n {
				members = members[:n]
			}
		}
		switch {
		case len(members) < n:
			// Grow: add the least-loaded non-member servers (§III-B1:
			// "selects the least-loaded servers first").
			members = append(members, est.leastLoadedExcluding(members, n-len(members))...)
		case len(members) > n:
			// Shrink: free the busiest servers first.
			members = est.dropBusiest(members, len(members)-n)
		}
		newEntry := plan.Entry{Strategy: dec.Strategy, Servers: members}
		if entriesEquivalent(entry, newEntry) {
			continue
		}
		est.moveChannel(ch, entry.Servers, members, cl.BytesOut)
		p.Set(ch, newEntry)
		changed = append(changed, ch)
	}
	return changed
}

func entriesEquivalent(a, b plan.Entry) bool {
	if a.Strategy != b.Strategy || len(a.Servers) != len(b.Servers) {
		return false
	}
	as := append([]plan.ServerID(nil), a.Servers...)
	bs := append([]plan.ServerID(nil), b.Servers...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
