package balancer

import (
	"sort"

	"github.com/dynamoth/dynamoth/internal/plan"
)

// highLoadRebalance implements Algorithm 2 (§III-B3): while some server's
// estimated load ratio is above LR_high, take the most loaded server and
// migrate its busiest channels to the least loaded server until the source
// drops below LR_safe. If the least loaded server cannot absorb a channel
// without itself going above LR_maxAccept, the system is out of capacity and
// the function reports how many extra servers it wants rented.
//
// Channels with replication enabled are left to the channel-level pass; only
// single-server channels migrate here (a replicated channel's load is
// already spread, and moving one replica is the estimator's moveChannel
// job in applyChannelLevel).
func highLoadRebalance(cfg Config, p *plan.Plan, est *estimator, skip func(string) bool) (migrations int, spawnWanted bool) {
	isMovable := func(ch string) bool {
		if skip != nil && skip(ch) {
			return false
		}
		e, _ := p.Lookup(ch)
		return e.Strategy == plan.StrategySingle && len(e.Servers) == 1
	}

	// Bound the total work: no more migrations than channels exist.
	maxMigrations := 0
	for _, s := range est.servers {
		maxMigrations += len(est.perChan[s])
	}

	for iter := 0; iter < len(est.servers)+1; iter++ {
		hMax, lrMax := est.maxRatio()
		if hMax == "" || lrMax < cfg.LRHigh {
			return migrations, spawnWanted
		}
		for est.ratio(hMax) >= cfg.LRSafe && migrations < maxMigrations {
			hMin, _ := est.minRatio(hMax)
			if hMin == "" {
				return migrations, true // single server and overloaded
			}
			ch, out, ok := est.busiestChannelOn(hMax, func(c string) bool { return !isMovable(c) })
			if !ok {
				// Nothing movable on the hottest server (all replicated or
				// control); more capacity is the only way out.
				spawnWanted = spawnWanted || est.ratio(hMax) >= cfg.LRHigh
				break
			}
			// Would the receiver overload? (Algorithm 2's "recalculated as
			// well" safeguard.)
			if max := est.maxBps[hMin]; max > 0 && (est.estBps[hMin]+out)/max > cfg.LRMaxAccept {
				spawnWanted = true
				break
			}
			// The LLA metrics are authoritative about where the channel's
			// traffic flows, so assign it outright rather than relying on
			// the plan's (possibly fallback) idea of its previous home.
			p.Set(ch, plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{hMin}})
			est.migrate(ch, hMax, hMin)
			migrations++
		}
		// If the hottest server is still above LR_high and we already
		// decided to ask for capacity, stop churning.
		if spawnWanted {
			return migrations, true
		}
	}
	return migrations, spawnWanted
}

// lowLoadRebalance implements the server-release pass (§III-B4): when the
// global average load ratio is below LR_lowAvg, drain the least loaded
// releasable server by migrating its channels to the others (as long as
// nobody exceeds LR_maxAccept) and, if fully drained, mark it for release.
//
// isControl marks node-local control channels (they need no migration and
// vanish with the node); movable reports whether a real channel may be
// migrated right now (false during its post-migration cooldown — a victim
// hosting such a channel cannot be drained this round). pinned servers
// (e.g. the control-plane home) are never drained.
func lowLoadRebalance(cfg Config, p *plan.Plan, est *estimator, isControl func(string) bool, movable func(string) bool, pinned func(string) bool) (released string, migrations int) {
	if len(est.servers) <= cfg.MinServers {
		return "", 0
	}
	if est.avgRatio() >= cfg.LRLowAvg {
		return "", 0
	}

	// Pick the least-loaded non-pinned victim.
	victim := ""
	victimR := -1.0
	for _, s := range est.servers {
		if pinned != nil && pinned(s) {
			continue
		}
		if r := est.ratio(s); victimR < 0 || r < victimR {
			victim, victimR = s, r
		}
	}
	if victim == "" {
		return "", 0
	}

	// Channels currently attributed to the victim. Both single channels
	// (migrate) and replica memberships (replace member) must leave.
	channels := make([]string, 0, len(est.perChan[victim]))
	for ch := range est.perChan[victim] {
		channels = append(channels, ch)
	}
	// Also channels mapped to the victim in the plan without measured
	// traffic (idle channels still need a new home before release).
	for ch, e := range p.Channels {
		if isControl != nil && isControl(ch) {
			continue
		}
		for _, s := range e.Servers {
			if s == victim {
				channels = appendUnique(channels, ch)
			}
		}
	}
	sort.Strings(channels) // deterministic drain order

	for _, ch := range channels {
		if isControl != nil && isControl(ch) {
			// Control channels are node-local (every broker carries its
			// own report/plan traffic); they need no migration and vanish
			// with the node.
			continue
		}
		if movable != nil && !movable(ch) {
			// The channel cannot move this round (cooldown): the victim
			// cannot be drained yet; try again on a later plan.
			return "", migrations
		}
		out := est.channelOut(victim, ch)
		e, _ := p.Lookup(ch)
		// Candidate targets: anything but the victim and existing members.
		exclude := append([]string{victim}, e.Servers...)
		targets := est.leastLoadedExcluding(exclude, 1)
		if len(targets) == 0 {
			return "", migrations
		}
		target := targets[0]
		if max := est.maxBps[target]; max > 0 && (est.estBps[target]+out)/max > cfg.LRMaxAccept {
			// Draining further would overload others; abandon the release
			// but keep the migrations done so far (they still help).
			return "", migrations
		}
		if e.Strategy == plan.StrategySingle {
			p.Set(ch, plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{target}})
		} else if err := p.Migrate(ch, victim, target); err != nil {
			// Replica membership disagreed (stale attribution): the
			// channel no longer lives here.
			delete(est.perChan[victim], ch)
			continue
		}
		est.migrate(ch, victim, target)
		migrations++
	}

	// Fully drained (ignoring node-local control traffic)? Release it.
	remaining := 0
	for ch := range est.perChan[victim] {
		if isControl == nil || !isControl(ch) {
			remaining++
		}
	}
	if remaining == 0 {
		p.RemoveServer(victim)
		return victim, migrations
	}
	return "", migrations
}

func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}
