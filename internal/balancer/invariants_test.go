package balancer

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/dynamoth/dynamoth/internal/plan"
)

// randomSnapshot builds a random but self-consistent cluster state: servers
// with random loads composed of per-channel contributions that sum to the
// measured totals, channels placed where the plan says they are.
func randomSnapshot(rng *rand.Rand, servers, channels int) (*plan.Plan, []ServerLoad) {
	ids := make([]string, servers)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%d", i+1)
	}
	p := plan.New(ids...)
	p.Version = 1 + uint64(rng.Intn(5))

	loads := make([]ServerLoad, servers)
	for i, id := range ids {
		loads[i] = ServerLoad{
			Server:   id,
			MaxBps:   1e6,
			Channels: map[string]ChannelLoad{},
		}
	}
	byID := make(map[string]*ServerLoad, servers)
	for i := range loads {
		byID[loads[i].Server] = &loads[i]
	}

	for c := 0; c < channels; c++ {
		name := fmt.Sprintf("ch-%d", c)
		owner := p.Home(name)
		if rng.Float64() < 0.3 {
			// Explicitly placed somewhere else.
			owner = ids[rng.Intn(len(ids))]
			p.Set(name, plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{owner}})
		}
		out := rng.Float64() * 4e5
		sl := byID[owner]
		sl.Channels[name] = ChannelLoad{
			Publications: rng.Float64() * 100,
			Subscribers:  float64(rng.Intn(50)),
			BytesOut:     out,
		}
		sl.MeasuredBps += out
	}
	return p, loads
}

// TestPlannerInvariantsRandomized fuzzes GeneratePlan over random cluster
// states and checks structural invariants of every produced plan.
func TestPlannerInvariantsRandomized(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		servers := 1 + rng.Intn(8)
		channels := rng.Intn(40)
		current, loads := randomSnapshot(rng, servers, channels)

		cfg := DefaultConfig()
		cfg.MaxServers = 8
		pl := NewPlanner(cfg, plan.IsControlChannel, nil, 1e6)
		d := pl.GeneratePlan(current, loads)
		if d.Plan == nil {
			continue
		}
		next := d.Plan

		// Invariant: version strictly increases.
		if next.Version != current.Version+1 {
			t.Fatalf("seed %d: version %d after %d", seed, next.Version, current.Version)
		}
		// Invariant: every explicit entry is valid and names only active
		// servers.
		for ch, e := range next.Channels {
			if !e.Strategy.Valid() || len(e.Servers) == 0 {
				t.Fatalf("seed %d: invalid entry %q=%+v", seed, ch, e)
			}
			seen := map[string]bool{}
			for _, s := range e.Servers {
				if !next.HasServer(s) {
					t.Fatalf("seed %d: entry %q names inactive server %q", seed, ch, s)
				}
				if seen[s] {
					t.Fatalf("seed %d: entry %q has duplicate replica %q", seed, ch, s)
				}
				seen[s] = true
			}
			if e.Strategy == plan.StrategySingle && len(e.Servers) != 1 {
				t.Fatalf("seed %d: single entry with %d servers", seed, len(e.Servers))
			}
		}
		// Invariant: a released server is gone from the active set but the
		// plan maps no channel to it.
		if d.Release != "" {
			if next.HasServer(d.Release) {
				t.Fatalf("seed %d: released server still active", seed)
			}
			for ch, e := range next.Channels {
				for _, s := range e.Servers {
					if s == d.Release {
						t.Fatalf("seed %d: channel %q still on released server", seed, ch)
					}
				}
			}
		}
		// Invariant: the plan round-trips through the control plane.
		data, err := next.Marshal()
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		if _, err := plan.Unmarshal(data); err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
	}
}

// TestPlannerTerminatesUnderSaturation: every server overloaded, nothing to
// give — the planner must terminate and ask for capacity, not loop.
func TestPlannerTerminatesUnderSaturation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxServers = 8
	pl := NewPlanner(cfg, nil, nil, 1e6)
	current := plan.New("s1", "s2", "s3")
	loads := []ServerLoad{
		load("s1", 1e6, 1.5e6, map[string]ChannelLoad{"a": {BytesOut: 1.5e6}}),
		load("s2", 1e6, 1.4e6, map[string]ChannelLoad{"b": {BytesOut: 1.4e6}}),
		load("s3", 1e6, 1.3e6, map[string]ChannelLoad{"c": {BytesOut: 1.3e6}}),
	}
	d := pl.GeneratePlan(current, loads)
	if d.Spawn == 0 {
		t.Fatalf("saturated cluster did not request capacity: %+v", d)
	}
}

// TestPlannerCooldownPreventsPingPong: a channel the planner just moved must
// not move again on the very next round even if stale metrics still
// attribute its load to the old server.
func TestPlannerCooldownPreventsPingPong(t *testing.T) {
	cfg := DefaultConfig()
	pl := NewPlanner(cfg, nil, nil, 1e6)
	current := plan.New("s1", "s2")
	names := channelsHomedOn(current, "s1", 2)
	big, rest := names[0], names[1]

	loads := []ServerLoad{
		load("s1", 1e6, 9.5e5, map[string]ChannelLoad{
			big:  {BytesOut: 5e5},
			rest: {BytesOut: 4.5e5},
		}),
		load("s2", 1e6, 0, nil),
	}
	d1 := pl.GeneratePlan(current, loads)
	if d1.Plan == nil {
		t.Fatal("no first plan")
	}
	e, _ := d1.Plan.Lookup(big)
	if e.Servers[0] != "s2" {
		t.Fatalf("big not moved: %v", e.Servers)
	}

	// Stale metrics: traffic still attributed to s1 (plus a bit on s2).
	// Without the cooldown the planner would "move" big again.
	d2 := pl.GeneratePlan(d1.Plan, loads)
	if d2.Plan != nil {
		if e2, _ := d2.Plan.Lookup(big); e2.Servers[0] != "s2" {
			t.Fatalf("cooldown violated: big moved to %v", e2.Servers)
		}
	}
}

// TestCPUAwareRatioTriggersRebalance: with UseCPU enabled, a CPU-hot but
// bandwidth-cold server must still trigger high-load rebalancing (§VII
// future work).
func TestCPUAwareRatioTriggersRebalance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseCPU = true
	pl := NewPlanner(cfg, nil, nil, 1e6)
	current := plan.New("s1", "s2")
	names := channelsHomedOn(current, "s1", 1)

	loads := []ServerLoad{
		{Server: "s1", MaxBps: 1e6, MeasuredBps: 5.5e5, CPUUtil: 0.97,
			Channels: map[string]ChannelLoad{names[0]: {BytesOut: 3e5}}},
		{Server: "s2", MaxBps: 1e6, MeasuredBps: 5e5, CPUUtil: 0.1,
			Channels: map[string]ChannelLoad{}},
	}
	d := pl.GeneratePlan(current, loads)
	if d.Plan == nil {
		t.Fatal("CPU-hot server did not trigger a plan")
	}
	if e, _ := d.Plan.Lookup(names[0]); e.Servers[0] != "s2" {
		t.Fatalf("channel not migrated off the CPU-hot server: %v", e.Servers)
	}

	// Without UseCPU the same state sits in the comfortable middle band:
	// no high-load migration, no release.
	cfg2 := DefaultConfig()
	pl2 := NewPlanner(cfg2, nil, nil, 1e6)
	if d2 := pl2.GeneratePlan(current, loads); d2.Changed() {
		t.Fatalf("bandwidth-only planner reacted to CPU: %+v", d2)
	}
}

func TestRatioCPUAware(t *testing.T) {
	s := ServerLoad{MaxBps: 1e6, MeasuredBps: 5e5, CPUUtil: 0.8}
	if got := s.RatioCPUAware(); got != 0.8 {
		t.Fatalf("RatioCPUAware=%f", got)
	}
	s.CPUUtil = 0.2
	if got := s.RatioCPUAware(); got != 0.5 {
		t.Fatalf("RatioCPUAware=%f", got)
	}
}
