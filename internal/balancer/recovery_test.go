package balancer

import (
	"testing"

	"github.com/dynamoth/dynamoth/internal/plan"
)

func TestRepairPlanEvacuatesToRingSuccessor(t *testing.T) {
	p := plan.New("s1", "s2", "s3")
	p.Version = 4
	p.Set("alpha", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"s2"}})
	p.Set("beta", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"s1"}})

	next, changed := RepairPlan(p, "s2")
	if !changed {
		t.Fatal("repair of a plan member reported unchanged")
	}
	if next.Version != 5 {
		t.Fatalf("version=%d, want 5", next.Version)
	}
	if next.HasServer("s2") {
		t.Fatal("dead server still in plan")
	}
	for _, s := range next.RingServers {
		if s == "s2" {
			t.Fatal("dead server still on the ring")
		}
	}
	e, ok := next.Lookup("alpha")
	if !ok {
		t.Fatal("evacuated channel lost its entry")
	}
	if len(e.Servers) != 1 || e.Servers[0] == "s2" {
		t.Fatalf("alpha servers=%v", e.Servers)
	}
	// The substitute must be the channel's first live ring candidate — the
	// same server a failed-over client picks before the new plan arrives.
	want := next.Ring().LookupN("alpha", 2)[0]
	if e.Servers[0] != want {
		t.Fatalf("alpha evacuated to %s, ring successor is %s", e.Servers[0], want)
	}
	// Untouched entries survive verbatim.
	if e, _ := next.Lookup("beta"); len(e.Servers) != 1 || e.Servers[0] != "s1" {
		t.Fatalf("beta servers=%v", e.Servers)
	}
	// Original plan untouched.
	if !p.HasServer("s2") || p.Version != 4 {
		t.Fatal("RepairPlan mutated its input")
	}
}

func TestRepairPlanPreservesReplication(t *testing.T) {
	p := plan.New("s1", "s2", "s3", "s4")
	p.Set("hot", plan.Entry{
		Strategy: plan.StrategyAllSubscribers,
		Servers:  []plan.ServerID{"s1", "s2"},
	})
	next, changed := RepairPlan(p, "s2")
	if !changed {
		t.Fatal("unchanged")
	}
	e, _ := next.Lookup("hot")
	if e.Strategy != plan.StrategyAllSubscribers {
		t.Fatalf("strategy=%v", e.Strategy)
	}
	if len(e.Servers) != 2 {
		t.Fatalf("replica count not preserved: %v", e.Servers)
	}
	seen := map[plan.ServerID]bool{}
	for _, s := range e.Servers {
		if s == "s2" {
			t.Fatalf("dead replica retained: %v", e.Servers)
		}
		if seen[s] {
			t.Fatalf("duplicate replica: %v", e.Servers)
		}
		seen[s] = true
	}
	if !seen["s1"] {
		t.Fatalf("surviving replica dropped: %v", e.Servers)
	}
}

func TestRepairPlanNonMemberNoChange(t *testing.T) {
	p := plan.New("s1", "s2")
	next, changed := RepairPlan(p, "ghost")
	if changed {
		t.Fatal("repair of a non-member reported changed")
	}
	if next.Version != p.Version+1 {
		t.Fatalf("version=%d", next.Version)
	}
}

func TestRepairPlanLastServerDropsEntries(t *testing.T) {
	p := plan.New("s1")
	p.Set("only", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"s1"}})
	next, changed := RepairPlan(p, "s1")
	if !changed {
		t.Fatal("unchanged")
	}
	if len(next.Servers) != 0 || len(next.RingServers) != 0 {
		t.Fatalf("servers=%v ring=%v", next.Servers, next.RingServers)
	}
	if _, ok := next.Channels["only"]; ok {
		t.Fatal("entry survived with an empty pool")
	}
}
