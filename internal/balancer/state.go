package balancer

import (
	"sort"
	"sync"

	"github.com/dynamoth/dynamoth/internal/lla"
)

// ChannelLoad is one channel's averaged per-second load on one server.
type ChannelLoad struct {
	Publishers   float64 // distinct publishers per unit (averaged)
	Publications float64 // publications/second
	Subscribers  float64 // subscriber count (latest)
	MessagesSent float64 // deliveries/second
	BytesIn      float64 // bytes/second received
	BytesOut     float64 // bytes/second sent — the load that counts (§III-A)
}

// ServerLoad is one server's aggregated view over the metric window.
type ServerLoad struct {
	Server      string
	MaxBps      float64 // T_i
	MeasuredBps float64 // M_i (from the LLA's NIC measurement)
	// CPUUtil is the node's reported CPU busy fraction (0 when the
	// deployment does not report CPU).
	CPUUtil  float64
	Channels map[string]ChannelLoad
}

// Ratio returns the server's load ratio LR_i = M_i / T_i (eq. 1).
func (s ServerLoad) Ratio() float64 {
	if s.MaxBps <= 0 {
		return 0
	}
	return s.MeasuredBps / s.MaxBps
}

// RatioCPUAware returns max(LR_i, CPU): the paper's §VII extension for
// environments where (virtual) CPU, not bandwidth, is the scarce resource.
func (s ServerLoad) RatioCPUAware() float64 {
	r := s.Ratio()
	if s.CPUUtil > r {
		return s.CPUUtil
	}
	return r
}

// BusiestChannel returns the channel with the highest outgoing byte rate and
// that rate; ok is false if the server hosts no channels. skip channels for
// which skip returns true (e.g. control channels).
func (s ServerLoad) BusiestChannel(skip func(string) bool) (string, float64, bool) {
	best := ""
	var bestOut float64
	for ch, cl := range s.Channels {
		if skip != nil && skip(ch) {
			continue
		}
		if best == "" || cl.BytesOut > bestOut {
			best, bestOut = ch, cl.BytesOut
		}
	}
	return best, bestOut, best != ""
}

// State aggregates LLA reports into per-server load views. It keeps a
// sliding window of time units per server and is safe for concurrent use.
type State struct {
	mu      sync.Mutex
	window  int
	servers map[string]*serverState
}

type serverState struct {
	maxBps   float64
	measured float64
	cpu      float64
	units    []lla.UnitStats // most recent last
	lastSeq  uint64
	// regions accumulates the per-region delivery-latency distributions the
	// server's LLA reports (each report carries one window; we merge them).
	regions map[string]lla.RegionStats
}

// NewState creates a State averaging over the given number of time units.
func NewState(window int) *State {
	if window <= 0 {
		window = 5
	}
	return &State{window: window, servers: make(map[string]*serverState)}
}

// AddReport folds one LLA report into the state. Stale (out-of-order)
// reports are ignored.
func (st *State) AddReport(r *lla.Report) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.servers[r.Server]
	if s == nil {
		s = &serverState{}
		st.servers[r.Server] = s
	}
	if r.Seq != 0 && r.Seq <= s.lastSeq {
		return
	}
	s.lastSeq = r.Seq
	s.maxBps = r.MaxOutgoingBps
	s.measured = r.MeasuredOutgoingBps
	s.cpu = r.CPUUtilization
	s.units = append(s.units, r.Units...)
	if over := len(s.units) - st.window; over > 0 {
		s.units = append([]lla.UnitStats(nil), s.units[over:]...)
	}
	for _, rs := range r.Regions {
		if s.regions == nil {
			s.regions = make(map[string]lla.RegionStats)
		}
		if prev, ok := s.regions[rs.Region]; ok {
			rs = lla.MergeRegionStats(prev, rs)
		}
		s.regions[rs.Region] = rs
	}
}

// Forget removes a server from the state (after it is despawned).
func (st *State) Forget(server string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.servers, server)
}

// Servers returns the servers present in the state, sorted.
func (st *State) Servers() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.servers))
	for s := range st.servers {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Snapshot computes the averaged per-server loads. Servers that have
// reported at least once are included even if idle.
func (st *State) Snapshot() []ServerLoad {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]ServerLoad, 0, len(st.servers))
	names := make([]string, 0, len(st.servers))
	for name := range st.servers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := st.servers[name]
		sl := ServerLoad{
			Server:      name,
			MaxBps:      s.maxBps,
			MeasuredBps: s.measured,
			CPUUtil:     s.cpu,
			Channels:    make(map[string]ChannelLoad),
		}
		n := len(s.units)
		if n > 0 {
			type accum struct {
				pubsSum, publicationsSum, sentSum float64
				bytesInSum, bytesOutSum           float64
				lastSubscribers                   float64
			}
			acc := make(map[string]*accum)
			for _, u := range s.units {
				for _, c := range u.Channels {
					a := acc[c.Channel]
					if a == nil {
						a = &accum{}
						acc[c.Channel] = a
					}
					a.pubsSum += float64(c.Publishers)
					a.publicationsSum += float64(c.Publications)
					a.sentSum += float64(c.MessagesSent)
					a.bytesInSum += float64(c.BytesIn)
					a.bytesOutSum += float64(c.BytesOut)
					a.lastSubscribers = float64(c.Subscribers)
				}
			}
			for ch, a := range acc {
				sl.Channels[ch] = ChannelLoad{
					Publishers:   a.pubsSum / float64(n),
					Publications: a.publicationsSum / float64(n),
					Subscribers:  a.lastSubscribers,
					MessagesSent: a.sentSum / float64(n),
					BytesIn:      a.bytesInSum / float64(n),
					BytesOut:     a.bytesOutSum / float64(n),
				}
			}
		}
		out = append(out, sl)
	}
	return out
}

// RegionLatencies returns each reporting server's accumulated per-region
// delivery-latency distributions, regions sorted by name. Servers whose LLAs
// saw no region-tagged deliveries are omitted.
func (st *State) RegionLatencies() map[string][]lla.RegionStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string][]lla.RegionStats)
	for name, s := range st.servers {
		if len(s.regions) == 0 {
			continue
		}
		regions := make([]lla.RegionStats, 0, len(s.regions))
		for _, rs := range s.regions {
			regions = append(regions, rs)
		}
		sort.Slice(regions, func(i, j int) bool { return regions[i].Region < regions[j].Region })
		out[name] = regions
	}
	return out
}

// MergedRegionLatencies folds every server's per-region distributions into
// one deployment-wide view per region (bucket-wise merge, p99 recomputed),
// sorted by region name — the balancer's answer to "which subscriber regions
// are slow, regardless of which server serves them".
func (st *State) MergedRegionLatencies() []lla.RegionStats {
	perServer := st.RegionLatencies()
	merged := make(map[string]lla.RegionStats)
	for _, regions := range perServer {
		for _, rs := range regions {
			if prev, ok := merged[rs.Region]; ok {
				rs = lla.MergeRegionStats(prev, rs)
			}
			merged[rs.Region] = rs
		}
	}
	out := make([]lla.RegionStats, 0, len(merged))
	for _, rs := range merged {
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

// TotalChannelLoad sums one channel's load across all servers (needed by
// Algorithm 1, which reasons about whole channels even when replicated).
func TotalChannelLoad(loads []ServerLoad, channel string) ChannelLoad {
	var total ChannelLoad
	for _, s := range loads {
		cl, ok := s.Channels[channel]
		if !ok {
			continue
		}
		total.Publishers += cl.Publishers
		total.Publications += cl.Publications
		total.Subscribers += cl.Subscribers
		total.MessagesSent += cl.MessagesSent
		total.BytesIn += cl.BytesIn
		total.BytesOut += cl.BytesOut
	}
	return total
}
