package balancer

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/plan"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// fakeCloud is an instant CloudProvider recording spawns and releases.
type fakeCloud struct {
	mu       sync.Mutex
	spawned  int
	released []plan.ServerID
}

func (f *fakeCloud) Spawn(context.Context) (plan.ServerID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.spawned++
	return fmt.Sprintf("new%d", f.spawned), nil
}

func (f *fakeCloud) Release(id plan.ServerID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.released = append(f.released, id)
	return nil
}

func (f *fakeCloud) counts() (int, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.spawned, len(f.released)
}

// scriptedPlanner returns queued decisions, then no-ops.
type scriptedPlanner struct {
	mu        sync.Mutex
	decisions []Decision
	calls     int
}

func (s *scriptedPlanner) GeneratePlan(current *plan.Plan, _ []ServerLoad) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if len(s.decisions) == 0 {
		return Decision{}
	}
	d := s.decisions[0]
	s.decisions = s.decisions[1:]
	if d.Plan != nil {
		d.Plan.Version = current.Version + 1
	}
	return d
}

func startOrchestrator(t *testing.T, planner PlanGenerator, cfg Config, cloud CloudProvider, clk clock.Clock) (*Orchestrator, chan *lla.Report, func() []uint64) {
	t.Helper()
	reports := make(chan *lla.Report, 16)
	initial := plan.New("pub1")
	initial.Version = 1
	var mu sync.Mutex
	var published []uint64
	o := NewOrchestrator(OrchestratorOptions{
		Planner: planner,
		Config:  cfg,
		Initial: initial,
		Reports: reports,
		PublishPlan: func(p *plan.Plan) {
			mu.Lock()
			published = append(published, p.Version)
			mu.Unlock()
		},
		Cloud:        cloud,
		Clock:        clk,
		ReleaseGrace: 50 * time.Millisecond,
	})
	go o.Run()
	t.Cleanup(o.Stop)
	getPublished := func() []uint64 {
		mu.Lock()
		defer mu.Unlock()
		return append([]uint64(nil), published...)
	}
	return o, reports, getPublished
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestOrchestratorPublishesPlans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TWait = time.Millisecond
	next := plan.New("pub1")
	next.Set("c", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"pub1"}})
	planner := &scriptedPlanner{decisions: []Decision{{Plan: next}}}
	o, _, published := startOrchestrator(t, planner, cfg, nil, clock.NewReal())

	waitFor(t, "plan publication", func() bool { return len(published()) == 1 })
	if got := published(); got[0] != 2 {
		t.Fatalf("published version %d, want 2", got[0])
	}
	if o.Plan().Version != 2 {
		t.Fatalf("current plan version %d", o.Plan().Version)
	}
	if o.Rebalances() != 1 {
		t.Fatalf("rebalances=%d", o.Rebalances())
	}
}

func TestOrchestratorSpawnAddsRingServer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TWait = time.Millisecond
	cloud := &fakeCloud{}
	planner := &scriptedPlanner{decisions: []Decision{{Spawn: 1}}}
	o, _, published := startOrchestrator(t, planner, cfg, cloud, clock.NewReal())

	waitFor(t, "spawn", func() bool { s, _ := cloud.counts(); return s == 1 })
	waitFor(t, "post-spawn plan", func() bool { return len(published()) >= 1 })
	p := o.Plan()
	if !p.HasServer("new1") {
		t.Fatalf("spawned server not in plan: %v", p.Servers)
	}
	// Spawned servers join the fallback ring (clients hash over them).
	found := false
	for _, s := range p.RingServers {
		if s == "new1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("spawned server not in ring: %v", p.RingServers)
	}
}

func TestOrchestratorSingleSpawnInFlight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TWait = time.Millisecond
	cloud := &fakeCloud{}
	// Two consecutive spawn decisions; the second must be coalesced while
	// the first is in flight... with an instant cloud the first completes
	// quickly, so instead check total spawns stay bounded by decisions.
	planner := &scriptedPlanner{decisions: []Decision{{Spawn: 1}, {Spawn: 1}}}
	_, _, _ = startOrchestrator(t, planner, cfg, cloud, clock.NewReal())
	waitFor(t, "both spawn decisions consumed", func() bool {
		planner.mu.Lock()
		defer planner.mu.Unlock()
		return len(planner.decisions) == 0
	})
	time.Sleep(50 * time.Millisecond)
	if s, _ := cloud.counts(); s > 2 {
		t.Fatalf("spawned %d servers for 2 decisions", s)
	}
}

func TestOrchestratorReleaseAfterGrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TWait = time.Millisecond
	cloud := &fakeCloud{}
	next := plan.New("pub1") // pub2 removed
	planner := &scriptedPlanner{decisions: []Decision{{Plan: next, Release: "pub2"}}}
	startOrchestrator(t, planner, cfg, cloud, clock.NewReal())

	waitFor(t, "release", func() bool { _, r := cloud.counts(); return r == 1 })
	cloud.mu.Lock()
	defer cloud.mu.Unlock()
	if cloud.released[0] != "pub2" {
		t.Fatalf("released %v", cloud.released)
	}
}

func TestOrchestratorTWaitGatesPlans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TWait = time.Hour // nothing after the first decision
	mk := func() *plan.Plan {
		p := plan.New("pub1")
		p.Set("c", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"pub1"}})
		return p
	}
	planner := &scriptedPlanner{decisions: []Decision{{Plan: mk()}, {Plan: mk()}}}
	_, _, published := startOrchestrator(t, planner, cfg, nil, clock.NewReal())

	waitFor(t, "first plan", func() bool { return len(published()) == 1 })
	time.Sleep(100 * time.Millisecond)
	if got := published(); len(got) != 1 {
		t.Fatalf("second plan published despite T_wait: %v", got)
	}
}

func TestOrchestratorFoldsReports(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TWait = time.Millisecond
	recorded := make(chan []ServerLoad, 1)
	planner := &capturePlanner{out: recorded}
	_, reports, _ := startOrchestrator(t, planner, cfg, nil, clock.NewReal())

	reports <- &lla.Report{Server: "pub1", Seq: 1, MaxOutgoingBps: 1000, MeasuredOutgoingBps: 700}
	var loads []ServerLoad
	waitFor(t, "report folded into planning input", func() bool {
		select {
		case loads = <-recorded:
			return loads[0].MeasuredBps == 700
		default:
			return false
		}
	})
	if loads[0].Server != "pub1" || loads[0].Ratio() != 0.7 {
		t.Fatalf("loads=%+v", loads)
	}
}

type capturePlanner struct{ out chan []ServerLoad }

func (c *capturePlanner) GeneratePlan(_ *plan.Plan, loads []ServerLoad) Decision {
	select {
	case c.out <- loads:
	default:
	}
	return Decision{}
}

func TestOrchestratorSynthesizesIdleServers(t *testing.T) {
	// A plan server that never reported must appear as an idle load entry.
	cfg := DefaultConfig()
	cfg.TWait = time.Millisecond
	recorded := make(chan []ServerLoad, 1)
	planner := &capturePlanner{out: recorded}

	reports := make(chan *lla.Report, 1)
	initial := plan.New("pub1", "pub2")
	o := NewOrchestrator(OrchestratorOptions{
		Planner:       planner,
		Config:        cfg,
		Initial:       initial,
		Reports:       reports,
		DefaultMaxBps: 5555,
		Clock:         clock.NewReal(),
	})
	go o.Run()
	defer o.Stop()

	var loads []ServerLoad
	waitFor(t, "planning round", func() bool {
		select {
		case loads = <-recorded:
			return true
		default:
			return false
		}
	})
	if len(loads) != 2 {
		t.Fatalf("loads=%+v", loads)
	}
	for _, l := range loads {
		if l.MaxBps != 5555 || l.MeasuredBps != 0 {
			t.Fatalf("idle synthesis wrong: %+v", l)
		}
	}
}

func TestOrchestratorStopIdempotent(t *testing.T) {
	cfg := DefaultConfig()
	planner := &scriptedPlanner{}
	o, _, _ := startOrchestrator(t, planner, cfg, nil, clock.NewReal())
	o.Stop()
	o.Stop()
}
