package balancer

import (
	"strings"
	"testing"

	"github.com/dynamoth/dynamoth/internal/plan"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.TWait = 0
	return cfg
}

func load(server string, maxBps, measured float64, chans map[string]ChannelLoad) ServerLoad {
	if chans == nil {
		chans = map[string]ChannelLoad{}
	}
	return ServerLoad{Server: server, MaxBps: maxBps, MeasuredBps: measured, Channels: chans}
}

// --- Algorithm 1: replication decision -------------------------------------

func TestDecideReplicationNoReplication(t *testing.T) {
	cfg := testConfig()
	tests := []struct {
		name string
		cl   ChannelLoad
	}{
		{"idle", ChannelLoad{}},
		{"modest traffic", ChannelLoad{Publications: 100, Subscribers: 20}},
		{"high ratio but few publications", ChannelLoad{Publications: 400, Subscribers: 0.2}},
		{"many subscribers but low ratio", ChannelLoad{Publications: 50, Subscribers: 900}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if dec := decideReplication(cfg, tt.cl); dec.Strategy != plan.StrategySingle {
				t.Fatalf("decision=%+v, want single", dec)
			}
		})
	}
}

func TestDecideReplicationAllSubscribers(t *testing.T) {
	cfg := testConfig()
	// Fig 4b-style: thousands of publications, one subscriber.
	cl := ChannelLoad{Publications: 4000, Subscribers: 1}
	dec := decideReplication(cfg, cl)
	if dec.Strategy != plan.StrategyAllSubscribers {
		t.Fatalf("decision=%+v", dec)
	}
	// N = ceil(4000/1500) = 3.
	if dec.Replicas != 3 {
		t.Fatalf("replicas=%d, want 3", dec.Replicas)
	}
}

func TestDecideReplicationAllPublishers(t *testing.T) {
	cfg := testConfig()
	// Fig 4a-style: one publisher at 10 pub/s, 800 subscribers.
	cl := ChannelLoad{Publications: 10, Subscribers: 800}
	dec := decideReplication(cfg, cl)
	if dec.Strategy != plan.StrategyAllPublishers {
		t.Fatalf("decision=%+v", dec)
	}
	// S_ratio=80, threshold 30 => ceil(80/30)=3.
	if dec.Replicas != 3 {
		t.Fatalf("replicas=%d, want 3", dec.Replicas)
	}
}

func TestDecideReplicationCornerCaseBothLarge(t *testing.T) {
	cfg := testConfig()
	// Both enormous: all-subscribers must win (§III-B1 corner case).
	cl := ChannelLoad{Publications: 100000, Subscribers: 10000}
	// P_ratio = 10 < 1500... scale so both conditions trigger:
	// need P_ratio > 1500 AND S_ratio > 30 — mathematically exclusive
	// (P_ratio*S_ratio = 1), so the corner case in practice is huge pubs
	// with subs over the subscriber threshold but ratio tests competing.
	// Construct explicitly: pubs huge, subs just above threshold.
	cl = ChannelLoad{Publications: 1e6, Subscribers: 400}
	dec := decideReplication(cfg, cl)
	if dec.Strategy != plan.StrategyAllSubscribers {
		t.Fatalf("decision=%+v, want all-subscribers to win", dec)
	}
}

func TestDecideReplicationZeroSubscribers(t *testing.T) {
	cfg := testConfig()
	// No subscribers: P_ratio degenerates to raw publication rate.
	cl := ChannelLoad{Publications: 2000, Subscribers: 0}
	dec := decideReplication(cfg, cl)
	if dec.Strategy != plan.StrategyAllSubscribers {
		t.Fatalf("decision=%+v", dec)
	}
}

func TestDecideReplicationClamped(t *testing.T) {
	cfg := testConfig()
	cfg.MaxReplicas = 4
	cl := ChannelLoad{Publications: 1e9, Subscribers: 1}
	dec := decideReplication(cfg, cl)
	if dec.Replicas != 4 {
		t.Fatalf("replicas=%d, want clamp 4", dec.Replicas)
	}
}

func TestTrueChannelLoadCorrections(t *testing.T) {
	loads := []ServerLoad{
		{Server: "s1", Channels: map[string]ChannelLoad{"c": {Publications: 100, Subscribers: 50, BytesIn: 1000, Publishers: 10}}},
		{Server: "s2", Channels: map[string]ChannelLoad{"c": {Publications: 100, Subscribers: 50, BytesIn: 1000, Publishers: 10}}},
	}
	single := TrueChannelLoad(loads, "c", plan.Entry{Strategy: plan.StrategySingle, Servers: []string{"s1"}})
	if single.Publications != 200 || single.Subscribers != 100 {
		t.Fatalf("single: %+v", single)
	}
	// All-subscribers: every replica sees every subscriber => divide subs.
	as := TrueChannelLoad(loads, "c", plan.Entry{Strategy: plan.StrategyAllSubscribers, Servers: []string{"s1", "s2"}})
	if as.Subscribers != 50 || as.Publications != 200 {
		t.Fatalf("all-subscribers: %+v", as)
	}
	// All-publishers: every replica receives every publication => divide pubs.
	ap := TrueChannelLoad(loads, "c", plan.Entry{Strategy: plan.StrategyAllPublishers, Servers: []string{"s1", "s2"}})
	if ap.Publications != 100 || ap.Subscribers != 100 || ap.BytesIn != 1000 || ap.Publishers != 10 {
		t.Fatalf("all-publishers: %+v", ap)
	}
}

// --- GeneratePlan: channel-level -------------------------------------------

func TestGeneratePlanEnablesReplication(t *testing.T) {
	cfg := testConfig()
	pl := NewPlanner(cfg, nil, nil, 1.25e6)
	current := plan.New("s1", "s2", "s3")
	hot := current.Home("hot")

	loads := []ServerLoad{
		load("s1", 1.25e6, 1e5, nil),
		load("s2", 1.25e6, 1e5, nil),
		load("s3", 1.25e6, 1e5, nil),
	}
	// Put the hot channel's metrics on its home server.
	for i := range loads {
		if loads[i].Server == hot {
			loads[i].Channels["hot"] = ChannelLoad{Publications: 4000, Subscribers: 1, BytesOut: 4000 * 100}
		}
	}
	d := pl.GeneratePlan(current, loads)
	if d.Plan == nil {
		t.Fatal("no plan generated")
	}
	e, explicit := d.Plan.Lookup("hot")
	if !explicit || e.Strategy != plan.StrategyAllSubscribers {
		t.Fatalf("hot entry %+v explicit=%t", e, explicit)
	}
	if len(e.Servers) != 3 {
		t.Fatalf("replicas=%v", e.Servers)
	}
	if d.Plan.Version != current.Version+1 {
		t.Fatalf("version=%d", d.Plan.Version)
	}
	if !strings.Contains(d.Reason, "replication") {
		t.Fatalf("reason=%q", d.Reason)
	}
}

func TestGeneratePlanCancelsReplication(t *testing.T) {
	cfg := testConfig()
	pl := NewPlanner(cfg, nil, nil, 1.25e6)
	current := plan.New("s1", "s2", "s3")
	current.Set("cool", plan.Entry{Strategy: plan.StrategyAllSubscribers, Servers: []string{"s1", "s2"}})

	// Loads comfortably in the middle band so neither the high-load nor
	// the low-load pass kicks in and muddies the assertion.
	loads := []ServerLoad{
		load("s1", 1.25e6, 6e5, map[string]ChannelLoad{"cool": {Publications: 5, Subscribers: 3}}),
		load("s2", 1.25e6, 7e5, map[string]ChannelLoad{"cool": {Publications: 5, Subscribers: 3}}),
		load("s3", 1.25e6, 6.5e5, nil),
	}
	d := pl.GeneratePlan(current, loads)
	if d.Plan == nil {
		t.Fatal("no plan generated")
	}
	e, _ := d.Plan.Lookup("cool")
	if e.Strategy != plan.StrategySingle || len(e.Servers) != 1 {
		t.Fatalf("replication not cancelled: %+v", e)
	}
	// Collapses onto the least-loaded member (s1 at 1e5 vs s2 at 2e5).
	if e.Servers[0] != "s1" {
		t.Fatalf("collapsed onto %q, want least-loaded member s1", e.Servers[0])
	}
}

func TestGeneratePlanGrowsReplicaSetLeastLoadedFirst(t *testing.T) {
	cfg := testConfig()
	pl := NewPlanner(cfg, nil, nil, 1.25e6)
	current := plan.New("s1", "s2", "s3", "s4")
	current.Set("hot", plan.Entry{Strategy: plan.StrategyAllSubscribers, Servers: []string{"s1", "s2"}})

	loads := []ServerLoad{
		load("s1", 1.25e6, 3e5, map[string]ChannelLoad{"hot": {Publications: 3000, Subscribers: 1, BytesOut: 3e5}}),
		load("s2", 1.25e6, 3e5, map[string]ChannelLoad{"hot": {Publications: 3000, Subscribers: 1, BytesOut: 3e5}}),
		load("s3", 1.25e6, 9e5, nil), // busy
		load("s4", 1.25e6, 1e5, nil), // quiet — should be chosen
	}
	// True pubs = 6000/s => N = ceil((6000/1)/1500) = 4 but only 4 servers.
	d := pl.GeneratePlan(current, loads)
	if d.Plan == nil {
		t.Fatal("no plan")
	}
	e, _ := d.Plan.Lookup("hot")
	if len(e.Servers) != 4 {
		t.Fatalf("want 4 replicas, got %v", e.Servers)
	}
}

// --- GeneratePlan: high load -----------------------------------------------

// channelsHomedOn returns n channel names whose consistent-hash home in p is
// server (as in a real run, where traffic sits where the plan routed it).
func channelsHomedOn(p *plan.Plan, server string, n int) []string {
	var out []string
	for i := 0; len(out) < n; i++ {
		name := "ch" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
		if p.Home(name) == server {
			out = append(out, name)
		}
	}
	return out
}

func TestGeneratePlanHighLoadMigratesBusiestChannel(t *testing.T) {
	cfg := testConfig()
	pl := NewPlanner(cfg, nil, nil, 1.25e6)
	current := plan.New("s1", "s2")
	names := channelsHomedOn(current, "s1", 3)
	big, mid, small := names[0], names[1], names[2]

	// s1 overloaded (LR 0.96), s2 idle. Busiest channel on s1 is big.
	loads := []ServerLoad{
		load("s1", 1e6, 9.6e5, map[string]ChannelLoad{
			big:   {BytesOut: 5e5, Publications: 100, Subscribers: 10},
			mid:   {BytesOut: 3e5, Publications: 60, Subscribers: 10},
			small: {BytesOut: 1.6e5, Publications: 30, Subscribers: 10},
		}),
		load("s2", 1e6, 0, nil),
	}
	d := pl.GeneratePlan(current, loads)
	if d.Plan == nil {
		t.Fatal("no plan")
	}
	// big must now live on s2.
	e, explicit := d.Plan.Lookup(big)
	if !explicit || e.Servers[0] != "s2" {
		t.Fatalf("big: %+v explicit=%t", e, explicit)
	}
	if !strings.Contains(d.Reason, "high-load") {
		t.Fatalf("reason=%q", d.Reason)
	}
	if d.Spawn != 0 {
		t.Fatalf("unnecessary spawn: %+v", d)
	}
}

func TestGeneratePlanHighLoadStopsBelowSafe(t *testing.T) {
	cfg := testConfig()
	pl := NewPlanner(cfg, nil, nil, 1e6)
	current := plan.New("s1", "s2")
	// 10 channels of 1e5 each on s1 => LR 1.0; safe=0.75 means move until
	// est < 0.75 (i.e. move 3 channels).
	names := channelsHomedOn(current, "s1", 10)
	chans := map[string]ChannelLoad{}
	for _, name := range names {
		chans[name] = ChannelLoad{BytesOut: 1e5}
	}
	loads := []ServerLoad{
		load("s1", 1e6, 1e6, chans),
		load("s2", 1e6, 0, nil),
	}
	d := pl.GeneratePlan(current, loads)
	if d.Plan == nil {
		t.Fatal("no plan")
	}
	moved := 0
	for _, name := range names {
		if e, explicit := d.Plan.Lookup(name); explicit && e.Servers[0] == "s2" {
			moved++
		}
	}
	if moved < 3 || moved > 5 {
		t.Fatalf("moved %d channels, want ~3 (enough to reach LR_safe)", moved)
	}
}

func TestGeneratePlanHighLoadWantsSpawnWhenFull(t *testing.T) {
	cfg := testConfig()
	pl := NewPlanner(cfg, nil, nil, 1e6)
	current := plan.New("s1", "s2")
	// Both servers hot: migrating anywhere would overload the receiver.
	loads := []ServerLoad{
		load("s1", 1e6, 9.5e5, map[string]ChannelLoad{"a": {BytesOut: 5e5}, "b": {BytesOut: 4.5e5}}),
		load("s2", 1e6, 7.8e5, map[string]ChannelLoad{"c": {BytesOut: 7.8e5}}),
	}
	d := pl.GeneratePlan(current, loads)
	if d.Spawn != 1 {
		t.Fatalf("decision=%+v, want spawn", d)
	}
}

func TestGeneratePlanHighLoadRespectsMaxServers(t *testing.T) {
	cfg := testConfig()
	cfg.MaxServers = 2
	pl := NewPlanner(cfg, nil, nil, 1e6)
	current := plan.New("s1", "s2")
	loads := []ServerLoad{
		load("s1", 1e6, 9.5e5, map[string]ChannelLoad{"a": {BytesOut: 9.5e5}}),
		load("s2", 1e6, 9.5e5, map[string]ChannelLoad{"b": {BytesOut: 9.5e5}}),
	}
	d := pl.GeneratePlan(current, loads)
	if d.Spawn != 0 {
		t.Fatalf("spawned beyond MaxServers: %+v", d)
	}
}

func TestGeneratePlanControlChannelNeverMigrates(t *testing.T) {
	cfg := testConfig()
	isControl := func(ch string) bool { return strings.HasPrefix(ch, "__dynamoth.") }
	pl := NewPlanner(cfg, isControl, nil, 1e6)
	current := plan.New("s1", "s2")
	loads := []ServerLoad{
		load("s1", 1e6, 9.6e5, map[string]ChannelLoad{
			"__dynamoth.plan": {BytesOut: 9e5, Publications: 5000, Subscribers: 1},
			"user":            {BytesOut: 0.6e5},
		}),
		load("s2", 1e6, 0, nil),
	}
	d := pl.GeneratePlan(current, loads)
	if d.Plan != nil {
		if _, explicit := d.Plan.Lookup("__dynamoth.plan"); explicit {
			t.Fatal("control channel was migrated or replicated")
		}
	}
}

// --- GeneratePlan: low load ------------------------------------------------

func TestGeneratePlanLowLoadReleasesServer(t *testing.T) {
	cfg := testConfig()
	pinned := func(s string) bool { return s == "s1" }
	pl := NewPlanner(cfg, nil, pinned, 1e6)
	current := plan.New("s1", "s2", "s3")
	current.Set("a", plan.Entry{Strategy: plan.StrategySingle, Servers: []string{"s3"}})

	loads := []ServerLoad{
		load("s1", 1e6, 2e5, map[string]ChannelLoad{"x": {BytesOut: 2e5}}),
		load("s2", 1e6, 1.5e5, map[string]ChannelLoad{"y": {BytesOut: 1.5e5}}),
		load("s3", 1e6, 0.5e5, map[string]ChannelLoad{"a": {BytesOut: 0.5e5}}),
	}
	d := pl.GeneratePlan(current, loads)
	if d.Release != "s3" {
		t.Fatalf("decision=%+v, want release of s3", d)
	}
	if d.Plan == nil {
		t.Fatal("no plan")
	}
	if d.Plan.HasServer("s3") {
		t.Fatal("released server still in plan")
	}
	e, _ := d.Plan.Lookup("a")
	if e.Servers[0] == "s3" {
		t.Fatalf("channel a still on released server: %+v", e)
	}
}

func TestGeneratePlanLowLoadNeverReleasesPinned(t *testing.T) {
	cfg := testConfig()
	pinned := func(s string) bool { return s == "s1" }
	pl := NewPlanner(cfg, nil, pinned, 1e6)
	current := plan.New("s1", "s2")
	loads := []ServerLoad{
		load("s1", 1e6, 0, nil), // pinned and completely idle
		load("s2", 1e6, 3e5, map[string]ChannelLoad{"y": {BytesOut: 3e5}}),
	}
	d := pl.GeneratePlan(current, loads)
	if d.Release == "s1" {
		t.Fatal("pinned server released")
	}
}

func TestGeneratePlanLowLoadRespectsMinServers(t *testing.T) {
	cfg := testConfig()
	cfg.MinServers = 2
	pl := NewPlanner(cfg, nil, nil, 1e6)
	current := plan.New("s1", "s2")
	loads := []ServerLoad{
		load("s1", 1e6, 1e4, nil),
		load("s2", 1e6, 1e4, nil),
	}
	d := pl.GeneratePlan(current, loads)
	if d.Release != "" {
		t.Fatalf("released below MinServers: %+v", d)
	}
}

func TestGeneratePlanNoChangeReturnsNil(t *testing.T) {
	cfg := testConfig()
	pl := NewPlanner(cfg, nil, nil, 1e6)
	current := plan.New("s1", "s2")
	// Comfortable load everywhere, not low enough for release.
	loads := []ServerLoad{
		load("s1", 1e6, 5e5, map[string]ChannelLoad{"a": {BytesOut: 5e5}}),
		load("s2", 1e6, 5e5, map[string]ChannelLoad{"b": {BytesOut: 5e5}}),
	}
	d := pl.GeneratePlan(current, loads)
	if d.Changed() {
		t.Fatalf("decision=%+v, want no change", d)
	}
}

// --- Consistent-hashing baseline -------------------------------------------

func TestCHPlannerSpawnsOnOverload(t *testing.T) {
	cfg := testConfig()
	pl := NewCHPlanner(cfg)
	current := plan.New("s1")
	d := pl.GeneratePlan(current, []ServerLoad{load("s1", 1e6, 9.5e5, nil)})
	if d.Spawn != 1 {
		t.Fatalf("decision=%+v", d)
	}
	// Under threshold: nothing.
	d = pl.GeneratePlan(current, []ServerLoad{load("s1", 1e6, 5e5, nil)})
	if d.Changed() {
		t.Fatalf("decision=%+v, want none", d)
	}
}

func TestCHPlannerCapsAtMaxServers(t *testing.T) {
	cfg := testConfig()
	cfg.MaxServers = 1
	pl := NewCHPlanner(cfg)
	current := plan.New("s1")
	d := pl.GeneratePlan(current, []ServerLoad{load("s1", 1e6, 9.9e5, nil)})
	if d.Spawn != 0 {
		t.Fatalf("spawned past max: %+v", d)
	}
}

// --- estimator internals ----------------------------------------------------

func TestEstimatorMigrateAccounting(t *testing.T) {
	loads := []ServerLoad{
		load("s1", 1e6, 6e5, map[string]ChannelLoad{"a": {BytesOut: 4e5}, "b": {BytesOut: 2e5}}),
		load("s2", 1e6, 1e5, map[string]ChannelLoad{"c": {BytesOut: 1e5}}),
	}
	e := newEstimator(loads, []string{"s1", "s2"}, 1e6)
	if got := e.ratio("s1"); got != 0.6 {
		t.Fatalf("ratio s1=%f", got)
	}
	e.migrate("a", "s1", "s2")
	if got := e.ratio("s1"); got != 0.2 {
		t.Fatalf("after migrate, s1=%f", got)
	}
	if got := e.ratio("s2"); got != 0.5 {
		t.Fatalf("after migrate, s2=%f", got)
	}
	if got := e.channelOut("s2", "a"); got != 4e5 {
		t.Fatalf("channel attribution=%f", got)
	}
	s, r := e.maxRatio()
	if s != "s2" || r != 0.5 {
		t.Fatalf("maxRatio=%s/%f", s, r)
	}
	s, _ = e.minRatio("s2")
	if s != "s1" {
		t.Fatalf("minRatio=%s", s)
	}
}

func TestEstimatorUnreportedServerIsIdle(t *testing.T) {
	e := newEstimator(nil, []string{"fresh"}, 2e6)
	if got := e.ratio("fresh"); got != 0 {
		t.Fatalf("fresh server ratio=%f", got)
	}
	if got := e.maxBps["fresh"]; got != 2e6 {
		t.Fatalf("fresh server capacity=%f", got)
	}
}

func TestEstimatorDropBusiest(t *testing.T) {
	loads := []ServerLoad{
		load("s1", 1e6, 9e5, nil),
		load("s2", 1e6, 1e5, nil),
		load("s3", 1e6, 5e5, nil),
	}
	e := newEstimator(loads, []string{"s1", "s2", "s3"}, 1e6)
	kept := e.dropBusiest([]string{"s1", "s2", "s3"}, 1)
	if len(kept) != 2 || kept[0] != "s2" || kept[1] != "s3" {
		t.Fatalf("kept=%v", kept)
	}
}
