package balancer

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/trace"
)

// PlanGenerator is the planning strategy: the Dynamoth Planner or the
// consistent-hashing baseline CHPlanner.
type PlanGenerator interface {
	GeneratePlan(current *plan.Plan, loads []ServerLoad) Decision
}

var (
	_ PlanGenerator = (*Planner)(nil)
	_ PlanGenerator = (*CHPlanner)(nil)
)

// CloudProvider is what the orchestrator needs from the cloud: booting a new
// pub/sub node (blocking until ready) and releasing one.
type CloudProvider interface {
	Spawn(ctx context.Context) (plan.ServerID, error)
	Release(id plan.ServerID) error
}

// OrchestratorOptions wires a live load-balancer loop.
type OrchestratorOptions struct {
	// Planner decides plans (Dynamoth or CH baseline).
	Planner PlanGenerator
	// Config supplies T_wait and window parameters.
	Config Config
	// Initial is the bootstrap plan ("plan 0").
	Initial *plan.Plan
	// Reports delivers LLA aggregate updates.
	Reports <-chan *lla.Report
	// PublishPlan distributes a new plan to all dispatchers (and clients,
	// lazily). Called from the orchestrator goroutine.
	PublishPlan func(*plan.Plan)
	// Cloud provisions and releases servers. May be nil (fixed pool).
	Cloud CloudProvider
	// OnServerReady is called after a spawned server booted and joined the
	// plan — the cluster uses it to start the node's broker/LLA/dispatcher
	// before traffic arrives. May be nil.
	OnServerReady func(plan.ServerID)
	// ReleaseGrace delays the despawn of a released server so in-flight
	// forwarding can finish (default = 2×DrainTimeout analog, 20 s).
	ReleaseGrace time.Duration
	// Clock provides time (default real).
	Clock clock.Clock
	// DefaultMaxBps is assumed for servers that have not reported yet.
	DefaultMaxBps float64

	// Detect enables broker failure detection and automatic plan repair
	// with the given thresholds. Nil disables the failure tolerance layer
	// (the paper's fault-free model).
	Detect *lla.DetectorConfig
	// Probe checks one server's liveness (e.g. a RESP PING with a
	// deadline; the probe itself must enforce its timeout). Nil restricts
	// detection to report staleness.
	Probe func(plan.ServerID) error
	// ProbeInterval is how often every plan server is probed (default 2 s).
	ProbeInterval time.Duration
	// OnServerDead is called (from the detection goroutine) after a dead
	// server was evacuated from the plan — deployments use it to fence the
	// node (tear it down, stop routing to it). May be nil.
	OnServerDead func(plan.ServerID)
	// ReplaceFailed, when true and Cloud is set, spawns a replacement
	// server after each failure evacuation.
	ReplaceFailed bool

	// Recorder receives control-plane flight-recorder events (triggers,
	// plan computation, pushes, repairs, spawns). Nil records nothing.
	Recorder *trace.Recorder
	// Logger receives structured balancer logs (component-tagged). Nil
	// discards.
	Logger *slog.Logger
}

// Orchestrator runs the live load-balancer loop: it folds LLA reports into
// the metric state, invokes the planner at most once per T_wait, publishes
// resulting plans, and drives the cloud provider for spawns and releases.
type Orchestrator struct {
	opts     OrchestratorOptions
	state    *State
	detector *lla.Detector // nil when detection is disabled
	rec      *trace.Recorder
	log      *slog.Logger

	mu           sync.Mutex
	current      *plan.Plan
	lastPlanTime time.Time
	spawning     bool
	rebalances   int
	failures     int

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// NewOrchestrator creates a live balancer loop. Call Run (usually in a
// goroutine) and Stop.
func NewOrchestrator(opts OrchestratorOptions) *Orchestrator {
	if opts.Clock == nil {
		opts.Clock = clock.NewReal()
	}
	if opts.ReleaseGrace <= 0 {
		opts.ReleaseGrace = 20 * time.Second
	}
	if opts.DefaultMaxBps <= 0 {
		opts.DefaultMaxBps = 1.25e6
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	o := &Orchestrator{
		opts:  opts,
		state: NewState(opts.Config.Window),
		rec:   opts.Recorder,
		log:   trace.Component(opts.Logger, "balancer"),
		// Publishing plan 0 is unnecessary: every component boots with it.
		current: opts.Initial,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if opts.Detect != nil {
		o.detector = lla.NewDetector(*opts.Detect)
	}
	return o
}

// Plan returns the current plan.
func (o *Orchestrator) Plan() *plan.Plan {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.current
}

// Rebalances returns how many plan changes were published (the paper's
// diamond marks).
func (o *Orchestrator) Rebalances() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rebalances
}

// Failures returns how many servers the detector declared dead and the
// repair path evacuated.
func (o *Orchestrator) Failures() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.failures
}

// Run processes reports and ticks until Stop. It blocks; start it in a
// goroutine.
func (o *Orchestrator) Run() {
	defer close(o.done)
	if o.detector != nil {
		o.wg.Add(1)
		go o.detectLoop()
	}
	ticker := o.opts.Clock.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case r, ok := <-o.opts.Reports:
			if !ok {
				return
			}
			if r != nil {
				o.state.AddReport(r)
				if o.detector != nil {
					o.detector.ObserveReport(r.Server, o.opts.Clock.Now())
				}
			}
		case <-ticker.C():
			o.maybeRebalance()
		case <-o.stop:
			return
		}
	}
}

// Stop terminates Run and waits for in-flight spawn/release goroutines.
func (o *Orchestrator) Stop() {
	select {
	case <-o.stop:
	default:
		close(o.stop)
	}
	<-o.done
	o.wg.Wait()
}

func (o *Orchestrator) maybeRebalance() {
	now := o.opts.Clock.Now()
	o.mu.Lock()
	if !o.lastPlanTime.IsZero() && now.Sub(o.lastPlanTime) < o.opts.Config.TWait {
		o.mu.Unlock()
		return
	}
	current := o.current
	o.mu.Unlock()

	loads := o.loadsFor(current)
	compute := o.rec.StartSpan(trace.KindPlanCompute, 0, "")
	decision := o.opts.Planner.GeneratePlan(current, loads)
	if !decision.Changed() {
		return
	}
	nextVersion := current.Version
	if decision.Plan != nil {
		nextVersion = decision.Plan.Version
	}
	compute.EndAt(nextVersion, decision.Reason, int64(len(loads)))

	// The trigger carries the planner's reason and the worst load ratio it
	// saw; each LLA reading behind the decision is recorded alongside (ratio
	// in millionths, measured bytes/sec in Aux).
	var lrMax float64
	for _, l := range loads {
		r := l.RatioCPUAware()
		if r > lrMax {
			lrMax = r
		}
		o.rec.Record(trace.KindLoad, nextVersion, l.Server, "", int64(r*1e6), int64(l.MeasuredBps))
	}
	o.rec.Record(trace.KindTrigger, nextVersion, "", decision.Reason, int64(lrMax*1e6), int64(len(loads)))
	o.log.Info("rebalance triggered",
		slog.String("reason", decision.Reason),
		slog.Uint64("plan", nextVersion),
		slog.Float64("lrMax", lrMax),
		slog.Int("servers", len(loads)))

	o.mu.Lock()
	var sinceLast time.Duration
	if !o.lastPlanTime.IsZero() {
		sinceLast = now.Sub(o.lastPlanTime)
	}
	o.lastPlanTime = now
	o.rebalances++
	if decision.Plan != nil {
		o.current = decision.Plan
	}
	alreadySpawning := o.spawning
	if decision.Spawn > 0 && !alreadySpawning {
		o.spawning = true
	}
	o.mu.Unlock()

	if sinceLast > 0 {
		o.rec.Record(trace.KindTWait, nextVersion, "", "", sinceLast.Nanoseconds(), 0)
	}
	if decision.Plan != nil && o.opts.PublishPlan != nil {
		o.opts.PublishPlan(decision.Plan)
	}
	if decision.Spawn > 0 && !alreadySpawning && o.opts.Cloud != nil {
		o.wg.Add(1)
		go o.spawnOne()
	}
	if decision.Release != "" {
		o.rec.Record(trace.KindRelease, nextVersion, string(decision.Release), "graceful", 0, 0)
		o.log.Info("releasing server", slog.String("server", string(decision.Release)))
		o.state.Forget(decision.Release)
		if o.detector != nil {
			// Gracefully released — its silence is not a failure.
			o.detector.Forget(decision.Release)
		}
		if o.opts.Cloud != nil {
			o.wg.Add(1)
			go o.releaseAfterGrace(decision.Release)
		}
	}
}

// loadsFor snapshots the metric state, synthesizing idle entries for plan
// servers that have not reported yet (fresh boots).
func (o *Orchestrator) loadsFor(current *plan.Plan) []ServerLoad {
	loads := o.state.Snapshot()
	have := make(map[string]struct{}, len(loads))
	for _, l := range loads {
		have[l.Server] = struct{}{}
	}
	for _, s := range current.Servers {
		if _, ok := have[s]; !ok {
			loads = append(loads, ServerLoad{
				Server:   s,
				MaxBps:   o.opts.DefaultMaxBps,
				Channels: map[string]ChannelLoad{},
			})
		}
	}
	// Drop reports from servers no longer in the plan.
	kept := loads[:0]
	for _, l := range loads {
		if current.HasServer(l.Server) {
			kept = append(kept, l)
		}
	}
	return kept
}

func (o *Orchestrator) spawnOne() {
	defer o.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-o.stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	boot := o.rec.StartSpan(trace.KindSpawn, 0, "")
	id, err := o.opts.Cloud.Spawn(ctx)

	o.mu.Lock()
	o.spawning = false
	if err != nil {
		o.mu.Unlock()
		o.log.Warn("spawn failed", slog.Any("err", err))
		return
	}
	next := o.current.Clone()
	next.Version = o.current.Version + 1
	// New servers join the fallback ring: clients hash unmapped channels
	// over the active server set (§II-C), learning the membership lazily
	// from switch/redirect notifications.
	next.AddRingServer(id)
	o.current = next
	o.rebalances++
	o.lastPlanTime = o.opts.Clock.Now()
	o.mu.Unlock()

	boot.SetSubject(string(id))
	boot.EndAt(next.Version, "ready", 0)
	o.log.Info("server spawned", slog.String("server", string(id)), slog.Uint64("plan", next.Version))
	if o.opts.OnServerReady != nil {
		o.opts.OnServerReady(id)
	}
	if o.opts.PublishPlan != nil {
		o.opts.PublishPlan(next)
	}
}

// detectLoop is the failure-detection side of the balancer: it probes every
// plan server on ProbeInterval, folds outcomes into the detector (reports
// arrive through Run), and triggers plan repair for servers declared dead.
func (o *Orchestrator) detectLoop() {
	defer o.wg.Done()
	ticker := o.opts.Clock.NewTicker(o.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C():
		case <-o.stop:
			return
		}
		now := o.opts.Clock.Now()
		servers := o.Plan().Servers
		for _, s := range servers {
			o.detector.Track(s, now)
		}
		if o.opts.Probe != nil {
			// Probe concurrently: each probe carries its own deadline, and a
			// dead server must not delay the liveness verdict of the rest.
			var pw sync.WaitGroup
			for _, s := range servers {
				pw.Add(1)
				go func(s plan.ServerID) {
					defer pw.Done()
					err := o.opts.Probe(s)
					o.detector.ObserveProbe(s, err == nil)
				}(s)
			}
			pw.Wait()
		}
		verdictAt := o.opts.Clock.Now()
		deadServers := o.detector.Dead(verdictAt)
		if len(deadServers) == 0 {
			continue
		}
		// Snapshot the verdict evidence (consecutive probe misses, report
		// staleness) before repair forgets the server.
		evidence := make(map[string]lla.ServerStatus, len(deadServers))
		for _, st := range o.detector.Status() {
			evidence[st.Server] = st
		}
		for _, dead := range deadServers {
			st := evidence[dead]
			o.repairFailure(dead, st.Misses, verdictAt.Sub(st.LastReport))
		}
	}
}

// repairFailure evacuates a dead server: it publishes a repaired plan (ring
// successors take over its channels), forgets its metrics, fences the node
// via OnServerDead, and optionally spawns a replacement. Repair is exempt
// from the T_wait throttle — recovery latency, not plan churn, dominates
// tail latency during failures.
func (o *Orchestrator) repairFailure(dead plan.ServerID, probeMisses int, staleness time.Duration) {
	repair := o.rec.StartSpan(trace.KindRepair, 0, dead)
	o.mu.Lock()
	// Count the channels the repair will evacuate before the plan is
	// rewritten — the timeline's "evacuation set" evidence.
	evacuated := 0
	for _, e := range o.current.Channels {
		for _, s := range e.Servers {
			if s == dead {
				evacuated++
				break
			}
		}
	}
	next, changed := RepairPlan(o.current, dead)
	if !changed {
		o.mu.Unlock()
		o.detector.Forget(dead)
		return
	}
	o.current = next
	o.rebalances++
	o.failures++
	o.lastPlanTime = o.opts.Clock.Now()
	wantReplacement := o.opts.ReplaceFailed && o.opts.Cloud != nil && !o.spawning
	if wantReplacement {
		o.spawning = true
	}
	o.mu.Unlock()

	o.rec.Record(trace.KindDetect, next.Version, dead, "verdict:dead", int64(probeMisses), staleness.Nanoseconds())
	o.log.Warn("server declared dead",
		slog.String("server", dead),
		slog.Int("probeMisses", probeMisses),
		slog.Duration("staleness", staleness),
		slog.Uint64("repairPlan", next.Version),
		slog.Int("evacuatedChannels", evacuated))

	o.state.Forget(dead)
	o.detector.Forget(dead)
	if o.opts.OnServerDead != nil {
		o.opts.OnServerDead(dead)
	}
	if o.opts.PublishPlan != nil {
		o.opts.PublishPlan(next)
	}
	repair.EndAt(next.Version, "evacuated", int64(evacuated))
	if wantReplacement {
		o.wg.Add(1)
		go o.spawnOne()
	}
}

func (o *Orchestrator) releaseAfterGrace(id plan.ServerID) {
	defer o.wg.Done()
	timer := o.opts.Clock.NewTimer(o.opts.ReleaseGrace)
	select {
	case <-timer.C():
	case <-o.stop:
		timer.Stop()
		// Shutting down: release immediately.
	}
	_ = o.opts.Cloud.Release(id) // unknown instance on shutdown is fine
}
