// Package balancer implements the Dynamoth load balancer (paper §III): it
// aggregates the reports of all local load analyzers, computes per-server
// load ratios (eq. 1), and generates new plans through the two-step
// rebalancer — channel-level replication decisions (Algorithm 1) followed by
// system-level rebalancing (Algorithm 2 for high load, plus the low-load
// server-release pass the paper describes in prose). It also contains the
// consistent-hashing baseline that Experiment 2 compares against.
//
// All planning logic is pure (metrics in, plan out) so that the live
// balancer loop and the discrete-event simulator execute identical
// decisions.
package balancer

import "time"

// Config holds every threshold of the paper's algorithms. The paper set its
// values "empirically based on the capabilities of the machines"; these
// defaults are calibrated against the capacities in DESIGN.md §4/§5.
type Config struct {
	// LRHigh triggers high-load rebalancing when any server's load ratio
	// exceeds it (Algorithm 2 line 5).
	LRHigh float64
	// LRSafe is the target the rebalancer brings an overloaded server
	// below (Algorithm 2 line 9).
	LRSafe float64
	// LRLowAvg triggers low-load rebalancing when the global average load
	// ratio falls below it (§III-B4).
	LRLowAvg float64
	// LRMaxAccept is the highest estimated load ratio a server may reach
	// by receiving migrated channels (keeps rebalancing from overloading
	// the receiver, Algorithm 2's "recalculated as well" clause).
	LRMaxAccept float64

	// TWait is the minimum time between plan generations (§III-B).
	TWait time.Duration

	// AllSubsThreshold is Algorithm 1's P_ratio threshold
	// (publications per subscriber per second).
	AllSubsThreshold float64
	// PublicationThreshold is the minimum publications/second before
	// all-subscribers replication is considered.
	PublicationThreshold float64
	// AllPubsThreshold is Algorithm 1's S_ratio threshold
	// (subscribers per publication per second).
	AllPubsThreshold float64
	// SubscriberThreshold is the minimum subscriber count before
	// all-publishers replication is considered.
	SubscriberThreshold float64
	// MaxReplicas caps the replica count Algorithm 1 may request.
	MaxReplicas int

	// MinServers and MaxServers bound the server pool (the paper's
	// Experiment 2 used 1..8).
	MinServers int
	MaxServers int

	// Window is how many recent time units of metrics the planner
	// averages over.
	Window int

	// UseCPU folds the reported CPU utilization into the load ratio
	// (LR = max(bandwidth, CPU)) — the paper's §VII future-work extension
	// for vCPU-constrained clouds. Off by default because the paper's
	// measurements showed outgoing bandwidth saturates first (§III-A).
	UseCPU bool
}

// DefaultConfig returns the calibrated defaults (DESIGN.md §5).
func DefaultConfig() Config {
	return Config{
		LRHigh:               0.90,
		LRSafe:               0.75,
		LRLowAvg:             0.40,
		LRMaxAccept:          0.80,
		TWait:                10 * time.Second,
		AllSubsThreshold:     1500, // pubs/sec per subscriber a single server tolerates
		PublicationThreshold: 600,  // pubs/sec
		AllPubsThreshold:     30,   // subscribers per pub/sec a single server tolerates
		SubscriberThreshold:  300,  // subscribers
		MaxReplicas:          8,
		MinServers:           1,
		MaxServers:           8,
		Window:               5,
	}
}
