package balancer

import (
	"testing"

	"github.com/dynamoth/dynamoth/internal/lla"
)

func report(server string, seq uint64, maxBps, measured float64, units ...lla.UnitStats) *lla.Report {
	return &lla.Report{
		Server:              server,
		Seq:                 seq,
		Units:               units,
		MaxOutgoingBps:      maxBps,
		MeasuredOutgoingBps: measured,
	}
}

func unit(idx int64, chans ...lla.ChannelStats) lla.UnitStats {
	return lla.UnitStats{Unit: idx, Channels: chans}
}

func chanStats(ch string, pubs, publications, subs, sent int, in, out int64) lla.ChannelStats {
	return lla.ChannelStats{
		Channel: ch, Publishers: pubs, Publications: publications,
		Subscribers: subs, MessagesSent: sent, BytesIn: in, BytesOut: out,
	}
}

func TestStateSnapshotAveraging(t *testing.T) {
	st := NewState(5)
	st.AddReport(report("s1", 1, 1000, 500,
		unit(0, chanStats("a", 1, 10, 2, 20, 100, 200)),
		unit(1, chanStats("a", 1, 30, 4, 120, 300, 1200)),
	))
	snap := st.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot=%d servers", len(snap))
	}
	s := snap[0]
	if s.Server != "s1" || s.MaxBps != 1000 || s.MeasuredBps != 500 {
		t.Fatalf("server fields %+v", s)
	}
	if got := s.Ratio(); got != 0.5 {
		t.Fatalf("Ratio=%f", got)
	}
	a := s.Channels["a"]
	if a.Publications != 20 { // (10+30)/2
		t.Fatalf("Publications=%f", a.Publications)
	}
	if a.Subscribers != 4 { // latest, not averaged
		t.Fatalf("Subscribers=%f", a.Subscribers)
	}
	if a.BytesOut != 700 { // (200+1200)/2
		t.Fatalf("BytesOut=%f", a.BytesOut)
	}
}

func TestStateWindowTrimming(t *testing.T) {
	st := NewState(2)
	st.AddReport(report("s1", 1, 1000, 100,
		unit(0, chanStats("a", 1, 100, 1, 100, 0, 1000)),
		unit(1, chanStats("a", 1, 100, 1, 100, 0, 1000)),
		unit(2, chanStats("a", 1, 10, 1, 10, 0, 10)),
		unit(3, chanStats("a", 1, 10, 1, 10, 0, 10)),
	))
	snap := st.Snapshot()
	if got := snap[0].Channels["a"].Publications; got != 10 {
		t.Fatalf("window not trimmed: publications=%f", got)
	}
}

func TestStateStaleReportIgnored(t *testing.T) {
	st := NewState(5)
	st.AddReport(report("s1", 2, 1000, 800))
	st.AddReport(report("s1", 1, 1000, 100)) // stale
	if got := st.Snapshot()[0].MeasuredBps; got != 800 {
		t.Fatalf("stale report applied: measured=%f", got)
	}
}

func TestStateForgetAndServers(t *testing.T) {
	st := NewState(5)
	st.AddReport(report("b", 1, 1, 0))
	st.AddReport(report("a", 1, 1, 0))
	if got := st.Servers(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Servers=%v", got)
	}
	st.Forget("a")
	if got := st.Servers(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("after Forget: %v", got)
	}
}

func TestServerLoadBusiestChannel(t *testing.T) {
	s := ServerLoad{
		Channels: map[string]ChannelLoad{
			"small":   {BytesOut: 10},
			"big":     {BytesOut: 1000},
			"control": {BytesOut: 99999},
		},
	}
	ch, out, ok := s.BusiestChannel(func(c string) bool { return c == "control" })
	if !ok || ch != "big" || out != 1000 {
		t.Fatalf("BusiestChannel=%q/%f/%t", ch, out, ok)
	}
	empty := ServerLoad{Channels: map[string]ChannelLoad{}}
	if _, _, ok := empty.BusiestChannel(nil); ok {
		t.Fatal("empty server reported a busiest channel")
	}
}

func TestTotalChannelLoad(t *testing.T) {
	loads := []ServerLoad{
		{Server: "s1", Channels: map[string]ChannelLoad{"c": {Publications: 10, Subscribers: 5, BytesOut: 100}}},
		{Server: "s2", Channels: map[string]ChannelLoad{"c": {Publications: 20, Subscribers: 5, BytesOut: 300}}},
		{Server: "s3", Channels: map[string]ChannelLoad{"other": {Publications: 99}}},
	}
	total := TotalChannelLoad(loads, "c")
	if total.Publications != 30 || total.Subscribers != 10 || total.BytesOut != 400 {
		t.Fatalf("total=%+v", total)
	}
}

func TestRatioZeroCapacity(t *testing.T) {
	s := ServerLoad{MeasuredBps: 100}
	if s.Ratio() != 0 {
		t.Fatal("zero-capacity ratio not 0")
	}
}
