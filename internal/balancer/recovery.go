package balancer

import (
	"github.com/dynamoth/dynamoth/internal/plan"
)

// RepairPlan builds the successor plan after a server failure: the dead
// server is removed from the active set and the fallback ring, and every
// explicitly mapped channel that named it is evacuated onto its consistent-
// hash ring successor among the survivors. The replication strategy and
// replica count of each entry are preserved when a distinct survivor exists;
// otherwise the entry shrinks by the dead replica (never to zero while any
// survivor remains).
//
// The ring successor is deliberately the same server a failed-over client
// picks when its dial to the dead server errors out (the client walks the
// channel's ring candidates): publishers and the repaired plan converge on
// the same survivor even before the new plan or its switch notifications
// arrive, and the in-flight SWITCH/dedup machinery absorbs the overlap
// exactly-once as in any other migration.
//
// The returned plan carries Version = current.Version + 1. changed reports
// whether the dead server actually appeared anywhere in the current plan.
func RepairPlan(current *plan.Plan, dead plan.ServerID) (next *plan.Plan, changed bool) {
	inServers := current.HasServer(dead)
	inRing := false
	for _, s := range current.RingServers {
		if s == dead {
			inRing = true
			break
		}
	}
	next = current.Clone()
	next.Version = current.Version + 1
	if !inServers && !inRing {
		// Not a member: still scrub stray channel references defensively.
		changed = scrubChannels(current, next, dead)
		return next, changed
	}
	next.RemoveServer(dead)
	scrubChannels(current, next, dead)
	return next, true
}

// scrubChannels rewrites every explicit entry of next that references dead,
// substituting ring successors drawn from next's (survivor-only) ring. It
// reports whether any entry referenced the dead server.
func scrubChannels(current, next *plan.Plan, dead plan.ServerID) bool {
	touched := false
	for ch, e := range current.Channels {
		idx := -1
		for i, s := range e.Servers {
			if s == dead {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		touched = true
		survivors := make([]plan.ServerID, 0, len(e.Servers))
		for _, s := range e.Servers {
			if s != dead {
				survivors = append(survivors, s)
			}
		}
		if repl, ok := ringSuccessor(next, ch, survivors); ok {
			survivors = append(survivors, repl)
		}
		if len(survivors) == 0 {
			// No replacement available at all (empty pool): drop the entry,
			// the fallback ring (also empty) is no worse.
			next.Unset(ch)
			continue
		}
		next.Set(ch, plan.Entry{Strategy: e.Strategy, Servers: survivors})
	}
	return touched
}

// ringSuccessor picks the first server in ch's ring order (on next's ring,
// which no longer contains the dead server) that is not already a replica.
func ringSuccessor(next *plan.Plan, ch string, have []plan.ServerID) (plan.ServerID, bool) {
	for _, cand := range next.Ring().LookupN(ch, len(next.RingServers)) {
		used := false
		for _, s := range have {
			if s == cand {
				used = true
				break
			}
		}
		if !used {
			return cand, true
		}
	}
	return "", false
}
