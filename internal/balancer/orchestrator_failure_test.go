package balancer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/plan"
)

// startDetectingOrchestrator runs an orchestrator with failure detection over
// a pub1+pub2 plan where "room" is explicitly mapped to pub2.
func startDetectingOrchestrator(t *testing.T, opts OrchestratorOptions) (*Orchestrator, func() []*plan.Plan) {
	t.Helper()
	initial := plan.New("pub1", "pub2")
	initial.Version = 1
	initial.Set("room", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"pub2"}})
	var mu sync.Mutex
	var published []*plan.Plan
	opts.Planner = &scriptedPlanner{}
	opts.Config = DefaultConfig()
	opts.Config.TWait = time.Hour // prove repair is exempt from the throttle
	opts.Initial = initial
	if opts.Reports == nil {
		opts.Reports = make(chan *lla.Report, 16)
	}
	opts.PublishPlan = func(p *plan.Plan) {
		mu.Lock()
		published = append(published, p)
		mu.Unlock()
	}
	if opts.Clock == nil {
		opts.Clock = clock.NewReal()
	}
	o := NewOrchestrator(opts)
	go o.Run()
	t.Cleanup(o.Stop)
	return o, func() []*plan.Plan {
		mu.Lock()
		defer mu.Unlock()
		return append([]*plan.Plan(nil), published...)
	}
}

func TestOrchestratorProbeFailureRepairsPlan(t *testing.T) {
	var deadMu sync.Mutex
	var fenced []plan.ServerID
	o, published := startDetectingOrchestrator(t, OrchestratorOptions{
		Detect:        &lla.DetectorConfig{StaleAfter: time.Hour, ProbeMisses: 3},
		ProbeInterval: 5 * time.Millisecond,
		Probe: func(id plan.ServerID) error {
			if id == "pub2" {
				return errors.New("connection refused")
			}
			return nil
		},
		OnServerDead: func(id plan.ServerID) {
			deadMu.Lock()
			fenced = append(fenced, id)
			deadMu.Unlock()
		},
	})

	waitFor(t, "failure repair", func() bool { return o.Failures() == 1 })
	p := o.Plan()
	if p.HasServer("pub2") {
		t.Fatalf("dead server still in plan: %v", p.Servers)
	}
	if e, _ := p.Lookup("room"); len(e.Servers) != 1 || e.Servers[0] != "pub1" {
		t.Fatalf("room not evacuated: %+v", e)
	}
	waitFor(t, "repaired plan published despite T_wait", func() bool { return len(published()) >= 1 })
	if got := published()[0]; got.Version != 2 || got.HasServer("pub2") {
		t.Fatalf("published plan: v%d servers=%v", got.Version, got.Servers)
	}
	deadMu.Lock()
	defer deadMu.Unlock()
	if len(fenced) != 1 || fenced[0] != "pub2" {
		t.Fatalf("fenced=%v", fenced)
	}
	// The healthy server must not be collateral damage.
	if o.Failures() != 1 {
		t.Fatalf("failures=%d", o.Failures())
	}
}

func TestOrchestratorStalenessRepairsSilentPartition(t *testing.T) {
	// No probes at all: only pub2's report silence gives it away.
	reports := make(chan *lla.Report, 16)
	o, _ := startDetectingOrchestrator(t, OrchestratorOptions{
		Detect:        &lla.DetectorConfig{StaleAfter: 100 * time.Millisecond, ProbeMisses: 1 << 30},
		ProbeInterval: 5 * time.Millisecond,
		Reports:       reports,
	})
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				seq++
				select {
				case reports <- &lla.Report{Server: "pub1", Seq: seq, MaxOutgoingBps: 1000}:
				default:
				}
			}
		}
	}()

	waitFor(t, "staleness repair", func() bool { return o.Failures() == 1 })
	p := o.Plan()
	if p.HasServer("pub2") {
		t.Fatalf("silent server still in plan: %v", p.Servers)
	}
	if !p.HasServer("pub1") {
		t.Fatalf("reporting server evacuated: %v", p.Servers)
	}
}

func TestOrchestratorReplacesFailedServer(t *testing.T) {
	cloud := &fakeCloud{}
	o, _ := startDetectingOrchestrator(t, OrchestratorOptions{
		Detect:        &lla.DetectorConfig{StaleAfter: time.Hour, ProbeMisses: 2},
		ProbeInterval: 5 * time.Millisecond,
		Probe: func(id plan.ServerID) error {
			if id == "pub2" {
				return errors.New("down")
			}
			return nil
		},
		Cloud:         cloud,
		ReplaceFailed: true,
	})
	waitFor(t, "replacement spawn", func() bool {
		s, _ := cloud.counts()
		return s == 1 && o.Plan().HasServer("new1")
	})
	if o.Plan().HasServer("pub2") {
		t.Fatal("dead server resurrected")
	}
}
