package balancer

import (
	"fmt"
	"strings"

	"github.com/dynamoth/dynamoth/internal/plan"
)

// Decision is the outcome of one planning round.
type Decision struct {
	// Plan is the new plan to publish, or nil if the current plan stands.
	Plan *plan.Plan
	// Spawn is how many additional servers the planner wants rented from
	// the cloud (high-load with no spare capacity).
	Spawn int
	// Release names a server the new plan no longer uses; the orchestrator
	// should despawn it after a grace period.
	Release string
	// Reason is a human-readable summary for logs and experiment marks.
	Reason string
}

// Changed reports whether the decision does anything.
func (d Decision) Changed() bool {
	return d.Plan != nil || d.Spawn > 0 || d.Release != ""
}

// Planner generates plans from load snapshots. It is pure: no clocks, no
// I/O; both the live balancer and the simulator call it.
type Planner struct {
	cfg Config
	// isControl marks channels that must never be migrated or replicated
	// (the Dynamoth control plane rides on pinned channels).
	isControl func(string) bool
	// pinned marks servers that must never be released (the control-plane
	// home server).
	pinned func(string) bool
	// defaultMaxBps is the assumed capacity of servers that have not
	// reported yet.
	defaultMaxBps float64
	// cooldown maps a channel to the planning round that last moved it;
	// round counts GeneratePlan invocations. A freshly moved channel is
	// not moved again for cooldownRounds: right after a migration the
	// metric window still attributes its traffic to the old server, and
	// acting on that stale attribution makes channels ping-pong between
	// servers. (Rounds, not plan versions: a cooldown that only expires
	// on a version bump deadlocks when the blocked change is the only
	// pending one.)
	cooldown map[string]uint64
	round    uint64
}

// cooldownRounds is how many planning rounds a just-moved channel stays
// unmovable. While plans are being produced the planner runs once per
// T_wait, so 2 rounds ≈ two plan cycles (enough for the metric window to
// reflect the move); during quiet stretches it runs every tick, so an
// aborted change retries within seconds.
const cooldownRounds = 2

// NewPlanner creates a planner. isControl and pinned may be nil.
func NewPlanner(cfg Config, isControl func(string) bool, pinned func(string) bool, defaultMaxBps float64) *Planner {
	if defaultMaxBps <= 0 {
		defaultMaxBps = 1.25e6
	}
	return &Planner{
		cfg:           cfg,
		isControl:     isControl,
		pinned:        pinned,
		defaultMaxBps: defaultMaxBps,
		cooldown:      make(map[string]uint64),
	}
}

// Config returns the planner's configuration.
func (pl *Planner) Config() Config { return pl.cfg }

// GeneratePlan runs one two-step rebalancing round (§III-B): channel-level
// replication decisions, then system-level high-load or low-load
// rebalancing. current is the active plan; loads the latest metric
// snapshot. The returned decision's plan (if any) carries version
// current.Version+1.
func (pl *Planner) GeneratePlan(current *plan.Plan, loads []ServerLoad) Decision {
	pl.round++
	next := current.Clone()
	est := newEstimator(loads, next.Servers, pl.defaultMaxBps)
	est.useCPU = pl.cfg.UseCPU

	// A channel is untouchable if it is control-plane traffic or still in
	// its post-migration cooldown (metrics have not settled yet).
	skip := func(ch string) bool {
		if pl.isControl != nil && pl.isControl(ch) {
			return true
		}
		if moved, ok := pl.cooldown[ch]; ok {
			if pl.round < moved+cooldownRounds {
				return true
			}
			delete(pl.cooldown, ch)
		}
		return false
	}

	var reasons []string

	// Step 1: channel-level (micro) rebalancing.
	if replChanged := applyChannelLevel(pl.cfg, next, loads, est, skip); len(replChanged) > 0 {
		reasons = append(reasons, fmt.Sprintf("replication:%d", len(replChanged)))
	}

	// Step 2: system-level (macro) rebalancing.
	spawn := 0
	release := ""
	_, lrMax := est.maxRatio()
	switch {
	case lrMax >= pl.cfg.LRHigh:
		migrations, wantSpawn := highLoadRebalance(pl.cfg, next, est, skip)
		if migrations > 0 {
			reasons = append(reasons, fmt.Sprintf("high-load:%d moves", migrations))
		}
		if wantSpawn && len(next.Servers) < pl.cfg.MaxServers {
			spawn = 1
			reasons = append(reasons, "spawn:1")
		}
	default:
		var migrations int
		movable := func(ch string) bool { return !skip(ch) }
		release, migrations = lowLoadRebalance(pl.cfg, next, est, pl.isControl, movable, pl.pinned)
		if migrations > 0 {
			reasons = append(reasons, fmt.Sprintf("low-load:%d moves", migrations))
		}
		if release != "" {
			reasons = append(reasons, "release:"+release)
		}
	}

	d := Decision{Spawn: spawn, Release: release, Reason: strings.Join(reasons, " ")}
	if changes := next.Diff(current); len(changes) > 0 || len(next.Servers) != len(current.Servers) {
		next.Version = current.Version + 1
		for _, ch := range changes {
			pl.cooldown[ch.Channel] = pl.round
		}
		d.Plan = next
	}
	return d
}

// CHPlanner is the consistent-hashing baseline of Experiment 2 (§V-D):
// channels are mapped purely by the hash ring; when any server overloads, a
// new server is added to the ring, shedding 1/N of every server's
// identifiers irrespective of load. Servers are never released (the paper
// notes the baseline "has to spawn a new server every time a rebalancing
// occurs, which is not cost efficient").
type CHPlanner struct {
	cfg Config
}

// NewCHPlanner creates the baseline planner.
func NewCHPlanner(cfg Config) *CHPlanner { return &CHPlanner{cfg: cfg} }

// GeneratePlan adds one server to the ring when any server's measured load
// ratio exceeds LR_high. It never creates explicit channel mappings.
func (pl *CHPlanner) GeneratePlan(current *plan.Plan, loads []ServerLoad) Decision {
	overloaded := false
	for _, l := range loads {
		if l.Ratio() >= pl.cfg.LRHigh {
			overloaded = true
			break
		}
	}
	if !overloaded {
		return Decision{}
	}
	if len(current.Servers) >= pl.cfg.MaxServers {
		return Decision{Reason: "overloaded, at max servers"}
	}
	return Decision{Spawn: 1, Reason: "consistent-hashing: add server"}
}
