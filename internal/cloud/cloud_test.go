package cloud

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSpawnReleaseLifecycle(t *testing.T) {
	sim := NewSimulator(Config{BootDelay: time.Millisecond, NamePrefix: "srv"})
	id, err := sim.Spawn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if id != "srv1" {
		t.Fatalf("id=%q", id)
	}
	if got := sim.Running(); got != 1 {
		t.Fatalf("Running=%d", got)
	}
	if err := sim.Release(id); err != nil {
		t.Fatal(err)
	}
	if got := sim.Running(); got != 0 {
		t.Fatalf("Running after release=%d", got)
	}
	if err := sim.Release(id); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("double release err=%v", err)
	}
	if err := sim.Release("nope"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("unknown release err=%v", err)
	}
}

func TestSpawnBootDelayOnClock(t *testing.T) {
	clk := clock.NewManual(epoch)
	sim := NewSimulator(Config{BootDelay: 10 * time.Second, Clock: clk})
	done := make(chan string, 1)
	go func() {
		id, err := sim.Spawn(context.Background())
		if err != nil {
			done <- "err:" + err.Error()
			return
		}
		done <- id
	}()
	select {
	case v := <-done:
		t.Fatalf("spawn completed before boot delay: %v", v)
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(11 * time.Second)
	select {
	case v := <-done:
		if v != "pub1" {
			t.Fatalf("spawn result %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("spawn never completed after boot delay")
	}
}

func TestSpawnCancelled(t *testing.T) {
	clk := clock.NewManual(epoch)
	sim := NewSimulator(Config{BootDelay: time.Hour, Clock: clk})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sim.Spawn(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled spawn never returned")
	}
	if sim.Running() != 0 {
		t.Fatal("cancelled spawn left an instance running")
	}
}

func TestMaxInstances(t *testing.T) {
	sim := NewSimulator(Config{BootDelay: time.Millisecond, MaxInstances: 1})
	if _, err := sim.Spawn(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Spawn(context.Background()); !errors.Is(err, ErrAtCapacity) {
		t.Fatalf("over-capacity spawn err=%v", err)
	}
}

func TestInstanceHoursAndCost(t *testing.T) {
	clk := clock.NewManual(epoch)
	sim := NewSimulator(Config{BootDelay: time.Second, Clock: clk, CostPerHour: 2})
	done := make(chan string, 1)
	go func() {
		id, _ := sim.Spawn(context.Background())
		done <- id
	}()
	time.Sleep(10 * time.Millisecond)
	clk.Advance(time.Second)
	id := <-done

	clk.Advance(30 * time.Minute)
	if got := sim.InstanceHours(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("InstanceHours=%f want 0.5", got)
	}
	if err := sim.Release(id); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Hour) // stopped instances accrue nothing further
	if got := sim.InstanceHours(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("InstanceHours after release=%f want 0.5", got)
	}
	if got := sim.Cost(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Cost=%f want 1.0", got)
	}
}
