package cloud

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSpawnReleaseLifecycle(t *testing.T) {
	sim := NewSimulator(Config{BootDelay: time.Millisecond, NamePrefix: "srv"})
	id, err := sim.Spawn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if id != "srv1" {
		t.Fatalf("id=%q", id)
	}
	if got := sim.Running(); got != 1 {
		t.Fatalf("Running=%d", got)
	}
	if err := sim.Release(id); err != nil {
		t.Fatal(err)
	}
	if got := sim.Running(); got != 0 {
		t.Fatalf("Running after release=%d", got)
	}
	if err := sim.Release(id); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("double release err=%v, want ErrNotRunning", err)
	}
	if err := sim.Release("nope"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("unknown release err=%v", err)
	}
}

func TestCrashStopsBillingAndRelease(t *testing.T) {
	clk := clock.NewManual(epoch)
	sim := NewSimulator(Config{BootDelay: time.Second, Clock: clk})
	done := make(chan string, 1)
	go func() {
		id, _ := sim.Spawn(context.Background())
		done <- id
	}()
	time.Sleep(10 * time.Millisecond)
	clk.Advance(time.Second)
	id := <-done

	clk.Advance(30 * time.Minute)
	if err := sim.Crash(id); err != nil {
		t.Fatal(err)
	}
	if !sim.Crashed(id) {
		t.Fatal("Crashed=false after Crash")
	}
	if sim.Running() != 0 {
		t.Fatalf("Running=%d after crash", sim.Running())
	}
	// InstanceHours must stop accruing at crash time.
	clk.Advance(2 * time.Hour)
	if got := sim.InstanceHours(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("InstanceHours after crash=%f want 0.5", got)
	}
	// Releasing (or re-crashing) a crashed instance is ErrNotRunning, not a
	// silent success and not "unknown".
	if err := sim.Release(id); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("release after crash err=%v, want ErrNotRunning", err)
	}
	if err := sim.Crash(id); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("double crash err=%v, want ErrNotRunning", err)
	}
	if err := sim.Crash("nope"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("unknown crash err=%v", err)
	}
}

func TestPartitionHealKeepsBilling(t *testing.T) {
	clk := clock.NewManual(epoch)
	sim := NewSimulator(Config{BootDelay: time.Second, Clock: clk})
	done := make(chan string, 1)
	go func() {
		id, _ := sim.Spawn(context.Background())
		done <- id
	}()
	time.Sleep(10 * time.Millisecond)
	clk.Advance(time.Second)
	id := <-done

	if err := sim.Partition(id); err != nil {
		t.Fatal(err)
	}
	if !sim.Partitioned(id) {
		t.Fatal("Partitioned=false after Partition")
	}
	if sim.Running() != 1 {
		t.Fatalf("Running=%d: partitioned instances are still up", sim.Running())
	}
	clk.Advance(time.Hour) // still billing while partitioned
	if got := sim.InstanceHours(); got < 0.99 {
		t.Fatalf("InstanceHours while partitioned=%f want ~1.0", got)
	}
	if err := sim.Heal(id); err != nil {
		t.Fatal(err)
	}
	if sim.Partitioned(id) {
		t.Fatal("Partitioned=true after Heal")
	}
	if err := sim.Partition("nope"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("unknown partition err=%v", err)
	}
	if err := sim.Release(id); err != nil {
		t.Fatal(err)
	}
	if err := sim.Partition(id); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("partition after release err=%v, want ErrNotRunning", err)
	}
}

func TestMTBFCrashSchedule(t *testing.T) {
	clk := clock.NewManual(epoch)
	crashed := make(chan string, 8)
	sim := NewSimulator(Config{
		BootDelay: time.Second,
		Clock:     clk,
		MTBF:      time.Minute,
		Seed:      42,
		OnCrash:   func(id string) { crashed <- id },
	})
	defer sim.Close()

	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		done := make(chan string, 1)
		go func() {
			id, _ := sim.Spawn(context.Background())
			done <- id
		}()
		time.Sleep(10 * time.Millisecond)
		clk.Advance(time.Second)
		ids = append(ids, <-done)
	}
	if sim.Running() != 3 {
		t.Fatalf("Running=%d", sim.Running())
	}

	// Walk virtual time forward; the exponential schedule must fire within a
	// few MTBFs.
	var victim string
	deadline := time.Now().Add(5 * time.Second)
	for victim == "" {
		if time.Now().After(deadline) {
			t.Fatal("MTBF schedule never crashed an instance")
		}
		clk.Advance(10 * time.Second)
		select {
		case victim = <-crashed:
		case <-time.After(5 * time.Millisecond):
		}
	}
	if !sim.Crashed(victim) {
		t.Fatalf("victim %q not marked crashed", victim)
	}
	if sim.Running() != 2 {
		t.Fatalf("Running=%d after scheduled crash", sim.Running())
	}
}

func TestSpawnBootDelayOnClock(t *testing.T) {
	clk := clock.NewManual(epoch)
	sim := NewSimulator(Config{BootDelay: 10 * time.Second, Clock: clk})
	done := make(chan string, 1)
	go func() {
		id, err := sim.Spawn(context.Background())
		if err != nil {
			done <- "err:" + err.Error()
			return
		}
		done <- id
	}()
	select {
	case v := <-done:
		t.Fatalf("spawn completed before boot delay: %v", v)
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(11 * time.Second)
	select {
	case v := <-done:
		if v != "pub1" {
			t.Fatalf("spawn result %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("spawn never completed after boot delay")
	}
}

func TestSpawnCancelled(t *testing.T) {
	clk := clock.NewManual(epoch)
	sim := NewSimulator(Config{BootDelay: time.Hour, Clock: clk})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sim.Spawn(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled spawn never returned")
	}
	if sim.Running() != 0 {
		t.Fatal("cancelled spawn left an instance running")
	}
}

func TestMaxInstances(t *testing.T) {
	sim := NewSimulator(Config{BootDelay: time.Millisecond, MaxInstances: 1})
	if _, err := sim.Spawn(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Spawn(context.Background()); !errors.Is(err, ErrAtCapacity) {
		t.Fatalf("over-capacity spawn err=%v", err)
	}
}

func TestInstanceHoursAndCost(t *testing.T) {
	clk := clock.NewManual(epoch)
	sim := NewSimulator(Config{BootDelay: time.Second, Clock: clk, CostPerHour: 2})
	done := make(chan string, 1)
	go func() {
		id, _ := sim.Spawn(context.Background())
		done <- id
	}()
	time.Sleep(10 * time.Millisecond)
	clk.Advance(time.Second)
	id := <-done

	clk.Advance(30 * time.Minute)
	if got := sim.InstanceHours(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("InstanceHours=%f want 0.5", got)
	}
	if err := sim.Release(id); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Hour) // stopped instances accrue nothing further
	if got := sim.InstanceHours(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("InstanceHours after release=%f want 0.5", got)
	}
	if got := sim.Cost(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Cost=%f want 1.0", got)
	}
}
