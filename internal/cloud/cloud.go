// Package cloud simulates the IaaS provider the paper deploys pub/sub
// servers on: instances take time to boot, accrue cost while running, and
// can be released. The load balancer's elasticity decisions (§III-B2) are
// exercised — and their cost consequences measured — against this provider.
//
// Beyond the paper's assumptions, the simulator also injects the failures
// production clouds exhibit: instances can crash (Crash, or automatically on
// a configurable MTBF schedule) and can be network-partitioned without dying
// (Partition/Heal). A crashed instance stops accruing instance-hours at the
// moment of the crash; a partitioned one keeps billing — it is still
// running, just unreachable — which is exactly the distinction the failure
// detector upstairs has to cope with.
package cloud

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
)

// Errors returned by the simulator.
var (
	ErrUnknownInstance = errors.New("cloud: unknown instance")
	ErrAtCapacity      = errors.New("cloud: provider at capacity")
	// ErrNotRunning is returned when an operation targets an instance that
	// was already released or crashed. It is distinct from
	// ErrUnknownInstance so callers can tell "never existed" from "already
	// gone" — a Release racing a crash is benign, a Release of a bogus ID
	// is a bug.
	ErrNotRunning = errors.New("cloud: instance not running")
)

// Config configures a Simulator.
type Config struct {
	// BootDelay is how long an instance takes from request to ready
	// (default 10 s — EC2-ish at the scale of the paper's experiments).
	BootDelay time.Duration
	// MaxInstances caps concurrently running instances (0 = unlimited).
	MaxInstances int
	// CostPerHour is the price of one instance-hour (for cost reports).
	CostPerHour float64
	// Clock provides time (default real).
	Clock clock.Clock
	// NamePrefix prefixes generated instance IDs (default "pub").
	NamePrefix string

	// MTBF, when positive, enables the crash schedule: instances fail with
	// exponentially distributed inter-arrival times whose mean is MTBF
	// (per provider, not per instance). Each event crashes one running
	// instance chosen uniformly at random.
	MTBF time.Duration
	// Seed seeds the crash schedule's RNG (0 picks a fixed default, so
	// chaos runs are reproducible unless the caller opts out).
	Seed int64
	// OnCrash is invoked (from the scheduler goroutine) after each
	// scheduled crash with the victim's ID. May be nil.
	OnCrash func(id string)
}

func (c *Config) fillDefaults() {
	if c.BootDelay <= 0 {
		c.BootDelay = 10 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.CostPerHour <= 0 {
		c.CostPerHour = 0.10
	}
	if c.NamePrefix == "" {
		c.NamePrefix = "pub"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

type instance struct {
	started     time.Time
	stopped     time.Time // zero while running
	crashed     bool
	partitioned bool
}

// Simulator is an in-process cloud provider. It is safe for concurrent use.
type Simulator struct {
	cfg Config

	mu        sync.Mutex
	instances map[string]*instance
	nextID    int
	running   int

	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewSimulator creates a provider. When cfg.MTBF is positive the crash
// scheduler starts immediately; call Close to stop it.
func NewSimulator(cfg Config) *Simulator {
	cfg.fillDefaults()
	s := &Simulator{
		cfg:       cfg,
		instances: make(map[string]*instance),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if cfg.MTBF > 0 {
		go s.crashSchedule()
	} else {
		close(s.done)
	}
	return s
}

// Close stops the MTBF crash scheduler (if any). Instances are left as they
// are; Close is about the simulator's own goroutine, not the fleet.
func (s *Simulator) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Spawn requests a new instance and blocks until it is booted (BootDelay on
// the provider's clock) or ctx is cancelled. It returns the instance ID.
func (s *Simulator) Spawn(ctx context.Context) (string, error) {
	s.mu.Lock()
	if s.cfg.MaxInstances > 0 && s.running >= s.cfg.MaxInstances {
		s.mu.Unlock()
		return "", ErrAtCapacity
	}
	s.nextID++
	id := fmt.Sprintf("%s%d", s.cfg.NamePrefix, s.nextID)
	s.running++
	s.mu.Unlock()

	// Boot.
	timer := s.cfg.Clock.NewTimer(s.cfg.BootDelay)
	select {
	case <-timer.C():
	case <-ctx.Done():
		timer.Stop()
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		return "", ctx.Err()
	}

	s.mu.Lock()
	s.instances[id] = &instance{started: s.cfg.Clock.Now()}
	s.mu.Unlock()
	return id, nil
}

// Release terminates an instance. Releasing an unknown instance returns
// ErrUnknownInstance; releasing one that already stopped (released or
// crashed) returns ErrNotRunning.
func (s *Simulator) Release(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[id]
	if !ok {
		return ErrUnknownInstance
	}
	if !inst.stopped.IsZero() {
		return ErrNotRunning
	}
	inst.stopped = s.cfg.Clock.Now()
	s.running--
	return nil
}

// Crash kills a running instance abruptly: it stops accruing instance-hours
// at the crash time and is unreachable afterwards. Crashing an unknown
// instance returns ErrUnknownInstance; an already-stopped one, ErrNotRunning.
func (s *Simulator) Crash(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashLocked(id)
}

func (s *Simulator) crashLocked(id string) error {
	inst, ok := s.instances[id]
	if !ok {
		return ErrUnknownInstance
	}
	if !inst.stopped.IsZero() {
		return ErrNotRunning
	}
	inst.stopped = s.cfg.Clock.Now()
	inst.crashed = true
	inst.partitioned = false
	s.running--
	return nil
}

// Crashed reports whether the instance ended by crashing.
func (s *Simulator) Crashed(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[id]
	return ok && inst.crashed
}

// Partition cuts a running instance off the network without stopping it: it
// keeps accruing instance-hours (it is still up, just unreachable) until
// Heal, Release, or Crash.
func (s *Simulator) Partition(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[id]
	if !ok {
		return ErrUnknownInstance
	}
	if !inst.stopped.IsZero() {
		return ErrNotRunning
	}
	inst.partitioned = true
	return nil
}

// Heal reconnects a partitioned instance.
func (s *Simulator) Heal(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[id]
	if !ok {
		return ErrUnknownInstance
	}
	if !inst.stopped.IsZero() {
		return ErrNotRunning
	}
	inst.partitioned = false
	return nil
}

// Partitioned reports whether the instance is currently network-partitioned.
func (s *Simulator) Partitioned(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[id]
	return ok && inst.partitioned && inst.stopped.IsZero()
}

// Running returns the number of booted, unreleased instances (partitioned
// instances count: they are up, just unreachable).
func (s *Simulator) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, inst := range s.instances {
		if inst.stopped.IsZero() {
			n++
		}
	}
	return n
}

// InstanceHours returns the cumulative instance-hours consumed so far.
// Crashed instances stop accruing at their crash time.
func (s *Simulator) InstanceHours() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock.Now()
	total := 0.0
	for _, inst := range s.instances {
		end := inst.stopped
		if end.IsZero() {
			end = now
		}
		total += end.Sub(inst.started).Hours()
	}
	return total
}

// Cost returns the cumulative cost in currency units.
func (s *Simulator) Cost() float64 { return s.InstanceHours() * s.cfg.CostPerHour }

// crashSchedule fails one random running instance per exponential
// inter-arrival with mean MTBF, until Close.
func (s *Simulator) crashSchedule() {
	defer close(s.done)
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	for {
		wait := time.Duration(rng.ExpFloat64() * float64(s.cfg.MTBF))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		timer := s.cfg.Clock.NewTimer(wait)
		select {
		case <-timer.C():
		case <-s.stop:
			timer.Stop()
			return
		}
		if id, ok := s.crashRandom(rng); ok && s.cfg.OnCrash != nil {
			s.cfg.OnCrash(id)
		}
	}
}

// crashRandom crashes one uniformly chosen running instance, if any.
// Victims are drawn from a sorted ID list so a fixed seed yields a fixed
// crash sequence regardless of map iteration order.
func (s *Simulator) crashRandom(rng *rand.Rand) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	alive := make([]string, 0, len(s.instances))
	for id, inst := range s.instances {
		if inst.stopped.IsZero() {
			alive = append(alive, id)
		}
	}
	if len(alive) == 0 {
		return "", false
	}
	sort.Strings(alive)
	id := alive[rng.Intn(len(alive))]
	_ = s.crashLocked(id) // cannot fail: id is running and we hold the lock
	return id, true
}
