// Package cloud simulates the IaaS provider the paper deploys pub/sub
// servers on: instances take time to boot, accrue cost while running, and
// can be released. The load balancer's elasticity decisions (§III-B2) are
// exercised — and their cost consequences measured — against this provider.
package cloud

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
)

// Errors returned by the simulator.
var (
	ErrUnknownInstance = errors.New("cloud: unknown instance")
	ErrAtCapacity      = errors.New("cloud: provider at capacity")
)

// Config configures a Simulator.
type Config struct {
	// BootDelay is how long an instance takes from request to ready
	// (default 10 s — EC2-ish at the scale of the paper's experiments).
	BootDelay time.Duration
	// MaxInstances caps concurrently running instances (0 = unlimited).
	MaxInstances int
	// CostPerHour is the price of one instance-hour (for cost reports).
	CostPerHour float64
	// Clock provides time (default real).
	Clock clock.Clock
	// NamePrefix prefixes generated instance IDs (default "pub").
	NamePrefix string
}

func (c *Config) fillDefaults() {
	if c.BootDelay <= 0 {
		c.BootDelay = 10 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.CostPerHour <= 0 {
		c.CostPerHour = 0.10
	}
	if c.NamePrefix == "" {
		c.NamePrefix = "pub"
	}
}

type instance struct {
	started time.Time
	stopped time.Time // zero while running
}

// Simulator is an in-process cloud provider. It is safe for concurrent use.
type Simulator struct {
	cfg Config

	mu        sync.Mutex
	instances map[string]*instance
	nextID    int
	running   int
}

// NewSimulator creates a provider.
func NewSimulator(cfg Config) *Simulator {
	cfg.fillDefaults()
	return &Simulator{cfg: cfg, instances: make(map[string]*instance)}
}

// Spawn requests a new instance and blocks until it is booted (BootDelay on
// the provider's clock) or ctx is cancelled. It returns the instance ID.
func (s *Simulator) Spawn(ctx context.Context) (string, error) {
	s.mu.Lock()
	if s.cfg.MaxInstances > 0 && s.running >= s.cfg.MaxInstances {
		s.mu.Unlock()
		return "", ErrAtCapacity
	}
	s.nextID++
	id := fmt.Sprintf("%s%d", s.cfg.NamePrefix, s.nextID)
	s.running++
	s.mu.Unlock()

	// Boot.
	timer := s.cfg.Clock.NewTimer(s.cfg.BootDelay)
	select {
	case <-timer.C():
	case <-ctx.Done():
		timer.Stop()
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		return "", ctx.Err()
	}

	s.mu.Lock()
	s.instances[id] = &instance{started: s.cfg.Clock.Now()}
	s.mu.Unlock()
	return id, nil
}

// Release terminates an instance. Releasing an unknown or already-released
// instance returns ErrUnknownInstance.
func (s *Simulator) Release(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[id]
	if !ok || !inst.stopped.IsZero() {
		return ErrUnknownInstance
	}
	inst.stopped = s.cfg.Clock.Now()
	s.running--
	return nil
}

// Running returns the number of booted, unreleased instances.
func (s *Simulator) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, inst := range s.instances {
		if inst.stopped.IsZero() {
			n++
		}
	}
	return n
}

// InstanceHours returns the cumulative instance-hours consumed so far.
func (s *Simulator) InstanceHours() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock.Now()
	total := 0.0
	for _, inst := range s.instances {
		end := inst.stopped
		if end.IsZero() {
			end = now
		}
		total += end.Sub(inst.started).Hours()
	}
	return total
}

// Cost returns the cumulative cost in currency units.
func (s *Simulator) Cost() float64 { return s.InstanceHours() * s.cfg.CostPerHour }
