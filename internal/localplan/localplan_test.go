package localplan

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/plan"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func mkEntry(strategy plan.Strategy, servers ...string) plan.Entry {
	return plan.Entry{Strategy: strategy, Servers: servers}
}

func TestLookupFallback(t *testing.T) {
	s := New([]string{"s1", "s2"}, 0)
	e, v := s.Lookup("ch", epoch)
	if v != 0 || len(e.Servers) != 1 {
		t.Fatalf("fallback=%+v v=%d", e, v)
	}
	if e.Servers[0] != s.Base().Home("ch") {
		t.Fatal("fallback disagrees with ring")
	}
	if s.Len() != 0 {
		t.Fatal("fallback lookup created an entry")
	}
}

func TestUpdateAndVersioning(t *testing.T) {
	s := New([]string{"s1", "s2"}, 0)
	if !s.Update("ch", mkEntry(plan.StrategySingle, "s2"), 5, epoch) {
		t.Fatal("update rejected")
	}
	e, v := s.Lookup("ch", epoch)
	if v != 5 || e.Servers[0] != "s2" {
		t.Fatalf("entry=%+v v=%d", e, v)
	}
	// Older version ignored.
	if s.Update("ch", mkEntry(plan.StrategySingle, "s1"), 4, epoch) {
		t.Fatal("stale update applied")
	}
	// Same version re-applied (idempotent refresh).
	if !s.Update("ch", mkEntry(plan.StrategySingle, "s1"), 5, epoch) {
		t.Fatal("same-version refresh rejected")
	}
	// Newer version wins.
	if !s.Update("ch", mkEntry(plan.StrategyAllPublishers, "s1", "s2"), 6, epoch) {
		t.Fatal("newer update rejected")
	}
	e, v = s.Lookup("ch", epoch)
	if v != 6 || e.Strategy != plan.StrategyAllPublishers {
		t.Fatalf("entry=%+v v=%d", e, v)
	}
}

func TestUpdateValidation(t *testing.T) {
	s := New([]string{"s1"}, 0)
	if s.Update("", mkEntry(plan.StrategySingle, "s1"), 1, epoch) {
		t.Fatal("empty channel accepted")
	}
	if s.Update("ch", plan.Entry{Strategy: plan.StrategySingle}, 1, epoch) {
		t.Fatal("empty server set accepted")
	}
	if s.Update("ch", plan.Entry{Strategy: 0, Servers: []string{"s1"}}, 1, epoch) {
		t.Fatal("invalid strategy accepted")
	}
}

func TestUpdateCopiesServers(t *testing.T) {
	s := New([]string{"s1"}, 0)
	servers := []string{"s1"}
	s.Update("ch", plan.Entry{Strategy: plan.StrategySingle, Servers: servers}, 1, epoch)
	servers[0] = "mutated"
	if e, _ := s.Lookup("ch", epoch); e.Servers[0] != "s1" {
		t.Fatal("store aliases caller slice")
	}
}

func TestSweepExpiry(t *testing.T) {
	s := New([]string{"s1", "s2"}, 10*time.Second)
	s.Update("old", mkEntry(plan.StrategySingle, "s2"), 1, epoch)
	s.Update("fresh", mkEntry(plan.StrategySingle, "s2"), 1, epoch.Add(8*time.Second))
	s.Update("kept", mkEntry(plan.StrategySingle, "s2"), 1, epoch)

	dropped := s.SweepAll(epoch.Add(11*time.Second), func(ch string) bool { return ch == "kept" })
	if dropped != 1 {
		t.Fatalf("dropped=%d, want 1", dropped)
	}
	if _, _, ok := s.Peek("old"); ok {
		t.Fatal("expired entry survived")
	}
	if _, _, ok := s.Peek("fresh"); !ok {
		t.Fatal("fresh entry swept")
	}
	if _, _, ok := s.Peek("kept"); !ok {
		t.Fatal("subscribed entry swept")
	}
}

func TestTouchAndLookupResetTimer(t *testing.T) {
	s := New([]string{"s1"}, 10*time.Second)
	s.Update("a", mkEntry(plan.StrategySingle, "s1"), 1, epoch)
	s.Update("b", mkEntry(plan.StrategySingle, "s1"), 1, epoch)
	// Touch "a" (receive), Lookup "b" (send) at t=9s: both timers reset.
	s.Touch("a", epoch.Add(9*time.Second))
	s.Lookup("b", epoch.Add(9*time.Second))
	if dropped := s.SweepAll(epoch.Add(15*time.Second), nil); dropped != 0 {
		t.Fatalf("dropped=%d after timer resets", dropped)
	}
	if dropped := s.SweepAll(epoch.Add(25*time.Second), nil); dropped != 2 {
		t.Fatalf("dropped=%d, want 2", dropped)
	}
}

func TestForget(t *testing.T) {
	s := New([]string{"s1"}, 0)
	s.Update("a", mkEntry(plan.StrategySingle, "s1"), 1, epoch)
	s.Forget("a")
	if s.Len() != 0 {
		t.Fatal("Forget failed")
	}
}

func TestDefaultTimeout(t *testing.T) {
	s := New([]string{"s1"}, 0)
	if s.Timeout() != DefaultTimeout {
		t.Fatalf("timeout=%v", s.Timeout())
	}
}

func TestUpdateRing(t *testing.T) {
	s := New([]string{"s1"}, 0)
	if s.Base().Home("ch") != "s1" {
		t.Fatal("single-member ring broken")
	}
	// Newer version with more members: applied.
	if !s.UpdateRing([]string{"s1", "s2"}, 3) {
		t.Fatal("ring update rejected")
	}
	foundS2 := false
	for i := 0; i < 200 && !foundS2; i++ {
		foundS2 = s.Base().Home("probe-"+string(rune('a'+i%26))+string(rune('0'+i/26))) == "s2"
	}
	if !foundS2 {
		t.Fatal("updated ring never maps to the new member")
	}
	// Same or older version: ignored.
	if s.UpdateRing([]string{"s1"}, 3) {
		t.Fatal("same-version ring update applied")
	}
	if s.UpdateRing([]string{"s1"}, 2) {
		t.Fatal("older ring update applied")
	}
	// Same membership at a newer version: version advances, no rebuild.
	if s.UpdateRing([]string{"s2", "s1"}, 4) {
		t.Fatal("identical membership reported as change")
	}
	// But the version was consumed: a later conflicting v4 is stale.
	if s.UpdateRing([]string{"s9"}, 4) {
		t.Fatal("stale version applied after version consumption")
	}
	// Empty membership never applies.
	if s.UpdateRing(nil, 99) {
		t.Fatal("empty ring update applied")
	}
}

func TestUpdateRingKeepsEntries(t *testing.T) {
	s := New([]string{"s1"}, 0)
	s.Update("ch", mkEntry(plan.StrategySingle, "s1"), 2, epoch)
	s.UpdateRing([]string{"s1", "s2"}, 5)
	if e, v := s.Lookup("ch", epoch); v != 2 || e.Servers[0] != "s1" {
		t.Fatalf("entry lost on ring update: %+v v=%d", e, v)
	}
}

func TestIncrementalSweepCoversStoreOverFullRotation(t *testing.T) {
	s := New([]string{"s1"}, 10*time.Second)
	for i := 0; i < 100; i++ {
		s.Update(fmt.Sprintf("ch-%d", i), mkEntry(plan.StrategySingle, "s1"), 1, epoch)
	}
	// Each Sweep covers a quarter of the shards; four calls cover everything.
	later := epoch.Add(time.Minute)
	total := 0
	for i := 0; i < 4; i++ {
		total += s.Sweep(later, nil)
	}
	if total != 100 || s.Len() != 0 {
		t.Fatalf("4 incremental sweeps dropped %d, len=%d", total, s.Len())
	}
}

func TestCapEvictionFallsBackToRing(t *testing.T) {
	// Cap 16 = one entry per shard: flooding learned routes must evict, and
	// evicted channels must resolve through consistent hashing again.
	s := NewWithCap([]string{"s1", "s2"}, 0, 16)
	for i := 0; i < 500; i++ {
		s.Update(fmt.Sprintf("flood-%d", i), mkEntry(plan.StrategySingle, "s2"), 1, epoch)
	}
	if s.Len() > 16 {
		t.Fatalf("len=%d exceeds cap", s.Len())
	}
	st := s.CacheStats()
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded under cap pressure")
	}
	evicted := ""
	for i := 0; i < 500; i++ {
		ch := fmt.Sprintf("flood-%d", i)
		if _, _, ok := s.Peek(ch); !ok {
			evicted = ch
			break
		}
	}
	if evicted == "" {
		t.Fatal("no channel was evicted")
	}
	e, v := s.Lookup(evicted, epoch)
	if v != 0 {
		t.Fatalf("evicted channel still learned: v=%d", v)
	}
	if e.Servers[0] != s.Base().Home(evicted) {
		t.Fatal("evicted channel does not fall back to ring home")
	}
}

func TestPinnedSubscriptionSurvivesEvictionAndSweep(t *testing.T) {
	// Regression: a subscribed channel's learned route must survive both
	// capacity churn from unbounded channel floods and idle sweeps.
	s := NewWithCap([]string{"s1", "s2"}, 5*time.Second, 16)
	s.Update("subscribed", mkEntry(plan.StrategySingle, "s2"), 7, epoch)
	if !s.Pin("subscribed", true) {
		t.Fatal("pin rejected")
	}
	for i := 0; i < 1000; i++ {
		s.Update(fmt.Sprintf("flood-%d", i), mkEntry(plan.StrategySingle, "s1"), 1, epoch)
	}
	if e, v := s.Lookup("subscribed", epoch); v != 7 || e.Servers[0] != "s2" {
		t.Fatalf("pinned route lost to capacity churn: %+v v=%d", e, v)
	}
	// Idle far past the timeout with no keep function: still retained.
	if s.SweepAll(epoch.Add(time.Hour), nil) == 0 {
		t.Fatal("sweep dropped nothing (flood entries should go)")
	}
	if _, v := s.Lookup("subscribed", epoch); v != 7 {
		t.Fatal("pinned route swept while subscribed")
	}
	// Unsubscribe: unpin, and the entry ages out normally.
	s.Pin("subscribed", false)
	s.SweepAll(epoch.Add(2*time.Hour), nil)
	if _, _, ok := s.Peek("subscribed"); ok {
		t.Fatal("unpinned idle route survived sweep")
	}
	// Updates preserve the pin.
	s.Update("sub2", mkEntry(plan.StrategySingle, "s1"), 1, epoch)
	s.Pin("sub2", true)
	s.Update("sub2", mkEntry(plan.StrategySingle, "s2"), 2, epoch)
	if s.CacheStats().Pinned != 1 {
		t.Fatal("update dropped the pin")
	}
}

func TestUpdateRingDoesNotAllocatePerComparison(t *testing.T) {
	s := New([]string{"s1", "s2", "s3", "s4"}, 0)
	members := []string{"s4", "s3", "s2", "s1"}
	version := uint64(1)
	allocs := testing.AllocsPerRun(100, func() {
		version++
		s.UpdateRing(members, version) // same membership: compare, no rebuild
	})
	if allocs != 0 {
		t.Fatalf("UpdateRing allocates %.1f/op on identical membership", allocs)
	}
}

// TestConcurrentTouchSweepUpdateRace is the -race gate over the striped
// store: routing snapshots Touch learned entries while the owner updates,
// sweeps, pins and rebuilds concurrently.
func TestConcurrentTouchSweepUpdateRace(t *testing.T) {
	s := NewWithCap([]string{"s1", "s2"}, 50*time.Millisecond, 128)
	channels := make([]string, 256)
	for i := range channels {
		channels[i] = fmt.Sprintf("ch-%d", i)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	run := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				f(i)
			}
		}()
	}
	now := func() time.Time { return time.Now() }
	run(func(i int) { s.Touch(channels[i%256], now()) })
	run(func(i int) { s.Lookup(channels[(i*7)%256], now()) })
	run(func(i int) {
		s.Update(channels[i%256], mkEntry(plan.StrategySingle, "s1"), uint64(i), now())
	})
	run(func(i int) { s.Sweep(now(), func(ch string) bool { return ch == channels[0] }) })
	run(func(i int) { s.Pin(channels[i%256], i%2 == 0) })
	run(func(i int) {
		s.UpdateRing([]string{"s1", "s2", fmt.Sprintf("s%d", i%4)}, uint64(i))
		s.Base().Home(channels[i%256])
	})
	run(func(i int) {
		s.Each(func(string, *Learned) {})
		s.CacheStats()
	})
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}
