package localplan

import (
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/plan"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func mkEntry(strategy plan.Strategy, servers ...string) plan.Entry {
	return plan.Entry{Strategy: strategy, Servers: servers}
}

func TestLookupFallback(t *testing.T) {
	s := New([]string{"s1", "s2"}, 0)
	e, v := s.Lookup("ch", epoch)
	if v != 0 || len(e.Servers) != 1 {
		t.Fatalf("fallback=%+v v=%d", e, v)
	}
	if e.Servers[0] != s.Base().Home("ch") {
		t.Fatal("fallback disagrees with ring")
	}
	if s.Len() != 0 {
		t.Fatal("fallback lookup created an entry")
	}
}

func TestUpdateAndVersioning(t *testing.T) {
	s := New([]string{"s1", "s2"}, 0)
	if !s.Update("ch", mkEntry(plan.StrategySingle, "s2"), 5, epoch) {
		t.Fatal("update rejected")
	}
	e, v := s.Lookup("ch", epoch)
	if v != 5 || e.Servers[0] != "s2" {
		t.Fatalf("entry=%+v v=%d", e, v)
	}
	// Older version ignored.
	if s.Update("ch", mkEntry(plan.StrategySingle, "s1"), 4, epoch) {
		t.Fatal("stale update applied")
	}
	// Same version re-applied (idempotent refresh).
	if !s.Update("ch", mkEntry(plan.StrategySingle, "s1"), 5, epoch) {
		t.Fatal("same-version refresh rejected")
	}
	// Newer version wins.
	if !s.Update("ch", mkEntry(plan.StrategyAllPublishers, "s1", "s2"), 6, epoch) {
		t.Fatal("newer update rejected")
	}
	e, v = s.Lookup("ch", epoch)
	if v != 6 || e.Strategy != plan.StrategyAllPublishers {
		t.Fatalf("entry=%+v v=%d", e, v)
	}
}

func TestUpdateValidation(t *testing.T) {
	s := New([]string{"s1"}, 0)
	if s.Update("", mkEntry(plan.StrategySingle, "s1"), 1, epoch) {
		t.Fatal("empty channel accepted")
	}
	if s.Update("ch", plan.Entry{Strategy: plan.StrategySingle}, 1, epoch) {
		t.Fatal("empty server set accepted")
	}
	if s.Update("ch", plan.Entry{Strategy: 0, Servers: []string{"s1"}}, 1, epoch) {
		t.Fatal("invalid strategy accepted")
	}
}

func TestUpdateCopiesServers(t *testing.T) {
	s := New([]string{"s1"}, 0)
	servers := []string{"s1"}
	s.Update("ch", plan.Entry{Strategy: plan.StrategySingle, Servers: servers}, 1, epoch)
	servers[0] = "mutated"
	if e, _ := s.Lookup("ch", epoch); e.Servers[0] != "s1" {
		t.Fatal("store aliases caller slice")
	}
}

func TestSweepExpiry(t *testing.T) {
	s := New([]string{"s1", "s2"}, 10*time.Second)
	s.Update("old", mkEntry(plan.StrategySingle, "s2"), 1, epoch)
	s.Update("fresh", mkEntry(plan.StrategySingle, "s2"), 1, epoch.Add(8*time.Second))
	s.Update("kept", mkEntry(plan.StrategySingle, "s2"), 1, epoch)

	dropped := s.Sweep(epoch.Add(11*time.Second), func(ch string) bool { return ch == "kept" })
	if dropped != 1 {
		t.Fatalf("dropped=%d, want 1", dropped)
	}
	if _, _, ok := s.Peek("old"); ok {
		t.Fatal("expired entry survived")
	}
	if _, _, ok := s.Peek("fresh"); !ok {
		t.Fatal("fresh entry swept")
	}
	if _, _, ok := s.Peek("kept"); !ok {
		t.Fatal("subscribed entry swept")
	}
}

func TestTouchAndLookupResetTimer(t *testing.T) {
	s := New([]string{"s1"}, 10*time.Second)
	s.Update("a", mkEntry(plan.StrategySingle, "s1"), 1, epoch)
	s.Update("b", mkEntry(plan.StrategySingle, "s1"), 1, epoch)
	// Touch "a" (receive), Lookup "b" (send) at t=9s: both timers reset.
	s.Touch("a", epoch.Add(9*time.Second))
	s.Lookup("b", epoch.Add(9*time.Second))
	if dropped := s.Sweep(epoch.Add(15*time.Second), nil); dropped != 0 {
		t.Fatalf("dropped=%d after timer resets", dropped)
	}
	if dropped := s.Sweep(epoch.Add(25*time.Second), nil); dropped != 2 {
		t.Fatalf("dropped=%d, want 2", dropped)
	}
}

func TestForget(t *testing.T) {
	s := New([]string{"s1"}, 0)
	s.Update("a", mkEntry(plan.StrategySingle, "s1"), 1, epoch)
	s.Forget("a")
	if s.Len() != 0 {
		t.Fatal("Forget failed")
	}
}

func TestDefaultTimeout(t *testing.T) {
	s := New([]string{"s1"}, 0)
	if s.Timeout() != DefaultTimeout {
		t.Fatalf("timeout=%v", s.Timeout())
	}
}

func TestUpdateRing(t *testing.T) {
	s := New([]string{"s1"}, 0)
	if s.Base().Home("ch") != "s1" {
		t.Fatal("single-member ring broken")
	}
	// Newer version with more members: applied.
	if !s.UpdateRing([]string{"s1", "s2"}, 3) {
		t.Fatal("ring update rejected")
	}
	foundS2 := false
	for i := 0; i < 200 && !foundS2; i++ {
		foundS2 = s.Base().Home("probe-"+string(rune('a'+i%26))+string(rune('0'+i/26))) == "s2"
	}
	if !foundS2 {
		t.Fatal("updated ring never maps to the new member")
	}
	// Same or older version: ignored.
	if s.UpdateRing([]string{"s1"}, 3) {
		t.Fatal("same-version ring update applied")
	}
	if s.UpdateRing([]string{"s1"}, 2) {
		t.Fatal("older ring update applied")
	}
	// Same membership at a newer version: version advances, no rebuild.
	if s.UpdateRing([]string{"s2", "s1"}, 4) {
		t.Fatal("identical membership reported as change")
	}
	// But the version was consumed: a later conflicting v4 is stale.
	if s.UpdateRing([]string{"s9"}, 4) {
		t.Fatal("stale version applied after version consumption")
	}
	// Empty membership never applies.
	if s.UpdateRing(nil, 99) {
		t.Fatal("empty ring update applied")
	}
}

func TestUpdateRingKeepsEntries(t *testing.T) {
	s := New([]string{"s1"}, 0)
	s.Update("ch", mkEntry(plan.StrategySingle, "s1"), 2, epoch)
	s.UpdateRing([]string{"s1", "s2"}, 5)
	if e, v := s.Lookup("ch", epoch); v != 2 || e.Servers[0] != "s1" {
		t.Fatalf("entry lost on ring update: %+v v=%d", e, v)
	}
}
