// Package localplan implements the client-specific partial plan P(C) of the
// paper (§II-C, §IV-A5): a small map of channel→servers entries learned
// lazily from switch and wrong-server notifications, with per-entry timers
// that return forgotten channels to consistent hashing.
//
// Both the live client library and the discrete-event simulator use this
// exact state machine, so client routing behaves identically in both modes.
package localplan

import (
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/plan"
)

// DefaultTimeout is the per-entry timer of §IV-A5.
const DefaultTimeout = 30 * time.Second

// Learned is one channel's learned mapping. The struct itself is immutable
// after creation except for the entry timer, which is atomic so that holders
// of a routing snapshot (the client's lock-free publish/delivery paths) can
// touch it without the Store owner's lock.
type Learned struct {
	e        plan.Entry
	version  uint64
	lastUsed atomic.Int64 // unix nanoseconds of last use
}

// Entry returns the mapping. Callers must treat the entry (including its
// Servers slice) as read-only.
func (l *Learned) Entry() plan.Entry { return l.e }

// Version is the plan version the entry was learned at.
func (l *Learned) Version() uint64 { return l.version }

// Touch resets the entry timer (§IV-A5: "the timer is reset whenever the
// client sends or receives a publication"). Safe for concurrent use.
func (l *Learned) Touch(now time.Time) { l.lastUsed.Store(now.UnixNano()) }

// Store is a client's local plan. Mutations are not safe for concurrent
// use; the owner serializes them (the live client under its mutex, the
// simulator on its single thread). Learned entries handed out by Lookup or
// Each may be touched concurrently.
type Store struct {
	base        *plan.Plan
	entries     map[string]*Learned
	timeout     time.Duration
	ringVersion uint64
}

// New creates a local plan over the bootstrap server set (the consistent-
// hash fallback ring).
func New(bootstrap []plan.ServerID, timeout time.Duration) *Store {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Store{
		base:    plan.New(bootstrap...),
		entries: make(map[string]*Learned),
		timeout: timeout,
	}
}

// Base returns the fallback plan (for Home lookups).
func (s *Store) Base() *plan.Plan { return s.base }

// UpdateRing replaces the fallback ring membership if version is newer than
// any ring update seen so far (clients learn the active server set from
// switch/redirect notifications). It reports whether the ring changed.
func (s *Store) UpdateRing(servers []plan.ServerID, version uint64) bool {
	if version <= s.ringVersion || len(servers) == 0 {
		return false
	}
	s.ringVersion = version
	if sameMembers(s.base.RingServers, servers) {
		return false
	}
	s.base = plan.New(servers...)
	return true
}

func sameMembers(a, b []plan.ServerID) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[plan.ServerID]struct{}, len(a))
	for _, x := range a {
		in[x] = struct{}{}
	}
	for _, x := range b {
		if _, ok := in[x]; !ok {
			return false
		}
	}
	return true
}

// Lookup resolves a channel: the learned entry if present (touching its
// timer), otherwise the consistent-hash fallback. version is the plan
// version the entry was learned at (0 for fallback).
func (s *Store) Lookup(channel string, now time.Time) (plan.Entry, uint64) {
	if le, ok := s.entries[channel]; ok {
		le.Touch(now)
		return le.e, le.version
	}
	e, _ := s.base.Lookup(channel)
	return e, 0
}

// Each visits every learned entry. The *Learned references remain valid (and
// touchable) after the call — routing snapshots are built from them.
func (s *Store) Each(f func(channel string, l *Learned)) {
	for ch, le := range s.entries {
		f(ch, le)
	}
}

// Peek is Lookup without touching the timer.
func (s *Store) Peek(channel string) (plan.Entry, uint64, bool) {
	if le, ok := s.entries[channel]; ok {
		return le.e, le.version, true
	}
	e, _ := s.base.Lookup(channel)
	return e, 0, false
}

// Update installs a mapping learned from a switch or wrong-server
// notification. Stale versions (older than the stored entry) are ignored.
// It reports whether the store changed.
func (s *Store) Update(channel string, e plan.Entry, version uint64, now time.Time) bool {
	if !e.Strategy.Valid() || len(e.Servers) == 0 || channel == "" {
		return false
	}
	if le, ok := s.entries[channel]; ok && version < le.version {
		return false
	}
	le := &Learned{
		e:       plan.Entry{Strategy: e.Strategy, Servers: append([]plan.ServerID(nil), e.Servers...)},
		version: version,
	}
	le.Touch(now)
	s.entries[channel] = le
	return true
}

// Touch resets a channel's entry timer (called when the client sends or
// receives a publication on it).
func (s *Store) Touch(channel string, now time.Time) {
	if le, ok := s.entries[channel]; ok {
		le.Touch(now)
	}
}

// Forget drops a channel's entry immediately.
func (s *Store) Forget(channel string) { delete(s.entries, channel) }

// Sweep removes entries idle past the timeout, except for channels where
// keep returns true (the client is subscribed — §IV-A5 keeps those).
// It returns the number of entries dropped.
func (s *Store) Sweep(now time.Time, keep func(channel string) bool) int {
	dropped := 0
	for ch, le := range s.entries {
		if keep != nil && keep(ch) {
			continue
		}
		if now.Sub(time.Unix(0, le.lastUsed.Load())) > s.timeout {
			delete(s.entries, ch)
			dropped++
		}
	}
	return dropped
}

// Len returns the number of learned entries (the paper's "local plan size").
func (s *Store) Len() int { return len(s.entries) }

// Timeout returns the entry timeout.
func (s *Store) Timeout() time.Duration { return s.timeout }
