// Package localplan implements the client-specific partial plan P(C) of the
// paper (§II-C, §IV-A5): a bounded cache of channel→servers entries learned
// lazily from switch and wrong-server notifications, with per-entry timers
// that return forgotten channels to consistent hashing.
//
// Both the live client library and the discrete-event simulator use this
// exact state machine, so client routing behaves identically in both modes.
//
// The store is backed by a hotstate cache: learned entries are capped (a
// channel evicted under capacity pressure simply falls back to consistent
// hashing — the same behavior as its §IV-A5 timer firing), subscribed
// channels are pinned so their learned routes survive any churn, and the
// idle-entry sweep is incremental (a few shards per call) instead of the old
// O(entries) full-map scan.
package localplan

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/hotstate"
	"github.com/dynamoth/dynamoth/internal/plan"
)

// DefaultTimeout is the per-entry timer of §IV-A5.
const DefaultTimeout = 30 * time.Second

// DefaultCap bounds the learned-entry cache when no explicit cap is given.
// A real client publishes/subscribes on far fewer channels than this; the cap
// only bites for IoT-style clients touching an unbounded channel namespace,
// where evicted channels transparently fall back to consistent hashing.
const DefaultCap = 4096

// Learned is one channel's learned mapping. The struct itself is immutable
// after creation except for the entry timer, which is atomic so that holders
// of a routing snapshot (the client's lock-free publish/delivery paths) can
// touch it without coordinating with the store.
type Learned struct {
	e        plan.Entry
	version  uint64
	lastUsed atomic.Int64 // unix nanoseconds of last use
}

// Entry returns the mapping. Callers must treat the entry (including its
// Servers slice) as read-only.
func (l *Learned) Entry() plan.Entry { return l.e }

// Version is the plan version the entry was learned at.
func (l *Learned) Version() uint64 { return l.version }

// Touch resets the entry timer (§IV-A5: "the timer is reset whenever the
// client sends or receives a publication"). Safe for concurrent use.
func (l *Learned) Touch(now time.Time) { l.lastUsed.Store(now.UnixNano()) }

// Store is a client's local plan. It is safe for concurrent use: entries
// live in a lock-striped bounded cache, and the fallback ring is swapped
// atomically. Learned entries handed out by Lookup or Each may be touched
// concurrently.
type Store struct {
	base    atomic.Pointer[plan.Plan]
	entries *hotstate.Cache[string, *Learned]
	timeout time.Duration

	ringMu      sync.Mutex
	ringVersion uint64
	ringScratch map[plan.ServerID]struct{} // reused by sameMembers
}

// New creates a local plan over the bootstrap server set (the consistent-
// hash fallback ring) with DefaultCap learned entries.
func New(bootstrap []plan.ServerID, timeout time.Duration) *Store {
	return NewWithCap(bootstrap, timeout, DefaultCap)
}

// NewWithCap is New with an explicit learned-entry bound (<=0 = unbounded).
func NewWithCap(bootstrap []plan.ServerID, timeout time.Duration, cap int) *Store {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	s := &Store{
		entries: hotstate.New[string, *Learned](hotstate.Config[string, *Learned]{
			Capacity: cap,
		}),
		timeout:     timeout,
		ringScratch: make(map[plan.ServerID]struct{}, len(bootstrap)),
	}
	s.base.Store(plan.New(bootstrap...))
	return s
}

// Base returns the fallback plan (for Home lookups).
func (s *Store) Base() *plan.Plan { return s.base.Load() }

// UpdateRing replaces the fallback ring membership if version is newer than
// any ring update seen so far (clients learn the active server set from
// switch/redirect notifications). It reports whether the ring changed.
func (s *Store) UpdateRing(servers []plan.ServerID, version uint64) bool {
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	if version <= s.ringVersion || len(servers) == 0 {
		return false
	}
	s.ringVersion = version
	if s.sameMembersLocked(s.base.Load().RingServers, servers) {
		return false
	}
	s.base.Store(plan.New(servers...))
	return true
}

// sameMembersLocked compares server sets ignoring order, reusing the store's
// scratch map so ring-update storms (every switch notification carries the
// ring) do not allocate. Caller holds ringMu.
func (s *Store) sameMembersLocked(a, b []plan.ServerID) bool {
	if len(a) != len(b) {
		return false
	}
	clear(s.ringScratch)
	for _, x := range a {
		s.ringScratch[x] = struct{}{}
	}
	for _, x := range b {
		if _, ok := s.ringScratch[x]; !ok {
			return false
		}
	}
	return true
}

// Lookup resolves a channel: the learned entry if present (touching its
// timer), otherwise the consistent-hash fallback. version is the plan
// version the entry was learned at (0 for fallback).
func (s *Store) Lookup(channel string, now time.Time) (plan.Entry, uint64) {
	if le, ok := s.entries.Get(channel); ok {
		le.Touch(now)
		return le.e, le.version
	}
	e, _ := s.base.Load().Lookup(channel)
	return e, 0
}

// Each visits every learned entry. The *Learned references remain valid (and
// touchable) after the call — routing snapshots are built from them. f runs
// under a shard lock and must not call back into the store.
func (s *Store) Each(f func(channel string, l *Learned)) {
	s.entries.Range(func(ch string, le *Learned) bool {
		f(ch, le)
		return true
	})
}

// Peek is Lookup without touching the timer.
func (s *Store) Peek(channel string) (plan.Entry, uint64, bool) {
	if le, ok := s.entries.Peek(channel); ok {
		return le.e, le.version, true
	}
	e, _ := s.base.Load().Lookup(channel)
	return e, 0, false
}

// Update installs a mapping learned from a switch or wrong-server
// notification. Stale versions (older than the stored entry) are ignored.
// A pinned channel stays pinned across updates. Inserting into a full cache
// evicts a cold unpinned entry (which thereby falls back to consistent
// hashing). It reports whether the store changed.
func (s *Store) Update(channel string, e plan.Entry, version uint64, now time.Time) bool {
	if !e.Strategy.Valid() || len(e.Servers) == 0 || channel == "" {
		return false
	}
	le := &Learned{
		e:       plan.Entry{Strategy: e.Strategy, Servers: append([]plan.ServerID(nil), e.Servers...)},
		version: version,
	}
	le.Touch(now)
	return s.entries.Upsert(channel, func(old *Learned, exists bool) (*Learned, bool) {
		if exists && version < old.version {
			return old, false
		}
		return le, true
	})
}

// Touch resets a channel's entry timer (called when the client sends or
// receives a publication on it) and marks it recently used for eviction.
func (s *Store) Touch(channel string, now time.Time) {
	if le, ok := s.entries.Get(channel); ok {
		le.Touch(now)
	}
}

// Pin exempts a channel's learned entry from eviction and sweeping (the
// client pins its subscriptions — §IV-A5 keeps those). Reports whether an
// entry existed to pin. Unpinning a forgotten channel is a no-op.
func (s *Store) Pin(channel string, pinned bool) bool {
	return s.entries.Pin(channel, pinned)
}

// Forget drops a channel's entry immediately.
func (s *Store) Forget(channel string) { s.entries.Delete(channel) }

// Sweep incrementally removes entries idle past the timeout, except pinned
// channels and channels where keep returns true. Each call covers a quarter
// of the shards (rotating), so a sweep cadence of timeout/4 still visits
// every entry within one timeout period at O(entries/4) per call. It returns
// the number of entries dropped.
func (s *Store) Sweep(now time.Time, keep func(channel string) bool) int {
	return s.sweep(now, keep, s.entries.ShardCount()/4)
}

// SweepAll is Sweep over every shard at once (tests and shutdown paths).
func (s *Store) SweepAll(now time.Time, keep func(channel string) bool) int {
	return s.sweep(now, keep, 0)
}

func (s *Store) sweep(now time.Time, keep func(channel string) bool, maxShards int) int {
	cutoff := now.Add(-s.timeout).UnixNano()
	return s.entries.Sweep(maxShards, func(ch string, le *Learned) bool {
		if keep != nil && keep(ch) {
			return false
		}
		return le.lastUsed.Load() < cutoff
	})
}

// Len returns the number of learned entries (the paper's "local plan size").
func (s *Store) Len() int { return s.entries.Len() }

// Timeout returns the entry timeout.
func (s *Store) Timeout() time.Duration { return s.timeout }

// CacheStats snapshots the learned-entry cache counters for metric export.
func (s *Store) CacheStats() hotstate.Stats { return s.entries.Stats() }
