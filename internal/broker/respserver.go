package broker

import (
	"errors"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/resp"
)

// replySink is the command-reply surface shared by both connection cores.
// The goroutine core's respSink flushes each reply through a per-connection
// bufio writer; the reactor core's session appends to its pending write
// buffer and lets the shard flush cycle push it out.
type replySink interface {
	writeAck(kind, channel string, count int) error
	writeReplayAck(channel string, count, replayed int, missed, epoch uint64) error
	writeSimple(v string) error
	writeErr(msg string) error
	writeInt(n int64) error
	writeBulk(b []byte) error
}

// respSink bridges broker deliveries onto a RESP connection. Deliver and
// DeliverPattern only buffer their frame; the session writer calls
// FlushDeliveries once per drained batch, so a fan-out burst costs one TCP
// write instead of one per message.
type respSink struct {
	mu   sync.Mutex
	w    *resp.Writer
	conn net.Conn
}

func (s *respSink) writeAck(kind, channel string, count int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteArrayHeader(3)        //nolint:errcheck
	s.w.WriteBulkString(kind)      //nolint:errcheck
	s.w.WriteBulkString(channel)   //nolint:errcheck
	s.w.WriteInteger(int64(count)) //nolint:errcheck
	return s.w.Flush()
}

// writeReplayAck is the CSUBSCRIBE reply: a 6-element array of kind,
// channel, subscription count, frames replayed, frames missed (already
// evicted from the ring), and the ring's current epoch.
func (s *respSink) writeReplayAck(channel string, count, replayed int, missed, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteArrayHeader(6)           //nolint:errcheck
	s.w.WriteBulkString("csubscribe") //nolint:errcheck
	s.w.WriteBulkString(channel)      //nolint:errcheck
	s.w.WriteInteger(int64(count))    //nolint:errcheck
	s.w.WriteInteger(int64(replayed)) //nolint:errcheck
	s.w.WriteInteger(int64(missed))   //nolint:errcheck
	s.w.WriteInteger(int64(epoch))    //nolint:errcheck
	return s.w.Flush()
}

func (s *respSink) writeSimple(v string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteSimpleString(v) //nolint:errcheck
	return s.w.Flush()
}

func (s *respSink) writeErr(msg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteError(msg) //nolint:errcheck
	return s.w.Flush()
}

func (s *respSink) writeInt(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteInteger(n) //nolint:errcheck
	return s.w.Flush()
}

func (s *respSink) writeBulk(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteBulk(b) //nolint:errcheck
	return s.w.Flush()
}

// Deliver implements Sink. It buffers the message frame; the batch flush
// (or any interleaved reply on this connection) pushes it out.
func (s *respSink) Deliver(channel string, payload []byte) {
	s.mu.Lock()
	err := s.w.WriteMessage(channel, payload)
	s.mu.Unlock()
	if err != nil {
		s.conn.Close() //nolint:errcheck // teardown; reader notices
	}
}

// DeliverPattern implements PatternSink with the Redis pmessage frame,
// buffered like Deliver.
func (s *respSink) DeliverPattern(pattern, channel string, payload []byte) {
	s.mu.Lock()
	err := s.w.WritePMessage(pattern, channel, payload)
	s.mu.Unlock()
	if err != nil {
		s.conn.Close() //nolint:errcheck // teardown; reader notices
	}
}

// FlushDeliveries implements BatchSink: one flush per drained batch of
// deliveries — the write-coalescing point of the whole pipeline.
func (s *respSink) FlushDeliveries() {
	s.mu.Lock()
	err := s.w.Flush()
	s.mu.Unlock()
	if err != nil {
		s.conn.Close() //nolint:errcheck // teardown; reader notices
	}
}

// Closed implements Sink.
func (s *respSink) Closed(error) {
	s.conn.Close() //nolint:errcheck // teardown
}

// serveConn runs one goroutine-core connection to completion and returns the
// reason the session ended (nil for a plain peer disconnect).
func serveConn(conn net.Conn, b *Broker) error {
	defer conn.Close() //nolint:errcheck // teardown
	sink := &respSink{w: resp.NewWriter(conn), conn: conn}
	session, err := b.Connect(conn.RemoteAddr().String(), sink)
	if err != nil {
		sink.writeErr("ERR broker unavailable") //nolint:errcheck
		return err
	}
	defer session.Close()

	r := resp.NewReader(conn)
	for {
		args, err := r.ReadCommand()
		if err != nil {
			if reason := session.CloseReason(); reason != nil {
				// The broker ended the session (slow consumer, shutdown);
				// the read error is just the closed socket.
				return reason
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			sink.writeErr("ERR protocol error") //nolint:errcheck
			return err
		}
		if done := dispatch(b, session, sink, args); done {
			return session.CloseReason()
		}
	}
}

// infoPool recycles the INFO reply scratch so admin polling does not
// allocate on the broker.
var infoPool = sync.Pool{New: func() any { return new([]byte) }}

// appendInfo renders the INFO body (same shape Redis gives it) into dst.
func appendInfo(dst []byte, name string, st Stats) []byte {
	dst = append(dst, "# Server\r\nname:"...)
	dst = append(dst, name...)
	dst = append(dst, "\r\n# Stats\r\nsessions:"...)
	dst = strconv.AppendInt(dst, int64(st.Sessions), 10)
	dst = append(dst, "\r\nchannels:"...)
	dst = strconv.AppendInt(dst, int64(st.Channels), 10)
	dst = append(dst, "\r\npublished:"...)
	dst = strconv.AppendUint(dst, st.Published, 10)
	dst = append(dst, "\r\ndelivered:"...)
	dst = strconv.AppendUint(dst, st.Delivered, 10)
	dst = append(dst, "\r\ndropped:"...)
	dst = strconv.AppendUint(dst, st.Dropped, 10)
	return append(dst, '\r', '\n')
}

// dispatch executes one command; it reports whether the connection should
// close. It is shared by both connection cores: args may alias a read buffer
// that is reused after dispatch returns, so anything retained is copied here
// (channel names through string conversion, the publish payload explicitly).
func dispatch(b *Broker, session *Session, sink replySink, args [][]byte) bool {
	cmd := strings.ToUpper(string(args[0]))
	switch cmd {
	case "SUBSCRIBE":
		if len(args) < 2 {
			sink.writeErr("ERR wrong number of arguments for 'subscribe'") //nolint:errcheck
			return false
		}
		for _, ch := range args[1:] {
			count, err := session.Subscribe(string(ch))
			if err != nil {
				return true
			}
			if err := sink.writeAck("subscribe", string(ch), count); err != nil {
				return true
			}
		}
	case "UNSUBSCRIBE":
		channels := make([]string, 0, len(args)-1)
		for _, ch := range args[1:] {
			channels = append(channels, string(ch))
		}
		if len(channels) == 0 {
			channels = session.Subscriptions()
		}
		for _, ch := range channels {
			count, err := session.Unsubscribe(ch)
			if err != nil {
				return true
			}
			if err := sink.writeAck("unsubscribe", ch, count); err != nil {
				return true
			}
		}
	case "PSUBSCRIBE":
		if len(args) < 2 {
			sink.writeErr("ERR wrong number of arguments for 'psubscribe'") //nolint:errcheck
			return false
		}
		for _, pat := range args[1:] {
			count, err := session.PSubscribe(string(pat))
			if err != nil {
				return true
			}
			if err := sink.writeAck("psubscribe", string(pat), count); err != nil {
				return true
			}
		}
	case "PUNSUBSCRIBE":
		patterns := make([]string, 0, len(args)-1)
		for _, pat := range args[1:] {
			patterns = append(patterns, string(pat))
		}
		if len(patterns) == 0 {
			patterns = session.PatternSubscriptions()
		}
		for _, pat := range patterns {
			count, err := session.PUnsubscribe(pat)
			if err != nil {
				return true
			}
			if err := sink.writeAck("punsubscribe", pat, count); err != nil {
				return true
			}
		}
	case "CSUBSCRIBE":
		// Cursor subscribe: SUBSCRIBE plus a replay of the frames the
		// cursor's position misses from the channel's replay ring.
		if len(args) != 3 {
			sink.writeErr("ERR wrong number of arguments for 'csubscribe'") //nolint:errcheck
			return false
		}
		cur, err := message.UnmarshalCursor(args[2])
		if err != nil {
			sink.writeErr("ERR malformed cursor") //nolint:errcheck
			return false
		}
		res, err := session.SubscribeFrom(string(args[1]), cur)
		if err != nil {
			return true
		}
		if err := sink.writeReplayAck(string(args[1]), session.subscriptionCount(), res.Replayed, res.Missed, res.Epoch); err != nil {
			return true
		}
	case "PUBLISH":
		if len(args) != 3 {
			sink.writeErr("ERR wrong number of arguments for 'publish'") //nolint:errcheck
			return false
		}
		// Copy the payload: it aliases the reader's buffer, while broker
		// delivery is asynchronous.
		payload := append([]byte(nil), args[2]...)
		n := b.Publish(string(args[1]), payload)
		if err := sink.writeInt(int64(n)); err != nil {
			return true
		}
	case "REGION":
		// Declares the subscriber's region for per-region delivery-latency
		// attribution. Idempotent; the first non-empty declaration wins.
		if len(args) != 2 {
			sink.writeErr("ERR wrong number of arguments for 'region'") //nolint:errcheck
			return false
		}
		session.SetRegion(string(args[1]))
		if err := sink.writeSimple("OK"); err != nil {
			return true
		}
	case "PING":
		if err := sink.writeSimple("PONG"); err != nil {
			return true
		}
	case "ECHO":
		if len(args) != 2 {
			sink.writeErr("ERR wrong number of arguments for 'echo'") //nolint:errcheck
			return false
		}
		if err := sink.writeBulk(args[1]); err != nil {
			return true
		}
	case "INFO":
		bufp := infoPool.Get().(*[]byte)
		info := appendInfo((*bufp)[:0], b.Name(), b.Stats())
		err := sink.writeBulk(info)
		*bufp = info
		infoPool.Put(bufp)
		if err != nil {
			return true
		}
	case "QUIT":
		sink.writeSimple("OK") //nolint:errcheck
		return true
	default:
		sink.writeErr("ERR unknown command '" + string(args[0]) + "'") //nolint:errcheck
	}
	return false
}
