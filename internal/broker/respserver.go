package broker

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"github.com/dynamoth/dynamoth/internal/resp"
)

// Serve accepts connections on ln and serves the Redis pub/sub protocol
// against b until the listener is closed or the broker shuts down. It
// returns the listener's accept error (net.ErrClosed on clean shutdown).
//
// Supported commands: SUBSCRIBE, UNSUBSCRIBE, PSUBSCRIBE, PUNSUBSCRIBE,
// PUBLISH, PING, ECHO, INFO, QUIT. Push messages use the standard
// ["message", channel, payload] and ["pmessage", pattern, channel, payload]
// frames, subscription confirmations ["subscribe"/"unsubscribe"/
// "psubscribe"/"punsubscribe", name, count].
func Serve(ln net.Listener, b *Broker) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("broker: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveConn(conn, b)
		}()
	}
}

// respSink bridges broker deliveries onto a RESP connection. Deliver and
// DeliverPattern only buffer their frame; the session writer calls
// FlushDeliveries once per drained batch, so a fan-out burst costs one TCP
// write instead of one per message.
type respSink struct {
	mu   sync.Mutex
	w    *resp.Writer
	conn net.Conn
}

func (s *respSink) writeAck(kind, channel string, count int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteArrayHeader(3)        //nolint:errcheck
	s.w.WriteBulkString(kind)      //nolint:errcheck
	s.w.WriteBulkString(channel)   //nolint:errcheck
	s.w.WriteInteger(int64(count)) //nolint:errcheck
	return s.w.Flush()
}

func (s *respSink) writeSimple(v string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteSimpleString(v) //nolint:errcheck
	return s.w.Flush()
}

func (s *respSink) writeErr(msg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteError(msg) //nolint:errcheck
	return s.w.Flush()
}

func (s *respSink) writeInt(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteInteger(n) //nolint:errcheck
	return s.w.Flush()
}

func (s *respSink) writeBulk(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteBulk(b) //nolint:errcheck
	return s.w.Flush()
}

// Deliver implements Sink. It buffers the message frame; the batch flush
// (or any interleaved reply on this connection) pushes it out.
func (s *respSink) Deliver(channel string, payload []byte) {
	s.mu.Lock()
	err := s.w.WriteMessage(channel, payload)
	s.mu.Unlock()
	if err != nil {
		s.conn.Close() //nolint:errcheck // teardown; reader notices
	}
}

// DeliverPattern implements PatternSink with the Redis pmessage frame,
// buffered like Deliver.
func (s *respSink) DeliverPattern(pattern, channel string, payload []byte) {
	s.mu.Lock()
	err := s.w.WritePMessage(pattern, channel, payload)
	s.mu.Unlock()
	if err != nil {
		s.conn.Close() //nolint:errcheck // teardown; reader notices
	}
}

// FlushDeliveries implements BatchSink: one flush per drained batch of
// deliveries — the write-coalescing point of the whole pipeline.
func (s *respSink) FlushDeliveries() {
	s.mu.Lock()
	err := s.w.Flush()
	s.mu.Unlock()
	if err != nil {
		s.conn.Close() //nolint:errcheck // teardown; reader notices
	}
}

// Closed implements Sink.
func (s *respSink) Closed(error) {
	s.conn.Close() //nolint:errcheck // teardown
}

func serveConn(conn net.Conn, b *Broker) {
	defer conn.Close() //nolint:errcheck // teardown
	sink := &respSink{w: resp.NewWriter(conn), conn: conn}
	session, err := b.Connect(conn.RemoteAddr().String(), sink)
	if err != nil {
		sink.writeErr("ERR broker unavailable") //nolint:errcheck
		return
	}
	defer session.Close()

	r := resp.NewReader(conn)
	for {
		args, err := r.ReadCommand()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				sink.writeErr("ERR protocol error") //nolint:errcheck
			}
			return
		}
		if done := dispatch(b, session, sink, args); done {
			return
		}
	}
}

// dispatch executes one command; it reports whether the connection should
// close.
func dispatch(b *Broker, session *Session, sink *respSink, args [][]byte) bool {
	cmd := strings.ToUpper(string(args[0]))
	switch cmd {
	case "SUBSCRIBE":
		if len(args) < 2 {
			sink.writeErr("ERR wrong number of arguments for 'subscribe'") //nolint:errcheck
			return false
		}
		for _, ch := range args[1:] {
			count, err := session.Subscribe(string(ch))
			if err != nil {
				return true
			}
			if err := sink.writeAck("subscribe", string(ch), count); err != nil {
				return true
			}
		}
	case "UNSUBSCRIBE":
		channels := make([]string, 0, len(args)-1)
		for _, ch := range args[1:] {
			channels = append(channels, string(ch))
		}
		if len(channels) == 0 {
			channels = session.Subscriptions()
		}
		for _, ch := range channels {
			count, err := session.Unsubscribe(ch)
			if err != nil {
				return true
			}
			if err := sink.writeAck("unsubscribe", ch, count); err != nil {
				return true
			}
		}
	case "PSUBSCRIBE":
		if len(args) < 2 {
			sink.writeErr("ERR wrong number of arguments for 'psubscribe'") //nolint:errcheck
			return false
		}
		for _, pat := range args[1:] {
			count, err := session.PSubscribe(string(pat))
			if err != nil {
				return true
			}
			if err := sink.writeAck("psubscribe", string(pat), count); err != nil {
				return true
			}
		}
	case "PUNSUBSCRIBE":
		patterns := make([]string, 0, len(args)-1)
		for _, pat := range args[1:] {
			patterns = append(patterns, string(pat))
		}
		if len(patterns) == 0 {
			patterns = session.PatternSubscriptions()
		}
		for _, pat := range patterns {
			count, err := session.PUnsubscribe(pat)
			if err != nil {
				return true
			}
			if err := sink.writeAck("punsubscribe", pat, count); err != nil {
				return true
			}
		}
	case "PUBLISH":
		if len(args) != 3 {
			sink.writeErr("ERR wrong number of arguments for 'publish'") //nolint:errcheck
			return false
		}
		// Copy the payload: it aliases the reader's buffer, while broker
		// delivery is asynchronous.
		payload := append([]byte(nil), args[2]...)
		n := b.Publish(string(args[1]), payload)
		if err := sink.writeInt(int64(n)); err != nil {
			return true
		}
	case "PING":
		if err := sink.writeSimple("PONG"); err != nil {
			return true
		}
	case "ECHO":
		if len(args) != 2 {
			sink.writeErr("ERR wrong number of arguments for 'echo'") //nolint:errcheck
			return false
		}
		if err := sink.writeBulk(args[1]); err != nil {
			return true
		}
	case "INFO":
		st := b.Stats()
		info := fmt.Sprintf("# Server\r\nname:%s\r\n# Stats\r\nsessions:%d\r\nchannels:%d\r\npublished:%d\r\ndelivered:%d\r\ndropped:%d\r\n",
			b.Name(), st.Sessions, st.Channels, st.Published, st.Delivered, st.Dropped)
		if err := sink.writeBulk([]byte(info)); err != nil {
			return true
		}
	case "QUIT":
		sink.writeSimple("OK") //nolint:errcheck
		return true
	default:
		sink.writeErr("ERR unknown command '" + string(args[0]) + "'") //nolint:errcheck
	}
	return false
}
