package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// chanSink collects deliveries on a channel for assertions.
type chanSink struct {
	msgs   chan [2]string
	closed chan error
}

func newChanSink(buf int) *chanSink {
	return &chanSink{msgs: make(chan [2]string, buf), closed: make(chan error, 1)}
}

func (s *chanSink) Deliver(channel string, payload []byte) {
	s.msgs <- [2]string{channel, string(payload)}
}

func (s *chanSink) Closed(reason error) { s.closed <- reason }

func (s *chanSink) next(t *testing.T) [2]string {
	t.Helper()
	select {
	case m := <-s.msgs:
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for delivery")
		return [2]string{}
	}
}

func (s *chanSink) expectNone(t *testing.T, d time.Duration) {
	t.Helper()
	select {
	case m := <-s.msgs:
		t.Fatalf("unexpected delivery %v", m)
	case <-time.After(d):
	}
}

// blockedSink never consumes, to trigger overflow.
type blockedSink struct {
	release chan struct{}
	closed  chan error
}

func newBlockedSink() *blockedSink {
	return &blockedSink{release: make(chan struct{}), closed: make(chan error, 1)}
}

func (s *blockedSink) Deliver(string, []byte) { <-s.release }
func (s *blockedSink) Closed(reason error)    { s.closed <- reason }

func TestPublishSubscribeBasics(t *testing.T) {
	b := New(Options{Name: "pub1"})
	defer b.Close()

	sink := newChanSink(16)
	s, err := b.Connect("c1", sink)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.Subscribe("alpha"); err != nil || n != 1 {
		t.Fatalf("Subscribe=%d,%v", n, err)
	}
	if got := b.Publish("alpha", []byte("m1")); got != 1 {
		t.Fatalf("Publish receivers=%d", got)
	}
	if m := sink.next(t); m[0] != "alpha" || m[1] != "m1" {
		t.Fatalf("delivery=%v", m)
	}
	// Unsubscribed channels deliver nothing.
	if got := b.Publish("beta", []byte("m2")); got != 0 {
		t.Fatalf("Publish to empty channel receivers=%d", got)
	}
	sink.expectNone(t, 50*time.Millisecond)
}

func TestFanOutIsolationBetweenChannels(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sinks := make([]*chanSink, 3)
	for i := range sinks {
		sinks[i] = newChanSink(16)
		s, err := b.Connect(fmt.Sprintf("c%d", i), sinks[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Subscribe(fmt.Sprintf("ch%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Publish("ch1", []byte("only-1")); got != 1 {
		t.Fatalf("receivers=%d", got)
	}
	if m := sinks[1].next(t); m[1] != "only-1" {
		t.Fatalf("delivery=%v", m)
	}
	sinks[0].expectNone(t, 30*time.Millisecond)
	sinks[2].expectNone(t, 30*time.Millisecond)
}

func TestAllSubscribersReceiveEachPublication(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	const n = 20
	sinks := make([]*chanSink, n)
	for i := range sinks {
		sinks[i] = newChanSink(64)
		s, err := b.Connect(fmt.Sprintf("c%d", i), sinks[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Subscribe("shared"); err != nil {
			t.Fatal(err)
		}
	}
	const msgs = 10
	for i := 0; i < msgs; i++ {
		if got := b.Publish("shared", []byte(fmt.Sprintf("m%d", i))); got != n {
			t.Fatalf("publication %d reached %d of %d", i, got, n)
		}
	}
	for i, sink := range sinks {
		for j := 0; j < msgs; j++ {
			m := sink.next(t)
			if want := fmt.Sprintf("m%d", j); m[1] != want {
				t.Fatalf("subscriber %d message %d = %q want %q (order broken)", i, j, m[1], want)
			}
		}
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sink := newChanSink(16)
	s, _ := b.Connect("c", sink)
	s.Subscribe("x", "y")
	if n, err := s.Unsubscribe("x"); err != nil || n != 1 {
		t.Fatalf("Unsubscribe=%d,%v", n, err)
	}
	b.Publish("x", []byte("gone"))
	b.Publish("y", []byte("still"))
	if m := sink.next(t); m[0] != "y" {
		t.Fatalf("delivery=%v", m)
	}
	// Unsubscribe with no args drops everything.
	if n, _ := s.Unsubscribe(); n != 0 {
		t.Fatalf("Unsubscribe()=%d", n)
	}
	if got := b.Subscribers("y"); got != 0 {
		t.Fatalf("Subscribers(y)=%d", got)
	}
}

func TestDuplicateSubscribeIdempotent(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sink := newChanSink(16)
	s, _ := b.Connect("c", sink)
	s.Subscribe("ch")
	if n, _ := s.Subscribe("ch"); n != 1 {
		t.Fatalf("double subscribe count=%d", n)
	}
	if got := b.Subscribers("ch"); got != 1 {
		t.Fatalf("Subscribers=%d", got)
	}
	b.Publish("ch", []byte("once"))
	sink.next(t)
	sink.expectNone(t, 30*time.Millisecond)
}

func TestSlowConsumerDisconnected(t *testing.T) {
	b := New(Options{OutputBuffer: 8})
	defer b.Close()
	blocked := newBlockedSink()
	defer close(blocked.release)
	s, _ := b.Connect("slow", blocked)
	s.Subscribe("hot")

	healthy := newChanSink(1024)
	hs, _ := b.Connect("fast", healthy)
	hs.Subscribe("hot")

	// Overwhelm the blocked consumer: its buffer (8) plus at most one
	// message in its writer's hands fill up, and the next publish kills it.
	// Pace the publishes so the healthy consumer's writer keeps draining.
	for i := 0; i < 20; i++ {
		b.Publish("hot", []byte("x"))
		time.Sleep(200 * time.Microsecond)
	}
	select {
	case reason := <-blocked.closed:
		if !errors.Is(reason, ErrSlowConsumer) {
			t.Fatalf("close reason=%v", reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("slow consumer never disconnected")
	}
	// The healthy subscriber is unaffected and the channel still works.
	if got := b.Publish("hot", []byte("after")); got != 1 {
		t.Fatalf("receivers after disconnect=%d", got)
	}
	if st := b.Stats(); st.Dropped == 0 {
		t.Fatal("Dropped counter not incremented")
	}
}

func TestSessionCloseCleansUp(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sink := newChanSink(4)
	s, _ := b.Connect("c", sink)
	s.Subscribe("a", "b")
	s.Close()
	select {
	case reason := <-sink.closed:
		if !errors.Is(reason, ErrSessionClosed) {
			t.Fatalf("reason=%v", reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Closed never called")
	}
	if got := b.Subscribers("a") + b.Subscribers("b"); got != 0 {
		t.Fatalf("stale subscriptions after close: %d", got)
	}
	if _, err := s.Subscribe("a"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Subscribe after close err=%v", err)
	}
	if _, err := s.Unsubscribe("a"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Unsubscribe after close err=%v", err)
	}
	s.Close() // idempotent
}

func TestBrokerCloseClosesSessions(t *testing.T) {
	b := New(Options{})
	sink := newChanSink(4)
	if _, err := b.Connect("c", sink); err != nil {
		t.Fatal(err)
	}
	b.Close()
	select {
	case reason := <-sink.closed:
		if !errors.Is(reason, ErrBrokerClosed) {
			t.Fatalf("reason=%v", reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("session not closed on broker shutdown")
	}
	if _, err := b.Connect("late", newChanSink(1)); !errors.Is(err, ErrBrokerClosed) {
		t.Fatalf("Connect after close err=%v", err)
	}
	if got := b.Publish("x", nil); got != 0 {
		t.Fatalf("Publish after close=%d", got)
	}
	b.Close() // idempotent
}

func TestObserverSeesEverything(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	obs := &recordingObserver{}
	b.AddObserver(obs)

	sink := newChanSink(16)
	s, _ := b.Connect("c1", sink)
	s.Subscribe("ch")
	b.Publish("ch", []byte("payload"))
	sink.next(t)
	s.Unsubscribe("ch")

	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.subs) != 1 || obs.subs[0] != "ch/c1/1" {
		t.Fatalf("subs=%v", obs.subs)
	}
	if len(obs.pubs) != 1 || obs.pubs[0] != "ch/7/1" {
		t.Fatalf("pubs=%v", obs.pubs)
	}
	if len(obs.unsubs) != 1 || obs.unsubs[0] != "ch/c1/0" {
		t.Fatalf("unsubs=%v", obs.unsubs)
	}
}

func TestObserverSeesDisconnectUnsubscribes(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	obs := &recordingObserver{}
	b.AddObserver(obs)
	sink := newChanSink(4)
	s, _ := b.Connect("c1", sink)
	s.Subscribe("a", "b")
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		obs.mu.Lock()
		n := len(obs.unsubs)
		obs.mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("observer saw %d unsubscribes, want 2", n)
		}
		time.Sleep(time.Millisecond)
	}
}

type recordingObserver struct {
	mu     sync.Mutex
	pubs   []string
	subs   []string
	unsubs []string
}

func (o *recordingObserver) OnPublish(ch string, payload []byte, receivers int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.pubs = append(o.pubs, fmt.Sprintf("%s/%d/%d", ch, len(payload), receivers))
}

func (o *recordingObserver) OnSubscribe(ch, session string, n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.subs = append(o.subs, fmt.Sprintf("%s/%s/%d", ch, session, n))
}

func (o *recordingObserver) OnUnsubscribe(ch, session string, n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.unsubs = append(o.unsubs, fmt.Sprintf("%s/%s/%d", ch, session, n))
}

func TestChannelsListing(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	s1, _ := b.Connect("c1", newChanSink(4))
	s1.Subscribe("a", "b")
	got := b.Channels()
	sort.Strings(got)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Channels=%v", got)
	}
	s1.Unsubscribe("a", "b")
	if got := b.Channels(); len(got) != 0 {
		t.Fatalf("Channels after unsubscribe=%v", got)
	}
}

func TestConnectNilSink(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	if _, err := b.Connect("c", nil); err == nil {
		t.Fatal("Connect(nil) succeeded")
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New(Options{OutputBuffer: 10000})
	defer b.Close()
	const subscribers = 10
	const msgs = 200

	var received sync.WaitGroup
	received.Add(subscribers * msgs)
	for i := 0; i < subscribers; i++ {
		sink := &countingSink{wg: &received}
		s, err := b.Connect(fmt.Sprintf("c%d", i), sink)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Subscribe("load"); err != nil {
			t.Fatal(err)
		}
	}
	var pubs sync.WaitGroup
	for p := 0; p < 4; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			for i := 0; i < msgs/4; i++ {
				b.Publish("load", []byte("x"))
			}
		}(p)
	}
	pubs.Wait()
	done := make(chan struct{})
	go func() {
		received.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("not all messages delivered")
	}
	if st := b.Stats(); st.Published != msgs || st.Delivered != subscribers*msgs {
		t.Fatalf("stats=%+v", st)
	}
}

type countingSink struct{ wg *sync.WaitGroup }

func (s *countingSink) Deliver(string, []byte) { s.wg.Done() }
func (s *countingSink) Closed(error)           {}

func TestSessionString(t *testing.T) {
	b := New(Options{Name: "pubX"})
	defer b.Close()
	s, _ := b.Connect("me", newChanSink(1))
	if got := s.String(); got != "session{me on pubX}" {
		t.Fatalf("String=%q", got)
	}
	if s.Name() != "me" || b.Name() != "pubX" {
		t.Fatal("names wrong")
	}
}
