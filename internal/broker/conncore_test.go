package broker

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/resp"
)

// testCores lists the connection cores to exercise on this platform.
func testCores() []ConnCore {
	cores := []ConnCore{CoreGoroutine}
	if ReactorAvailable() {
		cores = append(cores, CoreReactor)
	}
	return cores
}

// startCore serves a fresh broker on a loopback listener with the given
// connection core and returns the address plus the live handles.
func startCore(t *testing.T, bopts Options, sopts ServeOptions) (string, *Broker, *ConnServer) {
	t.Helper()
	if bopts.Name == "" {
		bopts.Name = "core-test"
	}
	b := New(bopts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cs := NewConnServer(b, sopts)
	done := make(chan struct{})
	go func() {
		defer close(done)
		cs.Serve(ln) //nolint:errcheck // returns on listener close
	}()
	t.Cleanup(func() {
		b.Close()
		ln.Close()
		<-done
	})
	return ln.Addr().String(), b, cs
}

// TestConnCoresProtocol runs the full command surface against every core so
// the reactor and goroutine paths stay wire-identical.
func TestConnCoresProtocol(t *testing.T) {
	for _, core := range testCores() {
		t.Run(core.String(), func(t *testing.T) {
			addr, _, cs := startCore(t, Options{}, ServeOptions{Core: core})
			if cs.Core() != core {
				t.Fatalf("resolved core %v, want %v", cs.Core(), core)
			}

			c := dialRESP(t, addr)
			if v := c.cmd(t, "PING"); v.Kind != resp.KindSimpleString || string(v.Str) != "PONG" {
				t.Fatalf("PING => %+v", v)
			}
			if v := c.cmd(t, "ECHO", "hello"); v.Kind != resp.KindBulkString || string(v.Str) != "hello" {
				t.Fatalf("ECHO => %+v", v)
			}
			if v := c.cmd(t, "NOPE"); v.Kind != resp.KindError || !strings.Contains(string(v.Str), "unknown command") {
				t.Fatalf("unknown => %+v", v)
			}

			sub := dialRESP(t, addr)
			ack := sub.cmd(t, "SUBSCRIBE", "news")
			if ack.Kind != resp.KindArray || string(ack.Array[0].Str) != "subscribe" || ack.Array[2].Int != 1 {
				t.Fatalf("subscribe ack %+v", ack)
			}
			pack := sub.cmd(t, "PSUBSCRIBE", "sport.*")
			if string(pack.Array[0].Str) != "psubscribe" || pack.Array[2].Int != 2 {
				t.Fatalf("psubscribe ack %+v", pack)
			}

			if v := c.cmd(t, "PUBLISH", "news", "breaking"); v.Int != 1 {
				t.Fatalf("PUBLISH news => %+v", v)
			}
			msg := sub.read(t)
			if string(msg.Array[0].Str) != "message" || string(msg.Array[1].Str) != "news" || string(msg.Array[2].Str) != "breaking" {
				t.Fatalf("message frame %+v", msg)
			}
			if v := c.cmd(t, "PUBLISH", "sport.f1", "lights out"); v.Int != 1 {
				t.Fatalf("PUBLISH sport.f1 => %+v", v)
			}
			pmsg := sub.read(t)
			if string(pmsg.Array[0].Str) != "pmessage" || string(pmsg.Array[1].Str) != "sport.*" ||
				string(pmsg.Array[2].Str) != "sport.f1" || string(pmsg.Array[3].Str) != "lights out" {
				t.Fatalf("pmessage frame %+v", pmsg)
			}

			if v := sub.cmd(t, "UNSUBSCRIBE", "news"); string(v.Array[0].Str) != "unsubscribe" || v.Array[2].Int != 1 {
				t.Fatalf("unsubscribe ack %+v", v)
			}
			if v := sub.cmd(t, "PUNSUBSCRIBE", "sport.*"); string(v.Array[0].Str) != "punsubscribe" || v.Array[2].Int != 0 {
				t.Fatalf("punsubscribe ack %+v", v)
			}

			info := c.cmd(t, "INFO")
			if info.Kind != resp.KindBulkString || !strings.Contains(string(info.Str), "sessions:") {
				t.Fatalf("INFO => %+v", info)
			}
			if v := c.cmd(t, "QUIT"); string(v.Str) != "OK" {
				t.Fatalf("QUIT => %+v", v)
			}

			st := cs.Stats()
			if st.Core != core.String() || st.Accepts < 2 || st.BytesIn == 0 || st.BytesOut == 0 {
				t.Fatalf("stats %+v", st)
			}
		})
	}
}

// TestConnCoresPipelined sends a pipelined burst in one TCP segment and
// expects every reply — the reactor must parse multiple commands out of one
// read and coalesce the replies.
func TestConnCoresPipelined(t *testing.T) {
	for _, core := range testCores() {
		t.Run(core.String(), func(t *testing.T) {
			addr, _, _ := startCore(t, Options{}, ServeOptions{Core: core})
			c := dialRESP(t, addr)

			const n = 200
			var burst []byte
			for i := 0; i < n; i++ {
				burst = resp.AppendCommandStrings(burst, "ECHO", fmt.Sprintf("m%d", i))
			}
			if _, err := c.conn.Write(burst); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				v := c.read(t)
				if want := fmt.Sprintf("m%d", i); string(v.Str) != want {
					t.Fatalf("reply %d = %q, want %q", i, v.Str, want)
				}
			}
		})
	}
}

// TestConnCoresShutdownNoGoroutineLeak holds live (and subscribed)
// connections open, shuts the server down, and verifies the goroutine count
// returns to baseline — the regression guard for writer/reader/shard
// goroutines outliving the broker.
func TestConnCoresShutdownNoGoroutineLeak(t *testing.T) {
	for _, core := range testCores() {
		t.Run(core.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()

			b := New(Options{Name: "leak-test"})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			cs := NewConnServer(b, ServeOptions{Core: core})
			served := make(chan struct{})
			go func() {
				defer close(served)
				cs.Serve(ln) //nolint:errcheck
			}()

			const conns = 32
			clients := make([]net.Conn, 0, conns)
			for i := 0; i < conns; i++ {
				c := dialRESP(t, ln.Addr().String())
				if i%2 == 0 {
					c.cmd(t, "SUBSCRIBE", fmt.Sprintf("ch%d", i))
				} else {
					c.cmd(t, "PING")
				}
				clients = append(clients, c.conn)
			}

			// Tear down with clients still connected. Broker close ends every
			// session; listener close ends the accept/shard loops.
			b.Close()
			ln.Close()
			select {
			case <-served:
			case <-time.After(5 * time.Second):
				t.Fatal("Serve did not return after listener close")
			}
			for _, c := range clients {
				c.Close() //nolint:errcheck
			}

			deadline := time.Now().Add(5 * time.Second)
			for {
				runtime.GC()
				if n := runtime.NumGoroutine(); n <= before+2 {
					break
				}
				if time.Now().After(deadline) {
					buf := make([]byte, 1<<20)
					t.Fatalf("goroutines %d > baseline %d after shutdown\n%s",
						runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestConnCoresSlowConsumer verifies that a subscriber that never reads is
// disconnected (output overflow) instead of wedging the publisher, and that
// the backpressure counter records it.
func TestConnCoresSlowConsumer(t *testing.T) {
	for _, core := range testCores() {
		t.Run(core.String(), func(t *testing.T) {
			// Tiny limits so the overflow trips fast: 16 queued messages for
			// the goroutine core, 4 KiB pending bytes for the reactor.
			addr, b, cs := startCore(t,
				Options{OutputBuffer: 16},
				ServeOptions{Core: core, WriteBufferLimit: 4 << 10})

			sub := dialRESP(t, addr)
			sub.cmd(t, "SUBSCRIBE", "firehose")
			// Stop reading: deliveries pile up server-side.

			payload := make([]byte, 1024)
			deadline := time.Now().Add(5 * time.Second)
			for b.Stats().Sessions > 0 {
				b.Publish("firehose", payload)
				if time.Now().After(deadline) {
					t.Fatal("slow consumer was never disconnected")
				}
			}
			if core == CoreReactor && cs.Stats().Backpressure == 0 {
				t.Fatal("backpressure counter not incremented")
			}
		})
	}
}

// TestConnCoresObserver checks accept/close observer plumbing on both cores.
func TestConnCoresObserver(t *testing.T) {
	for _, core := range testCores() {
		t.Run(core.String(), func(t *testing.T) {
			obs := &countingObserver{}
			addr, _, _ := startCore(t, Options{}, ServeOptions{Core: core, Observer: obs})
			c := dialRESP(t, addr)
			c.cmd(t, "PING")
			c.conn.Close()

			deadline := time.Now().Add(2 * time.Second)
			for obs.closes.Load() == 0 {
				if time.Now().After(deadline) {
					t.Fatalf("observer: accepts=%d closes=%d", obs.accepts.Load(), obs.closes.Load())
				}
				time.Sleep(5 * time.Millisecond)
			}
			if obs.accepts.Load() != 1 {
				t.Fatalf("accepts = %d, want 1", obs.accepts.Load())
			}
		})
	}
}

type countingObserver struct {
	accepts, closes, backpressure atomic.Int64
}

func (o *countingObserver) OnAccept(string)            { o.accepts.Add(1) }
func (o *countingObserver) OnConnClose(string, error)  { o.closes.Add(1) }
func (o *countingObserver) OnBackpressure(string, int) { o.backpressure.Add(1) }

// TestReactorLargeFanout pushes payloads big enough to overrun the kernel
// socket buffer, exercising the partial-write + EPOLLOUT re-arm path.
func TestReactorLargeFanout(t *testing.T) {
	if !ReactorAvailable() {
		t.Skip("reactor core unavailable")
	}
	addr, b, _ := startCore(t, Options{}, ServeOptions{Core: CoreReactor, WriteBufferLimit: 64 << 20})

	sub := dialRESP(t, addr)
	sub.cmd(t, "SUBSCRIBE", "big")

	payload := make([]byte, 512<<10)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	const msgs = 8
	go func() {
		for i := 0; i < msgs; i++ {
			b.Publish("big", payload)
		}
	}()
	for i := 0; i < msgs; i++ {
		sub.conn.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
		v, err := sub.r.ReadValue()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if string(v.Array[0].Str) != "message" || len(v.Array[2].Str) != len(payload) {
			t.Fatalf("message %d: kind=%s len=%d", i, v.Array[0].Str, len(v.Array[2].Str))
		}
		if string(v.Array[2].Str) != string(payload) {
			t.Fatalf("message %d payload corrupted", i)
		}
	}
}

// TestReactorChurn hammers the reactor with connections subscribing,
// publishing, and vanishing concurrently.
func TestReactorChurn(t *testing.T) {
	if !ReactorAvailable() {
		t.Skip("reactor core unavailable")
	}
	addr, _, cs := startCore(t, Options{}, ServeOptions{Core: CoreReactor})

	const workers = 16
	iters := 30
	if testing.Short() {
		iters = 8
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
				if err != nil {
					continue
				}
				cl := &respClient{conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}
				ch := fmt.Sprintf("churn%d", w%4)
				cl.cmd(t, "SUBSCRIBE", ch)
				cl.cmd(t, "PUBLISH", ch, "x") //nolint:errcheck // may race own delivery
				if i%3 == 0 {
					cl.w.WriteCommand([]byte("QUIT")) //nolint:errcheck
					cl.w.Flush()                      //nolint:errcheck
				}
				conn.Close()
			}
		}(w)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for cs.Stats().Conns > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("conns stuck at %d after churn", cs.Stats().Conns)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInfoAppendNoAlloc guards the pooled INFO path: rendering into a
// pre-grown scratch must not allocate.
func TestInfoAppendNoAlloc(t *testing.T) {
	st := Stats{Sessions: 12, Channels: 34, Published: 56, Delivered: 78, Dropped: 9}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = appendInfo(buf[:0], "bench", st)
	})
	if allocs != 0 {
		t.Fatalf("appendInfo allocs = %v, want 0", allocs)
	}
	want := "# Server\r\nname:bench\r\n# Stats\r\nsessions:12\r\nchannels:34\r\npublished:56\r\ndelivered:78\r\ndropped:9\r\n"
	if string(buf) != want {
		t.Fatalf("appendInfo body:\n%q\nwant:\n%q", buf, want)
	}
}

func TestFDTable(t *testing.T) {
	var tbl fdTable[int]
	if tbl.get(5) != nil || tbl.get(-1) != nil {
		t.Fatal("empty table returned entry")
	}
	a, b, c := 1, 2, 3
	tbl.put(5, &a)
	tbl.put(700, &b)
	tbl.put(0, &c)
	if tbl.get(5) != &a || tbl.get(700) != &b || tbl.get(0) != &c {
		t.Fatal("lookup mismatch")
	}
	if tbl.size() != 3 {
		t.Fatalf("size = %d, want 3", tbl.size())
	}
	seen := map[int]bool{}
	tbl.each(func(fd int, _ *int) { seen[fd] = true })
	if !seen[5] || !seen[700] || !seen[0] || len(seen) != 3 {
		t.Fatalf("each visited %v", seen)
	}
	tbl.del(5)
	tbl.del(9999) // no-op
	if tbl.get(5) != nil || tbl.size() != 2 {
		t.Fatal("del failed")
	}
}

func TestParseConnCore(t *testing.T) {
	cases := map[string]ConnCore{"": CoreAuto, "auto": CoreAuto, "goroutine": CoreGoroutine, "reactor": CoreReactor}
	for in, want := range cases {
		got, err := ParseConnCore(in)
		if err != nil || got != want {
			t.Fatalf("ParseConnCore(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseConnCore("bogus"); err == nil {
		t.Fatal("ParseConnCore accepted bogus")
	}
}
