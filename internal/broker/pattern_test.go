package broker

import (
	"testing"
	"testing/quick"
	"time"
)

func TestGlobMatch(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"tile-*", "tile-3-4", true},
		{"tile-*", "room-1", false},
		{"tile-?-?", "tile-3-4", true},
		{"tile-?-?", "tile-33-4", false},
		{"room.[abc]", "room.b", true},
		{"room.[abc]", "room.d", false},
		{"room.[^abc]", "room.d", true},
		{"room.[^abc]", "room.a", false},
		{"room.[a-c]", "room.b", true},
		{"room.[a-c]", "room.z", false},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "abd", false},
		{"a**c", "abbbc", true},
		{"", "", true},
		{"", "x", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"abc", "ab", false},
		{"ab", "abc", false},
		{`a\*c`, "a*c", true},
		{`a\*c`, "abc", false},
		{"h?llo*", "hello-world", true},
		{"[", "x", false},  // unterminated class
		{"[ab", "a", true}, // unterminated class still matches members
		{"*-*-*", "a-b-c", true},
		{"*-*-*", "a-b", false},
	}
	for _, tt := range tests {
		if got := globMatch(tt.pattern, tt.s); got != tt.want {
			t.Errorf("globMatch(%q, %q)=%v want %v", tt.pattern, tt.s, got, tt.want)
		}
	}
}

func TestGlobMatchQuickProperties(t *testing.T) {
	// "*" matches everything; a literal pattern matches only itself.
	star := func(s string) bool { return globMatch("*", s) }
	if err := quick.Check(star, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	selfMatch := func(s string) bool {
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '*', '?', '[', '\\':
				return true // skip meta-containing strings
			}
		}
		return globMatch(s, s)
	}
	if err := quick.Check(selfMatch, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPSubscribeDelivery(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sink := newChanSink(16)
	s, err := b.Connect("c", sink)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.PSubscribe("tile-*"); err != nil || n != 1 {
		t.Fatalf("PSubscribe=%d,%v", n, err)
	}
	if got := b.Publish("tile-3-4", []byte("pos")); got != 1 {
		t.Fatalf("receivers=%d", got)
	}
	if m := sink.next(t); m[0] != "tile-3-4" || m[1] != "pos" {
		t.Fatalf("delivery=%v", m)
	}
	// Non-matching channel: nothing.
	if got := b.Publish("room-1", []byte("x")); got != 0 {
		t.Fatalf("receivers=%d", got)
	}
	sink.expectNone(t, 30*time.Millisecond)
}

func TestPSubscribePatternSinkAttribution(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sink := &patternSink{frames: make(chan [3]string, 8)}
	s, err := b.Connect("c", sink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PSubscribe("news.*"); err != nil {
		t.Fatal(err)
	}
	b.Publish("news.sports", []byte("goal"))
	select {
	case f := <-sink.frames:
		if f[0] != "news.*" || f[1] != "news.sports" || f[2] != "goal" {
			t.Fatalf("frame=%v", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no pattern delivery")
	}
}

type patternSink struct {
	frames chan [3]string
}

func (p *patternSink) Deliver(channel string, payload []byte) {
	p.frames <- [3]string{"", channel, string(payload)}
}

func (p *patternSink) DeliverPattern(pattern, channel string, payload []byte) {
	p.frames <- [3]string{pattern, channel, string(payload)}
}

func (p *patternSink) Closed(error) {}

func TestChannelAndPatternBothDeliver(t *testing.T) {
	// Redis semantics: a session subscribed to both the channel and a
	// matching pattern receives the message twice.
	b := New(Options{})
	defer b.Close()
	sink := newChanSink(16)
	s, _ := b.Connect("c", sink)
	s.Subscribe("x")
	s.PSubscribe("x*")
	if got := b.Publish("x", []byte("twice")); got != 2 {
		t.Fatalf("receivers=%d, want 2", got)
	}
	sink.next(t)
	sink.next(t)
}

func TestPUnsubscribe(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sink := newChanSink(16)
	s, _ := b.Connect("c", sink)
	s.PSubscribe("a*", "b*")
	if n, err := s.PUnsubscribe("a*"); err != nil || n != 1 {
		t.Fatalf("PUnsubscribe=%d,%v", n, err)
	}
	b.Publish("alpha", []byte("gone"))
	b.Publish("beta", []byte("still"))
	if m := sink.next(t); m[0] != "beta" {
		t.Fatalf("delivery=%v", m)
	}
	// Bare PUnsubscribe drops everything.
	if n, _ := s.PUnsubscribe(); n != 0 {
		t.Fatalf("PUnsubscribe()=%d", n)
	}
}

func TestPatternCleanupOnClose(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sink := newChanSink(4)
	s, _ := b.Connect("c", sink)
	s.PSubscribe("z*")
	s.Close()
	// Publication to a matching channel reaches nobody afterwards.
	deadline := time.Now().Add(2 * time.Second)
	for b.Publish("zebra", []byte("x")) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("pattern subscription leaked after close")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMixedCountsRedisStyle(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sink := newChanSink(4)
	s, _ := b.Connect("c", sink)
	if n, _ := s.Subscribe("a"); n != 1 {
		t.Fatalf("count=%d", n)
	}
	if n, _ := s.PSubscribe("p*"); n != 2 {
		t.Fatalf("count=%d", n)
	}
	if n, _ := s.Unsubscribe("a"); n != 1 {
		t.Fatalf("count=%d", n)
	}
	if got := s.PatternSubscriptions(); len(got) != 1 || got[0] != "p*" {
		t.Fatalf("patterns=%v", got)
	}
}

func TestRESPPSubscribeFlow(t *testing.T) {
	addr, _ := startTCP(t)
	sub := dialRESP(t, addr)
	pub := dialRESP(t, addr)

	ack := sub.cmd(t, "PSUBSCRIBE", "tile-*")
	if string(ack.Array[0].Str) != "psubscribe" || ack.Array[2].Int != 1 {
		t.Fatalf("ack=%+v", ack)
	}
	if v := pub.cmd(t, "PUBLISH", "tile-7-7", "hi"); v.Int != 1 {
		t.Fatalf("PUBLISH=%+v", v)
	}
	msg := sub.read(t)
	if len(msg.Array) != 4 ||
		string(msg.Array[0].Str) != "pmessage" ||
		string(msg.Array[1].Str) != "tile-*" ||
		string(msg.Array[2].Str) != "tile-7-7" ||
		string(msg.Array[3].Str) != "hi" {
		t.Fatalf("pmessage frame=%+v", msg)
	}
	unack := sub.cmd(t, "PUNSUBSCRIBE", "tile-*")
	if string(unack.Array[0].Str) != "punsubscribe" || unack.Array[2].Int != 0 {
		t.Fatalf("unack=%+v", unack)
	}
	if v := pub.cmd(t, "PUBLISH", "tile-1-1", "later"); v.Int != 0 {
		t.Fatalf("delivery after punsubscribe: %+v", v)
	}
}
