package broker

// fdTable is a dense file-descriptor-indexed lookup table — the reactor's
// replacement for a map[int]*session on the event hot path. File descriptors
// are small, densely allocated integers, so a flat slice gives O(1) lookups
// with no hashing and no bucket chasing; it grows geometrically to the
// highest fd seen and is only ever touched by its owning shard goroutine, so
// it needs no locking.
type fdTable[T any] struct {
	slots []*T
}

// get returns the entry for fd, or nil when none is registered.
func (t *fdTable[T]) get(fd int) *T {
	if fd < 0 || fd >= len(t.slots) {
		return nil
	}
	return t.slots[fd]
}

// put registers v under fd, growing the table as needed.
func (t *fdTable[T]) put(fd int, v *T) {
	if fd >= len(t.slots) {
		n := len(t.slots)*2 + 64
		if n <= fd {
			n = fd + 1
		}
		grown := make([]*T, n)
		copy(grown, t.slots)
		t.slots = grown
	}
	t.slots[fd] = v
}

// del removes the entry for fd (no-op when absent).
func (t *fdTable[T]) del(fd int) {
	if fd >= 0 && fd < len(t.slots) {
		t.slots[fd] = nil
	}
}

// each calls f for every registered entry.
func (t *fdTable[T]) each(f func(fd int, v *T)) {
	for fd, v := range t.slots {
		if v != nil {
			f(fd, v)
		}
	}
}

// size counts registered entries.
func (t *fdTable[T]) size() int {
	n := 0
	for _, v := range t.slots {
		if v != nil {
			n++
		}
	}
	return n
}
