//go:build !linux

package broker

import "net"

// ReactorAvailable reports whether the epoll reactor core can run on this
// platform. Non-Linux builds fall back to the goroutine core.
func ReactorAvailable() bool { return false }

func (cs *ConnServer) serveReactor(net.Listener) error {
	return ErrReactorUnavailable
}
