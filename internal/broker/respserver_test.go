package broker

import (
	"net"
	"strings"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/resp"
)

// startTCP starts a broker behind a RESP listener and returns its address
// and a cleanup function.
func startTCP(t *testing.T) (addr string, b *Broker) {
	t.Helper()
	b = New(Options{Name: "tcp-test"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(ln, b) //nolint:errcheck // returns on listener close
	}()
	t.Cleanup(func() {
		b.Close()
		ln.Close()
		<-done
	})
	return ln.Addr().String(), b
}

// respClient is a minimal test client.
type respClient struct {
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
}

func dialRESP(t *testing.T, addr string) *respClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &respClient{conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}
}

func (c *respClient) cmd(t *testing.T, args ...string) resp.Value {
	t.Helper()
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	if err := c.w.WriteCommand(bs...); err != nil {
		t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	return c.read(t)
}

func (c *respClient) read(t *testing.T) resp.Value {
	t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	v, err := c.r.ReadValue()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return v
}

func TestRESPPingEcho(t *testing.T) {
	addr, _ := startTCP(t)
	c := dialRESP(t, addr)
	if v := c.cmd(t, "PING"); v.Kind != resp.KindSimpleString || string(v.Str) != "PONG" {
		t.Fatalf("PING => %+v", v)
	}
	if v := c.cmd(t, "ECHO", "hello"); v.Kind != resp.KindBulkString || string(v.Str) != "hello" {
		t.Fatalf("ECHO => %+v", v)
	}
	// Case-insensitive commands.
	if v := c.cmd(t, "ping"); string(v.Str) != "PONG" {
		t.Fatalf("ping => %+v", v)
	}
}

func TestRESPSubscribePublishFlow(t *testing.T) {
	addr, _ := startTCP(t)
	sub := dialRESP(t, addr)
	pub := dialRESP(t, addr)

	ack := sub.cmd(t, "SUBSCRIBE", "news")
	if ack.Kind != resp.KindArray || len(ack.Array) != 3 ||
		string(ack.Array[0].Str) != "subscribe" ||
		string(ack.Array[1].Str) != "news" ||
		ack.Array[2].Int != 1 {
		t.Fatalf("subscribe ack %+v", ack)
	}

	if v := pub.cmd(t, "PUBLISH", "news", "breaking"); v.Kind != resp.KindInteger || v.Int != 1 {
		t.Fatalf("PUBLISH => %+v", v)
	}

	msg := sub.read(t)
	if msg.Kind != resp.KindArray || len(msg.Array) != 3 ||
		string(msg.Array[0].Str) != "message" ||
		string(msg.Array[1].Str) != "news" ||
		string(msg.Array[2].Str) != "breaking" {
		t.Fatalf("message frame %+v", msg)
	}

	// Unsubscribe and verify no further delivery.
	unack := sub.cmd(t, "UNSUBSCRIBE", "news")
	if string(unack.Array[0].Str) != "unsubscribe" || unack.Array[2].Int != 0 {
		t.Fatalf("unsubscribe ack %+v", unack)
	}
	if v := pub.cmd(t, "PUBLISH", "news", "later"); v.Int != 0 {
		t.Fatalf("PUBLISH after unsubscribe reached %d", v.Int)
	}
}

func TestRESPMultiChannelSubscribe(t *testing.T) {
	addr, _ := startTCP(t)
	sub := dialRESP(t, addr)
	bs := [][]byte{[]byte("SUBSCRIBE"), []byte("a"), []byte("b"), []byte("c")}
	if err := sub.w.WriteCommand(bs...); err != nil {
		t.Fatal(err)
	}
	if err := sub.w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		ack := sub.read(t)
		if ack.Array[2].Int != int64(i) {
			t.Fatalf("ack %d count=%d", i, ack.Array[2].Int)
		}
	}
}

func TestRESPErrors(t *testing.T) {
	addr, _ := startTCP(t)
	c := dialRESP(t, addr)
	if v := c.cmd(t, "NOPE"); v.Kind != resp.KindError || !strings.Contains(string(v.Str), "unknown command") {
		t.Fatalf("unknown command => %+v", v)
	}
	if v := c.cmd(t, "PUBLISH", "onlychannel"); v.Kind != resp.KindError {
		t.Fatalf("bad publish => %+v", v)
	}
	if v := c.cmd(t, "SUBSCRIBE"); v.Kind != resp.KindError {
		t.Fatalf("bare subscribe => %+v", v)
	}
	if v := c.cmd(t, "ECHO"); v.Kind != resp.KindError {
		t.Fatalf("bare echo => %+v", v)
	}
	// Connection still usable after errors.
	if v := c.cmd(t, "PING"); string(v.Str) != "PONG" {
		t.Fatalf("PING after errors => %+v", v)
	}
}

func TestRESPInfoAndQuit(t *testing.T) {
	addr, _ := startTCP(t)
	c := dialRESP(t, addr)
	v := c.cmd(t, "INFO")
	if v.Kind != resp.KindBulkString || !strings.Contains(string(v.Str), "name:tcp-test") {
		t.Fatalf("INFO => %+v", v)
	}
	if v := c.cmd(t, "QUIT"); string(v.Str) != "OK" {
		t.Fatalf("QUIT => %+v", v)
	}
	// Server closes the connection after QUIT.
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := c.r.ReadValue(); err == nil {
		t.Fatal("connection alive after QUIT")
	}
}

func TestRESPDisconnectCleansSubscriptions(t *testing.T) {
	addr, b := startTCP(t)
	sub := dialRESP(t, addr)
	sub.cmd(t, "SUBSCRIBE", "temp")
	if got := b.Subscribers("temp"); got != 1 {
		t.Fatalf("Subscribers=%d", got)
	}
	sub.conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for b.Subscribers("temp") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription not cleaned after disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRESPBinaryPayload(t *testing.T) {
	addr, _ := startTCP(t)
	sub := dialRESP(t, addr)
	pub := dialRESP(t, addr)
	sub.cmd(t, "SUBSCRIBE", "bin")
	payload := string([]byte{0, 1, 2, 255, '\r', '\n', 0})
	pub.cmd(t, "PUBLISH", "bin", payload)
	msg := sub.read(t)
	if string(msg.Array[2].Str) != payload {
		t.Fatalf("binary payload mangled: %q", msg.Array[2].Str)
	}
}
