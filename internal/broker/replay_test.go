package broker

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/hotstate"
	"github.com/dynamoth/dynamoth/internal/message"
)

// sameShardChannels returns n channel names that land in base's shard of the
// replay store's bounding cache — eviction pressure is per shard, so only
// same-shard channels contend for ring slots.
func sameShardChannels(base string, n int) []string {
	const mask = hotstate.DefaultShards - 1 // DefaultShards is a power of two
	want := hotstate.StringHash(base) & mask
	var out []string
	for i := 0; len(out) < n; i++ {
		name := fmt.Sprintf("evict%d", i)
		if hotstate.StringHash(name)&mask == want {
			out = append(out, name)
		}
	}
	return out
}

// dataFrame builds a marshaled TypeData envelope ready for Publish. Each call
// allocates a fresh buffer: Publish stamps in place and assumes ownership.
func dataFrame(channel, payload string, stamp int64) []byte {
	e := &message.Envelope{Type: message.TypeData, Channel: channel, Payload: []byte(payload), Stamp: stamp}
	return e.Marshal()
}

// deliveredSeq extracts the broker-stamped (epoch, seq) from a delivery
// captured by chanSink.
func deliveredSeq(t *testing.T, m [2]string) (epoch, seq uint64) {
	t.Helper()
	epoch, seq, ok := message.PeekChannelSeq([]byte(m[1]))
	if !ok {
		t.Fatalf("delivery on %q is not a stamped data frame", m[0])
	}
	return epoch, seq
}

// A cursor below the ring tail gets the retained window replayed in order and
// the overwritten prefix reported as a definite gap.
func TestReplayCursorBelowTail(t *testing.T) {
	b := New(Options{ReplayDepth: 4})
	for i := 1; i <= 10; i++ {
		b.Publish("ch", dataFrame("ch", fmt.Sprintf("m%d", i), int64(i)))
	}
	epoch, head, ok := b.ReplayHead("ch")
	if !ok || head != 10 {
		t.Fatalf("ReplayHead = %d, %d, %v", epoch, head, ok)
	}

	sink := newChanSink(16)
	s, err := b.Connect("c1", sink)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SubscribeFrom("ch", message.Cursor{Seen: []message.EpochSeq{{Epoch: epoch, Seq: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	// Depth 4, head 10: the ring holds (6, 10]. The cursor wants (2, 10], so
	// 3..6 are gone (4 missed) and 7..10 replay.
	if res.Replayed != 4 || res.Missed != 4 || res.Epoch != epoch {
		t.Fatalf("ReplayResult = %+v, want 4 replayed, 4 missed, epoch %d", res, epoch)
	}
	for want := uint64(7); want <= 10; want++ {
		gotEpoch, gotSeq := deliveredSeq(t, sink.next(t))
		if gotEpoch != epoch || gotSeq != want {
			t.Fatalf("replayed (%d, %d), want (%d, %d)", gotEpoch, gotSeq, epoch, want)
		}
	}
	sink.expectNone(t, 50*time.Millisecond)

	st := b.Stats()
	if st.ReplayRequests != 1 || st.ReplayedFrames != 4 || st.ReplayMissed != 4 {
		t.Fatalf("stats = %d requests, %d replayed, %d missed", st.ReplayRequests, st.ReplayedFrames, st.ReplayMissed)
	}
}

// A current cursor and a cursor claiming the future are both owed nothing —
// neither is a gap.
func TestReplayCursorCurrentAndFuture(t *testing.T) {
	b := New(Options{ReplayDepth: 8})
	for i := 1; i <= 3; i++ {
		b.Publish("ch", dataFrame("ch", "m", int64(i)))
	}
	epoch, _, _ := b.ReplayHead("ch")

	for _, seq := range []uint64{3, 99} {
		sink := newChanSink(4)
		s, err := b.Connect(fmt.Sprintf("c%d", seq), sink)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.SubscribeFrom("ch", message.Cursor{Seen: []message.EpochSeq{{Epoch: epoch, Seq: seq}}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Replayed != 0 || res.Missed != 0 {
			t.Fatalf("cursor at seq %d: %+v, want nothing owed", seq, res)
		}
		sink.expectNone(t, 50*time.Millisecond)
		s.Close()
	}
}

// A cursor from another epoch (another broker, or this broker's ring before
// an eviction) falls back to stamp-based replay: frames stamped at or after
// SinceStamp replay, nothing is counted missed, and SinceStamp == 0 means a
// fresh baseline with no replay at all.
func TestReplayEpochMissStampFallback(t *testing.T) {
	b := New(Options{ReplayDepth: 8})
	for i := 1; i <= 3; i++ {
		b.Publish("ch", dataFrame("ch", "m", int64(i*10)))
	}
	epoch, _, _ := b.ReplayHead("ch")
	foreign := epoch + 1 // never matches

	sink := newChanSink(8)
	s, err := b.Connect("c1", sink)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SubscribeFrom("ch", message.Cursor{
		SinceStamp: 20,
		Seen:       []message.EpochSeq{{Epoch: foreign, Seq: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed != 2 || res.Missed != 0 || res.Epoch != epoch {
		t.Fatalf("stamp fallback: %+v, want 2 replayed (stamps 20, 30), 0 missed", res)
	}
	if _, seq := deliveredSeq(t, sink.next(t)); seq != 2 {
		t.Fatalf("first fallback frame seq %d, want 2", seq)
	}

	sink2 := newChanSink(8)
	s2, err := b.Connect("c2", sink2)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s2.SubscribeFrom("ch", message.Cursor{Seen: []message.EpochSeq{{Epoch: foreign, Seq: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed != 0 || res.Missed != 0 {
		t.Fatalf("zero-stamp epoch miss: %+v, want fresh baseline with no replay", res)
	}
	sink2.expectNone(t, 50*time.Millisecond)
}

// An evicted ring recreated on the next publish restarts at seq 1 under a new
// epoch, so a stale cursor can never mistake the restarted sequence for a
// continuation of the old one.
func TestReplayEvictedRingGetsNewEpoch(t *testing.T) {
	b := New(Options{ReplayDepth: 4, ReplayChannels: 1})
	b.Publish("a", dataFrame("a", "m1", 10))
	b.Publish("a", dataFrame("a", "m2", 20))
	epoch1, head1, ok := b.ReplayHead("a")
	if !ok || head1 != 2 {
		t.Fatalf("ReplayHead(a) = %d, %d, %v", epoch1, head1, ok)
	}

	// Capacity 1: a ring on another channel in a's shard evicts a's.
	other := sameShardChannels("a", 1)[0]
	b.Publish(other, dataFrame(other, "m", 30))
	if _, _, ok := b.ReplayHead("a"); ok {
		t.Fatal("a's ring survived eviction at capacity 1")
	}

	b.Publish("a", dataFrame("a", "m3", 40))
	epoch2, head2, ok := b.ReplayHead("a")
	if !ok {
		t.Fatal("a's ring not recreated")
	}
	if epoch2 == epoch1 {
		t.Fatal("recreated ring reused the evicted epoch")
	}
	if head2 != 1 {
		t.Fatalf("recreated ring head = %d, want a restart at 1", head2)
	}

	// A cursor from the dead epoch resumes via its stamp baseline.
	sink := newChanSink(4)
	s, err := b.Connect("c1", sink)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SubscribeFrom("a", message.Cursor{
		SinceStamp: 20,
		Seen:       []message.EpochSeq{{Epoch: epoch1, Seq: head1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed != 1 || res.Missed != 0 || res.Epoch != epoch2 {
		t.Fatalf("cross-epoch resume: %+v, want 1 replayed under epoch %d", res, epoch2)
	}
}

// A subscribed channel's ring is pinned: eviction pressure from other
// channels must not reset its epoch or sequence.
func TestReplayPinnedRingSurvivesEviction(t *testing.T) {
	b := New(Options{ReplayDepth: 4, ReplayChannels: 1, OutputBuffer: 64})
	sink := newChanSink(64)
	s, err := b.Connect("c1", sink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe("a"); err != nil {
		t.Fatal(err)
	}
	b.Publish("a", dataFrame("a", "m1", 10))
	epoch1, _, ok := b.ReplayHead("a")
	if !ok {
		t.Fatal("no ring for subscribed channel")
	}

	for _, ch := range sameShardChannels("a", 8) {
		b.Publish(ch, dataFrame(ch, "m", 10))
	}
	b.Publish("a", dataFrame("a", "m2", 20))

	epoch2, head, ok := b.ReplayHead("a")
	if !ok || epoch2 != epoch1 || head != 2 {
		t.Fatalf("pinned ring after pressure: epoch %d->%d, head %d, ok %v; want same epoch, head 2",
			epoch1, epoch2, head, ok)
	}
}

// The happens-before contract: SubscribeFrom registers the subscription
// before snapshotting the ring, and Publish retains before fan-out — so a
// publication concurrent with a cursor subscribe lands in the replay, the
// live flow, or both, never neither. With a ring deep enough to hold
// everything, the union of delivered sequences has no holes.
func TestReplayConcurrentPublishNeverLost(t *testing.T) {
	const (
		preloaded = 50
		total     = 100
		cursorAt  = 20
	)
	b := New(Options{ReplayDepth: 128, OutputBuffer: 1024})
	for i := 1; i <= preloaded; i++ {
		b.Publish("ch", dataFrame("ch", "m", int64(i)))
	}
	epoch, _, _ := b.ReplayHead("ch")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := preloaded + 1; i <= total; i++ {
			b.Publish("ch", dataFrame("ch", "m", int64(i)))
		}
	}()

	sink := newChanSink(1024)
	s, err := b.Connect("c1", sink)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SubscribeFrom("ch", message.Cursor{Seen: []message.EpochSeq{{Epoch: epoch, Seq: cursorAt}}})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if res.Missed != 0 {
		t.Fatalf("ring deep enough for everything, yet %d missed", res.Missed)
	}

	// Duplicates are allowed (the replay/live overlap is the client's to
	// dedup); holes are not.
	seen := make(map[uint64]bool)
	deadline := time.After(2 * time.Second)
	for len(seen) < total-cursorAt {
		select {
		case m := <-sink.msgs:
			_, seq := deliveredSeq(t, m)
			if seq <= cursorAt {
				t.Fatalf("replayed seq %d at or below the cursor", seq)
			}
			seen[seq] = true
		case <-deadline:
			var missing []uint64
			for q := uint64(cursorAt + 1); q <= total; q++ {
				if !seen[q] {
					missing = append(missing, q)
				}
			}
			t.Fatalf("lost sequences %v (got %d of %d)", missing, len(seen), total-cursorAt)
		}
	}
}

// Cursor subscribes racing ring eviction/recreation churn must stay safe:
// sequences restart only under fresh epochs and nothing panics. Run under
// -race this doubles as a locking test for the store's Get/Upsert/Pin paths.
func TestReplayEvictionChurnRace(t *testing.T) {
	b := New(Options{ReplayDepth: 4, ReplayChannels: 2, OutputBuffer: 4096})
	channels := sameShardChannels("a", 5) // same shard, so rings actually churn

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			ch := channels[i%len(channels)]
			b.Publish(ch, dataFrame(ch, "m", int64(i+1)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			sink := newChanSink(256)
			s, err := b.Connect(fmt.Sprintf("churn%d", i), sink)
			if err != nil {
				t.Error(err)
				return
			}
			ch := channels[i%len(channels)]
			cur := message.Cursor{SinceStamp: 1, Seen: []message.EpochSeq{{Epoch: uint64(i + 1), Seq: uint64(i)}}}
			if _, err := s.SubscribeFrom(ch, cur); err != nil {
				t.Error(err)
				return
			}
			s.Close()
		}
	}()
	wg.Wait()
}
