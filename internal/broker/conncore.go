package broker

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
)

// ConnCore selects the broker's connection-serving implementation.
//
// The goroutine core is the portable baseline: one reader goroutine plus one
// session-writer goroutine and a buffered output channel per connection. It
// is simple and fast at thousands of connections but its per-connection
// memory (two goroutine stacks, two 16 KiB bufio buffers, an output channel)
// tops out far below the subscriber populations a single Dynamoth broker is
// supposed to absorb before the LB rebalances.
//
// The reactor core (linux) replaces all of that with N event-loop shards:
// each shard owns an epoll instance, an fd-indexed session table, a shared
// read buffer feeding the incremental RESP parser, and a write-flush cycle
// that coalesces deliveries per shard pass — so memory and wakeups scale
// with *active* sockets, not total sockets.
type ConnCore uint8

const (
	// CoreAuto selects CoreReactor where available (linux) and falls back
	// to CoreGoroutine elsewhere.
	CoreAuto ConnCore = iota
	// CoreGoroutine is the portable goroutine-per-connection core — the
	// default on non-Linux builds.
	CoreGoroutine
	// CoreReactor is the sharded epoll event-loop core (Linux only).
	CoreReactor
)

// ErrReactorUnavailable is returned by Serve when CoreReactor is requested
// on a platform without epoll support.
var ErrReactorUnavailable = errors.New("broker: reactor core unavailable on this platform")

// String names the core ("auto", "goroutine", "reactor").
func (c ConnCore) String() string {
	switch c {
	case CoreGoroutine:
		return "goroutine"
	case CoreReactor:
		return "reactor"
	default:
		return "auto"
	}
}

// ParseConnCore resolves a core name as accepted by the -conn-core flag.
func ParseConnCore(s string) (ConnCore, error) {
	switch s {
	case "auto", "":
		return CoreAuto, nil
	case "goroutine":
		return CoreGoroutine, nil
	case "reactor":
		return CoreReactor, nil
	default:
		return CoreAuto, fmt.Errorf("broker: unknown connection core %q (want auto, goroutine, or reactor)", s)
	}
}

// ConnObserver sees connection-layer events. Callbacks run on hot paths
// (accept loop, publish fan-out) and must be cheap and non-blocking; the
// server layer uses one to emit flight-recorder events.
type ConnObserver interface {
	// OnAccept fires when a connection is accepted; addr is the remote.
	OnAccept(addr string)
	// OnConnClose fires when a connection is torn down. reason is nil for
	// an ordinary peer disconnect.
	OnConnClose(addr string, reason error)
	// OnBackpressure fires when a session is about to be disconnected
	// because its output buffer is over its limit; buffered is the pending
	// byte count (-1 when the core tracks messages, not bytes).
	OnBackpressure(addr string, buffered int)
}

// Serving defaults.
const (
	// DefaultReadBuffer is the per-shard read buffer: big enough to drain
	// a burst of pipelined commands in one syscall.
	DefaultReadBuffer = 64 << 10
	// DefaultWriteBufferLimit is the per-session pending-output cap in
	// bytes for the reactor core; a session exceeding it is disconnected
	// as a slow consumer (client-output-buffer-limit behavior).
	DefaultWriteBufferLimit = 1 << 20
	// wbufRetain is the largest write-buffer capacity a reactor session
	// keeps after a full flush; larger bursts release their memory so idle
	// connections return to a small footprint.
	wbufRetain = 64 << 10
)

// ServeOptions configures a ConnServer.
type ServeOptions struct {
	// Core selects the connection implementation (default CoreAuto).
	Core ConnCore
	// Shards is the reactor's event-loop count; non-positive selects
	// GOMAXPROCS.
	Shards int
	// ReadBuffer is the per-shard read buffer size in bytes; non-positive
	// selects DefaultReadBuffer.
	ReadBuffer int
	// WriteBufferLimit is the reactor's per-session pending-output cap in
	// bytes; non-positive selects DefaultWriteBufferLimit.
	WriteBufferLimit int
	// Observer receives connection lifecycle events (may be nil).
	Observer ConnObserver
}

// ConnStats is a snapshot of connection-layer counters.
type ConnStats struct {
	// Core is the resolved core name.
	Core string
	// Conns is the number of currently open connections.
	Conns int64
	// Accepts and Closes count connection lifecycle events.
	Accepts, Closes uint64
	// Backpressure counts sessions disconnected for output overflow.
	Backpressure uint64
	// BytesIn and BytesOut count wire bytes.
	BytesIn, BytesOut uint64
	// EpollWakeups counts epoll_wait returns across shards (reactor only).
	EpollWakeups uint64
	// EpollEvents counts epoll events dispatched (reactor only).
	EpollEvents uint64
	// EpollWrites counts flush write syscalls (reactor only); deliveries
	// divided by this is the write-coalescing factor.
	EpollWrites uint64
}

// ConnServer serves a broker's RESP protocol over TCP with a selectable
// connection core. One ConnServer serves one listener; Stats exposes the
// counters the node exports as dynamoth_broker_conn_*/epoll_* metrics.
type ConnServer struct {
	b    *Broker
	opts ServeOptions
	core ConnCore // resolved: CoreGoroutine or CoreReactor

	conns        atomic.Int64
	accepts      atomic.Uint64
	closes       atomic.Uint64
	backpressure atomic.Uint64
	bytesIn      atomic.Uint64
	bytesOut     atomic.Uint64
	epollWakeups atomic.Uint64
	epollEvents  atomic.Uint64
	epollWrites  atomic.Uint64
}

// NewConnServer builds a connection server for b. CoreAuto resolves to the
// reactor where available.
func NewConnServer(b *Broker, opts ServeOptions) *ConnServer {
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.ReadBuffer <= 0 {
		opts.ReadBuffer = DefaultReadBuffer
	}
	if opts.WriteBufferLimit <= 0 {
		opts.WriteBufferLimit = DefaultWriteBufferLimit
	}
	core := opts.Core
	if core == CoreAuto {
		if ReactorAvailable() {
			core = CoreReactor
		} else {
			core = CoreGoroutine
		}
	}
	return &ConnServer{b: b, opts: opts, core: core}
}

// Core returns the resolved connection core.
func (cs *ConnServer) Core() ConnCore { return cs.core }

// Stats snapshots the connection counters.
func (cs *ConnServer) Stats() ConnStats {
	return ConnStats{
		Core:         cs.core.String(),
		Conns:        cs.conns.Load(),
		Accepts:      cs.accepts.Load(),
		Closes:       cs.closes.Load(),
		Backpressure: cs.backpressure.Load(),
		BytesIn:      cs.bytesIn.Load(),
		BytesOut:     cs.bytesOut.Load(),
		EpollWakeups: cs.epollWakeups.Load(),
		EpollEvents:  cs.epollEvents.Load(),
		EpollWrites:  cs.epollWrites.Load(),
	}
}

// Serve accepts and serves connections on ln until the listener is closed.
// It returns the accept error (wrapping net.ErrClosed on clean shutdown).
// With the reactor core, any connections still open when the listener closes
// are torn down before Serve returns; the goroutine core, like the previous
// per-connection implementation, leaves them to the broker's Close.
func (cs *ConnServer) Serve(ln net.Listener) error {
	if cs.core == CoreReactor {
		return cs.serveReactor(ln)
	}
	return cs.serveGoroutine(ln)
}

// serveGoroutine is the portable goroutine-per-connection core.
func (cs *ConnServer) serveGoroutine(ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("broker: accept: %w", err)
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			// Explicit, even though Go defaults to it: delivery latency
			// must never ride on Nagle coalescing (the broker already
			// batches writes itself).
			tc.SetNoDelay(true) //nolint:errcheck // best-effort
		}
		addr := conn.RemoteAddr().String()
		cs.accepts.Add(1)
		cs.conns.Add(1)
		if cs.opts.Observer != nil {
			cs.opts.Observer.OnAccept(addr)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			reason := serveConn(&countingConn{Conn: conn, in: &cs.bytesIn, out: &cs.bytesOut}, cs.b)
			cs.conns.Add(-1)
			cs.closes.Add(1)
			if errors.Is(reason, ErrSlowConsumer) {
				cs.backpressure.Add(1)
				if cs.opts.Observer != nil {
					cs.opts.Observer.OnBackpressure(addr, -1)
				}
			}
			if cs.opts.Observer != nil {
				cs.opts.Observer.OnConnClose(addr, reason)
			}
		}()
	}
}

// countingConn counts wire bytes around a net.Conn.
type countingConn struct {
	net.Conn
	in, out *atomic.Uint64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

// Serve accepts connections on ln and serves the Redis pub/sub protocol
// against b until the listener is closed or the broker shuts down, using the
// portable goroutine-per-connection core. It returns the listener's accept
// error (net.ErrClosed on clean shutdown). Use NewConnServer to select the
// event-loop reactor core instead.
//
// Supported commands: SUBSCRIBE, UNSUBSCRIBE, PSUBSCRIBE, PUNSUBSCRIBE,
// PUBLISH, PING, ECHO, INFO, QUIT. Push messages use the standard
// ["message", channel, payload] and ["pmessage", pattern, channel, payload]
// frames, subscription confirmations ["subscribe"/"unsubscribe"/
// "psubscribe"/"punsubscribe", name, count].
func Serve(ln net.Listener, b *Broker) error {
	return NewConnServer(b, ServeOptions{Core: CoreGoroutine}).Serve(ln)
}
