package broker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// swallowingSink accepts every delivery (message or pmessage) and counts it.
type swallowingSink struct{ n atomic.Int64 }

func (s *swallowingSink) Deliver(string, []byte)                { s.n.Add(1) }
func (s *swallowingSink) DeliverPattern(string, string, []byte) { s.n.Add(1) }
func (s *swallowingSink) Closed(error)                          {}

// TestConcurrentStress exercises the sharded registry and the coalescing
// writer under everything at once: parallel publishers across the channel
// space, session churn (connect/subscribe/close loops), and pattern
// (un)subscribe churn. It runs in the short suite so `make race` covers it;
// the assertions are on invariants (counter consistency, no deadlock, no
// leaked registry state), the real check is the race detector.
func TestConcurrentStress(t *testing.T) {
	b := New(Options{OutputBuffer: 1 << 14, WriteBatch: 8})
	defer b.Close()

	const (
		channels    = 32
		publishers  = 4
		pubsEach    = 2000
		churners    = 4
		churnsEach  = 100
		patternGoes = 2
		patternEach = 200
	)
	names := make([]string, channels)
	for i := range names {
		names[i] = fmt.Sprintf("ch-%d", i)
	}

	// A stable subscriber on every channel so publishes always fan out.
	stable := &swallowingSink{}
	ss, err := b.Connect("stable", stable)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Subscribe(names...); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	payload := []byte("stress-payload")

	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < pubsEach; i++ {
				b.Publish(names[(p*7+i)%channels], payload)
			}
		}(p)
	}

	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < churnsEach; i++ {
				sink := &swallowingSink{}
				s, err := b.Connect(fmt.Sprintf("churn-%d-%d", c, i), sink)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Subscribe(names[(c+i)%channels], names[(c+2*i)%channels]); err != nil {
					s.Close()
					continue
				}
				if i%3 == 0 {
					s.Unsubscribe(names[(c+i)%channels]) //nolint:errcheck // may race with close
				}
				s.Close()
			}
		}(c)
	}

	for g := 0; g < patternGoes; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sink := &swallowingSink{}
			s, err := b.Connect(fmt.Sprintf("pat-%d", g), sink)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for i := 0; i < patternEach; i++ {
				if _, err := s.PSubscribe("ch-1*", "ch-2?"); err != nil {
					return
				}
				if _, err := s.PUnsubscribe(); err != nil {
					return
				}
			}
		}(g)
	}

	wg.Wait()

	st := b.Stats()
	if want := uint64(publishers * pubsEach); st.Published < want {
		t.Fatalf("Published=%d, want >= %d", st.Published, want)
	}
	// The stable subscriber's deliveries are queued, not necessarily
	// drained yet; but none may have been dropped for it unless it truly
	// overflowed (OutputBuffer is sized so it should not).
	if st.Dropped > 0 && stable.n.Load() == 0 {
		t.Fatalf("stable subscriber starved: stats=%+v", st)
	}

	// All churn sessions closed: their registry entries must be gone.
	for i, ch := range names {
		if got := b.Subscribers(ch); got != 1 {
			t.Fatalf("channel %d has %d subscribers after churn, want 1 (the stable one)", i, got)
		}
	}
	// All pattern subscriptions were unsubscribed or died with their
	// session: the fast-path counter must be back to zero, or Publish
	// would pay the glob scan forever.
	if got := b.patternSubs.Load(); got != 0 {
		t.Fatalf("patternSubs=%d after churn, want 0", got)
	}
	if got := len(b.patterns); got != 0 {
		t.Fatalf("%d stale pattern sets after churn", got)
	}
}
