// Package broker implements the standard channel-based pub/sub server that
// Dynamoth deploys on every node — the role Redis played in the paper
// (§II-A). It is deliberately "dumb": brokers are independent, never talk to
// each other, and know nothing about plans, replication, or rebalancing.
// All Dynamoth intelligence lives in the layers above (client library,
// dispatcher, LLA, load balancer), exactly as the paper requires so that any
// broker with the standard pub/sub interface could be substituted.
//
// Semantics mirror Redis pub/sub:
//
//   - PUBLISH is fire-and-forget fan-out to current subscribers; no
//     persistence, no acknowledgement beyond the receiver count.
//   - Each session has a bounded output buffer; a subscriber that cannot
//     keep up is disconnected (client-output-buffer-limit behavior), which
//     is the failure mode behind the paper's Fig. 4b.
//   - An observer hook sees every publication and (un)subscription — the
//     mechanism the LLA uses to gather per-channel metrics without
//     modifying the broker (§III-A).
//
// The delivery pipeline is engineered to be allocation- and contention-free
// in steady state (see DESIGN.md "Hot path"): the subscription registry is
// lock-striped across shards so publishes to different channels never
// contend, the per-publish scratch is pooled, and the per-session writer
// coalesces bursts of deliveries into one sink flush.
package broker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/hotstate"
	"github.com/dynamoth/dynamoth/internal/message"
)

// Sink receives deliveries for one session. Implementations must be fast;
// Deliver is called from the session's dedicated writer goroutine.
type Sink interface {
	// Deliver hands the session one publication.
	Deliver(channel string, payload []byte)
	// Closed tells the sink its session is gone (overflow, Close, or
	// broker shutdown); no more Deliver calls will follow.
	Closed(reason error)
}

// PatternSink is optionally implemented by sinks that want pattern
// subscription deliveries attributed to the matching pattern (the Redis
// "pmessage" frame). Sinks without it receive pattern matches through
// Deliver like ordinary messages.
type PatternSink interface {
	// DeliverPattern hands the session a publication that matched one of
	// its pattern subscriptions.
	DeliverPattern(pattern, channel string, payload []byte)
}

// BatchSink is optionally implemented by sinks that buffer Deliver calls.
// The session writer drains up to Options.WriteBatch queued deliveries in
// one burst and then calls FlushDeliveries once, letting the sink coalesce
// the batch into a single downstream write (one TCP syscall instead of one
// per message — Redis-style write coalescing).
type BatchSink interface {
	// FlushDeliveries pushes buffered deliveries to the client.
	FlushDeliveries()
}

// EnqueueSink is implemented by sinks that do their own output queueing and
// flushing — the event-loop connection core's sessions, whose pending bytes
// live in a per-connection write buffer flushed by a shard goroutine.
// Sessions whose sink implements EnqueueSink get NO writer goroutine: Publish
// enqueues straight into the sink, so per-session cost is one buffer, not a
// parked goroutine plus a channel. Enqueue must not block; returning false
// signals the session's buffer is full (slow consumer) and the broker
// disconnects it, exactly like an output-channel overflow.
type EnqueueSink interface {
	Sink
	// Enqueue queues one delivery without blocking. pattern is non-empty
	// for pattern-subscription matches. It reports false when the session's
	// output buffer is over its limit.
	Enqueue(channel, pattern string, payload []byte) bool
}

// Observer sees broker events. Used by the local load analyzer. Callbacks
// run synchronously on the publishing/subscribing goroutine and must be
// cheap and non-blocking.
type Observer interface {
	// OnPublish fires for every publication with its receiver count and
	// payload size in bytes.
	OnPublish(channel string, payload []byte, receivers int)
	// OnSubscribe fires when a session subscribes to a channel;
	// subscribers is the channel's subscriber count afterwards.
	OnSubscribe(channel, session string, subscribers int)
	// OnUnsubscribe fires when a session leaves a channel (including on
	// disconnect).
	OnUnsubscribe(channel, session string, subscribers int)
}

// FlushObserver is optionally implemented by Observers that also want the
// writer-flush stage of the latency waterfall: OnFlush fires once per
// delivery as the frame leaves the broker's output queue into the
// connection's write buffer (the last broker-side instant before the
// socket). It runs on writer/shard goroutines concurrently with publishes,
// so implementations must be cheap and typically sample.
type FlushObserver interface {
	OnFlush(payload []byte)
}

// RegionLatencyObserver is optionally implemented by Observers that want
// per-subscriber-region delivery attribution: ObserveRegionDelivery fires
// once per enqueued delivery to a region-tagged session, with the frame's
// age since its publisher stamp at fanout-enqueue time. It only fires when
// the broker has stage stamping enabled (Options.NowNanos) and at least one
// session declared a region, so untagged deployments pay nothing.
type RegionLatencyObserver interface {
	ObserveRegionDelivery(region string, age time.Duration)
}

// Session close reasons.
var (
	ErrSlowConsumer  = errors.New("broker: output buffer overflow")
	ErrBrokerClosed  = errors.New("broker: broker shut down")
	ErrSessionClosed = errors.New("broker: session closed")
)

// DefaultOutputBuffer is the per-session output queue limit (messages),
// calibrated per DESIGN.md §4 so one connection saturates where the paper's
// Redis did.
const DefaultOutputBuffer = 2000

// DefaultWriteBatch is the per-session writer coalescing window: how many
// queued deliveries the writer drains before flushing the sink once.
const DefaultWriteBatch = 64

// numShards is the lock-striping factor of the subscription registry. Must
// be a power of two. 32 shards keep the probability of two concurrent
// publishes hashing to the same stripe low at any realistic core count.
const numShards = 32

// Options configures a Broker.
type Options struct {
	// Name identifies the broker in logs and stats (e.g. "pub1").
	Name string
	// OutputBuffer is the per-session outbound queue limit in messages;
	// non-positive selects DefaultOutputBuffer.
	OutputBuffer int
	// WriteBatch is how many queued deliveries a session writer coalesces
	// into one sink flush; non-positive selects DefaultWriteBatch.
	WriteBatch int
	// ReplayDepth, when positive, keeps the last ReplayDepth data frames of
	// each channel in a replay ring and serves cursor-based resubscribes
	// (Session.SubscribeFrom / the CSUBSCRIBE command). 0 disables replay.
	ReplayDepth int
	// ReplayChannels bounds how many channels may hold a replay ring
	// (0 = DefaultReplayChannels, negative = unbounded). Rings of currently
	// subscribed channels are pinned against eviction.
	ReplayChannels int
	// NowNanos, when set, enables stage stamping: Publish writes the
	// broker-ingress and fanout-enqueue marks of the latency waterfall into
	// every stamped data envelope in place (message.StampStages) while it
	// still exclusively owns the frame. nil disables stamping (frames pass
	// through with zero stage offsets).
	NowNanos func() int64
}

// shard is one stripe of the channel→subscribers registry. Padded so two
// shards never share a cache line under concurrent publishes.
type shard struct {
	mu       sync.RWMutex
	channels map[string]map[*Session]struct{}
	_        [32]byte // pad to 64 bytes
}

// shardIndex hashes a channel name with FNV-1a onto a stripe.
func shardIndex(channel string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(channel); i++ {
		h ^= uint32(channel[i])
		h *= 16777619
	}
	return h & (numShards - 1)
}

// Broker is a single independent pub/sub server.
type Broker struct {
	name       string
	outBuffer  int
	writeBatch int

	shards [numShards]shard

	// mu guards patterns, sessions, observer registration, and the closed
	// transition. It is off the publish hot path unless pattern
	// subscriptions exist.
	mu       sync.RWMutex
	patterns map[string]map[*Session]struct{}
	sessions map[*Session]struct{}

	// observers is copy-on-write: registration is rare, reads happen on
	// every publish. flushObs and regionObs hold the observers that
	// additionally implement the optional waterfall interfaces, extracted at
	// registration so the hot paths pay one pointer load, not a type switch.
	observers atomic.Pointer[[]Observer]
	flushObs  atomic.Pointer[[]FlushObserver]
	regionObs atomic.Pointer[[]RegionLatencyObserver]

	// nowNanos enables in-place stage stamping on Publish (nil = disabled).
	nowNanos func() int64

	// regionSessions counts sessions that declared a region, so the fan-out
	// loop skips region attribution entirely in untagged deployments.
	regionSessions atomic.Int64

	// patternSubs counts live (pattern, session) entries so Publish can
	// skip the glob scan entirely when no patterns exist (the common case).
	patternSubs atomic.Int64

	closed atomic.Bool

	// replay holds the per-channel sequenced frame rings (nil when replay
	// is disabled).
	replay *replayStore

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

// New creates a broker.
func New(opts Options) *Broker {
	if opts.OutputBuffer <= 0 {
		opts.OutputBuffer = DefaultOutputBuffer
	}
	if opts.WriteBatch <= 0 {
		opts.WriteBatch = DefaultWriteBatch
	}
	if opts.Name == "" {
		opts.Name = "broker"
	}
	b := &Broker{
		name:       opts.Name,
		outBuffer:  opts.OutputBuffer,
		writeBatch: opts.WriteBatch,
		nowNanos:   opts.NowNanos,
		patterns:   make(map[string]map[*Session]struct{}),
		sessions:   make(map[*Session]struct{}),
	}
	for i := range b.shards {
		b.shards[i].channels = make(map[string]map[*Session]struct{})
	}
	if opts.ReplayDepth > 0 {
		b.replay = newReplayStore(opts.ReplayDepth, opts.ReplayChannels)
	}
	return b
}

// Name returns the broker's name.
func (b *Broker) Name() string { return b.name }

// AddObserver registers an observer (the LLA and the dispatcher each use
// one). Observers cannot be removed; they live as long as the broker.
func (b *Broker) AddObserver(o Observer) {
	if o == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var obs []Observer
	if cur := b.observers.Load(); cur != nil {
		obs = append(obs, *cur...)
	}
	obs = append(obs, o)
	b.observers.Store(&obs)
	if fo, ok := o.(FlushObserver); ok {
		var fos []FlushObserver
		if cur := b.flushObs.Load(); cur != nil {
			fos = append(fos, *cur...)
		}
		fos = append(fos, fo)
		b.flushObs.Store(&fos)
	}
	if ro, ok := o.(RegionLatencyObserver); ok {
		var ros []RegionLatencyObserver
		if cur := b.regionObs.Load(); cur != nil {
			ros = append(ros, *cur...)
		}
		ros = append(ros, ro)
		b.regionObs.Store(&ros)
	}
}

// observeFlush hands a delivery frame to the flush observers as it leaves
// the broker's output queue. Called per delivery from writer and shard
// goroutines; one atomic load when no observer wants flushes.
func (b *Broker) observeFlush(payload []byte) {
	if obs := b.flushObs.Load(); obs != nil {
		for _, o := range *obs {
			o.OnFlush(payload)
		}
	}
}

func (b *Broker) notifyPublish(channel string, payload []byte, receivers int) {
	if obs := b.observers.Load(); obs != nil {
		for _, o := range *obs {
			o.OnPublish(channel, payload, receivers)
		}
	}
}

func (b *Broker) notifySubscribe(channel, session string, n int) {
	if obs := b.observers.Load(); obs != nil {
		for _, o := range *obs {
			o.OnSubscribe(channel, session, n)
		}
	}
}

func (b *Broker) notifyUnsubscribe(channel, session string, n int) {
	if obs := b.observers.Load(); obs != nil {
		for _, o := range *obs {
			o.OnUnsubscribe(channel, session, n)
		}
	}
}

// Connect opens an in-process session delivering into sink. name labels the
// session for the observer.
func (b *Broker) Connect(name string, sink Sink) (*Session, error) {
	if sink == nil {
		return nil, errors.New("broker: nil sink")
	}
	s := &Session{
		broker: b,
		name:   name,
		sink:   sink,
		batch:  b.writeBatch,
		done:   make(chan struct{}),
		subs:   make(map[string]struct{}),
		psubs:  make(map[string]struct{}),
	}
	if es, ok := sink.(EnqueueSink); ok {
		// Event-loop session: the sink buffers and a shard flushes; no
		// output channel, no writer goroutine.
		s.enq = es
	} else {
		s.out = make(chan delivery, b.outBuffer)
	}
	b.mu.Lock()
	if b.closed.Load() {
		b.mu.Unlock()
		return nil, ErrBrokerClosed
	}
	b.sessions[s] = struct{}{}
	b.mu.Unlock()
	if s.enq == nil {
		go s.writer()
	}
	return s, nil
}

// target pairs a destination session with the pattern that matched it
// (empty for direct channel subscriptions). One slice of pairs replaces the
// parallel receivers/targets slices the fan-out used to build, so the two
// can never drift apart.
type target struct {
	s       *Session
	pattern string
}

// targetPool recycles the per-publish fan-out scratch so steady-state
// Publish performs zero allocations.
var targetPool = sync.Pool{New: func() any { return new([]target) }}

// Publish fans payload out to every subscriber of channel and returns the
// number of sessions it was queued for (the Redis PUBLISH reply). Sessions
// whose output buffer is full are disconnected, not blocked on.
//
// On a replay-enabled broker, a data-envelope payload is stamped in place
// with its (epoch, channelSeq) replay coordinates before fan-out; with
// stage stamping enabled (Options.NowNanos) the broker-ingress and
// fanout-enqueue waterfall marks are written the same way. Either way the
// caller must exclusively own payload until Publish returns.
func (b *Broker) Publish(channel string, payload []byte) int {
	if b.closed.Load() {
		return 0
	}
	var ingressNs int64 // broker-ingress instant (0 = stamping disabled)
	if b.nowNanos != nil {
		ingressNs = b.nowNanos()
	}
	if b.replay != nil {
		// Retain (and sequence-stamp) before reading the subscriber set:
		// SubscribeFrom registers the subscription before snapshotting the
		// ring, so a concurrent publication is always seen by the replay,
		// the live flow, or both — never neither.
		b.replay.retain(channel, payload)
	}
	hasPatterns := b.patternSubs.Load() > 0
	sh := &b.shards[shardIndex(channel)]
	sh.mu.RLock()
	subs := sh.channels[channel]
	if len(subs) == 0 && !hasPatterns {
		// Early exit: nobody could possibly receive this. No slice work.
		sh.mu.RUnlock()
		if ingressNs != 0 {
			message.StampStages(payload, ingressNs, b.nowNanos())
		}
		b.published.Add(1)
		b.notifyPublish(channel, payload, 0)
		return 0
	}
	tp := targetPool.Get().(*[]target)
	ts := (*tp)[:0]
	for s := range subs {
		ts = append(ts, target{s: s})
	}
	sh.mu.RUnlock()

	if hasPatterns {
		b.mu.RLock()
		for pattern, set := range b.patterns {
			if !globMatch(pattern, channel) {
				continue
			}
			for s := range set {
				ts = append(ts, target{s: s, pattern: pattern})
			}
		}
		b.mu.RUnlock()
	}

	// Stage-stamp while the frame is still exclusively ours: ingress at
	// Publish entry, fanout now — the last instant before a subscriber
	// queue (and its concurrently-reading writer) can see the bytes.
	var fanoutNs, pubStamp int64
	if ingressNs != 0 {
		fanoutNs = b.nowNanos()
		pubStamp, _ = message.StampStages(payload, ingressNs, fanoutNs)
	}
	var regionObs *[]RegionLatencyObserver
	if pubStamp != 0 && b.regionSessions.Load() > 0 {
		regionObs = b.regionObs.Load()
	}

	// One delivery value is shared across the whole fan-out; the channel
	// send copies it, so per-subscriber delivery structs are never heap
	// allocated.
	d := delivery{channel: channel, payload: payload}
	delivered := 0
	var overflowed []*Session
	for i := range ts {
		s := ts[i].s
		if s.closed.Load() {
			continue // session is gone; skip
		}
		if s.enq != nil {
			// Event-loop session: enqueue straight into the sink's write
			// buffer; the owning shard flushes coalesced.
			if s.enq.Enqueue(channel, ts[i].pattern, payload) {
				delivered++
			} else {
				overflowed = append(overflowed, s)
				continue
			}
		} else {
			d.pattern = ts[i].pattern
			select {
			case s.out <- d:
				delivered++
			default:
				// Output buffer full: slow consumer, disconnect it.
				overflowed = append(overflowed, s)
				continue
			}
		}
		if regionObs != nil {
			if r := s.Region(); r != "" {
				age := time.Duration(fanoutNs - pubStamp)
				for _, ro := range *regionObs {
					ro.ObserveRegionDelivery(r, age)
				}
			}
		}
	}
	clear(ts) // drop *Session references so the pool does not pin them
	*tp = ts[:0]
	targetPool.Put(tp)

	for _, s := range overflowed {
		b.dropped.Add(1)
		s.close(ErrSlowConsumer)
	}

	b.published.Add(1)
	b.delivered.Add(uint64(delivered))
	b.notifyPublish(channel, payload, delivered)
	return delivered
}

// Subscribers returns the current subscriber count of a channel.
func (b *Broker) Subscribers(channel string) int {
	sh := &b.shards[shardIndex(channel)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.channels[channel])
}

// Channels returns the names of channels with at least one subscriber.
func (b *Broker) Channels() []string {
	var out []string
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		for ch := range sh.channels {
			out = append(out, ch)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Stats reports broker counters.
type Stats struct {
	Sessions  int
	Channels  int
	Published uint64 // publications accepted
	Delivered uint64 // per-subscriber deliveries queued
	Dropped   uint64 // sessions killed for slow consumption

	// Replay-ring counters (all zero when replay is disabled).
	ReplayRings    int    // channels currently holding a replay ring
	ReplayRetained uint64 // data frames appended to replay rings
	ReplayRequests uint64 // cursor subscribes served
	ReplayedFrames uint64 // frames replayed to sessions
	ReplayMissed   uint64 // requested frames already overwritten (gaps)
}

// Stats returns a snapshot of broker counters.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	sessions := len(b.sessions)
	b.mu.RUnlock()
	channels := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		channels += len(sh.channels)
		sh.mu.RUnlock()
	}
	st := Stats{
		Sessions:  sessions,
		Channels:  channels,
		Published: b.published.Load(),
		Delivered: b.delivered.Load(),
		Dropped:   b.dropped.Load(),
	}
	if b.replay != nil {
		st.ReplayRings = b.replay.rings.Len()
		st.ReplayRetained = b.replay.retained.Load()
		st.ReplayRequests = b.replay.requests.Load()
		st.ReplayedFrames = b.replay.replayed.Load()
		st.ReplayMissed = b.replay.missed.Load()
	}
	return st
}

// ReplayEnabled reports whether this broker keeps replay rings.
func (b *Broker) ReplayEnabled() bool { return b.replay != nil }

// ReplayCacheStats snapshots the replay-ring bounding cache's counters for
// metric export (zero when replay is disabled).
func (b *Broker) ReplayCacheStats() hotstate.Stats {
	if b.replay == nil {
		return hotstate.Stats{}
	}
	return b.replay.rings.Stats()
}

// ReplayHead reports channel's current ring position — its epoch and the
// last sequence stamped — so a dispatcher handing a channel off at drain
// completion can record how far the old holder's replay window reaches. ok
// is false when replay is disabled or the channel has no ring (Peek: the
// probe must not disturb eviction order).
func (b *Broker) ReplayHead(channel string) (epoch, head uint64, ok bool) {
	if b.replay == nil {
		return 0, 0, false
	}
	r, found := b.replay.rings.Peek(channel)
	if !found {
		return 0, 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch, r.head, true
}

// Close shuts the broker down, closing every session.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed.Load() {
		b.mu.Unlock()
		return
	}
	b.closed.Store(true)
	sessions := make([]*Session, 0, len(b.sessions))
	for s := range b.sessions {
		sessions = append(sessions, s)
	}
	b.mu.Unlock()
	for _, s := range sessions {
		s.close(ErrBrokerClosed)
	}
}

// removeSession detaches a session from all state. Called exactly once per
// session from Session.close.
func (b *Broker) removeSession(s *Session, subs, psubs []string) {
	if len(psubs) > 0 {
		b.mu.Lock()
		for _, p := range psubs {
			if set := b.patterns[p]; set != nil {
				if _, ok := set[s]; ok {
					delete(set, s)
					b.patternSubs.Add(-1)
					if len(set) == 0 {
						delete(b.patterns, p)
					}
				}
			}
		}
	} else {
		b.mu.Lock()
	}
	delete(b.sessions, s)
	b.mu.Unlock()
	if s.region.Load() != nil {
		b.regionSessions.Add(-1)
	}
	for _, ch := range subs {
		sh := &b.shards[shardIndex(ch)]
		sh.mu.Lock()
		set := sh.channels[ch]
		if set == nil {
			sh.mu.Unlock()
			continue
		}
		if _, ok := set[s]; !ok {
			sh.mu.Unlock()
			continue
		}
		delete(set, s)
		count := len(set)
		if count == 0 {
			delete(sh.channels, ch)
			if b.replay != nil {
				b.replay.pin(ch, false)
			}
		}
		sh.mu.Unlock()
		b.notifyUnsubscribe(ch, s.name, count)
	}
}

// delivery is one queued outbound message. pattern is non-empty for
// pattern-subscription matches.
type delivery struct {
	channel string
	payload []byte
	pattern string
}

// Session is one client connection to a broker.
type Session struct {
	broker *Broker
	name   string
	sink   Sink
	batch  int
	out    chan delivery // nil for EnqueueSink sessions
	enq    EnqueueSink   // non-nil when the sink queues for itself

	mu    sync.Mutex
	subs  map[string]struct{}
	psubs map[string]struct{}

	// region is the subscriber-declared region tag (REGION command /
	// SetRegion), read per delivery by the fan-out's region attribution.
	region atomic.Pointer[string]

	closeOnce sync.Once
	closed    atomic.Bool
	done      chan struct{}
	reason    error // set before done is closed; read only by the writer
}

// Name returns the session label.
func (s *Session) Name() string { return s.name }

// Broker returns the broker this session is connected to.
func (s *Session) Broker() *Broker { return s.broker }

// SetRegion declares the client-side region of this session, tagging its
// deliveries for per-region latency attribution (the RESP REGION command
// lands here). Empty strings are ignored; re-declaring replaces the tag.
func (s *Session) SetRegion(region string) {
	if region == "" {
		return
	}
	if s.region.Swap(&region) == nil {
		s.broker.regionSessions.Add(1)
	}
}

// Region returns the session's declared region ("" when untagged).
func (s *Session) Region() string {
	if p := s.region.Load(); p != nil {
		return *p
	}
	return ""
}

// Subscribe adds the session to the given channels and returns the session's
// total subscription count (the Redis reply convention).
func (s *Session) Subscribe(channels ...string) (int, error) {
	if s.closed.Load() {
		return 0, ErrSessionClosed
	}
	b := s.broker
	for _, ch := range channels {
		s.mu.Lock()
		_, already := s.subs[ch]
		if !already {
			s.subs[ch] = struct{}{}
		}
		s.mu.Unlock()
		if already {
			continue
		}
		sh := &b.shards[shardIndex(ch)]
		sh.mu.Lock()
		set := sh.channels[ch]
		if set == nil {
			set = make(map[*Session]struct{})
			sh.channels[ch] = set
		}
		set[s] = struct{}{}
		count := len(set)
		if count == 1 && b.replay != nil {
			// First subscriber: pin the channel's replay ring against
			// eviction (under the shard lock so pin/unpin transitions for
			// one channel are serialized).
			b.replay.pin(ch, true)
		}
		sh.mu.Unlock()
		if s.closed.Load() {
			// Lost the race against close(): its registry sweep may have
			// run before our insert. Undo; removal is idempotent.
			sh.mu.Lock()
			if set := sh.channels[ch]; set != nil {
				delete(set, s)
				if len(set) == 0 {
					delete(sh.channels, ch)
					if b.replay != nil {
						b.replay.pin(ch, false)
					}
				}
			}
			sh.mu.Unlock()
			return s.subscriptionCount(), ErrSessionClosed
		}
		b.notifySubscribe(ch, s.name, count)
	}
	return s.subscriptionCount(), nil
}

// Unsubscribe removes the session from the given channels (all current
// subscriptions if none given) and returns the remaining subscription count.
func (s *Session) Unsubscribe(channels ...string) (int, error) {
	if s.closed.Load() {
		return 0, ErrSessionClosed
	}
	if len(channels) == 0 {
		s.mu.Lock()
		channels = make([]string, 0, len(s.subs))
		for ch := range s.subs {
			channels = append(channels, ch)
		}
		s.mu.Unlock()
	}
	b := s.broker
	for _, ch := range channels {
		s.mu.Lock()
		_, had := s.subs[ch]
		delete(s.subs, ch)
		s.mu.Unlock()
		if !had {
			continue
		}
		sh := &b.shards[shardIndex(ch)]
		sh.mu.Lock()
		set := sh.channels[ch]
		var count int
		if set != nil {
			delete(set, s)
			count = len(set)
			if count == 0 {
				delete(sh.channels, ch)
				if b.replay != nil {
					b.replay.pin(ch, false)
				}
			}
		}
		sh.mu.Unlock()
		b.notifyUnsubscribe(ch, s.name, count)
	}
	return s.subscriptionCount(), nil
}

// PSubscribe adds pattern subscriptions (Redis PSUBSCRIBE). It returns the
// session's total subscription count (channels + patterns), Redis-style.
func (s *Session) PSubscribe(patterns ...string) (int, error) {
	if s.closed.Load() {
		return 0, ErrSessionClosed
	}
	b := s.broker
	for _, p := range patterns {
		s.mu.Lock()
		_, already := s.psubs[p]
		if !already {
			s.psubs[p] = struct{}{}
		}
		s.mu.Unlock()
		if already {
			continue
		}
		b.mu.Lock()
		if _, live := b.sessions[s]; !live {
			// Session closed concurrently; its sweep already ran.
			b.mu.Unlock()
			return s.subscriptionCount(), ErrSessionClosed
		}
		set := b.patterns[p]
		if set == nil {
			set = make(map[*Session]struct{})
			b.patterns[p] = set
		}
		if _, ok := set[s]; !ok {
			set[s] = struct{}{}
			b.patternSubs.Add(1)
		}
		b.mu.Unlock()
	}
	return s.subscriptionCount(), nil
}

// PUnsubscribe removes pattern subscriptions (all current patterns if none
// given) and returns the remaining total subscription count.
func (s *Session) PUnsubscribe(patterns ...string) (int, error) {
	if s.closed.Load() {
		return 0, ErrSessionClosed
	}
	if len(patterns) == 0 {
		s.mu.Lock()
		patterns = make([]string, 0, len(s.psubs))
		for p := range s.psubs {
			patterns = append(patterns, p)
		}
		s.mu.Unlock()
	}
	b := s.broker
	for _, p := range patterns {
		s.mu.Lock()
		_, had := s.psubs[p]
		delete(s.psubs, p)
		s.mu.Unlock()
		if !had {
			continue
		}
		b.mu.Lock()
		if set := b.patterns[p]; set != nil {
			if _, ok := set[s]; ok {
				delete(set, s)
				b.patternSubs.Add(-1)
				if len(set) == 0 {
					delete(b.patterns, p)
				}
			}
		}
		b.mu.Unlock()
	}
	return s.subscriptionCount(), nil
}

// PatternSubscriptions returns the session's pattern subscriptions.
func (s *Session) PatternSubscriptions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.psubs))
	for p := range s.psubs {
		out = append(out, p)
	}
	return out
}

func (s *Session) subscriptionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs) + len(s.psubs)
}

// Subscriptions returns the channels this session is subscribed to.
func (s *Session) Subscriptions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.subs))
	for ch := range s.subs {
		out = append(out, ch)
	}
	return out
}

// Close terminates the session gracefully.
func (s *Session) Close() { s.close(ErrSessionClosed) }

// CloseReason returns why the session ended (ErrSlowConsumer,
// ErrBrokerClosed, ErrSessionClosed, …), or nil while it is still open.
func (s *Session) CloseReason() error {
	select {
	case <-s.done:
		return s.reason
	default:
		return nil
	}
}

func (s *Session) close(reason error) {
	first := false
	s.closeOnce.Do(func() {
		first = true
		s.reason = reason
		s.closed.Store(true)
		close(s.done)
		s.mu.Lock()
		subs := make([]string, 0, len(s.subs))
		for ch := range s.subs {
			subs = append(subs, ch)
		}
		s.subs = make(map[string]struct{})
		psubs := make([]string, 0, len(s.psubs))
		for p := range s.psubs {
			psubs = append(psubs, p)
		}
		s.psubs = make(map[string]struct{})
		s.mu.Unlock()
		s.broker.removeSession(s, subs, psubs)
	})
	if first {
		// Notify the sink from the closing goroutine: the writer may be
		// blocked inside Deliver (that is exactly the slow-consumer case)
		// and Closed implementations unblock it (e.g. by closing the TCP
		// connection). Runs outside the Once so a sink that re-enters
		// Close (clients tearing down their side) cannot deadlock.
		// Sinks must make Closed non-blocking.
		s.sink.Closed(reason)
	}
}

// writer drains the output queue into the sink — the per-connection sender.
// After each blocking dequeue it greedily drains up to batch-1 more pending
// deliveries non-blocking and then flushes batching sinks once, so a burst
// of fan-out costs one syscall instead of one per message. Like a Redis
// disconnect, close drops anything still queued.
func (s *Session) writer() {
	bs, canFlush := s.sink.(BatchSink)
	for {
		select {
		case d := <-s.out:
			s.dispatch(d)
		drain:
			for n := 1; n < s.batch; n++ {
				select {
				case d = <-s.out:
					s.dispatch(d)
				default:
					break drain
				}
			}
			if canFlush {
				bs.FlushDeliveries()
			}
		case <-s.done:
			return
		}
	}
}

func (s *Session) dispatch(d delivery) {
	// The frame is leaving the output queue for the sink's write buffer:
	// the writer-flush observation point of the latency waterfall (queue
	// wait is the dominant broker-side delay this stage exists to expose).
	s.broker.observeFlush(d.payload)
	if d.pattern != "" {
		if ps, ok := s.sink.(PatternSink); ok {
			ps.DeliverPattern(d.pattern, d.channel, d.payload)
			return
		}
	}
	s.sink.Deliver(d.channel, d.payload)
}

// String describes the session.
func (s *Session) String() string {
	return fmt.Sprintf("session{%s on %s}", s.name, s.broker.name)
}
