//go:build linux

package broker

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/dynamoth/dynamoth/internal/resp"
)

// This file is the Linux event-loop connection core: a sharded epoll
// reactor. The accept loop pulls raw fds off the listener with accept4 and
// hands them round-robin to N shards; each shard owns one epoll instance, an
// fd-indexed session table, and a shared read buffer. Reads are
// edge-triggered into the shared buffer and fed to the per-session
// incremental RESP parser (partial frames carry over between wakeups);
// deliveries enqueue into per-session write buffers that the shard flushes
// once per loop pass, so a fan-out burst costs one write syscall per
// *connection per cycle*, not one per message — and an idle connection costs
// one table slot and an empty buffer, not two goroutines and a channel.

// ReactorAvailable reports whether the epoll reactor core can run on this
// platform.
func ReactorAvailable() bool { return true }

// epoll event masks. EPOLLET does not fit int32 through the syscall
// constants, so the masks are assembled as uint32 here.
const (
	epollET       = uint32(1) << 31
	epollReadMask = uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP) | epollET
	epollRWMask   = uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP|syscall.EPOLLOUT) | epollET
	epollErrMask  = uint32(syscall.EPOLLHUP | syscall.EPOLLERR)
)

// serveReactor runs the sharded epoll event loop against ln's socket until
// the listener closes, then tears down every remaining connection.
func (cs *ConnServer) serveReactor(ln net.Listener) error {
	tln, ok := ln.(*net.TCPListener)
	if !ok {
		return fmt.Errorf("broker: reactor core requires *net.TCPListener, got %T", ln)
	}
	r := &reactor{cs: cs, b: cs.b, ln: tln}
	for i := 0; i < cs.opts.Shards; i++ {
		sh, err := newShard(r)
		if err != nil {
			for _, s := range r.shards {
				s.destroy()
			}
			return fmt.Errorf("broker: reactor shard: %w", err)
		}
		r.shards = append(r.shards, sh)
	}
	var wg sync.WaitGroup
	for _, sh := range r.shards {
		wg.Add(1)
		go func(sh *rshard) {
			defer wg.Done()
			sh.loop()
		}(sh)
	}
	err := r.acceptLoop()
	for _, sh := range r.shards {
		sh.stop()
	}
	wg.Wait()
	return err
}

type reactor struct {
	cs     *ConnServer
	b      *Broker
	ln     *net.TCPListener
	shards []*rshard
	next   uint64 // round-robin shard cursor (acceptor goroutine only)
}

// acceptLoop pulls connections off the listener and transfers each fd out of
// the runtime's netpoller into shard ownership. Go's listener RawConn only
// supports Control (Read returns EINVAL), so the portable Accept does the
// blocking; the fd is then duplicated out of the short-lived *net.TCPConn
// (dup shares the file description, so the socket survives closing the
// original) and everything after the handoff is epoll-only. Returns the
// listener's close error.
func (r *reactor) acceptLoop() error {
	for {
		conn, err := r.ln.AcceptTCP()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			if isTransientAccept(err) {
				// Out of descriptors or an aborted handshake: back off
				// instead of spinning.
				time.Sleep(10 * time.Millisecond)
				continue
			}
			return fmt.Errorf("broker: accept: %w", err)
		}
		fd, err := dupConnFD(conn)
		addr := conn.RemoteAddr().String()
		conn.Close() //nolint:errcheck // fd ownership moved (or dup failed)
		if err != nil {
			continue
		}
		r.register(fd, addr)
	}
}

// isTransientAccept reports whether an accept error is worth retrying.
func isTransientAccept(err error) bool {
	return errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.EINTR)
}

// dupConnFD duplicates tc's descriptor so the reactor owns a copy outside
// the runtime poller.
func dupConnFD(tc *net.TCPConn) (int, error) {
	rc, err := tc.SyscallConn()
	if err != nil {
		return -1, err
	}
	nfd := -1
	var dupErr error
	if cerr := rc.Control(func(fd uintptr) {
		nfd, dupErr = syscall.Dup(int(fd))
		if dupErr == nil {
			syscall.CloseOnExec(nfd)
		}
	}); cerr != nil {
		return -1, cerr
	}
	if dupErr != nil {
		return -1, dupErr
	}
	// The dup shares the original's file description, which the runtime had
	// already made non-blocking; set it explicitly anyway so the shard loops
	// can never block on a stray flag.
	syscall.SetNonblock(nfd, true) //nolint:errcheck
	return nfd, nil
}

// register attaches a freshly accepted fd to a shard.
func (r *reactor) register(fd int, addr string) {
	// Explicit TCP_NODELAY: delivery latency must never ride on Nagle
	// coalescing (the shard flush cycle already batches writes).
	syscall.SetsockoptInt(fd, syscall.IPPROTO_TCP, syscall.TCP_NODELAY, 1) //nolint:errcheck // best-effort
	sh := r.shards[r.next%uint64(len(r.shards))]
	r.next++
	rs := &rsession{fd: fd, sh: sh, name: addr}
	sess, err := r.b.Connect(addr, rs)
	if err != nil {
		// Broker shut down; refuse politely.
		syscall.Write(fd, []byte("-ERR broker unavailable\r\n")) //nolint:errcheck
		syscall.Close(fd)                                        //nolint:errcheck
		return
	}
	rs.sess = sess
	r.cs.accepts.Add(1)
	r.cs.conns.Add(1)
	if r.cs.opts.Observer != nil {
		r.cs.opts.Observer.OnAccept(addr)
	}
	sh.addIncoming(rs)
}

// rsession is one reactor-core connection. It implements EnqueueSink (so
// the broker's Publish writes straight into wbuf with no writer goroutine)
// and replySink (so dispatch replies coalesce into the same buffer).
type rsession struct {
	fd   int
	sh   *rshard
	name string
	sess *Session
	// parser carries partial frames across read wakeups; it is only
	// touched by the shard goroutine.
	parser resp.CommandParser

	mu         sync.Mutex
	wbuf       []byte // pending outbound bytes (replies + deliveries)
	dirty      bool   // queued in the shard's flush list
	wantWrite  bool   // EPOLLOUT armed (kernel buffer was full)
	closed     bool   // no more enqueues; teardown queued
	fdReleased bool   // fd closed, table entry gone (shard goroutine only)
	reason     error  // why the session ended
}

func (rs *rsession) isClosed() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.closed
}

// markDirtyLocked queues the session for the shard's next flush cycle.
// Caller holds rs.mu.
func (rs *rsession) markDirtyLocked() {
	if !rs.dirty {
		rs.dirty = true
		rs.sh.addPending(rs)
	}
}

// Enqueue implements EnqueueSink: called from publisher goroutines on the
// fan-out hot path. It appends the push frame to the session's write buffer
// and wakes the owning shard; false means the buffer is over its limit
// (slow consumer) and the broker must disconnect the session.
func (rs *rsession) Enqueue(channel, pattern string, payload []byte) bool {
	cs := rs.sh.r.cs
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return true // dying anyway; swallow like a closed Redis conn
	}
	if len(rs.wbuf) > cs.opts.WriteBufferLimit {
		buffered := len(rs.wbuf)
		rs.mu.Unlock()
		cs.backpressure.Add(1)
		if cs.opts.Observer != nil {
			cs.opts.Observer.OnBackpressure(rs.name, buffered)
		}
		return false
	}
	if pattern != "" {
		rs.wbuf = resp.AppendPMessage(rs.wbuf, pattern, channel, payload)
	} else {
		rs.wbuf = resp.AppendMessage(rs.wbuf, channel, payload)
	}
	rs.markDirtyLocked()
	rs.mu.Unlock()
	// The frame is now in the connection's write buffer, flushed on the
	// shard's next pass: the reactor core's writer-flush observation point.
	rs.sh.r.b.observeFlush(payload)
	return true
}

// Deliver implements Sink; the broker uses Enqueue for reactor sessions, but
// the interface requires it (and in-process callers may hold one).
func (rs *rsession) Deliver(channel string, payload []byte) {
	rs.Enqueue(channel, "", payload)
}

// DeliverPattern implements PatternSink.
func (rs *rsession) DeliverPattern(pattern, channel string, payload []byte) {
	rs.Enqueue(channel, pattern, payload)
}

// Closed implements Sink: called exactly once by the broker when the session
// ends (overflow, QUIT, broker shutdown). It must not block and must not
// close the fd — fd lifecycle belongs to the shard goroutine, which frees it
// on the next pass.
func (rs *rsession) Closed(reason error) {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return
	}
	rs.closed = true
	rs.reason = reason
	rs.mu.Unlock()
	rs.sh.addDead(rs)
}

// replySink implementation: replies append to the same pending buffer as
// deliveries, so acks and pushes interleave in order and flush together.

func (rs *rsession) replyLockedCheck() error {
	if rs.closed {
		return ErrSessionClosed
	}
	return nil
}

func (rs *rsession) writeAck(kind, channel string, count int) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.replyLockedCheck(); err != nil {
		return err
	}
	w := append(rs.wbuf, '*', '3', '\r', '\n')
	w = resp.AppendBulkString(w, kind)
	w = resp.AppendBulkString(w, channel)
	w = append(w, ':')
	w = strconv.AppendInt(w, int64(count), 10)
	rs.wbuf = append(w, '\r', '\n')
	rs.markDirtyLocked()
	return nil
}

func (rs *rsession) writeReplayAck(channel string, count, replayed int, missed, epoch uint64) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.replyLockedCheck(); err != nil {
		return err
	}
	w := append(rs.wbuf, '*', '6', '\r', '\n')
	w = resp.AppendBulkString(w, "csubscribe")
	w = resp.AppendBulkString(w, channel)
	w = append(w, ':')
	w = strconv.AppendInt(w, int64(count), 10)
	w = append(w, '\r', '\n', ':')
	w = strconv.AppendInt(w, int64(replayed), 10)
	w = append(w, '\r', '\n', ':')
	w = strconv.AppendUint(w, missed, 10)
	w = append(w, '\r', '\n', ':')
	w = strconv.AppendUint(w, epoch, 10)
	rs.wbuf = append(w, '\r', '\n')
	rs.markDirtyLocked()
	return nil
}

func (rs *rsession) writeSimple(v string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.replyLockedCheck(); err != nil {
		return err
	}
	w := append(rs.wbuf, '+')
	w = append(w, v...)
	rs.wbuf = append(w, '\r', '\n')
	rs.markDirtyLocked()
	return nil
}

func (rs *rsession) writeErr(msg string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.replyLockedCheck(); err != nil {
		return err
	}
	w := append(rs.wbuf, '-')
	w = append(w, msg...)
	rs.wbuf = append(w, '\r', '\n')
	rs.markDirtyLocked()
	return nil
}

func (rs *rsession) writeInt(n int64) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.replyLockedCheck(); err != nil {
		return err
	}
	w := append(rs.wbuf, ':')
	w = strconv.AppendInt(w, n, 10)
	rs.wbuf = append(w, '\r', '\n')
	rs.markDirtyLocked()
	return nil
}

func (rs *rsession) writeBulk(b []byte) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.replyLockedCheck(); err != nil {
		return err
	}
	rs.wbuf = resp.AppendBulk(rs.wbuf, b)
	rs.markDirtyLocked()
	return nil
}

// rshard is one event-loop shard: an epoll instance, a wake pipe, the
// fd-indexed session table, and the shared read buffer. All fd lifecycle
// (epoll registration, close) happens on the shard goroutine; other
// goroutines only append to the queues and wake it.
type rshard struct {
	r     *reactor
	epfd  int
	wakeR int
	wakeW int

	table  fdTable[rsession]
	events []syscall.EpollEvent
	rbuf   []byte

	qmu      sync.Mutex
	pending  []*rsession // sessions with bytes to flush
	incoming []*rsession // freshly accepted, awaiting registration
	dead     []*rsession // closed sessions awaiting fd release

	wakeArmed atomic.Bool
	stopped   atomic.Bool

	// swap scratch so draining the queues never allocates in steady state
	pendScratch, inScratch, deadScratch []*rsession
}

func newShard(r *reactor) (*rshard, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("epoll_create1: %w", err)
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd) //nolint:errcheck
		return nil, fmt.Errorf("pipe2: %w", err)
	}
	sh := &rshard{
		r:      r,
		epfd:   epfd,
		wakeR:  p[0],
		wakeW:  p[1],
		events: make([]syscall.EpollEvent, 256),
		rbuf:   make([]byte, r.cs.opts.ReadBuffer),
	}
	ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN), Fd: int32(p[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p[0], &ev); err != nil {
		sh.destroy()
		return nil, fmt.Errorf("epoll_ctl wake: %w", err)
	}
	return sh, nil
}

// destroy releases the shard's descriptors (only for construction failures
// and final cleanup; live teardown goes through loop()).
func (sh *rshard) destroy() {
	syscall.Close(sh.epfd)  //nolint:errcheck
	syscall.Close(sh.wakeR) //nolint:errcheck
	syscall.Close(sh.wakeW) //nolint:errcheck
}

// wake nudges the shard out of epoll_wait (deduplicated: one pipe byte per
// quiet period, not one per enqueue).
func (sh *rshard) wake() {
	if !sh.wakeArmed.Swap(true) {
		var one = [1]byte{1}
		syscall.Write(sh.wakeW, one[:]) //nolint:errcheck // pipe full = wake already pending
	}
}

func (sh *rshard) addPending(rs *rsession) {
	sh.qmu.Lock()
	sh.pending = append(sh.pending, rs)
	sh.qmu.Unlock()
	sh.wake()
}

func (sh *rshard) addIncoming(rs *rsession) {
	sh.qmu.Lock()
	sh.incoming = append(sh.incoming, rs)
	sh.qmu.Unlock()
	sh.wake()
}

func (sh *rshard) addDead(rs *rsession) {
	sh.qmu.Lock()
	sh.dead = append(sh.dead, rs)
	sh.qmu.Unlock()
	sh.wake()
}

// stop asks the shard loop to tear down and exit.
func (sh *rshard) stop() {
	sh.stopped.Store(true)
	sh.wake()
}

// loop is the shard's event loop.
func (sh *rshard) loop() {
	cs := sh.r.cs
	for {
		n, err := syscall.EpollWait(sh.epfd, sh.events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			sh.cleanup()
			return
		}
		cs.epollWakeups.Add(1)
		woke := false
		for i := 0; i < n; i++ {
			ev := &sh.events[i]
			fd := int(ev.Fd)
			if fd == sh.wakeR {
				woke = true
				continue
			}
			cs.epollEvents.Add(1)
			sh.handleEvent(fd, ev.Events)
		}
		if woke {
			sh.drainWake()
		}
		sh.processIncoming()
		sh.flushPending()
		sh.processDead()
		if sh.stopped.Load() {
			sh.cleanup()
			return
		}
	}
}

// drainWake empties the wake pipe and re-arms it. Order matters: drain the
// pipe, clear the armed flag, and only then drain the work queues — a
// producer enqueueing in between either sees armed=true (its work is in the
// queues we are about to drain) or writes a fresh wake byte for the next
// epoll_wait.
func (sh *rshard) drainWake() {
	var buf [64]byte
	for {
		n, err := syscall.Read(sh.wakeR, buf[:])
		if n < len(buf) || err != nil {
			break
		}
	}
	sh.wakeArmed.Store(false)
}

// processIncoming registers freshly accepted sessions with the epoll
// instance and the fd table.
func (sh *rshard) processIncoming() {
	sh.qmu.Lock()
	batch := sh.incoming
	sh.incoming = sh.inScratch[:0]
	sh.qmu.Unlock()
	for _, rs := range batch {
		if rs.isClosed() {
			// Broker shut it down before registration.
			sh.releaseFD(rs)
			continue
		}
		ev := syscall.EpollEvent{Events: epollReadMask, Fd: int32(rs.fd)}
		if err := syscall.EpollCtl(sh.epfd, syscall.EPOLL_CTL_ADD, rs.fd, &ev); err != nil {
			sh.closeSession(rs, fmt.Errorf("broker: epoll add: %w", err))
			continue
		}
		sh.table.put(rs.fd, rs)
	}
	sh.inScratch = batch[:0]
}

// handleEvent services one epoll event for a connection fd.
func (sh *rshard) handleEvent(fd int, events uint32) {
	rs := sh.table.get(fd)
	if rs == nil || rs.isClosed() {
		return
	}
	if events&epollErrMask != 0 {
		sh.closeSession(rs, nil) // peer reset/hangup: ordinary disconnect
		return
	}
	if events&uint32(syscall.EPOLLOUT) != 0 {
		sh.flushSession(rs)
		if rs.isClosed() {
			return
		}
	}
	if events&uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP) != 0 {
		sh.readSession(rs)
	}
}

// readSession drains the socket (edge-triggered: until EAGAIN) through the
// shared read buffer into the session's incremental parser, dispatching
// every complete command.
func (sh *rshard) readSession(rs *rsession) {
	cs := sh.r.cs
	for {
		n, err := syscall.Read(rs.fd, sh.rbuf)
		if n > 0 {
			cs.bytesIn.Add(uint64(n))
			rs.parser.Feed(sh.rbuf[:n])
			for {
				args, perr := rs.parser.Next()
				if perr != nil {
					rs.writeErr("ERR protocol error") //nolint:errcheck
					sh.closeSession(rs, perr)
					return
				}
				if args == nil {
					break
				}
				if done := dispatch(sh.r.b, rs.sess, rs, args); done {
					sh.closeSession(rs, nil)
					return
				}
				if rs.isClosed() {
					return // dispatch raced a concurrent teardown
				}
			}
			if n < len(sh.rbuf) {
				// Short read: the socket buffer is drained; a fresh edge
				// will fire for new data. Saves the EAGAIN syscall.
				return
			}
			continue
		}
		switch err {
		case syscall.EAGAIN:
			return
		case syscall.EINTR:
			continue
		case nil:
			sh.closeSession(rs, nil) // n == 0: peer closed
			return
		default:
			sh.closeSession(rs, err)
			return
		}
	}
}

// flushPending writes out every session that buffered bytes since the last
// pass — the write-coalescing point of the reactor: one write syscall per
// dirty connection per cycle, regardless of how many deliveries landed.
func (sh *rshard) flushPending() {
	sh.qmu.Lock()
	batch := sh.pending
	sh.pending = sh.pendScratch[:0]
	sh.qmu.Unlock()
	for _, rs := range batch {
		sh.flushSession(rs)
	}
	// Drop *rsession references so the scratch never pins dead sessions.
	clear(batch)
	sh.pendScratch = batch[:0]
}

// flushSession writes the session's pending bytes. On a full kernel buffer
// it keeps the remainder and arms EPOLLOUT; the edge re-enters here.
func (sh *rshard) flushSession(rs *rsession) {
	cs := sh.r.cs
	rs.mu.Lock()
	rs.dirty = false
	if rs.closed || rs.fdReleased || len(rs.wbuf) == 0 {
		rs.mu.Unlock()
		return
	}
	n, err := syscall.Write(rs.fd, rs.wbuf)
	cs.epollWrites.Add(1)
	if n > 0 {
		cs.bytesOut.Add(uint64(n))
	}
	if err == syscall.EAGAIN || (err == nil && n < len(rs.wbuf)) {
		if n > 0 {
			rs.wbuf = rs.wbuf[:copy(rs.wbuf, rs.wbuf[n:])]
		}
		if !rs.wantWrite {
			rs.wantWrite = true
			sh.epollMod(rs.fd, epollRWMask)
		}
		rs.mu.Unlock()
		return
	}
	if err != nil {
		rs.mu.Unlock()
		sh.closeSession(rs, err)
		return
	}
	rs.wbuf = rs.wbuf[:0]
	if cap(rs.wbuf) > wbufRetain {
		// A burst grew the buffer; give the memory back so idle
		// connections stay small.
		rs.wbuf = nil
	}
	if rs.wantWrite {
		rs.wantWrite = false
		sh.epollMod(rs.fd, epollReadMask)
	}
	rs.mu.Unlock()
}

func (sh *rshard) epollMod(fd int, mask uint32) {
	ev := syscall.EpollEvent{Events: mask, Fd: int32(fd)}
	syscall.EpollCtl(sh.epfd, syscall.EPOLL_CTL_MOD, fd, &ev) //nolint:errcheck // fd may be racing teardown
}

// closeSession ends a session from the shard goroutine. The broker's close
// path invokes rs.Closed, which queues the fd release for this same loop
// pass.
func (sh *rshard) closeSession(rs *rsession, reason error) {
	if rs.sess != nil {
		if reason == nil {
			rs.sess.close(ErrSessionClosed)
		} else {
			rs.sess.close(reason)
		}
		// Preserve "ordinary disconnect" for the observer.
		if reason == nil {
			rs.mu.Lock()
			rs.reason = nil
			rs.mu.Unlock()
		}
	}
}

// processDead releases fds of sessions the broker has closed.
func (sh *rshard) processDead() {
	sh.qmu.Lock()
	batch := sh.dead
	sh.dead = sh.deadScratch[:0]
	sh.qmu.Unlock()
	for _, rs := range batch {
		sh.releaseFD(rs)
	}
	clear(batch)
	sh.deadScratch = batch[:0]
}

// releaseFD closes a dead session's descriptor and removes it from the
// table. Runs only on the shard goroutine; idempotent.
func (sh *rshard) releaseFD(rs *rsession) {
	cs := sh.r.cs
	rs.mu.Lock()
	if rs.fdReleased {
		rs.mu.Unlock()
		return
	}
	rs.fdReleased = true
	// Best-effort farewell flush (QUIT's +OK, protocol error replies);
	// nonblocking, so a full kernel buffer just drops the tail, exactly
	// like a Redis disconnect.
	if len(rs.wbuf) > 0 {
		if n, err := syscall.Write(rs.fd, rs.wbuf); err == nil && n > 0 {
			cs.bytesOut.Add(uint64(n))
		}
	}
	rs.wbuf = nil
	reason := rs.reason
	rs.mu.Unlock()
	if sh.table.get(rs.fd) == rs {
		sh.table.del(rs.fd)
	}
	syscall.Close(rs.fd) //nolint:errcheck
	cs.conns.Add(-1)
	cs.closes.Add(1)
	if cs.opts.Observer != nil {
		cs.opts.Observer.OnConnClose(rs.name, reason)
	}
}

// cleanup tears down every remaining connection and the shard's own
// descriptors; runs when the listener closes (or epoll itself fails).
func (sh *rshard) cleanup() {
	// Close sessions still in the table...
	var live []*rsession
	sh.table.each(func(_ int, rs *rsession) { live = append(live, rs) })
	for _, rs := range live {
		sh.closeSession(rs, ErrSessionClosed)
	}
	// ...and any accepted-but-unregistered stragglers.
	sh.processIncoming()
	sh.qmu.Lock()
	batch := sh.incoming
	sh.incoming = nil
	sh.qmu.Unlock()
	for _, rs := range batch {
		sh.closeSession(rs, ErrSessionClosed)
	}
	sh.processDead()
	sh.destroy()
}
