package broker

import (
	"sync"
	"testing"
	"time"
)

// TestDirectAndPatternExactlyOneCopy is the regression test for the old
// parallel receivers/targets slices: a direct subscriber must get exactly
// one "message" copy, a pattern subscriber exactly one "pmessage" copy, and
// the two must stay correctly attributed (no drift between session and
// pattern).
func TestDirectAndPatternExactlyOneCopy(t *testing.T) {
	b := New(Options{})
	defer b.Close()

	direct := &patternSink{frames: make(chan [3]string, 8)}
	ds, err := b.Connect("direct", direct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Subscribe("news.sports"); err != nil {
		t.Fatal(err)
	}

	patterned := &patternSink{frames: make(chan [3]string, 8)}
	ps, err := b.Connect("patterned", patterned)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.PSubscribe("news.*"); err != nil {
		t.Fatal(err)
	}

	if got := b.Publish("news.sports", []byte("goal")); got != 2 {
		t.Fatalf("Publish receivers=%d, want 2", got)
	}

	recv := func(sink *patternSink) [3]string {
		select {
		case f := <-sink.frames:
			return f
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for delivery")
			return [3]string{}
		}
	}
	if f := recv(direct); f != [3]string{"", "news.sports", "goal"} {
		t.Fatalf("direct subscriber frame=%v", f)
	}
	if f := recv(patterned); f != [3]string{"news.*", "news.sports", "goal"} {
		t.Fatalf("pattern subscriber frame=%v", f)
	}
	// Exactly one copy each: no duplicates trailing behind.
	time.Sleep(30 * time.Millisecond)
	select {
	case f := <-direct.frames:
		t.Fatalf("direct subscriber got a second copy: %v", f)
	case f := <-patterned.frames:
		t.Fatalf("pattern subscriber got a second copy: %v", f)
	default:
	}
}

// batchSink records Deliver and FlushDeliveries calls; the gate, when set,
// blocks the first Deliver so a backlog can build up behind it.
type batchSink struct {
	mu        sync.Mutex
	delivered int
	flushes   int
	gate      chan struct{}
	gateOnce  sync.Once
	inFirst   chan struct{} // closed when the first Deliver is entered
}

func newBatchSink(gated bool) *batchSink {
	s := &batchSink{inFirst: make(chan struct{})}
	if gated {
		s.gate = make(chan struct{})
	}
	return s
}

func (s *batchSink) Deliver(string, []byte) {
	first := false
	s.gateOnce.Do(func() { first = true })
	if first {
		close(s.inFirst)
		if s.gate != nil {
			<-s.gate
		}
	}
	s.mu.Lock()
	s.delivered++
	s.mu.Unlock()
}

func (s *batchSink) FlushDeliveries() {
	s.mu.Lock()
	s.flushes++
	s.mu.Unlock()
}

func (s *batchSink) Closed(error) {}

func (s *batchSink) counts() (delivered, flushes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered, s.flushes
}

// TestWriterCoalescesBatches proves the write-coalescing contract: a burst
// that queues behind a stalled delivery is drained in one batch and flushed
// once, not once per message.
func TestWriterCoalescesBatches(t *testing.T) {
	b := New(Options{OutputBuffer: 128, WriteBatch: 64})
	defer b.Close()
	sink := newBatchSink(true)
	s, err := b.Connect("c", sink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe("burst"); err != nil {
		t.Fatal(err)
	}

	const msgs = 10
	if got := b.Publish("burst", []byte("m")); got != 1 {
		t.Fatalf("Publish=%d", got)
	}
	<-sink.inFirst // writer is now stalled inside Deliver
	for i := 1; i < msgs; i++ {
		if got := b.Publish("burst", []byte("m")); got != 1 {
			t.Fatalf("Publish=%d", got)
		}
	}
	close(sink.gate)

	deadline := time.Now().Add(2 * time.Second)
	for {
		delivered, _ := sink.counts()
		if delivered == msgs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", delivered, msgs)
		}
		time.Sleep(time.Millisecond)
	}
	if _, flushes := sink.counts(); flushes < 1 || flushes >= msgs {
		t.Fatalf("flushes=%d for %d messages, want coalescing (1 <= flushes < %d)", flushes, msgs, msgs)
	}
}

// TestWriteBatchOfOneFlushesPerMessage pins the knob's lower bound:
// WriteBatch=1 disables coalescing and flushes after every delivery.
func TestWriteBatchOfOneFlushesPerMessage(t *testing.T) {
	b := New(Options{OutputBuffer: 128, WriteBatch: 1})
	defer b.Close()
	sink := newBatchSink(false)
	s, err := b.Connect("c", sink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe("one"); err != nil {
		t.Fatal(err)
	}
	const msgs = 5
	for i := 0; i < msgs; i++ {
		b.Publish("one", []byte("m"))
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		delivered, flushes := sink.counts()
		if delivered == msgs && flushes >= msgs {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered=%d flushes=%d, want %d of each", delivered, flushes, msgs)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPublishEarlyExitStillObserved: the no-subscriber fast path must not
// skip observer callbacks or the published counter — the LLA accounts for
// publications to idle channels too.
func TestPublishEarlyExitStillObserved(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	obs := &recordingObserver{}
	b.AddObserver(obs)
	if got := b.Publish("idle", []byte("xyz")); got != 0 {
		t.Fatalf("Publish=%d", got)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.pubs) != 1 || obs.pubs[0] != "idle/3/0" {
		t.Fatalf("observer pubs=%v, want [idle/3/0]", obs.pubs)
	}
	if st := b.Stats(); st.Published != 1 || st.Delivered != 0 {
		t.Fatalf("stats=%+v", st)
	}
}

// TestShardIndexStability pins the FNV-1a stripe function: same channel,
// same shard, and the index is always in range.
func TestShardIndexStability(t *testing.T) {
	seen := make(map[uint32]bool)
	for _, ch := range []string{"", "a", "tile-3-4", "news.sports", "ch-31"} {
		i := shardIndex(ch)
		if i >= numShards {
			t.Fatalf("shardIndex(%q)=%d out of range", ch, i)
		}
		if j := shardIndex(ch); j != i {
			t.Fatalf("shardIndex(%q) unstable: %d then %d", ch, i, j)
		}
		seen[i] = true
	}
	if len(seen) < 2 {
		t.Fatalf("suspiciously degenerate distribution: %v", seen)
	}
}
