package broker

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"github.com/dynamoth/dynamoth/internal/hotstate"
	"github.com/dynamoth/dynamoth/internal/message"
)

// Replay rings give the "dumb" broker one additional Redis-like capability
// (comparable to Redis Streams' XRANGE backing XREAD resume): each channel
// keeps the last ReplayDepth stamped data frames in a fixed ring, and a
// session may subscribe with a cursor to have the gap since its last-seen
// sequence replayed before live flow resumes. The broker still knows nothing
// about plans or rebalancing — which sequence a client has seen, and when to
// present a cursor, is entirely client/dispatcher intelligence.
//
// Sequencing contract: the broker stamps every data envelope it retains with
// (epoch, channelSeq) — epoch names one ring incarnation on one broker,
// channelSeq is dense within it. A ring evicted by the bounding cache and
// later recreated gets a NEW epoch, so clients can never mistake the
// recreated ring's restarting sequence for stale duplicates of the old one.

// DefaultReplayChannels bounds how many channels may hold a replay ring at
// once (rings of subscribed channels are pinned and don't count against
// eviction pressure).
const DefaultReplayChannels = 65536

// ReplayResult reports what a cursor subscribe replayed.
type ReplayResult struct {
	// Replayed is the number of retained frames queued to the session.
	Replayed int
	// Missed counts frames the cursor asked for that the ring had already
	// overwritten — a definite, unrecoverable gap (only detectable when the
	// cursor's epoch matches the ring's; a cross-epoch resume starts a fresh
	// baseline instead).
	Missed uint64
	// Epoch is the ring's current epoch (0 when the channel has no ring), so
	// the client can attribute Missed to the right sequence track.
	Epoch uint64
}

// replaySlot is one retained frame. buf is reused across ring wraps, so a
// channel at steady state retains its window with zero allocations.
type replaySlot struct {
	seq   uint64
	stamp int64
	buf   []byte
}

// replayRing is one channel's bounded frame history. head is the last
// assigned sequence; sequence s lives in slots[(s-1) % depth].
type replayRing struct {
	mu    sync.Mutex
	epoch uint64
	head  uint64
	slots []replaySlot
}

func newReplayRing(depth int) *replayRing {
	// 63 bits so the epoch survives a round trip through a RESP integer
	// (int64); 0 is reserved — on the wire it means "never stamped".
	e := rand.Uint64() >> 1
	if e == 0 {
		e = 1
	}
	return &replayRing{epoch: e, slots: make([]replaySlot, depth)}
}

// replayStore is the broker's channel→ring table, bounded by a hotstate
// cache: unsubscribed channels' rings are evictable, subscribed ones are
// pinned (best-effort — a pin lost to a concurrent eviction only costs a
// fresh epoch, never correctness).
type replayStore struct {
	depth int
	rings *hotstate.Cache[string, *replayRing]

	retained atomic.Uint64 // frames appended to rings
	requests atomic.Uint64 // cursor subscribes served
	replayed atomic.Uint64 // frames replayed to sessions
	missed   atomic.Uint64 // frames requested but already overwritten
}

func newReplayStore(depth, channels int) *replayStore {
	if channels == 0 {
		channels = DefaultReplayChannels
	}
	if channels < 0 {
		channels = 0 // unbounded
	}
	st := &replayStore{depth: depth}
	st.rings = hotstate.New(hotstate.Config[string, *replayRing]{
		Capacity: channels,
	})
	return st
}

// ring returns channel's ring, creating it (with a fresh epoch) on first use.
func (st *replayStore) ring(channel string) *replayRing {
	if r, ok := st.rings.Get(channel); ok {
		return r
	}
	var out *replayRing
	st.rings.Upsert(channel, func(old *replayRing, exists bool) (*replayRing, bool) {
		if exists {
			out = old
			return old, false
		}
		out = newReplayRing(st.depth)
		return out, true
	})
	return out
}

// retainable reports whether a payload is a data envelope the ring should
// keep, peeking only the fixed header (raw payloads and control envelopes
// pass through the broker unstamped and unretained).
func retainable(payload []byte) bool {
	t, _, ok := message.PeekStamp(payload)
	return ok && (t == message.TypeData || t == message.TypeForwarded)
}

// retain assigns the channel's next sequence, stamps payload in place with
// (epoch, seq), and copies the stamped frame into the ring. The caller must
// exclusively own payload (the broker's publish contract). Steady state is
// allocation-free: slot buffers are reused once the ring has wrapped.
func (st *replayStore) retain(channel string, payload []byte) {
	if !retainable(payload) {
		return
	}
	_, stamp, _ := message.PeekStamp(payload)
	r := st.ring(channel)
	r.mu.Lock()
	r.head++
	message.StampChannelSeq(payload, r.epoch, r.head)
	s := &r.slots[(r.head-1)%uint64(len(r.slots))]
	s.seq = r.head
	s.stamp = stamp
	s.buf = append(s.buf[:0], payload...)
	r.mu.Unlock()
	st.retained.Add(1)
}

// pin marks channel's ring exempt from eviction while subscribed (creating
// it if needed, so the window starts buffering no later than the
// subscription).
func (st *replayStore) pin(channel string, pinned bool) {
	if pinned {
		st.ring(channel)
	}
	st.rings.Pin(channel, pinned)
}

// collect copies the frames a cursor is owed out of channel's ring. Frames
// are fresh copies — ring slots are reused and must never escape the lock.
//
// Epoch match: replay exactly (cursorSeq, head]; anything below the ring
// tail is counted missed. Epoch miss (client arrives from another broker or
// a recreated ring): replay retained frames stamped at or after
// cur.SinceStamp — the overlap is suppressed by client-side dedup, and the
// client baselines the new epoch from the first sequence it sees.
func (st *replayStore) collect(channel string, cur message.Cursor) (frames [][]byte, missed, epoch uint64) {
	st.requests.Add(1)
	r, ok := st.rings.Get(channel)
	if !ok {
		return nil, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	epoch = r.epoch
	depth := uint64(len(r.slots))
	tail := uint64(1)
	if r.head > depth {
		tail = r.head - depth + 1
	}
	if seq, ok := cur.SeqFor(r.epoch); ok {
		from := seq + 1
		if from > r.head {
			return nil, 0, epoch // cursor current (or claims the future): nothing owed
		}
		if from < tail {
			missed = tail - from
			st.missed.Add(missed)
			from = tail
		}
		for q := from; q <= r.head; q++ {
			s := &r.slots[(q-1)%depth]
			if s.seq != q {
				continue
			}
			frames = append(frames, append([]byte(nil), s.buf...))
		}
		st.replayed.Add(uint64(len(frames)))
		return frames, missed, epoch
	}
	if cur.SinceStamp == 0 {
		return nil, 0, epoch
	}
	for q := tail; q <= r.head; q++ {
		s := &r.slots[(q-1)%depth]
		if s.seq != q || s.stamp < cur.SinceStamp {
			continue
		}
		frames = append(frames, append([]byte(nil), s.buf...))
	}
	st.replayed.Add(uint64(len(frames)))
	return frames, 0, epoch
}

// SubscribeFrom subscribes the session to channel and replays the gap the
// cursor names from the channel's replay ring, queueing replayed frames on
// the session's ordinary output path before (in sequence terms) live flow
// takes over. The subscription is registered before the ring is snapshotted,
// and Publish appends to the ring before it reads the subscriber set — so
// every concurrent publication lands in the replay, the live flow, or both
// (overlap is the client's to dedup), never neither.
//
// On a broker without replay rings it degrades to a plain Subscribe.
func (s *Session) SubscribeFrom(channel string, cur message.Cursor) (ReplayResult, error) {
	if _, err := s.Subscribe(channel); err != nil {
		return ReplayResult{}, err
	}
	st := s.broker.replay
	if st == nil {
		return ReplayResult{}, nil
	}
	frames, missed, epoch := st.collect(channel, cur)
	res := ReplayResult{Missed: missed, Epoch: epoch}
	for _, f := range frames {
		if s.closed.Load() {
			return res, ErrSessionClosed
		}
		if s.enq != nil {
			if !s.enq.Enqueue(channel, "", f) {
				s.broker.dropped.Add(1)
				s.close(ErrSlowConsumer)
				return res, ErrSlowConsumer
			}
		} else {
			select {
			case s.out <- delivery{channel: channel, payload: f}:
			default:
				s.broker.dropped.Add(1)
				s.close(ErrSlowConsumer)
				return res, ErrSlowConsumer
			}
		}
		res.Replayed++
	}
	s.broker.delivered.Add(uint64(res.Replayed))
	return res, nil
}
