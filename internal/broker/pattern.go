package broker

// globMatch implements Redis-style glob matching (the PSUBSCRIBE pattern
// language): '*' matches any sequence, '?' any single byte, '[...]' a
// character class (with leading '^' negation and 'a-z' ranges), and '\\'
// escapes the next byte. Matching is byte-wise, like Redis stringmatchlen.
func globMatch(pattern, s string) bool {
	return globMatchAt(pattern, s)
}

func globMatchAt(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '*':
			// Collapse consecutive stars.
			for len(p) > 1 && p[1] == '*' {
				p = p[1:]
			}
			if len(p) == 1 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if globMatchAt(p[1:], s[i:]) {
					return true
				}
			}
			return false
		case '?':
			if len(s) == 0 {
				return false
			}
			s = s[1:]
			p = p[1:]
		case '[':
			if len(s) == 0 {
				return false
			}
			rest, ok := matchClass(p, s[0])
			if !ok {
				return false
			}
			p = rest
			s = s[1:]
		case '\\':
			if len(p) >= 2 {
				p = p[1:]
			}
			fallthrough
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			s = s[1:]
			p = p[1:]
		}
	}
	return len(s) == 0
}

// matchClass matches one byte against the class starting at p[0]=='[' and
// returns the pattern remainder after the closing ']'. Like Redis, an
// unterminated class treats the rest of the pattern as literal class
// members.
func matchClass(p string, b byte) (rest string, matched bool) {
	i := 1
	negate := false
	if i < len(p) && p[i] == '^' {
		negate = true
		i++
	}
	found := false
	for i < len(p) && p[i] != ']' {
		if p[i] == '\\' && i+1 < len(p) {
			i++
			if p[i] == b {
				found = true
			}
			i++
			continue
		}
		if i+2 < len(p) && p[i+1] == '-' && p[i+2] != ']' {
			lo, hi := p[i], p[i+2]
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo <= b && b <= hi {
				found = true
			}
			i += 3
			continue
		}
		if p[i] == b {
			found = true
		}
		i++
	}
	if i < len(p) {
		i++ // consume ']'
	}
	if negate {
		found = !found
	}
	return p[i:], found
}
