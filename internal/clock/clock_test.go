package clock

import (
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	start := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(start) <= 0 {
		t.Fatal("Since returned non-positive after Sleep")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("After(1ms) did not fire within 1s")
	}
}

func TestScaledClockRate(t *testing.T) {
	c := NewScaled(epoch, 100) // 100x fast
	start := c.Now()
	time.Sleep(20 * time.Millisecond)
	elapsed := c.Since(start)
	if elapsed < time.Second || elapsed > 10*time.Second {
		t.Fatalf("100x clock advanced %v virtual over ~20ms real", elapsed)
	}
}

func TestScaledSleepAndTimer(t *testing.T) {
	c := NewScaled(epoch, 1000)
	realStart := time.Now()
	c.Sleep(time.Second) // = 1ms real
	if real := time.Since(realStart); real > 500*time.Millisecond {
		t.Fatalf("scaled Sleep(1s) took %v real", real)
	}
	timer := c.NewTimer(time.Second)
	select {
	case <-timer.C():
	case <-time.After(time.Second):
		t.Fatal("scaled timer did not fire")
	}
	timer.Reset(time.Second)
	select {
	case <-timer.C():
	case <-time.After(time.Second):
		t.Fatal("reset scaled timer did not fire")
	}
}

func TestScaledTickerTicks(t *testing.T) {
	c := NewScaled(epoch, 1000)
	tk := c.NewTicker(100 * time.Millisecond) // 0.1ms real
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		select {
		case <-tk.C():
		case <-time.After(time.Second):
			t.Fatalf("tick %d missing", i)
		}
	}
}

func TestScaledPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewScaled(0) did not panic")
		}
	}()
	NewScaled(epoch, 0)
}

func TestManualNowAndAdvance(t *testing.T) {
	c := NewManual(epoch)
	if !c.Now().Equal(epoch) {
		t.Fatalf("Now=%v want %v", c.Now(), epoch)
	}
	c.Advance(90 * time.Second)
	if got := c.Since(epoch); got != 90*time.Second {
		t.Fatalf("Since=%v want 90s", got)
	}
}

func TestManualTimerFiresAtDeadline(t *testing.T) {
	c := NewManual(epoch)
	timer := c.NewTimer(10 * time.Second)
	c.Advance(9 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("timer fired early")
	default:
	}
	c.Advance(time.Second)
	select {
	case ts := <-timer.C():
		if !ts.Equal(epoch.Add(10 * time.Second)) {
			t.Fatalf("fired with timestamp %v", ts)
		}
	default:
		t.Fatal("timer did not fire at deadline")
	}
}

func TestManualTimerStop(t *testing.T) {
	c := NewManual(epoch)
	timer := c.NewTimer(time.Second)
	if !timer.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	c.Advance(2 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if timer.Stop() {
		t.Fatal("second Stop returned true")
	}
}

func TestManualTimerReset(t *testing.T) {
	c := NewManual(epoch)
	timer := c.NewTimer(time.Second)
	timer.Reset(5 * time.Second)
	c.Advance(2 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("reset timer fired at original deadline")
	default:
	}
	c.Advance(3 * time.Second)
	select {
	case <-timer.C():
	default:
		t.Fatal("reset timer did not fire at new deadline")
	}
}

func TestManualTickerPeriodicAndStop(t *testing.T) {
	c := NewManual(epoch)
	tk := c.NewTicker(time.Second)
	fired := 0
	for i := 0; i < 3; i++ {
		c.Advance(time.Second)
		select {
		case <-tk.C():
			fired++
		default:
		}
	}
	if fired != 3 {
		t.Fatalf("ticker fired %d times over 3s, want 3", fired)
	}
	tk.Stop()
	c.Advance(5 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestManualTickerDropsWhenNotDrained(t *testing.T) {
	c := NewManual(epoch)
	tk := c.NewTicker(time.Second)
	defer tk.Stop()
	c.Advance(10 * time.Second) // 10 ticks, buffer of 1
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("undrained ticker buffered %d ticks, want 1", n)
	}
}

func TestManualOrderingOfTimers(t *testing.T) {
	c := NewManual(epoch)
	t3 := c.NewTimer(3 * time.Second)
	t1 := c.NewTimer(1 * time.Second)
	t2 := c.NewTimer(2 * time.Second)

	// Advancing one second at a time must make exactly one timer ready per
	// step, in deadline order regardless of creation order.
	var order []int
	for step := 0; step < 3; step++ {
		c.Advance(time.Second)
		ready := 0
		select {
		case <-t1.C():
			order = append(order, 1)
			ready++
		default:
		}
		select {
		case <-t2.C():
			order = append(order, 2)
			ready++
		default:
		}
		select {
		case <-t3.C():
			order = append(order, 3)
			ready++
		default:
		}
		if ready != 1 {
			t.Fatalf("step %d: %d timers ready, want 1", step, ready)
		}
	}
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("timers fired out of order: %v", order)
	}
}

func TestManualSleepUnblocksOnAdvance(t *testing.T) {
	c := NewManual(epoch)
	done := make(chan struct{})
	go func() {
		c.Sleep(time.Minute)
		close(done)
	}()
	// Give the sleeper a moment to register.
	time.Sleep(5 * time.Millisecond)
	c.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not unblock on Advance")
	}
}

func TestManualSetPastPanics(t *testing.T) {
	c := NewManual(epoch)
	c.Advance(time.Hour)
	defer func() {
		if recover() == nil {
			t.Fatal("Set into the past did not panic")
		}
	}()
	c.Set(epoch)
}

func TestManualZeroDurationTimerFiresOnNextAdvance(t *testing.T) {
	c := NewManual(epoch)
	timer := c.NewTimer(0)
	c.Advance(0)
	select {
	case <-timer.C():
	default:
		t.Fatal("zero-duration timer did not fire on Advance(0)")
	}
}
