// Package clock abstracts time so that identical Dynamoth code can run
// against the wall clock (live clusters, examples), against an accelerated
// clock (fast integration tests), or against a manually advanced clock
// (deterministic unit tests and the discrete-event simulator).
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used throughout Dynamoth.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// Sleep blocks for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel delivering the time after d has elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
	// NewTimer returns a timer firing once after d.
	NewTimer(d time.Duration) Timer
}

// Ticker mirrors time.Ticker behind an interface.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Timer mirrors time.Timer behind an interface.
type Timer interface {
	C() <-chan time.Time
	// Stop prevents the timer from firing; it reports whether it was
	// still pending.
	Stop() bool
	// Reset re-arms the timer for d from now.
	Reset(d time.Duration)
}

// ---------------------------------------------------------------------------
// Real clock

// Real is the wall clock.
type Real struct{}

var _ Clock = Real{}

// NewReal returns the wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return &realTimer{time.NewTimer(d)} }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

type realTimer struct{ t *time.Timer }

func (t *realTimer) C() <-chan time.Time   { return t.t.C }
func (t *realTimer) Stop() bool            { return t.t.Stop() }
func (t *realTimer) Reset(d time.Duration) { t.t.Reset(d) }

// ---------------------------------------------------------------------------
// Scaled clock

// Scaled runs virtual time at a fixed multiple of real time: with Factor 10,
// one real second is ten virtual seconds. Experiments defined in virtual
// seconds then run Factor× faster on the wall clock while all rates and
// timeouts keep their virtual meaning.
type Scaled struct {
	origin     time.Time // real time at construction
	virtOrigin time.Time // virtual time at construction
	factor     float64
}

var _ Clock = (*Scaled)(nil)

// NewScaled creates a scaled clock starting at virtual time start, running
// factor× faster than real time. factor must be positive.
func NewScaled(start time.Time, factor float64) *Scaled {
	if factor <= 0 {
		panic("clock: scale factor must be positive")
	}
	return &Scaled{origin: time.Now(), virtOrigin: start, factor: factor}
}

// Factor returns the acceleration factor.
func (s *Scaled) Factor() float64 { return s.factor }

// Now implements Clock.
func (s *Scaled) Now() time.Time {
	real := time.Since(s.origin)
	return s.virtOrigin.Add(time.Duration(float64(real) * s.factor))
}

// Since implements Clock.
func (s *Scaled) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Sleep implements Clock.
func (s *Scaled) Sleep(d time.Duration) { time.Sleep(s.real(d)) }

// After implements Clock.
func (s *Scaled) After(d time.Duration) <-chan time.Time { return time.After(s.real(d)) }

// NewTicker implements Clock.
func (s *Scaled) NewTicker(d time.Duration) Ticker {
	return realTicker{time.NewTicker(s.real(d))}
}

// NewTimer implements Clock.
func (s *Scaled) NewTimer(d time.Duration) Timer {
	return &scaledTimer{s: s, t: time.NewTimer(s.real(d))}
}

func (s *Scaled) real(d time.Duration) time.Duration {
	r := time.Duration(float64(d) / s.factor)
	if d > 0 && r <= 0 {
		r = 1 // never a zero/negative wait for a positive virtual duration
	}
	return r
}

type scaledTimer struct {
	s *Scaled
	t *time.Timer
}

func (t *scaledTimer) C() <-chan time.Time   { return t.t.C }
func (t *scaledTimer) Stop() bool            { return t.t.Stop() }
func (t *scaledTimer) Reset(d time.Duration) { t.t.Reset(t.s.real(d)) }

// ---------------------------------------------------------------------------
// Manual clock

// Manual is a virtual clock advanced explicitly by tests. Timers and tickers
// fire synchronously inside Advance, in timestamp order.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     uint64 // tiebreak so equal deadlines fire in creation order
}

var _ Clock = (*Manual)(nil)

// NewManual creates a manual clock set to start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration { return m.Now().Sub(t) }

// Sleep blocks until the clock is advanced past d. It must not be called
// from the goroutine that calls Advance.
func (m *Manual) Sleep(d time.Duration) { <-m.After(d) }

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	t := m.NewTimer(d)
	return t.C()
}

// NewTimer implements Clock.
func (m *Manual) NewTimer(d time.Duration) Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &waiter{
		ch:       make(chan time.Time, 1),
		deadline: m.now.Add(d),
		clock:    m,
	}
	m.push(w)
	return &manualTimer{m: m, w: w}
}

// NewTicker implements Clock.
func (m *Manual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &waiter{
		ch:       make(chan time.Time, 1),
		deadline: m.now.Add(d),
		period:   d,
		clock:    m,
	}
	m.push(w)
	return &manualTicker{m: m, w: w}
}

// Advance moves the clock forward by d, firing every timer and ticker whose
// deadline falls within the window, in order.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.now.Add(d)
	for {
		if len(m.waiters) == 0 || m.waiters[0].deadline.After(target) {
			break
		}
		w := heap.Pop(&m.waiters).(*waiter)
		if w.stopped {
			continue
		}
		m.now = w.deadline
		select {
		case w.ch <- w.deadline:
		default: // receiver not draining; drop like time.Ticker does
		}
		if w.period > 0 {
			w.deadline = w.deadline.Add(w.period)
			m.push(w)
		} else {
			w.fired = true
		}
	}
	m.now = target
	m.mu.Unlock()
}

// Set jumps the clock to t (which must not be in the past), firing
// everything on the way.
func (m *Manual) Set(t time.Time) {
	d := t.Sub(m.Now())
	if d < 0 {
		panic("clock: Set into the past")
	}
	m.Advance(d)
}

func (m *Manual) push(w *waiter) {
	w.seq = m.seq
	m.seq++
	heap.Push(&m.waiters, w)
}

type waiter struct {
	ch       chan time.Time
	deadline time.Time
	period   time.Duration // 0 for timers
	seq      uint64
	index    int
	stopped  bool
	fired    bool
	clock    *Manual
}

type manualTimer struct {
	m *Manual
	w *waiter
}

func (t *manualTimer) C() <-chan time.Time { return t.w.ch }

func (t *manualTimer) Stop() bool {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	pending := !t.w.fired && !t.w.stopped
	t.w.stopped = true
	return pending
}

func (t *manualTimer) Reset(d time.Duration) {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	t.w.stopped = false
	t.w.fired = false
	t.w.deadline = t.m.now.Add(d)
	// Re-push; the stale heap entry (if any) is skipped via the stopped
	// flag semantics by replacing the waiter wholesale.
	w := &waiter{ch: t.w.ch, deadline: t.w.deadline, clock: t.m}
	old := t.w
	old.stopped = true
	t.w = w
	t.m.push(w)
}

type manualTicker struct {
	m *Manual
	w *waiter
}

func (t *manualTicker) C() <-chan time.Time { return t.w.ch }

func (t *manualTicker) Stop() {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	t.w.stopped = true
}

// waiterHeap orders waiters by (deadline, seq).
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}
