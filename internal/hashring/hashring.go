// Package hashring implements consistent hashing with virtual nodes.
//
// Dynamoth uses consistent hashing in two roles (paper §I, §II-C):
//
//   - as the fallback mapping for channels that the current plan does not
//     mention (bootstrap, newly created channels, expired client plan
//     entries), and
//   - as the baseline load-balancing strategy that Experiment 2 compares
//     Dynamoth against.
//
// Each server owns a configurable number of virtual identifiers placed on a
// 64-bit ring by FNV-1a hashing; a channel maps to the server owning the
// first identifier at or clockwise of the channel's hash. The mapping is
// deterministic across processes, which the protocol depends on: a client and
// the dispatcher of a channel's "consistent-hash home" server must agree on
// where an unmapped channel lives.
package hashring

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is the number of ring positions per server when the
// caller does not specify one. More virtual nodes smooth the key distribution
// at the cost of memory and O(log n) lookups over a larger ring.
const DefaultVirtualNodes = 128

type vnode struct {
	hash   uint64
	server string
}

// Ring is a consistent-hash ring. It is safe for concurrent use.
// The zero value is an empty ring with DefaultVirtualNodes per server.
type Ring struct {
	mu       sync.RWMutex
	vnodes   []vnode // sorted by hash
	servers  map[string]struct{}
	replicas int
}

// New creates a ring with the given servers. replicas is the number of
// virtual nodes per server; non-positive selects DefaultVirtualNodes.
func New(replicas int, servers ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultVirtualNodes
	}
	r := &Ring{
		servers:  make(map[string]struct{}, len(servers)),
		replicas: replicas,
	}
	for _, s := range servers {
		r.addLocked(s)
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
	return r
}

// Add inserts a server into the ring. Adding an existing server is a no-op.
func (r *Ring) Add(server string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.servers[server]; ok {
		return
	}
	r.addLocked(server)
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
}

func (r *Ring) addLocked(server string) {
	if _, ok := r.servers[server]; ok {
		return
	}
	if r.replicas == 0 {
		r.replicas = DefaultVirtualNodes
	}
	if r.servers == nil {
		r.servers = make(map[string]struct{})
	}
	r.servers[server] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.vnodes = append(r.vnodes, vnode{
			hash:   hashKey(server + "#" + strconv.Itoa(i)),
			server: server,
		})
	}
}

// Remove deletes a server and all its virtual nodes. Removing an absent
// server is a no-op.
func (r *Ring) Remove(server string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.servers[server]; !ok {
		return
	}
	delete(r.servers, server)
	kept := r.vnodes[:0]
	for _, v := range r.vnodes {
		if v.server != server {
			kept = append(kept, v)
		}
	}
	r.vnodes = kept
}

// Lookup returns the server responsible for key, or "" if the ring is empty.
func (r *Ring) Lookup(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.vnodes) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return r.vnodes[i].server
}

// LookupN returns the first n distinct servers clockwise of key's position.
// Fewer are returned if the ring holds fewer than n servers.
func (r *Ring) LookupN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.servers) {
		n = len(r.servers)
	}
	h := hashKey(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.vnodes) && len(out) < n; i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if _, dup := seen[v.server]; dup {
			continue
		}
		seen[v.server] = struct{}{}
		out = append(out, v.server)
	}
	return out
}

// Servers returns the current server set in unspecified order.
func (r *Ring) Servers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.servers))
	for s := range r.servers {
		out = append(out, s)
	}
	return out
}

// Len returns the number of servers in the ring.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.servers)
}

// Contains reports whether server is in the ring.
func (r *Ring) Contains(server string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.servers[server]
	return ok
}

// Clone returns an independent copy of the ring.
func (r *Ring) Clone() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Ring{
		vnodes:   append([]vnode(nil), r.vnodes...),
		servers:  make(map[string]struct{}, len(r.servers)),
		replicas: r.replicas,
	}
	for s := range r.servers {
		c.servers[s] = struct{}{}
	}
	return c
}

// String summarizes the ring for debugging.
func (r *Ring) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fmt.Sprintf("hashring{servers=%d vnodes=%d}", len(r.servers), len(r.vnodes))
}

// hashKey hashes a key to a 64-bit ring position using FNV-1a followed by a
// splitmix64 finalizer. FNV alone distributes the short, similar virtual-node
// keys ("s1#0", "s1#1", ...) poorly around the ring; the finalizer's
// avalanche fixes the spread while keeping the mapping fully deterministic.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key)) //nolint:errcheck // fnv never errors
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al., "Fast Splittable
// Pseudorandom Number Generators").
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
