package hashring

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("channel-%d", i)
	}
	return out
}

func TestLookupEmptyRing(t *testing.T) {
	r := New(8)
	if got := r.Lookup("anything"); got != "" {
		t.Fatalf("empty ring Lookup=%q, want empty", got)
	}
	if got := r.LookupN("anything", 3); got != nil {
		t.Fatalf("empty ring LookupN=%v, want nil", got)
	}
}

func TestLookupDeterministic(t *testing.T) {
	a := New(64, "s1", "s2", "s3")
	b := New(64, "s3", "s1", "s2") // different insertion order
	for _, k := range keys(200) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("ring mapping depends on insertion order for %q", k)
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Ring
	r.Add("only")
	if got := r.Lookup("x"); got != "only" {
		t.Fatalf("zero-value ring Lookup=%q", got)
	}
}

func TestSingleServerGetsEverything(t *testing.T) {
	r := New(16, "solo")
	for _, k := range keys(50) {
		if got := r.Lookup(k); got != "solo" {
			t.Fatalf("Lookup(%q)=%q, want solo", k, got)
		}
	}
}

func TestAddOnlyStealsForNewServer(t *testing.T) {
	r := New(128, "s1", "s2", "s3")
	before := make(map[string]string)
	for _, k := range keys(1000) {
		before[k] = r.Lookup(k)
	}
	r.Add("s4")
	moved := 0
	for k, old := range before {
		now := r.Lookup(k)
		if now != old {
			moved++
			if now != "s4" {
				t.Fatalf("key %q moved from %q to %q, not to the new server", k, old, now)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new server")
	}
	// Expect roughly 1/4 of the keys to move.
	if moved > 500 {
		t.Fatalf("too many keys moved: %d of 1000", moved)
	}
}

func TestRemoveOnlyMovesVictimKeys(t *testing.T) {
	r := New(128, "s1", "s2", "s3", "s4")
	before := make(map[string]string)
	for _, k := range keys(1000) {
		before[k] = r.Lookup(k)
	}
	r.Remove("s2")
	for k, old := range before {
		now := r.Lookup(k)
		if old == "s2" {
			if now == "s2" || now == "" {
				t.Fatalf("key %q still maps to removed server", k)
			}
		} else if now != old {
			t.Fatalf("key %q moved from surviving server %q to %q", k, old, now)
		}
	}
}

func TestAddExistingAndRemoveAbsentNoop(t *testing.T) {
	r := New(32, "s1", "s2")
	before := make(map[string]string)
	for _, k := range keys(100) {
		before[k] = r.Lookup(k)
	}
	r.Add("s1")
	r.Remove("nope")
	for k, old := range before {
		if got := r.Lookup(k); got != old {
			t.Fatalf("no-op mutation changed mapping of %q", k)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("Len=%d, want 2", r.Len())
	}
}

func TestBalance(t *testing.T) {
	servers := []string{"s1", "s2", "s3", "s4", "s5"}
	r := New(256, servers...)
	counts := make(map[string]int)
	const n = 20000
	for _, k := range keys(n) {
		counts[r.Lookup(k)]++
	}
	mean := float64(n) / float64(len(servers))
	for s, c := range counts {
		dev := math.Abs(float64(c)-mean) / mean
		if dev > 0.35 {
			t.Fatalf("server %s holds %d keys, %.0f%% off the mean %f", s, c, dev*100, mean)
		}
	}
}

func TestLookupNDistinctAndStable(t *testing.T) {
	r := New(64, "s1", "s2", "s3", "s4")
	got := r.LookupN("key", 3)
	if len(got) != 3 {
		t.Fatalf("LookupN returned %d servers, want 3", len(got))
	}
	seen := map[string]struct{}{}
	for _, s := range got {
		if _, dup := seen[s]; dup {
			t.Fatalf("LookupN returned duplicate %q in %v", s, got)
		}
		seen[s] = struct{}{}
	}
	if got[0] != r.Lookup("key") {
		t.Fatalf("LookupN first element %q != Lookup %q", got[0], r.Lookup("key"))
	}
	// Asking for more servers than exist returns all of them.
	if all := r.LookupN("key", 10); len(all) != 4 {
		t.Fatalf("LookupN(10) returned %d servers, want 4", len(all))
	}
}

func TestCloneIndependent(t *testing.T) {
	r := New(32, "s1", "s2")
	c := r.Clone()
	r.Remove("s1")
	if !c.Contains("s1") {
		t.Fatal("clone mutated by change to original")
	}
	if c.Lookup("k") == "" {
		t.Fatal("clone lookup failed")
	}
}

func TestLookupQuickAlwaysMember(t *testing.T) {
	r := New(32, "s1", "s2", "s3")
	f := func(key string) bool { return r.Contains(r.Lookup(key)) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New(32, "s1", "s2")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			r.Add(fmt.Sprintf("x%d", i%7))
			r.Remove(fmt.Sprintf("x%d", (i+3)%7))
		}
	}()
	for i := 0; i < 5000; i++ {
		if got := r.Lookup("steady-key"); got == "" {
			t.Fatal("lookup returned empty on non-empty ring")
		}
	}
	<-done
}

func TestString(t *testing.T) {
	r := New(4, "a")
	if got, want := r.String(), "hashring{servers=1 vnodes=4}"; got != want {
		t.Fatalf("String=%q, want %q", got, want)
	}
}
