package message

import (
	"testing"
	"testing/quick"
)

func TestEnvelopeStampRoundTrip(t *testing.T) {
	in := Envelope{
		Type:    TypeData,
		ID:      ID{Node: 3, Seq: 11},
		Channel: "game",
		Payload: []byte("hi"),
		Stamp:   1722800000123456789,
	}
	out, err := Unmarshal(in.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if out.Stamp != in.Stamp {
		t.Fatalf("Stamp = %d, want %d", out.Stamp, in.Stamp)
	}
}

func TestPeekStampMatchesUnmarshal(t *testing.T) {
	f := func(typ uint8, node uint32, seq uint64, stamp int64, channel string, payload []byte) bool {
		if typ == 0 {
			typ = 1
		}
		if stamp < 0 {
			stamp = -stamp // stamps are UnixNano values, never negative
		}
		in := Envelope{
			Type:    Type(typ),
			ID:      ID{Node: node, Seq: seq},
			Channel: channel,
			Payload: payload,
			Stamp:   stamp,
		}
		data := in.Marshal()
		gotType, gotStamp, ok := PeekStamp(data)
		if !ok {
			return false
		}
		full, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return gotType == full.Type && gotStamp == full.Stamp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekStampRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},
		{0xFF, 0x01}, // wrong magic
		[]byte("PING\r\n"),
	}
	for _, data := range cases {
		if _, _, ok := PeekStamp(data); ok {
			t.Errorf("PeekStamp(%q) accepted garbage", data)
		}
	}
	// Truncated after the magic+type: header uvarints missing.
	env := Envelope{Type: TypeData, ID: ID{Node: 1, Seq: 1}, Stamp: 99}
	data := env.Marshal()
	if _, _, ok := PeekStamp(data[:3]); ok {
		t.Error("PeekStamp accepted truncated header")
	}
}

func TestPeekStampZeroAlloc(t *testing.T) {
	env := Envelope{Type: TypeData, ID: ID{Node: 1, Seq: 42}, Channel: "game", Payload: make([]byte, 256), Stamp: 123456}
	data := env.Marshal()
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, ok := PeekStamp(data); !ok {
			t.Fatal("PeekStamp failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("PeekStamp allocates %v per run, want 0", allocs)
	}
}

func TestPeekNodeMatchesUnmarshal(t *testing.T) {
	f := func(typ uint8, node uint32, seq uint64, channel string, payload []byte) bool {
		if typ == 0 {
			typ = 1
		}
		in := Envelope{Type: Type(typ), ID: ID{Node: node, Seq: seq}, Channel: channel, Payload: payload}
		data := in.Marshal()
		got, ok := PeekNode(data)
		if !ok {
			return false
		}
		full, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return got == full.ID.Node
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekNodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {}, {0x00}, {0xFF, 0x01}, []byte("PING\r\n")} {
		if _, ok := PeekNode(data); ok {
			t.Errorf("PeekNode(%q) accepted garbage", data)
		}
	}
}

func TestPeekNodeZeroAlloc(t *testing.T) {
	env := Envelope{Type: TypeData, ID: ID{Node: 0xD001, Seq: 42}, Channel: "game", Payload: make([]byte, 256)}
	data := env.Marshal()
	allocs := testing.AllocsPerRun(1000, func() {
		if n, ok := PeekNode(data); !ok || n != 0xD001 {
			t.Fatal("PeekNode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("PeekNode allocates %v per run, want 0", allocs)
	}
}
