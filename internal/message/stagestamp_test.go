package message

import (
	"encoding/binary"
	"testing"
	"time"
)

// stagedDataFrame encodes a stamped data envelope the way a publisher does.
func stagedDataFrame(stamp int64) []byte {
	e := &Envelope{
		Type:    TypeData,
		ID:      ID{Node: 7, Seq: 42},
		Channel: "tile.3.4",
		Payload: []byte("pos-update"),
		Stamp:   stamp,
	}
	return e.Marshal()
}

// legacyFrame re-encodes a staged frame in the PR 4 single-stamp layout:
// legacy magic, no 12-byte stage block. This is byte-for-byte what an older
// publisher puts on the wire.
func legacyFrame(e *Envelope) []byte {
	staged := e.Marshal()
	legacy := make([]byte, 0, len(staged)-stageHeaderLen)
	legacy = append(legacy, envelopeMagic)
	legacy = append(legacy, staged[1:envelopeHeaderLen]...)
	legacy = append(legacy, staged[stagedHeaderLen:]...)
	return legacy
}

func TestStageStampRoundTrip(t *testing.T) {
	stamp := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC).UnixNano()
	data := stagedDataFrame(stamp)

	ingress := stamp + 250*int64(time.Microsecond)
	fanout := stamp + 900*int64(time.Microsecond)
	gotStamp, ok := StampStages(data, ingress, fanout)
	if !ok || gotStamp != stamp {
		t.Fatalf("StampStages = (%d, %v), want (%d, true)", gotStamp, ok, stamp)
	}
	if !StampFlush(data, stamp+1500*int64(time.Microsecond)) {
		t.Fatal("StampFlush refused a staged data frame")
	}

	s, ok := PeekStageStamp(data)
	if !ok {
		t.Fatal("PeekStageStamp failed on a stamped frame")
	}
	if s.Type != TypeData || s.Stamp != stamp {
		t.Fatalf("peeked type/stamp = %v/%d, want %v/%d", s.Type, s.Stamp, TypeData, stamp)
	}
	if s.IngressUs != 250 || s.FanoutUs != 900 || s.FlushUs != 1500 {
		t.Fatalf("stage offsets = %d/%d/%d, want 250/900/1500", s.IngressUs, s.FanoutUs, s.FlushUs)
	}
	if s.IngressAt() != ingress || s.FanoutAt() != fanout {
		t.Fatalf("absolute stage instants do not reconstruct: ingress %d want %d, fanout %d want %d",
			s.IngressAt(), ingress, s.FanoutAt(), fanout)
	}

	// A full Unmarshal must see the in-place stage marks too.
	env, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if env.StageIngressUs != 250 || env.StageFanoutUs != 900 || env.StageFlushUs != 1500 {
		t.Fatalf("unmarshaled stage fields = %d/%d/%d, want 250/900/1500",
			env.StageIngressUs, env.StageFanoutUs, env.StageFlushUs)
	}
	if env.Channel != "tile.3.4" || string(env.Payload) != "pos-update" {
		t.Fatalf("payload fields corrupted by stamping: %q %q", env.Channel, env.Payload)
	}
}

func TestStageStampMarshalRoundTrip(t *testing.T) {
	// Stage fields set on the struct survive Marshal → Unmarshal.
	e := &Envelope{
		Type:           TypeForwarded,
		ID:             ID{Node: 3, Seq: 9},
		Channel:        "c",
		Payload:        []byte("x"),
		Stamp:          12345678,
		StageIngressUs: 11,
		StageFanoutUs:  22,
		StageFlushUs:   33,
	}
	got, err := Unmarshal(e.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.StageIngressUs != 11 || got.StageFanoutUs != 22 || got.StageFlushUs != 33 {
		t.Fatalf("stage fields = %d/%d/%d, want 11/22/33",
			got.StageIngressUs, got.StageFanoutUs, got.StageFlushUs)
	}
}

func TestStageStampClamping(t *testing.T) {
	stamp := int64(1_000_000_000_000)
	data := stagedDataFrame(stamp)

	// Marks at or before the publish stamp (clock skew) clamp to 1µs, never
	// to 0 ("unstamped"); marks past the uint32 range clamp to MaxUint32.
	farFuture := stamp + int64(1<<33)*1000
	if _, ok := StampStages(data, stamp-int64(time.Second), farFuture); !ok {
		t.Fatal("StampStages refused a valid frame")
	}
	s, _ := PeekStageStamp(data)
	if s.IngressUs != 1 {
		t.Fatalf("skewed ingress mark = %d, want clamp to 1", s.IngressUs)
	}
	if s.FanoutUs != 1<<32-1 {
		t.Fatalf("overflowing fanout mark = %d, want clamp to MaxUint32", s.FanoutUs)
	}
}

func TestStageStampRefusals(t *testing.T) {
	stamp := int64(5_000_000)
	now := stamp + 1000

	control := &Envelope{Type: TypePlan, Stamp: stamp, Payload: []byte("p")}
	cdata := control.Marshal()
	if _, ok := StampStages(cdata, now, now); ok {
		t.Fatal("StampStages stamped a control envelope")
	}
	if StampFlush(cdata, now) {
		t.Fatal("StampFlush stamped a control envelope")
	}

	unstamped := &Envelope{Type: TypeData, Channel: "c", Payload: []byte("p")}
	udata := unstamped.Marshal()
	if _, ok := StampStages(udata, now, now); ok {
		t.Fatal("StampStages stamped a frame with no publisher stamp")
	}

	if _, ok := StampStages([]byte("not an envelope"), now, now); ok {
		t.Fatal("StampStages stamped garbage")
	}
	if _, ok := StampStages(nil, now, now); ok {
		t.Fatal("StampStages stamped nil")
	}
}

func TestPeekStageStampGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{envelopeMagicStaged},
		[]byte("garbage that is long enough to not be truncated"),
		// Staged magic but truncated before the stage block ends.
		append([]byte{envelopeMagicStaged, byte(TypeData)}, make([]byte, seqHeaderLen+3)...),
	}
	for i, c := range cases {
		if _, ok := PeekStageStamp(c); ok {
			t.Fatalf("case %d: PeekStageStamp accepted garbage %q", i, c)
		}
	}
}

func TestPeekStageStampLegacyFrame(t *testing.T) {
	// A PR 4 frame (legacy magic, no stage block) must decode with zero
	// stage offsets — and refuse in-place stage stamping.
	e := &Envelope{
		Type:    TypeData,
		ID:      ID{Node: 2, Seq: 5},
		Channel: "legacy",
		Payload: []byte("old"),
		Stamp:   987654321,
	}
	data := legacyFrame(e)

	s, ok := PeekStageStamp(data)
	if !ok {
		t.Fatal("PeekStageStamp rejected a legacy frame")
	}
	if s.Type != TypeData || s.Stamp != 987654321 {
		t.Fatalf("legacy peek = %v/%d, want %v/987654321", s.Type, s.Stamp, TypeData)
	}
	if s.IngressUs != 0 || s.FanoutUs != 0 || s.FlushUs != 0 {
		t.Fatalf("legacy frame decoded with stage marks %d/%d/%d", s.IngressUs, s.FanoutUs, s.FlushUs)
	}
	if s.IngressAt() != 0 || s.FanoutAt() != 0 || s.FlushAt() != 0 {
		t.Fatal("unstamped stages must yield zero absolute instants")
	}

	if _, ok := StampStages(data, s.Stamp+1000, s.Stamp+2000); ok {
		t.Fatal("StampStages wrote into a legacy frame with no stage block")
	}
	if StampFlush(data, s.Stamp+1000) {
		t.Fatal("StampFlush wrote into a legacy frame with no stage block")
	}

	// The legacy frame still fully unmarshals, with zero stage fields.
	env, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal(legacy): %v", err)
	}
	if env.Channel != "legacy" || string(env.Payload) != "old" || env.Stamp != 987654321 {
		t.Fatalf("legacy envelope corrupted: %+v", env)
	}
	if env.StageIngressUs != 0 || env.StageFanoutUs != 0 || env.StageFlushUs != 0 {
		t.Fatal("legacy envelope decoded with nonzero stage fields")
	}

	// And the other peeks agree across both layouts.
	if node, ok := PeekNode(data); !ok || node != 2 {
		t.Fatalf("PeekNode(legacy) = %d/%v", node, ok)
	}
	if !StampChannelSeq(data, 4, 17) {
		t.Fatal("StampChannelSeq refused a legacy frame")
	}
	if epoch, seq, ok := PeekChannelSeq(data); !ok || epoch != 4 || seq != 17 {
		t.Fatalf("PeekChannelSeq(legacy) = %d/%d/%v", epoch, seq, ok)
	}
}

func FuzzStageStamp(f *testing.F) {
	f.Add(stagedDataFrame(123456789))
	f.Add(legacyFrame(&Envelope{Type: TypeData, Channel: "c", Stamp: 42}))
	f.Add([]byte{envelopeMagicStaged, byte(TypeData)})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Peeks and in-place stamps must never panic, whatever the bytes.
		s, ok := PeekStageStamp(data)
		if ok {
			// A peekable frame must agree with PeekStamp.
			typ, stamp, ok2 := PeekStamp(data)
			if !ok2 || typ != s.Type || stamp != s.Stamp {
				t.Fatalf("PeekStageStamp %v/%d disagrees with PeekStamp %v/%d (ok=%v)",
					s.Type, s.Stamp, typ, stamp, ok2)
			}
		}
		if stamp, ok := StampStages(data, 1_000_000, 2_000_000); ok {
			if stamp == 0 {
				t.Fatal("StampStages reported ok with zero stamp")
			}
			s2, ok2 := PeekStageStamp(data)
			if !ok2 || s2.IngressUs == 0 || s2.FanoutUs == 0 {
				t.Fatalf("stamped frame does not peek back: %+v ok=%v", s2, ok2)
			}
		}
		StampFlush(data, 3_000_000)
	})
}

func TestPeekStageStampZeroAlloc(t *testing.T) {
	data := stagedDataFrame(time.Now().UnixNano())
	if _, ok := StampStages(data, time.Now().UnixNano(), time.Now().UnixNano()); !ok {
		t.Fatal("StampStages failed")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := PeekStageStamp(data); !ok {
			t.Fatal("peek failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("PeekStageStamp allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkPeekStageStamp(b *testing.B) {
	data := stagedDataFrame(time.Now().UnixNano())
	StampStages(data, time.Now().UnixNano(), time.Now().UnixNano())
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		s, _ := PeekStageStamp(data)
		sink += s.FanoutUs
	}
	_ = sink
}

func BenchmarkStampStages(b *testing.B) {
	data := stagedDataFrame(time.Now().UnixNano())
	now := time.Now().UnixNano()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StampStages(data, now, now+1000)
	}
}

// TestStageBlockLayout pins the wire offsets so an accidental layout change
// breaks loudly rather than silently misattributing stages.
func TestStageBlockLayout(t *testing.T) {
	data := stagedDataFrame(1_000_000)
	if _, ok := StampStages(data, 1_000_000+7000, 1_000_000+13000); !ok {
		t.Fatal("StampStages failed")
	}
	if got := binary.LittleEndian.Uint32(data[18:22]); got != 7 {
		t.Fatalf("ingress at [18,22) = %d, want 7", got)
	}
	if got := binary.LittleEndian.Uint32(data[22:26]); got != 13 {
		t.Fatalf("fanout at [22,26) = %d, want 13", got)
	}
	if !StampFlush(data, 1_000_000+21000) {
		t.Fatal("StampFlush failed")
	}
	if got := binary.LittleEndian.Uint32(data[26:30]); got != 21 {
		t.Fatalf("flush at [26,30) = %d, want 21", got)
	}
}
