package message

import "sync"

// Deduper filters duplicate message IDs. During a reconfiguration a client
// may briefly be subscribed to a channel on both the old and the new pub/sub
// server and receive the same publication twice (§IV-A3 of the paper);
// the client library passes every inbound data message through a Deduper so
// the application sees it exactly once.
//
// Seen IDs are kept in a fixed-capacity FIFO window: once capacity is
// exceeded, the oldest IDs are forgotten. The double-delivery window during
// reconfiguration is short (seconds), so a window of a few thousand messages
// is ample; a forgotten ID could only cause a duplicate if the same message
// were redelivered after thousands of intervening messages, which the
// protocol never does.
type Deduper struct {
	mu   sync.Mutex
	seen map[ID]struct{}
	fifo []ID
	next int // ring index of the oldest entry
}

// DefaultDedupWindow is the number of recent message IDs remembered when no
// explicit capacity is given.
const DefaultDedupWindow = 4096

// NewDeduper creates a Deduper remembering the last capacity IDs.
// A non-positive capacity selects DefaultDedupWindow.
func NewDeduper(capacity int) *Deduper {
	if capacity <= 0 {
		capacity = DefaultDedupWindow
	}
	return &Deduper{
		seen: make(map[ID]struct{}, capacity),
		fifo: make([]ID, capacity),
	}
}

// Observe records the ID and reports whether it was seen before.
// Zero IDs (messages without an ID) are never considered duplicates.
func (d *Deduper) Observe(id ID) (duplicate bool) {
	if id.IsZero() {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.seen[id]; ok {
		return true
	}
	// Evict the slot we are about to overwrite.
	if old := d.fifo[d.next]; !old.IsZero() {
		delete(d.seen, old)
	}
	d.fifo[d.next] = id
	d.next = (d.next + 1) % len(d.fifo)
	d.seen[id] = struct{}{}
	return false
}

// Len returns the number of IDs currently remembered.
func (d *Deduper) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seen)
}
