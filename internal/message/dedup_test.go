package message

import (
	"sync"
	"testing"
)

func TestDeduperBasic(t *testing.T) {
	d := NewDeduper(8)
	a := ID{Node: 1, Seq: 1}
	b := ID{Node: 1, Seq: 2}
	if d.Observe(a) {
		t.Fatal("first observation reported duplicate")
	}
	if !d.Observe(a) {
		t.Fatal("second observation not reported duplicate")
	}
	if d.Observe(b) {
		t.Fatal("distinct ID reported duplicate")
	}
	if got := d.Len(); got != 2 {
		t.Fatalf("Len=%d, want 2", got)
	}
}

func TestDeduperZeroIDNeverDuplicate(t *testing.T) {
	d := NewDeduper(4)
	for i := 0; i < 10; i++ {
		if d.Observe(ID{}) {
			t.Fatal("zero ID reported duplicate")
		}
	}
	if d.Len() != 0 {
		t.Fatal("zero IDs must not be remembered")
	}
}

func TestDeduperEviction(t *testing.T) {
	const capacity = 16
	d := NewDeduper(capacity)
	for seq := uint64(1); seq <= capacity+4; seq++ {
		d.Observe(ID{Node: 1, Seq: seq})
	}
	// The first 4 IDs fell out of the window; re-observing them is "new".
	for seq := uint64(1); seq <= 4; seq++ {
		if d.Observe(ID{Node: 1, Seq: seq}) {
			t.Fatalf("evicted ID seq=%d still reported duplicate", seq)
		}
	}
	// Recent IDs are still remembered. Observing seq 1..4 above evicted the
	// then-oldest entries 5..8, so check only the newest 4.
	for seq := uint64(capacity + 1); seq <= capacity+4; seq++ {
		if !d.Observe(ID{Node: 1, Seq: seq}) {
			t.Fatalf("recent ID seq=%d forgotten", seq)
		}
	}
	if got := d.Len(); got > capacity {
		t.Fatalf("Len=%d exceeds capacity %d", got, capacity)
	}
}

func TestDeduperDefaultCapacity(t *testing.T) {
	d := NewDeduper(0)
	for seq := uint64(1); seq <= DefaultDedupWindow; seq++ {
		if d.Observe(ID{Node: 2, Seq: seq}) {
			t.Fatalf("fresh ID seq=%d reported duplicate", seq)
		}
	}
	if got := d.Len(); got != DefaultDedupWindow {
		t.Fatalf("Len=%d, want %d", got, DefaultDedupWindow)
	}
}

func TestDeduperConcurrent(t *testing.T) {
	d := NewDeduper(1 << 16)
	const workers = 8
	const per = 2000
	dups := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			// All workers observe the same ID stream; each ID must be
			// reported new exactly once across all workers.
			for seq := uint64(1); seq <= per; seq++ {
				if d.Observe(ID{Node: 3, Seq: seq}) {
					n++
				}
			}
			dups <- n
		}()
	}
	wg.Wait()
	close(dups)
	total := 0
	for n := range dups {
		total += n
	}
	if want := per * (workers - 1); total != want {
		t.Fatalf("duplicate count=%d, want %d", total, want)
	}
}
