package message

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestCursorRoundTrip(t *testing.T) {
	cases := []Cursor{
		{},
		{SinceStamp: 1},
		{SinceStamp: 1723300000000000000},
		{Seen: []EpochSeq{{Epoch: 1, Seq: 0}}},
		{SinceStamp: 42, Seen: []EpochSeq{{Epoch: 7, Seq: 99}, {Epoch: 1<<63 - 1, Seq: 1<<64 - 1}}},
	}
	for _, want := range cases {
		blob := MarshalCursor(want)
		got, err := UnmarshalCursor(blob)
		if err != nil {
			t.Fatalf("UnmarshalCursor(%+v): %v", want, err)
		}
		if got.SinceStamp != want.SinceStamp || len(got.Seen) != len(want.Seen) {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
		for i := range want.Seen {
			if got.Seen[i] != want.Seen[i] {
				t.Fatalf("round trip %+v -> %+v", want, got)
			}
		}
	}
}

func TestCursorRejectsCorruption(t *testing.T) {
	good := MarshalCursor(Cursor{SinceStamp: 99, Seen: []EpochSeq{{Epoch: 3, Seq: 17}}})
	bad := [][]byte{
		nil,
		good[:len(good)-1],           // truncated mid-pair
		append(bytes.Clone(good), 0), // trailing byte
		binary.AppendUvarint(nil, 1), // count promised, pairs missing
		binary.AppendUvarint(binary.AppendUvarint(nil, 0), maxCursorEpochs+1), // count over bound
	}
	for i, blob := range bad {
		if _, err := UnmarshalCursor(blob); err == nil {
			t.Fatalf("case %d: corrupt blob %x decoded", i, blob)
		}
	}
}

func TestCursorSeqFor(t *testing.T) {
	c := Cursor{Seen: []EpochSeq{{Epoch: 5, Seq: 10}, {Epoch: 9, Seq: 2}}}
	if seq, ok := c.SeqFor(9); !ok || seq != 2 {
		t.Fatalf("SeqFor(9) = %d, %v", seq, ok)
	}
	if _, ok := c.SeqFor(4); ok {
		t.Fatal("SeqFor(4) found a position in an unknown epoch")
	}
}

// FuzzCursor drives UnmarshalCursor with arbitrary bytes: it must never
// panic, and whatever decodes must re-encode to a blob that decodes to the
// same cursor (the encoding is canonical — no trailing bytes, bounded epoch
// count).
func FuzzCursor(f *testing.F) {
	f.Add([]byte{})
	f.Add(MarshalCursor(Cursor{SinceStamp: 1}))
	f.Add(MarshalCursor(Cursor{SinceStamp: 42, Seen: []EpochSeq{{Epoch: 7, Seq: 99}}}))
	f.Add([]byte{0x80})  // unterminated uvarint
	f.Add([]byte{0, 64}) // count at the bound, no pairs
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCursor(data)
		if err != nil {
			return
		}
		if len(c.Seen) > maxCursorEpochs {
			t.Fatalf("decoded %d epochs, bound is %d", len(c.Seen), maxCursorEpochs)
		}
		blob := MarshalCursor(c)
		c2, err := UnmarshalCursor(blob)
		if err != nil {
			t.Fatalf("re-decode of %x (from %x): %v", blob, data, err)
		}
		if c2.SinceStamp != c.SinceStamp || len(c2.Seen) != len(c.Seen) {
			t.Fatalf("re-encode changed cursor: %+v -> %+v", c, c2)
		}
		for i := range c.Seen {
			if c2.Seen[i] != c.Seen[i] {
				t.Fatalf("re-encode changed cursor: %+v -> %+v", c, c2)
			}
		}
	})
}
