// Package message defines the wire-level envelope that all Dynamoth traffic —
// application publications as well as control messages (switch notifications,
// wrong-server redirects, plans, load reports) — is wrapped in before being
// handed to the underlying pub/sub substrate.
//
// The paper (§IV-3) requires globally unique message identifiers so that the
// client library can deliver each publication exactly once even when a
// reconfiguration causes it to arrive over two servers. IDs here are a
// (node, sequence) pair which is unique without coordination.
package message

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Type discriminates envelope kinds on the wire.
type Type uint8

// Envelope types. TypeData carries an application payload; all others are
// Dynamoth control traffic (§IV of the paper).
const (
	// TypeData is an application publication.
	TypeData Type = iota + 1
	// TypeSwitch asks subscribers of a channel to move to new server(s);
	// emitted by a dispatcher on the first post-plan publication (§IV-A2).
	TypeSwitch
	// TypeWrongServer tells a publisher it used an outdated server for a
	// channel and names the correct one (§IV "Publishing on old server").
	TypeWrongServer
	// TypePlan carries a new global plan from the load balancer to the
	// dispatchers (§IV-A1).
	TypePlan
	// TypeLoadReport carries aggregated LLA metrics to the load balancer
	// (§III-A).
	TypeLoadReport
	// TypeDrained notifies the dispatcher of the new server that the old
	// server has no subscribers left for a channel, so new→old forwarding
	// can stop (§IV-A5).
	TypeDrained
	// TypeForwarded marks a publication relayed between dispatchers during
	// reconfiguration so it is not re-forwarded (loop prevention).
	TypeForwarded
)

// String returns a short human-readable name for the envelope type.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeSwitch:
		return "switch"
	case TypeWrongServer:
		return "wrong-server"
	case TypePlan:
		return "plan"
	case TypeLoadReport:
		return "load-report"
	case TypeDrained:
		return "drained"
	case TypeForwarded:
		return "forwarded"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ID is a globally unique message identifier: the originating node's numeric
// ID plus a per-node sequence number.
type ID struct {
	Node uint32
	Seq  uint64
}

// IsZero reports whether the ID is the zero value (no ID assigned).
func (id ID) IsZero() bool { return id.Node == 0 && id.Seq == 0 }

// String formats the ID as "node:seq".
func (id ID) String() string { return fmt.Sprintf("%d:%d", id.Node, id.Seq) }

// Envelope is the unit of transmission. Exactly which fields are meaningful
// depends on Type; unused fields are zero and cost one byte each on the wire.
type Envelope struct {
	Type    Type
	ID      ID
	Channel string // application channel the envelope concerns
	Payload []byte // application payload or encoded control body

	// Stamp is the publish time in Unix nanoseconds (0 = unstamped). Clients
	// stamp data publications on send so every hop — broker fan-out,
	// dispatcher forwarding, subscriber delivery — can observe end-to-end
	// latency against its own clock (the quantity behind the paper's latency
	// CDFs). Across real machines the measurement inherits clock skew;
	// in-process and simulated deployments share one clock.
	Stamp int64

	// Servers names pub/sub servers for TypeSwitch (the new server set) and
	// TypeWrongServer (the correct server set).
	Servers []string
	// RingServers carries the plan's consistent-hash ring membership on
	// switch/redirect notifications, so clients keep their fallback ring in
	// step with the active server set (§II-C: clients hash over the
	// current servers).
	RingServers []string
	// Strategy is the plan.Strategy for the channel, carried with switch and
	// wrong-server messages so clients can honor replication (encoded as a
	// raw byte here to avoid an import cycle).
	Strategy uint8
	// PlanVersion is the plan version this control message derives from.
	PlanVersion uint64

	// Epoch and ChannelSeq are the broker-assigned per-channel replay
	// coordinates. Publishers encode zeros; the home broker stamps both in
	// place (StampChannelSeq) when it appends the frame to the channel's
	// replay ring. Epoch identifies one ring incarnation on one broker, so a
	// client can tell "same stream, later sequence" from "different broker
	// (or recreated ring), start a fresh baseline". They live in a
	// fixed-width header region so stamping never shifts the encoding.
	Epoch      uint64
	ChannelSeq uint64
}

const envelopeMagic = 0xD7

// seqHeaderLen is the fixed-width (epoch, channelSeq) region between the
// magic/type bytes and the varint fields: two little-endian uint64s at
// offsets [2,10) and [10,18). Fixed width is what makes in-place broker
// stamping possible on an already-encoded frame.
const seqHeaderLen = 16

// envelopeHeaderLen is magic + type + the fixed sequence header.
const envelopeHeaderLen = 2 + seqHeaderLen

// Encoding errors.
var (
	ErrTruncated  = errors.New("message: truncated envelope")
	ErrBadMagic   = errors.New("message: bad envelope magic byte")
	ErrFieldRange = errors.New("message: field exceeds sane bounds")
)

// maxFieldLen bounds string/slice fields to keep a corrupted length prefix
// from allocating unbounded memory.
const maxFieldLen = 1 << 24

// Marshal encodes the envelope into a compact binary form.
//
// Layout: magic, type, epoch(8, LE), channelSeq(8, LE),
// planVersion(uvarint), node(uvarint), seq(uvarint), stamp(uvarint),
// channel(len-prefixed), strategy, servers(count + len-prefixed each),
// payload (remainder).
func (e *Envelope) Marshal() []byte {
	n := envelopeHeaderLen +
		binary.MaxVarintLen64*4 +
		binary.MaxVarintLen32 + len(e.Channel) +
		1 + // strategy
		2*binary.MaxVarintLen32
	for _, s := range e.Servers {
		n += binary.MaxVarintLen32 + len(s)
	}
	for _, s := range e.RingServers {
		n += binary.MaxVarintLen32 + len(s)
	}
	n += len(e.Payload)
	return e.AppendMarshal(make([]byte, 0, n))
}

// AppendMarshal appends the envelope's encoding to dst and returns the
// extended slice (append semantics, like strconv.AppendInt). A caller with a
// reusable scratch buffer — e.g. one from GetBuffer — encodes a publication
// with zero allocations.
func (e *Envelope) AppendMarshal(dst []byte) []byte {
	dst = append(dst, envelopeMagic, byte(e.Type))
	dst = binary.LittleEndian.AppendUint64(dst, e.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, e.ChannelSeq)
	dst = binary.AppendUvarint(dst, e.PlanVersion)
	dst = binary.AppendUvarint(dst, uint64(e.ID.Node))
	dst = binary.AppendUvarint(dst, e.ID.Seq)
	dst = binary.AppendUvarint(dst, uint64(e.Stamp))
	dst = appendString(dst, e.Channel)
	dst = append(dst, e.Strategy)
	dst = binary.AppendUvarint(dst, uint64(len(e.Servers)))
	for _, s := range e.Servers {
		dst = appendString(dst, s)
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.RingServers)))
	for _, s := range e.RingServers {
		dst = appendString(dst, s)
	}
	return append(dst, e.Payload...)
}

// maxPooledBuf bounds the capacity of buffers kept in the marshal pool, so
// one giant payload does not pin its buffer forever.
const maxPooledBuf = 64 << 10

// marshalPool recycles AppendMarshal scratch buffers for publish hot paths.
var marshalPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetBuffer returns a pooled scratch buffer for AppendMarshal. Encode with
// buf := message.GetBuffer(); data := env.AppendMarshal((*buf)[:0]) and hand
// the buffer back with PutBuffer once nothing references the encoded bytes —
// only safe when every consumer of data finishes with it before the release
// (e.g. a transport that copies the payload out before Publish returns).
func GetBuffer() *[]byte { return marshalPool.Get().(*[]byte) }

// PutBuffer returns a GetBuffer buffer to the pool. Store the final slice
// back first (*buf = data) so the grown capacity is what gets recycled.
func PutBuffer(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	marshalPool.Put(b)
}

// Unmarshal decodes an envelope previously produced by Marshal. The returned
// envelope's Payload aliases data; callers that retain the payload past the
// lifetime of data must copy it.
func Unmarshal(data []byte) (*Envelope, error) {
	if len(data) < 2 {
		return nil, ErrTruncated
	}
	if data[0] != envelopeMagic {
		return nil, ErrBadMagic
	}
	if len(data) < envelopeHeaderLen {
		return nil, ErrTruncated
	}
	e := &Envelope{
		Type:       Type(data[1]),
		Epoch:      binary.LittleEndian.Uint64(data[2:10]),
		ChannelSeq: binary.LittleEndian.Uint64(data[10:18]),
	}
	rest := data[envelopeHeaderLen:]

	var err error
	var u uint64
	if u, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	e.PlanVersion = u
	if u, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	if u > math.MaxUint32 {
		return nil, ErrFieldRange
	}
	e.ID.Node = uint32(u)
	if u, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	e.ID.Seq = u
	if u, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	e.Stamp = int64(u)
	if e.Channel, rest, err = readString(rest); err != nil {
		return nil, err
	}
	if len(rest) < 1 {
		return nil, ErrTruncated
	}
	e.Strategy = rest[0]
	rest = rest[1:]
	if u, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	if u > maxFieldLen {
		return nil, ErrFieldRange
	}
	if u > 0 {
		e.Servers = make([]string, u)
		for i := range e.Servers {
			if e.Servers[i], rest, err = readString(rest); err != nil {
				return nil, err
			}
		}
	}
	if u, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	if u > maxFieldLen {
		return nil, ErrFieldRange
	}
	if u > 0 {
		e.RingServers = make([]string, u)
		for i := range e.RingServers {
			if e.RingServers[i], rest, err = readString(rest); err != nil {
				return nil, err
			}
		}
	}
	if len(rest) > 0 {
		e.Payload = rest
	}
	return e, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readUvarint(data []byte) (uint64, []byte, error) {
	u, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return u, data[n:], nil
}

func readString(data []byte) (string, []byte, error) {
	u, rest, err := readUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if u > maxFieldLen {
		return "", nil, ErrFieldRange
	}
	if uint64(len(rest)) < u {
		return "", nil, ErrTruncated
	}
	return string(rest[:u]), rest[u:], nil
}

// WireSize returns the exact encoded size of the envelope. It is used by the
// simulator's bandwidth model so simulated byte counts equal live byte counts.
func (e *Envelope) WireSize() int { return len(e.Marshal()) }

// PeekStamp extracts the envelope type and publish stamp from an encoded
// envelope without decoding (or allocating) anything else. It exists for the
// broker-side latency observer, which runs on the publish hot path and must
// not pay the full Unmarshal. ok is false for non-envelope payloads.
// PeekNode extracts the originating node ID from an encoded envelope without
// decoding it. Like PeekStamp it is allocation-free: the LLA calls it on the
// broker's publish hot path for every message, where a full Unmarshal would
// heap-allocate an Envelope per publication.
func PeekNode(data []byte) (node uint32, ok bool) {
	if len(data) < envelopeHeaderLen || data[0] != envelopeMagic {
		return 0, false
	}
	rest := data[envelopeHeaderLen:]
	_, n := binary.Uvarint(rest) // skip planVersion
	if n <= 0 {
		return 0, false
	}
	u, n := binary.Uvarint(rest[n:])
	if n <= 0 || u > math.MaxUint32 {
		return 0, false
	}
	return uint32(u), true
}

func PeekStamp(data []byte) (t Type, stamp int64, ok bool) {
	if len(data) < envelopeHeaderLen || data[0] != envelopeMagic {
		return 0, 0, false
	}
	t = Type(data[1])
	rest := data[envelopeHeaderLen:]
	for i := 0; i < 3; i++ { // skip planVersion, node, seq
		_, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, 0, false
		}
		rest = rest[n:]
	}
	u, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, 0, false
	}
	return t, int64(u), true
}

// StampChannelSeq writes the broker-assigned replay coordinates into an
// already-encoded data envelope in place. It stamps only TypeData and
// TypeForwarded frames (control envelopes and raw payloads are left
// untouched) and reports whether it stamped. The caller must exclusively own
// data: the broker's publish path stamps the frame it is about to fan out,
// before any subscriber sees it.
func StampChannelSeq(data []byte, epoch, seq uint64) bool {
	if len(data) < envelopeHeaderLen || data[0] != envelopeMagic {
		return false
	}
	if t := Type(data[1]); t != TypeData && t != TypeForwarded {
		return false
	}
	binary.LittleEndian.PutUint64(data[2:10], epoch)
	binary.LittleEndian.PutUint64(data[10:18], seq)
	return true
}

// PeekChannelSeq extracts the replay coordinates from an encoded envelope
// without decoding anything else. ok is false for non-envelope payloads and
// for envelopes never stamped by a replay-enabled broker (epoch 0).
func PeekChannelSeq(data []byte) (epoch, seq uint64, ok bool) {
	if len(data) < envelopeHeaderLen || data[0] != envelopeMagic {
		return 0, 0, false
	}
	epoch = binary.LittleEndian.Uint64(data[2:10])
	seq = binary.LittleEndian.Uint64(data[10:18])
	return epoch, seq, epoch != 0
}

// Generator allocates globally unique message IDs for one node. The zero
// value is not usable; create one with NewGenerator.
type Generator struct {
	node uint32
	seq  atomic.Uint64
}

// NewGenerator returns an ID generator for the given non-zero node ID.
func NewGenerator(node uint32) *Generator {
	if node == 0 {
		panic("message: node ID must be non-zero")
	}
	return &Generator{node: node}
}

// Next returns a fresh unique ID. It is safe for concurrent use.
func (g *Generator) Next() ID {
	return ID{Node: g.node, Seq: g.seq.Add(1)}
}

// Node returns the node component embedded in IDs from this generator.
func (g *Generator) Node() uint32 { return g.node }
