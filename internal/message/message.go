// Package message defines the wire-level envelope that all Dynamoth traffic —
// application publications as well as control messages (switch notifications,
// wrong-server redirects, plans, load reports) — is wrapped in before being
// handed to the underlying pub/sub substrate.
//
// The paper (§IV-3) requires globally unique message identifiers so that the
// client library can deliver each publication exactly once even when a
// reconfiguration causes it to arrive over two servers. IDs here are a
// (node, sequence) pair which is unique without coordination.
package message

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Type discriminates envelope kinds on the wire.
type Type uint8

// Envelope types. TypeData carries an application payload; all others are
// Dynamoth control traffic (§IV of the paper).
const (
	// TypeData is an application publication.
	TypeData Type = iota + 1
	// TypeSwitch asks subscribers of a channel to move to new server(s);
	// emitted by a dispatcher on the first post-plan publication (§IV-A2).
	TypeSwitch
	// TypeWrongServer tells a publisher it used an outdated server for a
	// channel and names the correct one (§IV "Publishing on old server").
	TypeWrongServer
	// TypePlan carries a new global plan from the load balancer to the
	// dispatchers (§IV-A1).
	TypePlan
	// TypeLoadReport carries aggregated LLA metrics to the load balancer
	// (§III-A).
	TypeLoadReport
	// TypeDrained notifies the dispatcher of the new server that the old
	// server has no subscribers left for a channel, so new→old forwarding
	// can stop (§IV-A5).
	TypeDrained
	// TypeForwarded marks a publication relayed between dispatchers during
	// reconfiguration so it is not re-forwarded (loop prevention).
	TypeForwarded
)

// String returns a short human-readable name for the envelope type.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeSwitch:
		return "switch"
	case TypeWrongServer:
		return "wrong-server"
	case TypePlan:
		return "plan"
	case TypeLoadReport:
		return "load-report"
	case TypeDrained:
		return "drained"
	case TypeForwarded:
		return "forwarded"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ID is a globally unique message identifier: the originating node's numeric
// ID plus a per-node sequence number.
type ID struct {
	Node uint32
	Seq  uint64
}

// IsZero reports whether the ID is the zero value (no ID assigned).
func (id ID) IsZero() bool { return id.Node == 0 && id.Seq == 0 }

// String formats the ID as "node:seq".
func (id ID) String() string { return fmt.Sprintf("%d:%d", id.Node, id.Seq) }

// Envelope is the unit of transmission. Exactly which fields are meaningful
// depends on Type; unused fields are zero and cost one byte each on the wire.
type Envelope struct {
	Type    Type
	ID      ID
	Channel string // application channel the envelope concerns
	Payload []byte // application payload or encoded control body

	// Stamp is the publish time in Unix nanoseconds (0 = unstamped). Clients
	// stamp data publications on send so every hop — broker fan-out,
	// dispatcher forwarding, subscriber delivery — can observe end-to-end
	// latency against its own clock (the quantity behind the paper's latency
	// CDFs). Across real machines the measurement inherits clock skew;
	// in-process and simulated deployments share one clock.
	Stamp int64

	// Servers names pub/sub servers for TypeSwitch (the new server set) and
	// TypeWrongServer (the correct server set).
	Servers []string
	// RingServers carries the plan's consistent-hash ring membership on
	// switch/redirect notifications, so clients keep their fallback ring in
	// step with the active server set (§II-C: clients hash over the
	// current servers).
	RingServers []string
	// Strategy is the plan.Strategy for the channel, carried with switch and
	// wrong-server messages so clients can honor replication (encoded as a
	// raw byte here to avoid an import cycle).
	Strategy uint8
	// PlanVersion is the plan version this control message derives from.
	PlanVersion uint64

	// Epoch and ChannelSeq are the broker-assigned per-channel replay
	// coordinates. Publishers encode zeros; the home broker stamps both in
	// place (StampChannelSeq) when it appends the frame to the channel's
	// replay ring. Epoch identifies one ring incarnation on one broker, so a
	// client can tell "same stream, later sequence" from "different broker
	// (or recreated ring), start a fresh baseline". They live in a
	// fixed-width header region so stamping never shifts the encoding.
	Epoch      uint64
	ChannelSeq uint64

	// StageIngressUs, StageFanoutUs and StageFlushUs are the per-stage
	// latency waterfall marks: microsecond offsets from Stamp at which the
	// frame crossed broker ingress (Publish entry), fanout enqueue (handed to
	// the first subscriber queue) and writer flush. Publishers encode zeros;
	// the home broker stamps ingress and fanout in place (StampStages) while
	// it still exclusively owns the frame. The flush slot exists for sinks
	// that own a private copy of the frame; the shared-fanout cores instead
	// observe flush age broker-side. 0 means "not stamped"; real marks are
	// clamped to >= 1µs. Like the replay coordinates they live in a
	// fixed-width header region so stamping never shifts the encoding.
	StageIngressUs uint32
	StageFanoutUs  uint32
	StageFlushUs   uint32
}

// Envelope magics. Legacy (pre-stage) frames carry envelopeMagic and no
// stage block; frames marshaled by this version carry envelopeMagicStaged
// plus the fixed 12-byte stage block. Decoders accept both — a legacy frame
// simply has zero stage marks.
const (
	envelopeMagic       = 0xD7
	envelopeMagicStaged = 0xD8
)

// seqHeaderLen is the fixed-width (epoch, channelSeq) region between the
// magic/type bytes and the varint fields: two little-endian uint64s at
// offsets [2,10) and [10,18). Fixed width is what makes in-place broker
// stamping possible on an already-encoded frame.
const seqHeaderLen = 16

// stageHeaderLen is the fixed-width stage block on staged envelopes: three
// little-endian uint32 microsecond offsets (ingress, fanout, flush) at
// [18,22), [22,26), [26,30).
const stageHeaderLen = 12

// envelopeHeaderLen is magic + type + the fixed sequence header (legacy
// frames); staged frames additionally carry the stage block.
const envelopeHeaderLen = 2 + seqHeaderLen

// stagedHeaderLen is the full fixed header of a staged envelope.
const stagedHeaderLen = envelopeHeaderLen + stageHeaderLen

// Stage block byte offsets within a staged envelope.
const (
	stageIngressOff = envelopeHeaderLen
	stageFanoutOff  = envelopeHeaderLen + 4
	stageFlushOff   = envelopeHeaderLen + 8
)

// peekHeader validates the envelope magic and returns the fixed-header
// length (after which the uvarint fields begin) and whether the frame
// carries a stage block. ok is false for non-envelope payloads.
func peekHeader(data []byte) (hdr int, staged, ok bool) {
	if len(data) < envelopeHeaderLen {
		return 0, false, false
	}
	switch data[0] {
	case envelopeMagic:
		return envelopeHeaderLen, false, true
	case envelopeMagicStaged:
		if len(data) < stagedHeaderLen {
			return 0, false, false
		}
		return stagedHeaderLen, true, true
	}
	return 0, false, false
}

// Encoding errors.
var (
	ErrTruncated  = errors.New("message: truncated envelope")
	ErrBadMagic   = errors.New("message: bad envelope magic byte")
	ErrFieldRange = errors.New("message: field exceeds sane bounds")
)

// maxFieldLen bounds string/slice fields to keep a corrupted length prefix
// from allocating unbounded memory.
const maxFieldLen = 1 << 24

// Marshal encodes the envelope into a compact binary form.
//
// Layout: magic, type, epoch(8, LE), channelSeq(8, LE), ingressUs(4, LE),
// fanoutUs(4, LE), flushUs(4, LE), planVersion(uvarint), node(uvarint),
// seq(uvarint), stamp(uvarint), channel(len-prefixed), strategy,
// servers(count + len-prefixed each), payload (remainder).
func (e *Envelope) Marshal() []byte {
	n := stagedHeaderLen +
		binary.MaxVarintLen64*4 +
		binary.MaxVarintLen32 + len(e.Channel) +
		1 + // strategy
		2*binary.MaxVarintLen32
	for _, s := range e.Servers {
		n += binary.MaxVarintLen32 + len(s)
	}
	for _, s := range e.RingServers {
		n += binary.MaxVarintLen32 + len(s)
	}
	n += len(e.Payload)
	return e.AppendMarshal(make([]byte, 0, n))
}

// AppendMarshal appends the envelope's encoding to dst and returns the
// extended slice (append semantics, like strconv.AppendInt). A caller with a
// reusable scratch buffer — e.g. one from GetBuffer — encodes a publication
// with zero allocations.
func (e *Envelope) AppendMarshal(dst []byte) []byte {
	dst = append(dst, envelopeMagicStaged, byte(e.Type))
	dst = binary.LittleEndian.AppendUint64(dst, e.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, e.ChannelSeq)
	dst = binary.LittleEndian.AppendUint32(dst, e.StageIngressUs)
	dst = binary.LittleEndian.AppendUint32(dst, e.StageFanoutUs)
	dst = binary.LittleEndian.AppendUint32(dst, e.StageFlushUs)
	dst = binary.AppendUvarint(dst, e.PlanVersion)
	dst = binary.AppendUvarint(dst, uint64(e.ID.Node))
	dst = binary.AppendUvarint(dst, e.ID.Seq)
	dst = binary.AppendUvarint(dst, uint64(e.Stamp))
	dst = appendString(dst, e.Channel)
	dst = append(dst, e.Strategy)
	dst = binary.AppendUvarint(dst, uint64(len(e.Servers)))
	for _, s := range e.Servers {
		dst = appendString(dst, s)
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.RingServers)))
	for _, s := range e.RingServers {
		dst = appendString(dst, s)
	}
	return append(dst, e.Payload...)
}

// maxPooledBuf bounds the capacity of buffers kept in the marshal pool, so
// one giant payload does not pin its buffer forever.
const maxPooledBuf = 64 << 10

// marshalPool recycles AppendMarshal scratch buffers for publish hot paths.
var marshalPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetBuffer returns a pooled scratch buffer for AppendMarshal. Encode with
// buf := message.GetBuffer(); data := env.AppendMarshal((*buf)[:0]) and hand
// the buffer back with PutBuffer once nothing references the encoded bytes —
// only safe when every consumer of data finishes with it before the release
// (e.g. a transport that copies the payload out before Publish returns).
func GetBuffer() *[]byte { return marshalPool.Get().(*[]byte) }

// PutBuffer returns a GetBuffer buffer to the pool. Store the final slice
// back first (*buf = data) so the grown capacity is what gets recycled.
func PutBuffer(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	marshalPool.Put(b)
}

// Unmarshal decodes an envelope previously produced by Marshal. The returned
// envelope's Payload aliases data; callers that retain the payload past the
// lifetime of data must copy it.
func Unmarshal(data []byte) (*Envelope, error) {
	if len(data) < 2 {
		return nil, ErrTruncated
	}
	if data[0] != envelopeMagic && data[0] != envelopeMagicStaged {
		return nil, ErrBadMagic
	}
	hdr, staged, ok := peekHeader(data)
	if !ok {
		return nil, ErrTruncated
	}
	e := &Envelope{
		Type:       Type(data[1]),
		Epoch:      binary.LittleEndian.Uint64(data[2:10]),
		ChannelSeq: binary.LittleEndian.Uint64(data[10:18]),
	}
	if staged {
		e.StageIngressUs = binary.LittleEndian.Uint32(data[stageIngressOff:])
		e.StageFanoutUs = binary.LittleEndian.Uint32(data[stageFanoutOff:])
		e.StageFlushUs = binary.LittleEndian.Uint32(data[stageFlushOff:])
	}
	rest := data[hdr:]

	var err error
	var u uint64
	if u, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	e.PlanVersion = u
	if u, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	if u > math.MaxUint32 {
		return nil, ErrFieldRange
	}
	e.ID.Node = uint32(u)
	if u, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	e.ID.Seq = u
	if u, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	e.Stamp = int64(u)
	if e.Channel, rest, err = readString(rest); err != nil {
		return nil, err
	}
	if len(rest) < 1 {
		return nil, ErrTruncated
	}
	e.Strategy = rest[0]
	rest = rest[1:]
	if u, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	if u > maxFieldLen {
		return nil, ErrFieldRange
	}
	if u > 0 {
		e.Servers = make([]string, u)
		for i := range e.Servers {
			if e.Servers[i], rest, err = readString(rest); err != nil {
				return nil, err
			}
		}
	}
	if u, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	if u > maxFieldLen {
		return nil, ErrFieldRange
	}
	if u > 0 {
		e.RingServers = make([]string, u)
		for i := range e.RingServers {
			if e.RingServers[i], rest, err = readString(rest); err != nil {
				return nil, err
			}
		}
	}
	if len(rest) > 0 {
		e.Payload = rest
	}
	return e, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readUvarint(data []byte) (uint64, []byte, error) {
	u, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return u, data[n:], nil
}

func readString(data []byte) (string, []byte, error) {
	u, rest, err := readUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if u > maxFieldLen {
		return "", nil, ErrFieldRange
	}
	if uint64(len(rest)) < u {
		return "", nil, ErrTruncated
	}
	return string(rest[:u]), rest[u:], nil
}

// WireSize returns the exact encoded size of the envelope. It is used by the
// simulator's bandwidth model so simulated byte counts equal live byte counts.
func (e *Envelope) WireSize() int { return len(e.Marshal()) }

// PeekStamp extracts the envelope type and publish stamp from an encoded
// envelope without decoding (or allocating) anything else. It exists for the
// broker-side latency observer, which runs on the publish hot path and must
// not pay the full Unmarshal. ok is false for non-envelope payloads.
// PeekNode extracts the originating node ID from an encoded envelope without
// decoding it. Like PeekStamp it is allocation-free: the LLA calls it on the
// broker's publish hot path for every message, where a full Unmarshal would
// heap-allocate an Envelope per publication.
func PeekNode(data []byte) (node uint32, ok bool) {
	hdr, _, ok := peekHeader(data)
	if !ok {
		return 0, false
	}
	rest := data[hdr:]
	_, n := binary.Uvarint(rest) // skip planVersion
	if n <= 0 {
		return 0, false
	}
	u, n := binary.Uvarint(rest[n:])
	if n <= 0 || u > math.MaxUint32 {
		return 0, false
	}
	return uint32(u), true
}

func PeekStamp(data []byte) (t Type, stamp int64, ok bool) {
	hdr, _, ok := peekHeader(data)
	if !ok {
		return 0, 0, false
	}
	t = Type(data[1])
	rest := data[hdr:]
	for i := 0; i < 3; i++ { // skip planVersion, node, seq
		_, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, 0, false
		}
		rest = rest[n:]
	}
	u, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, 0, false
	}
	return t, int64(u), true
}

// StageStamp is the zero-alloc view of a frame's latency waterfall marks:
// the publisher's send stamp plus the broker's in-place stage offsets.
// Offsets are microseconds from Stamp; 0 means the stage was never stamped
// (legacy frame, control envelope, or a broker without stage stamping).
type StageStamp struct {
	Type      Type
	Stamp     int64 // publisher send time, Unix nanoseconds (0 = unstamped)
	IngressUs uint32
	FanoutUs  uint32
	FlushUs   uint32
}

// IngressAt, FanoutAt and FlushAt return the absolute Unix-nanosecond
// instants of the stamped stages (0 when the stage is unstamped).
func (s StageStamp) IngressAt() int64 { return stageAt(s.Stamp, s.IngressUs) }
func (s StageStamp) FanoutAt() int64  { return stageAt(s.Stamp, s.FanoutUs) }
func (s StageStamp) FlushAt() int64   { return stageAt(s.Stamp, s.FlushUs) }

func stageAt(stamp int64, us uint32) int64 {
	if stamp == 0 || us == 0 {
		return 0
	}
	return stamp + int64(us)*1000
}

// PeekStageStamp extracts the full multi-stage stamp from an encoded
// envelope without decoding (or allocating) anything else — the stage
// sibling of PeekStamp, and like it safe to call on the hot path. Legacy
// (pre-stage) envelopes decode with zero stage offsets; ok is false only
// for non-envelope payloads.
func PeekStageStamp(data []byte) (s StageStamp, ok bool) {
	_, staged, ok := peekHeader(data)
	if !ok {
		return StageStamp{}, false
	}
	t, stamp, ok := PeekStamp(data)
	if !ok {
		return StageStamp{}, false
	}
	s = StageStamp{Type: t, Stamp: stamp}
	if staged {
		s.IngressUs = binary.LittleEndian.Uint32(data[stageIngressOff:])
		s.FanoutUs = binary.LittleEndian.Uint32(data[stageFanoutOff:])
		s.FlushUs = binary.LittleEndian.Uint32(data[stageFlushOff:])
	}
	return s, true
}

// stageDeltaUs converts an absolute stage instant into the on-wire
// microsecond offset from stamp: clamped to [1, MaxUint32] so a genuine
// mark is never encoded as "unstamped" and clock skew never wraps.
func stageDeltaUs(stamp, at int64) uint32 {
	d := (at - stamp) / 1000
	if d < 1 {
		return 1
	}
	if d > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(d)
}

// StampStages writes the broker's ingress and fanout-enqueue marks into an
// already-encoded staged data envelope in place, and returns the frame's
// publisher stamp so the caller can derive stage ages without a second
// peek. It stamps only TypeData and TypeForwarded frames whose publisher
// stamp is set; everything else (control envelopes, legacy frames, raw
// payloads) is left untouched with ok false. Like StampChannelSeq, the
// caller must exclusively own data — the broker stamps before the first
// subscriber queue sees the frame.
func StampStages(data []byte, ingressNanos, fanoutNanos int64) (stamp int64, ok bool) {
	if _, staged, ok := peekHeader(data); !ok || !staged {
		return 0, false
	}
	if t := Type(data[1]); t != TypeData && t != TypeForwarded {
		return 0, false
	}
	_, stamp, ok = PeekStamp(data)
	if !ok || stamp == 0 {
		return 0, false
	}
	binary.LittleEndian.PutUint32(data[stageIngressOff:], stageDeltaUs(stamp, ingressNanos))
	binary.LittleEndian.PutUint32(data[stageFanoutOff:], stageDeltaUs(stamp, fanoutNanos))
	return stamp, true
}

// StampFlush writes the writer-flush mark into a staged data envelope in
// place. It is only safe on frames the caller exclusively owns (a sink's
// private copy); the shared-fanout delivery cores must not call it and
// instead observe flush age broker-side.
func StampFlush(data []byte, flushNanos int64) bool {
	if _, staged, ok := peekHeader(data); !ok || !staged {
		return false
	}
	if t := Type(data[1]); t != TypeData && t != TypeForwarded {
		return false
	}
	_, stamp, ok := PeekStamp(data)
	if !ok || stamp == 0 {
		return false
	}
	binary.LittleEndian.PutUint32(data[stageFlushOff:], stageDeltaUs(stamp, flushNanos))
	return true
}

// StampChannelSeq writes the broker-assigned replay coordinates into an
// already-encoded data envelope in place. It stamps only TypeData and
// TypeForwarded frames (control envelopes and raw payloads are left
// untouched) and reports whether it stamped. The caller must exclusively own
// data: the broker's publish path stamps the frame it is about to fan out,
// before any subscriber sees it.
func StampChannelSeq(data []byte, epoch, seq uint64) bool {
	if _, _, ok := peekHeader(data); !ok {
		return false
	}
	if t := Type(data[1]); t != TypeData && t != TypeForwarded {
		return false
	}
	binary.LittleEndian.PutUint64(data[2:10], epoch)
	binary.LittleEndian.PutUint64(data[10:18], seq)
	return true
}

// PeekChannelSeq extracts the replay coordinates from an encoded envelope
// without decoding anything else. ok is false for non-envelope payloads and
// for envelopes never stamped by a replay-enabled broker (epoch 0).
func PeekChannelSeq(data []byte) (epoch, seq uint64, ok bool) {
	if _, _, ok := peekHeader(data); !ok {
		return 0, 0, false
	}
	epoch = binary.LittleEndian.Uint64(data[2:10])
	seq = binary.LittleEndian.Uint64(data[10:18])
	return epoch, seq, epoch != 0
}

// Generator allocates globally unique message IDs for one node. The zero
// value is not usable; create one with NewGenerator.
type Generator struct {
	node uint32
	seq  atomic.Uint64
}

// NewGenerator returns an ID generator for the given non-zero node ID.
func NewGenerator(node uint32) *Generator {
	if node == 0 {
		panic("message: node ID must be non-zero")
	}
	return &Generator{node: node}
}

// Next returns a fresh unique ID. It is safe for concurrent use.
func (g *Generator) Next() ID {
	return ID{Node: g.node, Seq: g.seq.Add(1)}
}

// Node returns the node component embedded in IDs from this generator.
func (g *Generator) Node() uint32 { return g.node }
