package message

import (
	"encoding/binary"
	"errors"
)

// Cursor is a client's resume position for one channel, presented to the new
// home broker on a cursor-based resubscribe (redial after a crash, successor
// substitution, or a SWITCH migration). It carries the highest contiguous
// sequence the client has consumed per known ring epoch, plus a stamp-based
// fallback for the cross-broker case where the new home's ring shares no
// epoch with anything the client has seen.
type Cursor struct {
	// SinceStamp is the publish stamp (Unix nanoseconds) of the newest
	// message the client has consumed on the channel, or the subscribe time
	// when nothing arrived yet. A broker whose ring epoch is unknown to the
	// client replays frames stamped at or after SinceStamp. Zero disables
	// the stamp fallback (replay nothing on an epoch miss).
	SinceStamp int64
	// Seen holds, per ring epoch the client has consumed from, the highest
	// sequence with no gaps below it. A broker finding its current epoch
	// here replays exactly (seq, head].
	Seen []EpochSeq
}

// EpochSeq names a position in one replay-ring incarnation.
type EpochSeq struct {
	Epoch uint64
	Seq   uint64
}

// maxCursorEpochs bounds the epochs decoded from one cursor; clients track
// only a handful of recent epochs, so anything larger is corruption.
const maxCursorEpochs = 64

// ErrBadCursor reports a cursor blob that does not decode.
var ErrBadCursor = errors.New("message: malformed cursor")

// AppendCursor appends the cursor's wire encoding to dst: stamp(uvarint),
// count(uvarint), then (epoch, seq) uvarint pairs.
func AppendCursor(dst []byte, c Cursor) []byte {
	dst = binary.AppendUvarint(dst, uint64(c.SinceStamp))
	dst = binary.AppendUvarint(dst, uint64(len(c.Seen)))
	for _, es := range c.Seen {
		dst = binary.AppendUvarint(dst, es.Epoch)
		dst = binary.AppendUvarint(dst, es.Seq)
	}
	return dst
}

// MarshalCursor encodes the cursor into a fresh buffer.
func MarshalCursor(c Cursor) []byte {
	return AppendCursor(make([]byte, 0, 2*binary.MaxVarintLen64*(1+len(c.Seen))), c)
}

// UnmarshalCursor decodes a cursor blob produced by AppendCursor.
func UnmarshalCursor(data []byte) (Cursor, error) {
	var c Cursor
	u, rest, err := readUvarint(data)
	if err != nil {
		return Cursor{}, ErrBadCursor
	}
	c.SinceStamp = int64(u)
	n, rest, err := readUvarint(rest)
	if err != nil {
		return Cursor{}, ErrBadCursor
	}
	if n > maxCursorEpochs {
		return Cursor{}, ErrBadCursor
	}
	if n > 0 {
		c.Seen = make([]EpochSeq, n)
		for i := range c.Seen {
			if c.Seen[i].Epoch, rest, err = readUvarint(rest); err != nil {
				return Cursor{}, ErrBadCursor
			}
			if c.Seen[i].Seq, rest, err = readUvarint(rest); err != nil {
				return Cursor{}, ErrBadCursor
			}
		}
	}
	if len(rest) != 0 {
		return Cursor{}, ErrBadCursor
	}
	return c, nil
}

// SeqFor returns the cursor's position for the given epoch.
func (c Cursor) SeqFor(epoch uint64) (seq uint64, ok bool) {
	for _, es := range c.Seen {
		if es.Epoch == epoch {
			return es.Seq, true
		}
	}
	return 0, false
}
