package message

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		env  Envelope
	}{
		{
			name: "data",
			env: Envelope{
				Type:    TypeData,
				ID:      ID{Node: 7, Seq: 42},
				Channel: "tile-3-4",
				Payload: []byte("pos=12,9"),
			},
		},
		{
			name: "switch with servers",
			env: Envelope{
				Type:        TypeSwitch,
				ID:          ID{Node: 1, Seq: 1},
				Channel:     "hot",
				Servers:     []string{"pub2", "pub3"},
				Strategy:    2,
				PlanVersion: 9,
			},
		},
		{
			name: "empty payload and channel",
			env:  Envelope{Type: TypeDrained, ID: ID{Node: 3, Seq: 9}},
		},
		{
			name: "max values",
			env: Envelope{
				Type:        TypePlan,
				ID:          ID{Node: math.MaxUint32, Seq: math.MaxUint64},
				Channel:     string(bytes.Repeat([]byte("c"), 300)),
				PlanVersion: math.MaxUint64,
				Payload:     bytes.Repeat([]byte{0xff, 0x00}, 500),
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			data := tt.env.Marshal()
			got, err := Unmarshal(data)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if got.Type != tt.env.Type || got.ID != tt.env.ID ||
				got.Channel != tt.env.Channel ||
				got.Strategy != tt.env.Strategy ||
				got.PlanVersion != tt.env.PlanVersion {
				t.Fatalf("header mismatch: got %+v want %+v", got, tt.env)
			}
			if !bytes.Equal(got.Payload, tt.env.Payload) {
				t.Fatalf("payload mismatch: got %q want %q", got.Payload, tt.env.Payload)
			}
			if !reflect.DeepEqual(sliceOrNil(got.Servers), sliceOrNil(tt.env.Servers)) {
				t.Fatalf("servers mismatch: got %v want %v", got.Servers, tt.env.Servers)
			}
		})
	}
}

func sliceOrNil(s []string) []string {
	if len(s) == 0 {
		return nil
	}
	return s
}

func TestEnvelopeRoundTripQuick(t *testing.T) {
	f := func(typ uint8, node uint32, seq uint64, channel string, payload []byte, servers []string, strategy uint8, version uint64) bool {
		if typ == 0 {
			typ = 1
		}
		in := Envelope{
			Type:        Type(typ),
			ID:          ID{Node: node, Seq: seq},
			Channel:     channel,
			Payload:     payload,
			Servers:     servers,
			Strategy:    strategy,
			PlanVersion: version,
		}
		out, err := Unmarshal(in.Marshal())
		if err != nil {
			return false
		}
		return out.Type == in.Type && out.ID == in.ID &&
			out.Channel == in.Channel &&
			bytes.Equal(out.Payload, in.Payload) &&
			reflect.DeepEqual(sliceOrNil(out.Servers), sliceOrNil(in.Servers)) &&
			out.Strategy == in.Strategy && out.PlanVersion == in.PlanVersion
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"one byte", []byte{envelopeMagic}, ErrTruncated},
		{"bad magic", []byte{0x00, 0x01, 0x00}, ErrBadMagic},
		{"cut off mid-varint", []byte{envelopeMagic, 1, 0x80}, ErrTruncated},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Unmarshal(tt.data); err != tt.want {
				t.Fatalf("got %v, want %v", err, tt.want)
			}
		})
	}
}

func TestUnmarshalTruncationsNeverPanic(t *testing.T) {
	env := Envelope{
		Type:    TypeSwitch,
		ID:      ID{Node: 9, Seq: 1234},
		Channel: "channel-name",
		Servers: []string{"a", "b", "c"},
		Payload: []byte("payload-bytes"),
	}
	full := env.Marshal()
	for i := 0; i < len(full); i++ {
		if _, err := Unmarshal(full[:i]); err == nil && i < len(full)-len(env.Payload) {
			t.Fatalf("truncation at %d unexpectedly succeeded", i)
		}
	}
}

func TestWireSizeMatchesMarshal(t *testing.T) {
	env := Envelope{Type: TypeData, ID: ID{Node: 1, Seq: 2}, Channel: "c", Payload: []byte("xyz")}
	if got, want := env.WireSize(), len(env.Marshal()); got != want {
		t.Fatalf("WireSize=%d, len(Marshal)=%d", got, want)
	}
}

func TestGeneratorUnique(t *testing.T) {
	g := NewGenerator(5)
	const n = 1000
	const workers = 8
	ids := make(chan ID, n*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				ids <- g.Next()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[ID]struct{}, n*workers)
	for id := range ids {
		if id.Node != 5 {
			t.Fatalf("wrong node in ID: %v", id)
		}
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate ID generated: %v", id)
		}
		seen[id] = struct{}{}
	}
}

func TestGeneratorZeroNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGenerator(0) did not panic")
		}
	}()
	NewGenerator(0)
}

func TestTypeString(t *testing.T) {
	for typ := TypeData; typ <= TypeForwarded; typ++ {
		if s := typ.String(); s == "" || s[0] == 't' && s != "type(0)" && len(s) > 5 && s[:5] == "type(" {
			t.Fatalf("missing name for type %d", typ)
		}
	}
	if got := Type(200).String(); got != "type(200)" {
		t.Fatalf("unknown type formatting: %q", got)
	}
}
