// Package sim is a deterministic discrete-event simulator for cluster-scale
// Dynamoth experiments — the stand-in for the paper's 80-machine testbed
// (DESIGN.md §4, substitution 1). It executes the very same decision logic
// as the live stack (plan routing, the balancer's Planner, the dispatcher
// Core, the LLA Accumulator, the client's localplan store and deduper) on a
// virtual clock, with the netsim link model providing the two physical
// effects the evaluation depends on: finite server egress bandwidth and
// sampled wide-area latency.
//
// Everything is single-threaded and driven from a seeded RNG, so a given
// seed reproduces an experiment bit for bit.
package sim

import (
	"container/heap"
	"time"
)

// Engine is the event loop: a priority queue of timed callbacks.
type Engine struct {
	now    time.Time
	events eventHeap
	seq    uint64
}

// NewEngine creates an engine starting at the given virtual time.
func NewEngine(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// At schedules fn at time t (clamped to now if in the past). Events at the
// same instant run in scheduling order.
func (e *Engine) At(t time.Time, fn func()) {
	if t.Before(e.now) {
		t = e.now
	}
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn after d.
func (e *Engine) After(d time.Duration, fn func()) {
	e.At(e.now.Add(d), fn)
}

// Every schedules fn at the given period forever (until the engine stops
// being run). fn receives nothing; reschedule state lives in closures.
func (e *Engine) Every(period time.Duration, fn func()) {
	var tick func()
	tick = func() {
		fn()
		e.After(period, tick)
	}
	e.After(period, tick)
}

// RunUntil executes events in order until the virtual clock reaches the
// deadline (events exactly at the deadline run). It returns the number of
// events executed.
func (e *Engine) RunUntil(deadline time.Time) int {
	n := 0
	for len(e.events) > 0 && !e.events[0].at.After(deadline) {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
