package sim

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/dynamoth/dynamoth/internal/balancer"
	"github.com/dynamoth/dynamoth/internal/dispatcher"
	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/localplan"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/netsim"
	"github.com/dynamoth/dynamoth/internal/plan"
)

// Mode selects the load-balancing strategy under simulation.
type Mode string

// Balancer modes.
const (
	ModeDynamoth          Mode = "dynamoth"
	ModeConsistentHashing Mode = "consistent-hashing"
	ModeNone              Mode = "none"
)

// Config parameterizes a simulation.
type Config struct {
	// Seed drives all randomness; a fixed seed reproduces a run exactly.
	Seed int64
	// Start is the virtual start time (default 2026-01-01).
	Start time.Time
	// InitialServers is the bootstrap pool (default ["pub1"]).
	InitialServers []string
	// MaxOutgoingBps is the per-server egress capacity T_i
	// (default 1.25 MB/s — DESIGN.md calibration).
	MaxOutgoingBps float64
	// ConnDrainPerSec is the per-connection drain rate in messages/second
	// (default 2000 — Redis output-buffer drain analog).
	ConnDrainPerSec float64
	// ConnQueueLimit is the per-connection output buffer in messages
	// (default 2000).
	ConnQueueLimit int
	// Path is the latency model (default the King-like PathModel).
	Path *netsim.PathModel
	// Mode selects the balancer (default ModeDynamoth).
	Mode Mode
	// Balancer carries the planner thresholds (default DefaultConfig with
	// MaxServers 8).
	Balancer balancer.Config
	// BootDelay is the cloud boot time for spawned servers (default 10 s).
	BootDelay time.Duration
	// Unit is the metric time unit (default 1 s).
	Unit time.Duration
	// ReportEvery is the LLA report interval (default 3 s).
	ReportEvery time.Duration
	// EntryTimeout is the client plan-entry / dispatcher drain timeout
	// (default 30 s).
	EntryTimeout time.Duration
	// ReleaseGrace delays killing a released server (default 20 s).
	ReleaseGrace time.Duration
	// MaxBacklog bounds a server's egress queue: deliveries that would
	// wait longer are dropped, as a real NIC/socket stack sheds load
	// instead of buffering minutes of traffic (Redis kills slow clients;
	// the paper observes servers failing past LR ≈ 1.15). Default 2 s.
	MaxBacklog time.Duration
}

func (c Config) fillDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if len(c.InitialServers) == 0 {
		c.InitialServers = []string{"pub1"}
	}
	if c.MaxOutgoingBps <= 0 {
		c.MaxOutgoingBps = 1.25e6
	}
	if c.ConnDrainPerSec <= 0 {
		c.ConnDrainPerSec = 2000
	}
	if c.ConnQueueLimit <= 0 {
		c.ConnQueueLimit = 2000
	}
	if c.Path == nil {
		c.Path = netsim.NewPathModel()
	}
	if c.Mode == "" {
		c.Mode = ModeDynamoth
	}
	if c.Balancer.LRHigh == 0 {
		c.Balancer = balancer.DefaultConfig()
	}
	if c.BootDelay <= 0 {
		c.BootDelay = 10 * time.Second
	}
	if c.Unit <= 0 {
		c.Unit = time.Second
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 3 * c.Unit
	}
	if c.EntryTimeout <= 0 {
		c.EntryTimeout = 30 * time.Second
	}
	if c.ReleaseGrace <= 0 {
		c.ReleaseGrace = 20 * time.Second
	}
	if c.MaxBacklog <= 0 {
		c.MaxBacklog = 2 * time.Second
	}
	return c
}

// Rebalance records one plan change for experiment marks.
type Rebalance struct {
	Time   time.Time
	Reason string
}

// UnitSnapshot is the per-time-unit statistic bundle delivered to OnUnit
// hooks — the raw series behind Figures 5, 6 and 7.
type UnitSnapshot struct {
	Time          time.Time
	Elapsed       time.Duration
	ActiveServers int
	Clients       int
	// OutMsgs is the number of per-subscriber deliveries this unit.
	OutMsgs int64
	// OutBytes is the outgoing byte volume this unit.
	OutBytes int64
	// AvgLoadRatio and MaxLoadRatio are per-server LR_i aggregates
	// computed from this unit's actual egress traffic.
	AvgLoadRatio float64
	MaxLoadRatio float64
	// DroppedDeliveries counts messages lost to dead connections.
	DroppedDeliveries int64
	// AvgLocalPlanSize is the mean number of learned entries in client
	// local plans — the paper's §II-C claim is that lazy propagation keeps
	// this small (clients only know channels they actually use).
	AvgLocalPlanSize float64
	// InstanceSeconds is cumulative server-seconds consumed so far (the
	// cloud-cost measure behind the paper's elasticity argument).
	InstanceSeconds float64
}

// Sim is a running simulation.
type Sim struct {
	cfg Config
	eng *Engine
	rng *rand.Rand

	servers   map[plan.ServerID]*Server
	serverIDs []plan.ServerID // sorted, alive only
	clients   map[uint32]*Client
	nextSpawn int

	plan            *plan.Plan
	planner         balancer.PlanGenerator
	state           *balancer.State
	lastPlan        time.Time
	spawning        bool
	rebalances      []Rebalance
	instanceSeconds float64 // accumulated by dead servers; live ones add at read

	onUnit  []func(UnitSnapshot)
	dropped int64
}

// New creates a simulation with the bootstrap servers running.
func New(cfg Config) *Sim {
	cfg = cfg.fillDefaults()
	s := &Sim{
		cfg:     cfg,
		eng:     NewEngine(cfg.Start),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		servers: make(map[plan.ServerID]*Server),
		clients: make(map[uint32]*Client),
	}
	s.plan = plan.New(cfg.InitialServers...)
	s.plan.Version = 1
	for i, id := range cfg.InitialServers {
		s.addServer(id, uint32(0xD000+i))
	}

	bcfg := cfg.Balancer
	switch cfg.Mode {
	case ModeConsistentHashing:
		s.planner = balancer.NewCHPlanner(bcfg)
	case ModeNone:
		s.planner = nil
	default:
		pinned := func(id string) bool { return id == cfg.InitialServers[0] }
		s.planner = balancer.NewPlanner(bcfg, plan.IsControlChannel, pinned, cfg.MaxOutgoingBps)
	}
	s.state = balancer.NewState(bcfg.Window)

	// Periodic machinery.
	s.eng.Every(cfg.Unit, s.unitTick)
	if s.planner != nil {
		s.eng.Every(cfg.Unit, s.lbTick)
	}
	s.eng.Every(cfg.EntryTimeout/4, s.sweepClients)
	return s
}

// Engine exposes the event loop (experiments schedule workload events on it).
func (s *Sim) Engine() *Engine { return s.eng }

// Now returns the virtual time.
func (s *Sim) Now() time.Time { return s.eng.Now() }

// Elapsed returns virtual time since the start.
func (s *Sim) Elapsed() time.Duration { return s.eng.Now().Sub(s.cfg.Start) }

// RunFor advances the simulation by d.
func (s *Sim) RunFor(d time.Duration) { s.eng.RunUntil(s.eng.Now().Add(d)) }

// OnUnit registers a per-time-unit statistics hook.
func (s *Sim) OnUnit(fn func(UnitSnapshot)) { s.onUnit = append(s.onUnit, fn) }

// ActiveServers returns the number of live servers.
func (s *Sim) ActiveServers() int { return len(s.serverIDs) }

// InstanceSeconds returns cumulative server-seconds consumed (the cloud
// cost measure: a balancer that releases idle servers pays less).
func (s *Sim) InstanceSeconds() float64 {
	total := s.instanceSeconds
	now := s.eng.Now()
	for _, id := range s.serverIDs {
		total += now.Sub(s.servers[id].started).Seconds()
	}
	return total
}

// Rebalances returns the recorded plan changes.
func (s *Sim) Rebalances() []Rebalance {
	return append([]Rebalance(nil), s.rebalances...)
}

// PlanVersion returns the LB's current plan version.
func (s *Sim) PlanVersion() uint64 { return s.plan.Version }

// CurrentPlan returns a copy of the LB's current plan (for assertions).
func (s *Sim) CurrentPlan() *plan.Plan { return s.plan.Clone() }

// SetPlan force-installs a plan on the LB and every dispatcher — used by the
// micro-benchmarks of Experiment 1, where the paper configures replication
// manually rather than through Algorithm 1.
func (s *Sim) SetPlan(p *plan.Plan) {
	s.plan = p
	for _, id := range s.serverIDs {
		s.servers[id].core.OnPlan(p.Clone(), s.eng.Now())
	}
}

// Rand returns the simulation's RNG (for workload randomness, keeping runs
// reproducible).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// ---------------------------------------------------------------------------
// Servers

// Server is one simulated pub/sub node: broker semantics + egress link +
// per-connection buffers + LLA accumulator + dispatcher core.
type Server struct {
	id      plan.ServerID
	sim     *Sim
	started time.Time

	egress *netsim.Pipe
	conns  map[uint32]*netsim.ConnQueue
	subs   map[string]map[uint32]struct{}

	core  *dispatcher.Core
	accum *lla.Accumulator
	// deliverFIFO keeps per-connection downlink ordering (TCP FIFO).
	deliverFIFO map[uint32]time.Time

	reportSeq    uint64
	pendingUnits []lla.UnitStats
	windowBytes  float64 // bytes since last LLA report
	unitBytes    float64 // bytes in current stats unit
	unitMsgs     int64
	debugBytes   map[string]float64 // per-channel bytes for DebugServers

	alive bool
}

func (s *Sim) addServer(id plan.ServerID, node uint32) *Server {
	srv := &Server{
		id:      id,
		sim:     s,
		started: s.eng.Now(),
		egress:  netsim.NewPipe(s.cfg.MaxOutgoingBps),
		conns:   make(map[uint32]*netsim.ConnQueue),
		subs:    make(map[string]map[uint32]struct{}),
		core:    dispatcher.NewCore(id, node, s.plan.Clone(), s.cfg.EntryTimeout),
		accum:   lla.NewAccumulator(),
		alive:   true,
	}
	srv.debugBytes = make(map[string]float64)
	srv.deliverFIFO = make(map[uint32]time.Time)
	s.servers[id] = srv
	s.serverIDs = append(s.serverIDs, id)
	sort.Strings(s.serverIDs)

	// Per-server LLA loop.
	var unitLoop func()
	unitLoop = func() {
		if !srv.alive {
			return
		}
		srv.pendingUnits = append(srv.pendingUnits, srv.accum.Seal())
		s.eng.After(s.cfg.Unit, unitLoop)
	}
	s.eng.After(s.cfg.Unit, unitLoop)

	var reportLoop func()
	reportLoop = func() {
		if !srv.alive {
			return
		}
		srv.reportSeq++
		r := &lla.Report{
			Server:              srv.id,
			Seq:                 srv.reportSeq,
			Units:               srv.pendingUnits,
			MaxOutgoingBps:      s.cfg.MaxOutgoingBps,
			MeasuredOutgoingBps: srv.windowBytes / s.cfg.ReportEvery.Seconds(),
		}
		srv.pendingUnits = nil
		srv.windowBytes = 0
		s.state.AddReport(r)
		s.eng.After(s.cfg.ReportEvery, reportLoop)
	}
	s.eng.After(s.cfg.ReportEvery, reportLoop)

	// Dispatcher transition expiry.
	var tickLoop func()
	tickLoop = func() {
		if !srv.alive {
			return
		}
		srv.core.OnTick(s.eng.Now())
		s.eng.After(5*time.Second, tickLoop)
	}
	s.eng.After(5*time.Second, tickLoop)
	return srv
}

func (s *Sim) killServer(id plan.ServerID) {
	srv := s.servers[id]
	if srv == nil || !srv.alive {
		return
	}
	srv.alive = false
	s.instanceSeconds += s.eng.Now().Sub(srv.started).Seconds()
	delete(s.servers, id)
	kept := s.serverIDs[:0]
	for _, have := range s.serverIDs {
		if have != id {
			kept = append(kept, have)
		}
	}
	s.serverIDs = kept
	// Clients with subscriptions here must repair. Sorted order keeps the
	// RNG draw sequence (and thus the whole run) deterministic.
	nodes := make([]uint32, 0, len(srv.conns))
	for node := range srv.conns {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, node := range nodes {
		if c := s.clients[node]; c != nil {
			client := c
			s.eng.After(s.delay(netsim.Infra, netsim.Client), func() {
				client.onDisconnected(id)
			})
		}
	}
}

// receive processes one publication arriving at the server (from a client,
// from another dispatcher, or locally from its own dispatcher).
func (srv *Server) receive(channel string, env *message.Envelope) {
	if !srv.alive {
		return
	}
	s := srv.sim
	now := s.eng.Now()
	wire := float64(env.WireSize())

	subscribers := srv.subs[channel]
	receivers := len(subscribers)

	// Control-plane frames addressed to this dispatcher.
	if env.Type == message.TypeDrained && channel == plan.DispatchChannel(srv.id) && len(env.Servers) == 1 {
		srv.core.OnDrained(env.Channel, env.Servers[0])
		return
	}

	// Metrics (the LLA observer sees every publication, §III-A).
	if env.Type == message.TypeData || env.Type == message.TypeForwarded {
		srv.accum.OnPublish(channel, env.ID.Node, int(wire), receivers)
	}

	// Fan out through the egress link and per-connection buffers.
	if receivers > 0 {
		nodes := make([]uint32, 0, receivers)
		for n := range subscribers {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, node := range nodes {
			conn := srv.conns[node]
			if conn == nil {
				continue // connection died; subscription cleanup is pending
			}
			srv.windowBytes += wire
			srv.unitBytes += wire
			if srv.debugBytes != nil {
				srv.debugBytes[channel] += wire
			}
			// Saturated egress sheds bulk data instead of queueing
			// unboundedly (socket buffers are finite; Redis disconnects
			// slow consumers rather than buffer forever). Offered bytes
			// still count toward the load ratio above, so the balancer
			// sees the overload. Control frames (switch, redirects, drain
			// notifications) are small, rate-limited, and ride reliable
			// TCP — they are never shed, which is what lets an overloaded
			// system converge back to health, as in the paper.
			isBulk := env.Type == message.TypeData || env.Type == message.TypeForwarded
			if isBulk && srv.egress.QueueDelay(now) > s.cfg.MaxBacklog {
				s.dropped++
				continue
			}
			dep := srv.egress.Send(now, wire)
			srv.unitMsgs++
			connDep, ok := conn.Send(dep)
			if !ok {
				s.dropped++
				if conn.Dead() {
					srv.dropConn(node)
				}
				continue
			}
			srv.scheduleDelivery(node, channel, env, connDep)
		}
	}

	// Dispatcher reaction.
	actions := srv.core.OnLocalPublish(channel, env, receivers, now)
	srv.execute(actions)
}

// scheduleDelivery decides whether a delivery needs a client-side event.
// Control frames and self-deliveries (the publisher receiving its own
// publication — the response-time probe) always do; bulk data deliveries to
// third parties are accounted in the link model above but need no client
// event, keeping the event count proportional to publications rather than
// deliveries.
func (srv *Server) scheduleDelivery(node uint32, channel string, env *message.Envelope, depart time.Time) {
	s := srv.sim
	c := s.clients[node]
	if c == nil {
		return
	}
	isData := env.Type == message.TypeData || env.Type == message.TypeForwarded
	if isData && env.ID.Node != node && !c.DeliverAll {
		return
	}
	arrive := depart.Add(s.delay(netsim.Infra, netsim.Client))
	if last := srv.deliverFIFO[node]; arrive.Before(last) {
		arrive = last
	}
	srv.deliverFIFO[node] = arrive
	s.eng.At(arrive, func() { c.receive(channel, env) })
}

// dropConn models a Redis slow-consumer disconnect: the connection and
// every subscription the node held on this server vanish, and the client is
// notified so it can reconnect and resubscribe.
func (srv *Server) dropConn(node uint32) {
	delete(srv.conns, node)
	delete(srv.deliverFIFO, node)
	channels := make([]string, 0, 4)
	for ch, set := range srv.subs {
		if _, ok := set[node]; ok {
			channels = append(channels, ch)
		}
	}
	sort.Strings(channels)
	for _, ch := range channels {
		set := srv.subs[ch]
		delete(set, node)
		count := len(set)
		if count == 0 {
			delete(srv.subs, ch)
		}
		srv.accum.OnUnsubscribe(ch, count)
		srv.execute(srv.core.OnLocalUnsubscribe(ch, count))
	}
	// The client notices the disconnect after a round trip and repairs.
	if c := srv.sim.clients[node]; c != nil {
		srv.sim.eng.After(srv.sim.delay(netsim.Infra, netsim.Client), func() {
			c.onDisconnected(srv.id)
		})
	}
}

// subscribe registers a client on a channel.
func (srv *Server) subscribe(node uint32, channel string) {
	if !srv.alive {
		return
	}
	set := srv.subs[channel]
	if set == nil {
		set = make(map[uint32]struct{})
		srv.subs[channel] = set
	}
	if srv.conns[node] == nil {
		srv.conns[node] = netsim.NewConnQueue(srv.sim.cfg.ConnDrainPerSec, srv.sim.cfg.ConnQueueLimit)
	}
	if _, dup := set[node]; dup {
		return
	}
	set[node] = struct{}{}
	srv.accum.OnSubscribe(channel, len(set))
	srv.execute(srv.core.OnLocalSubscribe(channel, len(set), srv.sim.eng.Now()))
}

// unsubscribe removes a client from a channel.
func (srv *Server) unsubscribe(node uint32, channel string) {
	if !srv.alive {
		return
	}
	set := srv.subs[channel]
	if set == nil {
		return
	}
	if _, ok := set[node]; !ok {
		return
	}
	delete(set, node)
	count := len(set)
	if count == 0 {
		delete(srv.subs, channel)
	}
	srv.accum.OnUnsubscribe(channel, count)
	srv.execute(srv.core.OnLocalUnsubscribe(channel, count))
}

// execute performs dispatcher actions in the simulated network.
func (srv *Server) execute(actions []Action2) {
	s := srv.sim
	for _, a := range actions {
		switch a.Kind {
		case dispatcher.ActionPublishLocal:
			env := a.Env
			ch := a.Channel
			// Local re-publication is immediate (same host).
			s.eng.After(0, func() { srv.receive(ch, env) })
		case dispatcher.ActionForward:
			target := s.servers[a.Server]
			if target == nil {
				continue
			}
			env := a.Env
			ch := a.Channel
			s.eng.After(s.cfg.Path.LAN, func() { target.receive(ch, env) })
		}
	}
}

// Action2 aliases dispatcher.Action (kept distinct in the signature to make
// the shared-logic boundary visible).
type Action2 = dispatcher.Action

// ---------------------------------------------------------------------------
// Clients

// Client is one simulated Dynamoth client: the identical localplan store and
// deduper as the live library, with publish/subscribe routed by shared plan
// logic.
type Client struct {
	id  uint32
	sim *Sim

	store *localplan.Store
	dedup *message.Deduper
	gen   *message.Generator
	subs  map[string][]plan.ServerID // channel -> servers subscribed on

	// OnData is called for every data delivery scheduled to this client
	// (control traffic and self-deliveries; see scheduleDelivery).
	OnData func(channel string, env *message.Envelope, sentAt time.Time)
	// DeliverAll schedules a client event for every data delivery, not
	// just self-deliveries — used by measurement probes (Experiment 1
	// times third-party subscribers). Costs one event per delivery.
	DeliverAll bool

	// sendFIFO enforces per-(client,server) in-order arrival of what this
	// client sends: TCP never reorders within a connection, so a
	// subscribe must not overtake an earlier unsubscribe just because its
	// sampled latency was lower.
	sendFIFO map[plan.ServerID]time.Time

	alive bool
}

// AddClient creates a client and subscribes its redirect inbox.
func (s *Sim) AddClient(id uint32) *Client {
	c := &Client{
		id:       id,
		sim:      s,
		store:    localplan.New(s.cfg.InitialServers, s.cfg.EntryTimeout),
		dedup:    message.NewDeduper(512),
		gen:      message.NewGenerator(id),
		subs:     make(map[string][]plan.ServerID),
		sendFIFO: make(map[plan.ServerID]time.Time),
		alive:    true,
	}
	s.clients[id] = c
	inbox := plan.InboxChannel(id)
	c.subscribeOn(c.store.Base().Home(inbox), inbox, false)
	return c
}

// RemoveClient disconnects a client (player leaves).
func (s *Sim) RemoveClient(id uint32) {
	c := s.clients[id]
	if c == nil {
		return
	}
	c.alive = false
	channels := make([]string, 0, len(c.subs))
	for ch := range c.subs {
		channels = append(channels, ch)
	}
	sort.Strings(channels) // deterministic RNG draw order
	for _, ch := range channels {
		for _, sv := range c.subs[ch] {
			c.unsubscribeOn(sv, ch)
		}
	}
	inbox := plan.InboxChannel(id)
	c.unsubscribeOn(c.store.Base().Home(inbox), inbox)
	delete(s.clients, id)
}

// Client returns a client by ID (nil if absent).
func (s *Sim) Client(id uint32) *Client { return s.clients[id] }

// ClientCount returns the number of live clients.
func (s *Sim) ClientCount() int { return len(s.clients) }

// ID returns the client's node ID.
func (c *Client) ID() uint32 { return c.id }

// Subscribe places subscriptions per the client's current plan knowledge.
func (c *Client) Subscribe(channel string) {
	if _, dup := c.subs[channel]; dup {
		return
	}
	entry, _ := c.store.Lookup(channel, c.sim.eng.Now())
	targets := c.liveTargets(channel, plan.SubscribeTargets(entry, channel, c.clientKey()))
	c.subs[channel] = append([]plan.ServerID(nil), targets...)
	for _, sv := range targets {
		c.subscribeOn(sv, channel, true)
	}
}

// liveTargets substitutes dead servers in a target list with the next live
// ring candidate — a client whose (possibly stale) mapping names a released
// server must reach *some* live server, whose dispatcher will then redirect
// it (§IV "Initialization").
func (c *Client) liveTargets(channel string, targets []plan.ServerID) []plan.ServerID {
	out := make([]plan.ServerID, 0, len(targets))
	alive := func(id plan.ServerID) bool {
		srv := c.sim.servers[id]
		return srv != nil && srv.alive
	}
	for _, t := range targets {
		if alive(t) {
			if !containsID(out, t) {
				out = append(out, t)
			}
			continue
		}
		for _, cand := range c.store.Base().Ring().LookupN(channel, 16) {
			if alive(cand) && !containsID(out, cand) {
				out = append(out, cand)
				break
			}
		}
	}
	if len(out) == 0 {
		// Ring exhausted (every member released): any live server will
		// redirect us.
		for _, id := range c.sim.serverIDs {
			if alive(id) {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// Unsubscribe removes the client's subscriptions for a channel.
func (c *Client) Unsubscribe(channel string) {
	servers, ok := c.subs[channel]
	if !ok {
		return
	}
	delete(c.subs, channel)
	for _, sv := range servers {
		c.unsubscribeOn(sv, channel)
	}
}

// Subscribed reports whether the client subscribes to channel.
func (c *Client) Subscribed(channel string) bool {
	_, ok := c.subs[channel]
	return ok
}

// PublishTimed publishes a payload of the given size whose first 8 bytes
// carry the send timestamp, so receivers can compute response times.
func (c *Client) PublishTimed(channel string, size int) {
	if size < 8 {
		size = 8
	}
	payload := make([]byte, size)
	binary.LittleEndian.PutUint64(payload, uint64(c.sim.eng.Now().UnixNano()))
	c.publish(channel, payload)
}

func (c *Client) publish(channel string, payload []byte) {
	s := c.sim
	entry, version := c.store.Lookup(channel, s.eng.Now())
	env := &message.Envelope{
		Type:        message.TypeData,
		ID:          c.gen.Next(),
		Channel:     channel,
		Payload:     payload,
		PlanVersion: version,
	}
	targets := c.liveTargets(channel, plan.PublishTargets(entry, s.rng.Intn))
	sentAny := false
	for _, sv := range targets {
		srv := s.servers[sv]
		if srv == nil || !srv.alive {
			continue
		}
		sentAny = true
		target := srv
		s.eng.At(c.arrivalAt(sv), func() {
			target.receive(channel, env)
		})
	}
	if !sentAny {
		// All targets are gone (e.g. entry pointing at a released
		// server): forget the entry so the next publish uses hashing.
		c.store.Forget(channel)
	}
}

// receive processes a delivery scheduled to this client.
func (c *Client) receive(channel string, env *message.Envelope) {
	if !c.alive {
		return
	}
	now := c.sim.eng.Now()
	switch env.Type {
	case message.TypeData, message.TypeForwarded:
		if c.dedup.Observe(env.ID) {
			return
		}
		c.store.Touch(channel, now)
		if c.OnData != nil && len(env.Payload) >= 8 {
			sentAt := time.Unix(0, int64(binary.LittleEndian.Uint64(env.Payload)))
			c.OnData(channel, env, sentAt)
		}
	case message.TypeSwitch:
		c.applyUpdate(env.Channel, env, true)
	case message.TypeWrongServer:
		c.applyUpdate(env.Channel, env, false)
	}
}

func (c *Client) applyUpdate(channel string, env *message.Envelope, resubscribe bool) {
	now := c.sim.eng.Now()
	c.updateRing(env)
	e := plan.Entry{Strategy: plan.Strategy(env.Strategy), Servers: env.Servers}
	if !c.store.Update(channel, e, env.PlanVersion, now) {
		return
	}
	old, subscribed := c.subs[channel]
	if !subscribed || !resubscribe {
		return
	}
	targets := plan.SubscribeTargets(e, channel, c.clientKey())
	c.subs[channel] = append([]plan.ServerID(nil), targets...)
	// Subscribe to new servers first, then unsubscribe the abandoned ones
	// (dedup absorbs the overlap), as in the live client.
	for _, sv := range diffServers(targets, old) {
		c.subscribeOn(sv, channel, true)
	}
	for _, sv := range diffServers(old, targets) {
		c.unsubscribeOn(sv, channel)
	}
}

// onDisconnected repairs subscriptions after a server connection died.
func (c *Client) onDisconnected(server plan.ServerID) {
	if !c.alive {
		return
	}
	now := c.sim.eng.Now()
	channels := make([]string, 0, len(c.subs))
	for ch := range c.subs {
		channels = append(channels, ch)
	}
	sort.Strings(channels) // deterministic RNG draw order
	for _, ch := range channels {
		hit := false
		for _, sv := range c.subs[ch] {
			if sv == server {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		// Recompute targets; a dead server still named by the entry means
		// the entry is stale — drop it and fall back.
		entry, _, explicit := c.store.Peek(ch)
		if explicit && containsID(entry.Servers, server) {
			if live := c.sim.servers[server]; live == nil {
				c.store.Forget(ch)
				entry, _ = c.store.Lookup(ch, now)
			}
		}
		targets := c.liveTargets(ch, plan.SubscribeTargets(entry, ch, c.clientKey()))
		c.subs[ch] = append([]plan.ServerID(nil), targets...)
		for _, sv := range targets {
			c.subscribeOn(sv, ch, true)
		}
	}
	inbox := plan.InboxChannel(c.id)
	if c.store.Base().Home(inbox) == server {
		targets := c.liveTargets(inbox, []plan.ServerID{c.store.Base().Home(inbox)})
		for _, sv := range targets {
			c.subscribeOn(sv, inbox, false)
		}
	}
}

// updateRing folds the ring membership carried by a control envelope into
// the client's fallback ring, re-homing the redirect inbox if its
// consistent-hash home moved.
func (c *Client) updateRing(env *message.Envelope) {
	if len(env.RingServers) == 0 {
		return
	}
	inbox := plan.InboxChannel(c.id)
	oldHome := c.store.Base().Home(inbox)
	if !c.store.UpdateRing(env.RingServers, env.PlanVersion) {
		return
	}
	newHome := c.store.Base().Home(inbox)
	if newHome != oldHome {
		c.subscribeOn(newHome, inbox, false)
		c.unsubscribeOn(oldHome, inbox)
	}
}

func (c *Client) clientKey() string { return plan.InboxChannel(c.id) }

// arrivalAt returns the in-order arrival time at server for something this
// client sends now: the sampled uplink latency, clamped so it never precedes
// an earlier send on the same connection.
func (c *Client) arrivalAt(server plan.ServerID) time.Time {
	at := c.sim.eng.Now().Add(c.sim.delay(netsim.Client, netsim.Infra))
	if last := c.sendFIFO[server]; at.Before(last) {
		at = last
	}
	c.sendFIFO[server] = at
	return at
}

func (c *Client) subscribeOn(server plan.ServerID, channel string, _ bool) {
	srv := c.sim.servers[server]
	if srv == nil {
		return
	}
	id := c.id
	c.sim.eng.At(c.arrivalAt(server), func() {
		srv.subscribe(id, channel)
	})
}

func (c *Client) unsubscribeOn(server plan.ServerID, channel string) {
	srv := c.sim.servers[server]
	if srv == nil {
		return
	}
	id := c.id
	c.sim.eng.At(c.arrivalAt(server), func() {
		srv.unsubscribe(id, channel)
	})
}

// ---------------------------------------------------------------------------
// Load balancer loop

func (s *Sim) lbTick() {
	now := s.eng.Now()
	if !s.lastPlan.IsZero() && now.Sub(s.lastPlan) < s.cfg.Balancer.TWait {
		return
	}
	loads := s.loadsFor()
	decision := s.planner.GeneratePlan(s.plan, loads)
	if !decision.Changed() {
		return
	}
	s.lastPlan = now
	s.rebalances = append(s.rebalances, Rebalance{Time: now, Reason: decision.Reason})

	if decision.Plan != nil {
		s.plan = decision.Plan
		s.publishPlan()
	}
	if decision.Spawn > 0 && !s.spawning {
		s.spawning = true
		s.eng.After(s.cfg.BootDelay, s.finishSpawn)
	}
	if decision.Release != "" {
		s.state.Forget(decision.Release)
		victim := decision.Release
		s.eng.After(s.cfg.ReleaseGrace, func() { s.killServer(victim) })
	}
}

func (s *Sim) finishSpawn() {
	s.spawning = false
	s.nextSpawn++
	id := fmt.Sprintf("pub-x%d", s.nextSpawn)
	s.addServer(id, uint32(0xE000+s.nextSpawn))
	next := s.plan.Clone()
	next.Version = s.plan.Version + 1
	// New servers join the fallback ring in every mode: clients hash
	// unmapped channels over the active server set (§II-C).
	next.AddRingServer(id)
	s.plan = next
	s.rebalances = append(s.rebalances, Rebalance{Time: s.eng.Now(), Reason: "server " + id + " joined"})
	s.publishPlan()
}

func (s *Sim) publishPlan() {
	for _, id := range s.serverIDs {
		srv := s.servers[id]
		p := s.plan.Clone()
		target := srv
		s.eng.After(s.cfg.Path.LAN, func() {
			if target.alive {
				target.core.OnPlan(p, s.eng.Now())
			}
		})
	}
}

// loadsFor mirrors the live orchestrator's snapshot synthesis.
func (s *Sim) loadsFor() []balancer.ServerLoad {
	loads := s.state.Snapshot()
	have := make(map[string]struct{}, len(loads))
	for _, l := range loads {
		have[l.Server] = struct{}{}
	}
	for _, id := range s.plan.Servers {
		if _, ok := have[id]; !ok {
			loads = append(loads, balancer.ServerLoad{
				Server:   id,
				MaxBps:   s.cfg.MaxOutgoingBps,
				Channels: map[string]balancer.ChannelLoad{},
			})
		}
	}
	kept := loads[:0]
	for _, l := range loads {
		if s.plan.HasServer(l.Server) {
			kept = append(kept, l)
		}
	}
	return kept
}

// ---------------------------------------------------------------------------
// Periodic bookkeeping

func (s *Sim) unitTick() {
	var outMsgs, outBytes int64
	var maxLR, sumLR float64
	for _, id := range s.serverIDs {
		srv := s.servers[id]
		outMsgs += srv.unitMsgs
		outBytes += int64(srv.unitBytes)
		lr := srv.unitBytes / s.cfg.Unit.Seconds() / s.cfg.MaxOutgoingBps
		sumLR += lr
		if lr > maxLR {
			maxLR = lr
		}
		srv.unitMsgs = 0
		srv.unitBytes = 0
	}
	snap := UnitSnapshot{
		Time:              s.eng.Now(),
		Elapsed:           s.Elapsed(),
		ActiveServers:     len(s.serverIDs),
		Clients:           len(s.clients),
		OutMsgs:           outMsgs,
		OutBytes:          outBytes,
		MaxLoadRatio:      maxLR,
		DroppedDeliveries: s.dropped,
		InstanceSeconds:   s.InstanceSeconds(),
	}
	if n := len(s.serverIDs); n > 0 {
		snap.AvgLoadRatio = sumLR / float64(n)
	}
	if n := len(s.clients); n > 0 {
		entries := 0
		for _, c := range s.clients {
			entries += c.store.Len()
		}
		snap.AvgLocalPlanSize = float64(entries) / float64(n)
	}
	for _, fn := range s.onUnit {
		fn(snap)
	}
}

func (s *Sim) sweepClients() {
	now := s.eng.Now()
	for _, c := range s.clients {
		client := c
		c.store.Sweep(now, func(ch string) bool { return client.Subscribed(ch) })
	}
}

// ---------------------------------------------------------------------------
// helpers

func (s *Sim) delay(from, to netsim.NodeClass) time.Duration {
	return s.cfg.Path.Delay(from, to, s.rng)
}

func diffServers(a, b []plan.ServerID) []plan.ServerID {
	var out []plan.ServerID
	for _, x := range a {
		if !containsID(b, x) {
			out = append(out, x)
		}
	}
	return out
}

func containsID(list []plan.ServerID, s plan.ServerID) bool {
	for _, have := range list {
		if have == s {
			return true
		}
	}
	return false
}

// DebugServers returns one diagnostic line per server: backlog and the topN
// channels by bytes delivered since the last call, for experiment debugging.
func (s *Sim) DebugServers(topN int) []string {
	out := make([]string, 0, len(s.serverIDs))
	for _, id := range s.serverIDs {
		srv := s.servers[id]
		type chLoad struct {
			ch    string
			bytes float64
			subs  int
		}
		var chans []chLoad
		var total float64
		for ch, b := range srv.debugBytes {
			chans = append(chans, chLoad{ch, b, len(srv.subs[ch])})
			total += b
		}
		sort.Slice(chans, func(i, j int) bool {
			if chans[i].bytes != chans[j].bytes {
				return chans[i].bytes > chans[j].bytes
			}
			return chans[i].ch < chans[j].ch
		})
		if len(chans) > topN {
			chans = chans[:topN]
		}
		line := fmt.Sprintf("%s bytes=%.0fk backlog=%v chans=%d top:", id, total/1e3,
			srv.egress.QueueDelay(s.eng.Now()).Round(time.Millisecond), len(srv.subs))
		for _, c := range chans {
			line += fmt.Sprintf(" %s(%.0fk/%dsub)", c.ch, c.bytes/1e3, c.subs)
		}
		out = append(out, line)
		srv.debugBytes = make(map[string]float64)
		srv.deliverFIFO = make(map[uint32]time.Time)
	}
	return out
}
