package sim

import (
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/plan"
)

// TestStuckSubscribersUnderLoad: channel migrated off a saturated pub1;
// how fast do fallback subscribers converge to the new holder?
func TestStuckSubscribersUnderLoad(t *testing.T) {
	s := New(Config{Seed: 5, Mode: ModeNone, InitialServers: []string{"pub1", "pub2"}})
	// Saturate pub1 with background traffic: one busy channel pinned there.
	bg := s.AddClient(50)
	bgsubs := make([]*Client, 30)
	for i := range bgsubs {
		bgsubs[i] = s.AddClient(uint32(60 + i))
		bgsubs[i].Subscribe("busy")
	}
	p := plan.New("pub1", "pub2")
	p.Version = 2
	p.Set("busy", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"pub1"}})
	p.Set("game", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{"pub2"}})
	s.SetPlan(p)
	s.RunFor(2 * time.Second)
	// 30 subs * 200B * N msg/s; need > 1.25e6 B/s offered: N=300/s total => each bg msg fans to 30 subs.
	// one publisher at 30 msg/s -> 30*30*230 = 207kB... need more. 200 msg/s.
	s.Engine().Every(5*time.Millisecond, func() { bg.PublishTimed("busy", 200) })
	s.RunFor(5 * time.Second)
	t.Logf("pub1 backlog: %v", s.servers["pub1"].egress.QueueDelay(s.Now()))

	// Now "game" is explicitly on pub2, but new subscribers use fallback.
	// Which server does fallback point to?
	home := plan.New("pub1", "pub2").Ring().Lookup("game")
	t.Logf("fallback home of game: %s", home)
	subs := make([]*Client, 20)
	for i := range subs {
		subs[i] = s.AddClient(uint32(200 + i))
		subs[i].Subscribe("game")
	}
	pubC := s.AddClient(300)
	s.Engine().Every(300*time.Millisecond, func() { pubC.PublishTimed("game", 200) })
	// Subscribers must converge onto the explicit holder within seconds,
	// even though their fallback points at the saturated server.
	deadline := 20
	converged := false
	for tick := 0; tick < deadline; tick++ {
		s.RunFor(time.Second)
		onHome := len(s.servers[home].subs["game"])
		onPub2 := len(s.servers["pub2"].subs["game"])
		if home == "pub2" {
			// Fallback already points at the right server; nothing to prove.
			converged = onPub2 == 20
			break
		}
		if onHome == 0 && onPub2 == 20 {
			converged = true
			if tick > 10 {
				t.Fatalf("convergence took %ds, too slow", tick+1)
			}
			break
		}
	}
	if !converged {
		t.Fatal("subscribers never converged onto the explicit holder")
	}
}
