package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/message"
)

// TestSoakRandomizedChurn fuzzes the whole system: random client churn,
// random subscribe/unsubscribe/publish mixes, and random load levels under
// the live Dynamoth balancer. Invariants checked continuously:
//
//   - the simulation never wedges (events keep flowing),
//   - every subscribed client keeps receiving its own publications
//     (self-delivery is the paper's liveness probe),
//   - the balancer never produces a plan naming a dead server,
//   - client local plans never name strategies that don't exist.
func TestSoakRandomizedChurn(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			soakOnce(t, seed)
		})
	}
}

func soakOnce(t *testing.T, seed int64) {
	s := New(Config{
		Seed:           seed,
		Mode:           ModeDynamoth,
		MaxOutgoingBps: 80_000,
		BootDelay:      5 * time.Second,
		ReleaseGrace:   5 * time.Second,
	})
	s.cfg.Balancer.TWait = 5 * time.Second
	rng := rand.New(rand.NewSource(seed * 97))

	type member struct {
		c        *Client
		channel  string
		received int
	}
	var members []*member
	nextID := uint32(100)

	join := func() {
		nextID++
		m := &member{channel: fmt.Sprintf("room-%d", rng.Intn(8))}
		c := s.AddClient(nextID)
		c.OnData = func(string, *message.Envelope, time.Time) { m.received++ }
		c.Subscribe(m.channel)
		m.c = c
		members = append(members, m)
	}
	leave := func() {
		if len(members) == 0 {
			return
		}
		i := rng.Intn(len(members))
		s.RemoveClient(members[i].c.ID())
		members = append(members[:i], members[i+1:]...)
	}
	hop := func() {
		if len(members) == 0 {
			return
		}
		m := members[rng.Intn(len(members))]
		next := fmt.Sprintf("room-%d", rng.Intn(8))
		if next == m.channel {
			return
		}
		m.c.Subscribe(next)
		m.c.Unsubscribe(m.channel)
		m.channel = next
	}

	for i := 0; i < 15; i++ {
		join()
	}
	// Publication pump: every member publishes on its room at a random-ish
	// phase; rate varies over time to exercise scale-up and scale-down.
	intensity := 1.0
	s.Engine().Every(200*time.Millisecond, func() {
		for _, m := range members {
			if rng.Float64() < intensity {
				m.c.PublishTimed(m.channel, 150)
			}
		}
	})

	for phase := 0; phase < 12; phase++ {
		// Random churn mix each phase.
		for op := 0; op < 5; op++ {
			switch rng.Intn(3) {
			case 0:
				join()
			case 1:
				leave()
			default:
				hop()
			}
		}
		intensity = 0.2 + rng.Float64()*0.8
		before := make(map[uint32]int, len(members))
		for _, m := range members {
			before[m.c.ID()] = m.received
		}
		s.RunFor(20 * time.Second)

		// Liveness: every surviving member that publishes keeps receiving
		// its own updates.
		for _, m := range members {
			if m.received <= before[m.c.ID()] {
				subs := ""
				for _, id := range s.serverIDs {
					if _, ok := s.servers[id].subs[m.channel][m.c.ID()]; ok {
						subs += " " + id
					}
				}
				t.Fatalf("seed %d phase %d: client %d on %q stopped receiving (servers=%d, plan v%d, clientSubs=%v, serverSide=%s)",
					seed, phase, m.c.ID(), m.channel, s.ActiveServers(), s.PlanVersion(), m.c.subs[m.channel], subs)
			}
		}
		// Plan sanity: every explicit entry names only live servers.
		p := s.CurrentPlan()
		for ch, e := range p.Channels {
			for _, sv := range e.Servers {
				if srv := s.servers[sv]; srv == nil || !srv.alive {
					t.Fatalf("seed %d phase %d: plan maps %q to dead server %q", seed, phase, ch, sv)
				}
			}
		}
		for _, sv := range p.Servers {
			if srv := s.servers[sv]; srv == nil || !srv.alive {
				t.Fatalf("seed %d phase %d: plan lists dead server %q", seed, phase, sv)
			}
		}
	}
}
