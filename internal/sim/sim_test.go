package sim

import (
	"fmt"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/netsim"
	"github.com/dynamoth/dynamoth/internal/plan"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(epoch)
	var order []int
	e.At(epoch.Add(3*time.Second), func() { order = append(order, 3) })
	e.At(epoch.Add(1*time.Second), func() { order = append(order, 1) })
	e.At(epoch.Add(2*time.Second), func() { order = append(order, 2) })
	e.At(epoch.Add(1*time.Second), func() { order = append(order, 11) }) // same instant: FIFO
	n := e.RunUntil(epoch.Add(10 * time.Second))
	if n != 4 {
		t.Fatalf("executed %d events", n)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v", order)
		}
	}
	if !e.Now().Equal(epoch.Add(10 * time.Second)) {
		t.Fatalf("now=%v", e.Now())
	}
}

func TestEngineRunUntilPartial(t *testing.T) {
	e := NewEngine(epoch)
	ran := 0
	e.At(epoch.Add(time.Second), func() { ran++ })
	e.At(epoch.Add(time.Hour), func() { ran++ })
	e.RunUntil(epoch.Add(time.Minute))
	if ran != 1 || e.Pending() != 1 {
		t.Fatalf("ran=%d pending=%d", ran, e.Pending())
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine(epoch)
	n := 0
	e.Every(time.Second, func() { n++ })
	e.RunUntil(epoch.Add(10 * time.Second))
	if n != 10 {
		t.Fatalf("ticks=%d", n)
	}
}

func TestEnginePastEventClamps(t *testing.T) {
	e := NewEngine(epoch)
	ran := false
	e.At(epoch.Add(-time.Hour), func() { ran = true })
	e.RunUntil(epoch)
	if !ran {
		t.Fatal("past event never ran")
	}
}

// fixedSim builds a sim with deterministic latency for exact assertions.
func fixedSim(t *testing.T, cfg Config) *Sim {
	t.Helper()
	if cfg.Path == nil {
		cfg.Path = &netsim.PathModel{WAN: netsim.Fixed(30 * time.Millisecond), LAN: time.Millisecond}
	}
	return New(cfg)
}

func TestSimSelfDeliveryRTT(t *testing.T) {
	s := fixedSim(t, Config{Mode: ModeNone, InitialServers: []string{"pub1"}})
	c := s.AddClient(100)
	var rtts []time.Duration
	c.OnData = func(_ string, _ *message.Envelope, sentAt time.Time) {
		rtts = append(rtts, s.Now().Sub(sentAt))
	}
	c.Subscribe("tile")
	s.RunFor(time.Second) // let the subscription land
	for i := 0; i < 5; i++ {
		c.PublishTimed("tile", 100)
		s.RunFor(time.Second)
	}
	if len(rtts) != 5 {
		t.Fatalf("self-deliveries=%d, want 5", len(rtts))
	}
	for _, rtt := range rtts {
		// 30ms up + 30ms down + service time; no queueing at this load.
		if rtt < 60*time.Millisecond || rtt > 70*time.Millisecond {
			t.Fatalf("unloaded RTT=%v, want ~60ms", rtt)
		}
	}
}

func TestSimKingLatencyAveragesLikeThePaper(t *testing.T) {
	s := New(Config{Mode: ModeNone, Seed: 7})
	c := s.AddClient(100)
	var total time.Duration
	count := 0
	c.OnData = func(_ string, _ *message.Envelope, sentAt time.Time) {
		total += s.Now().Sub(sentAt)
		count++
	}
	c.Subscribe("tile")
	s.RunFor(time.Second)
	for i := 0; i < 200; i++ {
		c.PublishTimed("tile", 100)
		s.RunFor(500 * time.Millisecond)
	}
	if count < 190 {
		t.Fatalf("deliveries=%d", count)
	}
	mean := total / time.Duration(count)
	// Paper Fig 5c steady state: ~75ms.
	if mean < 50*time.Millisecond || mean > 110*time.Millisecond {
		t.Fatalf("mean RTT=%v, want ~75ms", mean)
	}
}

func TestSimFanOutThroughEgress(t *testing.T) {
	s := fixedSim(t, Config{Mode: ModeNone})
	pub := s.AddClient(1)
	got := 0
	pub.OnData = func(string, *message.Envelope, time.Time) { got++ }
	pub.Subscribe("c")
	// Third-party subscribers: deliveries counted in link stats.
	for i := 2; i <= 11; i++ {
		s.AddClient(uint32(i)).Subscribe("c")
	}
	var lastOut int64
	s.OnUnit(func(u UnitSnapshot) { lastOut += u.OutMsgs })
	s.RunFor(time.Second)
	pub.PublishTimed("c", 100)
	s.RunFor(2 * time.Second)
	if got != 1 {
		t.Fatalf("self-deliveries=%d", got)
	}
	if lastOut != 11 {
		t.Fatalf("deliveries=%d, want 11 (publisher + 10 others)", lastOut)
	}
}

func TestSimEgressSaturationRaisesLatency(t *testing.T) {
	// Tiny capacity: 100 messages of ~140B at once serialize over seconds.
	s := fixedSim(t, Config{Mode: ModeNone, MaxOutgoingBps: 5000})
	c := s.AddClient(1)
	var last time.Duration
	c.OnData = func(_ string, _ *message.Envelope, sentAt time.Time) {
		last = s.Now().Sub(sentAt)
	}
	c.Subscribe("c")
	s.RunFor(time.Second)
	for i := 0; i < 50; i++ {
		c.PublishTimed("c", 100)
	}
	s.RunFor(10 * time.Second)
	// The last message queued behind 49 others of ~140 wire bytes at
	// 5000 B/s: > 1s of queueing delay.
	if last < 500*time.Millisecond {
		t.Fatalf("saturated RTT=%v, want queueing-dominated", last)
	}
}

func TestSimConnOverflowDropsAndRepairs(t *testing.T) {
	s := fixedSim(t, Config{
		Mode:            ModeNone,
		ConnDrainPerSec: 10,
		ConnQueueLimit:  5,
	})
	c := s.AddClient(1)
	c.Subscribe("c")
	s.RunFor(time.Second)
	for i := 0; i < 50; i++ {
		c.PublishTimed("c", 50)
	}
	s.RunFor(5 * time.Second)
	var snap UnitSnapshot
	s.OnUnit(func(u UnitSnapshot) { snap = u })
	s.RunFor(2 * time.Second)
	if snap.DroppedDeliveries == 0 {
		t.Fatal("no drops despite tiny connection buffer")
	}
}

func TestSimMigrationKeepsSelfDelivery(t *testing.T) {
	s := fixedSim(t, Config{Mode: ModeNone, InitialServers: []string{"pub1", "pub2"}})
	c := s.AddClient(42)
	received := 0
	c.OnData = func(string, *message.Envelope, time.Time) { received++ }
	c.Subscribe("game")
	s.RunFor(time.Second)

	// Publish a few, then migrate the channel, then publish more.
	for i := 0; i < 3; i++ {
		c.PublishTimed("game", 64)
		s.RunFor(time.Second)
	}
	from := s.plan.Home("game")
	to := "pub1"
	if from == "pub1" {
		to = "pub2"
	}
	next := s.plan.Clone()
	next.Version = 2
	next.Set("game", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{to}})
	s.SetPlan(next)
	for i := 0; i < 7; i++ {
		c.PublishTimed("game", 64)
		s.RunFor(time.Second)
	}
	if received != 10 {
		t.Fatalf("received %d of 10 across migration", received)
	}
	// The client converged onto the new server.
	if subs := s.servers[from].subs["game"]; len(subs) != 0 {
		t.Fatalf("client still subscribed on old server: %v", subs)
	}
}

func TestSimAllSubscribersReplication(t *testing.T) {
	s := fixedSim(t, Config{Mode: ModeNone, InitialServers: []string{"pub1", "pub2", "pub3"}})
	subC := s.AddClient(1)
	received := 0
	subC.OnData = func(string, *message.Envelope, time.Time) { received++ }
	subC.Subscribe("hot")
	pubs := make([]*Client, 5)
	for i := range pubs {
		pubs[i] = s.AddClient(uint32(10 + i))
	}
	s.RunFor(time.Second)

	next := s.plan.Clone()
	next.Version = 2
	next.Set("hot", plan.Entry{Strategy: plan.StrategyAllSubscribers, Servers: []plan.ServerID{"pub1", "pub2", "pub3"}})
	s.SetPlan(next)

	const rounds = 20
	for i := 0; i < rounds; i++ {
		for _, p := range pubs {
			p.PublishTimed("hot", 64)
		}
		s.RunFor(500 * time.Millisecond)
	}
	s.RunFor(2 * time.Second)
	// wait: OnData only fires for self-deliveries; subC publishes nothing.
	// Verify instead that the subscriber converged onto all three replicas.
	total := 0
	for _, id := range []string{"pub1", "pub2", "pub3"} {
		if _, ok := s.servers[id].subs["hot"][1]; ok {
			total++
		}
	}
	if total != 3 {
		t.Fatalf("subscriber on %d replicas, want 3", total)
	}
	// And the publishers learned the replicated entry: publications spread.
	spread := map[string]bool{}
	for _, id := range []string{"pub1", "pub2", "pub3"} {
		if s.servers[id].accum.Subscribers("hot") > 0 {
			spread[id] = true
		}
	}
	if len(spread) != 3 {
		t.Fatalf("replicas seeing traffic: %v", spread)
	}
	_ = received
}

func TestSimDynamothSpawnsUnderOverload(t *testing.T) {
	s := New(Config{
		Seed:           3,
		Mode:           ModeDynamoth,
		MaxOutgoingBps: 50_000, // small capacity so a few clients overload it
		BootDelay:      5 * time.Second,
	})
	s.cfg.Balancer.TWait = 5 * time.Second

	// 20 clients all in one busy area across 4 channels.
	for i := 0; i < 20; i++ {
		c := s.AddClient(uint32(100 + i))
		c.Subscribe(fmt.Sprintf("room-%d", i%4))
	}
	// Publication pump: each client 5 msg/s.
	s.Engine().Every(200*time.Millisecond, func() {
		for i := 0; i < 20; i++ {
			if c := s.Client(uint32(100 + i)); c != nil {
				c.PublishTimed(fmt.Sprintf("room-%d", i%4), 100)
			}
		}
	})
	s.RunFor(120 * time.Second)
	if s.ActiveServers() < 2 {
		t.Fatalf("no spawn under overload: servers=%d rebalances=%+v", s.ActiveServers(), s.Rebalances())
	}
	if len(s.Rebalances()) == 0 {
		t.Fatal("no rebalances recorded")
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() (int64, int, uint64) {
		s := New(Config{Seed: 42, Mode: ModeDynamoth, MaxOutgoingBps: 80_000})
		var out int64
		s.OnUnit(func(u UnitSnapshot) { out += u.OutMsgs })
		for i := 0; i < 10; i++ {
			c := s.AddClient(uint32(10 + i))
			c.Subscribe(fmt.Sprintf("t-%d", i%3))
		}
		s.Engine().Every(250*time.Millisecond, func() {
			for i := 0; i < 10; i++ {
				if c := s.Client(uint32(10 + i)); c != nil {
					c.PublishTimed(fmt.Sprintf("t-%d", i%3), 80)
				}
			}
		})
		s.RunFor(60 * time.Second)
		return out, s.ActiveServers(), s.PlanVersion()
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
}

func TestSimClientChurn(t *testing.T) {
	s := fixedSim(t, Config{Mode: ModeNone})
	c := s.AddClient(5)
	c.Subscribe("a")
	s.RunFor(time.Second)
	if got := s.ClientCount(); got != 1 {
		t.Fatalf("clients=%d", got)
	}
	s.RemoveClient(5)
	s.RunFor(time.Second)
	if got := s.ClientCount(); got != 0 {
		t.Fatalf("clients after removal=%d", got)
	}
	// No lingering subscriptions on the server.
	for _, srv := range s.servers {
		if len(srv.subs["a"]) != 0 {
			t.Fatal("subscription leak after client removal")
		}
	}
}

func TestSimClientsSurviveServerRelease(t *testing.T) {
	// Scale up under load, stop the load, and verify that after the
	// balancer releases servers the surviving subscriptions still work.
	s := New(Config{
		Seed:           11,
		Mode:           ModeDynamoth,
		MaxOutgoingBps: 60_000,
		BootDelay:      5 * time.Second,
		ReleaseGrace:   5 * time.Second,
	})
	s.cfg.Balancer.TWait = 5 * time.Second

	clients := make([]*Client, 12)
	received := make([]int, len(clients))
	for i := range clients {
		clients[i] = s.AddClient(uint32(100 + i))
		idx := i
		clients[i].OnData = func(string, *message.Envelope, time.Time) { received[idx]++ }
		clients[i].Subscribe(fmt.Sprintf("room-%d", i%3))
	}
	pumping := true
	s.Engine().Every(100*time.Millisecond, func() {
		if !pumping {
			return
		}
		for i, c := range clients {
			c.PublishTimed(fmt.Sprintf("room-%d", i%3), 150)
		}
	})
	s.RunFor(90 * time.Second)
	if s.ActiveServers() < 2 {
		t.Fatalf("never scaled up: %d servers", s.ActiveServers())
	}
	peak := s.ActiveServers()
	// Quiet period: load drops, the balancer releases servers.
	pumping = false
	s.RunFor(120 * time.Second)
	// The pool must shrink below its peak (release cadence varies a little
	// run to run; reaching the exact minimum is not required within the
	// window).
	if s.ActiveServers() >= peak {
		t.Fatalf("never scaled back down: %d servers (peak %d)", s.ActiveServers(), peak)
	}
	// Traffic still flows after the releases: every client still receives
	// its own publications on its room.
	before := append([]int(nil), received...)
	pumping = true
	s.RunFor(10 * time.Second)
	for i := range clients {
		if received[i] <= before[i] {
			t.Fatalf("client %d stopped receiving after server release", i)
		}
	}
}

func TestSimConsistentHashingModeSpawns(t *testing.T) {
	s := New(Config{
		Seed:           21,
		Mode:           ModeConsistentHashing,
		MaxOutgoingBps: 40_000,
		BootDelay:      5 * time.Second,
	})
	s.cfg.Balancer.TWait = 5 * time.Second
	for i := 0; i < 16; i++ {
		c := s.AddClient(uint32(100 + i))
		c.Subscribe(fmt.Sprintf("t-%d", i%4))
	}
	s.Engine().Every(150*time.Millisecond, func() {
		for i := 0; i < 16; i++ {
			if c := s.Client(uint32(100 + i)); c != nil {
				c.PublishTimed(fmt.Sprintf("t-%d", i%4), 150)
			}
		}
	})
	s.RunFor(90 * time.Second)
	if s.ActiveServers() < 2 {
		t.Fatalf("CH mode never spawned: %d servers", s.ActiveServers())
	}
	// CH spawns grow the fallback ring: the new server must own part of it.
	p := s.CurrentPlan()
	if len(p.RingServers) != s.ActiveServers() {
		t.Fatalf("ring members=%d servers=%d", len(p.RingServers), s.ActiveServers())
	}
	// And CH never creates explicit channel mappings.
	for ch := range p.Channels {
		t.Fatalf("CH plan has explicit mapping for %q", ch)
	}
}
