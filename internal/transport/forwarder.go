package transport

import (
	"sync"

	"github.com/dynamoth/dynamoth/internal/plan"
)

// PooledForwarder publishes on remote pub/sub servers over pooled
// connections from a Dialer — the dispatcher-to-dispatcher forwarding path
// of a distributed deployment. Over TCP the pooled connections pipeline:
// ForwardPublish returns as soon as the command is buffered, replies are
// drained asynchronously, and a mid-pipeline failure surfaces on the next
// ForwardPublish to that server. A connection that reports a publish error
// is dropped and re-dialed on the next use, which also clears the pipelined
// error state.
type PooledForwarder struct {
	dialer Dialer

	mu    sync.Mutex
	conns map[plan.ServerID]Conn
}

// NewPooledForwarder creates a forwarder over the given dialer.
func NewPooledForwarder(dialer Dialer) *PooledForwarder {
	return &PooledForwarder{
		dialer: dialer,
		conns:  make(map[plan.ServerID]Conn),
	}
}

// ForwardPublish implements the dispatcher's Forwarder contract.
func (f *PooledForwarder) ForwardPublish(server plan.ServerID, channel string, payload []byte) error {
	conn, err := f.conn(server)
	if err != nil {
		return err
	}
	if err := conn.Publish(channel, payload); err != nil {
		f.drop(server, conn)
		return err
	}
	return nil
}

// Close closes all pooled connections.
func (f *PooledForwarder) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, c := range f.conns {
		_ = c.Close()
		delete(f.conns, id)
	}
}

func (f *PooledForwarder) conn(server plan.ServerID) (Conn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.conns[server]; ok {
		return c, nil
	}
	c, err := f.dialer.Dial(server, dropOnDisconnect{f: f, server: server})
	if err != nil {
		return nil, err
	}
	f.conns[server] = c
	return c, nil
}

func (f *PooledForwarder) drop(server plan.ServerID, old Conn) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.conns[server] == old {
		delete(f.conns, server)
	}
	_ = old.Close()
}

// dropOnDisconnect evicts the pooled connection when the peer goes away.
type dropOnDisconnect struct {
	f      *PooledForwarder
	server plan.ServerID
}

func (d dropOnDisconnect) OnMessage(string, []byte) {}

func (d dropOnDisconnect) OnDisconnect(error) {
	d.f.mu.Lock()
	defer d.f.mu.Unlock()
	delete(d.f.conns, d.server)
}
