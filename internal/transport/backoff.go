package transport

import (
	"sync/atomic"
	"time"
)

// Backoff computes capped exponential redial delays with "equal jitter":
// attempt n waits uniformly in [d/2, d] where d = min(Min·2ⁿ, Max). The
// deterministic lower bound of d/2 guarantees a minimum spacing between
// attempts (no hot-spin even with adversarial jitter), while the random
// upper half spreads simultaneous reconnect storms after a broker failure.
type Backoff struct {
	// Min is the attempt-0 delay (default 100 ms).
	Min time.Duration
	// Max caps the exponential growth (default 5 s).
	Max time.Duration
	// Rand supplies jitter in [0,1); use NewJitter for a deterministic
	// per-instance source. Nil falls back to a lock-free package-level
	// generator — never the global math/rand source, whose mutex every
	// redialling client would contend on during a reconnect storm (the
	// exact moment backoff matters).
	Rand func() float64
}

// NewJitter returns a deterministic jitter source for Backoff.Rand, seeded
// from seed (a zero seed selects a fixed non-zero constant). The returned
// function is not safe for concurrent use; give each client its own and call
// it under whatever lock serializes that client's redials.
func NewJitter(seed int64) func() float64 {
	s := uint64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s>>11) / (1 << 53)
	}
}

// fallbackState drives the nil-Rand jitter: a splitmix64 counter stream,
// advanced with one atomic add per draw so concurrent clients never share a
// lock.
var fallbackState atomic.Uint64

func fallbackJitter() float64 {
	x := fallbackState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Delay returns the wait before redial attempt n (0-based). Negative
// attempts are treated as 0.
func (b Backoff) Delay(attempt int) time.Duration {
	min := b.Min
	if min <= 0 {
		min = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 5 * time.Second
	}
	if min > max {
		min = max
	}
	d := min
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	r := b.Rand
	if r == nil {
		r = fallbackJitter
	}
	half := d / 2
	return half + time.Duration(r()*float64(d-half))
}
