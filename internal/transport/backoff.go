package transport

import (
	"math/rand"
	"time"
)

// Backoff computes capped exponential redial delays with "equal jitter":
// attempt n waits uniformly in [d/2, d] where d = min(Min·2ⁿ, Max). The
// deterministic lower bound of d/2 guarantees a minimum spacing between
// attempts (no hot-spin even with adversarial jitter), while the random
// upper half spreads simultaneous reconnect storms after a broker failure.
type Backoff struct {
	// Min is the attempt-0 delay (default 100 ms).
	Min time.Duration
	// Max caps the exponential growth (default 5 s).
	Max time.Duration
	// Rand supplies jitter in [0,1); nil uses math/rand's global source.
	// Tests inject a deterministic source.
	Rand func() float64
}

// Delay returns the wait before redial attempt n (0-based). Negative
// attempts are treated as 0.
func (b Backoff) Delay(attempt int) time.Duration {
	min := b.Min
	if min <= 0 {
		min = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 5 * time.Second
	}
	if min > max {
		min = max
	}
	d := min
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	r := b.Rand
	if r == nil {
		r = rand.Float64
	}
	half := d / 2
	return half + time.Duration(r()*float64(d-half))
}
