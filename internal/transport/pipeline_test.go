package transport

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/plan"
)

// TestTCPPipelineAcksDrain verifies the pipelined publish path: Publish
// returns immediately, and the ack loop drains the server replies until the
// outstanding count returns to zero.
func TestTCPPipelineAcksDrain(t *testing.T) {
	d := tcpSetup(t)
	h := newRecHandler()
	conn, err := d.Dial("t1", h)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tc := conn.(*tcpConn)
	const n = 500
	for i := 0; i < n; i++ {
		if err := conn.Publish("pipe", []byte("payload")); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for tc.Outstanding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outstanding=%d never drained", tc.Outstanding())
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-h.disc:
		t.Fatalf("unexpected disconnect: %v", err)
	default:
	}
}

// errServer is a fake RESP endpoint that answers every write on a connection
// with a RESP error, standing in for a broker that rejects PUBLISH.
func errServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
					if _, err := conn.Write([]byte("-ERR publish rejected\r\n")); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestTCPPipelineRejectionSurfacesOnLaterPublish verifies the asynchronous
// error contract: a server that rejects a pipelined PUBLISH does not fail
// that call, but poisons the connection so a subsequent Publish reports the
// rejection.
func TestTCPPipelineRejectionSurfacesOnLaterPublish(t *testing.T) {
	addr := errServer(t)
	d := NewTCPDialer(map[plan.ServerID]string{"bad": addr})
	h := newRecHandler()
	conn, err := d.Dial("bad", h)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Publish("c", []byte("x")); err != nil {
		t.Fatalf("first publish should pipeline cleanly, got %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := conn.Publish("c", []byte("x"))
		if err != nil {
			if !strings.Contains(err.Error(), "rejected") {
				t.Fatalf("err=%v, want the server rejection", err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("rejection never surfaced on a later publish")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPPipelineServerDropSurfacesOnPublish kills the broker mid-pipeline
// and verifies both failure channels: OnDisconnect fires (driving the client
// library's drop-and-redial repair), and later Publish calls return an error
// instead of silently dropping into a dead pipe.
func TestTCPPipelineServerDropSurfacesOnPublish(t *testing.T) {
	b := broker.New(broker.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		broker.Serve(ln, b) //nolint:errcheck
	}()
	d := NewTCPDialer(map[plan.ServerID]string{"t1": ln.Addr().String()})
	h := newRecHandler()
	conn, err := d.Dial("t1", h)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 64; i++ {
		if err := conn.Publish("pipe", []byte("pre-kill")); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	b.Close()
	ln.Close()
	<-served

	select {
	case err := <-h.disc:
		if err == nil {
			t.Fatal("nil disconnect reason")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no disconnect notification after server drop")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := conn.Publish("pipe", []byte("post-kill")); err != nil {
			return // surfaced: the sticky socket error or ErrClosed
		}
		if time.Now().After(deadline) {
			t.Fatal("publishing into a dead pipeline keeps succeeding")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// countingHandler counts disconnect callbacks; used by the race test where
// multiple notifications would indicate a broken closeOnce/explicit dance.
type countingHandler struct {
	disc atomic.Int64
}

func (h *countingHandler) OnMessage(string, []byte) {}
func (h *countingHandler) OnDisconnect(error)       { h.disc.Add(1) }

// TestTCPPipelineExplicitCloseDisconnectRace races explicit Close against a
// server-side teardown across several connections. Run under -race this
// exercises the atomic explicit flag and the closeOnce path: at most one
// disconnect callback may fire per connection, and none after a Close that
// wins the race.
func TestTCPPipelineExplicitCloseDisconnectRace(t *testing.T) {
	b := broker.New(broker.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		broker.Serve(ln, b) //nolint:errcheck
	}()
	d := NewTCPDialer(map[plan.ServerID]string{"t1": ln.Addr().String()})

	const conns = 8
	handlers := make([]*countingHandler, conns)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < conns; i++ {
		h := &countingHandler{}
		handlers[i] = h
		conn, err := d.Dial("t1", h)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(conn Conn) {
			defer wg.Done()
			<-start
			for j := 0; j < 32; j++ {
				if conn.Publish("race", []byte("x")) != nil {
					break
				}
			}
			conn.Close()
		}(conn)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		b.Close()
		ln.Close()
	}()
	close(start)
	wg.Wait()
	<-served
	time.Sleep(100 * time.Millisecond) // let stragglers deliver callbacks
	for i, h := range handlers {
		if n := h.disc.Load(); n > 1 {
			t.Fatalf("conn %d: %d disconnect callbacks, want at most 1", i, n)
		}
	}
}
