package transport

import (
	"net"
	"testing"
)

func TestListenPlain(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", ListenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Must be a real listener: a dial succeeds.
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestListenReusePort(t *testing.T) {
	if !ReusePortAvailable() {
		if _, err := Listen("127.0.0.1:0", ListenConfig{ReusePort: true}); err == nil {
			t.Fatal("ReusePort accepted on unsupported platform")
		}
		t.Skip("SO_REUSEPORT unavailable")
	}
	ln1, err := Listen("127.0.0.1:0", ListenConfig{ReusePort: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	// The whole point: a second listener binds the same address.
	ln2, err := Listen(ln1.Addr().String(), ListenConfig{ReusePort: true})
	if err != nil {
		t.Fatalf("second REUSEPORT bind: %v", err)
	}
	defer ln2.Close()

	// Without the flag, the same bind must fail.
	if ln3, err := Listen(ln1.Addr().String(), ListenConfig{}); err == nil {
		ln3.Close()
		t.Fatal("plain bind of occupied address succeeded")
	}
}

func TestRaiseFDLimit(t *testing.T) {
	got, err := RaiseFDLimit(0)
	if !ReusePortAvailable() { // non-linux stub
		if got != 0 || err != nil {
			t.Fatalf("stub RaiseFDLimit = %d, %v", got, err)
		}
		return
	}
	// Best-effort semantics: no error when already at/above the hard limit,
	// and the returned soft limit is a usable budget.
	if err != nil && got == 0 {
		t.Fatalf("RaiseFDLimit gave no usable limit: %v", err)
	}
	if got == 0 {
		t.Fatal("RaiseFDLimit returned 0 on linux")
	}
}
