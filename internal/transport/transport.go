// Package transport abstracts how Dynamoth components reach pub/sub
// servers: in-process broker sessions (optionally with simulated WAN
// latency, matching the paper's King-dataset injection) or real TCP
// connections speaking RESP. The client library and the dispatchers are
// written against Dialer/Conn and work over either.
package transport

import (
	"errors"

	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/plan"
)

// Handler receives asynchronous events from a connection.
type Handler interface {
	// OnMessage delivers one publication received on a subscribed channel.
	// Ownership of payload transfers to the handler: the transport never
	// reuses or retains the slice after the call, so the handler may keep
	// (or alias) it without copying.
	OnMessage(channel string, payload []byte)
	// OnDisconnect reports that the connection died (server shutdown, slow
	// consumer kill, network error). The Conn is unusable afterwards.
	OnDisconnect(err error)
}

// Conn is a pub/sub connection to one server.
type Conn interface {
	// Subscribe adds subscriptions.
	Subscribe(channels ...string) error
	// Unsubscribe removes subscriptions.
	Unsubscribe(channels ...string) error
	// Publish sends a payload on a channel. Implementations may pipeline:
	// a nil return means the publish was accepted for delivery, and a
	// server-side failure may instead surface on a later call. Publish may
	// retain payload after returning unless the Conn also implements
	// NonRetaining.
	Publish(channel string, payload []byte) error
	// Close tears the connection down. OnDisconnect is not called for
	// explicit closes.
	Close() error
}

// NonRetaining is implemented by Conns whose Publish fully consumes the
// payload before returning (the bytes are copied into an internal buffer or
// written to the socket synchronously). Callers may then reuse the payload's
// backing buffer immediately — the client library publishes from pooled
// envelope buffers when every target connection reports true.
type NonRetaining interface {
	PublishNonRetaining() bool
}

// ReplayResult reports what a cursor subscribe replayed (the broker's
// CSUBSCRIBE ack at the transport boundary).
type ReplayResult struct {
	// Replayed is how many retained frames the server queued before live
	// flow; they arrive as ordinary OnMessage deliveries.
	Replayed int
	// Missed is how many requested frames the server's ring had already
	// overwritten — a definite, unrecoverable gap.
	Missed uint64
	// Epoch is the server ring's current epoch (0 when the channel has no
	// ring), so the client can attribute Missed to the right sequence track.
	Epoch uint64
}

// CursorSubscriber is optionally implemented by Conns that support
// cursor-based resumable subscription: subscribe plus a replay of the frames
// the cursor's position misses from the server's per-channel replay ring.
// Conns without it (or servers without replay rings) degrade to plain
// Subscribe.
type CursorSubscriber interface {
	SubscribeCursor(channel string, cursor message.Cursor) (ReplayResult, error)
}

// RegionDeclarer is optionally implemented by Conns that can announce the
// client's subscriber region to the server (the RESP REGION command), so
// the broker can attribute delivery latency per region in its LLA reports.
// Conns without it simply go unattributed.
type RegionDeclarer interface {
	DeclareRegion(region string) error
}

// Dialer opens connections to pub/sub servers by ID.
type Dialer interface {
	Dial(server plan.ServerID, h Handler) (Conn, error)
}

// ErrUnknownServer is returned when dialing a server the dialer has no
// route to.
var ErrUnknownServer = errors.New("transport: unknown server")

// ErrClosed is returned from operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")
