package transport

import (
	"testing"
	"time"
)

func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Min: 100 * time.Millisecond, Max: 800 * time.Millisecond}
	for attempt := 0; attempt < 10; attempt++ {
		base := 100 * time.Millisecond << uint(attempt)
		if base > 800*time.Millisecond {
			base = 800 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt)
			if d < base/2 || d > base {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base/2, base)
			}
		}
	}
}

func TestBackoffDeterministicRand(t *testing.T) {
	// r=0 pins the floor, r→1 approaches the full base: the jitter window
	// is [d/2, d].
	floor := Backoff{Min: 200 * time.Millisecond, Max: time.Second, Rand: func() float64 { return 0 }}
	if d := floor.Delay(0); d != 100*time.Millisecond {
		t.Fatalf("floor delay=%v, want 100ms", d)
	}
	if d := floor.Delay(1); d != 200*time.Millisecond {
		t.Fatalf("floor delay(1)=%v, want 200ms", d)
	}
	almost := Backoff{Min: 200 * time.Millisecond, Max: time.Second, Rand: func() float64 { return 0.999999 }}
	if d := almost.Delay(0); d < 199*time.Millisecond || d > 200*time.Millisecond {
		t.Fatalf("ceiling delay=%v, want ~200ms", d)
	}
}

func TestNewJitterDeterministicPerSeed(t *testing.T) {
	a, b := NewJitter(7), NewJitter(7)
	other := NewJitter(8)
	var diverged bool
	for i := 0; i < 1000; i++ {
		va, vb, vo := a(), b(), other()
		if va != vb {
			t.Fatalf("same seed diverged at draw %d: %v != %v", i, va, vb)
		}
		if va < 0 || va >= 1 {
			t.Fatalf("draw %d out of [0,1): %v", i, va)
		}
		if va != vo {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 produced identical sequences")
	}
}

func TestNewJitterZeroSeed(t *testing.T) {
	// Zero is the unset-config case; xorshift64 state must never be zero or
	// the generator gets stuck at 0 forever.
	j := NewJitter(0)
	first := j()
	var moved bool
	for i := 0; i < 100; i++ {
		v := j()
		if v < 0 || v >= 1 {
			t.Fatalf("draw out of [0,1): %v", v)
		}
		if v != first {
			moved = true
		}
	}
	if !moved {
		t.Fatal("zero-seed jitter is constant")
	}
}

func TestBackoffNilRandFallbackJitters(t *testing.T) {
	// Without an explicit Rand the delay still spreads over [d/2, d] —
	// clients redialing a crashed broker must not stampede in lockstep.
	b := Backoff{Min: 100 * time.Millisecond, Max: time.Second}
	seen := make(map[time.Duration]struct{})
	for i := 0; i < 200; i++ {
		d := b.Delay(0)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("fallback delay %v outside [50ms, 100ms]", d)
		}
		seen[d] = struct{}{}
	}
	if len(seen) < 10 {
		t.Fatalf("fallback produced only %d distinct delays in 200 draws", len(seen))
	}
}

func TestBackoffCapAndDefaults(t *testing.T) {
	b := Backoff{Min: 50 * time.Millisecond, Max: 300 * time.Millisecond, Rand: func() float64 { return 0 }}
	// Growth: 50, 100, 200, 300 (capped), 300, ...
	want := []time.Duration{25, 50, 100, 150, 150, 150}
	for i, w := range want {
		if d := b.Delay(i); d != w*time.Millisecond {
			t.Fatalf("delay(%d)=%v, want %v", i, d, w*time.Millisecond)
		}
	}
	// Zero-value config gets sane defaults and never panics.
	var zero Backoff
	if d := zero.Delay(0); d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("default delay(0)=%v", d)
	}
	if d := zero.Delay(100); d > 5*time.Second {
		t.Fatalf("default cap exceeded: %v", d)
	}
	if d := zero.Delay(-1); d <= 0 {
		t.Fatalf("negative attempt delay=%v", d)
	}
}
