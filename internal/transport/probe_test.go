package transport

import (
	"net"
	"testing"
	"time"
)

func TestProbeTCP(t *testing.T) {
	// Healthy: a minimal RESP endpoint answering +PONG.
	healthy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	go func() {
		for {
			conn, err := healthy.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 512)
				if _, err := c.Read(buf); err != nil {
					return
				}
				_, _ = c.Write([]byte("+PONG\r\n"))
			}(conn)
		}
	}()
	if err := ProbeTCP(healthy.Addr().String(), time.Second); err != nil {
		t.Fatalf("probe of healthy server: %v", err)
	}

	// Refused: nothing listening.
	closed, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := closed.Addr().String()
	closed.Close()
	if err := ProbeTCP(deadAddr, 300*time.Millisecond); err == nil {
		t.Fatal("probe of closed port succeeded")
	}

	// Wedged: accepts connections but never answers — must count as dead
	// within the deadline, not hang.
	wedged, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wedged.Close()
	var held []net.Conn
	done := make(chan struct{})
	defer func() {
		wedged.Close()
		<-done
		for _, c := range held {
			c.Close()
		}
	}()
	go func() {
		defer close(done)
		for {
			c, err := wedged.Accept()
			if err != nil {
				return
			}
			held = append(held, c)
		}
	}()
	start := time.Now()
	if err := ProbeTCP(wedged.Addr().String(), 150*time.Millisecond); err == nil {
		t.Fatal("probe of wedged server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("probe deadline not enforced: took %v", elapsed)
	}
}

func TestTCPDialerProbeUnknownServer(t *testing.T) {
	d := NewTCPDialer(nil)
	if err := d.Probe("ghost", time.Second); err != ErrUnknownServer {
		t.Fatalf("err=%v, want ErrUnknownServer", err)
	}
}
