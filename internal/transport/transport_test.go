package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/netsim"
	"github.com/dynamoth/dynamoth/internal/plan"
)

type recHandler struct {
	mu     sync.Mutex
	msgs   [][2]string
	arrive chan struct{}
	disc   chan error
}

func newRecHandler() *recHandler {
	return &recHandler{arrive: make(chan struct{}, 128), disc: make(chan error, 1)}
}

func (h *recHandler) OnMessage(channel string, payload []byte) {
	h.mu.Lock()
	h.msgs = append(h.msgs, [2]string{channel, string(payload)})
	h.mu.Unlock()
	select {
	case h.arrive <- struct{}{}:
	default:
	}
}

func (h *recHandler) OnDisconnect(err error) { h.disc <- err }

func (h *recHandler) waitMsg(t *testing.T) [2]string {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		h.mu.Lock()
		if len(h.msgs) > 0 {
			m := h.msgs[0]
			h.msgs = h.msgs[1:]
			h.mu.Unlock()
			return m
		}
		h.mu.Unlock()
		select {
		case <-h.arrive:
		case <-deadline:
			t.Fatal("timed out waiting for message")
		}
	}
}

func memSetup(t *testing.T, opts MemDialerOptions) (*MemDialer, map[plan.ServerID]*broker.Broker) {
	t.Helper()
	brokers := map[plan.ServerID]*broker.Broker{
		"s1": broker.New(broker.Options{Name: "s1"}),
		"s2": broker.New(broker.Options{Name: "s2"}),
	}
	d := NewMemDialer(brokers, opts)
	t.Cleanup(func() {
		d.Close()
		for _, b := range brokers {
			b.Close()
		}
	})
	return d, brokers
}

func TestMemDialerPubSub(t *testing.T) {
	d, _ := memSetup(t, MemDialerOptions{})
	h := newRecHandler()
	conn, err := d.Dial("s1", h)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Subscribe("c"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Publish("c", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if m := h.waitMsg(t); m[0] != "c" || m[1] != "hello" {
		t.Fatalf("message=%v", m)
	}
	if err := conn.Unsubscribe("c"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Publish("c", []byte("gone")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.arrive:
		t.Fatal("message after unsubscribe")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMemDialerUnknownServer(t *testing.T) {
	d, _ := memSetup(t, MemDialerOptions{})
	if _, err := d.Dial("nope", newRecHandler()); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err=%v", err)
	}
}

func TestMemDialerAddRemoveServer(t *testing.T) {
	d, _ := memSetup(t, MemDialerOptions{})
	b3 := broker.New(broker.Options{Name: "s3"})
	defer b3.Close()
	d.AddServer("s3", b3)
	h := newRecHandler()
	conn, err := d.Dial("s3", h)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	d.RemoveServer("s3")
	if _, err := d.Dial("s3", newRecHandler()); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err=%v", err)
	}
}

func TestMemDialerLatencyInjection(t *testing.T) {
	// Fixed 30ms each way on a scaled clock: round trip must be >= 60ms
	// virtual but complete quickly in real time.
	clk := clock.NewScaled(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), 100)
	d, _ := memSetup(t, MemDialerOptions{
		Latency: &netsim.PathModel{WAN: netsim.Fixed(30 * time.Millisecond), LAN: time.Millisecond},
		Clock:   clk,
	})
	h := newRecHandler()
	conn, err := d.Dial("s1", h)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Subscribe("c"); err != nil {
		t.Fatal(err)
	}
	start := clk.Now()
	if err := conn.Publish("c", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	h.waitMsg(t)
	rtt := clk.Since(start)
	if rtt < 60*time.Millisecond {
		t.Fatalf("virtual RTT=%v, want >=60ms", rtt)
	}
	if rtt > 2*time.Second {
		t.Fatalf("virtual RTT=%v, absurdly long", rtt)
	}
}

func TestMemDialerDisconnectNotification(t *testing.T) {
	d, brokers := memSetup(t, MemDialerOptions{})
	h := newRecHandler()
	conn, err := d.Dial("s2", h)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	brokers["s2"].Close()
	select {
	case err := <-h.disc:
		if err == nil {
			t.Fatal("nil disconnect reason")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no disconnect notification")
	}
}

func TestMemDialerExplicitCloseNoNotification(t *testing.T) {
	d, _ := memSetup(t, MemDialerOptions{})
	h := newRecHandler()
	conn, err := d.Dial("s1", h)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	select {
	case err := <-h.disc:
		t.Fatalf("OnDisconnect after explicit close: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
}

// --- TCP -------------------------------------------------------------------

func tcpSetup(t *testing.T) *TCPDialer {
	t.Helper()
	b := broker.New(broker.Options{Name: "tcp1"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		broker.Serve(ln, b) //nolint:errcheck // ends on close
	}()
	t.Cleanup(func() {
		b.Close()
		ln.Close()
		<-served
	})
	return NewTCPDialer(map[plan.ServerID]string{"t1": ln.Addr().String()})
}

func TestTCPDialerPubSub(t *testing.T) {
	d := tcpSetup(t)
	h := newRecHandler()
	conn, err := d.Dial("t1", h)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Subscribe("news", "sports"); err != nil {
		t.Fatal(err)
	}
	// Subscription registration is asynchronous; retry the publish until
	// delivery (the subscriber ack ordering guarantees eventual success).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := conn.Publish("news", []byte("hello")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-h.arrive:
			h.mu.Lock()
			m := h.msgs[len(h.msgs)-1]
			h.mu.Unlock()
			if m[0] != "news" || m[1] != "hello" {
				t.Fatalf("message=%v", m)
			}
			return
		case <-time.After(50 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("never received message over TCP")
			}
		}
	}
}

func TestTCPDialerBinaryPayload(t *testing.T) {
	d := tcpSetup(t)
	h := newRecHandler()
	conn, err := d.Dial("t1", h)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Subscribe("bin"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // allow the subscription to land
	payload := []byte{0x00, 0xff, '\r', '\n', 0x01}
	if err := conn.Publish("bin", payload); err != nil {
		t.Fatal(err)
	}
	m := h.waitMsg(t)
	if m[1] != string(payload) {
		t.Fatalf("binary payload mangled: %q", m[1])
	}
}

func TestTCPDialerUnknownServer(t *testing.T) {
	d := NewTCPDialer(nil)
	if _, err := d.Dial("ghost", newRecHandler()); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err=%v", err)
	}
}

func TestTCPDialerDisconnect(t *testing.T) {
	b := broker.New(broker.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		broker.Serve(ln, b) //nolint:errcheck
	}()
	d := NewTCPDialer(map[plan.ServerID]string{"t1": ln.Addr().String()})
	h := newRecHandler()
	conn, err := d.Dial("t1", h)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Subscribe("x"); err != nil {
		t.Fatal(err)
	}
	// Kill the server.
	b.Close()
	ln.Close()
	<-served
	select {
	case <-h.disc:
	case <-time.After(2 * time.Second):
		t.Fatal("no disconnect notification")
	}
	if err := conn.Subscribe("y"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after disconnect err=%v", err)
	}
}

func TestTCPDialerAddRemove(t *testing.T) {
	d := NewTCPDialer(nil)
	d.AddServer("a", "127.0.0.1:1")
	d.RemoveServer("a")
	if _, err := d.Dial("a", newRecHandler()); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err=%v", err)
	}
}

func TestPooledForwarderReusesAndRecovers(t *testing.T) {
	d, brokers := memSetup(t, MemDialerOptions{})
	f := NewPooledForwarder(d)
	defer f.Close()

	// Subscribe directly on the broker to observe forwarded publishes.
	got := make(chan string, 8)
	sess, err := brokers["s1"].Connect("observer", funcSink(func(_ string, payload []byte) {
		got <- string(payload)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Subscribe("fwd"); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if err := f.ForwardPublish("s1", "fwd", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatalf("forwarded publish %d never arrived", i)
		}
	}

	// Unknown server errors cleanly.
	if err := f.ForwardPublish("ghost", "fwd", []byte("x")); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err=%v", err)
	}

	// Kill the broker: the pooled connection is evicted and later
	// forwards fail with a dial error instead of hanging.
	brokers["s2"].Close()
	if err := f.ForwardPublish("s2", "fwd", []byte("x")); err == nil {
		// The first call may succeed into a dying broker; the next must fail.
		deadline := time.Now().Add(2 * time.Second)
		for {
			if err := f.ForwardPublish("s2", "fwd", []byte("x")); err != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("forwarding to a dead broker keeps succeeding")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

type funcSink func(channel string, payload []byte)

func (f funcSink) Deliver(channel string, payload []byte) { f(channel, payload) }
func (funcSink) Closed(error)                             {}
