package transport

// ListenConfig controls how a node's RESP listener socket is created.
type ListenConfig struct {
	// ReusePort sets SO_REUSEPORT on the listener (Linux only; opt-in).
	// With it, several dynamoth-node processes can bind the same address
	// and the kernel load-balances accepts across them — one cheap way to
	// spread the accept storm of a mass reconnect over multiple cores
	// without a front-end balancer. Off by default: silently sharing a
	// port with an unrelated process is a misconfiguration we'd rather
	// surface as "address already in use".
	ReusePort bool
}
