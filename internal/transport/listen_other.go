//go:build !linux

package transport

import (
	"errors"
	"net"
)

// ErrReusePortUnsupported is returned by Listen when ListenConfig.ReusePort
// is requested on a platform without SO_REUSEPORT support in this build.
var ErrReusePortUnsupported = errors.New("transport: SO_REUSEPORT not supported on this platform")

// Listen binds a TCP listener according to cfg.
func Listen(addr string, cfg ListenConfig) (net.Listener, error) {
	if cfg.ReusePort {
		return nil, ErrReusePortUnsupported
	}
	return net.Listen("tcp", addr)
}

// ReusePortAvailable reports whether SO_REUSEPORT is supported.
func ReusePortAvailable() bool { return false }

// RaiseFDLimit is a no-op on this platform; it reports 0 and no error so
// callers fall back to their configured defaults.
func RaiseFDLimit(uint64) (uint64, error) { return 0, nil }
