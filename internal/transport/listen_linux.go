//go:build linux

package transport

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT, absent from the syscall package.
const soReusePort = 0xf

// Listen binds a TCP listener according to cfg. See ListenConfig.ReusePort.
func Listen(addr string, cfg ListenConfig) (net.Listener, error) {
	lc := net.ListenConfig{}
	if cfg.ReusePort {
		lc.Control = func(network, address string, c syscall.RawConn) error {
			var serr error
			cerr := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if cerr != nil {
				return cerr
			}
			return serr
		}
	}
	return lc.Listen(context.Background(), "tcp", addr)
}

// ReusePortAvailable reports whether SO_REUSEPORT is supported.
func ReusePortAvailable() bool { return true }

// RaiseFDLimit lifts RLIMIT_NOFILE's soft limit toward the hard limit (or
// want, if smaller but non-zero) and returns the resulting soft limit. It is
// best-effort: in containers without CAP_SYS_RESOURCE the hard limit is the
// ceiling, so callers size connection budgets off the returned value rather
// than assuming the raise worked.
func RaiseFDLimit(want uint64) (uint64, error) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 0, err
	}
	target := lim.Max
	if want != 0 && want < target {
		target = want
	}
	if lim.Cur >= target {
		return lim.Cur, nil
	}
	newLim := syscall.Rlimit{Cur: target, Max: lim.Max}
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &newLim); err != nil {
		return lim.Cur, err
	}
	return target, nil
}
