package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/netsim"
	"github.com/dynamoth/dynamoth/internal/plan"
)

// MemDialer connects to in-process brokers, optionally injecting sampled
// WAN latency in both directions the way the paper's testbed did (§V-B).
// It is safe for concurrent use and supports servers joining at runtime
// (elasticity).
type MemDialer struct {
	mu      sync.RWMutex
	brokers map[plan.ServerID]*broker.Broker

	// latency model; nil disables injection.
	path *netsim.PathModel
	clk  clock.Clock
	dq   *netsim.DelayQueue

	// faults drops packets to/from failed servers; nil disables injection.
	faults *netsim.Faults

	rngMu sync.Mutex
	rng   *rand.Rand

	class netsim.NodeClass // the class of the dialing endpoint
}

// MemDialerOptions configures a MemDialer.
type MemDialerOptions struct {
	// Latency enables WAN latency injection with the given model.
	Latency *netsim.PathModel
	// Clock drives delayed delivery (required when Latency is set;
	// defaults to the real clock).
	Clock clock.Clock
	// Seed seeds the latency sampler (0 picks a fixed default).
	Seed int64
	// Class is the node class of endpoints dialing through this dialer
	// (clients vs infra); it selects the paper's 1-vs-2-sample rule.
	// Defaults to Client.
	Class netsim.NodeClass
	// Faults, when set, drops packets to/from blackholed or lossy servers
	// on both legs (publish and delivery) without closing connections —
	// partitions look like silence, not like errors.
	Faults *netsim.Faults
}

// NewMemDialer creates a dialer over a set of in-process brokers.
func NewMemDialer(brokers map[plan.ServerID]*broker.Broker, opts MemDialerOptions) *MemDialer {
	if opts.Clock == nil {
		opts.Clock = clock.NewReal()
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Class == 0 {
		opts.Class = netsim.Client
	}
	d := &MemDialer{
		brokers: make(map[plan.ServerID]*broker.Broker, len(brokers)),
		path:    opts.Latency,
		clk:     opts.Clock,
		faults:  opts.Faults,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		class:   opts.Class,
	}
	for id, b := range brokers {
		d.brokers[id] = b
	}
	if d.path != nil {
		d.dq = netsim.NewDelayQueue(opts.Clock)
	}
	return d
}

// AddServer registers a broker that joined at runtime.
func (d *MemDialer) AddServer(id plan.ServerID, b *broker.Broker) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.brokers[id] = b
}

// RemoveServer deregisters a broker (despawned server). Existing
// connections die with the broker itself.
func (d *MemDialer) RemoveServer(id plan.ServerID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.brokers, id)
}

// Close stops the latency machinery. Connections must be closed by their
// owners.
func (d *MemDialer) Close() {
	if d.dq != nil {
		d.dq.Stop()
	}
}

func (d *MemDialer) sampleDelay(from, to netsim.NodeClass) time.Duration {
	if d.path == nil {
		return 0
	}
	d.rngMu.Lock()
	defer d.rngMu.Unlock()
	return d.path.Delay(from, to, d.rng)
}

// Dial implements Dialer.
func (d *MemDialer) Dial(server plan.ServerID, h Handler) (Conn, error) {
	d.mu.RLock()
	b := d.brokers[server]
	d.mu.RUnlock()
	if b == nil {
		return nil, ErrUnknownServer
	}
	mc := &memConn{dialer: d, server: server, handler: h}
	session, err := b.Connect("mem", memSink{mc})
	if err != nil {
		return nil, err
	}
	mc.session = session
	return mc, nil
}

// memConn is an in-process connection with optional latency on both legs.
type memConn struct {
	dialer  *MemDialer
	server  plan.ServerID
	session *broker.Session
	handler Handler

	closeOnce sync.Once
	explicit  atomic.Bool // read by the broker's Closed callback goroutine
}

var _ Conn = (*memConn)(nil)

func (c *memConn) Subscribe(channels ...string) error {
	_, err := c.session.Subscribe(channels...)
	return err
}

func (c *memConn) Unsubscribe(channels ...string) error {
	_, err := c.session.Unsubscribe(channels...)
	return err
}

func (c *memConn) Publish(channel string, payload []byte) error {
	if c.session.CloseReason() != nil {
		// A crashed or shut-down broker must surface as a publish error, like
		// a TCP write on a dead socket would — the caller's retry is what
		// moves a storm onto the successor.
		return ErrClosed
	}
	d := c.dialer
	if d.faults != nil && d.faults.Drop(string(c.server)) {
		// Lost on the wire: the connection stays up and the publisher gets
		// no error — exactly how a partitioned server looks from outside.
		return nil
	}
	// Copy before handing the broker the frame: a replay-enabled broker
	// stamps data envelopes in place and requires exclusive ownership, while
	// this payload may be shared across a multi-conn fan-out (and, with a
	// latency model, outlive this call in the delay queue).
	owned := append([]byte(nil), payload...)
	if d.dq == nil {
		// No latency model: publish synchronously.
		c.publishNow(channel, owned)
		if c.session.CloseReason() != nil {
			return ErrClosed
		}
		return nil
	}
	delay := d.sampleDelay(d.class, netsim.Infra)
	d.dq.ScheduleAfter(delay, func() { c.publishNow(channel, owned) })
	return nil
}

// PublishNonRetaining implements NonRetaining: Publish copies the payload
// out before returning, so callers may immediately reuse its buffer.
func (c *memConn) PublishNonRetaining() bool { return true }

// DeclareRegion implements RegionDeclarer straight against the broker
// session (no wire round trip in-process).
func (c *memConn) DeclareRegion(region string) error {
	if region == "" {
		return nil
	}
	c.session.SetRegion(region)
	return nil
}

// SubscribeCursor implements CursorSubscriber straight against the broker
// session: subscribe, then replay the cursor's gap from the channel's ring.
func (c *memConn) SubscribeCursor(channel string, cur message.Cursor) (ReplayResult, error) {
	res, err := c.session.SubscribeFrom(channel, cur)
	return ReplayResult{Replayed: res.Replayed, Missed: res.Missed, Epoch: res.Epoch}, err
}

func (c *memConn) publishNow(channel string, payload []byte) {
	c.session.Broker().Publish(channel, payload)
}

func (c *memConn) Close() error {
	c.explicit.Store(true)
	c.closeOnce.Do(func() {
		c.session.Close()
	})
	return nil
}

// memSink adapts broker deliveries to the Handler, injecting the
// server→client latency leg.
type memSink struct{ c *memConn }

func (s memSink) Deliver(channel string, payload []byte) {
	// The broker shares one payload slice across its whole fan-out, while
	// OnMessage transfers ownership to the handler (see Handler docs) — copy
	// out. This is the same copy deliver() used to make client-side, moved
	// to the transport boundary.
	owned := append([]byte(nil), payload...)
	c := s.c
	d := c.dialer
	if d.faults != nil && d.faults.Drop(string(c.server)) {
		return // delivery leg lost on the wire
	}
	if d.dq == nil {
		c.handler.OnMessage(channel, owned)
		return
	}
	delay := d.sampleDelay(netsim.Infra, d.class)
	d.dq.ScheduleAfter(delay, func() { c.handler.OnMessage(channel, owned) })
}

func (s memSink) Closed(reason error) {
	c := s.c
	if c.explicit.Load() {
		return
	}
	c.handler.OnDisconnect(reason)
}
