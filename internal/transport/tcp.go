package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/resp"
)

// TCPDialer connects to RESP pub/sub servers over TCP. Like standard Redis
// clients, each logical Conn uses two sockets: one in subscriber mode
// (SUBSCRIBE/UNSUBSCRIBE plus pushed messages) and one for PUBLISH
// request/reply traffic.
type TCPDialer struct {
	mu    sync.RWMutex
	addrs map[plan.ServerID]string

	// DialTimeout bounds connection establishment (default 5 s).
	DialTimeout time.Duration
}

// NewTCPDialer creates a dialer from a server→address table.
func NewTCPDialer(addrs map[plan.ServerID]string) *TCPDialer {
	d := &TCPDialer{addrs: make(map[plan.ServerID]string, len(addrs)), DialTimeout: 5 * time.Second}
	for id, a := range addrs {
		d.addrs[id] = a
	}
	return d
}

// AddServer registers a server address at runtime.
func (d *TCPDialer) AddServer(id plan.ServerID, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[id] = addr
}

// RemoveServer removes a server's address.
func (d *TCPDialer) RemoveServer(id plan.ServerID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.addrs, id)
}

// Dial implements Dialer.
func (d *TCPDialer) Dial(server plan.ServerID, h Handler) (Conn, error) {
	d.mu.RLock()
	addr, ok := d.addrs[server]
	d.mu.RUnlock()
	if !ok {
		return nil, ErrUnknownServer
	}
	subSock, err := net.DialTimeout("tcp", addr, d.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", server, addr, err)
	}
	pubSock, err := net.DialTimeout("tcp", addr, d.DialTimeout)
	if err != nil {
		subSock.Close() //nolint:errcheck // teardown
		return nil, fmt.Errorf("transport: dial %s (%s): %w", server, addr, err)
	}
	c := &tcpConn{
		handler: h,
		subSock: subSock,
		pubSock: pubSock,
		subW:    resp.NewWriter(subSock),
		pubR:    resp.NewReader(pubSock),
		pubW:    resp.NewWriter(pubSock),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

type tcpConn struct {
	handler Handler

	subSock net.Conn
	pubSock net.Conn

	subMu sync.Mutex // guards subW
	subW  *resp.Writer

	pubMu sync.Mutex // guards pubR/pubW request-reply pairs
	pubR  *resp.Reader
	pubW  *resp.Writer

	closeOnce sync.Once
	done      chan struct{}
	explicit  bool
}

var _ Conn = (*tcpConn)(nil)

func (c *tcpConn) Subscribe(channels ...string) error {
	return c.subCommand("SUBSCRIBE", channels)
}

func (c *tcpConn) Unsubscribe(channels ...string) error {
	return c.subCommand("UNSUBSCRIBE", channels)
}

func (c *tcpConn) subCommand(cmd string, channels []string) error {
	if len(channels) == 0 {
		return nil
	}
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	args := make([][]byte, 0, len(channels)+1)
	args = append(args, []byte(cmd))
	for _, ch := range channels {
		args = append(args, []byte(ch))
	}
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if err := c.subW.WriteCommand(args...); err != nil {
		return err
	}
	return c.subW.Flush()
	// Acknowledgements arrive asynchronously on the read loop and are
	// dropped there; Redis semantics make them informational only.
}

func (c *tcpConn) Publish(channel string, payload []byte) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	if err := c.pubW.WriteCommand([]byte("PUBLISH"), []byte(channel), payload); err != nil {
		return err
	}
	if err := c.pubW.Flush(); err != nil {
		return err
	}
	v, err := c.pubR.ReadValue()
	if err != nil {
		return err
	}
	if v.Kind == resp.KindError {
		return fmt.Errorf("transport: publish rejected: %s", v.Str)
	}
	return nil
}

func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() {
		c.explicit = true
		close(c.done)
		c.subSock.Close() //nolint:errcheck // teardown
		c.pubSock.Close() //nolint:errcheck // teardown
	})
	return nil
}

// readLoop consumes pushes from the subscriber socket.
func (c *tcpConn) readLoop() {
	r := resp.NewReader(c.subSock)
	for {
		v, err := r.ReadValue()
		if err != nil {
			c.disconnect(err)
			return
		}
		if v.Kind != resp.KindArray || len(v.Array) != 3 {
			continue
		}
		kind := string(v.Array[0].Str)
		if kind != "message" {
			continue // subscribe/unsubscribe acks
		}
		c.handler.OnMessage(string(v.Array[1].Str), v.Array[2].Str)
	}
}

func (c *tcpConn) disconnect(err error) {
	select {
	case <-c.done:
		return // explicit close
	default:
	}
	c.closeOnce.Do(func() {
		close(c.done)
		c.subSock.Close() //nolint:errcheck // teardown
		c.pubSock.Close() //nolint:errcheck // teardown
	})
	if !c.explicit {
		c.handler.OnDisconnect(err)
	}
}
