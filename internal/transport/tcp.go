package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/resp"
)

// TCPDialer connects to RESP pub/sub servers over TCP. Like standard Redis
// clients, each logical Conn uses two sockets: one in subscriber mode
// (SUBSCRIBE/UNSUBSCRIBE plus pushed messages) and one for PUBLISH
// request/reply traffic.
type TCPDialer struct {
	mu    sync.RWMutex
	addrs map[plan.ServerID]string

	// DialTimeout bounds connection establishment (default 5 s).
	DialTimeout time.Duration
}

// NewTCPDialer creates a dialer from a server→address table.
func NewTCPDialer(addrs map[plan.ServerID]string) *TCPDialer {
	d := &TCPDialer{addrs: make(map[plan.ServerID]string, len(addrs)), DialTimeout: 5 * time.Second}
	for id, a := range addrs {
		d.addrs[id] = a
	}
	return d
}

// AddServer registers a server address at runtime.
func (d *TCPDialer) AddServer(id plan.ServerID, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[id] = addr
}

// RemoveServer removes a server's address.
func (d *TCPDialer) RemoveServer(id plan.ServerID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.addrs, id)
}

// Probe checks a server's liveness with a RESP PING under a hard deadline:
// dial, PING, and the PONG read must all complete within timeout. It is the
// probe the failure detector feeds on — a wedged server that accepts
// connections but never answers counts as dead, not slow.
func (d *TCPDialer) Probe(server plan.ServerID, timeout time.Duration) error {
	d.mu.RLock()
	addr, ok := d.addrs[server]
	d.mu.RUnlock()
	if !ok {
		return ErrUnknownServer
	}
	return ProbeTCP(addr, timeout)
}

// ProbeTCP performs one RESP PING round trip against addr with an overall
// deadline covering dial, write, and read.
func ProbeTCP(addr string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	deadline := time.Now().Add(timeout)
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return fmt.Errorf("transport: probe dial %s: %w", addr, err)
	}
	defer conn.Close() //nolint:errcheck // teardown
	if err := conn.SetDeadline(deadline); err != nil {
		return err
	}
	w := resp.NewWriter(conn)
	if err := w.WriteCommandStrings("PING"); err != nil {
		return fmt.Errorf("transport: probe %s: %w", addr, err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("transport: probe %s: %w", addr, err)
	}
	v, err := resp.NewReader(conn).ReadValue()
	if err != nil {
		return fmt.Errorf("transport: probe %s: %w", addr, err)
	}
	if v.Kind == resp.KindError {
		return fmt.Errorf("transport: probe %s: server error: %s", addr, v.Str)
	}
	return nil
}

// Dial implements Dialer.
func (d *TCPDialer) Dial(server plan.ServerID, h Handler) (Conn, error) {
	d.mu.RLock()
	addr, ok := d.addrs[server]
	d.mu.RUnlock()
	if !ok {
		return nil, ErrUnknownServer
	}
	subSock, err := net.DialTimeout("tcp", addr, d.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", server, addr, err)
	}
	pubSock, err := net.DialTimeout("tcp", addr, d.DialTimeout)
	if err != nil {
		subSock.Close() //nolint:errcheck // teardown
		return nil, fmt.Errorf("transport: dial %s (%s): %w", server, addr, err)
	}
	c := &tcpConn{
		handler: h,
		subSock: subSock,
		pubSock: pubSock,
		subW:    resp.NewWriter(subSock),
		pubR:    resp.NewReader(pubSock),
		pubW:    resp.NewWriter(pubSock),
		flushCh: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	go c.ackLoop()
	go c.flushLoop()
	return c, nil
}

// tcpConn pipelines the publish path: Publish only appends the command to
// the buffered publisher socket and returns; a flusher goroutine coalesces
// buffered commands into one write syscall (mirroring the broker's
// WriteBatch delivery coalescing), and an ack-reader goroutine drains the
// integer replies, counting outstanding publishes and capturing the first
// server error or disconnect, which subsequent Publish calls surface.
type tcpConn struct {
	handler Handler

	subSock net.Conn
	pubSock net.Conn

	subMu sync.Mutex // guards subW
	subW  *resp.Writer

	pubMu sync.Mutex // guards pubW buffered writes (never held across a read)
	pubW  *resp.Writer
	pubR  *resp.Reader // owned by ackLoop

	// outstanding counts publishes written but not yet acknowledged by the
	// server — the pipeline depth.
	outstanding atomic.Int64
	// pubErr is the first asynchronous publish failure (server rejection or
	// socket error); once set it is sticky and poisons the connection.
	pubErr atomic.Pointer[error]
	// flushCh signals (capacity 1, non-blocking) that buffered publish bytes
	// await a flush.
	flushCh chan struct{}

	// cackMu serializes SubscribeCursor calls; cackCh holds the waiter the
	// readLoop routes the next csubscribe ack to.
	cackMu sync.Mutex
	cackCh atomic.Pointer[chan cack]

	closeOnce sync.Once
	done      chan struct{}
	explicit  atomic.Bool
}

// cack is a decoded csubscribe ack: frames replayed, frames missed, and the
// server ring's epoch.
type cack struct {
	replayed int64
	missed   int64
	epoch    int64
}

var _ Conn = (*tcpConn)(nil)
var _ NonRetaining = (*tcpConn)(nil)
var _ CursorSubscriber = (*tcpConn)(nil)

// PublishNonRetaining implements NonRetaining: WritePublish copies the
// payload into the buffered writer (or writes it through to the socket)
// before returning, so callers may immediately reuse the payload buffer.
func (c *tcpConn) PublishNonRetaining() bool { return true }

func (c *tcpConn) Subscribe(channels ...string) error {
	return c.subCommand("SUBSCRIBE", channels)
}

func (c *tcpConn) Unsubscribe(channels ...string) error {
	return c.subCommand("UNSUBSCRIBE", channels)
}

func (c *tcpConn) subCommand(cmd string, channels []string) error {
	if len(channels) == 0 {
		return nil
	}
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if err := c.subW.WriteCommandStrings(cmd, channels...); err != nil {
		return err
	}
	return c.subW.Flush()
	// Acknowledgements arrive asynchronously on the read loop and are
	// dropped there; Redis semantics make them informational only.
}

// DeclareRegion implements RegionDeclarer over the subscriber socket — the
// session whose deliveries the broker attributes. The server's +OK reply is
// consumed (and ignored) by the read loop like subscribe acks.
func (c *tcpConn) DeclareRegion(region string) error {
	if region == "" {
		return nil
	}
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if err := c.subW.WriteCommandStrings("REGION", region); err != nil {
		return err
	}
	return c.subW.Flush()
}

// subscribeCursorAckTimeout bounds how long SubscribeCursor waits for the
// server's csubscribe ack before giving up (the caller falls back to a plain
// Subscribe).
const subscribeCursorAckTimeout = 5 * time.Second

// SubscribeCursor implements CursorSubscriber over the subscriber socket: it
// writes a CSUBSCRIBE command and waits for the server's ack, while replayed
// frames stream in as ordinary message pushes on the read loop.
func (c *tcpConn) SubscribeCursor(channel string, cur message.Cursor) (ReplayResult, error) {
	select {
	case <-c.done:
		return ReplayResult{}, ErrClosed
	default:
	}
	c.cackMu.Lock()
	defer c.cackMu.Unlock()
	ch := make(chan cack, 1)
	c.cackCh.Store(&ch)
	defer c.cackCh.Store(nil)
	blob := message.MarshalCursor(cur)
	c.subMu.Lock()
	err := c.subW.WriteCommand([]byte("CSUBSCRIBE"), []byte(channel), blob)
	if err == nil {
		err = c.subW.Flush()
	}
	c.subMu.Unlock()
	if err != nil {
		return ReplayResult{}, err
	}
	select {
	case a := <-ch:
		if a.replayed < 0 {
			return ReplayResult{}, fmt.Errorf("transport: csubscribe rejected by %s", c.subSock.RemoteAddr())
		}
		return ReplayResult{Replayed: int(a.replayed), Missed: uint64(a.missed), Epoch: uint64(a.epoch)}, nil
	case <-c.done:
		return ReplayResult{}, ErrClosed
	case <-time.After(subscribeCursorAckTimeout):
		return ReplayResult{}, fmt.Errorf("transport: csubscribe ack timeout on %s", c.subSock.RemoteAddr())
	}
}

// Publish appends the PUBLISH command to the publisher socket's buffer and
// returns without waiting for the server's reply — the reply is consumed by
// ackLoop. A server rejection or connection failure observed there is
// returned by the next Publish call (the connection is then poisoned; the
// owner drops it and re-dials, which is the client library's usual
// disconnect repair path).
func (c *tcpConn) Publish(channel string, payload []byte) error {
	select {
	case <-c.done:
		if perr := c.pubErr.Load(); perr != nil {
			return *perr
		}
		return ErrClosed
	default:
	}
	if perr := c.pubErr.Load(); perr != nil {
		return *perr
	}
	c.pubMu.Lock()
	err := c.pubW.WritePublish(channel, payload)
	c.pubMu.Unlock()
	if err != nil {
		c.setPubErr(err)
		c.disconnect(err)
		return err
	}
	c.outstanding.Add(1)
	select {
	case c.flushCh <- struct{}{}:
	default: // a flush is already pending; it will carry these bytes too
	}
	return nil
}

// Outstanding reports the number of pipelined publishes not yet acknowledged.
func (c *tcpConn) Outstanding() int64 { return c.outstanding.Load() }

// flushLoop pushes buffered publish commands to the kernel. While one flush
// blocks in the write syscall, concurrent Publish calls keep appending and
// collapse into the single pending flushCh token — the publisher-side
// mirror of the broker's per-batch delivery flush.
func (c *tcpConn) flushLoop() {
	for {
		select {
		case <-c.done:
			return
		case <-c.flushCh:
		}
		c.pubMu.Lock()
		err := c.pubW.Flush()
		c.pubMu.Unlock()
		if err != nil {
			c.setPubErr(err)
			c.disconnect(err)
			return
		}
	}
}

// ackLoop drains PUBLISH replies from the publisher socket, keeping the
// outstanding count and capturing server errors.
func (c *tcpConn) ackLoop() {
	for {
		v, err := c.pubR.ReadValue()
		if err != nil {
			select {
			case <-c.done: // expected: socket torn down by Close/disconnect
			default:
				c.setPubErr(err)
				c.disconnect(err)
			}
			return
		}
		c.outstanding.Add(-1)
		if v.Kind == resp.KindError {
			rejected := fmt.Errorf("transport: publish rejected: %s", v.Str)
			c.setPubErr(rejected)
		}
	}
}

func (c *tcpConn) setPubErr(err error) {
	c.pubErr.CompareAndSwap(nil, &err)
}

func (c *tcpConn) Close() error {
	c.explicit.Store(true)
	c.closeOnce.Do(func() {
		close(c.done)
		// Best effort: push buffered publishes to the kernel before the FIN
		// so a publish-then-close sequence is not lossy. TryLock skips the
		// flush when the flusher already holds the lock (it is flushing the
		// same bytes) or is wedged on a dead peer.
		if c.pubMu.TryLock() {
			c.pubW.Flush() //nolint:errcheck // teardown
			c.pubMu.Unlock()
		}
		c.subSock.Close() //nolint:errcheck // teardown
		c.pubSock.Close() //nolint:errcheck // teardown
	})
	return nil
}

// readLoop consumes pushes from the subscriber socket through the ReadPush
// fast path (no generic Value tree for message frames). Non-message frames
// are subscription acks, dropped — except csubscribe acks and errors, which
// are routed to a waiting SubscribeCursor call.
func (c *tcpConn) readLoop() {
	r := resp.NewReader(c.subSock)
	for {
		channel, payload, ok, v, err := r.ReadPush()
		if err != nil {
			c.disconnect(err)
			return
		}
		if !ok {
			if a, isAck := parseCack(v); isAck {
				if chp := c.cackCh.Load(); chp != nil {
					select {
					case *chp <- a:
					default: // stale duplicate ack; waiter already served
					}
				}
			}
			continue // subscribe/unsubscribe acks
		}
		c.handler.OnMessage(channel, payload)
	}
}

// parseCack recognizes the two frames a CSUBSCRIBE can answer with: the
// 6-element ["csubscribe", channel, count, replayed, missed, epoch] ack, or
// a RESP error (reported as replayed = -1).
func parseCack(v resp.Value) (cack, bool) {
	if v.Kind == resp.KindError {
		return cack{replayed: -1}, true
	}
	if v.Kind == resp.KindArray && !v.Null && len(v.Array) == 6 && string(v.Array[0].Str) == "csubscribe" {
		return cack{replayed: v.Array[3].Int, missed: v.Array[4].Int, epoch: v.Array[5].Int}, true
	}
	return cack{}, false
}

func (c *tcpConn) disconnect(err error) {
	first := false
	c.closeOnce.Do(func() {
		first = true
		close(c.done)
		c.subSock.Close() //nolint:errcheck // teardown
		c.pubSock.Close() //nolint:errcheck // teardown
	})
	if first && !c.explicit.Load() {
		c.handler.OnDisconnect(err)
	}
}
