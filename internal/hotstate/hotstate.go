// Package hotstate provides the bounded, lock-striped cache behind every
// per-channel hot-state map in Dynamoth (client local plans, dedup windows,
// the LLA accumulator's stripes, the top-K tracker). At IoT-style
// topic-per-device scale the channel namespace is effectively unbounded;
// hotstate turns each of those maps from O(channels) into O(cap).
//
// Design:
//
//   - Power-of-two shard count, each shard its own mutex + map + CLOCK ring.
//     Operations hash the key to one shard and never touch the others, so
//     concurrent publishers on different channels do not serialize.
//   - CLOCK (second-chance) eviction: every Get/Put sets the entry's
//     reference bit; the eviction hand clears bits until it finds a cold
//     entry. One extra bit per entry buys near-LRU behavior without list
//     maintenance on the hot path.
//   - Optional TTL: entries carry an expiry deadline refreshed on Put;
//     expired entries are dropped lazily on Get and by Sweep.
//   - Pinning: pinned entries (a client's subscribed channels) are never
//     capacity-evicted and never swept; if every entry in a shard is pinned
//     the shard grows past its share of the cap rather than deadlocking.
//   - Eviction callback: capacity evictions, TTL expiries and sweep drops
//     invoke OnEvict *after* the shard lock is released, so callbacks may
//     take caller-side locks (the client flushes dedup-window accounting
//     from it) without lock-order risk.
//   - Size-hinted batch ops: Snapshot and AppendKeys reuse caller-provided
//     storage so periodic full reads (routing-table rebuilds, top-K scrapes)
//     do not allocate a fresh map per call.
//
// The package depends only on the standard library; metric families over
// Stats are registered by internal/obs (RegisterCaches) to avoid a cycle.
package hotstate

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultShards is the shard count when Config.Shards is 0: wide enough that
// 8–16 publisher goroutines rarely collide, small enough that per-shard caps
// stay meaningful at modest capacities.
const DefaultShards = 16

// StringHash is the FNV-1a 64-bit hash used for string keys. It is inlined
// by the compiler and allocation-free.
func StringHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Stats is a point-in-time snapshot of one cache's counters, exported via
// obs.RegisterCaches as dynamoth_*_hotstate_* families.
type Stats struct {
	Size     int // entries currently held
	Capacity int // configured bound (0 = unbounded)
	Pinned   int // entries exempt from eviction
	Hits     uint64
	Misses   uint64
	// Evictions counts capacity evictions (CLOCK victims); Expirations
	// counts TTL/sweep drops. Explicit Deletes are neither.
	Evictions   uint64
	Expirations uint64
}

// NamedStats labels a Stats source for metric registration.
type NamedStats struct {
	Name  string
	Stats func() Stats
}

// Config configures a Cache.
type Config[K comparable, V any] struct {
	// Capacity bounds the total entry count across shards (rounded up to at
	// least one per shard). 0 or negative means unbounded.
	Capacity int
	// Shards is rounded up to a power of two (default DefaultShards).
	Shards int
	// TTL, when positive, expires entries that long after their last Put.
	TTL time.Duration
	// Hash maps a key to its shard and must be supplied for non-string keys.
	Hash func(K) uint64
	// OnEvict observes capacity evictions, TTL expiries and sweep drops —
	// not explicit Deletes. It runs outside all shard locks.
	OnEvict func(K, V)
	// Now supplies time for TTL (default time.Now). Unused when TTL is 0.
	Now func() time.Time
}

// entry is one cached item; slot is its position in the shard's CLOCK ring.
type entry[K comparable, V any] struct {
	key    K
	val    V
	slot   int
	expire int64 // unixnano deadline; 0 = no TTL
	ref    bool  // CLOCK reference bit
	pinned bool
}

type shard[K comparable, V any] struct {
	mu     sync.Mutex
	items  map[K]*entry[K, V]
	ring   []*entry[K, V]
	hand   int
	pinned int
}

// Cache is a bounded, lock-striped map safe for concurrent use.
type Cache[K comparable, V any] struct {
	shards   []shard[K, V]
	mask     uint64
	hash     func(K) uint64
	perShard int // capacity per shard (0 = unbounded)
	capacity int
	ttl      time.Duration
	now      func() time.Time
	onEvict  func(K, V)

	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	expirations atomic.Uint64

	sweepCursor atomic.Uint64 // next shard index for incremental Sweep
}

// New creates a cache. Panics if no hash is configured for a non-string key
// type (string keys default to StringHash).
func New[K comparable, V any](cfg Config[K, V]) *Cache[K, V] {
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &Cache[K, V]{
		shards:   make([]shard[K, V], pow),
		mask:     uint64(pow - 1),
		hash:     cfg.Hash,
		capacity: cfg.Capacity,
		ttl:      cfg.TTL,
		now:      cfg.Now,
		onEvict:  cfg.OnEvict,
	}
	if c.hash == nil {
		var k K
		if _, ok := any(k).(string); ok {
			c.hash = func(key K) uint64 { return StringHash(any(key).(string)) }
		} else {
			panic("hotstate: Config.Hash required for non-string keys")
		}
	}
	if c.now == nil {
		c.now = time.Now
	}
	if cfg.Capacity > 0 {
		c.perShard = (cfg.Capacity + pow - 1) / pow
		if c.perShard < 1 {
			c.perShard = 1
		}
	}
	for i := range c.shards {
		c.shards[i].items = make(map[K]*entry[K, V])
	}
	return c
}

func (c *Cache[K, V]) shardFor(k K) *shard[K, V] {
	return &c.shards[c.hash(k)&c.mask]
}

// nowNano returns the TTL clock reading, 0 when TTL is disabled.
func (c *Cache[K, V]) nowNano() int64 {
	if c.ttl <= 0 {
		return 0
	}
	return c.now().UnixNano()
}

func (e *entry[K, V]) expired(nowNano int64) bool {
	return e.expire != 0 && nowNano != 0 && nowNano > e.expire
}

// removeLocked unlinks e from the shard (map + ring). Caller holds s.mu.
func (s *shard[K, V]) removeLocked(e *entry[K, V]) {
	delete(s.items, e.key)
	if e.pinned {
		s.pinned--
	}
	last := len(s.ring) - 1
	moved := s.ring[last]
	s.ring[e.slot] = moved
	moved.slot = e.slot
	s.ring[last] = nil
	s.ring = s.ring[:last]
	if s.hand > last {
		s.hand = 0
	}
}

// Get returns the value for k, marking the entry recently used. A TTL-expired
// entry counts as a miss and is dropped (OnEvict fires).
func (c *Cache[K, V]) Get(k K) (V, bool) {
	s := c.shardFor(k)
	nowN := c.nowNano()
	s.mu.Lock()
	e, ok := s.items[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	if e.expired(nowN) {
		s.removeLocked(e)
		s.mu.Unlock()
		c.expirations.Add(1)
		c.misses.Add(1)
		if c.onEvict != nil {
			c.onEvict(e.key, e.val)
		}
		var zero V
		return zero, false
	}
	e.ref = true
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Peek returns the value for k without touching the reference bit or the
// hit/miss counters (and without expiring TTL entries).
func (c *Cache[K, V]) Peek(k K) (V, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.items[k]
	if !ok {
		s.mu.Unlock()
		var zero V
		return zero, false
	}
	v := e.val
	s.mu.Unlock()
	return v, true
}

// Put inserts or replaces k's value, evicting a cold entry if the shard is at
// capacity. It reports whether an existing entry was replaced.
func (c *Cache[K, V]) Put(k K, v V) bool {
	replaced, ek, ev, evicted := c.put(k, v, false)
	if evicted && c.onEvict != nil {
		c.onEvict(ek, ev)
	}
	return replaced
}

// PutPinned is Put with the entry pinned from birth (never evicted or swept
// until unpinned).
func (c *Cache[K, V]) PutPinned(k K, v V) bool {
	replaced, ek, ev, evicted := c.put(k, v, true)
	if evicted && c.onEvict != nil {
		c.onEvict(ek, ev)
	}
	return replaced
}

func (c *Cache[K, V]) put(k K, v V, pin bool) (replaced bool, evictedKey K, evictedVal V, evicted bool) {
	s := c.shardFor(k)
	var expire int64
	if c.ttl > 0 {
		expire = c.now().Add(c.ttl).UnixNano()
	}
	s.mu.Lock()
	if e, ok := s.items[k]; ok {
		e.val = v
		e.ref = true
		e.expire = expire
		if pin && !e.pinned {
			e.pinned = true
			s.pinned++
		}
		s.mu.Unlock()
		return true, evictedKey, evictedVal, false
	}
	if victim := c.evictLocked(s); victim != nil {
		evictedKey, evictedVal, evicted = victim.key, victim.val, true
	}
	e := &entry[K, V]{key: k, val: v, ref: true, pinned: pin, expire: expire, slot: len(s.ring)}
	if pin {
		s.pinned++
	}
	s.items[k] = e
	s.ring = append(s.ring, e)
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
	return false, evictedKey, evictedVal, evicted
}

// evictLocked frees one slot via CLOCK when the shard is at capacity. Pinned
// entries are skipped; if everything is pinned the shard is allowed to grow.
// Caller holds s.mu.
func (c *Cache[K, V]) evictLocked(s *shard[K, V]) *entry[K, V] {
	if c.perShard <= 0 || len(s.ring) < c.perShard {
		return nil
	}
	if s.pinned >= len(s.ring) {
		return nil // all pinned: overflow rather than deadlock
	}
	// Two full laps guarantee a victim: the first lap clears reference bits,
	// the second finds a cleared, unpinned entry.
	for i := 0; i < 2*len(s.ring); i++ {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		e := s.ring[s.hand]
		s.hand++
		if e.pinned {
			continue
		}
		if e.ref {
			e.ref = false
			continue
		}
		s.removeLocked(e)
		return e
	}
	return nil
}

// Upsert atomically examines k's current value under the shard lock and
// installs fn's result when write is true. fn must not call back into the
// cache. Returns whether a write happened.
func (c *Cache[K, V]) Upsert(k K, fn func(old V, exists bool) (v V, write bool)) bool {
	s := c.shardFor(k)
	var expire int64
	if c.ttl > 0 {
		expire = c.now().Add(c.ttl).UnixNano()
	}
	var evictedKey K
	var evictedVal V
	evicted := false
	s.mu.Lock()
	if e, ok := s.items[k]; ok {
		v, write := fn(e.val, true)
		if write {
			e.val = v
			e.ref = true
			e.expire = expire
		}
		s.mu.Unlock()
		return write
	}
	var zero V
	v, write := fn(zero, false)
	if !write {
		s.mu.Unlock()
		return false
	}
	if victim := c.evictLocked(s); victim != nil {
		evictedKey, evictedVal, evicted = victim.key, victim.val, true
	}
	e := &entry[K, V]{key: k, val: v, ref: true, expire: expire, slot: len(s.ring)}
	s.items[k] = e
	s.ring = append(s.ring, e)
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
		if c.onEvict != nil {
			c.onEvict(evictedKey, evictedVal)
		}
	}
	return true
}

// Delete removes k, returning its value. OnEvict does not fire: the caller
// initiated the removal and owns any flush logic.
func (c *Cache[K, V]) Delete(k K) (V, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.items[k]
	if !ok {
		s.mu.Unlock()
		var zero V
		return zero, false
	}
	s.removeLocked(e)
	s.mu.Unlock()
	return e.val, true
}

// Pin marks k exempt from eviction and sweeping (when set) or re-eligible
// (when clear). Reports whether the entry exists.
func (c *Cache[K, V]) Pin(k K, pinned bool) bool {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.items[k]
	if ok && e.pinned != pinned {
		e.pinned = pinned
		if pinned {
			s.pinned++
		} else {
			s.pinned--
		}
	}
	s.mu.Unlock()
	return ok
}

// Range visits every entry. f runs under the shard lock and must not call
// back into the cache; keep it short (the read side of a snapshot).
func (c *Cache[K, V]) Range(f func(k K, v V) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.ring {
			if !f(e.key, e.val) {
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
}

// Snapshot copies the cache into dst (allocated with the current size as the
// hint when nil), clearing dst first. The size-hinted reuse keeps periodic
// full reads allocation-free once dst has grown to working-set size.
func (c *Cache[K, V]) Snapshot(dst map[K]V) map[K]V {
	if dst == nil {
		dst = make(map[K]V, c.Len())
	} else {
		clear(dst)
	}
	c.Range(func(k K, v V) bool {
		dst[k] = v
		return true
	})
	return dst
}

// AppendKeys appends every key to dst (reusing its capacity) and returns it.
func (c *Cache[K, V]) AppendKeys(dst []K) []K {
	c.Range(func(k K, _ V) bool {
		dst = append(dst, k)
		return true
	})
	return dst
}

// Sweep visits up to maxShards shards (rotating across calls; <=0 means all)
// and drops entries for which drop returns true, plus TTL-expired entries.
// Pinned entries are never dropped. drop runs under the shard lock; OnEvict
// fires after it is released. Returns the number of entries dropped.
//
// A full scan of an N-entry cache costs O(N); calling Sweep with a shard
// budget amortizes that to O(N/shards) per call while still covering the
// whole cache every shards/maxShards calls — the incremental replacement for
// the old O(channels) full-map sweeps.
func (c *Cache[K, V]) Sweep(maxShards int, drop func(k K, v V) bool) int {
	n := len(c.shards)
	if maxShards <= 0 || maxShards > n {
		maxShards = n
	}
	start := c.sweepCursor.Add(uint64(maxShards)) - uint64(maxShards)
	nowN := c.nowNano()
	dropped := 0
	var victims []*entry[K, V]
	for i := 0; i < maxShards; i++ {
		s := &c.shards[(start+uint64(i))&c.mask]
		s.mu.Lock()
		for j := 0; j < len(s.ring); {
			e := s.ring[j]
			if e.pinned {
				j++
				continue
			}
			if !e.expired(nowN) && (drop == nil || !drop(e.key, e.val)) {
				j++
				continue
			}
			s.removeLocked(e) // moves the last entry into slot j; revisit j
			c.expirations.Add(1)
			victims = append(victims, e)
			dropped++
		}
		s.mu.Unlock()
	}
	if c.onEvict != nil {
		for _, e := range victims {
			c.onEvict(e.key, e.val)
		}
	}
	return dropped
}

// ShardCount returns the (power-of-two) shard count.
func (c *Cache[K, V]) ShardCount() int { return len(c.shards) }

// Len returns the current entry count (summed across shards).
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.ring)
		s.mu.Unlock()
	}
	return n
}

// Capacity returns the configured bound (0 = unbounded).
func (c *Cache[K, V]) Capacity() int { return c.capacity }

// Stats snapshots the cache counters for metric export.
func (c *Cache[K, V]) Stats() Stats {
	size, pinned := 0, 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		size += len(s.ring)
		pinned += s.pinned
		s.mu.Unlock()
	}
	return Stats{
		Size:        size,
		Capacity:    c.capacity,
		Pinned:      pinned,
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Expirations: c.expirations.Load(),
	}
}
