package hotstate

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newCache(capacity, shards int) *Cache[string, int] {
	return New[string, int](Config[string, int]{Capacity: capacity, Shards: shards})
}

func TestBasicPutGetDelete(t *testing.T) {
	c := newCache(0, 4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	if c.Put("a", 1) {
		t.Fatal("first Put reported replace")
	}
	if !c.Put("a", 2) {
		t.Fatal("second Put did not report replace")
	}
	if v, ok := c.Get("a"); !ok || v != 2 {
		t.Fatalf("Get=%d,%v", v, ok)
	}
	if v, ok := c.Delete("a"); !ok || v != 2 {
		t.Fatalf("Delete=%d,%v", v, ok)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestShardCountPowerOfTwo(t *testing.T) {
	for want, in := range map[int]int{16: 0, 1: 1, 4: 3, 8: 8, 32: 17} {
		if got := New[string, int](Config[string, int]{Shards: in}).ShardCount(); got != want {
			t.Errorf("shards(%d)=%d, want %d", in, got, want)
		}
	}
}

func TestCapacityBoundAndEviction(t *testing.T) {
	var evicted []string
	c := New[string, int](Config[string, int]{
		Capacity: 8, Shards: 1,
		OnEvict: func(k string, _ int) { evicted = append(evicted, k) },
	})
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != 8 {
		t.Fatalf("len=%d, want cap 8", c.Len())
	}
	if len(evicted) != 92 {
		t.Fatalf("evicted=%d, want 92", len(evicted))
	}
	if st := c.Stats(); st.Evictions != 92 || st.Size != 8 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestClockPrefersColdVictims(t *testing.T) {
	c := New[string, int](Config[string, int]{Capacity: 4, Shards: 1})
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	// An entry re-referenced between eviction scans keeps its second chance
	// forever: churn 40 cold inserts through the full shard, touching k1
	// before each, and k1 must be the one entry that survives.
	for i := 0; i < 40; i++ {
		if _, ok := c.Get("k1"); !ok {
			t.Fatalf("hot entry k1 evicted at churn step %d", i)
		}
		c.Put(fmt.Sprintf("cold%d", i), i)
	}
	if _, ok := c.Peek("k1"); !ok {
		t.Fatal("hot entry k1 evicted despite constant references")
	}
	if _, ok := c.Peek("k0"); ok {
		t.Fatal("cold entry k0 never evicted under churn")
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	c := New[string, int](Config[string, int]{Capacity: 4, Shards: 1})
	c.PutPinned("pin", 99)
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if v, ok := c.Get("pin"); !ok || v != 99 {
		t.Fatal("pinned entry evicted by capacity pressure")
	}
	// Sweeping everything must skip the pin too.
	c.Sweep(0, func(string, int) bool { return true })
	if _, ok := c.Get("pin"); !ok {
		t.Fatal("pinned entry swept")
	}
	// Unpinning makes it evictable again.
	c.Pin("pin", false)
	c.Sweep(0, func(string, int) bool { return true })
	if _, ok := c.Peek("pin"); ok {
		t.Fatal("unpinned entry survived a drop-all sweep")
	}
}

func TestAllPinnedOverflowsInsteadOfDeadlock(t *testing.T) {
	c := New[string, int](Config[string, int]{Capacity: 2, Shards: 1})
	for i := 0; i < 10; i++ {
		c.PutPinned(fmt.Sprintf("p%d", i), i)
	}
	if c.Len() != 10 {
		t.Fatalf("len=%d: pinned entries must overflow the cap, not vanish", c.Len())
	}
	if st := c.Stats(); st.Pinned != 10 {
		t.Fatalf("pinned=%d", st.Pinned)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	clk := func() time.Time { return now }
	var expired []string
	c := New[string, int](Config[string, int]{
		Capacity: 0, Shards: 1, TTL: 10 * time.Second, Now: clk,
		OnEvict: func(k string, _ int) { expired = append(expired, k) },
	})
	c.Put("a", 1)
	now = now.Add(5 * time.Second)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry expired early")
	}
	now = now.Add(6 * time.Second)
	if _, ok := c.Get("a"); ok {
		t.Fatal("expired entry returned")
	}
	if len(expired) != 1 || expired[0] != "a" {
		t.Fatalf("expired=%v", expired)
	}
	// Put refreshes the deadline.
	c.Put("b", 2)
	now = now.Add(8 * time.Second)
	c.Put("b", 3)
	now = now.Add(8 * time.Second)
	if _, ok := c.Get("b"); !ok {
		t.Fatal("Put did not refresh TTL")
	}
	// Sweep drops expired entries without a drop predicate.
	c.Put("c", 4)
	now = now.Add(11 * time.Second)
	if dropped := c.Sweep(0, nil); dropped != 2 {
		t.Fatalf("sweep dropped=%d, want 2 (b and c)", dropped)
	}
}

func TestIncrementalSweepCoversAllShardsEventually(t *testing.T) {
	c := New[string, int](Config[string, int]{Shards: 8})
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	total := 0
	for i := 0; i < 8; i++ { // 8 calls at 1 shard each = one full rotation
		total += c.Sweep(1, func(string, int) bool { return true })
	}
	if total != 200 || c.Len() != 0 {
		t.Fatalf("incremental sweep dropped %d, len=%d", total, c.Len())
	}
}

func TestUpsert(t *testing.T) {
	c := newCache(0, 2)
	wrote := c.Upsert("a", func(old int, ok bool) (int, bool) {
		if ok {
			t.Fatal("phantom entry")
		}
		return 7, true
	})
	if !wrote {
		t.Fatal("insert not written")
	}
	// Conditional update: reject when old value is newer.
	wrote = c.Upsert("a", func(old int, ok bool) (int, bool) {
		if !ok || old != 7 {
			t.Fatalf("old=%d ok=%v", old, ok)
		}
		return 3, old < 3
	})
	if wrote {
		t.Fatal("stale write applied")
	}
	if v, _ := c.Get("a"); v != 7 {
		t.Fatalf("v=%d", v)
	}
	// Declined insert leaves no entry behind.
	c.Upsert("ghost", func(int, bool) (int, bool) { return 0, false })
	if _, ok := c.Peek("ghost"); ok {
		t.Fatal("declined insert materialized")
	}
}

func TestSnapshotReuse(t *testing.T) {
	c := newCache(0, 4)
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	m := c.Snapshot(nil)
	if len(m) != 32 {
		t.Fatalf("snapshot=%d", len(m))
	}
	c.Delete("k0")
	m2 := c.Snapshot(m)
	if len(m2) != 31 {
		t.Fatalf("reused snapshot=%d (stale entries not cleared?)", len(m2))
	}
	keys := c.AppendKeys(make([]string, 0, 31))
	if len(keys) != 31 {
		t.Fatalf("keys=%d", len(keys))
	}
}

func TestOnEvictRunsOutsideShardLock(t *testing.T) {
	// The callback re-enters the cache: deadlock if fired under the lock.
	var c *Cache[string, int]
	c = New[string, int](Config[string, int]{
		Capacity: 2, Shards: 1,
		OnEvict: func(k string, _ int) { c.Len(); c.Peek(k) },
	})
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
}

// TestConcurrentStress hammers every operation from many goroutines; run
// under -race it is the package's data-race gate.
func TestConcurrentStress(t *testing.T) {
	c := New[string, int](Config[string, int]{
		Capacity: 256, Shards: 8, TTL: time.Millisecond,
		OnEvict: func(string, int) {},
	})
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	worker := func(seed int64, f func(r *rand.Rand)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				f(r)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		worker(int64(i), func(r *rand.Rand) { c.Get(keys[r.Intn(len(keys))]) })
		worker(int64(10+i), func(r *rand.Rand) { c.Put(keys[r.Intn(len(keys))], r.Int()) })
	}
	worker(20, func(r *rand.Rand) { c.Delete(keys[r.Intn(len(keys))]) })
	worker(21, func(r *rand.Rand) { c.Pin(keys[r.Intn(len(keys))], r.Intn(2) == 0) })
	worker(22, func(r *rand.Rand) {
		c.Sweep(2, func(_ string, v int) bool { return v%3 == 0 })
	})
	worker(23, func(r *rand.Rand) {
		c.Upsert(keys[r.Intn(len(keys))], func(old int, ok bool) (int, bool) { return old + 1, true })
	})
	worker(24, func(r *rand.Rand) { c.Stats() })
	worker(25, func(r *rand.Rand) {
		n := 0
		c.Range(func(string, int) bool { n++; return n < 64 })
	})
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if l := c.Len(); l > 256+c.ShardCount() {
		t.Fatalf("len=%d exceeds capacity slack", l)
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New[string, int](Config[string, int]{Capacity: 1024})
	for i := 0; i < 512; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get("k37")
	}
}

func BenchmarkCachePutChurn(b *testing.B) {
	c := New[string, int](Config[string, int]{Capacity: 1024})
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(keys[i&4095], i)
	}
}

func BenchmarkCacheParallelGet(b *testing.B) {
	c := New[string, int](Config[string, int]{Capacity: 4096})
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		c.Put(keys[i], i)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(keys[i&1023])
			i++
		}
	})
}
