package netsim

import (
	"time"
)

// Pipe models a serialization link of finite capacity with an unbounded FIFO
// queue: each payload of size s occupies the link for s/capacity seconds, so
// when the offered load exceeds capacity a backlog builds and every
// subsequent payload departs later. This single mechanism produces both of
// the phenomena the paper's evaluation hinges on: response times that climb
// as a server approaches its maximum outgoing bandwidth T_i, and collapse
// once the load ratio exceeds ~1 (Fig. 4, Fig. 5c, Fig. 6).
//
// Pipe is driven by explicit timestamps, so the same code serves the
// discrete-event simulator and the live in-memory transport. It is not
// concurrency-safe; callers serialize access (one Pipe belongs to one
// simulated link).
type Pipe struct {
	capacity  float64 // units per second (bytes/s or msgs/s)
	nextFree  time.Time
	sentUnits float64 // cumulative units accepted
}

// NewPipe creates a pipe with the given capacity in units/second.
func NewPipe(capacity float64) *Pipe {
	if capacity <= 0 {
		panic("netsim: pipe capacity must be positive")
	}
	return &Pipe{capacity: capacity}
}

// Capacity returns the configured capacity in units/second.
func (p *Pipe) Capacity() float64 { return p.capacity }

// Send enqueues a payload of the given size at time now and returns its
// departure time (when the last byte leaves the link).
func (p *Pipe) Send(now time.Time, units float64) time.Time {
	start := now
	if p.nextFree.After(start) {
		start = p.nextFree
	}
	p.nextFree = start.Add(time.Duration(units / p.capacity * float64(time.Second)))
	p.sentUnits += units
	return p.nextFree
}

// QueueDelay returns how long a payload enqueued at now would wait before
// transmission starts.
func (p *Pipe) QueueDelay(now time.Time) time.Duration {
	if p.nextFree.After(now) {
		return p.nextFree.Sub(now)
	}
	return 0
}

// Backlogged reports whether the link still has queued work at now.
func (p *Pipe) Backlogged(now time.Time) bool { return p.nextFree.After(now) }

// SentUnits returns the cumulative units accepted since creation (the
// measured outgoing traffic M_i of eq. 1, before capacity clipping).
func (p *Pipe) SentUnits() float64 { return p.sentUnits }

// SetCapacity changes the link capacity (e.g. heterogeneous servers).
// Pending backlog keeps its already-computed departure times.
func (p *Pipe) SetCapacity(capacity float64) {
	if capacity <= 0 {
		panic("netsim: pipe capacity must be positive")
	}
	p.capacity = capacity
}

// ConnQueue models a bounded per-connection output buffer, the analog of
// Redis' client-output-buffer-limit for pub/sub clients: if the server
// queues more than Limit messages for one connection, the connection is
// declared dead and subsequent sends are dropped (Fig. 4b's failure mode).
//
// The buffer drains at the connection's drain rate (receiver read speed);
// occupancy is tracked in virtual time like Pipe.
type ConnQueue struct {
	pipe     *Pipe
	limit    int
	dead     bool
	inFlight int
	// departures holds the departure times of queued messages so occupancy
	// can be decremented as virtual time passes; kept as a ring to stay
	// allocation-free in steady state.
	departures []time.Time
	head, tail int
}

// NewConnQueue creates a connection buffer draining at drainPerSec
// messages/second, failing beyond limit queued messages.
func NewConnQueue(drainPerSec float64, limit int) *ConnQueue {
	if limit <= 0 {
		panic("netsim: connection queue limit must be positive")
	}
	return &ConnQueue{
		pipe:       NewPipe(drainPerSec),
		limit:      limit,
		departures: make([]time.Time, limit+1),
	}
}

// Send enqueues one message at now. It returns the message's delivery
// (drain-complete) time, or ok=false if the connection is dead or the buffer
// overflowed — in which case the connection is now dead and the message is
// dropped, like Redis disconnecting a slow pub/sub client.
func (q *ConnQueue) Send(now time.Time) (depart time.Time, ok bool) {
	if q.dead {
		return time.Time{}, false
	}
	q.expire(now)
	if q.inFlight >= q.limit {
		q.dead = true
		return time.Time{}, false
	}
	depart = q.pipe.Send(now, 1)
	q.departures[q.tail] = depart
	q.tail = (q.tail + 1) % len(q.departures)
	q.inFlight++
	return depart, true
}

// expire drops accounting for messages already drained by now.
func (q *ConnQueue) expire(now time.Time) {
	for q.inFlight > 0 && !q.departures[q.head].After(now) {
		q.head = (q.head + 1) % len(q.departures)
		q.inFlight--
	}
}

// Dead reports whether the connection was killed by overflow.
func (q *ConnQueue) Dead() bool { return q.dead }

// Depth returns the queued message count at now.
func (q *ConnQueue) Depth(now time.Time) int {
	q.expire(now)
	return q.inFlight
}
