package netsim

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestLogNormalSampleBounds(t *testing.T) {
	m := NewKingLike()
	rng := rand.New(rand.NewSource(42))
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := m.Sample(rng)
		if d < m.Min || d > m.Max {
			t.Fatalf("sample %v outside [%v,%v]", d, m.Min, m.Max)
		}
		sum += d
	}
	mean := sum / n
	// Log-normal mean = median*exp(sigma^2/2) ≈ 35.4ms; allow slack for clipping.
	if mean < 28*time.Millisecond || mean > 45*time.Millisecond {
		t.Fatalf("mean one-way delay %v, want ~35ms", mean)
	}
}

func TestLogNormalDeterministicGivenSeed(t *testing.T) {
	m := NewKingLike()
	a := m.Sample(rand.New(rand.NewSource(7)))
	b := m.Sample(rand.New(rand.NewSource(7)))
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
}

func TestFixedModel(t *testing.T) {
	if got := Fixed(3 * time.Millisecond).Sample(nil); got != 3*time.Millisecond {
		t.Fatalf("Fixed sample %v", got)
	}
}

func TestPathModelThreeCaseRule(t *testing.T) {
	pm := &PathModel{WAN: Fixed(10 * time.Millisecond), LAN: time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		from, to NodeClass
		want     time.Duration
	}{
		{Infra, Infra, time.Millisecond},
		{Infra, Client, 10 * time.Millisecond},
		{Client, Infra, 10 * time.Millisecond},
		{Client, Client, 20 * time.Millisecond},
	}
	for _, tt := range tests {
		if got := pm.Delay(tt.from, tt.to, rng); got != tt.want {
			t.Fatalf("Delay(%d,%d)=%v want %v", tt.from, tt.to, got, tt.want)
		}
	}
}

func TestNewPathModelDefaults(t *testing.T) {
	pm := NewPathModel()
	if pm.WAN == nil || pm.LAN <= 0 {
		t.Fatal("defaults not set")
	}
}

func TestRegionDelaysDeterministicAndBounded(t *testing.T) {
	m := NewKingLike()
	delay := RegionDelays(m)
	if got := delay(""); got != 0 {
		t.Fatalf("empty region delay %v, want 0", got)
	}
	regions := []string{"us-east", "eu-west", "ap-south", "sa-east"}
	first := make(map[string]time.Duration)
	for _, r := range regions {
		d := delay(r)
		if d < m.Min || d > m.Max {
			t.Fatalf("region %q delay %v outside [%v, %v]", r, d, m.Min, m.Max)
		}
		first[r] = d
	}
	// Memoized and stable: same region, same delay — across the cached
	// function and across a freshly derived one.
	fresh := RegionDelays(NewKingLike())
	for _, r := range regions {
		if d := delay(r); d != first[r] {
			t.Fatalf("region %q delay changed: %v then %v", r, first[r], d)
		}
		if d := fresh(r); d != first[r] {
			t.Fatalf("region %q delay not derived from name: %v vs %v", r, d, first[r])
		}
	}
	// Distinct regions should spread (not all collapse to one value).
	distinct := make(map[time.Duration]bool)
	for _, d := range first {
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all regions mapped to the same delay %v", first)
	}
}

func TestPipeUnloadedPassThrough(t *testing.T) {
	p := NewPipe(1000) // 1000 units/s => 1ms per unit
	dep := p.Send(epoch, 1)
	if want := epoch.Add(time.Millisecond); !dep.Equal(want) {
		t.Fatalf("departure %v want %v", dep, want)
	}
	if p.QueueDelay(dep) != 0 {
		t.Fatal("pipe still busy after departure time")
	}
}

func TestPipeQueueingUnderLoad(t *testing.T) {
	p := NewPipe(1000)
	// Offer 10 units at once: departures serialize 1ms apart.
	var last time.Time
	for i := 1; i <= 10; i++ {
		last = p.Send(epoch, 1)
		if want := epoch.Add(time.Duration(i) * time.Millisecond); !last.Equal(want) {
			t.Fatalf("unit %d departs %v want %v", i, last, want)
		}
	}
	if got := p.QueueDelay(epoch); got != 10*time.Millisecond {
		t.Fatalf("QueueDelay=%v want 10ms", got)
	}
	if !p.Backlogged(epoch) {
		t.Fatal("pipe not backlogged")
	}
	if p.Backlogged(last) {
		t.Fatal("pipe backlogged after last departure")
	}
	if p.SentUnits() != 10 {
		t.Fatalf("SentUnits=%f", p.SentUnits())
	}
}

func TestPipeIdleGapResets(t *testing.T) {
	p := NewPipe(1000)
	p.Send(epoch, 1)
	// Much later, the pipe is idle again: no residual delay.
	later := epoch.Add(time.Second)
	dep := p.Send(later, 1)
	if want := later.Add(time.Millisecond); !dep.Equal(want) {
		t.Fatalf("departure %v want %v", dep, want)
	}
}

func TestPipeSetCapacity(t *testing.T) {
	p := NewPipe(1000)
	p.SetCapacity(2000)
	dep := p.Send(epoch, 1)
	if want := epoch.Add(500 * time.Microsecond); !dep.Equal(want) {
		t.Fatalf("departure %v want %v", dep, want)
	}
}

func TestPipePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPipe(0) did not panic")
		}
	}()
	NewPipe(0)
}

func TestConnQueueDrainsAtRate(t *testing.T) {
	q := NewConnQueue(100, 1000) // 100 msg/s => 10ms per message
	d1, ok := q.Send(epoch)
	if !ok || !d1.Equal(epoch.Add(10*time.Millisecond)) {
		t.Fatalf("first send %v %t", d1, ok)
	}
	d2, ok := q.Send(epoch)
	if !ok || !d2.Equal(epoch.Add(20*time.Millisecond)) {
		t.Fatalf("second send %v %t", d2, ok)
	}
	if got := q.Depth(epoch); got != 2 {
		t.Fatalf("Depth=%d want 2", got)
	}
	if got := q.Depth(epoch.Add(15 * time.Millisecond)); got != 1 {
		t.Fatalf("Depth after first drain=%d want 1", got)
	}
}

func TestConnQueueOverflowKillsConnection(t *testing.T) {
	q := NewConnQueue(10, 5) // very slow drain, tiny buffer
	for i := 0; i < 5; i++ {
		if _, ok := q.Send(epoch); !ok {
			t.Fatalf("send %d rejected before limit", i)
		}
	}
	if q.Dead() {
		t.Fatal("connection dead before overflow")
	}
	if _, ok := q.Send(epoch); ok {
		t.Fatal("overflow send accepted")
	}
	if !q.Dead() {
		t.Fatal("connection not dead after overflow")
	}
	// Dead stays dead even after the backlog would have drained.
	if _, ok := q.Send(epoch.Add(time.Hour)); ok {
		t.Fatal("send on dead connection accepted")
	}
}

func TestConnQueueRecoversWhenDrainKeepsUp(t *testing.T) {
	q := NewConnQueue(1000, 10)
	now := epoch
	// Offer 1 msg per 2ms against 1ms drain: never accumulates.
	for i := 0; i < 1000; i++ {
		if _, ok := q.Send(now); !ok {
			t.Fatalf("send %d failed, queue depth %d", i, q.Depth(now))
		}
		now = now.Add(2 * time.Millisecond)
	}
	if q.Dead() {
		t.Fatal("healthy connection died")
	}
}

func TestDelayQueueOrderingWithManualClock(t *testing.T) {
	clk := clock.NewManual(epoch)
	q := NewDelayQueue(clk)
	defer q.Stop()

	var mu sync.Mutex
	var got []int
	record := func(i int) func() {
		return func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		}
	}
	q.Schedule(epoch.Add(30*time.Millisecond), record(3))
	q.Schedule(epoch.Add(10*time.Millisecond), record(1))
	q.Schedule(epoch.Add(20*time.Millisecond), record(2))
	q.Schedule(epoch.Add(10*time.Millisecond), record(11)) // same instant: after 1

	waitLen := func(n int) {
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			l := len(got)
			mu.Unlock()
			if l >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %d callbacks, have %d", n, l)
			}
			time.Sleep(time.Millisecond)
			clk.Advance(0) // let the worker observe time; no-op advance
		}
	}

	clk.Advance(15 * time.Millisecond)
	waitLen(2)
	mu.Lock()
	if got[0] != 1 || got[1] != 11 {
		t.Fatalf("order after 15ms: %v", got)
	}
	mu.Unlock()

	clk.Advance(20 * time.Millisecond)
	waitLen(4)
	mu.Lock()
	if got[2] != 2 || got[3] != 3 {
		t.Fatalf("final order: %v", got)
	}
	mu.Unlock()
}

func TestDelayQueuePastDeadlineRunsImmediately(t *testing.T) {
	q := NewDelayQueue(clock.NewReal())
	defer q.Stop()
	done := make(chan struct{})
	q.Schedule(time.Now().Add(-time.Second), func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("past-deadline callback never ran")
	}
}

func TestDelayQueueScheduleAfter(t *testing.T) {
	q := NewDelayQueue(clock.NewReal())
	defer q.Stop()
	done := make(chan struct{})
	q.ScheduleAfter(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("ScheduleAfter callback never ran")
	}
}

func TestDelayQueueStopDiscardsAndIsIdempotent(t *testing.T) {
	q := NewDelayQueue(clock.NewReal())
	ran := make(chan struct{}, 1)
	q.Schedule(time.Now().Add(time.Hour), func() { ran <- struct{}{} })
	q.Stop()
	q.Stop() // idempotent
	q.Schedule(time.Now(), func() { ran <- struct{}{} })
	select {
	case <-ran:
		t.Fatal("callback ran after Stop")
	case <-time.After(50 * time.Millisecond):
	}
	if q.Len() != 1 {
		// The pre-Stop item stays pending (discarded, never run).
		t.Fatalf("Len=%d", q.Len())
	}
}

func TestDelayQueueCallbackCanReschedule(t *testing.T) {
	q := NewDelayQueue(clock.NewReal())
	defer q.Stop()
	done := make(chan struct{})
	q.ScheduleAfter(time.Millisecond, func() {
		q.ScheduleAfter(time.Millisecond, func() { close(done) })
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("rescheduled callback never ran")
	}
}

func TestDelayQueueHighVolume(t *testing.T) {
	q := NewDelayQueue(clock.NewReal())
	defer q.Stop()
	const n = 5000
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		q.ScheduleAfter(time.Duration(i%10)*time.Millisecond, wg.Done)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only delivered %d callbacks", n-q.Len())
	}
}
