package netsim

import (
	"container/heap"
	"sync"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
)

// DelayQueue executes callbacks at scheduled (possibly virtual) times. The
// live in-memory transport uses one per direction to inject WAN latency and
// pipe delays without spawning a goroutine per message: a single worker
// sleeps until the earliest deadline and runs due callbacks in order.
type DelayQueue struct {
	clk clock.Clock

	mu      sync.Mutex
	items   delayHeap
	seq     uint64
	wake    chan struct{}
	stopped bool
	done    chan struct{}
}

// NewDelayQueue creates and starts a delay queue on the given clock.
// Callers must Stop it when done.
func NewDelayQueue(clk clock.Clock) *DelayQueue {
	q := &DelayQueue{
		clk:  clk,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go q.run()
	return q
}

// Schedule runs fn at time at (immediately, in the worker goroutine, if at
// is already past). Callbacks scheduled for the same instant run in
// scheduling order. Schedule after Stop is a no-op.
func (q *DelayQueue) Schedule(at time.Time, fn func()) {
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		return
	}
	heap.Push(&q.items, &delayItem{at: at, seq: q.seq, fn: fn})
	q.seq++
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// ScheduleAfter runs fn after d on the queue's clock.
func (q *DelayQueue) ScheduleAfter(d time.Duration, fn func()) {
	q.Schedule(q.clk.Now().Add(d), fn)
}

// Len returns the number of pending callbacks.
func (q *DelayQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Stop terminates the worker. Pending callbacks are discarded. Stop blocks
// until the worker has exited and is idempotent.
func (q *DelayQueue) Stop() {
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		<-q.done
		return
	}
	q.stopped = true
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	<-q.done
}

func (q *DelayQueue) run() {
	defer close(q.done)
	for {
		q.mu.Lock()
		if q.stopped {
			q.mu.Unlock()
			return
		}
		now := q.clk.Now()
		var due []func()
		for len(q.items) > 0 && !q.items[0].at.After(now) {
			due = append(due, heap.Pop(&q.items).(*delayItem).fn)
		}
		var next time.Time
		if len(q.items) > 0 {
			next = q.items[0].at
		}
		q.mu.Unlock()

		for _, fn := range due {
			fn()
		}
		if len(due) > 0 {
			continue // re-check for newly due work before sleeping
		}

		if next.IsZero() {
			// Idle: wait for a Schedule or Stop.
			<-q.wake
			continue
		}
		timer := q.clk.NewTimer(next.Sub(now))
		select {
		case <-timer.C():
		case <-q.wake:
			timer.Stop()
		}
	}
}

type delayItem struct {
	at  time.Time
	seq uint64
	fn  func()
}

type delayHeap []*delayItem

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h delayHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)   { *h = append(*h, x.(*delayItem)) }
func (h *delayHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
