package netsim

import "testing"

func TestFaultsBlackholeAndHeal(t *testing.T) {
	f := NewFaults(1)
	if f.Blackholed("s1") || f.Drop("s1") {
		t.Fatal("fresh endpoint should pass packets")
	}
	f.Blackhole("s1")
	if !f.Blackholed("s1") {
		t.Fatal("not blackholed after Blackhole")
	}
	for i := 0; i < 100; i++ {
		if !f.Drop("s1") {
			t.Fatal("blackholed endpoint leaked a packet")
		}
	}
	if f.Drop("s2") {
		t.Fatal("unrelated endpoint dropped")
	}
	f.Heal("s1")
	if f.Blackholed("s1") || f.Drop("s1") {
		t.Fatal("heal did not restore the endpoint")
	}
}

func TestFaultsDropRate(t *testing.T) {
	f := NewFaults(42)
	f.SetDropRate("s1", 0.5)
	dropped := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if f.Drop("s1") {
			dropped++
		}
	}
	if dropped < n/3 || dropped > 2*n/3 {
		t.Fatalf("drop rate 0.5 dropped %d/%d", dropped, n)
	}
	f.SetDropRate("s1", 0)
	if f.Drop("s1") {
		t.Fatal("rate 0 dropped a packet")
	}
	f.SetDropRate("s1", 1)
	if !f.Drop("s1") {
		t.Fatal("rate 1 passed a packet")
	}
	f.Heal("s1")
	if f.Drop("s1") {
		t.Fatal("heal did not clear the drop rate")
	}
}
