// Package netsim models the network the paper's testbed emulated: wide-area
// latencies sampled per message (their King-dataset injection, §V-B) and the
// capacity limits that make pub/sub servers saturate (their NIC egress and
// Redis client output buffers, §III-A).
//
// It provides:
//
//   - LogNormal / PathModel: one-way WAN delay sampling with the paper's
//     three-case rule (infra→client, client→infra, client→client),
//   - Pipe: a serialization link with finite capacity and FIFO queueing —
//     the mechanism behind load ratios and response-time spikes,
//   - ConnQueue: a bounded per-connection output buffer that kills the
//     connection on overflow, like Redis' client-output-buffer-limit,
//   - DelayQueue: a clock-driven scheduler that delivers callbacks at their
//     simulated arrival times in live (goroutine) mode.
package netsim

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"time"
)

// NodeClass classifies an endpoint for the paper's latency injection rule:
// infrastructure nodes (pub/sub servers, LLAs, dispatchers, load balancer)
// live in the cloud LAN; clients reach them over the WAN.
type NodeClass uint8

// Node classes.
const (
	Infra NodeClass = iota + 1
	Client
)

// LatencyModel samples one-way network delays.
type LatencyModel interface {
	// Sample draws one one-way delay using rng.
	Sample(rng *rand.Rand) time.Duration
}

// LogNormal is a log-normal one-way delay distribution clipped to
// [Min, Max]. It stands in for the (non-redistributable) King dataset: the
// paper filtered King to North America; measured NA medians are a few tens
// of milliseconds with a heavy right tail, which a log-normal reproduces.
type LogNormal struct {
	// Median is the distribution median (the log-normal's exp(mu)).
	Median time.Duration
	// Sigma is the log-space standard deviation (tail heaviness).
	Sigma float64
	// Min and Max clip samples.
	Min, Max time.Duration
}

var _ LatencyModel = (*LogNormal)(nil)

// NewKingLike returns the default WAN model used across the experiments:
// median 32 ms, sigma 0.45, clipped to [5 ms, 250 ms]. Unloaded
// publish→notify round trips then average ≈75 ms, matching the paper's
// steady state (Fig. 5c).
func NewKingLike() *LogNormal {
	return &LogNormal{
		Median: 32 * time.Millisecond,
		Sigma:  0.45,
		Min:    5 * time.Millisecond,
		Max:    250 * time.Millisecond,
	}
}

// Sample implements LatencyModel.
func (l *LogNormal) Sample(rng *rand.Rand) time.Duration {
	mu := math.Log(l.Median.Seconds())
	s := math.Exp(mu + l.Sigma*rng.NormFloat64())
	d := time.Duration(s * float64(time.Second))
	if d < l.Min {
		d = l.Min
	}
	if d > l.Max {
		d = l.Max
	}
	return d
}

// Fixed is a constant-delay model, useful for deterministic tests.
type Fixed time.Duration

var _ LatencyModel = Fixed(0)

// Sample implements LatencyModel.
func (f Fixed) Sample(*rand.Rand) time.Duration { return time.Duration(f) }

// RegionDelays derives a deterministic per-region one-way WAN delay from a
// latency model: each region name seeds the model's sampler, so the same
// region always maps to the same characteristic delay (its "distance" from
// the cloud), while distinct regions spread across the model's distribution.
// The returned function memoizes per region and is safe for concurrent use —
// it is shaped to plug straight into the LLA's RegionDelay hook for
// per-region delivery-latency attribution.
func RegionDelays(m LatencyModel) func(region string) time.Duration {
	var cache sync.Map // region string -> time.Duration
	return func(region string) time.Duration {
		if region == "" {
			return 0
		}
		if v, ok := cache.Load(region); ok {
			return v.(time.Duration)
		}
		h := fnv.New64a()
		h.Write([]byte(region)) //nolint:errcheck // fnv never errors
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		d, _ := cache.LoadOrStore(region, m.Sample(rng))
		return d.(time.Duration)
	}
}

// PathModel applies the paper's three-case injection rule (§V-B) on top of a
// WAN model: one sample for client↔infra paths, two samples (round trip) for
// client→client, and a small constant LAN delay for infra→infra (the paper's
// servers shared a LAN, so that leg was effectively free).
type PathModel struct {
	WAN LatencyModel
	// LAN is the infra→infra delay (cloud-internal hop, e.g. dispatcher
	// forwarding during reconfiguration).
	LAN time.Duration
}

// NewPathModel builds a PathModel over the default King-like WAN with a
// 0.5 ms LAN.
func NewPathModel() *PathModel {
	return &PathModel{WAN: NewKingLike(), LAN: 500 * time.Microsecond}
}

// Delay samples the injected latency for a message from one node class to
// another.
func (p *PathModel) Delay(from, to NodeClass, rng *rand.Rand) time.Duration {
	switch {
	case from == Infra && to == Infra:
		return p.LAN
	case from == Client && to == Client:
		return p.WAN.Sample(rng) + p.WAN.Sample(rng)
	default:
		return p.WAN.Sample(rng)
	}
}
