package netsim

import (
	"math/rand"
	"sync"
)

// Faults injects network failures into a simulated deployment, per endpoint
// (endpoints are identified by string, typically a plan.ServerID). Two modes
// are distinguishable on purpose:
//
//   - Blackhole: every packet to or from the endpoint vanishes silently.
//     Connections stay "up" — no error, no disconnect — so a blackholed
//     server is indistinguishable from an extremely slow one at the
//     transport layer. Only staleness/probe-based detection catches it.
//   - Packet drop: each packet is lost independently with probability p,
//     modeling a lossy path rather than a dead one.
//
// This is deliberately unlike a crash (which closes connections and surfaces
// errors): the paper's fault-free model never had to tell the two apart, and
// the failure detector has to handle both.
//
// Faults is safe for concurrent use.
type Faults struct {
	mu         sync.Mutex
	rng        *rand.Rand
	blackholed map[string]struct{}
	dropRate   map[string]float64
}

// NewFaults creates a fault injector. seed drives the packet-drop sampler
// (0 picks a fixed default for reproducibility).
func NewFaults(seed int64) *Faults {
	if seed == 0 {
		seed = 1
	}
	return &Faults{
		rng:        rand.New(rand.NewSource(seed)),
		blackholed: make(map[string]struct{}),
		dropRate:   make(map[string]float64),
	}
}

// Blackhole starts dropping every packet to/from the endpoint.
func (f *Faults) Blackhole(endpoint string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blackholed[endpoint] = struct{}{}
}

// Heal removes the endpoint's blackhole and packet-drop rate.
func (f *Faults) Heal(endpoint string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.blackholed, endpoint)
	delete(f.dropRate, endpoint)
}

// Blackholed reports whether the endpoint is currently blackholed.
func (f *Faults) Blackholed(endpoint string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.blackholed[endpoint]
	return ok
}

// SetDropRate sets the independent per-packet loss probability for the
// endpoint (clamped to [0,1]; 0 removes the entry).
func (f *Faults) SetDropRate(endpoint string, p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case p <= 0:
		delete(f.dropRate, endpoint)
	case p >= 1:
		f.dropRate[endpoint] = 1
	default:
		f.dropRate[endpoint] = p
	}
}

// Drop decides the fate of one packet to/from the endpoint: true means the
// packet is lost (blackholed endpoint, or a loss sample under the endpoint's
// drop rate).
func (f *Faults) Drop(endpoint string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.blackholed[endpoint]; ok {
		return true
	}
	p, ok := f.dropRate[endpoint]
	if !ok {
		return false
	}
	return f.rng.Float64() < p
}
