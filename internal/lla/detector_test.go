package lla

import (
	"testing"
	"time"
)

func TestDetectorProbeMisses(t *testing.T) {
	d := NewDetector(DetectorConfig{StaleAfter: time.Hour, ProbeMisses: 3})
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	d.Track("s1", t0)
	d.Track("s2", t0)

	d.ObserveProbe("s1", false)
	d.ObserveProbe("s1", false)
	if dead := d.Dead(t0); len(dead) != 0 {
		t.Fatalf("dead after 2 misses: %v", dead)
	}
	// A success resets the consecutive counter.
	d.ObserveProbe("s1", true)
	if got := d.Misses("s1"); got != 0 {
		t.Fatalf("misses after success=%d", got)
	}
	d.ObserveProbe("s1", false)
	d.ObserveProbe("s1", false)
	d.ObserveProbe("s1", false)
	dead := d.Dead(t0)
	if len(dead) != 1 || dead[0] != "s1" {
		t.Fatalf("dead=%v, want [s1]", dead)
	}
}

func TestDetectorReportStaleness(t *testing.T) {
	d := NewDetector(DetectorConfig{StaleAfter: 10 * time.Second, ProbeMisses: 3})
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	d.Track("s1", t0)
	d.ObserveReport("s1", t0.Add(5*time.Second))
	if dead := d.Dead(t0.Add(14 * time.Second)); len(dead) != 0 {
		t.Fatalf("dead with fresh report: %v", dead)
	}
	dead := d.Dead(t0.Add(16 * time.Second))
	if len(dead) != 1 || dead[0] != "s1" {
		t.Fatalf("dead=%v, want [s1]", dead)
	}
}

func TestDetectorProbeSuccessDoesNotRefreshReports(t *testing.T) {
	// A reachable node whose reporting stack died is still faulty: PONGs
	// must not mask report silence.
	d := NewDetector(DetectorConfig{StaleAfter: 10 * time.Second, ProbeMisses: 3})
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	d.Track("s1", t0)
	for i := 0; i < 20; i++ {
		d.ObserveProbe("s1", true)
	}
	if dead := d.Dead(t0.Add(11 * time.Second)); len(dead) != 1 {
		t.Fatalf("dead=%v, want [s1] despite healthy probes", dead)
	}
}

func TestDetectorStickyUntilForget(t *testing.T) {
	d := NewDetector(DetectorConfig{StaleAfter: 10 * time.Second, ProbeMisses: 1})
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	d.Track("s1", t0)
	d.ObserveProbe("s1", false)
	if dead := d.Dead(t0); len(dead) != 1 {
		t.Fatalf("dead=%v", dead)
	}
	// Later evidence does not resurrect a declared server.
	d.ObserveProbe("s1", true)
	d.ObserveReport("s1", t0.Add(time.Second))
	if dead := d.Dead(t0.Add(time.Second)); len(dead) != 1 {
		t.Fatalf("declaration not sticky: %v", dead)
	}
	d.Forget("s1")
	if dead := d.Dead(t0.Add(time.Second)); len(dead) != 0 {
		t.Fatalf("dead after forget: %v", dead)
	}
	// Re-tracking starts a fresh grace window.
	d.Track("s1", t0.Add(time.Minute))
	if dead := d.Dead(t0.Add(time.Minute)); len(dead) != 0 {
		t.Fatalf("fresh track instantly dead: %v", dead)
	}
}

func TestDetectorUntrackedProbesIgnored(t *testing.T) {
	d := NewDetector(DetectorConfig{ProbeMisses: 1})
	d.ObserveProbe("ghost", false)
	if dead := d.Dead(time.Now()); len(dead) != 0 {
		t.Fatalf("untracked server declared dead: %v", dead)
	}
}
