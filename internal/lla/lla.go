// Package lla implements the Local Load Analyzer (paper §III-A): the agent
// collocated with every pub/sub server that gathers per-channel load metrics
// for every time unit and periodically ships an aggregate report to the load
// balancer.
//
// The LLA observes its broker through the broker's observer hook (the
// "subscribe to every channel" trick of the paper, without modifying the
// pub/sub server) and therefore sees every publication, subscription and
// unsubscription. For each time unit t (1 s) and channel it records the
// number of distinct publishers, publications, subscribers, messages sent
// (per-subscriber deliveries) and bytes in/out — exactly the metric set
// listed in the paper.
//
// The aggregation core (Accumulator) is pure state so the discrete-event
// simulator reuses it unchanged; Analyzer adds the live clock/ticker
// plumbing and report emission.
package lla

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/hotstate"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/trace"
)

// ChannelStats is one channel's load during one time unit.
type ChannelStats struct {
	Channel      string `json:"channel"`
	Publishers   int    `json:"publishers"`   // distinct publishers seen in the unit
	Publications int    `json:"publications"` // messages published on the channel
	Subscribers  int    `json:"subscribers"`  // subscriber count at unit end
	MessagesSent int    `json:"messagesSent"` // per-subscriber deliveries
	BytesIn      int64  `json:"bytesIn"`      // publication bytes received
	BytesOut     int64  `json:"bytesOut"`     // delivery bytes sent
}

// UnitStats is the complete per-channel breakdown of one time unit.
type UnitStats struct {
	// Unit is the index of the time unit since the analyzer started.
	Unit int64 `json:"unit"`
	// Channels holds stats for every channel active during the unit,
	// sorted by channel name for determinism.
	Channels []ChannelStats `json:"channels"`
	// Overflow aggregates publications on channels beyond the accumulator's
	// per-unit channel cap (IoT-style topic-per-device floods). The traffic
	// is still accounted — bytes, publications, deliveries — but without
	// per-channel identity, so the balancer sees the load even when it
	// cannot attribute it. Nil when the unit stayed under the cap.
	Overflow *ChannelStats `json:"overflow,omitempty"`
}

// Report is the aggregate update message an LLA sends to the load balancer:
// all metrics for all time units since the previous report, plus the node's
// bandwidth envelope (§III-A, last paragraph).
type Report struct {
	Server string      `json:"server"`
	Seq    uint64      `json:"seq"`
	Units  []UnitStats `json:"units"`
	// MaxOutgoingBps is the theoretical maximum outgoing bandwidth T_i of
	// the node (bytes/second).
	MaxOutgoingBps float64 `json:"maxOutgoingBps"`
	// MeasuredOutgoingBps is the measured outgoing bandwidth on the
	// network interface, averaged over the report window (M_i).
	MeasuredOutgoingBps float64 `json:"measuredOutgoingBps"`
	// CPUUtilization estimates the node's CPU busy fraction over the
	// window (0..1+). The paper's future work (§VII) proposes integrating
	// CPU into the balancing decision for vCPU-constrained environments;
	// the LLA models it as per-delivery processing cost against the
	// node's delivery-rate capacity.
	CPUUtilization float64 `json:"cpuUtilization,omitempty"`
	// Regions carries per-subscriber-region delivery-latency histograms for
	// the report window — the signal the ROADMAP's latency-aware placement
	// needs: not just how loaded a server is, but which regions it serves
	// slowly. Empty when no session declared a region.
	Regions []RegionStats `json:"regions,omitempty"`
}

// Marshal encodes the report for the control plane.
func (r *Report) Marshal() ([]byte, error) { return json.Marshal(r) }

// UnmarshalReport decodes a control-plane report.
func UnmarshalReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("lla: decode report: %w", err)
	}
	return &r, nil
}

// channelAccum accumulates one channel's stats inside the current unit.
type channelAccum struct {
	publishers   map[uint32]struct{}
	publications int
	messagesSent int
	bytesIn      int64
	bytesOut     int64
}

// add folds one publication into the accumulation.
func (c *channelAccum) add(publisher uint32, size, receivers int) {
	if publisher != 0 && c.publishers != nil {
		c.publishers[publisher] = struct{}{}
	}
	c.publications++
	c.messagesSent += receivers
	c.bytesIn += int64(size)
	c.bytesOut += int64(size) * int64(receivers)
}

// AccumStripes is the accumulator's stripe count (power of two). OnPublish
// locks only the stripe its channel hashes to, so the broker's concurrent
// fan-out goroutines stop serializing on one global mutex.
const AccumStripes = 32

// DefaultChannelCap bounds the distinct channels tracked per time unit (and
// the persistent subscriber-count map) when no explicit cap is given. Under
// normal workloads it is never reached; at IoT-style topic-per-device scale
// it is what keeps the accumulator O(cap) instead of O(channels).
const DefaultChannelCap = 65536

// accumStripe is one lock stripe: a share of the per-unit channel map and of
// the persistent subscriber-count map, plus the stripe-local overflow bucket
// publications fold into once the unit's channel share is full.
type accumStripe struct {
	mu          sync.Mutex
	current     map[string]*channelAccum
	subscribers map[string]int
	overflow    channelAccum // cap overflow (publishers not tracked)
	hits        uint64       // publishes on channels already tracked this unit
	misses      uint64       // channel-entry creations
	folds       uint64       // publications folded into overflow
	subEvicts   uint64       // subscriber-map entries displaced at cap
}

// Accumulator gathers per-channel metrics for the current time unit and
// seals units on demand. It is safe for concurrent use (the broker invokes
// observer callbacks from many goroutines); state is striped AccumStripes
// ways by channel hash, and both per-channel maps are capacity-bounded.
type Accumulator struct {
	stripes      [AccumStripes]accumStripe
	perStripeCap int // per-unit channel share per stripe (0 = unbounded)
	channelCap   int

	sealMu sync.Mutex // serializes Seal and guards unit
	unit   int64
}

// NewAccumulator creates an accumulator with DefaultChannelCap.
func NewAccumulator() *Accumulator { return NewAccumulatorWithCap(DefaultChannelCap) }

// NewAccumulatorWithCap creates an accumulator tracking at most channelCap
// distinct channels per unit (<=0 means unbounded). The same cap bounds the
// persistent subscriber-count map.
func NewAccumulatorWithCap(channelCap int) *Accumulator {
	a := &Accumulator{channelCap: channelCap}
	if channelCap > 0 {
		a.perStripeCap = (channelCap + AccumStripes - 1) / AccumStripes
		if a.perStripeCap < 1 {
			a.perStripeCap = 1
		}
	}
	for i := range a.stripes {
		a.stripes[i].current = make(map[string]*channelAccum)
		a.stripes[i].subscribers = make(map[string]int)
	}
	return a
}

func (a *Accumulator) stripe(ch string) *accumStripe {
	return &a.stripes[hotstate.StringHash(ch)&(AccumStripes-1)]
}

// channelLocked returns the channel's accumulation, or nil when the stripe's
// share of the per-unit cap is exhausted (the caller folds into overflow).
// Caller holds st.mu.
func (a *Accumulator) channelLocked(st *accumStripe, ch string) *channelAccum {
	c := st.current[ch]
	if c != nil {
		return c
	}
	if a.perStripeCap > 0 && len(st.current) >= a.perStripeCap {
		return nil
	}
	c = &channelAccum{publishers: make(map[uint32]struct{})}
	st.current[ch] = c
	st.misses++
	return c
}

// OnPublish records one publication. publisher is the originating node ID
// extracted from the envelope (0 if unknown), size the payload bytes,
// receivers the fan-out count.
func (a *Accumulator) OnPublish(ch string, publisher uint32, size, receivers int) {
	st := a.stripe(ch)
	st.mu.Lock()
	if c := st.current[ch]; c != nil {
		st.hits++
		c.add(publisher, size, receivers)
	} else if c := a.channelLocked(st, ch); c != nil {
		c.add(publisher, size, receivers)
	} else {
		st.folds++
		st.overflow.add(0, size, receivers)
	}
	st.mu.Unlock()
}

// OnSubscribe records a subscription; count is the channel's subscriber
// count after the operation (as reported by the broker). At the cap, a new
// channel displaces an arbitrary tracked one: the broker re-reports counts
// on every subscribe/unsubscribe, so displaced channels self-heal on their
// next subscription event.
func (a *Accumulator) OnSubscribe(ch string, count int) {
	st := a.stripe(ch)
	st.mu.Lock()
	if _, ok := st.subscribers[ch]; !ok && a.perStripeCap > 0 && len(st.subscribers) >= a.perStripeCap {
		for victim := range st.subscribers {
			delete(st.subscribers, victim)
			st.subEvicts++
			break
		}
	}
	st.subscribers[ch] = count
	a.channelLocked(st, ch) // make the channel visible even before traffic flows
	st.mu.Unlock()
}

// OnUnsubscribe records an unsubscription.
func (a *Accumulator) OnUnsubscribe(ch string, count int) {
	st := a.stripe(ch)
	st.mu.Lock()
	if count <= 0 {
		delete(st.subscribers, ch)
	} else {
		st.subscribers[ch] = count
	}
	st.mu.Unlock()
}

// Seal closes the current time unit and returns its stats, merging all
// stripes. Channels with no activity and no subscribers are omitted.
func (a *Accumulator) Seal() UnitStats {
	a.sealMu.Lock()
	defer a.sealMu.Unlock()
	u := UnitStats{Unit: a.unit}
	a.unit++

	// Drain every stripe under its own lock; channels are hash-partitioned
	// so the per-stripe maps never overlap and merging is concatenation.
	current := make(map[string]*channelAccum)
	subs := make(map[string]int)
	var overflow channelAccum
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		cur := st.current
		st.current = make(map[string]*channelAccum, len(cur))
		overflow.publications += st.overflow.publications
		overflow.messagesSent += st.overflow.messagesSent
		overflow.bytesIn += st.overflow.bytesIn
		overflow.bytesOut += st.overflow.bytesOut
		st.overflow = channelAccum{}
		for ch, n := range st.subscribers {
			subs[ch] = n
		}
		st.mu.Unlock()
		for ch, c := range cur {
			current[ch] = c
		}
	}

	names := make([]string, 0, len(current)+len(subs))
	seen := make(map[string]struct{}, len(current)+len(subs))
	for ch := range current {
		names = append(names, ch)
		seen[ch] = struct{}{}
	}
	for ch := range subs {
		if _, dup := seen[ch]; !dup {
			names = append(names, ch)
		}
	}
	sort.Strings(names)
	for _, ch := range names {
		c := current[ch]
		nsubs := subs[ch]
		if c == nil {
			if nsubs == 0 {
				continue
			}
			u.Channels = append(u.Channels, ChannelStats{Channel: ch, Subscribers: nsubs})
			continue
		}
		u.Channels = append(u.Channels, ChannelStats{
			Channel:      ch,
			Publishers:   len(c.publishers),
			Publications: c.publications,
			Subscribers:  nsubs,
			MessagesSent: c.messagesSent,
			BytesIn:      c.bytesIn,
			BytesOut:     c.bytesOut,
		})
	}
	if overflow.publications > 0 {
		u.Overflow = &ChannelStats{
			Channel:      "+overflow",
			Publications: overflow.publications,
			MessagesSent: overflow.messagesSent,
			BytesIn:      overflow.bytesIn,
			BytesOut:     overflow.bytesOut,
		}
	}
	return u
}

// Subscribers returns the live subscriber count for a channel.
func (a *Accumulator) Subscribers(ch string) int {
	st := a.stripe(ch)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.subscribers[ch]
}

// UnitCacheStats snapshots the per-unit channel map's bounded-cache counters
// (Evictions = publications folded into the overflow bucket).
func (a *Accumulator) UnitCacheStats() hotstate.Stats {
	s := hotstate.Stats{Capacity: a.channelCap}
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		s.Size += len(st.current)
		s.Hits += st.hits
		s.Misses += st.misses
		s.Evictions += st.folds
		st.mu.Unlock()
	}
	return s
}

// SubscriberCacheStats snapshots the subscriber-count map's bounded-cache
// counters (Evictions = entries displaced at the cap).
func (a *Accumulator) SubscriberCacheStats() hotstate.Stats {
	s := hotstate.Stats{Capacity: a.channelCap}
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		s.Size += len(st.subscribers)
		s.Evictions += st.subEvicts
		st.mu.Unlock()
	}
	return s
}

// Config configures an Analyzer.
type Config struct {
	// Server is the pub/sub server (node) this LLA monitors.
	Server string
	// MaxOutgoingBps is the node's theoretical max outgoing bandwidth T_i.
	MaxOutgoingBps float64
	// MaxDeliveriesPerSec is the node's CPU capacity expressed as
	// deliveries/second; 0 disables CPU reporting (the paper's §III-A
	// observation is that bandwidth saturates first, so this is an
	// opt-in extension).
	MaxDeliveriesPerSec float64
	// Unit is the metric time unit (default 1 s, as in the paper).
	Unit time.Duration
	// ReportEvery is the aggregate-update interval (default 3 units).
	ReportEvery time.Duration
	// ChannelCap bounds the distinct channels the accumulator tracks per
	// time unit (and the persistent subscriber-count map). 0 means
	// DefaultChannelCap; negative means unbounded.
	ChannelCap int
	// RegionCap bounds the distinct subscriber regions tracked
	// (0 = DefaultRegionCap); beyond it observations fold into the
	// RegionOverflow pseudo-region.
	RegionCap int
	// RegionDelay optionally models the WAN delay to a subscriber region
	// (e.g. from netsim's King-dataset latency model). When set, the modeled
	// delay is added to every region observation, putting geography back
	// into signals measured over loopback or in-process transports.
	RegionDelay func(region string) time.Duration
	// Clock provides time (default: real clock).
	Clock clock.Clock
	// Logger receives structured LLA logs (one debug line per emitted
	// report). Nil discards.
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.Unit <= 0 {
		c.Unit = time.Second
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 3 * c.Unit
	}
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.MaxOutgoingBps <= 0 {
		c.MaxOutgoingBps = 1.25e6 // DESIGN.md §4 calibration
	}
	if c.ChannelCap == 0 {
		c.ChannelCap = DefaultChannelCap
	} else if c.ChannelCap < 0 {
		c.ChannelCap = 0 // unbounded
	}
}

// Analyzer is the live LLA: a broker observer plus a ticking loop that seals
// time units and emits Reports.
type Analyzer struct {
	cfg     Config
	accum   *Accumulator
	regions *regionTracker
	log     *slog.Logger

	// bytesOut/deliveries are atomics, not mu-guarded: OnPublish is the
	// broker's fan-out hot path and must not serialize on the report mutex.
	bytesOut   atomic.Int64 // bytes sent during current report window
	deliveries atomic.Int64 // per-subscriber deliveries during current window

	mu      sync.Mutex
	pending []UnitStats
	seq     uint64
	// windowStart stamps when the current report window opened so rates are
	// divided by the time that actually elapsed, not the configured
	// ReportEvery: a ticker firing late (CPU contention, coarse simulated
	// clocks) would otherwise overstate Bps and mask an overload.
	windowStart time.Time

	unitTicker   clock.Ticker
	reportTicker clock.Ticker

	reports chan *Report
	stop    chan struct{}
	done    chan struct{}
	started bool
}

var _ broker.Observer = (*Analyzer)(nil)

// NewAnalyzer creates an LLA for a node. Attach it with
// broker.AddObserver(analyzer), then Start it. The unit and report tickers
// are armed here, synchronously, so virtual-clock tests can advance time
// immediately after Start without racing ticker registration.
func NewAnalyzer(cfg Config) *Analyzer {
	cfg.fillDefaults()
	return &Analyzer{
		cfg:          cfg,
		accum:        NewAccumulatorWithCap(cfg.ChannelCap),
		regions:      newRegionTracker(cfg.RegionCap, cfg.RegionDelay),
		log:          trace.Component(cfg.Logger, "lla"),
		windowStart:  cfg.Clock.Now(),
		unitTicker:   cfg.Clock.NewTicker(cfg.Unit),
		reportTicker: cfg.Clock.NewTicker(cfg.ReportEvery),
		reports:      make(chan *Report, 16),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
}

// Reports returns the channel on which aggregate updates are delivered.
func (an *Analyzer) Reports() <-chan *Report { return an.reports }

// ReportsBuilt returns how many reports the analyzer has built so far.
// Exported as a counter so harnesses can poll "one full LLA cycle has
// elapsed" off /metrics instead of sleeping a guessed interval.
func (an *Analyzer) ReportsBuilt() uint64 {
	an.mu.Lock()
	defer an.mu.Unlock()
	return an.seq
}

// OnPublish implements broker.Observer. The publisher identity is recovered
// from the Dynamoth envelope header when the payload is one (PeekNode, not
// Unmarshal: this runs on the broker's fan-out path for every publication
// and must not allocate).
func (an *Analyzer) OnPublish(ch string, payload []byte, receivers int) {
	publisher, _ := message.PeekNode(payload)
	an.accum.OnPublish(ch, publisher, len(payload), receivers)
	an.bytesOut.Add(int64(len(payload)) * int64(receivers))
	an.deliveries.Add(int64(receivers))
}

// Accumulator exposes the analyzer's accumulation core (for cache-stat
// scraping by the node's /metrics registry).
func (an *Analyzer) Accumulator() *Accumulator { return an.accum }

// ObserveRegionDelivery implements broker.RegionLatencyObserver: one
// delivery to a region-tagged subscriber, age after the publisher's stamp.
// Runs on the broker's fan-out path — lock-free after a region's first
// observation.
func (an *Analyzer) ObserveRegionDelivery(region string, age time.Duration) {
	an.regions.Observe(region, age)
}

// RegionSnapshot returns the cumulative per-region delivery-latency stats
// without disturbing the report window (the /debug/latency read).
func (an *Analyzer) RegionSnapshot() []RegionStats { return an.regions.Snapshot() }

// OnSubscribe implements broker.Observer.
func (an *Analyzer) OnSubscribe(ch, _ string, subscribers int) {
	an.accum.OnSubscribe(ch, subscribers)
}

// OnUnsubscribe implements broker.Observer.
func (an *Analyzer) OnUnsubscribe(ch, _ string, subscribers int) {
	an.accum.OnUnsubscribe(ch, subscribers)
}

// Start launches the unit/report loop. Call Stop to terminate it.
func (an *Analyzer) Start() {
	an.mu.Lock()
	already := an.started
	an.started = true
	an.mu.Unlock()
	if already {
		return
	}
	go an.run()
}

// Stop terminates the loop and closes the report channel.
func (an *Analyzer) Stop() {
	select {
	case <-an.stop:
		// already stopped
	default:
		close(an.stop)
	}
	an.mu.Lock()
	started := an.started
	an.mu.Unlock()
	if started {
		<-an.done
	} else {
		an.unitTicker.Stop()
		an.reportTicker.Stop()
	}
}

func (an *Analyzer) run() {
	defer close(an.done)
	defer close(an.reports)
	defer an.unitTicker.Stop()
	defer an.reportTicker.Stop()
	for {
		select {
		case <-an.unitTicker.C():
			u := an.accum.Seal()
			an.mu.Lock()
			an.pending = append(an.pending, u)
			an.mu.Unlock()
		case <-an.reportTicker.C():
			r := an.buildReport()
			select {
			case an.reports <- r:
			default:
				// Receiver lagging: drop rather than block the loop; the
				// next report supersedes this one anyway.
			}
		case <-an.stop:
			return
		}
	}
}

// buildReport drains pending units into a Report. Rates are computed over
// the wall-clock (or virtual-clock) time since the previous report, not the
// configured interval, so a late-firing ticker cannot inflate them.
func (an *Analyzer) buildReport() *Report {
	now := an.cfg.Clock.Now()
	an.mu.Lock()
	units := an.pending
	an.pending = nil
	bytes := an.bytesOut.Swap(0)
	deliveries := an.deliveries.Swap(0)
	an.seq++
	seq := an.seq
	window := now.Sub(an.windowStart).Seconds()
	an.windowStart = now
	an.mu.Unlock()
	if window <= 0 {
		window = an.cfg.ReportEvery.Seconds()
	}
	r := &Report{
		Server:              an.cfg.Server,
		Seq:                 seq,
		Units:               units,
		MaxOutgoingBps:      an.cfg.MaxOutgoingBps,
		MeasuredOutgoingBps: float64(bytes) / window,
		Regions:             an.regions.Drain(),
	}
	if an.cfg.MaxDeliveriesPerSec > 0 {
		r.CPUUtilization = float64(deliveries) / window / an.cfg.MaxDeliveriesPerSec
	}
	an.log.Debug("load report",
		slog.String("server", an.cfg.Server),
		slog.Uint64("seq", seq),
		slog.Int("units", len(units)),
		slog.Float64("measuredBps", r.MeasuredOutgoingBps),
		slog.Float64("maxBps", r.MaxOutgoingBps))
	return r
}
